// Package deep15pf reproduces "Deep Learning at 15PF: Supervised and
// Semi-Supervised Classification for Scientific Data" (Kurth et al.,
// SC 2017) as a from-scratch Go system: a neural-network stack with exact
// FLOP accounting (internal/nn, internal/tensor), the two scientific
// applications (internal/hep, internal/climate), the hybrid synchronous/
// asynchronous distributed training architecture with per-layer parameter
// servers (internal/core, internal/comm, internal/ps), and a calibrated
// discrete-event model of the Cori Phase II machine for the scaling study
// (internal/cluster, internal/sim).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured record, and bench_test.go for one benchmark per table
// and figure.
package deep15pf
