// Package deep15pf reproduces "Deep Learning at 15PF: Supervised and
// Semi-Supervised Classification for Scientific Data" (Kurth et al.,
// SC 2017) as a from-scratch Go system: a neural-network stack with exact
// FLOP accounting (internal/nn, internal/tensor), the two scientific
// applications (internal/hep, internal/climate), the hybrid synchronous/
// asynchronous distributed training architecture with per-layer parameter
// servers (internal/core, internal/comm, internal/ps), a calibrated
// discrete-event model of the Cori Phase II machine for the scaling study
// (internal/cluster, internal/sim), and — on the other side of the
// train/serve divide — a dynamically-batching inference serving engine
// over trained checkpoints (internal/serve, cmd/deepserve), with an
// optional int8 low-precision path built on internal/quant.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured record and the serving throughput study, and
// bench_test.go for one benchmark per table and figure plus the serving
// and kernel benchmarks.
package deep15pf
