// HEP science example (§VII-A): train the classifier on synthetic
// collision events and compare its signal efficiency against the paper's
// cut-based baseline at the baseline's false-positive rate.
//
//	go run ./examples/hep
package main

import (
	"fmt"

	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func main() {
	rng := tensor.NewRNG(11)
	gen := hep.DefaultGenConfig()
	renderer := hep.NewRenderer(16)
	train := hep.GenerateDataset(gen, renderer, 512, 0.5, rng)
	test := hep.GenerateDataset(gen, renderer, 1024, 0.5, rng)

	// The cut-based reference analysis: selections on jet multiplicity
	// and H_T, the high-level physics features of the paper's [5].
	cuts := hep.DefaultBaseline()
	tpr, fpr := cuts.Evaluate(test.Events, test.Labels)
	fmt.Printf("baseline cuts: TPR %.1f%% at FPR %.2f%%\n", 100*tpr, 100*fpr)

	model := hep.ModelConfig{Name: "hep-example", ImageSize: 16, Filters: 8, ConvUnits: 3, Classes: 2}
	problem := hep.NewTrainingProblem(train, model, 13)
	res := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 32, Iterations: 90,
		Solver: opt.NewAdam(2e-3), Seed: 3,
	})
	fmt.Printf("trained %d iterations, final loss %.4f\n", len(res.Stats), res.FinalLoss)

	rep := problem.NewReplica()
	core.InstallWeights(rep, res.FinalWeights)
	scores := hep.ScoreDataset(rep, test, 64)
	sci := hep.CompareToBaseline(cuts, test.Events, scores, test.Labels)
	fmt.Println("comparison:", sci)
	fmt.Println("(paper: baseline 42% @ 0.02% FPR; CNN 72% — a 1.7x improvement)")
}
