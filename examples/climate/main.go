// Climate example (§III-B, §VII-B): train the semi-supervised extreme-
// weather detector — shared convolutional encoder, per-cell box/class/
// confidence heads, deconvolutional reconstruction decoder — on synthetic
// CAM5-style fields with only half the snapshots labeled, then detect
// events in held-out data.
//
//	go run ./examples/climate
package main

import (
	"fmt"

	"deep15pf/internal/climate"
	"deep15pf/internal/core"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func main() {
	rng := tensor.NewRNG(21)
	size := 48
	gen := climate.DefaultGenConfig(size)
	train := climate.GenerateDataset(gen, 96, rng)
	test := climate.GenerateDataset(gen, 16, rng)

	model := climate.ModelConfig{
		Name: "climate-example", Size: size,
		EncChannels: []int{12, 16, 24, 32, 32},
		EncStrides:  []int{2, 2, 2, 2, 1},
		DecChannels: []int{24, 16, 12, climate.NumChannels},
		WithDecoder: true, // the autoencoder path that consumes unlabeled data
	}
	problem := climate.NewTrainingProblem(train, model, 23)
	problem.LabeledFrac = 0.5 // half the snapshots have boxes; the rest only reconstruct

	res := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 8, Iterations: 240,
		Solver: opt.NewAdam(1.5e-3), Seed: 5,
	})
	fmt.Printf("trained %d iterations (50%% labeled), final loss %.3f\n", len(res.Stats), res.FinalLoss)

	rep := problem.NewReplica()
	core.InstallWeights(rep, res.FinalWeights)
	net := problem.Net(rep)

	var agg climate.MatchResult
	for i, s := range test.Samples {
		x, _ := test.Batch([]int{i})
		dets := net.Detect(x, 0.5, 0.4)[0] // paper uses 0.8; 0.5 suits this budget
		agg = agg.Add(climate.Match(dets, s.Boxes, 0.35))
	}
	fmt.Printf("detection @0.5: precision %.2f recall %.2f mean IoU %.2f\n",
		agg.Precision(), agg.Recall(), agg.MeanIoU)

	x, _ := test.Batch([]int{0})
	fmt.Println("\nFig 9 analogue:")
	fmt.Println(climate.RenderASCII(test.Samples[0], net.Detect(x, 0.5, 0.4)[0], 64))
}
