// Serving quickstart: train the HEP classifier at laptop scale, checkpoint
// it, load the checkpoint back through the serve.Registry, and run
// concurrent requests through the dynamically-batching inference server —
// the smallest tour of the train → checkpoint → serve pipeline.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

func main() {
	rng := tensor.NewRNG(1)

	// 1. Train the classifier briefly (see examples/quickstart for the
	//    training-side walkthrough) and checkpoint it in the D15W format.
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(8), 256, 0.5, rng)
	model := hep.ModelConfig{Name: "serving-example", ImageSize: 8, Filters: 8, ConvUnits: 2, Classes: 2}
	problem := hep.NewTrainingProblem(ds, model, 7)
	res := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 32, Iterations: 30,
		Solver: opt.NewAdam(2e-3), Seed: 1,
	})
	rep := problem.NewReplica()
	core.InstallWeights(rep, res.FinalWeights)
	path := filepath.Join(os.TempDir(), "serving-example.d15w")
	if err := nn.SaveFile(path, hep.ReplicaParams(rep)); err != nil {
		panic(err)
	}
	fmt.Printf("trained to loss %.4f, checkpointed to %s\n", res.FinalLoss, path)

	// 2. Load the checkpoint by architecture name. The registry rebuilds
	//    the network, validates every parameter blob, and mints
	//    per-worker inference replicas with gradients released.
	registry := serve.DefaultRegistry()
	serve.RegisterHEP(registry, "serving-example", model)
	lm, err := registry.Load("serving-example", path, serve.Float32)
	if err != nil {
		panic(err)
	}
	fmt.Printf("loaded %s: %d-float input, %.1f KiB parameters\n",
		lm.ModelArch, lm.InShape()[0]*lm.InShape()[1]*lm.InShape()[2], float64(lm.ParamBytes())/1024)

	// 3. Serve. Individual Submits coalesce into batches of up to 16
	//    under a 1ms linger; each caller gets its own logits back.
	srv, err := serve.NewServer(lm, serve.Config{MaxBatch: 16, MaxLinger: time.Millisecond})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	per := 3 * 8 * 8
	var wg sync.WaitGroup
	scores := make([]float64, 8)
	for i := range scores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := tensor.FromSlice(ds.Images.Data[i*per:(i+1)*per], 3, 8, 8)
			logits, err := srv.Submit(x)
			if err != nil {
				panic(err)
			}
			scores[i] = hep.SignalScore(logits.Reshape(1, 2))[0]
		}(i)
	}
	wg.Wait()
	for i, s := range scores {
		fmt.Printf("event %d: P(signal) = %.3f (label %d)\n", i, s, ds.Labels[i])
	}
	fmt.Println()
	fmt.Println(srv.Stats())
}
