// Quickstart: build the paper's HEP architecture at laptop scale, generate
// synthetic collision events, and train it synchronously for a few dozen
// iterations — the smallest end-to-end tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func main() {
	rng := tensor.NewRNG(1)

	// 1. Synthetic HEP events (Pythia+Delphes stand-in), rendered to
	//    3-channel calorimeter images (ECAL, HCAL, tracks).
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), 256, 0.5, rng)
	fmt.Printf("dataset: %d events, image shape %v\n", len(ds.Labels), ds.Images.Shape[1:])

	// 2. The paper's architecture (conv+pool units, global average pool,
	//    tiny FC head) at reduced scale.
	model := hep.ModelConfig{Name: "quickstart", ImageSize: 16, Filters: 8, ConvUnits: 3, Classes: 2}
	net := hep.BuildNet(model, rng)
	fmt.Println(net.Summary())

	// 3. Synchronous data-parallel training: 2 workers split each batch,
	//    all-reduce gradients, apply identical ADAM steps.
	problem := hep.NewTrainingProblem(ds, model, 7)
	res := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 32, Iterations: 40,
		Solver: opt.NewAdam(2e-3), Seed: 1,
	})
	for i := 0; i < len(res.Stats); i += 8 {
		fmt.Printf("iter %2d  loss %.4f\n", i, res.Stats[i].Loss)
	}
	fmt.Printf("final loss %.4f (started at %.4f)\n", res.FinalLoss, res.Stats[0].Loss)
}
