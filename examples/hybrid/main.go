// Hybrid example (§III-E): the paper's core contribution, at example
// scale. Four compute groups train one model through dedicated per-layer
// parameter servers, with real asynchrony (goroutines) and measured
// staleness, and momentum tuned down to compensate the implicit momentum
// asynchrony contributes (§VI-B4, Mitliagkas et al.).
//
//	go run ./examples/hybrid
package main

import (
	"fmt"

	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func main() {
	rng := tensor.NewRNG(31)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), 256, 0.5, rng)
	model := hep.ModelConfig{Name: "hybrid-example", ImageSize: 16, Filters: 8, ConvUnits: 3, Classes: 2}

	groups := 4
	tuned := opt.TuneMomentum(0.9, groups)
	fmt.Printf("%d groups: implicit momentum %.2f, explicit tuned to %.2f (effective %.2f)\n",
		groups, opt.ImplicitMomentum(groups), tuned, opt.EffectiveMomentum(tuned, groups))

	run := func(label string, g int, beta1 float64) core.Result {
		problem := hep.NewTrainingProblem(ds, model, 37)
		cfg := core.Config{
			Groups: g, WorkersPerGroup: 2, GroupBatch: 32, Iterations: 80 / g,
			Solver: opt.NewAdamFull(2e-3, beta1, 0.999, 1e-8), Seed: 9,
		}
		var res core.Result
		if g == 1 {
			res = core.TrainSync(problem, cfg)
		} else {
			res = core.TrainHybrid(problem, cfg)
		}
		fmt.Printf("%-22s %3d updates  final loss %.4f  mean staleness %.2f\n",
			label, len(res.Stats), res.FinalLoss, res.MeanStaleness)
		return res
	}

	run("synchronous", 1, 0.9)
	run("hybrid, 4 groups", groups, tuned)
	fmt.Println("\nEach hybrid group all-reduces internally, then exchanges every layer with its")
	fmt.Println("dedicated parameter server — 6 PS goroutines for this 6-layer network, exactly")
	fmt.Println("the paper's Fig 4 topology. Staleness ≈ groups−1 is the asynchrony cost the")
	fmt.Println("group-count knob trades against hardware efficiency.")
}
