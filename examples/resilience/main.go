// Resilience example (§VIII-A): on the simulated Cori machine, kill one
// node mid-run. The synchronous configuration loses everything after the
// failure; the hybrid configuration loses only the affected group.
//
//	go run ./examples/resilience
package main

import (
	"fmt"

	"deep15pf/internal/cluster"
)

func main() {
	m := cluster.CoriPhaseII()
	p := cluster.HEPProfile()
	const iters = 20

	fmt.Println("1024 nodes, batch 2048/group, one node dies at iteration 10:")
	for _, g := range []int{1, 2, 4, 8} {
		healthy := cluster.Simulate(m, p, cluster.RunConfig{
			Nodes: 1024, Groups: g, BatchPerGroup: 2048, Iterations: iters, Seed: 42,
		})
		failed := cluster.Simulate(m, p, cluster.RunConfig{
			Nodes: 1024, Groups: g, BatchPerGroup: 2048, Iterations: iters, Seed: 42,
			Failure: &cluster.FailureSpec{Group: 0, StartIter: iters / 2, Dead: true},
		})
		label := "synchronous"
		if g > 1 {
			label = fmt.Sprintf("hybrid %d groups", g)
		}
		fmt.Printf("  %-16s completed %6d / %6d images (%.0f%%)\n",
			label, failed.TotalImages, healthy.TotalImages,
			100*float64(failed.TotalImages)/float64(healthy.TotalImages))
	}
	fmt.Println("\nPaper: \"even a single node failure can cause complete failure of synchronous")
	fmt.Println("runs; hybrid runs are much more resilient since only one of the compute groups")
	fmt.Println("gets affected.\"")
}
