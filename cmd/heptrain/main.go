// Command heptrain trains the supervised HEP classifier (§III-A) on
// synthetic Pythia/Delphes-style events, using either the synchronous or
// the hybrid distributed architecture, and evaluates it against the
// cut-based baseline (§VII-A).
//
// Usage:
//
//	heptrain -groups 4 -workers 2 -iters 200 -train 2048 -test 4096
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"deep15pf/internal/ckpt"
	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/obs"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func main() {
	groups := flag.Int("groups", 1, "compute groups (1 = synchronous)")
	workers := flag.Int("workers", 1, "workers per group")
	iters := flag.Int("iters", 150, "iterations per group")
	batch := flag.Int("batch", 64, "samples per group per iteration")
	trainN := flag.Int("train", 1024, "training events")
	testN := flag.Int("test", 2048, "test events")
	size := flag.Int("size", 16, "image size (paper uses 224; small sizes train on a laptop)")
	filters := flag.Int("filters", 8, "conv filters (paper uses 128)")
	units := flag.Int("units", 3, "conv+pool units (paper uses 5)")
	lr := flag.Float64("lr", 2e-3, "ADAM learning rate")
	beta1 := flag.Float64("beta1", 0.9, "ADAM beta1 (tune down for many groups, §VI-B4)")
	prefetch := flag.Int("prefetch", 1, "batches of ingest lookahead per worker (0 = legacy blocking staging)")
	ckptDir := flag.String("ckpt-dir", "", "checkpoint store directory (versioned snapshots; enables -ckpt-every/-resume)")
	ckptEvery := flag.Int("ckpt-every", 10, "snapshot every N iterations (paper's climate cadence is 10; needs -ckpt-dir)")
	ckptAsync := flag.Bool("ckpt-async", true, "flush snapshots on a background writer (staging only on the critical path)")
	ckptKeep := flag.Int("ckpt-keep", 5, "retain only the newest N versions (0 = keep all)")
	resume := flag.Bool("resume", false, "resume from the newest snapshot in -ckpt-dir (bit-exact; empty store = fresh start)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline (per-worker phase lanes) to this file")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	metricsEvery := flag.Int("metrics-every", 0, "print a one-line metrics dump every N seconds (0 = off)")
	kernels := flag.String("kernels", "auto", "compute kernel ISA: auto|scalar|avx2|avx512 (results are bitwise identical across choices)")
	unlabeledDir := flag.String("unlabeled-dir", "", "directory of pseudo-labeled shards (from labelfactory) to append to the training set")
	pseudoWeight := flag.Float64("pseudo-weight", 0.5, "loss weight for pseudo-labeled samples (human labels stay at 1)")
	emitUnlabeled := flag.String("emit-unlabeled", "", "write the held-out -unlabeled-frac of training events to this directory as unlabeled shards, then train on the rest")
	unlabeledFrac := flag.Float64("unlabeled-frac", 0, "fraction of training events to hold out as the unlabeled pool (with or without -emit-unlabeled)")
	unlabeledShards := flag.Int("unlabeled-shards", 4, "shard count for -emit-unlabeled")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	if err := tensor.SetKernels(*kernels); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	start := time.Now()
	reg := obs.NewRegistry()
	if *debugAddr != "" {
		dbg, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "heptrain:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s/debug/pprof (metrics at /metrics)\n", dbg.Addr())
	}
	stopDump := obs.Periodic(time.Duration(*metricsEvery)*time.Second, func() {
		fmt.Println("metrics:", obs.MetricsLine(start, reg))
	})
	defer stopDump()

	rng := tensor.NewRNG(*seed)
	gen := hep.DefaultGenConfig()
	r := hep.NewRenderer(*size)
	fmt.Printf("generating %d train + %d test events (%dx%dx3 images)...\n", *trainN, *testN, *size, *size)
	train := hep.GenerateDataset(gen, r, *trainN, 0.5, rng)
	test := hep.GenerateDataset(gen, r, *testN, 0.5, rng)

	// Pseudo-label flywheel legs (ROADMAP item 1). -unlabeled-frac holds
	// the tail of the generated events out of supervision; -emit-unlabeled
	// writes that pool as feature-only shards for the label factory.
	// Generation is seed-deterministic, so a later run with the same
	// -seed/-train/-size/-unlabeled-frac regenerates the identical split
	// and pseudo shards scored in between line up sample-for-sample.
	if *unlabeledFrac < 0 || *unlabeledFrac >= 1 {
		fmt.Fprintln(os.Stderr, "heptrain: -unlabeled-frac must be in [0,1)")
		os.Exit(2)
	}
	if *unlabeledFrac > 0 {
		cut := *trainN - int(float64(*trainN)**unlabeledFrac)
		if cut < 1 {
			fmt.Fprintln(os.Stderr, "heptrain: -unlabeled-frac leaves no labeled events")
			os.Exit(2)
		}
		pool := subsetDataset(train, cut, *trainN)
		train = subsetDataset(train, 0, cut)
		fmt.Printf("held out %d of %d events as the unlabeled pool\n", len(pool.Labels), *trainN)
		if *emitUnlabeled != "" {
			paths, err := pool.SaveShards(*emitUnlabeled, *unlabeledShards)
			if err != nil {
				fmt.Fprintln(os.Stderr, "heptrain: emit-unlabeled:", err)
				os.Exit(1)
			}
			fmt.Printf("unlabeled pool written to %d shards under %s\n", len(paths), *emitUnlabeled)
		}
	} else if *emitUnlabeled != "" {
		fmt.Fprintln(os.Stderr, "heptrain: -emit-unlabeled needs -unlabeled-frac > 0")
		os.Exit(2)
	}
	var sampleWeights []float32
	if *unlabeledDir != "" {
		paths, err := filepath.Glob(filepath.Join(*unlabeledDir, "*.shard"))
		if err == nil && len(paths) == 0 {
			err = fmt.Errorf("no *.shard files under %s", *unlabeledDir)
		}
		var pseudo *hep.Dataset
		if err == nil {
			pseudo, err = hep.LoadShardDataset(paths...)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "heptrain: unlabeled-dir:", err)
			os.Exit(1)
		}
		human := len(train.Labels)
		train = train.Append(pseudo)
		sampleWeights = make([]float32, len(train.Labels))
		for i := range sampleWeights {
			if i < human {
				sampleWeights[i] = 1
			} else {
				sampleWeights[i] = float32(*pseudoWeight)
			}
		}
		fmt.Printf("appended %d pseudo-labeled events at loss weight %g (%d human + %d machine)\n",
			len(pseudo.Labels), *pseudoWeight, human, len(pseudo.Labels))
	}

	model := hep.ModelConfig{Name: "heptrain", ImageSize: *size, Filters: *filters, ConvUnits: *units, Classes: 2}
	problem := hep.NewTrainingProblem(train, model, *seed+1)
	problem.SampleWeights = sampleWeights
	cfg := core.Config{
		Groups: *groups, WorkersPerGroup: *workers, GroupBatch: *batch,
		Iterations: *iters,
		Solver:     opt.NewAdamFull(*lr, *beta1, 0.999, 1e-8),
		Seed:       *seed,
		Prefetch:   *prefetch,
	}
	if *traceOut != "" {
		cfg.Trace = obs.NewTracer(0)
	}
	if *ckptDir != "" {
		cfg.Checkpoint = core.CheckpointConfig{
			Dir: *ckptDir, Every: *ckptEvery, Async: *ckptAsync, Keep: *ckptKeep,
			Arch: "heptrain", Problem: "hep", SamplesPerEpoch: *trainN, Resume: *resume,
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "heptrain: -resume needs -ckpt-dir")
		os.Exit(2)
	}

	var res core.Result
	if *groups == 1 {
		fmt.Printf("training synchronously: %d workers, batch %d, %d iterations\n", *workers, *batch, *iters)
		res = core.TrainSync(problem, cfg)
	} else {
		fmt.Printf("training hybrid: %d groups x %d workers, batch %d/group, %d iterations/group\n",
			*groups, *workers, *batch, *iters)
		fmt.Printf("(implicit momentum from asynchrony ≈ %.2f; consider -beta1 %.2f)\n",
			opt.ImplicitMomentum(*groups), opt.TuneMomentum(0.9, *groups))
		res = core.TrainHybrid(problem, cfg)
	}

	every := len(res.Stats) / 10
	if every < 1 {
		every = 1
	}
	for i, s := range res.Stats {
		if i%every == 0 || i == len(res.Stats)-1 {
			fmt.Printf("  update %4d  group %d  loss %.4f  staleness %.1f\n", s.Seq, s.Group, s.Loss, s.Staleness)
		}
	}
	fmt.Printf("final loss %.4f, mean staleness %.2f\n", res.FinalLoss, res.MeanStaleness)
	if ing := res.Ingest; ing.Batches > 0 {
		fmt.Printf("ingest: %d batches staged in %.1f ms, %.1f ms exposed to compute (%.0f%% overlapped, prefetch=%d)\n",
			ing.Batches, ing.StageSeconds*1e3, ing.WaitSeconds*1e3, 100*ing.Overlap(), *prefetch)
	}
	if ck := res.Ckpt; ck.Snapshots > 0 {
		fmt.Printf("ckpt: %d snapshots (latest v%d) — staged %.1f ms, written %.1f ms, %.1f ms exposed to compute (%.0f%% hidden)\n",
			ck.Snapshots, ck.LastVersion, ck.StageSeconds*1e3, ck.WriteSeconds*1e3, ck.ExposedSeconds*1e3, 100*ck.Overlap())
	}
	// The fingerprint is FNV-1a over the final weights, comparable across
	// processes and with store manifests — the CI resume smoke diffs it.
	fmt.Printf("final weight fingerprint %016x\n", ckpt.FingerprintWeights(res.FinalWeights))
	res.PublishMetrics(reg)
	if *metricsEvery > 0 {
		fmt.Println("metrics:", obs.MetricsLine(start, reg))
	}
	if cfg.Trace != nil {
		lanes := cfg.Trace.Snapshot()
		if err := cfg.Trace.WriteTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "heptrain: trace:", err)
		} else {
			fmt.Printf("trace: %d lanes written to %s (open in chrome://tracing or ui.perfetto.dev)\n",
				len(lanes), *traceOut)
		}
		fmt.Print(obs.Stragglers(lanes))
	}
	fmt.Println()

	// Science evaluation of the trained model against the cut baseline.
	scoreRep := problem.NewReplica()
	core.InstallWeights(scoreRep, res.FinalWeights)
	scores := hep.ScoreDataset(scoreRep, test, 64)
	sci := hep.CompareToBaseline(hep.DefaultBaseline(), test.Events, scores, test.Labels)
	fmt.Println("science result (§VII-A):", sci)
	if sci.Improvement < 1 {
		fmt.Fprintln(os.Stderr, "warning: CNN did not beat the baseline at this scale; increase -iters/-train")
	}
}

// subsetDataset copies events [lo, hi) of ds into a standalone dataset,
// truth records included when present.
func subsetDataset(ds *hep.Dataset, lo, hi int) *hep.Dataset {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	x, labels := ds.Batch(idx)
	out := &hep.Dataset{Images: x, Labels: labels}
	if ds.Events != nil {
		out.Events = append([]hep.Event(nil), ds.Events[lo:hi]...)
	}
	return out
}
