// Command deepserve is the serving-side counterpart of heptrain: it loads a
// trained D15W checkpoint through the serve.Registry and drives a
// closed-loop synthetic load through the dynamically-batching inference
// server, reporting throughput, tail latency, batch occupancy and served
// flop rate. With no -checkpoint it first trains a small HEP classifier so
// the demo is self-contained end to end: train → checkpoint → registry →
// batched serving.
//
// The default run is the batching study: the same load once through a
// batch-size-1 server (every request runs alone — the no-batching baseline)
// and once through the dynamic batcher, printing both snapshots and the
// speedup. Dynamic batching amortises the fixed per-request cost (queue
// hops, scheduling, per-pass allocations) over the batch; the win is
// largest for small models at high request rates and shrinks as per-sample
// compute grows (try -size 16 -filters 8 -units 3).
//
// Usage:
//
//	deepserve                              # train a demo model, compare batch=1 vs batched
//	deepserve -requests 50000 -batch 64    # bigger study
//	deepserve -int8                        # serve the int8 weight/activation path
//	deepserve -arch hep-small -checkpoint model.d15w
//	deepserve -watch /tmp/ckpts            # hot-reload demo: train→publish→swap under load
//	deepserve -watch /tmp/ckpts -canary .2 # stage new versions behind 20% canary traffic
//	deepserve -listen :7015                # backend mode: serve over TCP, drain on SIGTERM
//	deepserve -connect host:7015           # drive load against a remote endpoint
//	deepserve -connect host:7015 -openloop 3000   # Poisson arrivals at 3000 req/s
//	deepserve -fleet 2 -hedge              # 2 backend processes + hedging router + rolling restart
//	deepserve -zoo                         # 3-science model zoo: hep + transfer-learned astro + climate
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"deep15pf/internal/ckpt"
	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/opt"
	"deep15pf/internal/perf"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// liveMetrics points the periodic -metrics-every dump at whichever
// server is currently under load.
var liveMetrics atomic.Pointer[obs.Registry]

func main() {
	arch := flag.String("arch", "", "registered architecture to serve (required with -checkpoint)")
	checkpoint := flag.String("checkpoint", "", "D15W checkpoint path (empty = train a demo model first)")
	size := flag.Int("size", 4, "demo model image size (trigger-scale default; batching wins shrink as size grows)")
	filters := flag.Int("filters", 16, "demo model conv filters")
	units := flag.Int("units", 2, "demo model conv+pool units")
	trainEvents := flag.Int("train-events", 512, "demo training events")
	trainIters := flag.Int("train-iters", 60, "demo training iterations")
	lr := flag.Float64("lr", 2e-3, "demo training ADAM learning rate")
	requests := flag.Int("requests", 12000, "requests to drive through each server")
	clients := flag.Int("clients", 64, "concurrent closed-loop clients")
	batch := flag.Int("batch", 32, "max dynamic batch size")
	linger := flag.Duration("linger", 500*time.Microsecond, "max linger of a partial batch (negative = dispatch immediately)")
	workers := flag.Int("workers", 0, "worker replicas (0 = GOMAXPROCS)")
	noPlans := flag.Bool("noplans", false, "disable compiled execution plans (A/B the legacy per-pass allocation path)")
	int8Mode := flag.Bool("int8", false, "serve the int8 weight/activation path")
	compare := flag.Bool("compare", true, "also run the batch-size-1 baseline and report the speedup")
	watch := flag.String("watch", "", "serve out of this checkpoint store, hot-reloading new versions (train→serve loop demo)")
	canary := flag.Float64("canary", 0, "with -watch: route this traffic fraction to an incoming version before cutover")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline (per-worker Queue/Batch/Infer lanes) to this file")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	metricsEvery := flag.Int("metrics-every", 0, "print a one-line metrics dump every N seconds (0 = off)")
	windowed := flag.Bool("windowed-latency", false, "latency quantiles over the most recent 64k requests instead of a whole-lifetime uniform sample")
	listen := flag.String("listen", "", "backend mode: serve the model over TCP on this address (prints the listen banner, drains on SIGTERM)")
	connect := flag.String("connect", "", "client mode: drive load against this remote D15R endpoint instead of an in-process server")
	fleetN := flag.Int("fleet", 0, "fleet mode: spawn N backend processes, route over them, and rolling-restart one mid-load")
	zoo := flag.Bool("zoo", false, "model zoo mode: train hep, fine-tune astro from it, add climate; serve all three through one routed fleet with a rolling restart mid-load")
	hedge := flag.Bool("hedge", false, "with -fleet: hedge tail requests at a second backend (one member is slowed to make the race real)")
	openloop := flag.Float64("openloop", 0, "open-loop (Poisson) arrival rate in req/s; 0 = closed-loop clients")
	netDelay := flag.Duration("net-delay", 0, "with -listen: inject this per-request delay (slow-backend fault injection)")
	kernels := flag.String("kernels", "auto", "compute kernel ISA: auto|scalar|avx2|avx512 (float results are bitwise identical across choices)")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	if err := tensor.SetKernels(*kernels); err != nil {
		fatalf("%v", err)
	}

	start := time.Now()
	if *debugAddr != "" {
		dbg, err := obs.StartDebugServer(*debugAddr, nil)
		if err != nil {
			fatalf("%v", err)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s/debug/pprof (runtime metrics at /metrics)\n", dbg.Addr())
	}
	stopDump := obs.Periodic(time.Duration(*metricsEvery)*time.Second, func() {
		fmt.Println("metrics:", obs.MetricsLine(start, liveMetrics.Load()))
	})
	defer stopDump()

	registry := serve.DefaultRegistry()
	demoCfg := hep.ModelConfig{Name: "hep-demo", ImageSize: *size, Filters: *filters, ConvUnits: *units, Classes: 2}
	serve.RegisterHEP(registry, "hep-demo", demoCfg)

	if *zoo {
		runZoo(demoCfg, *trainEvents, *trainIters, *lr, *requests, *clients, *seed)
		return
	}
	if *fleetN > 0 {
		model := *arch
		if model == "" {
			model = "hep-demo"
		}
		path := *checkpoint
		if path == "" {
			path = trainDemo(demoCfg, *trainEvents, *trainIters, *lr, *seed)
		}
		runFleet(*fleetN, path, model, demoCfg, *hedge, *openloop, *requests, *clients, *seed)
		return
	}
	if *connect != "" {
		model := *arch
		if model == "" {
			model = "hep-demo"
		}
		runConnect(*connect, model, *size, *openloop, *requests, *clients, *seed)
		return
	}

	if *watch != "" {
		prec := serve.Float32
		if *int8Mode {
			prec = serve.Int8
		}
		runWatchDemo(registry, demoCfg, *watch, prec, serve.DeployConfig{
			Server: serve.Config{MaxBatch: *batch, MaxLinger: *linger, Workers: *workers,
				WindowedLatency: *windowed},
			Canary: *canary,
		}, *trainEvents, *trainIters, *lr, *requests, *clients, *seed)
		return
	}

	path := *checkpoint
	archName := *arch
	if path == "" {
		if archName != "" && archName != "hep-demo" {
			fatalf("-arch %q needs -checkpoint (only hep-demo can self-train)", archName)
		}
		archName = "hep-demo"
		path = trainDemo(demoCfg, *trainEvents, *trainIters, *lr, *seed)
	} else if archName == "" {
		fatalf("-checkpoint needs -arch; registered: %v", registry.Archs())
	}

	prec := serve.Float32
	if *int8Mode {
		prec = serve.Int8
	}
	lm, err := registry.Load(archName, path, prec)
	if err != nil {
		fatalf("%v", err)
	}
	if *noPlans {
		lm.SetPlanning(false)
	}
	fmt.Printf("loaded %s (%s, plans %v): input %v -> output %v, %.2f MiB parameters, %s/sample forward\n\n",
		lm.ModelArch, lm.Prec, !*noPlans, lm.InShape(), lm.OutShape(),
		float64(lm.ParamBytes())/(1<<20), perf.FormatFlops(float64(lm.FwdFLOPsPerSample())))

	if *int8Mode {
		// Freeze activation scales from a sample of the request
		// distribution before minting serving replicas; architectures on
		// the emulated path have nothing to calibrate.
		calIn := requestPool(lm, 32, *seed+11)
		in := lm.InShape()
		per := 1
		for _, d := range in {
			per *= d
		}
		xb := tensor.New(append([]int{len(calIn)}, in...)...)
		for i, inp := range calIn {
			copy(xb.Data[i*per:(i+1)*per], inp.X.Data)
		}
		if err := lm.Calibrate(xb); err != nil {
			fmt.Printf("int8 calibration skipped: %v\n", err)
		} else {
			fmt.Printf("int8 activation scales calibrated over %d samples (%s kernels)\n", len(calIn), tensor.KernelISA())
		}
		reportInt8Agreement(registry, archName, path, lm, *seed)
	}

	cfg := serve.Config{MaxBatch: *batch, MaxLinger: *linger, Workers: *workers,
		WindowedLatency: *windowed}
	if *listen != "" {
		runListen(lm, archName, *listen, cfg, *netDelay)
		return
	}

	inputs := requestPool(lm, 256, *seed+3)
	// The tracer rides only on the dynamic-batching run: lanes are named
	// per worker index, so sharing one tracer across two servers would
	// interleave their spans.
	if *traceOut != "" {
		cfg.Trace = obs.NewTracer(0)
	}

	var base serve.Stats
	if *compare {
		fmt.Printf("--- baseline: batch size 1, %d requests, %d clients ---\n", *requests, *clients)
		base = runLoad(lm, serve.Config{MaxBatch: 1, Workers: *workers}, inputs, *clients, *requests, *openloop, *seed)
		fmt.Println()
	}

	fmt.Printf("--- dynamic batching: max batch %d, linger %v, %d requests, %d clients ---\n",
		*batch, *linger, *requests, *clients)
	dyn := runLoad(lm, cfg, inputs, *clients, *requests, *openloop, *seed)
	if cfg.Trace != nil {
		lanes := cfg.Trace.Snapshot()
		if err := cfg.Trace.WriteTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "deepserve: trace:", err)
		} else {
			fmt.Printf("trace: %d lanes written to %s (open in chrome://tracing or ui.perfetto.dev)\n",
				len(lanes), *traceOut)
		}
	}

	if *compare {
		speedup := dyn.Throughput / base.Throughput
		fmt.Printf("\nbatching speedup: %.2fx  (%.0f -> %.0f req/s)  p99 %v -> %v\n",
			speedup, base.Throughput, dyn.Throughput,
			base.P99.Round(time.Microsecond), dyn.P99.Round(time.Microsecond))
		if speedup < 2 {
			fmt.Println("note: speedup under 2x — per-sample compute dominates at this model size; shrink the model or raise -clients")
		}
	}
}

// runWatchDemo is the continuous-deployment loop, self-contained: train a
// demo model into a checkpoint store, serve it through a hot-reloading
// Deployment, keep closed-loop traffic flowing while training publishes an
// improved version, and report the swap — zero dropped requests — with
// per-version serving metrics (and canary routing with -canary > 0).
func runWatchDemo(registry *serve.Registry, cfg hep.ModelConfig, dir string, prec serve.Precision,
	dcfg serve.DeployConfig, events, iters int, lr float64, requests, clients int, seed uint64) {
	store, err := ckpt.Open(dir)
	if err != nil {
		fatalf("%v", err)
	}
	rng := tensor.NewRNG(seed)
	r := hep.NewRenderer(cfg.ImageSize)
	train := hep.GenerateDataset(hep.DefaultGenConfig(), r, events, 0.5, rng)
	problem := hep.NewTrainingProblem(train, cfg, seed+1)

	// Version 1: a half-trained model, published through the trainer's own
	// checkpoint hook (the store IS the train→serve interface).
	half := iters / 2
	if half < 1 {
		half = 1
	}
	publish := func(totalIters int) {
		res := core.TrainSync(problem, core.Config{
			Groups: 1, WorkersPerGroup: 1, GroupBatch: 32, Iterations: totalIters,
			Solver: opt.NewAdam(lr), Seed: seed,
			Checkpoint: core.CheckpointConfig{Dir: dir, Every: totalIters, Async: true,
				Arch: cfg.Name, Resume: true},
		})
		m, _, _ := store.Latest()
		fmt.Printf("published v%d at step %d (loss %.4f, fingerprint %s)\n",
			m.Version, m.Step, res.FinalLoss, m.Fingerprint)
	}
	if _, ok, _ := store.Latest(); !ok {
		fmt.Printf("training %s to step %d for the initial version...\n", cfg.Name, half)
		publish(half)
	}

	dcfg.Poll = 20 * time.Millisecond
	d, err := serve.NewDeployment(registry, cfg.Name, prec, store, dcfg)
	if err != nil {
		fatalf("%v", err)
	}
	defer d.Close()
	d.Watch()
	fmt.Printf("\nserving v%d from %s (canary fraction %.2f)\n", d.CurrentVersion(), dir, dcfg.Canary)

	inputs := requestPool(loadedModelInputs(d), 256, seed+3)
	var (
		next, completed, failed atomic.Int64
		wg                      sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				if _, err := d.Submit(inputs[i%len(inputs)].X); err != nil {
					failed.Add(1)
				} else {
					completed.Add(1)
				}
			}
		}()
	}
	// Mid-load: continue training to full depth and publish — the watcher
	// picks the new version up while the clients keep hammering.
	for next.Load() < int64(requests/3) {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("resuming training to step %d while serving...\n", iters)
	publish(iters)
	swapDeadline := time.Now().Add(10 * time.Second)
	for d.Swaps() == 0 && time.Now().Before(swapDeadline) {
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()

	fmt.Printf("\nhot reload: %d swap(s), %d rejected, final version v%d\n",
		d.Swaps(), d.Rejected(), d.CurrentVersion())
	fmt.Printf("traffic: %d/%d requests completed, %d failed across the swap\n",
		completed.Load(), requests, failed.Load())
	for _, vs := range d.Versions() {
		role := "live"
		if vs.Canary {
			role = "canary"
		}
		fmt.Printf("  v%d (%s): %s\n", vs.Version, role, vs.Stats)
	}
	if failed.Load() > 0 {
		fatalf("hot reload dropped %d requests", failed.Load())
	}
}

// loadedModelInputs adapts the deployment's live model shape for the
// request pool builder.
func loadedModelInputs(d *serve.Deployment) *serve.LoadedModel { return d.Loaded() }

// trainDemo trains the demo classifier synchronously (quickstart-style),
// evaluates it on held-out events, and checkpoints it to a temp file.
func trainDemo(cfg hep.ModelConfig, events, iters int, lr float64, seed uint64) string {
	rng := tensor.NewRNG(seed)
	fmt.Printf("training %s: %d events, %d iterations (%dx%dx3 images, %d filters)\n",
		cfg.Name, events, iters, cfg.ImageSize, cfg.ImageSize, cfg.Filters)
	r := hep.NewRenderer(cfg.ImageSize)
	train := hep.GenerateDataset(hep.DefaultGenConfig(), r, events, 0.5, rng)
	test := hep.GenerateDataset(hep.DefaultGenConfig(), r, events, 0.5, rng)

	problem := hep.NewTrainingProblem(train, cfg, seed+1)
	res := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 32, Iterations: iters,
		Solver: opt.NewAdam(lr), Seed: seed,
	})
	fmt.Printf("trained: loss %.4f -> %.4f\n", res.Stats[0].Loss, res.FinalLoss)

	rep := problem.NewReplica()
	core.InstallWeights(rep, res.FinalWeights)
	scores := hep.ScoreDataset(rep, test, 64)
	correct := 0
	for i, s := range scores {
		if (s > 0.5) == (test.Labels[i] == 1) {
			correct++
		}
	}
	fmt.Printf("held-out accuracy: %.1f%% over %d events\n", 100*float64(correct)/float64(len(scores)), len(scores))

	path := filepath.Join(os.TempDir(), "deepserve-demo.d15w")
	if err := nn.SaveFile(path, hep.ReplicaParams(rep)); err != nil {
		fatalf("checkpoint: %v", err)
	}
	fmt.Printf("checkpointed to %s\n\n", path)
	return path
}

// requestPool renders n per-sample request tensors: synthetic HEP events
// for 3-channel models, Gaussian fields otherwise (climate).
func requestPool(lm *serve.LoadedModel, n int, seed uint64) []*serve.LoadInput {
	in := lm.InShape()
	outLen := 1
	for _, d := range lm.OutShape() {
		outLen *= d
	}
	check := func(y *tensor.Tensor) error {
		if y.Len() != outLen {
			return fmt.Errorf("response has %d values, want %d", y.Len(), outLen)
		}
		return nil
	}
	rng := tensor.NewRNG(seed)
	inputs := make([]*serve.LoadInput, n)
	if len(in) == 3 && in[0] == hep.Channels {
		ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(in[1]), n, 0.5, rng)
		per := in[0] * in[1] * in[2]
		for i := range inputs {
			inputs[i] = &serve.LoadInput{X: tensor.FromSlice(ds.Images.Data[i*per:(i+1)*per], in...), Check: check}
		}
		return inputs
	}
	for i := range inputs {
		x := tensor.New(in...)
		rng.FillNorm(x, 0, 1)
		inputs[i] = &serve.LoadInput{X: x, Check: check}
	}
	return inputs
}

// runLoad starts a server, saturates it with the closed-loop generator, and
// prints and returns its stats snapshot, including whole-process heap
// allocations per request — the number the compiled-plan datapath exists
// to drive toward the per-batch floor.
func runLoad(lm *serve.LoadedModel, cfg serve.Config, inputs []*serve.LoadInput, clients, total int, rate float64, seed uint64) serve.Stats {
	s, err := serve.NewServer(lm, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	defer s.Close()
	liveMetrics.Store(s.Metrics()) // the periodic dump follows the active server
	// Warm plan buckets and steady-state pools before measuring.
	warm := total / 10
	if warm > 2000 {
		warm = 2000
	}
	if warm > 0 {
		if res := serve.RunClosedLoop(s, inputs, clients, warm); res.Err != nil {
			fatalf("warmup run: %v", res.Err)
		}
		s.ResetStats() // quantiles must not include plan-compile spikes
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res := driveLoad(s, inputs, clients, total, rate, seed)
	if res.Err != nil {
		fatalf("load run: %v", res.Err)
	}
	runtime.ReadMemStats(&after)
	st := s.Stats()
	fmt.Println(st)
	if rate > 0 {
		printLoadResult(res) // open loop: client-observed tail is the point
	}
	fmt.Printf("  allocs/request %.1f (whole process, steady state)\n",
		float64(after.Mallocs-before.Mallocs)/float64(total))
	return st
}

// reportInt8Agreement compares int8 logits against the float32 path over
// the request pool — the convergence-relevance check the paper's §VIII-A
// quantisation outlook asks for, applied to serving.
func reportInt8Agreement(registry *serve.Registry, arch, path string, lm8 *serve.LoadedModel, seed uint64) {
	lm32, err := registry.Load(arch, path, serve.Float32)
	if err != nil {
		fatalf("%v", err)
	}
	r32, err := lm32.NewReplica()
	if err != nil {
		fatalf("%v", err)
	}
	r8, err := lm8.NewReplica()
	if err != nil {
		fatalf("%v", err)
	}
	inputs := requestPool(lm32, 128, seed+7)
	in := append([]int{1}, lm32.InShape()...)
	agree, total := 0, 0
	var maxDelta float64
	for _, inp := range inputs {
		x := tensor.FromSlice(inp.X.Data, in...)
		y32 := r32.Infer(x)
		y8 := r8.Infer(x.Clone()) // int8 path round-trips its input in place
		if argmax(y32.Data) == argmax(y8.Data) {
			agree++
		}
		total++
		for i := range y32.Data {
			d := float64(y32.Data[i] - y8.Data[i])
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
		}
	}
	fmt.Printf("int8 vs float32: top-1 agreement %.1f%% over %d inputs, max |Δlogit| %.4f\n\n",
		100*float64(agree)/float64(total), total, maxDelta)
}

func argmax(v []float32) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "deepserve: "+format+"\n", args...)
	os.Exit(1)
}
