package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"deep15pf/internal/hep"
	"deep15pf/internal/netserve"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// runListen is backend mode: put the loaded model on the network and
// serve until SIGTERM, then drain (goaway handshake, every in-flight
// request answered) and exit. The listen banner on stdout is the
// handshake a fleet parent scans for the ephemeral port.
func runListen(lm *serve.LoadedModel, model, addr string, cfg serve.Config, delay time.Duration) {
	eng, err := serve.NewServer(lm, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	engines := map[string]*serve.Server{model: eng}
	ns, err := netserve.NewServer(addr, engines, netserve.ServerConfig{Delay: delay})
	if err != nil {
		fatalf("%v", err)
	}
	liveMetrics.Store(eng.Metrics())
	ns.PrintBanner(os.Stdout)
	if delay > 0 {
		fmt.Fprintf(os.Stderr, "deepserve: serving %q with %v injected per-request delay\n", model, delay)
	}
	ns.DrainOnSignal(engines, 15*time.Second)
	fmt.Printf("drained: %s\n", eng.Stats())
}

// runConnect is client mode: drive the load generator against a remote
// D15R endpoint (a backend or a router) exactly as it drives an
// in-process server.
func runConnect(addr, model string, size int, rate float64, requests, clients int, seed uint64) {
	c, err := netserve.Dial(addr)
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()
	inputs := buildNetInputs(size, 256, seed+3)
	mode := "closed-loop"
	if rate > 0 {
		mode = fmt.Sprintf("open-loop %.0f req/s", rate)
	}
	fmt.Printf("--- %s against %s, model %q, %d requests, %d clients ---\n", mode, addr, model, requests, clients)
	res := driveLoad(c.Bind(model), inputs, clients, requests, rate, seed)
	printLoadResult(res)
	if res.Err != nil {
		fatalf("load run: %v", res.Err)
	}
	if res.Dropped > 0 {
		fatalf("%d requests dropped", res.Dropped)
	}
}

// runFleet is the multi-process demo and smoke target: spawn n backend
// processes over one checkpoint, route over them (hedged if asked, with
// one member deliberately slowed so the hedge race is real), run the load
// generator through the router, and rolling-restart a member mid-load.
// Exits nonzero if a single request is dropped.
func runFleet(n int, ckpt, model string, demo hep.ModelConfig, hedge bool, rate float64, requests, clients int, seed uint64) {
	if n < 2 {
		fatalf("-fleet needs at least 2 members (got %d)", n)
	}
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	spawn := func(delay time.Duration) (*netserve.Proc, error) {
		args := []string{exe, "-listen", "127.0.0.1:0", "-checkpoint", ckpt, "-arch", model,
			"-size", strconv.Itoa(demo.ImageSize), "-filters", strconv.Itoa(demo.Filters),
			"-units", strconv.Itoa(demo.ConvUnits)}
		if delay > 0 {
			args = append(args, "-net-delay", delay.String())
		}
		return netserve.StartProc(args, nil, 60*time.Second)
	}

	procs := make([]*netserve.Proc, n)
	addrs := make([]string, n)
	for i := range procs {
		var delay time.Duration
		if hedge && i == 0 {
			// One deliberately slow member makes the hedge demo honest:
			// its requests hit the adaptive deadline and race a second
			// attempt at a healthy member.
			delay = 4 * time.Millisecond
		}
		p, err := spawn(delay)
		if err != nil {
			fatalf("fleet member %d: %v", i, err)
		}
		procs[i], addrs[i] = p, p.Addr
	}
	defer func() {
		for _, p := range procs {
			if p != nil {
				p.Kill()
			}
		}
	}()
	fmt.Printf("fleet: %d members up (%v), hedge %v\n", n, addrs, hedge)

	r, err := netserve.NewRouter("127.0.0.1:0", addrs, netserve.RouterConfig{Hedge: hedge})
	if err != nil {
		fatalf("router: %v", err)
	}
	defer r.Close()
	c, err := netserve.Dial(r.Addr())
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()
	bound := c.Bind(model)
	inputs := buildNetInputs(demo.ImageSize, 256, seed+3)

	// Warm every member's pools and plans before measuring.
	if res := serve.RunClosedLoop(bound, inputs, clients, 2*clients); res.Err != nil {
		fatalf("fleet warmup: %v", res.Err)
	}

	mode := "closed-loop"
	if rate > 0 {
		mode = fmt.Sprintf("open-loop %.0f req/s", rate)
	}
	fmt.Printf("--- %s through the router: %d requests, %d clients, rolling restart mid-load ---\n",
		mode, requests, clients)
	var res serve.LoadResult
	done := make(chan struct{})
	go func() {
		defer close(done)
		res = driveLoad(bound, inputs, clients, requests, rate, seed)
	}()
	time.Sleep(50 * time.Millisecond) // load is flowing
	restarted, err := netserve.RollingRestart(r, procs[n-1], func() (*netserve.Proc, error) {
		return spawn(0)
	}, 20*time.Second)
	if err != nil {
		fatalf("rolling restart: %v", err)
	}
	procs[n-1] = restarted
	<-done

	printLoadResult(res)
	snap := r.Metrics().Snapshot()
	fmt.Printf("  router: %s\n", snap.Line())
	for _, p := range procs {
		p.Drain(15 * time.Second)
	}
	procs = nil
	if res.Err != nil {
		fatalf("fleet load: %v", res.Err)
	}
	if res.Dropped > 0 {
		fatalf("rolling restart dropped %d requests", res.Dropped)
	}
	fmt.Println("rolling restart: zero dropped requests")
}

// driveLoad picks the arrival process: closed loop (each client submits
// the moment its last request completes) or open loop (Poisson arrivals
// at rate req/s — the honest tail-latency workload).
func driveLoad(s serve.Submitter, inputs []*serve.LoadInput, clients, total int, rate float64, seed uint64) serve.LoadResult {
	if rate > 0 {
		return serve.RunOpenLoop(s, inputs, rate, total, seed)
	}
	return serve.RunClosedLoop(s, inputs, clients, total)
}

func printLoadResult(res serve.LoadResult) {
	fmt.Printf("  client-observed: %d completed, %d dropped, %.0f req/s, p50 %v  p95 %v  p99 %v\n",
		res.Requests, res.Dropped, res.Throughput,
		res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond), res.P99.Round(time.Microsecond))
}

// buildNetInputs renders HEP-shaped request tensors locally — client and
// fleet modes have no loaded model to take shapes from, only the flags.
func buildNetInputs(size, n int, seed uint64) []*serve.LoadInput {
	rng := tensor.NewRNG(seed)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(size), n, 0.5, rng)
	per := hep.Channels * size * size
	inputs := make([]*serve.LoadInput, n)
	for i := range inputs {
		inputs[i] = &serve.LoadInput{X: tensor.FromSlice(ds.Images.Data[i*per:(i+1)*per], hep.Channels, size, size)}
	}
	return inputs
}
