package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"deep15pf/internal/astro"
	"deep15pf/internal/climate"
	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/netserve"
	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// runZoo is the three-science model zoo: train the hep demo classifier,
// fine-tune the astro classifier's head from that very checkpoint (the
// frozen backbone exchanges zero gradient bytes), stand up a tiny climate
// detector, and serve all three workloads concurrently from one registry
// through the routed network tier — two in-process backends each holding
// all three engines, per-model routing, and an in-process make-before-break
// rolling restart mid-load. Exits nonzero if a single request is dropped.
func runZoo(demo hep.ModelConfig, events, iters int, lr float64, requests, clients int, seed uint64) {
	// --- Model 1: the hep demo classifier (also the astro donor). ---
	hepPath := trainDemo(demo, events, iters, lr, seed)

	// --- Model 2: astro, fine-tuned from the hep checkpoint. ---
	acfg := astro.ModelConfig{Name: "astro-demo", ImageSize: demo.ImageSize,
		Filters: demo.Filters, ConvUnits: demo.ConvUnits, Classes: astro.NumClasses}
	astroPath := finetuneAstroDemo(acfg, hepPath, iters, seed)

	// --- Model 3: a tiny climate detector, briefly trained. ---
	ccfg := climate.ModelConfig{Name: "climate-demo", Size: 16,
		EncChannels: []int{4, 6}, EncStrides: []int{2, 2},
		DecChannels: []int{4, climate.NumChannels}, WithDecoder: true}
	climatePath := trainClimateDemo(ccfg, seed)

	// --- One registry, three workloads. ---
	reg := serve.NewRegistry()
	serve.RegisterHEP(reg, demo.Name, demo)
	serve.RegisterAstro(reg, acfg.Name, acfg)
	serve.RegisterClimate(reg, ccfg.Name, ccfg)
	models := map[string]*serve.LoadedModel{}
	for _, m := range []struct{ arch, path string }{
		{demo.Name, hepPath}, {acfg.Name, astroPath}, {ccfg.Name, climatePath},
	} {
		lm, err := reg.Load(m.arch, m.path, serve.Float32)
		if err != nil {
			fatalf("zoo: load %s: %v", m.arch, err)
		}
		models[m.arch] = lm
	}
	fmt.Println("\nzoo registry:")
	for _, mi := range reg.Models() {
		fmt.Printf("  %-14s problem %-8s input %v\n", mi.Arch, mi.Problem, models[mi.Arch].InShape())
	}

	// --- Two backends, each serving all three models. ---
	ns1, eng1 := startZooBackend(models)
	ns2, eng2 := startZooBackend(models)
	r, err := netserve.NewRouter("127.0.0.1:0", []string{ns1.Addr(), ns2.Addr()}, netserve.RouterConfig{})
	if err != nil {
		fatalf("zoo: router: %v", err)
	}
	defer r.Close()
	c, err := netserve.Dial(r.Addr())
	if err != nil {
		fatalf("zoo: %v", err)
	}
	defer c.Close()
	fmt.Printf("\nzoo fleet: 2 backends x 3 models behind router %s\n", r.Addr())

	archs := make([]string, 0, 3)
	for _, mi := range reg.Models() {
		archs = append(archs, mi.Arch)
	}
	perModel := requests / len(archs)
	perClients := clients / len(archs)
	if perClients < 4 {
		perClients = 4
	}
	inputs := map[string][]*serve.LoadInput{}
	for _, arch := range archs {
		inputs[arch] = zooInputs(models[arch], 64, seed+7)
		// Warm every backend's plan buckets for this model.
		if res := serve.RunClosedLoop(c.Bind(arch), inputs[arch], perClients, 2*perClients); res.Err != nil {
			fatalf("zoo: warmup %s: %v", arch, res.Err)
		}
	}

	// --- Concurrent load on all three models, restart mid-load. ---
	fmt.Printf("--- %d requests/model, %d clients/model, rolling restart mid-load ---\n",
		perModel, perClients)
	results := map[string]serve.LoadResult{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, arch := range archs {
		wg.Add(1)
		go func(arch string) {
			defer wg.Done()
			res := serve.RunClosedLoop(c.Bind(arch), inputs[arch], perClients, perModel)
			mu.Lock()
			results[arch] = res
			mu.Unlock()
		}(arch)
	}

	// In-process make-before-break: bring a third backend up, add it to the
	// dispatch set, then drain the first (goaway; in-flights complete) and
	// only then close its engines.
	time.Sleep(50 * time.Millisecond) // load is flowing on all three models
	ns3, eng3 := startZooBackend(models)
	if err := r.AddBackend(ns3.Addr()); err != nil {
		fatalf("zoo: add backend: %v", err)
	}
	ns1.Drain(15 * time.Second)
	for _, e := range eng1 {
		e.Close()
	}
	fmt.Printf("rolled backend %s out, %s in\n", ns1.Addr(), ns3.Addr())
	wg.Wait()
	defer func() {
		for _, pair := range []struct {
			ns   *netserve.Server
			engs map[string]*serve.Server
		}{{ns2, eng2}, {ns3, eng3}} {
			pair.ns.Close()
			for _, e := range pair.engs {
				e.Close()
			}
		}
	}()

	// --- Per-model report: client-observed quantiles + router counters. ---
	fmt.Printf("\n%-14s %9s %8s %9s %10s %10s %10s %8s %6s\n",
		"model", "requests", "dropped", "req/s", "p50", "p95", "p99", "routed", "shed")
	dropped := 0
	for _, arch := range archs {
		res := results[arch]
		if res.Err != nil {
			fatalf("zoo: %s load: %v", arch, res.Err)
		}
		dropped += res.Dropped
		routed, hedged, shed := r.ModelCounts(arch)
		fmt.Printf("%-14s %9d %8d %9.0f %10v %10v %10v %8d %6d\n",
			arch, res.Requests, res.Dropped, res.Throughput,
			res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond),
			res.P99.Round(time.Microsecond), routed+hedged, shed)
	}
	// Engine-side per-model accounting from the surviving backends' labelled
	// instruments (serve.requests.model.<arch>), summed across the fleet.
	fmt.Println("\nbackend-side per-model requests (serve.requests.model.* across live backends):")
	for _, arch := range archs {
		var n int64
		for _, engs := range []map[string]*serve.Server{eng2, eng3} {
			n += engs[arch].Metrics().Snapshot().Counters["serve.requests.model."+arch]
		}
		fmt.Printf("  %-14s %d\n", arch, n)
	}

	if dropped > 0 {
		fatalf("zoo rolling restart dropped %d requests", dropped)
	}
	fmt.Println("\nzoo rolling restart: zero dropped requests")
}

// startZooBackend mints one serving engine per loaded model and puts all of
// them behind a single network listener on an ephemeral loopback port.
func startZooBackend(models map[string]*serve.LoadedModel) (*netserve.Server, map[string]*serve.Server) {
	engines := map[string]*serve.Server{}
	for arch, lm := range models {
		eng, err := serve.NewServer(lm, serve.Config{MaxBatch: 16, MaxLinger: time.Millisecond, Workers: 2})
		if err != nil {
			fatalf("zoo: engine %s: %v", arch, err)
		}
		engines[arch] = eng
	}
	ns, err := netserve.NewServer("127.0.0.1:0", engines, netserve.ServerConfig{})
	if err != nil {
		fatalf("zoo: backend: %v", err)
	}
	return ns, engines
}

// finetuneAstroDemo warm-starts the astro classifier's conv backbone from
// the hep checkpoint, freezes it, trains the fresh 3-class head, and
// checkpoints the result — the transfer-learning leg of the zoo.
func finetuneAstroDemo(cfg astro.ModelConfig, donorPath string, iters int, seed uint64) string {
	donor, err := nn.ReadWeightBlobsFile(donorPath)
	if err != nil {
		fatalf("zoo: donor: %v", err)
	}
	rng := tensor.NewRNG(seed + 20)
	train := astro.GenerateDataset(astro.DefaultGenConfig(), astro.NewRenderer(cfg.ImageSize), 128, rng)
	freeze := astro.BackboneLayerNames(cfg.ConvUnits)
	problem, mapped, err := astro.NewTransferProblem(train, cfg, seed+21, donor, freeze)
	if err != nil {
		fatalf("zoo: transfer: %v", err)
	}
	fmt.Printf("fine-tuning %s: %d tensors from the hep checkpoint, %d frozen conv layers, head-only training\n",
		cfg.Name, len(mapped.Mapped), len(freeze))
	res := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 32, Iterations: iters,
		Solver: opt.NewAdamFull(1e-2, 0.9, 0.999, 1e-8), Seed: seed,
	})
	rep := problem.NewReplica()
	core.InstallWeights(rep, res.FinalWeights)
	fmt.Printf("fine-tuned: loss %.4f, train accuracy %.1f%% (frozen layers exchanged zero gradient bytes)\n",
		res.FinalLoss, 100*astro.EvalAccuracy(rep, train, 32))
	path := filepath.Join(os.TempDir(), "deepserve-zoo-astro.d15w")
	if err := nn.SaveFile(path, astro.ReplicaParams(rep)); err != nil {
		fatalf("zoo: checkpoint astro: %v", err)
	}
	return path
}

// trainClimateDemo trains the tiny climate detector for a handful of steps
// (enough for genuinely trained weights, not accuracy) and checkpoints it.
func trainClimateDemo(cfg climate.ModelConfig, seed uint64) string {
	rng := tensor.NewRNG(seed + 30)
	ds := climate.GenerateDataset(climate.DefaultGenConfig(cfg.Size), 32, rng)
	problem := climate.NewTrainingProblem(ds, cfg, seed+31)
	fmt.Printf("training %s: %d fields, 6 iterations (%dx%dx%d input)\n",
		cfg.Name, 32, cfg.Size, cfg.Size, climate.NumChannels)
	res := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 8, Iterations: 6,
		Solver: opt.NewAdam(1e-3), Seed: seed,
	})
	rep := problem.NewReplica()
	core.InstallWeights(rep, res.FinalWeights)
	path := filepath.Join(os.TempDir(), "deepserve-zoo-climate.d15w")
	if err := nn.SaveFile(path, problem.Net(rep).Params()); err != nil {
		fatalf("zoo: checkpoint climate: %v", err)
	}
	return path
}

// zooInputs renders n workload-appropriate request tensors for one loaded
// model: hep events for the hep input shape, astro cutouts for astro's,
// Gaussian fields for the climate detector.
func zooInputs(lm *serve.LoadedModel, n int, seed uint64) []*serve.LoadInput {
	in := lm.InShape()
	rng := tensor.NewRNG(seed)
	inputs := make([]*serve.LoadInput, n)
	switch {
	case lm.ModelArch == "astro-demo" && len(in) == 3:
		ds := astro.GenerateDataset(astro.DefaultGenConfig(), astro.NewRenderer(in[1]), n, rng)
		per := in[0] * in[1] * in[2]
		for i := range inputs {
			inputs[i] = &serve.LoadInput{X: tensor.FromSlice(ds.Images.Data[i*per:(i+1)*per], in...)}
		}
	case len(in) == 3 && in[0] == hep.Channels:
		ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(in[1]), n, 0.5, rng)
		per := in[0] * in[1] * in[2]
		for i := range inputs {
			inputs[i] = &serve.LoadInput{X: tensor.FromSlice(ds.Images.Data[i*per:(i+1)*per], in...)}
		}
	default:
		for i := range inputs {
			x := tensor.New(in...)
			rng.FillNorm(x, 0, 1)
			inputs[i] = &serve.LoadInput{X: x}
		}
	}
	return inputs
}
