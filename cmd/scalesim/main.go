// Command scalesim runs the Cori Phase II cluster model: strong scaling
// (Fig 6), weak scaling (Fig 7), the full-system configurations (§VI-B3)
// and the resilience experiment (§VIII-A).
//
// Usage:
//
//	scalesim -exp strong -net hep -groups 4
//	scalesim -exp weak -net climate -groups 8
//	scalesim -exp full
//	scalesim -exp failure
//	scalesim -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deep15pf/internal/cluster"
)

func main() {
	exp := flag.String("exp", "all", "experiment: strong | weak | full | failure | curve | all")
	netName := flag.String("net", "both", "network: hep | climate | both")
	groups := flag.Int("groups", 0, "restrict to one group count (0 = sweep 1,2,4[,8])")
	iters := flag.Int("iters", 12, "simulated iterations per configuration")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	m := cluster.CoriPhaseII()
	profiles := map[string]cluster.NetProfile{}
	if *netName == "hep" || *netName == "both" {
		profiles["hep"] = cluster.HEPProfile()
	}
	if *netName == "climate" || *netName == "both" {
		profiles["climate"] = cluster.ClimateProfile()
	}
	if len(profiles) == 0 {
		fmt.Fprintf(os.Stderr, "unknown -net %q\n", *netName)
		os.Exit(2)
	}

	for name, p := range profiles {
		fmt.Printf("=== %s: %.1f GF/sample (exec %.1f), model %.2f MiB, %d trainable layers ===\n",
			name, p.FlopsPerSample/1e9, p.ExecPerSample/1e9,
			float64(p.TotalModelBytes)/(1<<20), p.NumTrainableLayers())
		if *exp == "curve" || *exp == "all" {
			fmt.Println("-- single-node efficiency curve --")
			for _, b := range []float64{1, 2, 4, 8, 16, 2048} {
				fmt.Printf("  batch %-5g eff %.4f rate %6.2f TF/s\n", b, p.Eff.At(b), p.NodeFlopRate(m, b)/1e12)
			}
		}
		groupSweep := []int{1, 2, 4}
		if *groups > 0 {
			groupSweep = []int{*groups}
		}
		if *exp == "strong" || *exp == "all" {
			fmt.Println("-- strong scaling (Fig 6): batch 2048 per group --")
			nodes := []int{1, 64, 128, 256, 512, 1024}
			for _, g := range groupSweep {
				pts := cluster.StrongScaling(m, p, nodes, g, 2048, *iters, *seed)
				printCurve(labelFor(g), pts)
			}
		}
		if *exp == "weak" || *exp == "all" {
			fmt.Println("-- weak scaling (Fig 7): batch 8 per node --")
			nodes := []int{1, 256, 512, 1024, 2048}
			ws := groupSweep
			if *groups == 0 {
				ws = []int{1, 2, 4, 8}
			}
			for _, g := range ws {
				pts := cluster.WeakScaling(m, p, nodes, g, 8, *iters, *seed)
				printCurve(labelFor(g), pts)
			}
		}
		if *exp == "full" || *exp == "all" {
			fmt.Println("-- full system (§VI-B3) --")
			var fr cluster.FullSystemResult
			if name == "hep" {
				fr = cluster.FullSystem(m, p, 9594, 9, 1066, 2*(*iters), 0, *seed)
			} else {
				fr = cluster.FullSystem(m, p, 9608, 8, 9608, *iters, 10, *seed)
			}
			fmt.Println("  " + fr.String())
		}
		if *exp == "failure" || *exp == "all" {
			fmt.Println("-- failure injection (§VIII-A): one node dies mid-run --")
			for _, g := range []int{1, 4} {
				cfg := cluster.RunConfig{
					Nodes: 1024, Groups: g, BatchPerGroup: 2048, Iterations: *iters,
					Seed:    *seed,
					Failure: &cluster.FailureSpec{Group: 0, StartIter: *iters / 2, Dead: true},
				}
				r := cluster.Simulate(m, p, cfg)
				healthy := cluster.Simulate(m, p, cluster.RunConfig{
					Nodes: 1024, Groups: g, BatchPerGroup: 2048, Iterations: *iters, Seed: *seed,
				})
				fmt.Printf("  groups=%d: completed %d/%d images (%.0f%% of healthy run), halted=%v\n",
					g, r.TotalImages, healthy.TotalImages,
					100*float64(r.TotalImages)/float64(healthy.TotalImages), r.Halted)
			}
		}
		fmt.Println()
	}
}

func labelFor(g int) string {
	if g == 1 {
		return "sync      "
	}
	return fmt.Sprintf("hybrid g=%d", g)
}

func printCurve(label string, pts []cluster.ScalePoint) {
	var b strings.Builder
	fmt.Fprintf(&b, "  %s: ", label)
	for _, pt := range pts {
		fmt.Fprintf(&b, "%5d:%6.0fx ", pt.Nodes, pt.Speedup)
	}
	fmt.Println(b.String())
}
