// Command astrotrain trains the third science workload: galaxy/star-cluster
// morphology classification on synthetic survey cutouts (internal/astro).
// Its headline mode is transfer learning — the PHANGS-HST/DES pattern of
// §VIII's outlook: -init-from warm-starts the conv backbone from a trained
// HEP checkpoint store, freezes it, and trains only the fresh 3-class head.
// Frozen layers hold no gradient buffers, run no backward pass, and push
// zero gradient bytes through the parameter servers — the wire report at
// the end shows exactly the head's traffic.
//
// Usage:
//
//	astrotrain -iters 150 -train 1024                 # from scratch
//	heptrain -ckpt-dir /tmp/hep -ckpt-every 50        # train the donor
//	astrotrain -init-from /tmp/hep -iters 60          # fine-tune the head
//	astrotrain -init-from /tmp/hep -no-freeze         # warm-start, train all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"deep15pf/internal/astro"
	"deep15pf/internal/ckpt"
	"deep15pf/internal/core"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "astrotrain: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	groups := flag.Int("groups", 1, "compute groups (1 = synchronous)")
	workers := flag.Int("workers", 1, "workers per group")
	iters := flag.Int("iters", 150, "iterations per group")
	batch := flag.Int("batch", 64, "samples per group per iteration")
	trainN := flag.Int("train", 1024, "training cutouts")
	testN := flag.Int("test", 2048, "test cutouts")
	size := flag.Int("size", 16, "cutout size (match the donor's -size when fine-tuning)")
	filters := flag.Int("filters", 8, "conv filters (must match the donor when fine-tuning)")
	units := flag.Int("units", 3, "conv+pool units (must match the donor when fine-tuning)")
	lr := flag.Float64("lr", 2e-3, "ADAM learning rate")
	beta1 := flag.Float64("beta1", 0.9, "ADAM beta1")
	prefetch := flag.Int("prefetch", 1, "batches of ingest lookahead per worker")
	initFrom := flag.String("init-from", "", "warm-start the conv backbone from this checkpoint store directory (or a .d15w file)")
	noFreeze := flag.Bool("no-freeze", false, "with -init-from: leave the transferred backbone trainable instead of freezing it")
	freezeUnits := flag.Int("freeze-units", -1, "with -init-from: freeze only the first N conv units (-1 = all of them); the rest fine-tune")
	ckptDir := flag.String("ckpt-dir", "", "checkpoint store directory for this run's own snapshots")
	ckptEvery := flag.Int("ckpt-every", 10, "snapshot every N iterations (needs -ckpt-dir)")
	ckptAsync := flag.Bool("ckpt-async", true, "flush snapshots on a background writer")
	ckptKeep := flag.Int("ckpt-keep", 5, "retain only the newest N versions (0 = keep all)")
	resume := flag.Bool("resume", false, "resume from the newest snapshot in -ckpt-dir")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	kernels := flag.String("kernels", "auto", "compute kernel ISA: auto|scalar|avx2|avx512")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	if err := tensor.SetKernels(*kernels); err != nil {
		fatalf("%v", err)
	}
	if *noFreeze && *initFrom == "" {
		fatalf("-no-freeze needs -init-from")
	}

	rng := tensor.NewRNG(*seed)
	r := astro.NewRenderer(*size)
	gen := astro.DefaultGenConfig()
	fmt.Printf("generating %d train + %d test cutouts (%dx%dx3 bands, 3 morphology classes)...\n",
		*trainN, *testN, *size, *size)
	train := astro.GenerateDataset(gen, r, *trainN, rng)
	test := astro.GenerateDataset(gen, r, *testN, rng)

	model := astro.ModelConfig{Name: "astrotrain", ImageSize: *size, Filters: *filters, ConvUnits: *units, Classes: astro.NumClasses}

	var problem *astro.TrainingProblem
	if *initFrom != "" {
		donor, source := readDonor(*initFrom)
		freeze := astro.BackboneLayerNames(*units)
		if *freezeUnits >= 0 && *freezeUnits < len(freeze) {
			freeze = freeze[:*freezeUnits]
		}
		if *noFreeze {
			freeze = nil
		}
		p, mapped, err := astro.NewTransferProblem(train, model, *seed+1, donor, freeze)
		if err != nil {
			fatalf("%v", err)
		}
		problem = p
		fmt.Printf("transfer from %s: %d tensors mapped (%s)\n",
			source, len(mapped.Mapped), strings.Join(mapped.Mapped, ", "))
		if len(mapped.Unused) > 0 {
			fmt.Printf("  donor-only (dropped): %s\n", strings.Join(mapped.Unused, ", "))
		}
		if len(mapped.Extra) > 0 {
			fmt.Printf("  fresh in this model:  %s\n", strings.Join(mapped.Extra, ", "))
		}
		if len(freeze) > 0 {
			fmt.Printf("  frozen backbone: %s — gradients, backward compute and PS traffic skip these layers\n",
				strings.Join(freeze, ", "))
		} else {
			fmt.Println("  backbone left trainable (-no-freeze): warm start only")
		}
	} else {
		problem = astro.NewTrainingProblem(train, model, *seed+1)
	}

	cfg := core.Config{
		Groups: *groups, WorkersPerGroup: *workers, GroupBatch: *batch,
		Iterations: *iters,
		Solver:     opt.NewAdamFull(*lr, *beta1, 0.999, 1e-8),
		Seed:       *seed,
		Prefetch:   *prefetch,
	}
	if *traceOut != "" {
		cfg.Trace = obs.NewTracer(0)
	}
	if *ckptDir != "" {
		cfg.Checkpoint = core.CheckpointConfig{
			Dir: *ckptDir, Every: *ckptEvery, Async: *ckptAsync, Keep: *ckptKeep,
			Arch: "astrotrain", Problem: "astro", SamplesPerEpoch: *trainN, Resume: *resume,
		}
	} else if *resume {
		fatalf("-resume needs -ckpt-dir")
	}

	var res core.Result
	if *groups == 1 {
		fmt.Printf("training synchronously: %d workers, batch %d, %d iterations\n", *workers, *batch, *iters)
		res = core.TrainSync(problem, cfg)
	} else {
		fmt.Printf("training hybrid: %d groups x %d workers, batch %d/group, %d iterations/group\n",
			*groups, *workers, *batch, *iters)
		res = core.TrainHybrid(problem, cfg)
	}

	every := len(res.Stats) / 10
	if every < 1 {
		every = 1
	}
	for i, s := range res.Stats {
		if i%every == 0 || i == len(res.Stats)-1 {
			fmt.Printf("  update %4d  group %d  loss %.4f  staleness %.1f\n", s.Seq, s.Group, s.Loss, s.Staleness)
		}
	}
	fmt.Printf("final loss %.4f, mean staleness %.2f\n", res.FinalLoss, res.MeanStaleness)
	if w := res.Wire; w.Pushes > 0 {
		fmt.Printf("wire: %d pushes, %.2f MiB gradients, %.2f MiB weights",
			w.Pushes, float64(w.GradBytes)/(1<<20), float64(w.WeightBytes)/(1<<20))
		if *initFrom != "" && !*noFreeze && *freezeUnits != 0 {
			fmt.Print("  (frozen layers exchanged zero gradient bytes)")
		}
		fmt.Println()
	}
	if ck := res.Ckpt; ck.Snapshots > 0 {
		fmt.Printf("ckpt: %d snapshots (latest v%d), %.1f ms exposed to compute\n",
			ck.Snapshots, ck.LastVersion, ck.ExposedSeconds*1e3)
	}
	fmt.Printf("final weight fingerprint %016x\n", ckpt.FingerprintWeights(res.FinalWeights))
	if cfg.Trace != nil {
		if err := cfg.Trace.WriteTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "astrotrain: trace:", err)
		} else {
			fmt.Printf("trace written to %s\n", *traceOut)
		}
	}
	fmt.Println()

	// Science evaluation: overall and per-class accuracy on held-out cutouts.
	rep := problem.NewReplica()
	core.InstallWeights(rep, res.FinalWeights)
	start := time.Now()
	pred := astro.PredictDataset(rep, test, 64)
	var hits int
	var perClass, perClassN [astro.NumClasses]int
	for i, p := range pred {
		perClassN[test.Labels[i]]++
		if p == test.Labels[i] {
			hits++
			perClass[p]++
		}
	}
	fmt.Printf("test accuracy %.1f%% over %d cutouts (%.0f cutouts/s)\n",
		100*float64(hits)/float64(len(pred)), len(pred),
		float64(len(pred))/time.Since(start).Seconds())
	for c := 0; c < astro.NumClasses; c++ {
		frac := 0.0
		if perClassN[c] > 0 {
			frac = 100 * float64(perClass[c]) / float64(perClassN[c])
		}
		fmt.Printf("  %-10s %5.1f%%  (%d cutouts)\n", astro.ClassNames[c], frac, perClassN[c])
	}
}

// readDonor loads the warm-start weight blobs from a checkpoint store
// directory (its newest version, with workload sanity from the manifest) or
// from a bare .d15w file, returning the blobs and a human-readable source
// description.
func readDonor(path string) ([]nn.WeightBlob, string) {
	st, err := os.Stat(path)
	if err != nil {
		fatalf("-init-from: %v", err)
	}
	if !st.IsDir() {
		blobs, err := nn.ReadWeightBlobsFile(path)
		if err != nil {
			fatalf("-init-from %s: %v", path, err)
		}
		return blobs, path
	}
	store, err := ckpt.Open(path)
	if err != nil {
		fatalf("-init-from: %v", err)
	}
	m, ok, err := store.Latest()
	if err != nil {
		fatalf("-init-from: %v", err)
	}
	if !ok {
		fatalf("-init-from: checkpoint store %s holds no complete version", path)
	}
	blobs, err := nn.ReadWeightBlobsFile(store.WeightsPath(m.Version))
	if err != nil {
		fatalf("-init-from %s v%d: %v", path, m.Version, err)
	}
	desc := fmt.Sprintf("%s v%d (step %d", path, m.Version, m.Step)
	if m.Arch != "" {
		desc += ", arch " + m.Arch
	}
	if m.Problem != "" {
		desc += ", problem " + m.Problem
	}
	return blobs, desc + ")"
}
