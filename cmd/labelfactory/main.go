// Command labelfactory is the offline half of the pseudo-label flywheel
// (ROADMAP item 1): it scores unlabeled shard files with a trained
// checkpoint through the throughput-first bulk engine and writes every
// prediction above the confidence threshold back as pseudo-labeled shards
// that heptrain -unlabeled-dir trains on.
//
// Usage (one flywheel iteration):
//
//	heptrain -unlabeled-frac 0.33 -emit-unlabeled pool/ -ckpt-dir store/
//	labelfactory -in pool/ -out pseudo/ -ckpt-dir store/ -threshold 0.8
//	heptrain -unlabeled-frac 0.33 -unlabeled-dir pseudo/ -pseudo-weight 0.5
//
// With -fleet N the shards are fanned out across N in-process netserve
// backends through the work-stealing fleet scorer — the single-machine
// stand-in for N scoring nodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"deep15pf/internal/bulk"
	"deep15pf/internal/ckpt"
	"deep15pf/internal/data"
	"deep15pf/internal/hep"
	"deep15pf/internal/netserve"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "labelfactory: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "", "directory of unlabeled *.shard files to score")
	out := flag.String("out", "", "output directory for pseudo-labeled shards")
	outShards := flag.Int("out-shards", 4, "shard count for the pseudo-labeled output")
	ckptDir := flag.String("ckpt-dir", "", "checkpoint store; the newest version is scored with")
	weightsPath := flag.String("weights", "", "explicit .d15w weights file (alternative to -ckpt-dir)")
	size := flag.Int("size", 16, "model image size (must match the training run)")
	filters := flag.Int("filters", 8, "model conv filters (must match the training run)")
	units := flag.Int("units", 3, "model conv+pool units (must match the training run)")
	threshold := flag.Float64("threshold", 0.8, "keep predictions at/above this top-1 confidence (paper's climate cut)")
	batch := flag.Int("batch", 256, "inference batch size")
	useInt8 := flag.Bool("int8", false, "score on the int8 quantized datapath (calibrated on the first batch)")
	fleet := flag.Int("fleet", 0, "fan shards across N in-process netserve backends (0 = direct local engine)")
	kernels := flag.String("kernels", "auto", "compute kernel ISA: auto|scalar|avx2|avx512")
	flag.Parse()

	if err := tensor.SetKernels(*kernels); err != nil {
		fatalf("%v", err)
	}
	if *in == "" || *out == "" {
		fatalf("-in and -out are required")
	}
	if (*ckptDir == "") == (*weightsPath == "") {
		fatalf("exactly one of -ckpt-dir or -weights is required")
	}

	paths, err := filepath.Glob(filepath.Join(*in, "*.shard"))
	if err == nil && len(paths) == 0 {
		err = fmt.Errorf("no *.shard files under %s", *in)
	}
	var ss *data.ShardSet
	if err == nil {
		ss, err = data.OpenShardSet(paths...)
	}
	if err != nil {
		fatalf("%v", err)
	}
	defer ss.Close()

	wpath := *weightsPath
	var manifest ckpt.Manifest
	haveManifest := false
	if *ckptDir != "" {
		store, err := ckpt.Open(*ckptDir)
		if err != nil {
			fatalf("%v", err)
		}
		m, ok, err := store.Latest()
		if err != nil {
			fatalf("%v", err)
		}
		if !ok {
			fatalf("checkpoint store %s holds no complete version", *ckptDir)
		}
		wpath = store.WeightsPath(m.Version)
		manifest, haveManifest = m, true
		fmt.Printf("scoring with %s v%d (step %d)\n", m.Arch, m.Version, m.Step)
	}

	reg := serve.NewRegistry()
	model := hep.ModelConfig{Name: "heptrain", ImageSize: *size, Filters: *filters, ConvUnits: *units, Classes: 2}
	serve.RegisterHEP(reg, "heptrain", model)
	if haveManifest {
		// The scorer only speaks HEP: a checkpoint stamped with a different
		// workload (climate, astro) must be refused even if its weights would
		// happen to stream into the architecture.
		if err := reg.CheckManifest("heptrain", manifest.Arch, manifest.Problem); err != nil {
			fatalf("%v", err)
		}
	}
	prec := serve.Float32
	if *useInt8 {
		prec = serve.Int8
	}
	lm, err := reg.Load("heptrain", wpath, prec)
	if err != nil {
		fatalf("%v", err)
	}
	if *useInt8 {
		n := min(*batch, ss.Count)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		x := tensor.New(n, hep.Channels, *size, *size)
		if err := ss.ReadBatchInto(idx, x.Data, nil, make([]byte, ss.ScratchLen())); err != nil {
			fatalf("%v", err)
		}
		if err := lm.Calibrate(x); err != nil {
			fatalf("calibrate: %v", err)
		}
	}

	cfg := bulk.Config{Batch: *batch}
	var p bulk.Predictions
	if *fleet > 0 {
		addrs, cleanup := startFleet(lm, *fleet)
		defer cleanup()
		cfg.InShape = []int{hep.Channels, *size, *size}
		res, err := bulk.ScoreFleet(addrs, "heptrain", ss, cfg, &p)
		if err != nil {
			fatalf("fleet: %v", err)
		}
		fmt.Printf("fleet of %d backends: %d samples in %.2fs (%.0f samples/s, %d requeues)\n",
			*fleet, res.Samples, res.Seconds, res.SamplesPerSec, res.Requeues)
	} else {
		eng, err := bulk.NewEngine(lm, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		res, err := eng.Score(ss, &p)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("scored %d samples in %d batches, %.2fs (%.0f samples/s)\n",
			res.Samples, res.Batches, res.Seconds, res.SamplesPerSec)
	}

	outPaths, st, err := bulk.WritePseudoShards(*out, *outShards, ss, &p, float32(*threshold))
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("threshold %.2f: kept %d of %d (coverage %.1f%%), dropped %d\n",
		*threshold, st.Kept, st.Total, 100*st.Coverage, st.Total-st.Kept)
	if len(outPaths) == 0 {
		fmt.Println("nothing above threshold — no shards written")
		return
	}
	fmt.Printf("wrote %d pseudo-labeled shards under %s\n", len(outPaths), *out)
}

// startFleet brings up n in-process scoring backends on loopback, each a
// full serve engine behind a netserve face — the single-machine stand-in
// for a real scoring fleet.
func startFleet(lm *serve.LoadedModel, n int) ([]string, func()) {
	workers := max(1, runtime.NumCPU()/n)
	addrs := make([]string, n)
	closers := make([]func(), 0, 2*n)
	for i := range addrs {
		eng, err := serve.NewServer(lm, serve.Config{MaxBatch: 64, Workers: workers})
		if err != nil {
			fatalf("backend %d: %v", i, err)
		}
		ns, err := netserve.NewServer("127.0.0.1:0", map[string]*serve.Server{"heptrain": eng}, netserve.ServerConfig{})
		if err != nil {
			fatalf("backend %d: %v", i, err)
		}
		addrs[i] = ns.Addr()
		closers = append(closers, ns.Close, eng.Close)
	}
	return addrs, func() {
		for _, c := range closers {
			c()
		}
	}
}
