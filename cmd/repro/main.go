// Command repro regenerates the paper's tables and figures. Each
// experiment prints a report pairing the published value with our measured
// (real kernels, real training) or simulated (cluster model) value.
//
// Usage:
//
//	repro                 # every experiment, quick scale
//	repro -exp fig6       # one experiment
//	repro -full           # larger configurations (slower)
//	repro -o EXPERIMENTS.md
//
// Experiments: table1 table2 fig5 fig6 fig7 fullsystem fig8 hepscience
// climscience resilience ablations all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"deep15pf/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1 table2 fig5 fig6 fig7 fullsystem fig8 hepscience climscience resilience ablations checkpoint timeline all)")
	full := flag.Bool("full", false, "use larger (slower) configurations")
	seed := flag.Uint64("seed", 42, "experiment seed")
	out := flag.String("o", "", "also write the report to this file")
	flag.Parse()

	opts := harness.Options{Quick: !*full, Seed: *seed}

	gens := map[string]func(harness.Options) harness.Report{
		"table1":      harness.Table1,
		"table2":      harness.Table2,
		"fig5":        harness.Fig5,
		"fig6":        harness.Fig6,
		"fig7":        harness.Fig7,
		"fullsystem":  harness.FullSystem,
		"fig8":        harness.Fig8,
		"hepscience":  harness.HEPScience,
		"climscience": harness.ClimateScience,
		"resilience":  harness.Resilience,
		"ablations":   harness.Ablations,
		"checkpoint":  harness.Checkpoint,
		"timeline":    harness.Timeline,
	}

	var body string
	start := time.Now()
	if *exp == "all" {
		body = harness.All(opts)
	} else if gen, ok := gens[*exp]; ok {
		body = gen(opts).String()
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s all\n",
			*exp, strings.Join(keys(gens), " "))
		os.Exit(2)
	}

	header := fmt.Sprintf("# Reproduction report — Deep Learning at 15PF (SC'17)\n\n"+
		"Mode: quick=%v seed=%d host=single-node Go implementation; generated in %.0f s.\n\n",
		opts.Quick, opts.Seed, time.Since(start).Seconds())
	// Assemble after generation so the elapsed time is accurate.
	report := header + body
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func keys(m map[string]func(harness.Options) harness.Report) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
