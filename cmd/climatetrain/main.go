// Command climatetrain trains the semi-supervised climate detector
// (§III-B) on synthetic CAM5-style fields and reports bounding-box
// detection metrics plus a Fig 9-style ASCII overlay.
//
// Usage:
//
//	climatetrain -iters 200 -train 128 -labeled 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deep15pf/internal/ckpt"
	"deep15pf/internal/climate"
	"deep15pf/internal/core"
	"deep15pf/internal/obs"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func main() {
	groups := flag.Int("groups", 1, "compute groups (1 = synchronous)")
	workers := flag.Int("workers", 1, "workers per group")
	iters := flag.Int("iters", 150, "iterations per group")
	batch := flag.Int("batch", 8, "samples per group per iteration")
	trainN := flag.Int("train", 96, "training snapshots")
	testN := flag.Int("test", 24, "test snapshots")
	size := flag.Int("size", 64, "field size (paper uses 768; must divide by 16)")
	labeled := flag.Float64("labeled", 1.0, "labeled fraction (rest train the autoencoder only)")
	lr := flag.Float64("lr", 1.5e-3, "learning rate")
	conf := flag.Float64("conf", 0.8, "inference confidence threshold (paper uses 0.8)")
	prefetch := flag.Int("prefetch", 1, "batches of ingest lookahead per worker (0 = legacy blocking staging)")
	ckptDir := flag.String("ckpt-dir", "", "checkpoint store directory (versioned snapshots; enables -ckpt-every/-resume)")
	ckptEvery := flag.Int("ckpt-every", 10, "snapshot every N iterations (the paper's 1-in-10 climate cadence; needs -ckpt-dir)")
	ckptAsync := flag.Bool("ckpt-async", true, "flush snapshots on a background writer (staging only on the critical path)")
	ckptKeep := flag.Int("ckpt-keep", 5, "retain only the newest N versions (0 = keep all)")
	resume := flag.Bool("resume", false, "resume from the newest snapshot in -ckpt-dir (bit-exact; empty store = fresh start)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline (per-worker phase lanes) to this file")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	metricsEvery := flag.Int("metrics-every", 0, "print a one-line metrics dump every N seconds (0 = off)")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	start := time.Now()
	reg := obs.NewRegistry()
	if *debugAddr != "" {
		dbg, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "climatetrain:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s/debug/pprof (metrics at /metrics)\n", dbg.Addr())
	}
	stopDump := obs.Periodic(time.Duration(*metricsEvery)*time.Second, func() {
		fmt.Println("metrics:", obs.MetricsLine(start, reg))
	})
	defer stopDump()

	rng := tensor.NewRNG(*seed)
	gen := climate.DefaultGenConfig(*size)
	fmt.Printf("generating %d train + %d test snapshots (%dx%dx16)...\n", *trainN, *testN, *size, *size)
	train := climate.GenerateDataset(gen, *trainN, rng)
	test := climate.GenerateDataset(gen, *testN, rng)

	model := climate.SmallConfig()
	model.Size = *size
	problem := climate.NewTrainingProblem(train, model, *seed+1)
	problem.LabeledFrac = *labeled

	cfg := core.Config{
		Groups: *groups, WorkersPerGroup: *workers, GroupBatch: *batch,
		Iterations: *iters,
		Solver:     opt.NewAdam(*lr),
		Seed:       *seed,
		Prefetch:   *prefetch,
	}
	if *traceOut != "" {
		cfg.Trace = obs.NewTracer(0)
	}
	if *ckptDir != "" {
		cfg.Checkpoint = core.CheckpointConfig{
			Dir: *ckptDir, Every: *ckptEvery, Async: *ckptAsync, Keep: *ckptKeep,
			Arch: "climatetrain", Problem: "climate", SamplesPerEpoch: *trainN, Resume: *resume,
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "climatetrain: -resume needs -ckpt-dir")
		os.Exit(2)
	}
	var res core.Result
	if *groups == 1 {
		fmt.Printf("training synchronously: %d workers, batch %d, %d iterations, %.0f%% labeled\n",
			*workers, *batch, *iters, 100**labeled)
		res = core.TrainSync(problem, cfg)
	} else {
		fmt.Printf("training hybrid: %d groups x %d workers\n", *groups, *workers)
		res = core.TrainHybrid(problem, cfg)
	}
	every := len(res.Stats) / 10
	if every < 1 {
		every = 1
	}
	for i, s := range res.Stats {
		if i%every == 0 || i == len(res.Stats)-1 {
			fmt.Printf("  update %4d  group %d  loss %.4f\n", s.Seq, s.Group, s.Loss)
		}
	}
	if ing := res.Ingest; ing.Batches > 0 {
		fmt.Printf("ingest: %d batches staged in %.1f ms, %.1f ms exposed to compute (%.0f%% overlapped, prefetch=%d)\n",
			ing.Batches, ing.StageSeconds*1e3, ing.WaitSeconds*1e3, 100*ing.Overlap(), *prefetch)
	}
	if ck := res.Ckpt; ck.Snapshots > 0 {
		fmt.Printf("ckpt: %d snapshots (latest v%d) — staged %.1f ms, written %.1f ms, %.1f ms exposed to compute (%.0f%% hidden)\n",
			ck.Snapshots, ck.LastVersion, ck.StageSeconds*1e3, ck.WriteSeconds*1e3, ck.ExposedSeconds*1e3, 100*ck.Overlap())
	}
	fmt.Printf("final weight fingerprint %016x\n", ckpt.FingerprintWeights(res.FinalWeights))
	res.PublishMetrics(reg)
	if *metricsEvery > 0 {
		fmt.Println("metrics:", obs.MetricsLine(start, reg))
	}
	if cfg.Trace != nil {
		lanes := cfg.Trace.Snapshot()
		if err := cfg.Trace.WriteTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "climatetrain: trace:", err)
		} else {
			fmt.Printf("trace: %d lanes written to %s (open in chrome://tracing or ui.perfetto.dev)\n",
				len(lanes), *traceOut)
		}
		fmt.Print(obs.Stragglers(lanes))
	}

	// Evaluate the trained model.
	rep := problem.NewReplica()
	core.InstallWeights(rep, res.FinalWeights)
	net := problem.Net(rep)
	var agg climate.MatchResult
	for i, s := range test.Samples {
		x, _ := test.Batch([]int{i})
		dets := net.Detect(x, *conf, 0.4)[0]
		agg = agg.Add(climate.Match(dets, s.Boxes, 0.35))
	}
	fmt.Printf("\ndetection at confidence > %.1f: precision %.2f, recall %.2f, mean IoU %.2f (TP %d FP %d FN %d)\n",
		*conf, agg.Precision(), agg.Recall(), agg.MeanIoU,
		agg.TruePositives, agg.FalsePositives, agg.FalseNegatives)
	x, _ := test.Batch([]int{0})
	fmt.Println("\nFig 9 analogue (first test snapshot):")
	fmt.Println(climate.RenderASCII(test.Samples[0], net.Detect(x, *conf, 0.4)[0], 72))
}
