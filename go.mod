module deep15pf

go 1.24
