package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// DebugServer serves net/http/pprof plus a /metrics endpoint over a
// registry — the -debug-addr surface the long-running cmds expose.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// RuntimeMetrics is the Go-runtime slice of /metrics: what an operator
// checks first when a long-running trainer or server misbehaves.
type RuntimeMetrics struct {
	Goroutines   int     `json:"goroutines"`
	HeapAllocMB  float64 `json:"heap_alloc_mb"`
	HeapSysMB    float64 `json:"heap_sys_mb"`
	NumGC        uint32  `json:"num_gc"`
	LastGCPauseM float64 `json:"last_gc_pause_ms"`
	TotalGCMs    float64 `json:"total_gc_ms"`
	UptimeSec    float64 `json:"uptime_sec"`
}

// ReadRuntimeMetrics samples the runtime now.
func ReadRuntimeMetrics(start time.Time) RuntimeMetrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rm := RuntimeMetrics{
		Goroutines:  runtime.NumGoroutine(),
		HeapAllocMB: float64(ms.HeapAlloc) / (1 << 20),
		HeapSysMB:   float64(ms.HeapSys) / (1 << 20),
		NumGC:       ms.NumGC,
		TotalGCMs:   float64(ms.PauseTotalNs) / 1e6,
		UptimeSec:   time.Since(start).Seconds(),
	}
	if ms.NumGC > 0 {
		rm.LastGCPauseM = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e6
	}
	return rm
}

// StartDebugServer listens on addr and serves:
//
//	/debug/pprof/...  the standard pprof handlers
//	/metrics          {"runtime": ..., "counters": ..., "gauges": ..., "histograms": ...}
//
// reg may be nil (runtime metrics only). Returns the running server;
// callers Close it on shutdown. The bound address is Addr() — pass
// ":0" in tests.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := map[string]any{"runtime": ReadRuntimeMetrics(start)}
		if reg != nil {
			s := reg.Snapshot()
			out["counters"] = s.Counters
			out["gauges"] = s.Gauges
			out["histograms"] = s.Histograms
		}
		json.NewEncoder(w).Encode(out)
	})
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ds.srv.Serve(ln)
	return ds, nil
}

// Addr returns the bound listen address (host:port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the listener and server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
