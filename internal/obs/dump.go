package obs

import (
	"fmt"
	"sync"
	"time"
)

// MetricsLine renders the one-line periodic dump the cmds print:
// runtime health first, then the registry's sorted k=v pairs.
func MetricsLine(start time.Time, reg *Registry) string {
	rm := ReadRuntimeMetrics(start)
	line := fmt.Sprintf("up %.0fs goroutines %d heap %.1fMiB gc %d",
		rm.UptimeSec, rm.Goroutines, rm.HeapAllocMB, rm.NumGC)
	if kv := reg.Snapshot().Line(); kv != "" {
		line += " | " + kv
	}
	return line
}

// Periodic runs fn every interval on its own goroutine until the
// returned stop function is called (idempotent). A non-positive
// interval returns a no-op stop without starting anything.
func Periodic(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fn()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-stopped
	}
}
