package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultSpansPerLane bounds each lane's ring when NewTracer is given no
// explicit capacity: 32k spans × 24 bytes ≈ 768 KiB per lane, enough for
// thousands of iterations at the trainers' ~6 spans per iteration.
const DefaultSpansPerLane = 1 << 15

// Tracer owns the run's monotonic epoch and its lanes — one per worker
// goroutine (training ranks, prefetch stagers, serve workers, simulated
// groups). A nil *Tracer is the off switch: Lane returns a nil *Lane whose
// methods no-op, so call sites are wired unconditionally.
type Tracer struct {
	epoch   time.Time
	perLane int

	mu    sync.Mutex
	lanes []*Lane
}

// NewTracer builds a tracer whose lanes hold spansPerLane records each
// (<= 0 takes DefaultSpansPerLane). The epoch is now; all span timestamps
// are monotonic nanoseconds since it.
func NewTracer(spansPerLane int) *Tracer {
	if spansPerLane <= 0 {
		spansPerLane = DefaultSpansPerLane
	}
	return &Tracer{epoch: time.Now(), perLane: spansPerLane}
}

// Lane returns the named lane, creating it on first use. Lanes are cheap
// but not free (one ring allocation); create them at setup time, not on
// hot paths. Safe for concurrent use. Returns nil on a nil tracer.
func (t *Tracer) Lane(name string) *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, l := range t.lanes {
		if l.name == name {
			return l
		}
	}
	l := &Lane{name: name, t: t, ring: make([]Span, t.perLane)}
	t.lanes = append(t.lanes, l)
	return l
}

// Now returns nanoseconds since the tracer's epoch on the monotonic clock
// (0 on a nil tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// At converts an absolute time (e.g. a request's enqueue stamp) to
// nanoseconds since the tracer's epoch.
func (t *Tracer) At(at time.Time) int64 {
	if t == nil {
		return 0
	}
	return int64(at.Sub(t.epoch))
}

// LaneSpans is one lane's exported record: spans oldest-first, plus how
// many older spans the bounded ring had to drop.
type LaneSpans struct {
	Name    string
	Spans   []Span
	Dropped int64
}

// Snapshot copies every lane's spans out in recording order, lanes sorted
// by name for stable output. Safe to call while lanes are still being
// written (each lane's ring is locked briefly); spans recorded after the
// snapshot begins may or may not appear.
func (t *Tracer) Snapshot() []LaneSpans {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	lanes := append([]*Lane(nil), t.lanes...)
	t.mu.Unlock()
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].name < lanes[j].name })
	out := make([]LaneSpans, 0, len(lanes))
	for _, l := range lanes {
		out = append(out, l.snapshot())
	}
	return out
}

// Lane is one goroutine's span record: a preallocated ring of Span slots,
// per-phase open-span start stamps, and the current iteration tag. Begin,
// End, Record and SetIter are allocation-free; only the owning goroutine
// may call them (End takes the lane's mutex solely so snapshots can read
// the ring mid-run without a race).
type Lane struct {
	name string
	t    *Tracer
	iter int32
	open [NumPhases]int64

	mu    sync.Mutex
	ring  []Span
	next  int   // next ring slot to write
	total int64 // spans ever recorded
}

// Name returns the lane's name ("" on nil).
func (l *Lane) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Tracer returns the owning tracer (nil on a nil lane) — how a component
// handed one lane derives siblings (e.g. a replica's ".ingest" lane for
// its prefetch goroutine).
func (l *Lane) Tracer() *Tracer {
	if l == nil {
		return nil
	}
	return l.t
}

// SetIter tags subsequently recorded spans with the given iteration.
func (l *Lane) SetIter(it int) {
	if l == nil {
		return
	}
	l.iter = int32(it)
}

// Begin stamps the start of a phase. Phases on one lane may nest or
// interleave freely — each phase has its own open slot.
func (l *Lane) Begin(p Phase) {
	if l == nil {
		return
	}
	l.open[p] = l.t.Now()
}

// End records the span opened by the matching Begin into the ring,
// overwriting the oldest record when full. Zero allocations.
func (l *Lane) End(p Phase) {
	if l == nil {
		return
	}
	l.Record(p, l.open[p], l.t.Now())
}

// Record writes an externally timed span (start/end in tracer
// nanoseconds) — used where the interval was measured elsewhere: a serve
// request's queue wait from its enqueue stamp, or a simulated timeline's
// phase placement. Zero allocations.
func (l *Lane) Record(p Phase, startNs, endNs int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	s := &l.ring[l.next]
	s.Phase, s.Iter, s.StartNs, s.EndNs = p, l.iter, startNs, endNs
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
	}
	l.total++
	l.mu.Unlock()
}

// snapshot copies the ring out oldest-first.
func (l *Lane) snapshot() LaneSpans {
	l.mu.Lock()
	defer l.mu.Unlock()
	ls := LaneSpans{Name: l.name}
	if l.total >= int64(len(l.ring)) {
		ls.Dropped = l.total - int64(len(l.ring))
		ls.Spans = make([]Span, 0, len(l.ring))
		ls.Spans = append(ls.Spans, l.ring[l.next:]...)
		ls.Spans = append(ls.Spans, l.ring[:l.next]...)
		return ls
	}
	ls.Spans = append([]Span(nil), l.ring[:l.next]...)
	return ls
}
