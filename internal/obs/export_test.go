package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWriteTraceFormat(t *testing.T) {
	tr := NewTracer(8)
	w0 := tr.Lane("w0")
	w1 := tr.Lane("w1")
	w0.SetIter(1)
	w0.Record(PhaseFwd, 1000, 3000)
	w1.Record(PhaseCommWait, 2000, 5000)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	var meta, spans int
	laneNames := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			laneNames[ev.Args["name"].(string)] = true
		case "X":
			spans++
			if ev.Name == "Fwd" {
				if ev.Ts != 1.0 || ev.Dur != 2.0 { // ns -> µs
					t.Errorf("Fwd event ts/dur = %g/%g, want 1/2", ev.Ts, ev.Dur)
				}
				if ev.Args["iter"].(float64) != 1 {
					t.Errorf("Fwd iter arg = %v", ev.Args["iter"])
				}
			}
		default:
			t.Errorf("unexpected ph %q", ev.Ph)
		}
	}
	if meta != 2 || spans != 2 {
		t.Fatalf("meta=%d spans=%d, want 2/2", meta, spans)
	}
	if !laneNames["w0"] || !laneNames["w1"] {
		t.Fatalf("lane names missing: %v", laneNames)
	}
}

func TestWriteTraceFile(t *testing.T) {
	tr := NewTracer(8)
	tr.Lane("w").Record(PhaseInfer, 0, 10)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) || !strings.Contains(string(b), `"Infer"`) {
		t.Fatalf("bad trace file: %s", b)
	}
}

func TestPhaseSeconds(t *testing.T) {
	tr := NewTracer(8)
	tr.Lane("a").Record(PhaseFwd, 0, 2e9)
	tr.Lane("a").Record(PhaseBwd, 2e9, 3e9)
	tr.Lane("b").Record(PhaseFwd, 0, 1e9)
	ps := PhaseSeconds(tr.Snapshot())
	if ps[PhaseFwd] != 3 || ps[PhaseBwd] != 1 || ps[PhaseInfer] != 0 {
		t.Fatalf("PhaseSeconds = %v", ps)
	}
}

func TestOverlapSeconds(t *testing.T) {
	tr := NewTracer(16)
	// Compute on lane a: [0, 10s]. Comm on lane b: [4s, 8s] and [9s, 12s].
	tr.Lane("a").Record(PhaseFwd, 0, 10e9)
	tr.Lane("b").Record(PhaseCommWait, 4e9, 8e9)
	tr.Lane("b").Record(PhaseCommWait, 9e9, 12e9)
	snap := tr.Snapshot()
	isComm := func(p Phase) bool { return p == PhaseCommWait }
	isCompute := func(p Phase) bool { return p == PhaseFwd || p == PhaseBwd }
	if got := OverlapSeconds(snap, isComm, isCompute); got != 5 { // 4 + 1
		t.Errorf("overlap = %g, want 5", got)
	}
	if got := CoveredSeconds(snap, isComm); got != 7 {
		t.Errorf("comm covered = %g, want 7", got)
	}
	if got := CoveredSeconds(snap, isCompute); got != 10 {
		t.Errorf("compute covered = %g, want 10", got)
	}
	// Self-overlapping spans on one side must merge, not double count.
	tr2 := NewTracer(8)
	tr2.Lane("x").Record(PhaseIngest, 0, 6e9)
	tr2.Lane("y").Record(PhaseIngest, 3e9, 9e9)
	tr2.Lane("z").Record(PhaseFwd, 0, 9e9)
	isIngest := func(p Phase) bool { return p == PhaseIngest }
	if got := OverlapSeconds(tr2.Snapshot(), isIngest, isCompute); got != 9 {
		t.Errorf("merged overlap = %g, want 9", got)
	}
}

func TestStragglersPinned(t *testing.T) {
	tr := NewTracer(16)
	// Iter 0: w0 computes 2s, w1 computes 5s -> skew 3.
	// Iter 1: w0 computes 4s (2 spans), w1 computes 4.5s -> skew 0.5.
	w0, w1 := tr.Lane("w0"), tr.Lane("w1")
	w0.SetIter(0)
	w0.Record(PhaseFwd, 0, 2e9)
	w1.SetIter(0)
	w1.Record(PhaseFwd, 0, 5e9)
	w0.SetIter(1)
	w0.Record(PhaseFwd, 6e9, 9e9)
	w0.Record(PhaseBwd, 9e9, 10e9)
	w1.SetIter(1)
	w1.Record(PhaseFwd, 6e9, 10.5e9)
	// CommWait must not count as compute.
	w1.Record(PhaseCommWait, 10.5e9, 20e9)

	rep := Stragglers(tr.Snapshot())
	if len(rep.Iters) != 2 {
		t.Fatalf("iters = %d, want 2", len(rep.Iters))
	}
	i0, i1 := rep.Iters[0], rep.Iters[1]
	if i0.Iter != 0 || i0.Lanes != 2 || i0.Min != 2 || i0.Max != 5 || i0.Skew != 3 {
		t.Errorf("iter 0 = %+v", i0)
	}
	if i1.Iter != 1 || i1.Skew != 0.5 || i1.Min != 4 || i1.Max != 4.5 {
		t.Errorf("iter 1 = %+v", i1)
	}
	if rep.MaxSkew != 3 || rep.WorstIter != 0 || rep.MeanSkew != 1.75 {
		t.Errorf("report = %+v", rep)
	}
	if s := rep.String(); !strings.Contains(s, "max 3s (iter 0)") {
		t.Errorf("String() = %q", s)
	}
	// Single-lane iterations are skipped (no cross-worker skew to report).
	solo := NewTracer(8)
	solo.Lane("only").Record(PhaseFwd, 0, 1e9)
	if rep := Stragglers(solo.Snapshot()); len(rep.Iters) != 0 || rep.WorstIter != -1 {
		t.Errorf("solo report = %+v", rep)
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(3)
	ds, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return b
	}

	var m struct {
		Runtime  RuntimeMetrics   `json:"runtime"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(get("/metrics"), &m); err != nil {
		t.Fatalf("/metrics JSON: %v", err)
	}
	if m.Runtime.Goroutines <= 0 || m.Runtime.HeapAllocMB <= 0 {
		t.Errorf("runtime metrics = %+v", m.Runtime)
	}
	if m.Counters["hits"] != 3 {
		t.Errorf("counters = %v", m.Counters)
	}
	if !strings.Contains(string(get("/debug/pprof/")), "pprof") {
		t.Error("pprof index not served")
	}
}

func TestReadRuntimeMetrics(t *testing.T) {
	rm := ReadRuntimeMetrics(time.Now().Add(-time.Second))
	if rm.Goroutines <= 0 || rm.UptimeSec < 1 {
		t.Errorf("runtime metrics = %+v", rm)
	}
}
