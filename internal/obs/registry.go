package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the shared metrics substrate: named counters, gauges and
// fixed-bucket histograms. Instrument lookup (Counter/Gauge/Histogram)
// takes a mutex and may allocate — do it at setup time and hold the
// pointer; every write path on a held instrument is atomic and
// allocation-free. A nil *Registry hands out nil instruments whose
// methods no-op, mirroring the tracer's off switch.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. Bounds must be strictly increasing;
// an implicit +Inf bucket catches the overflow. Re-registering an
// existing name returns the original histogram (bounds ignored), so
// adapters can share one instrument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument, maps keyed by
// name. Histogram values are HistogramSnapshot copies — mutating them
// does not touch the live registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the registry out. Writes racing the snapshot land in
// either side; each individual value is read atomically.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Line renders the snapshot as one stable "k=v k=v ..." line (keys
// sorted; histograms contribute their count and mean) — the periodic
// dump format the cmds print.
func (s Snapshot) Line() string {
	keys := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	vals := map[string]string{}
	for k, v := range s.Counters {
		keys = append(keys, k)
		vals[k] = fmt.Sprintf("%d", v)
	}
	for k, v := range s.Gauges {
		keys = append(keys, k)
		vals[k] = fmt.Sprintf("%.4g", v)
	}
	for k, h := range s.Histograms {
		keys = append(keys, k)
		vals[k] = fmt.Sprintf("n=%d mean=%.4g", h.Count, h.Mean())
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += k + "=" + vals[k]
	}
	return out
}

// Counter is a monotonically increasing atomic int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter (benchmark warmup boundaries; production
// counters normally only grow).
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is an atomic float64 (bits in an atomic.Uint64). Set is a plain
// store; Add and Max are CAS loops — contended writers retry but never
// lock or allocate.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Max atomically raises the gauge to v if v is larger.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. bounds are upper
// bounds (inclusive: an observation lands in the first bucket whose
// bound is >= v, matching Prometheus's `le` convention); counts has
// len(bounds)+1 slots, the last catching v > bounds[len-1]. Observe is
// atomic and allocation-free. Sum and count track the full distribution
// regardless of bucketing.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    Gauge
}

// NewHistogram builds a histogram with the given strictly increasing
// upper bounds. Panics on unsorted bounds — a construction-time bug,
// not a runtime condition.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records v. Bucket search is linear — bucket counts in this
// repo are ~10-20, where linear beats binary on branch prediction.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a stable copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; Counts has one extra +Inf slot
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram out.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the bucket holding the target rank, the standard
// fixed-bucket estimate. The overflow bucket reports its lower bound
// (no upper edge to interpolate toward).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) { // overflow bucket
			return lo
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}
