package obs

import (
	"fmt"
	"sort"
	"strings"
)

// IterStats is one iteration's cross-worker compute-span record: how
// long each lane's compute (Fwd+Bwd+OptApply) took, and the straggler
// skew between the slowest and fastest lane. This is Fig 8's motivation
// made measurable — in a synchronous step every worker waits for Max,
// so Skew is pure loss; hybrid asynchrony exists to not pay it.
type IterStats struct {
	Iter  int32
	Lanes int     // lanes that recorded compute this iteration
	Min   float64 // fastest lane's compute seconds
	Max   float64 // slowest lane's compute seconds
	Mean  float64
	Skew  float64 // Max - Min
}

// StragglerReport aggregates per-iteration skew across a run.
type StragglerReport struct {
	Iters []IterStats
	// MaxSkew / MeanSkew summarise Skew across iterations; WorstIter is
	// the iteration with MaxSkew (-1 when empty).
	MaxSkew   float64
	MeanSkew  float64
	WorstIter int32
}

// computePhase marks the phases counted as a worker's per-iteration
// compute for straggler purposes.
func computePhase(p Phase) bool {
	return p == PhaseFwd || p == PhaseBwd || p == PhaseOptApply
}

// Stragglers derives the per-iteration straggler report from a
// snapshot: per lane and iteration it sums compute-span seconds, then
// reports min/max/mean/skew across lanes for every iteration at least
// two lanes recorded. Iterations ascend.
func Stragglers(lanes []LaneSpans) StragglerReport {
	// perIter[iter][laneIdx] = compute seconds
	perIter := map[int32]map[int]float64{}
	for li, ls := range lanes {
		for _, s := range ls.Spans {
			if !computePhase(s.Phase) {
				continue
			}
			m := perIter[s.Iter]
			if m == nil {
				m = map[int]float64{}
				perIter[s.Iter] = m
			}
			m[li] += s.Seconds()
		}
	}
	rep := StragglerReport{WorstIter: -1}
	iters := make([]int32, 0, len(perIter))
	for it := range perIter {
		iters = append(iters, it)
	}
	sort.Slice(iters, func(i, j int) bool { return iters[i] < iters[j] })
	for _, it := range iters {
		m := perIter[it]
		if len(m) < 2 {
			continue
		}
		st := IterStats{Iter: it, Lanes: len(m), Min: -1}
		for _, sec := range m {
			if st.Min < 0 || sec < st.Min {
				st.Min = sec
			}
			if sec > st.Max {
				st.Max = sec
			}
			st.Mean += sec
		}
		st.Mean /= float64(st.Lanes)
		st.Skew = st.Max - st.Min
		rep.Iters = append(rep.Iters, st)
		rep.MeanSkew += st.Skew
		if st.Skew > rep.MaxSkew {
			rep.MaxSkew = st.Skew
			rep.WorstIter = st.Iter
		}
	}
	if len(rep.Iters) > 0 {
		rep.MeanSkew /= float64(len(rep.Iters))
	}
	return rep
}

// String renders the report as a compact table.
func (r StragglerReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "straggler skew: mean %.3gs  max %.3gs (iter %d) over %d iters\n",
		r.MeanSkew, r.MaxSkew, r.WorstIter, len(r.Iters))
	fmt.Fprintf(&b, "%6s %6s %10s %10s %10s\n", "iter", "lanes", "min(s)", "max(s)", "skew(s)")
	for _, it := range r.Iters {
		fmt.Fprintf(&b, "%6d %6d %10.4f %10.4f %10.4f\n", it.Iter, it.Lanes, it.Min, it.Max, it.Skew)
	}
	return b.String()
}
