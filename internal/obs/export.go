package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// traceEvent is one record in the Chrome trace-event format ("X" complete
// events with microsecond ts/dur, "M" metadata naming the lanes). The
// format is what chrome://tracing and Perfetto load directly, which is
// the whole point: the repro's comm overlap, prefetch hiding and async
// checkpoint stalls become scrollable per-worker rows instead of claims.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders a snapshot as trace-event JSON. Lanes become
// threads (tid = lane index in the sorted snapshot, named via metadata
// events); spans become complete ("X") events carrying their iteration
// in args. Timestamps are microseconds since the tracer epoch.
func WriteTrace(w io.Writer, lanes []LaneSpans) error {
	tf := traceFile{DisplayTimeUnit: "ms"}
	for tid, ls := range lanes {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": ls.Name},
		})
		for _, s := range ls.Spans {
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: s.Phase.String(), Ph: "X", Pid: 0, Tid: tid,
				Ts:   float64(s.StartNs) / 1e3,
				Dur:  float64(s.Dur()) / 1e3,
				Args: map[string]any{"iter": s.Iter},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// WriteTraceFile snapshots the tracer and writes trace-event JSON to
// path. No-op (and nil error) on a nil tracer, so cmds call it
// unconditionally after a run.
func (t *Tracer) WriteTraceFile(path string) error {
	if t == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, t.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// PhaseSeconds sums span durations per phase across the given lanes.
func PhaseSeconds(lanes []LaneSpans) [NumPhases]float64 {
	var out [NumPhases]float64
	for _, ls := range lanes {
		for _, s := range ls.Spans {
			out[s.Phase] += s.Seconds()
		}
	}
	return out
}

// interval is a half-open [start, end) time range in tracer nanoseconds.
type interval struct{ start, end int64 }

// mergeIntervals sorts and coalesces overlapping intervals in place,
// returning the merged set.
func mergeIntervals(iv []interval) []interval {
	if len(iv) == 0 {
		return iv
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].start < iv[j].start })
	out := iv[:1]
	for _, x := range iv[1:] {
		last := &out[len(out)-1]
		if x.start <= last.end {
			if x.end > last.end {
				last.end = x.end
			}
			continue
		}
		out = append(out, x)
	}
	return out
}

// collect gathers the intervals of spans matching any phase in want.
func collect(lanes []LaneSpans, want func(Phase) bool) []interval {
	var iv []interval
	for _, ls := range lanes {
		for _, s := range ls.Spans {
			if want(s.Phase) && s.EndNs > s.StartNs {
				iv = append(iv, interval{s.StartNs, s.EndNs})
			}
		}
	}
	return iv
}

// OverlapSeconds measures how much of the time covered by phase-a spans
// was concurrently covered by phase-b spans across the given lanes —
// span-derived overlap, replacing hand-threaded timers. Both sides are
// interval-merged first so self-overlapping spans don't double count.
func OverlapSeconds(lanes []LaneSpans, a, b func(Phase) bool) float64 {
	ia := mergeIntervals(collect(lanes, a))
	ib := mergeIntervals(collect(lanes, b))
	var ns int64
	j := 0
	for _, x := range ia {
		for j < len(ib) && ib[j].end <= x.start {
			j++
		}
		for k := j; k < len(ib) && ib[k].start < x.end; k++ {
			lo, hi := x.start, x.end
			if ib[k].start > lo {
				lo = ib[k].start
			}
			if ib[k].end < hi {
				hi = ib[k].end
			}
			if hi > lo {
				ns += hi - lo
			}
		}
	}
	return float64(ns) / 1e9
}

// CoveredSeconds measures the merged wall time covered by spans matching
// want — the denominator for overlap fractions.
func CoveredSeconds(lanes []LaneSpans, want func(Phase) bool) float64 {
	var ns int64
	for _, x := range mergeIntervals(collect(lanes, want)) {
		ns += x.end - x.start
	}
	return float64(ns) / 1e9
}
