package obs

import "sort"

// Reservoir keeps a bounded sample of a float64 stream for quantile
// estimation. Two modes:
//
//   - Uniform (default): Vitter's Algorithm R. After n observations every
//     value has had probability k/n of being retained, so quantiles
//     estimate the whole stream. This fixes the bias of the old serve
//     latency ring, which — once wrapped — only ever reflected the most
//     recent k completions.
//   - Windowed: plain ring overwrite, quantiles over the last k values
//     only. Useful when recent behaviour is the question (canary
//     comparisons, post-warmup windows).
//
// Not goroutine-safe; callers already serialise observations (the serve
// metrics mutex). Add is allocation-free after construction.
type Reservoir struct {
	vals     []float64
	n        int64 // observations ever offered
	windowed bool
	rng      uint64
}

// NewReservoir builds a uniform (Algorithm R) reservoir of capacity k.
// The seed makes replacement decisions deterministic for tests; any
// value is fine (splitmix64 scrambles it).
func NewReservoir(k int, seed uint64) *Reservoir {
	if k <= 0 {
		k = 1
	}
	return &Reservoir{vals: make([]float64, 0, k), rng: seed}
}

// NewWindowedReservoir builds a last-k-values ring.
func NewWindowedReservoir(k int) *Reservoir {
	if k <= 0 {
		k = 1
	}
	return &Reservoir{vals: make([]float64, 0, k), windowed: true}
}

// splitmix64 advances the internal RNG state and returns the next word.
func (r *Reservoir) splitmix64() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add offers v to the reservoir.
func (r *Reservoir) Add(v float64) {
	if r == nil {
		return
	}
	r.n++
	if len(r.vals) < cap(r.vals) {
		r.vals = append(r.vals, v)
		return
	}
	if r.windowed {
		r.vals[int((r.n-1)%int64(cap(r.vals)))] = v
		return
	}
	// Algorithm R: keep v with probability k/n, evicting a uniform slot.
	j := r.splitmix64() % uint64(r.n)
	if j < uint64(cap(r.vals)) {
		r.vals[j] = v
	}
}

// Count returns how many observations have been offered (not retained).
func (r *Reservoir) Count() int64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Reset empties the reservoir (RNG state carries on).
func (r *Reservoir) Reset() {
	if r == nil {
		return
	}
	r.vals = r.vals[:0]
	r.n = 0
}

// Sorted returns a sorted copy of the retained sample.
func (r *Reservoir) Sorted() []float64 {
	if r == nil || len(r.vals) == 0 {
		return nil
	}
	out := append([]float64(nil), r.vals...)
	sort.Float64s(out)
	return out
}

// Quantile returns the nearest-rank q-quantile (0..1) of the retained
// sample, 0 when empty.
func (r *Reservoir) Quantile(q float64) float64 {
	return QuantileSorted(r.Sorted(), q)
}

// QuantileSorted returns the nearest-rank q-quantile of an
// already-sorted slice (0 when empty).
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
