package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestPhaseNames(t *testing.T) {
	names := PhaseNames()
	if len(names) != int(NumPhases) {
		t.Fatalf("PhaseNames len %d, want %d", len(names), NumPhases)
	}
	want := []string{"Ingest", "Fwd", "Bwd", "CommWait", "OptApply", "CkptStage", "Queue", "Batch", "Infer"}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("phase %d = %q, want %q", i, names[i], w)
		}
		if Phase(i).String() != w {
			t.Errorf("Phase(%d).String() = %q, want %q", i, Phase(i).String(), w)
		}
	}
	if got := Phase(200).String(); got != "Phase(200)" {
		t.Errorf("out-of-range phase String = %q", got)
	}
}

func TestLaneRecordsSpans(t *testing.T) {
	tr := NewTracer(16)
	l := tr.Lane("w0")
	l.SetIter(3)
	l.Begin(PhaseFwd)
	time.Sleep(time.Millisecond)
	l.End(PhaseFwd)
	l.SetIter(4)
	l.Record(PhaseCommWait, 100, 250)

	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Name != "w0" {
		t.Fatalf("snapshot = %+v", snap)
	}
	sp := snap[0].Spans
	if len(sp) != 2 {
		t.Fatalf("got %d spans, want 2", len(sp))
	}
	if sp[0].Phase != PhaseFwd || sp[0].Iter != 3 || sp[0].Dur() <= 0 {
		t.Errorf("span 0 = %+v", sp[0])
	}
	if sp[1].Phase != PhaseCommWait || sp[1].Iter != 4 || sp[1].Dur() != 150 {
		t.Errorf("span 1 = %+v", sp[1])
	}
	if sp[1].Seconds() != 150e-9 {
		t.Errorf("Seconds = %g", sp[1].Seconds())
	}
}

func TestLaneRingWrap(t *testing.T) {
	tr := NewTracer(4)
	l := tr.Lane("w")
	for i := 0; i < 10; i++ {
		l.Record(PhaseInfer, int64(i), int64(i)+1)
	}
	ls := tr.Snapshot()[0]
	if ls.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", ls.Dropped)
	}
	if len(ls.Spans) != 4 {
		t.Fatalf("kept %d spans, want 4", len(ls.Spans))
	}
	for i, s := range ls.Spans {
		if s.StartNs != int64(6+i) {
			t.Errorf("span %d start %d, want %d (oldest-first order)", i, s.StartNs, 6+i)
		}
	}
}

func TestTracerLaneIdentityAndSort(t *testing.T) {
	tr := NewTracer(8)
	b := tr.Lane("b")
	a := tr.Lane("a")
	if tr.Lane("b") != b {
		t.Fatal("Lane not idempotent")
	}
	if a.Name() != "a" || a.Tracer() != tr {
		t.Fatal("lane accessors wrong")
	}
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot not name-sorted: %+v", snap)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	l := tr.Lane("x")
	if l != nil {
		t.Fatal("nil tracer should hand out nil lanes")
	}
	// All of these must be no-ops, not panics.
	l.SetIter(1)
	l.Begin(PhaseFwd)
	l.End(PhaseFwd)
	l.Record(PhaseFwd, 0, 1)
	if l.Name() != "" || l.Tracer() != nil {
		t.Fatal("nil lane accessors")
	}
	if tr.Now() != 0 || tr.At(time.Now()) != 0 {
		t.Fatal("nil tracer clock")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot")
	}
	if err := tr.WriteTraceFile("/nonexistent/should-not-be-written"); err != nil {
		t.Fatal("nil tracer WriteTraceFile should no-op")
	}
}

func TestTraceHotPathZeroAlloc(t *testing.T) {
	tr := NewTracer(1 << 10)
	l := tr.Lane("hot")
	l.SetIter(1)
	if n := testing.AllocsPerRun(200, func() {
		l.Begin(PhaseFwd)
		l.End(PhaseFwd)
		l.Record(PhaseCommWait, 1, 2)
		l.SetIter(2)
	}); n != 0 {
		t.Fatalf("traced hot path allocates %v/op, want 0", n)
	}
	var nilLane *Lane
	if n := testing.AllocsPerRun(200, func() {
		nilLane.Begin(PhaseFwd)
		nilLane.End(PhaseFwd)
	}); n != 0 {
		t.Fatalf("nil lane allocates %v/op, want 0", n)
	}
}

func TestSnapshotConcurrentWithRecording(t *testing.T) {
	tr := NewTracer(64)
	l := tr.Lane("w")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				l.Record(PhaseInfer, int64(i), int64(i)+1)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		for _, ls := range tr.Snapshot() {
			for _, s := range ls.Spans {
				if s.Dur() != 1 {
					t.Errorf("torn span: %+v", s)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 || r.Counter("reqs") != c {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("rate")
	g.Set(2.5)
	g.Add(0.5)
	g.Max(1.0) // lower — no effect
	g.Max(7.0)
	if g.Value() != 7.0 {
		t.Fatalf("gauge = %g", g.Value())
	}
	h := r.Histogram("lat", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(3)
	if r.Histogram("lat", nil) != h {
		t.Fatal("histogram not idempotent")
	}
	s := r.Snapshot()
	if s.Counters["reqs"] != 5 || s.Gauges["rate"] != 7.0 || s.Histograms["lat"].Count != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	line := s.Line()
	want := "lat=n=2 mean=1.75 rate=7 reqs=5"
	if line != want {
		t.Fatalf("Line() = %q, want %q", line, want)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	g.Max(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instrument reads")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot")
	}
}

func TestRegistryWritesZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 10, 100})
	if n := testing.AllocsPerRun(200, func() {
		c.Add(1)
		g.Set(1)
		g.Add(1)
		g.Max(2)
		h.Observe(5)
	}); n != 0 {
		t.Fatalf("registry write path allocates %v/op, want 0", n)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound ("le")
// assignment: an observation equal to a bound lands in that bound's
// bucket; just above moves to the next; above the last bound lands in
// the overflow slot.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.999, 0}, {1, 0}, // v <= 1
		{math.Nextafter(1, 2), 1}, {2, 1}, // 1 < v <= 2
		{3, 2}, {4, 2}, // 2 < v <= 4
		{math.Nextafter(4, 5), 3}, {1e9, 3}, // overflow
	}
	for _, c := range cases {
		before := h.Snapshot().Counts[c.bucket]
		h.Observe(c.v)
		after := h.Snapshot().Counts[c.bucket]
		if after != before+1 {
			t.Errorf("Observe(%v): bucket %d went %d -> %d, want +1", c.v, c.bucket, before, after)
		}
	}
	s := h.Snapshot()
	if s.Count != int64(len(cases)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(cases))
	}
	if len(s.Counts) != 4 {
		t.Fatalf("Counts len = %d, want 4 (3 bounds + overflow)", len(s.Counts))
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds should panic at construction")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 40))
	}
	s := h.Snapshot()
	// 0..9 land <=10 bucket (plus 10 itself): uniform over 0..39 means
	// the median is ~20; interpolation should put it in [10, 30].
	q50 := s.Quantile(0.5)
	if q50 < 10 || q50 > 30 {
		t.Errorf("q50 = %g, want within [10, 30]", q50)
	}
	if q := s.Quantile(1.0); q < 30 {
		t.Errorf("q100 = %g, want >= 30 (overflow bucket lower bound)", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot quantile/mean should be 0")
	}
}

func TestReservoirUniformCoversWholeStream(t *testing.T) {
	const k, n = 256, 100000
	r := NewReservoir(k, 42)
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	if r.Count() != n {
		t.Fatalf("Count = %d", r.Count())
	}
	vals := r.Sorted()
	if len(vals) != k {
		t.Fatalf("retained %d, want %d", len(vals), k)
	}
	// A uniform sample of 0..n-1 has mean ~n/2 and must include early
	// values; the old biased ring would retain only the last k values
	// (mean ~n-k/2, min ~n-k).
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / k
	if mean < 0.4*n || mean > 0.6*n {
		t.Errorf("uniform reservoir mean %g, want ~%d", mean, n/2)
	}
	if vals[0] > n/10 {
		t.Errorf("min retained %g — early stream lost, sampling is biased", vals[0])
	}
	med := r.Quantile(0.5)
	if med < 0.35*n || med > 0.65*n {
		t.Errorf("median %g, want ~%d", med, n/2)
	}
}

func TestReservoirWindowedKeepsLastK(t *testing.T) {
	const k = 8
	r := NewWindowedReservoir(k)
	for i := 0; i < 20; i++ {
		r.Add(float64(i))
	}
	vals := r.Sorted()
	if len(vals) != k {
		t.Fatalf("retained %d, want %d", len(vals), k)
	}
	for i, v := range vals {
		if v != float64(12+i) {
			t.Fatalf("windowed retained %v, want exactly the last %d values", vals, k)
		}
	}
}

func TestReservoirResetAndNil(t *testing.T) {
	r := NewReservoir(4, 1)
	r.Add(1)
	r.Reset()
	if r.Count() != 0 || len(r.Sorted()) != 0 || r.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear")
	}
	var nr *Reservoir
	nr.Add(1)
	nr.Reset()
	if nr.Count() != 0 || nr.Sorted() != nil {
		t.Fatal("nil reservoir")
	}
}

func TestReservoirAddZeroAlloc(t *testing.T) {
	r := NewReservoir(64, 7)
	w := NewWindowedReservoir(64)
	for i := 0; i < 128; i++ { // past capacity so Add hits the steady path
		r.Add(float64(i))
		w.Add(float64(i))
	}
	if n := testing.AllocsPerRun(200, func() {
		r.Add(1)
		w.Add(1)
	}); n != 0 {
		t.Fatalf("reservoir Add allocates %v/op, want 0", n)
	}
}

func TestQuantileSortedEdges(t *testing.T) {
	if QuantileSorted(nil, 0.5) != 0 {
		t.Error("empty")
	}
	s := []float64{1, 2, 3, 4}
	if QuantileSorted(s, 0) != 1 || QuantileSorted(s, 1) != 4 {
		t.Error("extremes")
	}
	if QuantileSorted(s, 0.5) != 3 { // nearest-rank int(0.5*4)=2
		t.Errorf("q50 = %g", QuantileSorted(s, 0.5))
	}
}
