// Package obs is the unified observability layer: a zero-alloc-on-hot-path
// phase tracer (per-worker ring-buffered span records over a monotonic
// clock), a shared metrics registry (atomic counters, gauges and
// fixed-bucket histograms, snapshotable to stable structs), and timeline
// export in the Chrome trace-event format (chrome://tracing / Perfetto).
//
// The paper's whole argument rests on measured time breakdowns — §V's
// peak/sustained methodology, Fig 5's ingest shares, Fig 8's
// straggler-driven case for hybrid asynchrony. The tracer makes those
// breakdowns visible directly: every worker owns a Lane, every interesting
// interval is a phase Span, and the exported timeline shows comm overlap,
// prefetch hiding and async checkpoint stalls as per-worker rows. The
// registry replaces the repo's five bespoke stats structs (serve.metrics,
// data.IngestStats, ps.WireStats, ckpt.Stats, perf rates) with one common
// model behind thin adapters.
//
// Hot-path contract: Lane.Begin/End and every registry write path are
// allocation-free once constructed, gated by AllocsPerRun like the other
// hot paths in this repo. All Lane and Tracer methods are nil-receiver
// safe, so call sites wire tracing unconditionally and a nil tracer
// costs one predictable branch.
package obs

import "fmt"

// Phase identifies what a span's interval was spent on. Training phases
// follow the paper's iteration anatomy (ingest, forward, backward,
// exposed communication wait, solver apply, checkpoint staging); serving
// phases follow a request's life (queue wait, batch assembly, inference).
type Phase uint8

const (
	PhaseIngest Phase = iota
	PhaseFwd
	PhaseBwd
	PhaseCommWait
	PhaseOptApply
	PhaseCkptStage
	PhaseQueue
	PhaseBatch
	PhaseInfer
	// PhaseRoute and PhaseNetWait belong to the network serving tier
	// (internal/netserve): Route is the router's receive→dispatch interval
	// for one request (frame parse, backend pick, forward enqueue);
	// NetWait is the forward→first-response interval — what the request
	// spent on the wire and inside the backend, the span hedging exists to
	// cut the tail of.
	PhaseRoute
	PhaseNetWait
	// NumPhases bounds per-phase tables (open-span slots, aggregations).
	NumPhases
)

var phaseNames = [NumPhases]string{
	"Ingest", "Fwd", "Bwd", "CommWait", "OptApply", "CkptStage",
	"Queue", "Batch", "Infer", "Route", "NetWait",
}

// String returns the phase's canonical name (also the trace-event name).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// PhaseNames lists every phase name in Phase order — the trace schema the
// CI smoke test validates against.
func PhaseNames() []string {
	out := make([]string, NumPhases)
	copy(out, phaseNames[:])
	return out
}

// Span is one recorded interval on a lane: a phase, the iteration it
// belongs to, and start/end nanoseconds on the owning tracer's monotonic
// clock. 24 bytes, value type — rings of these are flat memory.
type Span struct {
	Phase   Phase
	Iter    int32
	StartNs int64
	EndNs   int64
}

// Dur returns the span's duration in nanoseconds.
func (s Span) Dur() int64 { return s.EndNs - s.StartNs }

// Seconds returns the span's duration in seconds.
func (s Span) Seconds() float64 { return float64(s.EndNs-s.StartNs) / 1e9 }
