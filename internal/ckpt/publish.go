package ckpt

import "deep15pf/internal/obs"

// Publish merges this checkpoint account into a metrics registry under
// the "ckpt." prefix. Counts and seconds add; the version and overlap
// gauges track the latest published account (version via Max, so
// publishing writer stats out of order still reports the newest
// snapshot). A nil registry is a no-op.
func (s Stats) Publish(r *obs.Registry) {
	r.Counter("ckpt.snapshots").Add(s.Snapshots)
	r.Gauge("ckpt.last_version").Max(float64(s.LastVersion))
	r.Gauge("ckpt.stage_seconds").Add(s.StageSeconds)
	r.Gauge("ckpt.write_seconds").Add(s.WriteSeconds)
	r.Gauge("ckpt.exposed_seconds").Add(s.ExposedSeconds)
	r.Gauge("ckpt.overlap").Set(s.Overlap())
}
