package ckpt

import (
	"os"
	"sync"
	"testing"
)

// TestWriterSyncAndAsyncProduceIdenticalStores: the write mode is a timing
// choice, never a content one.
func TestWriterSyncAndAsyncProduceIdenticalStores(t *testing.T) {
	fingerprints := map[bool][]string{}
	for _, async := range []bool{false, true} {
		st, _ := Open(t.TempDir())
		params := testParams(5)
		staging := []*Snapshot{NewStaging(params), NewStaging(params)}
		w := NewWriter(st, async, 0, staging...)
		for k := 0; k < 4; k++ {
			params[0].W.Data[0] = float32(k) // the "training" between snapshots
			s := w.Begin()
			s.Step, s.Arch = k+1, "w-test"
			s.StageWeights(params)
			w.Commit(s, 0)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		vs, err := st.Versions()
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 4 {
			t.Fatalf("async=%v: %d versions, want 4", async, len(vs))
		}
		for _, m := range vs {
			if m.Step != m.Version {
				t.Fatalf("async=%v: version %d carries step %d", async, m.Version, m.Step)
			}
			fingerprints[async] = append(fingerprints[async], m.Fingerprint)
		}
		stats := w.Stats()
		if stats.Snapshots != 4 || stats.LastVersion != 4 {
			t.Fatalf("async=%v stats %+v", async, stats)
		}
		if !async && stats.ExposedSeconds < stats.WriteSeconds {
			t.Fatal("sync writer must expose every write second")
		}
	}
	for i := range fingerprints[false] {
		if fingerprints[false][i] != fingerprints[true][i] {
			t.Fatalf("version %d differs between sync and async writers", i+1)
		}
	}
}

// TestWriterRetention: keep=K prunes after every flush.
func TestWriterRetention(t *testing.T) {
	st, _ := Open(t.TempDir())
	params := testParams(6)
	w := NewWriter(st, false, 2, NewStaging(params))
	for k := 0; k < 5; k++ {
		s := w.Begin()
		s.Step = k + 1
		s.StageWeights(params)
		w.Commit(s, 0)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	vs, _ := st.Versions()
	if len(vs) != 2 || vs[0].Version != 4 || vs[1].Version != 5 {
		t.Fatalf("retention left %v", vs)
	}
}

// TestWriterReportsWriteErrors: a doomed store surfaces through Err and
// Close, not as silently missing versions.
func TestWriterReportsWriteErrors(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	params := testParams(7)
	w := NewWriter(st, false, 0, NewStaging(params))
	// Destroy the store directory out from under the writer.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// Replace it with a file so MkdirAll cannot recreate it.
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := w.Begin()
	s.StageWeights(params)
	w.Commit(s, 0)
	if w.Err() == nil {
		t.Fatal("writer swallowed the write error")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close swallowed the write error")
	}
}

// TestWriterBackpressure: with one staging buffer, Begin after an async
// Commit waits for the in-flight write instead of racing the writer for
// the buffer.
func TestWriterBackpressure(t *testing.T) {
	st, _ := Open(t.TempDir())
	params := testParams(8)
	w := NewWriter(st, true, 0, NewStaging(params))
	var wg sync.WaitGroup
	for k := 0; k < 6; k++ {
		s := w.Begin() // must always return a quiescent buffer
		s.Step = k + 1
		s.StageWeights(params)
		w.Commit(s, 0.001)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	vs, _ := st.Versions()
	if len(vs) != 6 {
		t.Fatalf("%d versions, want 6", len(vs))
	}
	stats := w.Stats()
	if stats.StageSeconds == 0 {
		t.Fatal("stage seconds not booked")
	}
	if stats.ExposedSeconds < stats.StageSeconds {
		t.Fatal("staging must always be exposed")
	}
}
