package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func testParams(seed uint64) []*nn.Param {
	rng := tensor.NewRNG(seed)
	mk := func(name string, shape ...int) *nn.Param {
		w := tensor.New(shape...)
		rng.FillNorm(w, 0, 1)
		return &nn.Param{Name: name, W: w, Grad: tensor.New(shape...)}
	}
	return []*nn.Param{mk("conv.w", 4, 3, 3, 3), mk("conv.b", 4), mk("fc.w", 10, 4)}
}

func testSnapshot(seed uint64, step int) *Snapshot {
	params := testParams(seed)
	solver := opt.NewAdam(1e-3)
	rng := tensor.NewRNG(seed + 1)
	for k := 0; k < 3; k++ {
		for _, p := range params {
			rng.FillNorm(p.Grad, 0, 1)
		}
		solver.Step(params)
	}
	var st opt.State
	solver.CaptureStateInto(&st, params)
	return &Snapshot{
		Step: step, Epoch: step / 4, Arch: "test-arch",
		Params: params, Solver: &st,
		GroupIters: []int{step, step - 1},
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot(1, 8)
	m, err := st.Save(snap)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 || m.Step != 8 || m.Arch != "test-arch" {
		t.Fatalf("manifest %+v", m)
	}
	if m.Fingerprint != fmt.Sprintf("%016x", Fingerprint(snap.Params)) {
		t.Fatal("manifest fingerprint mismatch")
	}

	// Restore into differently initialised params of the same shape.
	params := testParams(99)
	r, ok, err := st.LoadLatest(params)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	for i := range params {
		for j := range params[i].W.Data {
			if params[i].W.Data[j] != snap.Params[i].W.Data[j] {
				t.Fatalf("weight %s[%d] not restored", params[i].Name, j)
			}
		}
	}
	if r.Solver == nil || r.Solver.Algo != "adam" || r.Solver.Steps != 3 {
		t.Fatalf("solver state %+v", r.Solver)
	}
	for si, sl := range r.Solver.Slots {
		for j := range sl.Data {
			for e := range sl.Data[j] {
				if sl.Data[j][e] != snap.Solver.Slots[si].Data[j][e] {
					t.Fatalf("solver slot %s param %d elem %d not restored", sl.Name, j, e)
				}
			}
		}
	}
	if len(r.GroupIters) != 2 || r.GroupIters[0] != 8 || r.GroupIters[1] != 7 {
		t.Fatalf("group iters %v", r.GroupIters)
	}
	if r.Manifest.Version != 1 {
		t.Fatalf("restored manifest version %d", r.Manifest.Version)
	}
}

func TestStoreServerStatesRoundTrip(t *testing.T) {
	st, _ := Open(t.TempDir())
	snap := testSnapshot(2, 4)
	snap.Solver = nil
	snap.Servers = [][]opt.State{
		{{Algo: "adam", Steps: 4, Slots: []opt.StateSlot{
			{Name: "m", Data: [][]float32{{1, 2}, {3}}},
			{Name: "v", Data: [][]float32{{4, 5}, {6}}},
		}}},
		{{Algo: "sgd"}, {Algo: "sgd", Slots: []opt.StateSlot{{Name: "velocity", Data: [][]float32{{7}}}}}},
	}
	if _, err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	r, _, err := st.LoadLatest(testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Solver != nil {
		t.Fatal("no worker solver was saved")
	}
	if len(r.Servers) != 2 || len(r.Servers[0]) != 1 || len(r.Servers[1]) != 2 {
		t.Fatalf("server geometry %v", r.Servers)
	}
	if r.Servers[0][0].Slots[1].Data[1][0] != 6 || r.Servers[1][1].Slots[0].Data[0][0] != 7 {
		t.Fatal("server state values not restored")
	}
	if len(r.Servers[1][0].Slots) != 0 || r.Servers[1][0].Algo != "sgd" {
		t.Fatalf("stateless shard round trip: %+v", r.Servers[1][0])
	}
}

func TestStoreVersionsAreMonotonic(t *testing.T) {
	st, _ := Open(t.TempDir())
	for i := 1; i <= 3; i++ {
		m, err := st.Save(testSnapshot(uint64(i), i*10))
		if err != nil {
			t.Fatal(err)
		}
		if m.Version != i {
			t.Fatalf("save %d got version %d", i, m.Version)
		}
	}
	vs, err := st.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0].Version != 1 || vs[2].Version != 3 {
		t.Fatalf("versions %v", vs)
	}
	// Reopening the same directory continues the sequence (a resumed
	// process must not overwrite history).
	st2, _ := Open(st.Dir())
	if m, _ := st2.Save(testSnapshot(9, 40)); m.Version != 4 {
		t.Fatalf("reopened store saved version %d", m.Version)
	}
}

func TestStoreIgnoresIncompleteAndForeignDirs(t *testing.T) {
	st, _ := Open(t.TempDir())
	if _, err := st.Save(testSnapshot(1, 1)); err != nil {
		t.Fatal(err)
	}
	// A crashed writer's temporary, a foreign dir, and a version dir with
	// no manifest must all be invisible.
	for _, d := range []string{tmpPrefix + "v0000009", "notes", "v0000005"} {
		if err := os.MkdirAll(filepath.Join(st.Dir(), d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	m, ok, err := st.Latest()
	if err != nil || !ok || m.Version != 1 {
		t.Fatalf("latest = %+v ok=%v err=%v", m, ok, err)
	}
	// The next save must skip past the junk v0000005 dir? No: v0000005 has
	// no manifest, so it is not a version; Save targets 2 and must succeed.
	if m, err := st.Save(testSnapshot(2, 2)); err != nil || m.Version != 2 {
		t.Fatalf("save after junk: %+v err=%v", m, err)
	}
}

func TestStorePruneKeepsNewest(t *testing.T) {
	st, _ := Open(t.TempDir())
	for i := 1; i <= 5; i++ {
		if _, err := st.Save(testSnapshot(uint64(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := st.Prune(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("pruned %d versions, want 3", removed)
	}
	vs, _ := st.Versions()
	if len(vs) != 2 || vs[0].Version != 4 || vs[1].Version != 5 {
		t.Fatalf("after prune: %v", vs)
	}
	// keep<=0 is "keep all".
	if n, _ := st.Prune(0); n != 0 {
		t.Fatalf("prune(0) removed %d", n)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	st, _ := Open(t.TempDir())
	m, err := st.Save(testSnapshot(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Verify(m); err != nil {
		t.Fatalf("pristine version fails verify: %v", err)
	}
	// Flip one byte in the weights payload.
	wpath := st.WeightsPath(m.Version)
	raw, _ := os.ReadFile(wpath)
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(wpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Verify(m); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt weights passed verify: %v", err)
	}
	if _, err := st.LoadInto(m.Version, testParams(3)); err == nil {
		t.Fatal("LoadInto accepted a corrupt version")
	}
	// Truncation is size-checked before CRC.
	if err := os.WriteFile(wpath, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Verify(m); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated weights passed verify: %v", err)
	}
}

func TestPollSeesOnlyNewCompleteVersions(t *testing.T) {
	st, _ := Open(t.TempDir())
	if _, ok, _ := st.Poll(0); ok {
		t.Fatal("empty store polled a version")
	}
	m1, _ := st.Save(testSnapshot(1, 1))
	got, ok, err := st.Poll(0)
	if err != nil || !ok || got.Version != m1.Version {
		t.Fatalf("poll after save: %+v ok=%v err=%v", got, ok, err)
	}
	if _, ok, _ := st.Poll(m1.Version); ok {
		t.Fatal("poll past the newest version found something")
	}
	m2, _ := st.Save(testSnapshot(2, 2))
	if got, ok, _ := st.Poll(m1.Version); !ok || got.Version != m2.Version {
		t.Fatalf("poll missed version 2: %+v ok=%v", got, ok)
	}
}

func TestLoadIntoValidatesArchitecture(t *testing.T) {
	st, _ := Open(t.TempDir())
	if _, err := st.Save(testSnapshot(1, 1)); err != nil {
		t.Fatal(err)
	}
	wrong := testParams(1)
	wrong[0].Name = "other.w"
	if _, err := st.LoadInto(1, wrong); err == nil ||
		!strings.Contains(err.Error(), "does not match parameter") {
		t.Fatalf("mismatched architecture loaded: %v", err)
	}
}

func TestStagingRecyclesAndFingerprints(t *testing.T) {
	params := testParams(7)
	staging := NewStaging(params)
	staging.StageWeights(params)
	if Fingerprint(staging.Params) != Fingerprint(params) {
		t.Fatal("staged fingerprint differs from source")
	}
	// Mutate, restage: recycled storage must track the new values with no
	// allocation.
	params[0].W.Data[0] += 1
	if n := testing.AllocsPerRun(20, func() { staging.StageWeights(params) }); n != 0 {
		t.Fatalf("warm StageWeights allocates %.1f times", n)
	}
	if Fingerprint(staging.Params) != Fingerprint(params) {
		t.Fatal("restaged fingerprint differs")
	}
}

// TestPollReturnsCorruptManifestWithError: a verification failure hands
// back the offending manifest so callers can record it and skip past,
// instead of re-reading the payload forever.
func TestPollReturnsCorruptManifestWithError(t *testing.T) {
	st, _ := Open(t.TempDir())
	m, _ := st.Save(testSnapshot(1, 1))
	raw, _ := os.ReadFile(st.WeightsPath(m.Version))
	raw[0] ^= 0xff
	if err := os.WriteFile(st.WeightsPath(m.Version), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Poll(0)
	if ok || err == nil {
		t.Fatalf("corrupt version polled clean: ok=%v err=%v", ok, err)
	}
	if got.Version != m.Version {
		t.Fatalf("poll returned manifest for version %d, want %d", got.Version, m.Version)
	}
	// Skipping past it is quiet.
	if _, ok, err := st.Poll(m.Version); ok || err != nil {
		t.Fatalf("poll past corrupt version: ok=%v err=%v", ok, err)
	}
}

// TestLatestSkipsManifestlessNewerDirs: the newest-first scan ignores
// tampered version-named directories without manifests.
func TestLatestSkipsManifestlessNewerDirs(t *testing.T) {
	st, _ := Open(t.TempDir())
	st.Save(testSnapshot(1, 1))
	if err := os.MkdirAll(st.VersionDir(9), 0o755); err != nil {
		t.Fatal(err)
	}
	m, ok, err := st.Latest()
	if err != nil || !ok || m.Version != 1 {
		t.Fatalf("latest = %+v ok=%v err=%v", m, ok, err)
	}
}
