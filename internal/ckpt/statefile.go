package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"deep15pf/internal/opt"
)

// state.bin carries everything beyond the weights: solver state (worker-
// side and/or per-PS-shard) and the progress cursors. Format (little
// endian):
//
//	magic   uint32 'D15S'
//	version uint32 (1)
//	step, epoch        int64
//	groupIters         count uint32, then count int64
//	solver present     uint8; if 1, one encoded State
//	server layer count uint32; per layer: shard count uint32, then one
//	                   encoded State per shard
//
// An encoded State: algoLen+algo, steps int64, slot count uint32; per
// slot: nameLen+name, param count uint32; per param: numel uint32 +
// float32 data (batch-encoded, like the D15W blobs).
const (
	stateMagic   = 0x44313553 // "D15S"
	stateVersion = 1
	// stateBufBytes sizes the transcode buffer (see nn's checkpoint codec).
	stateBufBytes = 64 << 10
)

type stateEncoder struct {
	w   *bufio.Writer
	buf []byte
}

func (e *stateEncoder) u32(v uint32) error {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	_, err := e.w.Write(e.buf[:4])
	return err
}

func (e *stateEncoder) i64(v int64) error {
	binary.LittleEndian.PutUint64(e.buf[:8], uint64(v))
	_, err := e.w.Write(e.buf[:8])
	return err
}

func (e *stateEncoder) str(s string) error {
	if err := e.u32(uint32(len(s))); err != nil {
		return err
	}
	_, err := e.w.WriteString(s)
	return err
}

func (e *stateEncoder) floats(src []float32) error {
	per := len(e.buf) / 4
	for off := 0; off < len(src); off += per {
		run := src[off:]
		if len(run) > per {
			run = run[:per]
		}
		for i, v := range run {
			binary.LittleEndian.PutUint32(e.buf[i*4:], math.Float32bits(v))
		}
		if _, err := e.w.Write(e.buf[:len(run)*4]); err != nil {
			return err
		}
	}
	return nil
}

func (e *stateEncoder) state(st *opt.State) error {
	if err := e.str(st.Algo); err != nil {
		return err
	}
	if err := e.i64(st.Steps); err != nil {
		return err
	}
	if err := e.u32(uint32(len(st.Slots))); err != nil {
		return err
	}
	for _, sl := range st.Slots {
		if err := e.str(sl.Name); err != nil {
			return err
		}
		if err := e.u32(uint32(len(sl.Data))); err != nil {
			return err
		}
		for _, d := range sl.Data {
			if err := e.u32(uint32(len(d))); err != nil {
				return err
			}
			if err := e.floats(d); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeState serialises the snapshot's non-weight payload to w.
func writeState(w io.Writer, s *Snapshot) error {
	e := &stateEncoder{w: bufio.NewWriter(w), buf: make([]byte, stateBufBytes)}
	if err := e.u32(stateMagic); err != nil {
		return err
	}
	if err := e.u32(stateVersion); err != nil {
		return err
	}
	if err := e.i64(int64(s.Step)); err != nil {
		return err
	}
	if err := e.i64(int64(s.Epoch)); err != nil {
		return err
	}
	if err := e.u32(uint32(len(s.GroupIters))); err != nil {
		return err
	}
	for _, it := range s.GroupIters {
		if err := e.i64(int64(it)); err != nil {
			return err
		}
	}
	present := uint32(0)
	if s.Solver != nil {
		present = 1
	}
	if err := e.u32(present); err != nil {
		return err
	}
	if s.Solver != nil {
		if err := e.state(s.Solver); err != nil {
			return err
		}
	}
	if err := e.u32(uint32(len(s.Servers))); err != nil {
		return err
	}
	for _, layer := range s.Servers {
		if err := e.u32(uint32(len(layer))); err != nil {
			return err
		}
		for i := range layer {
			if err := e.state(&layer[i]); err != nil {
				return err
			}
		}
	}
	if err := e.u32(uint32(len(s.GroupWeights))); err != nil {
		return err
	}
	for _, group := range s.GroupWeights {
		if err := e.u32(uint32(len(group))); err != nil {
			return err
		}
		for _, blob := range group {
			if err := e.u32(uint32(len(blob))); err != nil {
				return err
			}
			if err := e.floats(blob); err != nil {
				return err
			}
		}
	}
	return e.w.Flush()
}

type stateDecoder struct {
	r   *bufio.Reader
	buf []byte
}

func (d *stateDecoder) u32() (uint32, error) {
	if _, err := io.ReadFull(d.r, d.buf[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(d.buf[:4]), nil
}

func (d *stateDecoder) i64() (int64, error) {
	if _, err := io.ReadFull(d.r, d.buf[:8]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(d.buf[:8])), nil
}

func (d *stateDecoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if n > 4096 {
		return "", fmt.Errorf("ckpt: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *stateDecoder) floats(dst []float32) error {
	per := len(d.buf) / 4
	for off := 0; off < len(dst); off += per {
		run := dst[off:]
		if len(run) > per {
			run = run[:per]
		}
		if _, err := io.ReadFull(d.r, d.buf[:len(run)*4]); err != nil {
			return err
		}
		for i := range run {
			run[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.buf[i*4:]))
		}
	}
	return nil
}

// maxStateElems caps a single decoded array so a corrupt header cannot ask
// for terabytes (2^28 float32s = 1 GiB — far above any real layer here).
const maxStateElems = 1 << 28

func (d *stateDecoder) state() (opt.State, error) {
	var st opt.State
	var err error
	if st.Algo, err = d.str(); err != nil {
		return st, err
	}
	if st.Steps, err = d.i64(); err != nil {
		return st, err
	}
	nSlots, err := d.u32()
	if err != nil {
		return st, err
	}
	if nSlots > 16 {
		return st, fmt.Errorf("ckpt: implausible slot count %d", nSlots)
	}
	st.Slots = make([]opt.StateSlot, nSlots)
	for i := range st.Slots {
		if st.Slots[i].Name, err = d.str(); err != nil {
			return st, err
		}
		nParams, err := d.u32()
		if err != nil {
			return st, err
		}
		if nParams > maxStateElems {
			return st, fmt.Errorf("ckpt: implausible param count %d", nParams)
		}
		st.Slots[i].Data = make([][]float32, nParams)
		for j := range st.Slots[i].Data {
			numel, err := d.u32()
			if err != nil {
				return st, err
			}
			if numel > maxStateElems {
				return st, fmt.Errorf("ckpt: implausible element count %d", numel)
			}
			st.Slots[i].Data[j] = make([]float32, numel)
			if err := d.floats(st.Slots[i].Data[j]); err != nil {
				return st, err
			}
		}
	}
	return st, nil
}

// readState parses a state.bin payload.
func readState(r io.Reader) (*Restored, error) {
	d := &stateDecoder{r: bufio.NewReader(r), buf: make([]byte, stateBufBytes)}
	magic, err := d.u32()
	if err != nil {
		return nil, fmt.Errorf("ckpt: short state header: %w", err)
	}
	if magic != stateMagic {
		return nil, fmt.Errorf("ckpt: not a checkpoint state file")
	}
	ver, err := d.u32()
	if err != nil {
		return nil, err
	}
	if ver != stateVersion {
		return nil, fmt.Errorf("ckpt: state format version %d, want %d", ver, stateVersion)
	}
	out := &Restored{}
	if _, err := d.i64(); err != nil { // step (authoritative copy in manifest)
		return nil, err
	}
	if _, err := d.i64(); err != nil { // epoch
		return nil, err
	}
	nGroups, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nGroups > 1<<20 {
		return nil, fmt.Errorf("ckpt: implausible group count %d", nGroups)
	}
	if nGroups > 0 {
		out.GroupIters = make([]int, nGroups)
		for i := range out.GroupIters {
			v, err := d.i64()
			if err != nil {
				return nil, err
			}
			out.GroupIters[i] = int(v)
		}
	}
	present, err := d.u32()
	if err != nil {
		return nil, err
	}
	if present == 1 {
		st, err := d.state()
		if err != nil {
			return nil, err
		}
		out.Solver = &st
	}
	nLayers, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nLayers > 1<<20 {
		return nil, fmt.Errorf("ckpt: implausible layer count %d", nLayers)
	}
	if nLayers > 0 {
		out.Servers = make([][]opt.State, nLayers)
		for l := range out.Servers {
			nShards, err := d.u32()
			if err != nil {
				return nil, err
			}
			if nShards > 1<<20 {
				return nil, fmt.Errorf("ckpt: implausible shard count %d", nShards)
			}
			out.Servers[l] = make([]opt.State, nShards)
			for s := range out.Servers[l] {
				if out.Servers[l][s], err = d.state(); err != nil {
					return nil, err
				}
			}
		}
	}
	nGW, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nGW > 1<<20 {
		return nil, fmt.Errorf("ckpt: implausible group-weight count %d", nGW)
	}
	if nGW > 0 {
		out.GroupWeights = make([][][]float32, nGW)
		for g := range out.GroupWeights {
			nParams, err := d.u32()
			if err != nil {
				return nil, err
			}
			if nParams > 1<<20 {
				return nil, fmt.Errorf("ckpt: implausible group-weight param count %d", nParams)
			}
			out.GroupWeights[g] = make([][]float32, nParams)
			for i := range out.GroupWeights[g] {
				numel, err := d.u32()
				if err != nil {
					return nil, err
				}
				if numel > maxStateElems {
					return nil, fmt.Errorf("ckpt: implausible group-weight element count %d", numel)
				}
				out.GroupWeights[g][i] = make([]float32, numel)
				if err := d.floats(out.GroupWeights[g][i]); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}
