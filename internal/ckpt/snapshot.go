// Package ckpt is the checkpoint store and continuous-deployment substrate:
// a directory of monotonically versioned, atomically written training
// snapshots that closes the train→serve loop. The paper books
// checkpointing directly into its sustained rate ("in some iterations, a
// checkpointing is performed to save the current trained model", §V — one
// snapshot per 10 iterations for climate); production descendants of the
// pipeline (Khan et al. 2019's DES galaxy catalogs) continuously retrain
// and redeploy. This package supplies both halves:
//
//   - the training side stages a Snapshot (weights + optimizer state +
//     progress cursors — enough for bit-exact resume) into recycled
//     buffers at an iteration boundary and a background Writer flushes it
//     while compute continues, the PR 3/4 overlap idiom applied to output
//     I/O;
//   - the serving side polls the Store for new versions, verifies
//     manifest CRCs, and hot-swaps replicas (internal/serve.Deployment).
//
// A snapshot on disk is one directory, vNNNNNNN/, holding manifest.json
// (step, epoch, arch, FNV fingerprint, per-file CRCs), weights.d15w (the
// D15W blob serving already loads), and state.bin (solver state and
// cursors). Directories are written under a temporary name and renamed
// into place, so a concurrent reader only ever sees complete versions.
package ckpt

import (
	"math"

	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
)

// Snapshot is one training checkpoint in memory: everything a fresh
// process needs to continue the run bit for bit (for deterministic
// configurations — fp32 wire, lockstep or single-group schedules; see
// core's resume notes for the asynchronous caveats).
type Snapshot struct {
	Step  int    // completed training iterations
	Epoch int    // completed dataset passes (informational)
	Arch  string // architecture name (serving compatibility check)

	// Problem is the workload the model was trained for (hep, climate,
	// astro). Serving consumers refuse to load a checkpoint whose problem
	// disagrees with the architecture they were asked to serve — the
	// model-zoo guard against pointing a watcher at the wrong store.
	// Empty in checkpoints written before the field existed.
	Problem string

	// Params are the weight blobs in trainable-layer-major order — the
	// same order core.Replica.TrainableLayers exposes and the same order
	// the D15W format validates by name.
	Params []*nn.Param

	// Solver is the worker-side solver state (synchronous training); nil
	// when the run keeps its state on the parameter servers instead.
	Solver *opt.State

	// Servers is the parameter-server solver state, [layer][shard];
	// nil for synchronous runs.
	Servers [][]opt.State

	// GroupIters is the scheduled trainer's per-group progress cursor;
	// nil for the concurrent trainers (their cursor is just Step).
	GroupIters []int

	// GroupWeights is the scheduled trainer's per-group replica view,
	// [group][param][elem] in Params order: each group's weights are the
	// master *as of that group's last push* — stale by every later push
	// from other groups — and that staleness is part of the trajectory,
	// so bit-exact resume must restore it rather than refetch the (newer)
	// master. Nil for the concurrent trainers.
	GroupWeights [][][]float32
}

// StageGroupWeights sizes (on first use) and fills the per-group weight
// staging from each group's live parameters; warm calls recycle.
func (s *Snapshot) StageGroupWeights(groups [][]*nn.Param) {
	if len(s.GroupWeights) != len(groups) {
		s.GroupWeights = make([][][]float32, len(groups))
	}
	for g, params := range groups {
		if len(s.GroupWeights[g]) != len(params) {
			s.GroupWeights[g] = make([][]float32, len(params))
		}
		for i, p := range params {
			if len(s.GroupWeights[g][i]) != p.W.Len() {
				s.GroupWeights[g][i] = make([]float32, p.W.Len())
			}
			copy(s.GroupWeights[g][i], p.W.Data)
		}
	}
}

// NewStaging builds a reusable staging snapshot shaped like params: names
// and sizes are cloned once, and every later StageWeights recycles the
// same storage — a warm staging pass touches no allocator, which is what
// keeps checkpoint iterations allocation-free on the training goroutine.
func NewStaging(params []*nn.Param) *Snapshot {
	s := &Snapshot{Params: make([]*nn.Param, len(params))}
	for i, p := range params {
		s.Params[i] = &nn.Param{Name: p.Name, W: p.W.Clone()}
	}
	return s
}

// StageWeights copies the current values of params (which must match the
// staging geometry) into the snapshot.
func (s *Snapshot) StageWeights(params []*nn.Param) {
	if len(params) != len(s.Params) {
		panic("ckpt: staging geometry mismatch")
	}
	for i, p := range params {
		copy(s.Params[i].W.Data, p.W.Data)
	}
}

// Fingerprint hashes the little-endian float32 bits of every parameter in
// order with FNV-1a — the same digest the golden trajectory tests pin, so
// a resumed run can be compared against an uninterrupted one across
// processes by two hex strings.
func Fingerprint(params []*nn.Param) uint64 {
	h := fnvOffset
	for _, p := range params {
		h = hashFloats(h, p.W.Data)
	}
	return h
}

// FingerprintWeights is Fingerprint over core's Result.FinalWeights wire
// format ([layer][param][elem]) — the same digest, so a trainer's printed
// fingerprint is directly comparable with store manifests across
// processes (the CI resume smoke diffs exactly these hex strings).
func FingerprintWeights(weights [][][]float32) uint64 {
	h := fnvOffset
	for _, layer := range weights {
		for _, blob := range layer {
			h = hashFloats(h, blob)
		}
	}
	return h
}

const (
	fnvOffset = uint64(1469598103934665603)
	fnvPrime  = uint64(1099511628211)
)

func hashFloats(h uint64, data []float32) uint64 {
	for _, v := range data {
		bits := uint64(math.Float32bits(v))
		for s := 0; s < 32; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= fnvPrime
		}
	}
	return h
}
