package ckpt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
)

// Manifest describes one on-disk snapshot version. It is the unit a
// watcher trusts: a version directory is only served once its manifest
// parses and its CRCs match the payload files.
type Manifest struct {
	Version     int    `json:"version"`
	Step        int    `json:"step"`
	Epoch       int    `json:"epoch"`
	Arch        string `json:"arch"`
	Problem     string `json:"problem,omitempty"` // workload name (hep/climate/astro); "" in pre-PR-10 stores
	Fingerprint string `json:"fingerprint"`       // %016x FNV-1a over the weight bits
	WeightsCRC  uint32 `json:"weights_crc"`       // IEEE CRC-32 of weights.d15w
	StateCRC    uint32 `json:"state_crc"`         // IEEE CRC-32 of state.bin
	WeightBytes int64  `json:"weight_bytes"`
	StateBytes  int64  `json:"state_bytes"`
	UnixNano    int64  `json:"unix_nano"` // write time (informational)
}

// Restored is a loaded snapshot: the weights land directly in the
// parameters handed to LoadInto; everything else comes back here for the
// caller to install.
type Restored struct {
	Manifest     Manifest
	Solver       *opt.State
	Servers      [][]opt.State
	GroupIters   []int
	GroupWeights [][][]float32
}

const (
	manifestFile = "manifest.json"
	weightsFile  = "weights.d15w"
	stateFile    = "state.bin"
	tmpPrefix    = ".tmp-"
)

// Store is a checkpoint directory of monotonically versioned snapshots.
// One writer (the training run) and any number of readers (watchers,
// resuming processes) may use a store concurrently: versions appear
// atomically via directory rename and are never modified after that.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a checkpoint directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func versionName(v int) string { return fmt.Sprintf("v%07d", v) }

// parseVersion extracts N from "vNNNNNNN"; ok=false for anything else.
func parseVersion(name string) (int, bool) {
	if !strings.HasPrefix(name, "v") || len(name) < 2 {
		return 0, false
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// VersionDir returns the directory a version lives in.
func (st *Store) VersionDir(version int) string {
	return filepath.Join(st.dir, versionName(version))
}

// WeightsPath returns the D15W weight blob of a version — the path
// serve.Registry.Load consumes directly.
func (st *Store) WeightsPath(version int) string {
	return filepath.Join(st.VersionDir(version), weightsFile)
}

// Manifest reads and parses one version's manifest.
func (st *Store) Manifest(version int) (Manifest, error) {
	var m Manifest
	raw, err := os.ReadFile(filepath.Join(st.VersionDir(version), manifestFile))
	if err != nil {
		return m, fmt.Errorf("ckpt: version %d: %w", version, err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("ckpt: version %d: corrupt manifest: %w", version, err)
	}
	if m.Version != version {
		return m, fmt.Errorf("ckpt: directory %s carries manifest for version %d", versionName(version), m.Version)
	}
	return m, nil
}

// Versions lists the store's complete versions in ascending order,
// skipping in-progress temporaries and directories whose manifest does not
// parse (a crashed writer's leavings are invisible, not fatal).
func (st *Store) Versions() ([]Manifest, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: listing store: %w", err)
	}
	var out []Manifest
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		v, ok := parseVersion(e.Name())
		if !ok {
			continue
		}
		m, err := st.Manifest(v)
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, nil
}

// Latest returns the newest complete version, ok=false on an empty store.
// It scans directory names for the highest version and reads manifests
// newest-first, so the common case costs one manifest read no matter how
// many versions have accumulated (Versions() is the O(N) listing walk).
func (st *Store) Latest() (Manifest, bool, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return Manifest{}, false, fmt.Errorf("ckpt: listing store: %w", err)
	}
	var vs []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if v, ok := parseVersion(e.Name()); ok {
			vs = append(vs, v)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vs)))
	for _, v := range vs {
		if m, err := st.Manifest(v); err == nil {
			return m, true, nil
		}
		// A directory without a parsable manifest is not a version
		// (writers rename complete directories; this is tampering or
		// foreign junk) — skip to the next-newest candidate.
	}
	return Manifest{}, false, nil
}

// Poll returns the newest complete version strictly newer than `after`
// whose payload passes CRC verification — the watcher's one-call probe.
// ok=false means nothing new. A version that exists but fails
// verification returns its manifest alongside the error, so a caller can
// record the corruption and skip past it instead of re-reading the
// payload on every poll.
func (st *Store) Poll(after int) (Manifest, bool, error) {
	m, ok, err := st.Latest()
	if err != nil || !ok || m.Version <= after {
		return Manifest{}, false, err
	}
	if err := st.Verify(m); err != nil {
		return m, false, err
	}
	return m, true, nil
}

// Verify re-reads a version's payload files and checks sizes and CRCs
// against the manifest — the corruption gate a deployment runs before
// building replicas from a version.
func (st *Store) Verify(m Manifest) error {
	check := func(name string, wantCRC uint32, wantBytes int64) error {
		raw, err := os.ReadFile(filepath.Join(st.VersionDir(m.Version), name))
		if err != nil {
			return fmt.Errorf("ckpt: version %d: %w", m.Version, err)
		}
		if int64(len(raw)) != wantBytes {
			return fmt.Errorf("ckpt: version %d: %s is %d bytes, manifest promises %d (truncated or corrupt)",
				m.Version, name, len(raw), wantBytes)
		}
		if crc := crc32.ChecksumIEEE(raw); crc != wantCRC {
			return fmt.Errorf("ckpt: version %d: %s CRC %08x, manifest promises %08x (corrupt)",
				m.Version, name, crc, wantCRC)
		}
		return nil
	}
	if err := check(weightsFile, m.WeightsCRC, m.WeightBytes); err != nil {
		return err
	}
	return check(stateFile, m.StateCRC, m.StateBytes)
}

// Save writes snap as the next version: payloads and manifest go to a
// temporary directory first, which is renamed into place — a reader never
// observes a half-written version, and a crash leaves only an ignorable
// .tmp- directory behind.
func (st *Store) Save(snap *Snapshot) (Manifest, error) {
	next := 1
	if m, ok, err := st.Latest(); err != nil {
		return Manifest{}, err
	} else if ok {
		next = m.Version + 1
	}
	var wbuf, sbuf bytes.Buffer
	if err := nn.SaveWeights(&wbuf, snap.Params); err != nil {
		return Manifest{}, fmt.Errorf("ckpt: encoding weights: %w", err)
	}
	if err := writeState(&sbuf, snap); err != nil {
		return Manifest{}, fmt.Errorf("ckpt: encoding state: %w", err)
	}
	m := Manifest{
		Version:     next,
		Step:        snap.Step,
		Epoch:       snap.Epoch,
		Arch:        snap.Arch,
		Problem:     snap.Problem,
		Fingerprint: fmt.Sprintf("%016x", Fingerprint(snap.Params)),
		WeightsCRC:  crc32.ChecksumIEEE(wbuf.Bytes()),
		StateCRC:    crc32.ChecksumIEEE(sbuf.Bytes()),
		WeightBytes: int64(wbuf.Len()),
		StateBytes:  int64(sbuf.Len()),
		UnixNano:    time.Now().UnixNano(),
	}
	mraw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, err
	}

	tmp := filepath.Join(st.dir, tmpPrefix+versionName(next))
	if err := os.RemoveAll(tmp); err != nil {
		return Manifest{}, err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return Manifest{}, err
	}
	fail := func(err error) (Manifest, error) {
		os.RemoveAll(tmp)
		return Manifest{}, err
	}
	if err := os.WriteFile(filepath.Join(tmp, weightsFile), wbuf.Bytes(), 0o644); err != nil {
		return fail(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, stateFile), sbuf.Bytes(), 0o644); err != nil {
		return fail(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, manifestFile), append(mraw, '\n'), 0o644); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, st.VersionDir(next)); err != nil {
		return fail(err)
	}
	return m, nil
}

// LoadInto restores a version: weights land in params (validated blob by
// blob by the D15W loader, then checked against the manifest fingerprint),
// solver state and cursors come back in the Restored. Both payloads are
// CRC-verified before a byte is decoded.
func (st *Store) LoadInto(version int, params []*nn.Param) (*Restored, error) {
	m, err := st.Manifest(version)
	if err != nil {
		return nil, err
	}
	if err := st.Verify(m); err != nil {
		return nil, err
	}
	wraw, err := os.ReadFile(st.WeightsPath(version))
	if err != nil {
		return nil, err
	}
	if err := nn.LoadWeights(bytes.NewReader(wraw), params); err != nil {
		return nil, fmt.Errorf("ckpt: version %d: %w", version, err)
	}
	if fp := fmt.Sprintf("%016x", Fingerprint(params)); fp != m.Fingerprint {
		return nil, fmt.Errorf("ckpt: version %d: loaded fingerprint %s, manifest promises %s", version, fp, m.Fingerprint)
	}
	sraw, err := os.ReadFile(filepath.Join(st.VersionDir(version), stateFile))
	if err != nil {
		return nil, err
	}
	restored, err := readState(bytes.NewReader(sraw))
	if err != nil {
		return nil, fmt.Errorf("ckpt: version %d: %w", version, err)
	}
	restored.Manifest = m
	return restored, nil
}

// LoadLatest is LoadInto on the newest version. ok=false: empty store.
func (st *Store) LoadLatest(params []*nn.Param) (*Restored, bool, error) {
	m, ok, err := st.Latest()
	if err != nil || !ok {
		return nil, false, err
	}
	r, err := st.LoadInto(m.Version, params)
	if err != nil {
		return nil, false, err
	}
	return r, true, nil
}

// Prune deletes the oldest complete versions beyond the newest keep
// (keep <= 0 keeps everything). Returns how many versions were removed.
// The retention walk never touches the newest version, so a concurrent
// reader holding Latest always finds its files.
func (st *Store) Prune(keep int) (int, error) {
	if keep <= 0 {
		return 0, nil
	}
	vs, err := st.Versions()
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, m := range vs[:max(0, len(vs)-keep)] {
		if err := os.RemoveAll(st.VersionDir(m.Version)); err != nil {
			return removed, fmt.Errorf("ckpt: pruning version %d: %w", m.Version, err)
		}
		removed++
	}
	return removed, nil
}
