package ckpt

import (
	"fmt"
	"sync"
	"time"
)

// Stats accounts a run's checkpoint cost the way data.IngestStats accounts
// ingest: StageSeconds is the iteration-boundary clone into the staging
// buffer (always on the compute goroutine), WriteSeconds is the
// encode+flush of the snapshot files (on the background writer when
// async), and ExposedSeconds is the part the training loop actually
// stalled on — staging plus, for synchronous writes, the whole flush, or,
// for async, any wait for a free staging buffer when the writer falls
// behind. The async target is ExposedSeconds → StageSeconds while
// WriteSeconds stays put, exactly like the PR 3/4 overlap splits.
type Stats struct {
	Snapshots      int64
	LastVersion    int
	StageSeconds   float64
	WriteSeconds   float64
	ExposedSeconds float64
}

// Add merges two accounts.
func (s Stats) Add(o Stats) Stats {
	last := s.LastVersion
	if o.LastVersion > last {
		last = o.LastVersion
	}
	return Stats{
		Snapshots:      s.Snapshots + o.Snapshots,
		LastVersion:    last,
		StageSeconds:   s.StageSeconds + o.StageSeconds,
		WriteSeconds:   s.WriteSeconds + o.WriteSeconds,
		ExposedSeconds: s.ExposedSeconds + o.ExposedSeconds,
	}
}

// Overlap returns the fraction of total checkpoint work (stage + write)
// hidden from the training loop, in [0,1]. A synchronous writer scores 0.
func (s Stats) Overlap() float64 {
	total := s.StageSeconds + s.WriteSeconds
	if total <= 0 {
		return 0
	}
	f := 1 - s.ExposedSeconds/total
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Writer flushes staged snapshots to a Store, optionally on a background
// goroutine so the write overlaps training compute (the input-pipeline
// prefetch idiom pointed at output I/O). The caller owns a fixed pool of
// staging snapshots, registered at construction; Begin hands one out
// (blocking only when every buffer is still being written — an exposed
// stall, booked), the caller stages into it, and Commit either enqueues it
// (async) or writes it in place (sync).
type Writer struct {
	store *Store
	keep  int
	async bool

	free chan *Snapshot
	work chan *Snapshot
	wg   sync.WaitGroup

	mu    sync.Mutex
	stats Stats
	err   error
}

// NewWriter builds a writer over the given staging buffers (at least one;
// two make the classic double buffer — one being written while the next
// stages). keep > 0 prunes the store to the newest keep versions after
// every write.
func NewWriter(store *Store, async bool, keep int, staging ...*Snapshot) *Writer {
	if len(staging) == 0 {
		panic("ckpt: Writer needs at least one staging snapshot")
	}
	w := &Writer{
		store: store,
		keep:  keep,
		async: async,
		free:  make(chan *Snapshot, len(staging)),
		work:  make(chan *Snapshot, len(staging)),
	}
	for _, s := range staging {
		w.free <- s
	}
	if async {
		w.wg.Add(1)
		go w.run()
	}
	return w
}

func (w *Writer) run() {
	defer w.wg.Done()
	for s := range w.work {
		w.flush(s)
		w.free <- s
	}
}

// flush writes one staged snapshot and applies retention, booking the
// write time and recording the first error.
func (w *Writer) flush(s *Snapshot) {
	t0 := time.Now()
	m, err := w.store.Save(s)
	if err == nil && w.keep > 0 {
		_, err = w.store.Prune(w.keep)
	}
	dt := time.Since(t0).Seconds()
	w.mu.Lock()
	w.stats.WriteSeconds += dt
	if err == nil {
		w.stats.Snapshots++
		w.stats.LastVersion = m.Version
	} else if w.err == nil {
		w.err = err
	}
	if !w.async {
		w.stats.ExposedSeconds += dt // sync: the flush sat on the critical path
	}
	w.mu.Unlock()
}

// Begin returns a free staging snapshot to fill. With the async writer
// keeping up this returns immediately; when it is behind, the wait is
// booked as exposed stall time.
func (w *Writer) Begin() *Snapshot {
	select {
	case s := <-w.free:
		return s
	default:
	}
	t0 := time.Now()
	s := <-w.free
	dt := time.Since(t0).Seconds()
	w.mu.Lock()
	w.stats.ExposedSeconds += dt
	w.mu.Unlock()
	return s
}

// Commit hands a staged snapshot to the writer. stageSeconds is the time
// the caller spent cloning into the buffer (on the compute goroutine), and
// is booked as both staging work and exposed stall.
func (w *Writer) Commit(s *Snapshot, stageSeconds float64) {
	w.mu.Lock()
	w.stats.StageSeconds += stageSeconds
	w.stats.ExposedSeconds += stageSeconds
	w.mu.Unlock()
	if w.async {
		w.work <- s // buffered to pool size: never blocks (Begin gated entry)
		return
	}
	w.flush(s)
	w.free <- s
}

// Close drains in-flight writes and returns the first write error. The
// writer must not be used afterwards.
func (w *Writer) Close() error {
	if w.async {
		close(w.work)
		w.wg.Wait()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Err returns the first write error so far (nil while healthy). A
// checkpointing trainer checks it at every snapshot: a run that believes
// it is durable but is not must fail loudly, not at restore time.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return fmt.Errorf("ckpt: snapshot write failed: %w", w.err)
	}
	return nil
}

// Stats snapshots the writer's accounting.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
