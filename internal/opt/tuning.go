package opt

// Momentum/asynchrony interaction, after Mitliagkas et al. (the paper's
// [31]): running G compute groups asynchronously behaves like momentum SGD
// with an *implicit* momentum term ≈ 1 − 1/G on top of whatever explicit
// momentum the solver applies. The paper therefore tunes explicit momentum
// down as the group count rises (its Fig 8 grid is {0.0, 0.4, 0.7}).

// ImplicitMomentum returns the asynchrony-induced momentum for G compute
// groups: 1 − 1/G (zero for the synchronous G=1 case).
func ImplicitMomentum(groups int) float64 {
	if groups <= 1 {
		return 0
	}
	return 1 - 1/float64(groups)
}

// EffectiveMomentum composes explicit solver momentum with the implicit
// asynchrony momentum: the combined geometric memory of an update is
// 1 − (1−μ_explicit)·(1−μ_implicit).
func EffectiveMomentum(explicit float64, groups int) float64 {
	return 1 - (1-explicit)*(1-ImplicitMomentum(groups))
}

// TuneMomentum returns the explicit momentum that makes the effective
// momentum equal target under G groups, clamped to [0, 0.95]. For large G
// the implicit momentum alone exceeds the target and the right setting is
// zero — which matches the paper's observation that the best hybrid runs
// use much lower explicit momentum than the sync run's 0.9.
func TuneMomentum(target float64, groups int) float64 {
	impl := ImplicitMomentum(groups)
	if impl >= target {
		return 0
	}
	// Solve 1 − (1−μ)(1−impl) = target.
	mu := 1 - (1-target)/(1-impl)
	if mu < 0 {
		mu = 0
	}
	if mu > 0.95 {
		mu = 0.95
	}
	return mu
}

// MomentumGrid is the discrete explicit-momentum search set the paper uses
// for hybrid runs in §VI-B4.
var MomentumGrid = []float64{0.0, 0.4, 0.7}
