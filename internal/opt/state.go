package opt

import (
	"fmt"

	"deep15pf/internal/nn"
)

// Solver state export/restore, the optimizer half of bit-exact resume: a
// checkpoint that carries only weights restarts momentum and the ADAM
// moments from zero, so the post-restore trajectory diverges from the
// uninterrupted one on the first step. State captures the per-parameter
// slots (and the ADAM step counter, which drives bias correction) so a
// restored solver continues exactly where the snapshotted one stopped.
//
// Slots are positional: Data[i] belongs to params[i] of the capture call,
// so restore must present the same parameter set in the same order — the
// same contract the D15W weight format enforces by name.

// State is one solver's complete training state.
type State struct {
	Algo  string // algorithm name, validated on restore
	Steps int64  // update count (ADAM bias correction); 0 for SGD
	Slots []StateSlot
}

// StateSlot is one named per-parameter state array (velocity, m, v, ...).
type StateSlot struct {
	Name string
	Data [][]float32 // aligned with the captured parameter slice
}

// Elems returns the total element count across slots.
func (st *State) Elems() int {
	n := 0
	for _, sl := range st.Slots {
		for _, d := range sl.Data {
			n += len(d)
		}
	}
	return n
}

// Stateful is implemented by solvers whose state can be checkpointed.
// Solvers that do not implement it still train and still checkpoint their
// weights; resume just restarts their state cold (documented, not silent:
// CaptureState reports ok=false).
type Stateful interface {
	// CaptureStateInto copies the solver's state for params into st,
	// growing st's storage on first use and recycling it afterwards — a
	// warm capture touches no allocator, which is what lets the async
	// checkpointer stage at iteration boundaries for free. A parameter the
	// solver has never stepped captures as zeros (exactly the state a
	// fresh slot would hold).
	CaptureStateInto(st *State, params []*nn.Param)
	// RestoreState installs a captured state for params, replacing any
	// existing state. It fails loudly on algorithm, slot or size mismatch.
	RestoreState(params []*nn.Param, st *State) error
}

// ensureSlots shapes st to the given slot names over params, recycling
// existing storage when the geometry already matches.
func ensureSlots(st *State, params []*nn.Param, names ...string) {
	if len(st.Slots) != len(names) {
		st.Slots = make([]StateSlot, len(names))
	}
	for i, name := range names {
		sl := &st.Slots[i]
		sl.Name = name
		if len(sl.Data) != len(params) {
			sl.Data = make([][]float32, len(params))
		}
		for j, p := range params {
			if len(sl.Data[j]) != p.W.Len() {
				sl.Data[j] = make([]float32, p.W.Len())
			}
		}
	}
}

// validateState checks the restore geometry shared by both solvers.
func validateState(algo string, params []*nn.Param, st *State, names ...string) error {
	if st.Algo != algo {
		return fmt.Errorf("opt: restoring %q state into a %s solver", st.Algo, algo)
	}
	if len(st.Slots) != len(names) {
		return fmt.Errorf("opt: %s state has %d slots, want %d", algo, len(st.Slots), len(names))
	}
	for i, name := range names {
		sl := st.Slots[i]
		if sl.Name != name {
			return fmt.Errorf("opt: %s state slot %d is %q, want %q", algo, i, sl.Name, name)
		}
		if len(sl.Data) != len(params) {
			return fmt.Errorf("opt: %s state slot %q covers %d parameters, model has %d", algo, name, len(sl.Data), len(params))
		}
		for j, d := range sl.Data {
			if len(d) != params[j].W.Len() {
				return fmt.Errorf("opt: %s state slot %q param %d (%s) has %d elements, model has %d",
					algo, name, j, params[j].Name, len(d), params[j].W.Len())
			}
		}
	}
	return nil
}

// CaptureStateInto implements Stateful.
func (s *SGD) CaptureStateInto(st *State, params []*nn.Param) {
	st.Algo, st.Steps = s.Name(), 0
	ensureSlots(st, params, "velocity")
	for j, p := range params {
		dst := st.Slots[0].Data[j]
		if v, ok := s.velocity[p.W]; ok {
			copy(dst, v)
		} else {
			clear(dst)
		}
	}
}

// RestoreState implements Stateful.
func (s *SGD) RestoreState(params []*nn.Param, st *State) error {
	if err := validateState(s.Name(), params, st, "velocity"); err != nil {
		return err
	}
	for j, p := range params {
		v, ok := s.velocity[p.W]
		if !ok {
			v = make([]float32, p.W.Len())
			s.velocity[p.W] = v
		}
		copy(v, st.Slots[0].Data[j])
	}
	return nil
}

// CaptureStateInto implements Stateful.
func (a *Adam) CaptureStateInto(st *State, params []*nn.Param) {
	st.Algo, st.Steps = a.Name(), int64(a.t)
	ensureSlots(st, params, "m", "v")
	for j, p := range params {
		if m, ok := a.m[p.W]; ok {
			copy(st.Slots[0].Data[j], m)
			copy(st.Slots[1].Data[j], a.v[p.W])
		} else {
			clear(st.Slots[0].Data[j])
			clear(st.Slots[1].Data[j])
		}
	}
}

// RestoreState implements Stateful.
func (a *Adam) RestoreState(params []*nn.Param, st *State) error {
	if err := validateState(a.Name(), params, st, "m", "v"); err != nil {
		return err
	}
	a.t = int(st.Steps)
	for j, p := range params {
		m, ok := a.m[p.W]
		if !ok {
			m = make([]float32, p.W.Len())
			a.m[p.W] = m
			a.v[p.W] = make([]float32, p.W.Len())
		}
		copy(m, st.Slots[0].Data[j])
		copy(a.v[p.W], st.Slots[1].Data[j])
	}
	return nil
}

// CaptureState captures solver state for params when the solver supports
// it; ok=false means the solver keeps no exportable state (resume restarts
// it cold).
func CaptureState(s Solver, st *State, params []*nn.Param) (ok bool) {
	sf, ok := s.(Stateful)
	if !ok {
		return false
	}
	sf.CaptureStateInto(st, params)
	return true
}

// RestoreState restores captured state when the solver supports it.
func RestoreState(s Solver, params []*nn.Param, st *State) error {
	sf, ok := s.(Stateful)
	if !ok {
		return fmt.Errorf("opt: solver %q cannot restore state", s.Name())
	}
	return sf.RestoreState(params, st)
}
