package opt

import (
	"strings"
	"testing"

	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// stateParams builds a two-blob parameter set with deterministic weights
// and gradients.
func stateParams(seed uint64) []*nn.Param {
	rng := tensor.NewRNG(seed)
	mk := func(name string, n int) *nn.Param {
		w := tensor.New(n)
		g := tensor.New(n)
		rng.FillNorm(w, 0, 1)
		rng.FillNorm(g, 0, 1)
		return &nn.Param{Name: name, W: w, Grad: g}
	}
	return []*nn.Param{mk("a", 7), mk("b", 130)}
}

// step applies k solver steps with fresh deterministic pseudo-gradients.
func step(s Solver, params []*nn.Param, k int, seed uint64) {
	rng := tensor.NewRNG(seed)
	for i := 0; i < k; i++ {
		for _, p := range params {
			rng.FillNorm(p.Grad, 0, 1)
		}
		s.Step(params)
	}
}

// TestStateRoundTripIsBitExact is the resume contract at the solver level:
// N steps, capture, restore into a FRESH solver over a cloned parameter
// set, then M more steps on both — trajectories must match bit for bit.
func TestStateRoundTripIsBitExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Solver
	}{
		{"sgd", func() Solver { return NewSGD(0.05, 0.9) }},
		{"adam", func() Solver { return NewAdam(1e-2) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.mk()
			pOrig := stateParams(1)
			step(orig, pOrig, 5, 42)

			var st State
			if ok := CaptureState(orig, &st, pOrig); !ok {
				t.Fatalf("%s must be Stateful", tc.name)
			}

			// Fresh solver + cloned params seeded with the snapshot weights.
			fresh := tc.mk()
			pFresh := stateParams(1)
			for i := range pFresh {
				copy(pFresh[i].W.Data, pOrig[i].W.Data)
			}
			if err := RestoreState(fresh, pFresh, &st); err != nil {
				t.Fatal(err)
			}

			step(orig, pOrig, 5, 99)
			step(fresh, pFresh, 5, 99)
			for i := range pOrig {
				for j := range pOrig[i].W.Data {
					if pOrig[i].W.Data[j] != pFresh[i].W.Data[j] {
						t.Fatalf("%s: param %s[%d] diverged after restore: %v vs %v",
							tc.name, pOrig[i].Name, j, pOrig[i].W.Data[j], pFresh[i].W.Data[j])
					}
				}
			}
		})
	}
}

// TestColdRestartDiverges documents why solver state belongs in the
// checkpoint at all: restoring weights alone (state restarted cold) does
// NOT reproduce the uninterrupted trajectory.
func TestColdRestartDiverges(t *testing.T) {
	orig := NewSGD(0.05, 0.9)
	pOrig := stateParams(1)
	step(orig, pOrig, 5, 42)

	cold := NewSGD(0.05, 0.9) // no RestoreState
	pCold := stateParams(1)
	for i := range pCold {
		copy(pCold[i].W.Data, pOrig[i].W.Data)
	}
	step(orig, pOrig, 3, 99)
	step(cold, pCold, 3, 99)
	same := true
	for i := range pOrig {
		for j := range pOrig[i].W.Data {
			if pOrig[i].W.Data[j] != pCold[i].W.Data[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("cold restart reproduced the momentum trajectory — the test lost its meaning")
	}
}

// TestCaptureBeforeFirstStepIsZeros: capturing a never-stepped solver must
// yield zero slots (the state a fresh solver holds), not garbage or a
// panic.
func TestCaptureBeforeFirstStepIsZeros(t *testing.T) {
	params := stateParams(3)
	var st State
	NewAdam(1e-3).CaptureStateInto(&st, params)
	if st.Algo != "adam" || st.Steps != 0 {
		t.Fatalf("fresh capture: algo %q steps %d", st.Algo, st.Steps)
	}
	for _, sl := range st.Slots {
		for _, d := range sl.Data {
			for _, v := range d {
				if v != 0 {
					t.Fatalf("fresh %s slot holds %v", sl.Name, v)
				}
			}
		}
	}
}

// TestCaptureRecyclesStorage: a warm capture reuses the State's slices —
// the property the async checkpointer's 0-alloc staging rests on.
func TestCaptureRecyclesStorage(t *testing.T) {
	params := stateParams(5)
	s := NewAdam(1e-3)
	step(s, params, 2, 7)
	var st State
	s.CaptureStateInto(&st, params)
	if n := testing.AllocsPerRun(20, func() { s.CaptureStateInto(&st, params) }); n != 0 {
		t.Fatalf("warm CaptureStateInto allocates %.1f times", n)
	}
	sgd := NewSGD(0.1, 0.9)
	step(sgd, params, 2, 7)
	var st2 State
	sgd.CaptureStateInto(&st2, params)
	if n := testing.AllocsPerRun(20, func() { sgd.CaptureStateInto(&st2, params) }); n != 0 {
		t.Fatalf("warm SGD CaptureStateInto allocates %.1f times", n)
	}
}

// TestRestoreValidation: mismatched algorithm, slot geometry and sizes must
// all fail loudly, naming the offender.
func TestRestoreValidation(t *testing.T) {
	params := stateParams(1)
	var sgdState State
	NewSGD(0.1, 0).CaptureStateInto(&sgdState, params)

	if err := NewAdam(1e-3).RestoreState(params, &sgdState); err == nil ||
		!strings.Contains(err.Error(), "sgd") {
		t.Fatalf("algo mismatch error = %v", err)
	}
	var adamState State
	NewAdam(1e-3).CaptureStateInto(&adamState, params)
	short := stateParams(1)[:1]
	if err := NewAdam(1e-3).RestoreState(short, &adamState); err == nil ||
		!strings.Contains(err.Error(), "parameters") {
		t.Fatalf("param-count mismatch error = %v", err)
	}
	resized := stateParams(1)
	resized[1] = &nn.Param{Name: "b", W: tensor.New(2), Grad: tensor.New(2)}
	if err := NewAdam(1e-3).RestoreState(resized, &adamState); err == nil ||
		!strings.Contains(err.Error(), "elements") {
		t.Fatalf("size mismatch error = %v", err)
	}
}
