package opt

import (
	"math"
	"testing"
	"testing/quick"

	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

func oneParam(vals ...float32) []*nn.Param {
	w := tensor.FromSlice(append([]float32(nil), vals...), len(vals))
	return []*nn.Param{{Name: "w", W: w, Grad: tensor.New(len(vals))}}
}

func TestSGDPlainStep(t *testing.T) {
	p := oneParam(1)
	p[0].Grad.Data[0] = 2
	s := NewSGD(0.1, 0)
	s.Step(p)
	if math.Abs(float64(p[0].W.Data[0])-0.8) > 1e-6 {
		t.Fatalf("w = %v, want 0.8", p[0].W.Data[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	// With constant gradient g and momentum μ, velocity after k steps is
	// −lr·g·(1+μ+μ²+…); two steps: v₂ = −lr·g(1+μ).
	p := oneParam(0)
	s := NewSGD(0.1, 0.5)
	p[0].Grad.Data[0] = 1
	s.Step(p) // w = -0.1
	s.Step(p) // v = -0.5*0.1 - 0.1 = -0.15; w = -0.25
	if math.Abs(float64(p[0].W.Data[0])+0.25) > 1e-6 {
		t.Fatalf("w = %v, want -0.25", p[0].W.Data[0])
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimise f(w) = (w-3)²/2; gradient w-3.
	p := oneParam(0)
	s := NewSGD(0.1, 0.9)
	for i := 0; i < 300; i++ {
		p[0].Grad.Data[0] = p[0].W.Data[0] - 3
		s.Step(p)
	}
	if math.Abs(float64(p[0].W.Data[0])-3) > 1e-3 {
		t.Fatalf("did not converge: w = %v", p[0].W.Data[0])
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// ADAM's bias correction makes the very first update ≈ lr·sign(g).
	p := oneParam(1)
	p[0].Grad.Data[0] = 7 // any positive value
	a := NewAdam(0.01)
	a.Step(p)
	if math.Abs(float64(p[0].W.Data[0])-(1-0.01)) > 1e-4 {
		t.Fatalf("w = %v, want ~0.99", p[0].W.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := oneParam(-4)
	a := NewAdam(0.05)
	for i := 0; i < 2000; i++ {
		p[0].Grad.Data[0] = p[0].W.Data[0] - 3
		a.Step(p)
	}
	if math.Abs(float64(p[0].W.Data[0])-3) > 1e-2 {
		t.Fatalf("did not converge: w = %v", p[0].W.Data[0])
	}
}

func TestAdamScaleInvariance(t *testing.T) {
	// ADAM normalises per-coordinate: scaling the gradient by a constant
	// must leave the first step (nearly) unchanged — the property the
	// paper cites for suppressing "high norm variability between
	// gradients of different layers".
	p1 := oneParam(0)
	p2 := oneParam(0)
	p1[0].Grad.Data[0] = 1
	p2[0].Grad.Data[0] = 1000
	a1 := NewAdam(0.01)
	a2 := NewAdam(0.01)
	a1.Step(p1)
	a2.Step(p2)
	if math.Abs(float64(p1[0].W.Data[0]-p2[0].W.Data[0])) > 1e-5 {
		t.Fatalf("steps differ: %v vs %v", p1[0].W.Data[0], p2[0].W.Data[0])
	}
}

func TestZeroGradientLeavesParams(t *testing.T) {
	for _, s := range []Solver{NewSGD(0.1, 0.0), NewAdam(0.1)} {
		p := oneParam(2.5)
		s.Step(p)
		if p[0].W.Data[0] != 2.5 {
			t.Fatalf("%s: zero grad moved params to %v", s.Name(), p[0].W.Data[0])
		}
	}
}

func TestSGDZeroGradWithMomentumStillCoasts(t *testing.T) {
	// Velocity persists across steps: after one real gradient, a zero
	// gradient step must still move (momentum coasting).
	p := oneParam(0)
	s := NewSGD(0.1, 0.9)
	p[0].Grad.Data[0] = 1
	s.Step(p)
	w1 := p[0].W.Data[0]
	p[0].Grad.Data[0] = 0
	s.Step(p)
	if p[0].W.Data[0] == w1 {
		t.Fatal("momentum should coast on zero gradient")
	}
}

func TestCloneHasFreshState(t *testing.T) {
	p := oneParam(0)
	s := NewSGD(0.1, 0.9)
	p[0].Grad.Data[0] = 1
	s.Step(p)
	c := s.Clone().(*SGD)
	if c.Rate != 0.1 || c.Momentum != 0.9 {
		t.Fatal("clone lost hyper-parameters")
	}
	if len(c.velocity) != 0 {
		t.Fatal("clone must have fresh state")
	}
	ac := NewAdam(0.3)
	ac.Step(p)
	a2 := ac.Clone().(*Adam)
	if a2.Steps() != 0 || a2.Rate != 0.3 {
		t.Fatal("Adam clone state leak")
	}
}

func TestSetLR(t *testing.T) {
	s := NewSGD(0.1, 0)
	s.SetLR(0.5)
	if s.LR() != 0.5 {
		t.Fatal("SetLR broken")
	}
}

func TestNewByName(t *testing.T) {
	if s, err := New("sgd", 0.1, 0.5); err != nil || s.Name() != "sgd" {
		t.Fatalf("sgd: %v", err)
	}
	if s, err := New("adam", 0.1, 0); err != nil || s.Name() != "adam" {
		t.Fatalf("adam: %v", err)
	}
	if _, err := New("bogus", 0.1, 0); err == nil {
		t.Fatal("unknown solver must error")
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() { _ = recover() }()
		f()
		t.Fatal("expected panic")
	}
	mustPanic(func() { NewSGD(0, 0) })
	mustPanic(func() { NewSGD(0.1, 1.0) })
	mustPanic(func() { NewAdam(-1) })
	mustPanic(func() { NewAdamFull(0.1, 1.0, 0.9, 1e-8) })
}

// Property: one SGD step with momentum 0 is exactly w − lr·g elementwise.
func TestSGDStepProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed) + 5)
		n := 1 + rng.Intn(16)
		w := tensor.New(n)
		g := tensor.New(n)
		rng.FillNorm(w, 0, 1)
		rng.FillNorm(g, 0, 1)
		want := make([]float32, n)
		for i := range want {
			want[i] = w.Data[i] - 0.05*g.Data[i]
		}
		p := []*nn.Param{{Name: "w", W: w, Grad: g}}
		NewSGD(0.05, 0).Step(p)
		for i := range want {
			if math.Abs(float64(w.Data[i]-want[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
