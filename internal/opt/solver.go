// Package opt implements the paper's two solvers — stochastic gradient
// descent with momentum (climate network) and ADAM (HEP network) — plus the
// momentum-tuning rule for asynchronous training from Mitliagkas et al.
// ("Asynchrony begets momentum", the paper's [31]), which the hybrid system
// uses to tune explicit momentum jointly with the number of compute groups.
//
// Solvers are used in two places: worker-side for fully synchronous training
// and parameter-server-side for the hybrid architecture, where each
// per-layer PS owns the solver state for its layer.
package opt

import (
	"fmt"
	"math"

	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// Solver applies accumulated gradients to parameters. Implementations keep
// per-parameter state (velocity, moments) keyed by the parameter's weight
// tensor, so one solver instance must always see the same parameter set.
type Solver interface {
	// Name identifies the algorithm ("sgd" or "adam").
	Name() string
	// LR returns the current learning rate.
	LR() float64
	// SetLR changes the learning rate (used by schedules and tuning scans).
	SetLR(lr float64)
	// Step applies params[i].Grad to params[i].W. It does not zero
	// gradients; callers own gradient lifecycle.
	Step(params []*nn.Param)
	// Clone returns a solver with the same hyper-parameters and fresh
	// (zero) state, for spawning per-group or per-PS instances.
	Clone() Solver
}

// SGD is stochastic gradient descent with classical momentum:
//
//	v ← μ·v − lr·g;  w ← w + v
type SGD struct {
	Rate     float64
	Momentum float64
	velocity map[*tensor.Tensor][]float32
}

// NewSGD constructs an SGD solver.
func NewSGD(lr, momentum float64) *SGD {
	if lr <= 0 {
		panic("opt: non-positive learning rate")
	}
	if momentum < 0 || momentum >= 1 {
		panic(fmt.Sprintf("opt: momentum %v out of [0,1)", momentum))
	}
	return &SGD{Rate: lr, Momentum: momentum, velocity: make(map[*tensor.Tensor][]float32)}
}

// Name implements Solver.
func (s *SGD) Name() string { return "sgd" }

// LR implements Solver.
func (s *SGD) LR() float64 { return s.Rate }

// SetLR implements Solver.
func (s *SGD) SetLR(lr float64) { s.Rate = lr }

// Clone implements Solver.
func (s *SGD) Clone() Solver { return NewSGD(s.Rate, s.Momentum) }

// Step implements Solver.
func (s *SGD) Step(params []*nn.Param) {
	lr := float32(s.Rate)
	mu := float32(s.Momentum)
	for _, p := range params {
		v, ok := s.velocity[p.W]
		if !ok {
			v = make([]float32, p.W.Len())
			s.velocity[p.W] = v
		}
		w := p.W.Data
		g := p.Grad.Data
		for i := range w {
			v[i] = mu*v[i] - lr*g[i]
			w[i] += v[i]
		}
	}
}

// Adam implements Kingma & Ba's ADAM (the paper's [35]), used for the HEP
// network because it "requires less parameter tuning than SGD and
// suppresses high norm variability between gradients of different layers".
type Adam struct {
	Rate         float64
	Beta1, Beta2 float64
	Eps          float64
	t            int
	m, v         map[*tensor.Tensor][]float32
}

// NewAdam constructs an ADAM solver with the standard β₁=0.9, β₂=0.999,
// ε=1e-8 defaults.
func NewAdam(lr float64) *Adam {
	return NewAdamFull(lr, 0.9, 0.999, 1e-8)
}

// NewAdamFull constructs an ADAM solver with explicit moment decay rates.
func NewAdamFull(lr, beta1, beta2, eps float64) *Adam {
	if lr <= 0 {
		panic("opt: non-positive learning rate")
	}
	if beta1 < 0 || beta1 >= 1 || beta2 < 0 || beta2 >= 1 {
		panic("opt: Adam betas out of [0,1)")
	}
	return &Adam{
		Rate: lr, Beta1: beta1, Beta2: beta2, Eps: eps,
		m: make(map[*tensor.Tensor][]float32),
		v: make(map[*tensor.Tensor][]float32),
	}
}

// Name implements Solver.
func (a *Adam) Name() string { return "adam" }

// LR implements Solver.
func (a *Adam) LR() float64 { return a.Rate }

// SetLR implements Solver.
func (a *Adam) SetLR(lr float64) { a.Rate = lr }

// Clone implements Solver.
func (a *Adam) Clone() Solver { return NewAdamFull(a.Rate, a.Beta1, a.Beta2, a.Eps) }

// Steps returns the number of updates applied so far.
func (a *Adam) Steps() int { return a.t }

// Step implements Solver.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	b1 := float32(a.Beta1)
	b2 := float32(a.Beta2)
	// Bias-corrected step size folds both corrections into the rate.
	corr := a.Rate * math.Sqrt(1-math.Pow(a.Beta2, float64(a.t))) / (1 - math.Pow(a.Beta1, float64(a.t)))
	lr := float32(corr)
	eps := float32(a.Eps)
	for _, p := range params {
		m, ok := a.m[p.W]
		if !ok {
			m = make([]float32, p.W.Len())
			a.m[p.W] = m
			a.v[p.W] = make([]float32, p.W.Len())
		}
		v := a.v[p.W]
		w := p.W.Data
		g := p.Grad.Data
		for i := range w {
			m[i] = b1*m[i] + (1-b1)*g[i]
			v[i] = b2*v[i] + (1-b2)*g[i]*g[i]
			w[i] -= lr * m[i] / (float32(math.Sqrt(float64(v[i]))) + eps)
		}
	}
}

// New constructs a solver by name ("sgd" needs momentum; "adam" ignores it).
func New(name string, lr, momentum float64) (Solver, error) {
	switch name {
	case "sgd":
		return NewSGD(lr, momentum), nil
	case "adam":
		return NewAdam(lr), nil
	default:
		return nil, fmt.Errorf("opt: unknown solver %q", name)
	}
}
