package opt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestImplicitMomentum(t *testing.T) {
	if ImplicitMomentum(1) != 0 {
		t.Fatal("sync run has no implicit momentum")
	}
	if ImplicitMomentum(2) != 0.5 {
		t.Fatalf("G=2: %v, want 0.5", ImplicitMomentum(2))
	}
	if math.Abs(ImplicitMomentum(8)-0.875) > 1e-12 {
		t.Fatalf("G=8: %v, want 0.875", ImplicitMomentum(8))
	}
	if ImplicitMomentum(0) != 0 {
		t.Fatal("degenerate G must be safe")
	}
}

func TestEffectiveMomentumComposition(t *testing.T) {
	// Explicit 0.4 with G=2 (implicit 0.5): 1 − 0.6·0.5 = 0.7.
	if got := EffectiveMomentum(0.4, 2); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("effective = %v, want 0.7", got)
	}
	// G=1 leaves explicit unchanged.
	if EffectiveMomentum(0.9, 1) != 0.9 {
		t.Fatal("sync effective must equal explicit")
	}
}

func TestTuneMomentumMatchesTarget(t *testing.T) {
	// For small G the tuned explicit momentum should reproduce the target
	// effective momentum exactly.
	for _, g := range []int{1, 2, 4} {
		mu := TuneMomentum(0.9, g)
		eff := EffectiveMomentum(mu, g)
		if mu > 0 && math.Abs(eff-0.9) > 1e-9 {
			t.Fatalf("G=%d: effective %v != 0.9 (mu=%v)", g, eff, mu)
		}
	}
}

func TestTuneMomentumZeroAtHighAsynchrony(t *testing.T) {
	// G=16 gives implicit 0.9375 > 0.9 target: explicit must be 0,
	// matching the paper's guidance to reduce momentum as groups grow.
	if mu := TuneMomentum(0.9, 16); mu != 0 {
		t.Fatalf("mu = %v, want 0", mu)
	}
}

func TestTuneMomentumMonotoneInGroups(t *testing.T) {
	prev := math.Inf(1)
	for _, g := range []int{1, 2, 4, 8, 16} {
		mu := TuneMomentum(0.9, g)
		if mu > prev+1e-12 {
			t.Fatalf("tuned momentum must not increase with G: G=%d gave %v after %v", g, mu, prev)
		}
		prev = mu
	}
}

// Property: tuned momentum always lands in [0, 0.95] and effective momentum
// never exceeds max(target, implicit).
func TestTuneMomentumBoundsProperty(t *testing.T) {
	f := func(rawTarget uint8, rawG uint8) bool {
		target := float64(rawTarget%95) / 100
		g := 1 + int(rawG%16)
		mu := TuneMomentum(target, g)
		if mu < 0 || mu > 0.95 {
			return false
		}
		eff := EffectiveMomentum(mu, g)
		limit := math.Max(target, ImplicitMomentum(g))
		return eff <= limit+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMomentumGridMatchesPaper(t *testing.T) {
	want := []float64{0.0, 0.4, 0.7}
	if len(MomentumGrid) != len(want) {
		t.Fatal("grid size")
	}
	for i := range want {
		if MomentumGrid[i] != want[i] {
			t.Fatalf("grid = %v", MomentumGrid)
		}
	}
}
