package netserve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"deep15pf/internal/serve"
)

// startFleet brings up len(delays) backends over one trained checkpoint
// (delays[i] is backend i's injected slowness) plus a router over all of
// them.
func startFleet(t *testing.T, delays []time.Duration, rcfg RouterConfig) (*Router, []*Server, []*serve.Server, []*serve.LoadInput) {
	t.Helper()
	lm, inputs := trainAndLoad(t)
	scfg := serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2}
	engines := make([]*serve.Server, len(delays))
	nss := make([]*Server, len(delays))
	addrs := make([]string, len(delays))
	for i, d := range delays {
		eng, err := serve.NewServer(lm, scfg)
		if err != nil {
			t.Fatalf("serve.NewServer %d: %v", i, err)
		}
		ns, err := NewServer("127.0.0.1:0", map[string]*serve.Server{"tiny": eng}, ServerConfig{Delay: d})
		if err != nil {
			t.Fatalf("netserve.NewServer %d: %v", i, err)
		}
		engines[i], nss[i], addrs[i] = eng, ns, ns.Addr()
		t.Cleanup(func() {
			ns.Close()
			eng.Close()
		})
	}
	r, err := NewRouter("127.0.0.1:0", addrs, rcfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(r.Close)
	return r, nss, engines, inputs
}

func counterValue(r *Router, name string) int64 {
	return r.Metrics().Counter(name).Value()
}

// TestRouterRoundTrip pins the splice path: responses through the router
// are bitwise identical to direct backend responses, and a load run over
// the router drops nothing.
func TestRouterRoundTrip(t *testing.T) {
	r, _, engines, inputs := startFleet(t, []time.Duration{0, 0}, RouterConfig{})
	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i, in := range inputs[:8] {
		want, err := engines[0].Submit(in.X)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Infer("tiny", in.X)
		if err != nil {
			t.Fatalf("routed Infer %d: %v", i, err)
		}
		for j := range want.Data {
			if got.Data[j] != want.Data[j] {
				t.Fatalf("routed response %d logit %d: %v, direct %v", i, j, got.Data[j], want.Data[j])
			}
		}
	}

	res := serve.RunClosedLoop(c.Bind("tiny"), inputs, 8, 256)
	if res.Err != nil || res.Dropped != 0 {
		t.Fatalf("routed closed loop: %d dropped, err %v", res.Dropped, res.Err)
	}
	if counterValue(r, "router.routed") < 256 {
		t.Fatalf("router counted %d routed requests", counterValue(r, "router.routed"))
	}
}

// TestRouterStickyDispatch pins the rendezvous policy: an idle fleet
// routes one model's every request to the same member (cache warmth), and
// the choice is deterministic.
func TestRouterStickyDispatch(t *testing.T) {
	r, _, engines, inputs := startFleet(t, []time.Duration{0, 0}, RouterConfig{})
	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 16; i++ {
		if _, err := c.Infer("tiny", inputs[i%len(inputs)].X); err != nil {
			t.Fatal(err)
		}
	}
	a, b := engines[0].Stats().Requests, engines[1].Stats().Requests
	if a+b != 16 || (a != 0 && b != 0) {
		t.Fatalf("idle-fleet dispatch split %d/%d, want all 16 on one member", a, b)
	}
}

// TestRouterShedsWithoutBackends pins the admission refusal: a fleet with
// no eligible members answers with a typed shed error, not a hang.
func TestRouterShedsWithoutBackends(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", nil, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	lm, inputs := trainAndLoad(t)
	_ = lm
	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var re *RemoteError
	if _, err := c.Infer("tiny", inputs[0].X); !errors.As(err, &re) || re.Code != CodeShed {
		t.Fatalf("empty fleet returned %v, want RemoteError{CodeShed}", err)
	}
	if counterValue(r, "router.shed") == 0 {
		t.Fatal("shed counter never moved")
	}
}

// TestRouterAdmissionControl pins load shedding on degraded latency: once
// a backend's sliding p99 exceeds the ceiling and no alternative exists,
// new requests are shed rather than queued into the collapse.
func TestRouterAdmissionControl(t *testing.T) {
	// One backend, 2ms injected delay, 1µs ceiling: every request after
	// the 32-observation grace window must shed.
	r, _, _, inputs := startFleet(t, []time.Duration{2 * time.Millisecond},
		RouterConfig{AdmitP99: time.Microsecond})
	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var shed int
	for i := 0; i < 64; i++ {
		_, err := c.Infer("tiny", inputs[i%len(inputs)].X)
		var re *RemoteError
		if errors.As(err, &re) && re.Code == CodeShed {
			shed++
		} else if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatal("no request was shed despite a degraded-past-ceiling backend")
	}
	if got := counterValue(r, "router.shed"); got != int64(shed) {
		t.Fatalf("shed counter %d, clients saw %d", got, shed)
	}
}

// TestRouterHedgingWins pins the hedge machinery end to end: with one
// slow member and one fast one, requests stuck on the slow backend get a
// second attempt that answers first, the loser is cancelled, and every
// response is still correct.
func TestRouterHedgingWins(t *testing.T) {
	r, nss, engines, inputs := startFleet(t, []time.Duration{0, 0},
		RouterConfig{Hedge: true, HedgeMin: 2 * time.Millisecond})
	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Probe to learn which member rendezvous prefers for this model, then
	// degrade exactly that one — the hedge race is now guaranteed to run.
	if _, err := c.Infer("tiny", inputs[0].X); err != nil {
		t.Fatal(err)
	}
	preferred := 0
	if engines[1].Stats().Requests > 0 {
		preferred = 1
	}
	nss[preferred].SetDelay(25 * time.Millisecond)

	want, err := engines[1-preferred].Submit(inputs[0].X)
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y, err := c.Infer("tiny", inputs[0].X)
			if err != nil {
				errs <- err
				return
			}
			for j := range want.Data {
				if y.Data[j] != want.Data[j] {
					errs <- errors.New("hedged response does not match the model")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The preferred member is 25ms slow and the hedge deadline is 2ms:
	// hedges must have fired, and the fast member must have won races.
	if counterValue(r, "router.hedged") == 0 {
		t.Fatal("slow preferred backend but no hedge ever fired")
	}
	if counterValue(r, "router.hedge_wins") == 0 {
		t.Fatal("hedges fired but the fast backend never won the race")
	}
}

// TestRouterZeroDropsAcrossBackendDeath pins the retry guarantee: killing
// a member mid-load (hard close, no goaway) re-dispatches its stranded
// requests; the client sees every answer.
func TestRouterZeroDropsAcrossBackendDeath(t *testing.T) {
	r, nss, _, inputs := startFleet(t, []time.Duration{time.Millisecond, time.Millisecond}, RouterConfig{})
	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var res serve.LoadResult
	done := make(chan struct{})
	go func() {
		defer close(done)
		res = serve.RunClosedLoop(c.Bind("tiny"), inputs, 8, 400)
	}()
	time.Sleep(20 * time.Millisecond) // load is flowing through both members
	nss[0].Close()                    // hard kill: no goaway, stranded in-flight requests
	<-done

	if res.Err != nil {
		t.Fatalf("load run failed across backend death: %v", res.Err)
	}
	if res.Dropped != 0 {
		t.Fatalf("%d requests dropped across backend death, want 0", res.Dropped)
	}
	if got := len(r.Backends()); got != 1 {
		t.Fatalf("router still lists %d backends after one died", got)
	}
}

// TestRouterGracefulBackendDrain pins the goaway path router-side: a
// draining member finishes its in-flight work, the router stops choosing
// it, and nothing is dropped — the single-process version of the rolling
// restart.
func TestRouterGracefulBackendDrain(t *testing.T) {
	r, nss, _, inputs := startFleet(t, []time.Duration{time.Millisecond, time.Millisecond}, RouterConfig{})
	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var res serve.LoadResult
	done := make(chan struct{})
	go func() {
		defer close(done)
		res = serve.RunClosedLoop(c.Bind("tiny"), inputs, 8, 400)
	}()
	time.Sleep(20 * time.Millisecond)
	nss[0].Drain(5 * time.Second) // graceful: goaway, in-flight completes
	<-done

	if res.Err != nil || res.Dropped != 0 {
		t.Fatalf("graceful drain dropped %d requests (err %v), want 0", res.Dropped, res.Err)
	}
	if got := len(r.Backends()); got != 1 {
		t.Fatalf("router still lists %d backends after a graceful drain", got)
	}
}

// TestRouterPerModelCounters is the satellite-3 regression: two models
// routed through one router tally routed (and shed) independently, while
// the fleet-wide counters keep the totals.
func TestRouterPerModelCounters(t *testing.T) {
	lm, inputs := trainAndLoad(t)
	scfg := serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 1}
	engA, err := serve.NewServer(lm, scfg)
	if err != nil {
		t.Fatal(err)
	}
	engB, err := serve.NewServer(lm, scfg)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NewServer("127.0.0.1:0", map[string]*serve.Server{"tiny": engA, "tiny2": engB}, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter("127.0.0.1:0", []string{ns.Addr()}, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		r.Close()
		ns.Close()
		engA.Close()
		engB.Close()
	})
	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 6; i++ {
		if _, err := c.Infer("tiny", inputs[i].X); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Infer("tiny2", inputs[i].X); err != nil {
			t.Fatal(err)
		}
	}

	if routed, _, shed := r.ModelCounts("tiny"); routed != 6 || shed != 0 {
		t.Fatalf("tiny counts routed=%d shed=%d, want 6/0", routed, shed)
	}
	if routed, _, shed := r.ModelCounts("tiny2"); routed != 3 || shed != 0 {
		t.Fatalf("tiny2 counts routed=%d shed=%d, want 3/0", routed, shed)
	}
	if got := counterValue(r, "router.routed"); got != 9 {
		t.Fatalf("fleet-wide routed = %d, want the 9 total", got)
	}
	snap := r.Metrics().Snapshot()
	if snap.Counters["router.routed.model.tiny"] != 6 || snap.Counters["router.routed.model.tiny2"] != 3 {
		t.Fatalf("registry per-model counters %d/%d, want 6/3",
			snap.Counters["router.routed.model.tiny"], snap.Counters["router.routed.model.tiny2"])
	}
	if routed, hedged, shed := r.ModelCounts("never-sent"); routed != 0 || hedged != 0 || shed != 0 {
		t.Fatal("unknown model must report zeroes")
	}
}

// TestRouterPerModelShed: with no eligible backend, each model's shed
// counter moves independently.
func TestRouterPerModelShed(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", nil, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, inputs := trainAndLoad(t)
	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var re *RemoteError
	for i := 0; i < 2; i++ {
		if _, err := c.Infer("m1", inputs[0].X); !errors.As(err, &re) || re.Code != CodeShed {
			t.Fatalf("want shed, got %v", err)
		}
	}
	if _, err := c.Infer("m2", inputs[0].X); !errors.As(err, &re) || re.Code != CodeShed {
		t.Fatalf("want shed, got %v", err)
	}
	if _, _, shed := r.ModelCounts("m1"); shed != 2 {
		t.Fatalf("m1 shed = %d, want 2", shed)
	}
	if _, _, shed := r.ModelCounts("m2"); shed != 1 {
		t.Fatalf("m2 shed = %d, want 1", shed)
	}
	if got := counterValue(r, "router.shed"); got != 3 {
		t.Fatalf("fleet-wide shed = %d, want 3", got)
	}
}
