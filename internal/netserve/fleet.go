package netserve

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"deep15pf/internal/serve"
)

// ListenBanner is the line a backend process prints to stdout once its
// listener is bound — the parent scans for it to learn the (ephemeral)
// address. Everything after the prefix is the address.
const ListenBanner = "netserve listening on "

// PrintBanner emits the handshake line for this server on w.
func (s *Server) PrintBanner(w io.Writer) {
	fmt.Fprintf(w, "%s%s\n", ListenBanner, s.Addr())
}

// DrainOnSignal blocks until SIGTERM or SIGINT, then runs the drain
// protocol (goaway to every connection, in-flight requests complete) and
// closes the serving engines — the orderly exit path a fleet member takes
// during a rolling restart.
func (s *Server) DrainOnSignal(engines map[string]*serve.Server, timeout time.Duration) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, os.Interrupt)
	<-ch
	signal.Stop(ch)
	s.Drain(timeout)
	for _, e := range engines {
		e.Close()
	}
}

// Proc is one backend OS process under fleet management.
type Proc struct {
	Cmd  *exec.Cmd
	Addr string

	waitOnce sync.Once
	waitErr  error
	done     chan struct{}
}

// StartProc launches argv[0] with the given arguments and environment
// additions, then scans its stdout for the listen banner. The returned
// Proc is serving at Addr. Stderr passes through to the parent's.
func StartProc(argv []string, extraEnv []string, timeout time.Duration) (*Proc, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &Proc{Cmd: cmd, done: make(chan struct{})}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, ListenBanner) {
				select {
				case addrCh <- strings.TrimSpace(strings.TrimPrefix(line, ListenBanner)):
				default:
				}
			}
		}
	}()
	go func() {
		p.waitErr = cmd.Wait()
		close(p.done)
	}()

	select {
	case addr := <-addrCh:
		p.Addr = addr
		return p, nil
	case <-p.done:
		return nil, fmt.Errorf("netserve: backend process exited before binding: %v", p.waitErr)
	case <-time.After(timeout):
		cmd.Process.Kill()
		return nil, fmt.Errorf("netserve: backend process never printed %q", ListenBanner)
	}
}

// Drain asks the process to exit gracefully (SIGTERM → goaway → drain)
// and waits up to timeout; a process that overstays is killed and the
// overstay reported.
func (p *Proc) Drain(timeout time.Duration) error {
	if err := p.Cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-p.done:
		return p.waitErr
	case <-time.After(timeout):
		p.Cmd.Process.Kill()
		<-p.done
		return fmt.Errorf("netserve: backend %s ignored SIGTERM for %v", p.Addr, timeout)
	}
}

// Kill force-terminates the process.
func (p *Proc) Kill() {
	p.Cmd.Process.Kill()
	<-p.done
}

// RollingRestart replaces old with a freshly started member,
// make-before-break: the replacement joins the dispatch set before the
// old member is asked to drain, so capacity never dips and — with the
// goaway protocol honouring every in-flight request — no request is
// dropped. start launches the replacement; the router learns both edges.
func RollingRestart(r *Router, old *Proc, start func() (*Proc, error), timeout time.Duration) (*Proc, error) {
	np, err := start()
	if err != nil {
		return nil, fmt.Errorf("netserve: rolling restart could not start the replacement: %w", err)
	}
	if err := r.AddBackend(np.Addr); err != nil {
		np.Kill()
		return nil, err
	}
	if err := old.Drain(timeout); err != nil {
		return np, fmt.Errorf("netserve: rolling restart: old member: %w", err)
	}
	return np, nil
}
