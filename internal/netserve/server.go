package netserve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"deep15pf/internal/obs"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// ServerConfig parameterises a backend listener.
type ServerConfig struct {
	// Delay, when positive, sleeps that long in every request's completion
	// path — the slow-backend fault injection the hedging benchmarks and
	// tests use. Zero in production.
	Delay time.Duration
	// Trace attaches frame-level phase spans to a tracer. nil records
	// nothing.
	Trace *obs.Tracer
	// WriterDepth is the per-connection response-queue depth; a worker
	// callback blocks once it fills (backpressure toward the batcher
	// rather than unbounded buffering). Default 256.
	WriterDepth int
}

// Server is the network face of one or more serve.Servers: a TCP listener
// whose every connection multiplexes many in-flight requests (pipelined
// ids, responses in completion order), decoding payloads straight into
// pooled batcher-input tensors and completing them through
// serve.SubmitAsync — no goroutine per request, no allocation per frame
// once warm.
type Server struct {
	ln     net.Listener
	cfg    ServerConfig
	delay  atomic.Int64 // nanoseconds; see SetDelay
	models map[string]*modelEntry

	mu       sync.Mutex
	conns    map[*srvConn]struct{}
	draining bool

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
}

// modelEntry caches per-model dispatch state: the serving engine, its
// input geometry, and a pool of input tensors the wire decode fills.
type modelEntry struct {
	srv     *serve.Server
	inShape []int
	inLen   int
	pool    sync.Pool
}

// srvConn is one accepted connection: a reader goroutine that parses and
// submits, a writer goroutine that encodes and coalesces responses, and
// the id table cancel frames consult.
type srvConn struct {
	s    *Server
	conn net.Conn
	wch  chan *netReq

	// pend tracks requests submitted but not yet written back, so a
	// cancel frame can mark its target. Entries are removed when the
	// response (or its cancellation) is handled by the writer.
	pmu  sync.Mutex
	pend map[uint64]*netReq

	inflight sync.WaitGroup // one per submitted request, Done in writer
}

// netReq is one in-flight request's envelope, pooled: zero allocations
// per request once the connection is warm.
type netReq struct {
	c         *srvConn
	me        *modelEntry
	id        uint64
	x         *tensor.Tensor // pooled input, returned after batch copy
	y         *tensor.Tensor // response view, set by the completion callback
	errCode   ErrCode        // non-zero: write an error frame instead of y
	errMsg    string
	goaway    bool // sentinel: writer emits a goaway frame
	cancelled atomic.Bool
}

var netReqPool = sync.Pool{New: func() any { return new(netReq) }}

// NewServer listens on addr and serves every model in models over the
// D15R protocol. Callers own the serve.Servers: Drain the network tier
// first, then Close the engines.
func NewServer(addr string, models map[string]*serve.Server, cfg ServerConfig) (*Server, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("netserve: no models to serve")
	}
	if cfg.WriterDepth <= 0 {
		cfg.WriterDepth = 256
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:     ln,
		cfg:    cfg,
		models: make(map[string]*modelEntry, len(models)),
		conns:  make(map[*srvConn]struct{}),
	}
	for name, srv := range models {
		me := &modelEntry{srv: srv, inShape: srv.Model().InShape()}
		me.inLen = 1
		for _, d := range me.inShape {
			me.inLen *= d
		}
		shape := me.inShape
		me.pool.New = func() any { return tensor.New(shape...) }
		s.models[name] = me
	}
	s.delay.Store(int64(cfg.Delay))
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetDelay adjusts the injected per-request slowness at runtime — the
// knob the hedging tests and benchmarks turn to degrade one fleet member
// mid-run.
func (s *Server) SetDelay(d time.Duration) { s.delay.Store(int64(d)) }

// Addr is the bound listen address ("host:port"), resolved even when the
// caller asked for port 0.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain or shutdown
		}
		c := &srvConn{
			s:    s,
			conn: conn,
			wch:  make(chan *netReq, s.cfg.WriterDepth),
			pend: make(map[uint64]*netReq),
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go c.run()
	}
}

// run owns the connection lifecycle: reader inline, writer in a sibling
// goroutine, teardown once the reader is done and every submitted request
// has been answered.
func (c *srvConn) run() {
	defer c.s.connWG.Done()
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		c.writer()
	}()

	c.reader()

	// All submitted requests must pass through the writer before the
	// channel closes (their callbacks hold references into this conn).
	c.inflight.Wait()
	close(c.wch)
	writerWG.Wait()
	c.conn.Close()
	c.s.mu.Lock()
	delete(c.s.conns, c)
	c.s.mu.Unlock()
}

// reader parses frames and feeds the batcher. Any framing error poisons
// the stream (length-prefixed protocols cannot resynchronise), so the
// reader exits and teardown closes the connection.
func (c *srvConn) reader() {
	var (
		hdr = make([]byte, headerLen)
		buf []byte
		tw  TensorWire
		h   Header
		err error
	)
	for {
		h, buf, err = ReadFrame(c.conn, hdr, buf)
		if err != nil {
			return // io.EOF on clean close; anything else poisons the stream
		}
		switch h.Type {
		case FrameRequest:
			c.handleRequest(h, buf, &tw)
		case FrameCancel:
			c.pmu.Lock()
			if nr, ok := c.pend[h.ID]; ok {
				nr.cancelled.Store(true)
			}
			c.pmu.Unlock()
		case FrameGoaway:
			// A client-initiated goaway: it will send nothing more; the
			// reader simply runs to EOF.
		default:
			// Responses/errors are meaningless inbound on a server; drop.
		}
	}
}

// handleRequest decodes one request frame into a pooled input tensor and
// submits it. Failures answer with an error frame on the same id rather
// than killing the connection — a bad request is the client's problem,
// a bad frame (handled in reader) is the stream's.
func (c *srvConn) handleRequest(h Header, payload []byte, tw *TensorWire) {
	model, err := DecodeRequest(h, payload, tw)
	if err != nil {
		c.reject(h.ID, CodeBadShape, err.Error())
		return
	}
	me, ok := c.s.models[string(model)] // no alloc: map lookup by []byte conversion
	if !ok {
		c.reject(h.ID, CodeUnknownModel, "model not served here")
		return
	}
	if tw.Elems != me.inLen || !sameDims(tw, me.inShape) {
		if n, ok := batchDims(tw, me.inShape); ok {
			c.handleBulk(h.ID, n, me, tw)
			return
		}
		c.reject(h.ID, CodeBadShape, "request shape does not match the model input")
		return
	}
	x := me.pool.Get().(*tensor.Tensor)
	if err := tw.DecodeInto(x.Data); err != nil {
		me.pool.Put(x)
		c.reject(h.ID, CodeBadShape, err.Error())
		return
	}
	nr := netReqPool.Get().(*netReq)
	nr.c, nr.me, nr.id, nr.x = c, me, h.ID, x
	nr.y, nr.errCode, nr.errMsg, nr.goaway = nil, 0, "", false
	nr.cancelled.Store(false)
	c.pmu.Lock()
	c.pend[h.ID] = nr
	c.pmu.Unlock()
	c.inflight.Add(1)
	if err := me.srv.SubmitAsync(x, onInfer, nr); err != nil {
		c.pmu.Lock()
		delete(c.pend, h.ID)
		c.pmu.Unlock()
		c.inflight.Done()
		me.pool.Put(x)
		code, msg := CodeInternal, err.Error()
		if errors.Is(err, serve.ErrClosed) {
			code, msg = CodeDraining, "backend draining"
		}
		nr.x = nil
		netReqPool.Put(nr)
		c.reject(h.ID, code, msg)
	}
}

// handleBulk is the throughput fast path: a [N, InShape...] request frame
// skips the dynamic batcher (no queue, no linger — the batch arrived
// pre-assembled) and runs straight through serve.InferBatch on a dedicated
// goroutine. One goroutine per in-flight *batch* — hundreds of samples —
// not per request, so the no-goroutine-per-request economics of the online
// path are preserved where they matter. The input tensor is sized by the
// request, so it is allocated fresh rather than drawn from the per-sample
// pool; at bulk batch sizes that is one allocation per several hundred
// samples.
func (c *srvConn) handleBulk(id uint64, n int, me *modelEntry, tw *TensorWire) {
	x := tensor.New(append([]int{n}, me.inShape...)...)
	if err := tw.DecodeInto(x.Data); err != nil {
		c.reject(id, CodeBadShape, err.Error())
		return
	}
	nr := netReqPool.Get().(*netReq)
	nr.c, nr.me, nr.id, nr.x = c, me, id, nil
	nr.y, nr.errCode, nr.errMsg, nr.goaway = nil, 0, "", false
	nr.cancelled.Store(false)
	c.pmu.Lock()
	c.pend[id] = nr
	c.pmu.Unlock()
	c.inflight.Add(1)
	go func() {
		y, err := me.srv.InferBatch(x)
		if err != nil {
			nr.errCode, nr.errMsg = CodeInternal, err.Error()
			if errors.Is(err, serve.ErrClosed) {
				nr.errCode, nr.errMsg = CodeDraining, "backend draining"
			}
		} else {
			nr.y = y
		}
		if d := time.Duration(c.s.delay.Load()); d > 0 {
			time.Sleep(d) // fault injection applies to bulk scoring too
		}
		c.wch <- nr
	}()
}

// batchDims reports whether tw is a batched request for a model with the
// given per-sample shape: one extra leading dimension n ∈ [1, MaxBulkBatch],
// trailing dimensions matching exactly.
func batchDims(tw *TensorWire, shape []int) (int, bool) {
	if tw.NDims != len(shape)+1 {
		return 0, false
	}
	n := tw.Dims[0]
	if n < 1 || n > serve.MaxBulkBatch {
		return 0, false
	}
	for i, d := range shape {
		if tw.Dims[i+1] != d {
			return 0, false
		}
	}
	elems := n
	for _, d := range shape {
		elems *= d
	}
	if tw.Elems != elems {
		return 0, false
	}
	return n, true
}

// onInfer is the single completion callback every request shares (a
// package function, so SubmitAsync never closes over per-request state).
// It runs on a batcher worker goroutine: recycle the input (the batch
// copy has happened), stash the response view, hand off to the writer.
func onInfer(y *tensor.Tensor, ctx any) {
	nr := ctx.(*netReq)
	nr.me.pool.Put(nr.x)
	nr.x = nil
	nr.y = y
	if d := time.Duration(nr.c.s.delay.Load()); d > 0 {
		time.Sleep(d) // fault injection: a slow backend stalls its worker
	}
	nr.c.wch <- nr
}

// reject enqueues an error frame for id.
func (c *srvConn) reject(id uint64, code ErrCode, msg string) {
	nr := netReqPool.Get().(*netReq)
	nr.c, nr.me, nr.id, nr.x, nr.y = c, nil, id, nil, nil
	nr.errCode, nr.errMsg, nr.goaway = code, msg, false
	nr.cancelled.Store(false)
	c.inflight.Add(1)
	c.wch <- nr
}

// writer drains the response queue, encoding into one reused buffer and
// coalescing everything immediately available into a single Write — the
// syscall amortisation that keeps a pipelined connection off the
// per-frame write cliff.
func (c *srvConn) writer() {
	var buf []byte
	dead := false
	flush := func() {
		if len(buf) > 0 && !dead {
			if _, err := c.conn.Write(buf); err != nil {
				dead = true // keep draining so callbacks never block
			}
		}
		buf = buf[:0]
	}
	for nr := range c.wch {
		buf = c.encode(buf, nr)
		// Coalesce: drain whatever is already queued before the syscall.
	coalesce:
		for len(buf) < 256<<10 {
			select {
			case more, ok := <-c.wch:
				if !ok {
					break coalesce
				}
				buf = c.encode(buf, more)
			default:
				break coalesce
			}
		}
		flush()
	}
	flush()
}

// encode appends nr's frame (response, error, or goaway) to buf and
// releases the envelope.
func (c *srvConn) encode(buf []byte, nr *netReq) []byte {
	switch {
	case nr.goaway:
		buf = AppendControl(buf, FrameGoaway, 0)
		return buf // sentinel is not pooled and not inflight-counted
	case nr.cancelled.Load():
		// Hedging's losing attempt: the requester withdrew; write nothing.
	case nr.errCode != 0:
		buf = AppendError(buf, nr.id, nr.errCode, nr.errMsg)
	default:
		buf = AppendResponse(buf, nr.id, nr.y.Shape, nr.y.Data)
	}
	c.pmu.Lock()
	delete(c.pend, nr.id)
	c.pmu.Unlock()
	c.inflight.Done()
	nr.c, nr.me, nr.x, nr.y, nr.errMsg = nil, nil, nil, nil, ""
	netReqPool.Put(nr)
	return buf
}

// Drain performs the graceful shutdown handshake: stop accepting
// connections, tell every live client "send nothing more" with a goaway
// frame, answer everything already in flight, and wait for clients to
// close (each does so once its last response lands). Connections that
// ignore the protocol are force-closed at timeout. The serve engines are
// untouched — callers Close them after Drain returns, so a request racing
// in before goaway still completes.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.ln.Close()
	s.acceptWG.Wait()
	for _, c := range conns {
		ga := &netReq{goaway: true}
		select {
		case c.wch <- ga:
		default:
			go func(c *srvConn, ga *netReq) {
				defer func() { recover() }() // writer channel may close under us
				c.wch <- ga
			}(c, ga)
		}
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for c := range s.conns {
			c.conn.Close() // force the reader out; teardown proceeds
		}
		s.mu.Unlock()
		<-done
	}
}

// Close tears the listener and every connection down immediately — the
// ungraceful sibling of Drain, for tests and error paths.
func (s *Server) Close() {
	s.ln.Close()
	s.acceptWG.Wait()
	s.mu.Lock()
	s.draining = true
	for c := range s.conns {
		c.conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
}

func sameDims(tw *TensorWire, shape []int) bool {
	if tw.NDims != len(shape) {
		return false
	}
	for i, d := range shape {
		if tw.Dims[i] != d {
			return false
		}
	}
	return true
}
