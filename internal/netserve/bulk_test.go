package netserve

import (
	"errors"
	"testing"
	"time"

	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// TestNetBulkBatchRoundTrip drives a pre-assembled [N, InShape...] batch
// through the wire: the server must recognise the batched shape, bypass
// the dynamic batcher via InferBatch, and answer with [N, OutShape...]
// logits bitwise identical to per-sample Submit — same checkpoint, so any
// divergence is a dispatch or copy bug.
func TestNetBulkBatchRoundTrip(t *testing.T) {
	ns, eng, inputs := startBackend(t, ServerConfig{}, serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 6
	inShape := inputs[0].X.Shape
	inLen := inputs[0].X.Len()
	x := tensor.New(append([]int{n}, inShape...)...)
	for s := 0; s < n; s++ {
		copy(x.Data[s*inLen:(s+1)*inLen], inputs[s].X.Data)
	}

	y, err := c.Infer("tiny", x)
	if err != nil {
		t.Fatalf("bulk Infer: %v", err)
	}
	if y.Shape[0] != n {
		t.Fatalf("bulk response shape %v, want leading %d", y.Shape, n)
	}
	outLen := y.Len() / n
	for s := 0; s < n; s++ {
		want, err := eng.Submit(inputs[s].X)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < outLen; j++ {
			if y.Data[s*outLen+j] != want.Data[j] {
				t.Fatalf("sample %d logit %d: bulk-wire %v, online %v", s, j, y.Data[s*outLen+j], want.Data[j])
			}
		}
	}

	// A batched frame with wrong trailing dims is still a typed refusal,
	// and the connection survives it.
	var re *RemoteError
	bad := tensor.New(append([]int{2, 1}, inShape[1:]...)...)
	if _, err := c.Infer("tiny", bad); !errors.As(err, &re) || re.Code != CodeBadShape {
		t.Fatalf("bad bulk shape returned %v, want RemoteError{CodeBadShape}", err)
	}
	if _, err := c.Infer("tiny", x); err != nil {
		t.Fatalf("connection did not survive the refusal: %v", err)
	}
}

// TestNetBulkInterleavesWithOnline runs bulk batches and single-sample
// requests concurrently on one multiplexed connection — the offline and
// online paths share the socket and the engine but not a code path, and
// neither may corrupt the other's responses.
func TestNetBulkInterleavesWithOnline(t *testing.T) {
	ns, eng, inputs := startBackend(t, ServerConfig{}, serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := make([][]float32, len(inputs))
	for i, in := range inputs {
		y, err := eng.Submit(in.X)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append([]float32(nil), y.Data...)
	}

	inLen := inputs[0].X.Len()
	done := make(chan error, 2)
	go func() { // bulk lane
		x := tensor.New(append([]int{4}, inputs[0].X.Shape...)...)
		for iter := 0; iter < 8; iter++ {
			for s := 0; s < 4; s++ {
				copy(x.Data[s*inLen:(s+1)*inLen], inputs[(iter+s)%len(inputs)].X.Data)
			}
			y, err := c.Infer("tiny", x)
			if err != nil {
				done <- err
				return
			}
			outLen := y.Len() / 4
			for s := 0; s < 4; s++ {
				for j := 0; j < outLen; j++ {
					if y.Data[s*outLen+j] != want[(iter+s)%len(inputs)][j] {
						done <- errors.New("bulk lane got corrupted logits")
						return
					}
				}
			}
		}
		done <- nil
	}()
	go func() { // online lane
		for iter := 0; iter < 32; iter++ {
			i := iter % len(inputs)
			y, err := c.Infer("tiny", inputs[i].X)
			if err != nil {
				done <- err
				return
			}
			for j := range want[i] {
				if y.Data[j] != want[i][j] {
					done <- errors.New("online lane got corrupted logits")
					return
				}
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
