package netserve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"deep15pf/internal/tensor"
)

// ErrDraining is returned by Infer once the peer has sent goaway: the
// connection answers what is in flight but accepts nothing new.
var ErrDraining = errors.New("netserve: connection draining (goaway received)")

// Client is one multiplexed connection to a backend or router: requests
// are pipelined under climbing ids from any number of goroutines,
// responses come back in completion order, and a single reader goroutine
// matches them up. The hot path reuses the write buffer, the read
// buffers, and pooled call envelopes — framing allocates nothing warm
// (InferInto also skips the response allocation by decoding into a
// caller tensor).
type Client struct {
	conn   net.Conn
	nextID atomic.Uint64

	cmu       sync.Mutex
	calls     map[uint64]*call
	readerErr error

	wmu  sync.Mutex
	wbuf []byte

	inflight atomic.Int64
	draining atomic.Bool
	onGoaway func()

	readerDone chan struct{}
}

// call is one in-flight request's rendezvous point, pooled.
type call struct {
	done chan struct{} // buffered(1); reader signals completion
	y    *tensor.Tensor
	into bool
	err  error
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

// Dial connects to a D15R endpoint.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		calls:      make(map[uint64]*call),
		readerDone: make(chan struct{}),
	}
	go c.reader()
	return c, nil
}

// OnGoaway installs a hook invoked (from the reader goroutine) when the
// peer announces it is draining. Set before issuing requests.
func (c *Client) OnGoaway(fn func()) { c.onGoaway = fn }

// Draining reports whether the peer has sent goaway.
func (c *Client) Draining() bool { return c.draining.Load() }

// Infer sends x to the named model and returns a freshly allocated
// response tensor.
func (c *Client) Infer(model string, x *tensor.Tensor) (*tensor.Tensor, error) {
	return c.do(model, x, nil, false)
}

// InferInto sends x and decodes the response into y, whose length must
// match the model output — the allocation-free client path.
func (c *Client) InferInto(model string, x, y *tensor.Tensor) error {
	_, err := c.do(model, x, y, true)
	return err
}

func (c *Client) do(model string, x, y *tensor.Tensor, into bool) (*tensor.Tensor, error) {
	if c.draining.Load() {
		return nil, ErrDraining
	}
	cl := callPool.Get().(*call)
	cl.y, cl.into, cl.err = y, into, nil
	id := c.nextID.Add(1)

	c.cmu.Lock()
	if err := c.readerErr; err != nil {
		c.cmu.Unlock()
		callPool.Put(cl)
		return nil, err
	}
	c.calls[id] = cl
	c.cmu.Unlock()
	c.inflight.Add(1)

	c.wmu.Lock()
	var err error
	c.wbuf, err = AppendRequest(c.wbuf[:0], id, model, x.Shape, x.Data)
	if err == nil {
		_, err = c.conn.Write(c.wbuf)
	}
	c.wmu.Unlock()
	if err != nil {
		c.cmu.Lock()
		_, mine := c.calls[id]
		delete(c.calls, id)
		c.cmu.Unlock()
		if !mine {
			<-cl.done // reader claimed it first and will signal; drain before pooling
		}
		c.finish()
		cl.y, cl.err = nil, nil
		callPool.Put(cl)
		return nil, err
	}

	<-cl.done
	res, rerr := cl.y, cl.err
	cl.y, cl.err = nil, nil
	callPool.Put(cl)
	c.finish()
	return res, rerr
}

// finish decrements the in-flight count and completes the drain
// handshake: after goaway, the side that sees the count hit zero closes
// the connection.
func (c *Client) finish() {
	if c.inflight.Add(-1) == 0 && c.draining.Load() {
		c.conn.Close()
	}
}

// reader is the demux loop: match ids, decode responses, surface error
// frames, run the goaway handshake, and on exit fail everything still
// outstanding with the transport error.
func (c *Client) reader() {
	defer close(c.readerDone)
	var (
		hdr = make([]byte, headerLen)
		buf []byte
		tw  TensorWire
		h   Header
		err error
	)
	for {
		h, buf, err = ReadFrame(c.conn, hdr, buf)
		if err != nil {
			break
		}
		switch h.Type {
		case FrameResponse, FrameError:
			c.cmu.Lock()
			cl := c.calls[h.ID]
			delete(c.calls, h.ID)
			c.cmu.Unlock()
			if cl == nil {
				continue // stale id (cancelled or already failed); drop
			}
			if h.Type == FrameError {
				cl.err = &RemoteError{Code: ErrCode(h.Aux), Msg: string(buf)}
			} else if derr := DecodeResponse(buf, &tw); derr != nil {
				cl.err = derr
			} else if cl.into {
				if len(cl.y.Data) != tw.Elems {
					cl.err = fmt.Errorf("netserve: response carries %d values, destination holds %d", tw.Elems, len(cl.y.Data))
				} else {
					cl.err = tw.DecodeInto(cl.y.Data)
				}
			} else {
				cl.y = tensor.New(tw.Shape()...)
				cl.err = tw.DecodeInto(cl.y.Data)
			}
			cl.done <- struct{}{}
		case FrameGoaway:
			c.draining.Store(true)
			if c.onGoaway != nil {
				c.onGoaway()
			}
			if c.inflight.Load() == 0 {
				c.conn.Close() // handshake complete: nothing in flight
			}
		default:
			// Requests/cancels are meaningless inbound on a client; drop.
		}
	}
	if err == nil {
		err = errors.New("netserve: connection closed")
	}
	c.cmu.Lock()
	if c.readerErr == nil {
		c.readerErr = fmt.Errorf("netserve: connection lost: %w", err)
	}
	stranded := make([]*call, 0, len(c.calls))
	for id, cl := range c.calls {
		delete(c.calls, id)
		stranded = append(stranded, cl)
	}
	ferr := c.readerErr
	c.cmu.Unlock()
	for _, cl := range stranded {
		cl.err = ferr
		cl.done <- struct{}{}
	}
}

// Close tears the connection down; outstanding requests fail with a
// transport error.
func (c *Client) Close() {
	c.conn.Close()
	<-c.readerDone
}

// Bound adapts one (client, model) pair to serve.Submitter so the load
// generators drive a socket exactly like an in-process server.
type Bound struct {
	c     *Client
	model string
}

// Bind names the model Submit targets.
func (c *Client) Bind(model string) *Bound { return &Bound{c: c, model: model} }

// Submit implements serve.Submitter.
func (b *Bound) Submit(x *tensor.Tensor) (*tensor.Tensor, error) {
	return b.c.Infer(b.model, x)
}
