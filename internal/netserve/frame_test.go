package netserve

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// frameBytes encodes one request frame for the corruption tables to
// mutilate.
func frameBytes(t *testing.T) []byte {
	t.Helper()
	data := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	buf, err := AppendRequest(nil, 42, "hep-small", []int{3, 2, 2}, data)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestRequestRoundTrip(t *testing.T) {
	data := []float32{0.5, -1.25, 3e7, -0, 42, 1e-20}
	buf, err := AppendRequest(nil, 7, "climate-paper", []int{1, 2, 3}, data)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, headerLen)
	h, payload, err := ReadFrame(bytes.NewReader(buf), hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != FrameRequest || h.ID != 7 {
		t.Fatalf("header round trip: %+v", h)
	}
	var tw TensorWire
	model, err := DecodeRequest(h, payload, &tw)
	if err != nil {
		t.Fatal(err)
	}
	if string(model) != "climate-paper" {
		t.Fatalf("model round trip: %q", model)
	}
	if tw.NDims != 3 || tw.Dims[0] != 1 || tw.Dims[1] != 2 || tw.Dims[2] != 3 || tw.Elems != 6 {
		t.Fatalf("shape round trip: %+v", tw)
	}
	got := make([]float32, tw.Elems)
	if err := tw.DecodeInto(got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("float %d: got %v want %v", i, got[i], data[i])
		}
	}
	// The dispatch-path peek sees the same model without a tensor decode.
	m2, err := RequestModel(h, payload)
	if err != nil || string(m2) != "climate-paper" {
		t.Fatalf("RequestModel: %q, %v", m2, err)
	}
}

func TestResponseAndControlRoundTrip(t *testing.T) {
	data := []float32{9, 8, 7, 6}
	buf := AppendResponse(nil, 11, []int{2, 2}, data)
	buf = AppendError(buf, 12, CodeUnknownModel, "no model by that name")
	buf = AppendControl(buf, FrameGoaway, 0)
	buf = AppendControl(buf, FrameCancel, 13)

	r := bytes.NewReader(buf)
	hdr := make([]byte, headerLen)

	h, payload, err := ReadFrame(r, hdr, nil)
	if err != nil || h.Type != FrameResponse || h.ID != 11 {
		t.Fatalf("response frame: %+v, %v", h, err)
	}
	var tw TensorWire
	if err := DecodeResponse(payload, &tw); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, tw.Elems)
	if err := tw.DecodeInto(got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("response float %d: got %v want %v", i, got[i], data[i])
		}
	}

	h, payload, err = ReadFrame(r, hdr, payload)
	if err != nil || h.Type != FrameError || h.ID != 12 {
		t.Fatalf("error frame: %+v, %v", h, err)
	}
	re := &RemoteError{Code: ErrCode(h.Aux), Msg: string(payload)}
	if re.Code != CodeUnknownModel || !strings.Contains(re.Error(), "no model by that name") {
		t.Fatalf("error round trip: %v", re)
	}

	h, _, err = ReadFrame(r, hdr, payload)
	if err != nil || h.Type != FrameGoaway || h.N != 0 {
		t.Fatalf("goaway frame: %+v, %v", h, err)
	}
	h, _, err = ReadFrame(r, hdr, payload)
	if err != nil || h.Type != FrameCancel || h.ID != 13 {
		t.Fatalf("cancel frame: %+v, %v", h, err)
	}
	if _, _, err = ReadFrame(r, hdr, payload); err != io.EOF {
		t.Fatalf("clean end of stream: %v", err)
	}
}

func TestRawSplicePreservesPayload(t *testing.T) {
	orig := frameBytes(t)
	h, err := ParseHeader(orig)
	if err != nil {
		t.Fatal(err)
	}
	payload := orig[headerLen:]

	// Router forward: same payload, new id.
	spliced := AppendRequestRaw(nil, 99, int(h.Aux), payload)
	h2, err := ParseHeader(spliced)
	if err != nil {
		t.Fatal(err)
	}
	if h2.ID != 99 || h2.Aux != h.Aux || h2.N != h.N {
		t.Fatalf("splice header: %+v vs %+v", h2, h)
	}
	if !bytes.Equal(spliced[headerLen:], payload) {
		t.Fatal("splice mangled the payload")
	}

	// Router return: response payload spliced back under the client id.
	resp := AppendResponse(nil, 5, []int{2}, []float32{1, 2})
	back := AppendResponseRaw(nil, 77, resp[headerLen:])
	h3, err := ParseHeader(back)
	if err != nil || h3.ID != 77 || h3.Type != FrameResponse {
		t.Fatalf("return splice header: %+v, %v", h3, err)
	}
	if !bytes.Equal(back[headerLen:], resp[headerLen:]) {
		t.Fatal("return splice mangled the payload")
	}
}

// TestDecodeRejectsCorruptFrames is the hardened-decode table, mirroring
// data.OpenShard's posture: every corruption mode is an explicit error
// naming what went wrong, never a panic, hang, or silent misparse.
func TestDecodeRejectsCorruptFrames(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{
			"bad magic",
			func(b []byte) []byte { binary.LittleEndian.PutUint32(b[0:], 0xdeadbeef); return b },
			"bad magic",
		},
		{
			"bad version",
			func(b []byte) []byte { b[4] = 9; return b },
			"unsupported frame version",
		},
		{
			"unknown frame type",
			func(b []byte) []byte { b[5] = 0x7f; return b },
			"unknown frame type",
		},
		{
			"zero frame type",
			func(b []byte) []byte { b[5] = 0; return b },
			"unknown frame type",
		},
		{
			"truncated header",
			func(b []byte) []byte { return b[:headerLen-3] },
			"short frame header",
		},
		{
			"truncated payload",
			func(b []byte) []byte { return b[:len(b)-5] },
			"truncated",
		},
		{
			"oversize payload length",
			func(b []byte) []byte { binary.LittleEndian.PutUint32(b[16:], MaxPayload+1); return b },
			"exceeds",
		},
		{
			"payload length lies long",
			func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[16:], uint32(len(b)-headerLen+64))
				return b
			},
			"truncated",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mutate(frameBytes(t))
			hdr := make([]byte, headerLen)
			_, _, err := ReadFrame(bytes.NewReader(buf), hdr, nil)
			if err == nil {
				t.Fatal("corrupt frame decoded cleanly")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the corruption (want %q)", err, tc.wantErr)
			}
		})
	}
}

// TestDecodeRejectsCorruptRequests covers the request-body layer: model
// name and tensor-region corruption that a well-framed payload can still
// carry.
func TestDecodeRejectsCorruptRequests(t *testing.T) {
	well := frameBytes(t)
	h, err := ParseHeader(well)
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), well[headerLen:]...)

	cases := []struct {
		name    string
		hdr     func(Header) Header
		mutate  func([]byte) []byte
		wantErr string
	}{
		{
			"zero model length",
			func(h Header) Header { h.Aux = 0; return h },
			nil,
			"model-name length",
		},
		{
			"model length beyond payload",
			func(h Header) Header { h.Aux = uint16(len(payload) + 1); return h },
			nil,
			"model name",
		},
		{
			"zero rank",
			nil,
			func(p []byte) []byte { p[9] = 0; return p }, // rank byte follows the 9-byte model name
			"rank 0 out of bounds",
		},
		{
			"rank beyond MaxDims",
			nil,
			func(p []byte) []byte { p[9] = MaxDims + 1; return p },
			"rank",
		},
		{
			"zero dim",
			nil,
			func(p []byte) []byte { binary.LittleEndian.PutUint32(p[10:], 0); return p },
			"impossible dim",
		},
		{
			"overflowing dim product",
			nil,
			func(p []byte) []byte {
				// Each dim individually under the bound; product overflows it.
				binary.LittleEndian.PutUint32(p[10:], 1<<23)
				binary.LittleEndian.PutUint32(p[14:], 1<<23)
				binary.LittleEndian.PutUint32(p[18:], 1<<23)
				return p
			},
			"overflows",
		},
		{
			"shape promises more than payload carries",
			nil,
			func(p []byte) []byte { binary.LittleEndian.PutUint32(p[10:], 100); return p },
			"shape promises",
		},
		{
			"payload truncated inside dims",
			nil,
			func(p []byte) []byte { return p[:11] },
			"truncated inside",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hh := h
			if tc.hdr != nil {
				hh = tc.hdr(h)
			}
			p := append([]byte(nil), payload...)
			if tc.mutate != nil {
				p = tc.mutate(p)
			}
			var tw TensorWire
			_, err := DecodeRequest(hh, p, &tw)
			if err == nil {
				t.Fatal("corrupt request decoded cleanly")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the corruption (want %q)", err, tc.wantErr)
			}
		})
	}
}

func TestAppendRequestRejectsBadInput(t *testing.T) {
	if _, err := AppendRequest(nil, 1, "", []int{1}, nil); err == nil {
		t.Fatal("empty model name accepted")
	}
	if _, err := AppendRequest(nil, 1, strings.Repeat("x", MaxModelName+1), []int{1}, nil); err == nil {
		t.Fatal("oversize model name accepted")
	}
	if _, err := AppendRequest(nil, 1, "m", nil, nil); err == nil {
		t.Fatal("rank-0 request accepted")
	}
	if _, err := AppendRequest(nil, 1, "m", make([]int, MaxDims+1), nil); err == nil {
		t.Fatal("over-rank request accepted")
	}
}

func TestDecodeIntoPolicesLength(t *testing.T) {
	buf := AppendResponse(nil, 1, []int{4}, []float32{1, 2, 3, 4})
	var tw TensorWire
	if err := DecodeResponse(buf[headerLen:], &tw); err != nil {
		t.Fatal(err)
	}
	if err := tw.DecodeInto(make([]float32, 3)); err == nil {
		t.Fatal("short destination accepted")
	}
}

// TestFramingZeroAlloc gates the hot-path contract: with warm reused
// buffers, encoding and decoding frames allocates nothing on either the
// client side (request encode, response decode) or the server side
// (request decode, response encode).
func TestFramingZeroAlloc(t *testing.T) {
	data := make([]float32, 3*8*8)
	shape := []int{3, 8, 8}
	scratch := make([]float32, len(data))
	hdr := make([]byte, headerLen)
	var tw TensorWire

	// Warm the reused buffers once.
	enc, err := AppendRequest(nil, 1, "hep-small", shape, data)
	if err != nil {
		t.Fatal(err)
	}
	resp := AppendResponse(nil, 1, []int{3, 2}, make([]float32, 6))
	payload := make([]byte, 0, len(enc))
	r := bytes.NewReader(enc)

	if n := testing.AllocsPerRun(100, func() {
		enc = enc[:0]
		enc, err = AppendRequest(enc, 2, "hep-small", shape, data)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("client request encode allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		r.Reset(enc)
		h, p, err := ReadFrame(r, hdr, payload[:0])
		if err != nil {
			t.Fatal(err)
		}
		payload = p[:0]
		if _, err := DecodeRequest(h, p, &tw); err != nil {
			t.Fatal(err)
		}
		if err := tw.DecodeInto(scratch); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("server request decode allocates %.1f/op, want 0", n)
	}
	respData := make([]float32, 6)
	if n := testing.AllocsPerRun(100, func() {
		resp = resp[:0]
		resp = AppendResponse(resp, 3, []int{3, 2}, respData)
	}); n != 0 {
		t.Fatalf("server response encode allocates %.1f/op, want 0", n)
	}
	respScratch := make([]float32, 6)
	if n := testing.AllocsPerRun(100, func() {
		r.Reset(resp)
		_, p, err := ReadFrame(r, hdr, payload[:0])
		if err != nil {
			t.Fatal(err)
		}
		payload = p[:0]
		if err := DecodeResponse(p, &tw); err != nil {
			t.Fatal(err)
		}
		if err := tw.DecodeInto(respScratch); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("client response decode allocates %.1f/op, want 0", n)
	}
}
