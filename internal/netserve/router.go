package netserve

import (
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"deep15pf/internal/obs"
)

// RouterConfig parameterises the fleet router.
type RouterConfig struct {
	// Hedge enables tail-cutting request hedging: when a request has
	// waited past an adaptive deadline (the primary backend's recent
	// HedgeQuantile latency, floored at HedgeMin), a second attempt fires
	// at a different backend; the first answer wins and the loser is
	// cancelled by id.
	Hedge bool
	// HedgeQuantile is the sliding-window quantile that sets the hedge
	// deadline. Default 0.95 — hedging the slowest ~5% doubles almost no
	// load but removes the stragglers from the tail.
	HedgeQuantile float64
	// HedgeMin floors the hedge deadline so cold windows cannot hedge
	// every request. Default 1ms.
	HedgeMin time.Duration
	// AdmitP99 is the admission-control ceiling: a backend whose sliding
	// p99 exceeds it stops receiving new requests, and when every backend
	// is over, requests are shed with a typed error instead of queueing
	// into a collapsed fleet. Zero disables shedding.
	AdmitP99 time.Duration
	// Window is the per-backend latency reservoir size. Default 1024.
	Window int
	// Trace attaches Route and NetWait spans to a tracer. nil records
	// nothing.
	Trace *obs.Tracer
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 1024
	}
	return c
}

// Router is the fleet front door: it speaks the same D15R protocol to
// clients, dispatches each request to a backend by rendezvous hash with a
// least-loaded tiebreak, and splices the response bytes back under the
// client's id — tensors are never decoded, so routing cost is independent
// of payload meaning. It sheds load when the whole fleet degrades, hedges
// tail requests when configured, and retries requests stranded by a dead
// backend (a request is lost only if every backend is gone).
type Router struct {
	ln  net.Listener
	cfg RouterConfig

	reg       *obs.Registry
	routed    *obs.Counter
	hedged    *obs.Counter
	hedgeWins *obs.Counter
	shed      *obs.Counter
	retries   *obs.Counter

	// perModel shadows the routed/hedged/shed counters per model name, so a
	// zoo router fronting several workloads can attribute traffic. Entries
	// materialise lazily on the first request naming a model; lookups on the
	// dispatch path are a map hit under pcmu (string(model) on a hit does
	// not allocate).
	pcmu     sync.Mutex
	perModel map[string]*modelCounters

	bmu      sync.Mutex
	backends []*backend

	pmu     sync.Mutex
	pend    map[uint64]*attempt
	nextBID atomic.Uint64

	mu       sync.Mutex
	conns    map[*rconn]struct{}
	closed   bool
	laneSeq  int
	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
}

// backend is one fleet member as the router sees it: a multiplexed
// connection, a live in-flight count, and a sliding latency window that
// feeds the hedge deadline and the admission check.
type backend struct {
	addr string
	conn net.Conn
	wch  chan fwd
	// gone closes when the backend dies; wch is never closed, so senders
	// select against gone instead of risking a closed-channel panic.
	gone chan struct{}

	inflight atomic.Int64
	lmu      sync.Mutex
	lat      *obs.Reservoir

	draining atomic.Bool
	dead     atomic.Bool
	lane     *obs.Lane
	wg       sync.WaitGroup
}

// fwd is one unit of backend writer work: a spliced request or a cancel.
type fwd struct {
	bid    uint64
	call   *routerCall
	cancel bool
}

// routerCall is one client request in flight through the router.
type routerCall struct {
	rc       *rconn
	clientID uint64
	modelLen int
	reqBuf   []byte // request payload copy (model+dims+floats) for forwards and retries

	// state: 0 open, 1 answered/terminal. Every terminal transition CASes
	// so exactly one response reaches the client writer.
	state atomic.Int32

	respType FrameType
	respAux  uint16
	respBuf  []byte

	timer *time.Timer
	// attempt bookkeeping under Router.pmu: ids and backends of the
	// outstanding attempts, so a winner can cancel the loser.
	bids  [2]uint64
	bkds  [2]*backend
	natt  int
	model []byte // alias into reqBuf for re-dispatch
}

// attempt is one (call, backend) forward, keyed by its backend-side id.
type attempt struct {
	call *routerCall
	b    *backend
	sent time.Time
}

// rconn is one client-facing connection on the router.
type rconn struct {
	r        *Router
	conn     net.Conn
	wch      chan *routerCall
	inflight sync.WaitGroup
	lane     *obs.Lane
}

// NewRouter listens on addr and routes to backends (dialed immediately).
func NewRouter(addr string, backends []string, cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	r := &Router{
		cfg:       cfg,
		reg:       reg,
		routed:    reg.Counter("router.routed"),
		hedged:    reg.Counter("router.hedged"),
		hedgeWins: reg.Counter("router.hedge_wins"),
		shed:      reg.Counter("router.shed"),
		retries:   reg.Counter("router.retries"),
		perModel:  make(map[string]*modelCounters),
		pend:      make(map[uint64]*attempt),
		conns:     make(map[*rconn]struct{}),
	}
	for _, b := range backends {
		if err := r.AddBackend(b); err != nil {
			r.Close()
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		r.Close()
		return nil, err
	}
	r.ln = ln
	r.acceptWG.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr is the bound client-facing address.
func (r *Router) Addr() string { return r.ln.Addr().String() }

// Metrics exposes the router's counter registry: the fleet-wide counters
// (routed, hedged, hedge_wins, shed, retries) plus the per-model shadows
// (router.routed.model.<name>, router.hedged.model.<name>,
// router.shed.model.<name>) for every model that has sent traffic.
func (r *Router) Metrics() *obs.Registry { return r.reg }

// modelCounters is one model's routing record: its share of the routed,
// hedged and shed fleet counters.
type modelCounters struct {
	routed *obs.Counter
	hedged *obs.Counter
	shed   *obs.Counter
}

// forModel returns (lazily creating) the named model's counters.
func (r *Router) forModel(model []byte) *modelCounters {
	r.pcmu.Lock()
	defer r.pcmu.Unlock()
	if mc, ok := r.perModel[string(model)]; ok {
		return mc
	}
	name := string(model)
	mc := &modelCounters{
		routed: r.reg.Counter("router.routed.model." + name),
		hedged: r.reg.Counter("router.hedged.model." + name),
		shed:   r.reg.Counter("router.shed.model." + name),
	}
	r.perModel[name] = mc
	return mc
}

// ModelCounts reports one model's routing outcomes — primaries routed,
// hedges fired, requests shed. Zeroes for a model that never sent traffic.
func (r *Router) ModelCounts(model string) (routed, hedged, shed int64) {
	r.pcmu.Lock()
	mc := r.perModel[model]
	r.pcmu.Unlock()
	if mc == nil {
		return 0, 0, 0
	}
	return mc.routed.Value(), mc.hedged.Value(), mc.shed.Value()
}

// AddBackend dials addr and adds it to the dispatch set — the second half
// of a make-before-break rolling restart.
func (r *Router) AddBackend(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("netserve: backend %s: %w", addr, err)
	}
	b := &backend{
		addr: addr,
		conn: conn,
		wch:  make(chan fwd, 1024),
		gone: make(chan struct{}),
		lat:  obs.NewWindowedReservoir(r.cfg.Window),
		lane: r.cfg.Trace.Lane("router.b:" + addr),
	}
	r.bmu.Lock()
	r.backends = append(r.backends, b)
	r.bmu.Unlock()
	b.wg.Add(2)
	go r.backendWriter(b)
	go r.backendReader(b)
	return nil
}

// DrainBackend stops dispatching new requests to addr; in-flight requests
// complete normally. Reports whether the backend was found.
func (r *Router) DrainBackend(addr string) bool {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	for _, b := range r.backends {
		if b.addr == addr && !b.dead.Load() {
			b.draining.Store(true)
			return true
		}
	}
	return false
}

// Backends lists the live (non-dead) backend addresses.
func (r *Router) Backends() []string {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	out := make([]string, 0, len(r.backends))
	for _, b := range r.backends {
		if !b.dead.Load() {
			out = append(out, b.addr)
		}
	}
	return out
}

// Close tears down the listener, client connections, and backend
// connections.
func (r *Router) Close() {
	r.mu.Lock()
	r.closed = true
	conns := make([]*rconn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	if r.ln != nil {
		r.ln.Close()
		r.acceptWG.Wait()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	r.connWG.Wait()
	r.bmu.Lock()
	bs := append([]*backend(nil), r.backends...)
	r.bmu.Unlock()
	for _, b := range bs {
		b.conn.Close()
		b.wg.Wait()
	}
}

func (r *Router) acceptLoop() {
	defer r.acceptWG.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			continue
		}
		c := &rconn{
			r:    r,
			conn: conn,
			wch:  make(chan *routerCall, 1024),
			lane: r.cfg.Trace.Lane(fmt.Sprintf("router.c%d", r.laneSeq)),
		}
		r.laneSeq++
		r.conns[c] = struct{}{}
		r.mu.Unlock()
		r.connWG.Add(1)
		go c.run()
	}
}

func (c *rconn) run() {
	defer c.r.connWG.Done()
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		c.writer()
	}()
	c.reader()
	c.inflight.Wait()
	close(c.wch)
	writerWG.Wait()
	c.conn.Close()
	c.r.mu.Lock()
	delete(c.r.conns, c)
	c.r.mu.Unlock()
}

// reader parses client frames and dispatches them. The Route phase span
// covers receive→forward-enqueue for each request: frame parse, backend
// pick, splice enqueue.
func (c *rconn) reader() {
	var (
		hdr    = make([]byte, headerLen)
		buf    []byte
		tracer = c.lane.Tracer()
	)
	for {
		h, payload, err := ReadFrame(c.conn, hdr, buf)
		buf = payload
		if err != nil {
			return
		}
		if h.Type != FrameRequest {
			continue // cancels/goaways from clients are tolerated, not routed
		}
		var t0 int64
		if tracer != nil {
			t0 = tracer.Now()
		}
		model, merr := RequestModel(h, payload)
		if merr != nil {
			continue // header lies about its own payload: drop the frame
		}
		call := &routerCall{
			rc:       c,
			clientID: h.ID,
			modelLen: len(model),
			reqBuf:   append([]byte(nil), payload...),
		}
		call.model = call.reqBuf[:len(model)]
		c.inflight.Add(1)
		c.r.dispatch(call, nil, false)
		if tracer != nil {
			c.lane.Record(obs.PhaseRoute, t0, tracer.Now())
		}
	}
}

// writer sends terminal frames (spliced responses, error frames) back to
// the client, coalescing whatever is queued into single writes.
func (c *rconn) writer() {
	var buf []byte
	dead := false
	flush := func() {
		if len(buf) > 0 && !dead {
			if _, err := c.conn.Write(buf); err != nil {
				dead = true
			}
		}
		buf = buf[:0]
	}
	encode := func(call *routerCall) {
		switch call.respType {
		case FrameError:
			buf = grow(buf, headerLen+len(call.respBuf))
			putHeader(buf[len(buf)-headerLen-len(call.respBuf):], FrameError, call.respAux, call.clientID, len(call.respBuf))
			copy(buf[len(buf)-len(call.respBuf):], call.respBuf)
		default:
			buf = AppendResponseRaw(buf, call.clientID, call.respBuf)
		}
		c.inflight.Done()
	}
	for call := range c.wch {
		encode(call)
	coalesce:
		for len(buf) < 256<<10 {
			select {
			case more, ok := <-c.wch:
				if !ok {
					break coalesce
				}
				encode(more)
			default:
				break coalesce
			}
		}
		flush()
	}
	flush()
}

// finish CASes the call terminal and enqueues its response; exactly one
// caller wins.
func (call *routerCall) finish(t FrameType, aux uint16, payload []byte) bool {
	if !call.state.CompareAndSwap(0, 1) {
		return false
	}
	call.respType, call.respAux = t, aux
	call.respBuf = append(call.respBuf[:0], payload...)
	call.rc.wch <- call
	return true
}

// dispatch forwards call to the best eligible backend, hedging and
// shedding per config. exclude removes one backend from consideration (a
// hedge's primary, a retry's corpse); hedge marks this attempt as the
// hedge so counters and cancellation bookkeeping see it.
func (r *Router) dispatch(call *routerCall, exclude *backend, hedge bool) {
	b := r.pick(call.model, exclude)
	if b == nil {
		if hedge {
			return // no second backend to hedge at; the primary stands
		}
		r.shed.Inc()
		r.forModel(call.model).shed.Inc()
		call.finish(FrameError, uint16(CodeShed), []byte("no eligible backend"))
		return
	}
	bid := r.nextBID.Add(1)
	at := &attempt{call: call, b: b, sent: time.Now()}
	r.pmu.Lock()
	if b.dead.Load() {
		// The backend died between pick and insert. pmu fences this
		// against reapBackend's stranded scan: either the entry lands
		// before the scan (reap re-dispatches it) or this check sees dead
		// and re-picks — never a silently stranded entry.
		r.pmu.Unlock()
		r.dispatch(call, b, hedge)
		return
	}
	if call.natt < len(call.bids) {
		call.bids[call.natt], call.bkds[call.natt] = bid, b
		call.natt++
	}
	r.pend[bid] = at
	b.inflight.Add(1)
	r.pmu.Unlock()
	if !hedge {
		r.routed.Inc()
		r.forModel(call.model).routed.Inc()
		if r.cfg.Hedge {
			t := time.AfterFunc(r.hedgeDelay(b), func() {
				if call.state.Load() != 0 {
					return
				}
				r.hedged.Inc()
				r.forModel(call.model).hedged.Inc()
				r.dispatch(call, b, true)
			})
			r.pmu.Lock()
			call.timer = t
			r.pmu.Unlock()
		}
	}
	select {
	case b.wch <- fwd{bid: bid, call: call}:
	case <-b.gone:
		// Died mid-send; reapBackend owns (or owned) the pend entry and
		// re-dispatches any open call.
	}
}

// pick chooses a backend for model: rendezvous (highest-random-weight)
// hash over the eligible set, with a least-loaded tiebreak between the
// top two candidates — sticky by model for cache warmth, load-aware when
// the preferred member is busy.
func (r *Router) pick(model []byte, exclude *backend) *backend {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	var best, second *backend
	var bs, ss uint64
	for _, b := range r.backends {
		if b == exclude || b.dead.Load() || b.draining.Load() || !r.admit(b) {
			continue
		}
		s := rendezvousScore(model, b.addr)
		switch {
		case best == nil || s > bs:
			second, ss = best, bs
			best, bs = b, s
		case second == nil || s > ss:
			second, ss = b, s
		}
	}
	if best == nil {
		return nil
	}
	if second != nil && second.inflight.Load() < best.inflight.Load() {
		return second
	}
	return best
}

// admit is the admission-control predicate: a backend with a degraded
// sliding p99 stops taking new work.
func (r *Router) admit(b *backend) bool {
	if r.cfg.AdmitP99 <= 0 {
		return true
	}
	b.lmu.Lock()
	defer b.lmu.Unlock()
	if b.lat.Count() < 32 {
		return true // too few observations to condemn it
	}
	return b.lat.Quantile(0.99) <= r.cfg.AdmitP99.Seconds()
}

// hedgeDelay is the adaptive hedge deadline: the backend's recent
// HedgeQuantile latency, floored at HedgeMin.
func (r *Router) hedgeDelay(b *backend) time.Duration {
	b.lmu.Lock()
	n := b.lat.Count()
	var q float64
	if n >= 16 {
		q = b.lat.Quantile(r.cfg.HedgeQuantile)
	}
	b.lmu.Unlock()
	d := time.Duration(q * float64(time.Second))
	if d < r.cfg.HedgeMin {
		d = r.cfg.HedgeMin
	}
	return d
}

// rendezvousScore hashes (model, backend) — each backend scores every
// model independently, so removing one member remaps only its own keys.
func rendezvousScore(model []byte, addr string) uint64 {
	h := fnv.New64a()
	h.Write(model)
	var sep = [1]byte{0}
	h.Write(sep[:])
	var ab [64]byte
	h.Write(append(ab[:0], addr...))
	return h.Sum64()
}

// backendWriter splices queued requests (and cancels) onto the backend
// connection.
func (r *Router) backendWriter(b *backend) {
	defer b.wg.Done()
	var buf []byte
	dead := false
	flush := func() {
		if len(buf) > 0 && !dead {
			if _, err := b.conn.Write(buf); err != nil {
				dead = true
			}
		}
		buf = buf[:0]
	}
	encode := func(f fwd) {
		if f.cancel {
			buf = AppendControl(buf, FrameCancel, f.bid)
			return
		}
		buf = AppendRequestRaw(buf, f.bid, f.call.modelLen, f.call.reqBuf)
	}
	for {
		select {
		case f := <-b.wch:
			encode(f)
		coalesce:
			for len(buf) < 256<<10 {
				select {
				case more := <-b.wch:
					encode(more)
				default:
					break coalesce
				}
			}
			flush()
		case <-b.gone:
			return
		}
	}
}

// backendReader demultiplexes backend responses back to their calls: the
// NetWait span (forward→first-response) is what hedging exists to cut.
func (r *Router) backendReader(b *backend) {
	defer b.wg.Done()
	var (
		hdr    = make([]byte, headerLen)
		buf    []byte
		tracer = b.lane.Tracer()
	)
	for {
		h, payload, err := ReadFrame(b.conn, hdr, buf)
		buf = payload
		if err != nil {
			break
		}
		switch h.Type {
		case FrameResponse, FrameError:
			r.pmu.Lock()
			at, ok := r.pend[h.ID]
			if ok {
				delete(r.pend, h.ID)
			}
			r.pmu.Unlock()
			if !ok {
				continue // late loser of a hedge race, or a cancelled id
			}
			b.inflight.Add(-1)
			lat := time.Since(at.sent)
			if h.Type == FrameResponse {
				b.lmu.Lock()
				b.lat.Add(lat.Seconds())
				b.lmu.Unlock()
			}
			if tracer != nil {
				b.lane.Record(obs.PhaseNetWait, tracer.At(at.sent), tracer.Now())
			}
			call := at.call
			if call.finish(h.Type, h.Aux, payload) {
				r.afterWin(call, h.ID)
			}
		case FrameGoaway:
			// The backend is draining: stop dispatching, let in-flight
			// requests land, close when the last one does.
			b.draining.Store(true)
			if b.inflight.Load() == 0 {
				b.conn.Close()
			}
		}
		// A draining backend's connection closes once nothing is in
		// flight (the response that just landed may have been the last).
		if b.draining.Load() && b.inflight.Load() == 0 {
			b.conn.Close()
		}
	}
	r.reapBackend(b)
}

// afterWin settles the race once a call has its answer: stop the hedge
// timer, count a hedge win if the second attempt answered first, and
// cancel the losing attempt — remove its pend entry (late responses fall
// on the floor) and tell its backend to skip the response write. All
// attempt bookkeeping reads happen under pmu, where dispatch wrote them.
func (r *Router) afterWin(call *routerCall, winnerBID uint64) {
	r.pmu.Lock()
	timer := call.timer
	call.timer = nil
	win := call.natt > 1 && winnerBID == call.bids[1]
	var loserBID uint64
	var loser *backend
	for i := 0; i < call.natt; i++ {
		if call.bids[i] != winnerBID {
			if _, live := r.pend[call.bids[i]]; live {
				loserBID, loser = call.bids[i], call.bkds[i]
				delete(r.pend, call.bids[i])
			}
		}
	}
	r.pmu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	if win {
		r.hedgeWins.Inc()
	}
	if loser == nil {
		return
	}
	loser.inflight.Add(-1)
	if !loser.dead.Load() {
		select {
		case loser.wch <- fwd{bid: loserBID, cancel: true}:
		default: // writer backlogged; the late response is dropped anyway
		}
	}
}

// reapBackend handles a dead backend connection: remove it from the
// dispatch set and re-dispatch every open attempt it stranded — the
// zero-drop guarantee across a member's death or restart.
func (r *Router) reapBackend(b *backend) {
	if !b.dead.CompareAndSwap(false, true) {
		return
	}
	b.conn.Close()
	close(b.gone)

	r.bmu.Lock()
	for i, x := range r.backends {
		if x == b {
			r.backends = append(r.backends[:i], r.backends[i+1:]...)
			break
		}
	}
	r.bmu.Unlock()

	r.pmu.Lock()
	var stranded []*attempt
	for bid, at := range r.pend {
		if at.b == b {
			delete(r.pend, bid)
			stranded = append(stranded, at)
		}
	}
	r.pmu.Unlock()
	for _, at := range stranded {
		b.inflight.Add(-1)
		if at.call.state.Load() != 0 {
			continue // already answered by the other attempt
		}
		r.retries.Inc()
		r.dispatch(at.call, b, false)
	}
}
