package netserve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// TestNetRoundTrip pins wire fidelity: logits served over the socket are
// bitwise identical to the in-process path, the error frames for unknown
// models and bad shapes are typed and survivable (the connection keeps
// working), and InferInto lands in the caller's tensor.
func TestNetRoundTrip(t *testing.T) {
	ns, eng, inputs := startBackend(t, ServerConfig{}, serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i, in := range inputs[:8] {
		want, err := eng.Submit(in.X)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Infer("tiny", in.X)
		if err != nil {
			t.Fatalf("Infer %d: %v", i, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("response %d has %d values, want %d", i, got.Len(), want.Len())
		}
		for j := range want.Data {
			if got.Data[j] != want.Data[j] {
				t.Fatalf("response %d logit %d: wire %v, local %v", i, j, got.Data[j], want.Data[j])
			}
		}
		y := tensor.New(2)
		if err := c.InferInto("tiny", in.X, y); err != nil {
			t.Fatal(err)
		}
		for j := range want.Data {
			if y.Data[j] != want.Data[j] {
				t.Fatalf("InferInto %d logit %d: wire %v, local %v", i, j, y.Data[j], want.Data[j])
			}
		}
	}

	// Unknown model: typed refusal, connection survives.
	var re *RemoteError
	if _, err := c.Infer("nope", inputs[0].X); !errors.As(err, &re) || re.Code != CodeUnknownModel {
		t.Fatalf("unknown model returned %v, want RemoteError{CodeUnknownModel}", err)
	}
	// Wrong shape for the model: typed refusal, connection survives.
	if _, err := c.Infer("tiny", tensor.New(3, 4, 4)); !errors.As(err, &re) || re.Code != CodeBadShape {
		t.Fatalf("bad shape returned %v, want RemoteError{CodeBadShape}", err)
	}
	if _, err := c.Infer("tiny", inputs[0].X); err != nil {
		t.Fatalf("connection did not survive the error frames: %v", err)
	}
}

// TestNetPipelined drives many goroutines through one multiplexed
// connection: every response must land on the request that asked for it
// (ids, not arrival order, do the matching).
func TestNetPipelined(t *testing.T) {
	ns, eng, inputs := startBackend(t, ServerConfig{}, serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})

	want := make([][]float32, len(inputs))
	for i, in := range inputs {
		y, err := eng.Submit(in.X)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append([]float32(nil), y.Data...)
	}

	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(inputs))
	for r := 0; r < rounds; r++ {
		for i, in := range inputs {
			wg.Add(1)
			go func(i int, in *serve.LoadInput) {
				defer wg.Done()
				y, err := c.Infer("tiny", in.X)
				if err != nil {
					errs <- err
					return
				}
				for j := range want[i] {
					if y.Data[j] != want[i][j] {
						errs <- errors.New("response matched to the wrong request id")
						return
					}
				}
			}(i, in)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestNetGoawayDrain runs the drain handshake under live load: Drain must
// answer every in-flight request (zero drops), new submits after goaway
// get the typed ErrDraining, and Drain returns once clients close.
func TestNetGoawayDrain(t *testing.T) {
	ns, _, inputs := startBackend(t, ServerConfig{}, serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const clients = 8
	var (
		completed, refused int
		mu                 sync.Mutex
		started            sync.WaitGroup
		wg                 sync.WaitGroup
	)
	started.Add(clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			first := true
			for {
				y, err := c.Infer("tiny", inputs[i%len(inputs)].X)
				if first {
					started.Done()
					first = false
				}
				switch {
				case err == nil:
					if y.Len() != 2 {
						t.Errorf("drained response has %d values", y.Len())
					}
					mu.Lock()
					completed++
					mu.Unlock()
				case errors.Is(err, ErrDraining):
					mu.Lock()
					refused++
					mu.Unlock()
					return
				default:
					// After goaway the transport closes once in-flight
					// requests land; a submit racing the close sees a
					// connection error — that request was refused, not
					// dropped (it never got an id on the server).
					mu.Lock()
					refused++
					mu.Unlock()
					return
				}
			}
		}(i)
	}
	started.Wait()
	ns.Drain(5 * time.Second)
	wg.Wait()

	if completed < clients {
		t.Fatalf("only %d requests completed before drain", completed)
	}
	if !c.Draining() {
		t.Fatal("client never saw the goaway frame")
	}
	if _, err := c.Infer("tiny", inputs[0].X); err == nil {
		t.Fatal("post-drain Infer succeeded on a drained connection")
	}
}

// TestNetClosedLoopOverSocket runs the standard load harness against the
// wire path: the socket submitter must behave exactly like an in-process
// server — zero drops, populated quantiles.
func TestNetClosedLoopOverSocket(t *testing.T) {
	ns, _, inputs := startBackend(t, ServerConfig{}, serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res := serve.RunClosedLoop(c.Bind("tiny"), inputs, 8, 256)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Requests != 256 || res.Dropped != 0 {
		t.Fatalf("closed loop over socket: %d/%d completed, %d dropped", res.Requests, 256, res.Dropped)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("degenerate socket quantiles: p50 %v p99 %v", res.P50, res.P99)
	}
}
