// Package netserve puts the serving engine on the network: a compact
// binary wire protocol over TCP, a backend listener that multiplexes many
// in-flight requests per connection into internal/serve's dynamic batcher,
// and a router tier (consistent-hash dispatch, admission control, hedged
// requests) that turns N backend processes into one fleet.
//
// The protocol is deliberately in the D15W/shard family: little-endian,
// magic-prefixed, length-prefixed frames, hardened decode (bad magic, bad
// version, truncated or overflowing lengths are explicit errors at the
// frame boundary — never a panic or a silent short read deep in a
// connection goroutine). One frame is:
//
//	magic   uint32  'D15R' on the wire
//	version uint8   1
//	type    uint8   request | response | error | goaway | cancel
//	aux     uint16  model-name length (requests) / error code (errors)
//	id      uint64  request id, chosen by the sender, echoed in replies
//	n       uint32  payload bytes that follow (bounds-checked)
//	payload n bytes
//
// Request payload:  model name (aux bytes), ndims uint8, ndims×uint32
// dims, then the row-major float32 tensor. Response payload: ndims, dims,
// floats. Error payload: UTF-8 message. Goaway and cancel carry none.
//
// Request ids make the connection a pipe, not a lockstep RPC: a client
// writes requests as fast as it likes, responses come back in completion
// order (the batcher reorders), and the id matches them up. Goaway is the
// drain handshake (see Server.Drain); cancel kills a hedged request's
// losing attempt by id.
//
// Hot-path contract: encode appends into caller-reused buffers and decode
// reads into caller-owned scratch and tensors, so a warm connection's
// framing allocates nothing in either direction — gated by AllocsPerRun
// like every other hot path in this repository.
package netserve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const (
	// frameMagic reads as "D15R" on the wire (little-endian encode of
	// these bytes: 0x44 0x31 0x35 0x52).
	frameMagic   = 0x52353144
	frameVersion = 1
	// headerLen is the fixed frame prelude size.
	headerLen = 20
	// MaxPayload bounds one frame's payload: large enough for any tensor
	// this repository serves, small enough that a corrupt length cannot
	// drive allocation (64 MiB).
	MaxPayload = 64 << 20
	// MaxDims bounds a tensor's rank on the wire.
	MaxDims = 8
	// MaxModelName bounds the model-name field of a request.
	MaxModelName = 255
)

// FrameType discriminates the five frame kinds.
type FrameType uint8

const (
	FrameRequest FrameType = 1 + iota
	FrameResponse
	FrameError
	// FrameGoaway tells the peer the sender is draining: send no new
	// requests on this connection; in-flight ones will complete; close
	// the connection when the last response lands.
	FrameGoaway
	// FrameCancel withdraws interest in the identified request (hedging's
	// losing attempt): the receiver drops the pending entry so no
	// response frame is written for it.
	FrameCancel
	frameTypeEnd
)

// ErrCode classifies error frames (the aux field).
type ErrCode uint16

const (
	CodeUnknownModel ErrCode = 1 + iota
	CodeBadShape
	// CodeShed is the router's admission-control refusal: every eligible
	// backend's sliding p99 has degraded past the configured ceiling.
	CodeShed
	// CodeDraining refuses a request that arrived on a draining
	// connection after goaway.
	CodeDraining
	CodeInternal
)

func (c ErrCode) String() string {
	switch c {
	case CodeUnknownModel:
		return "unknown model"
	case CodeBadShape:
		return "bad shape"
	case CodeShed:
		return "shedding load"
	case CodeDraining:
		return "draining"
	case CodeInternal:
		return "internal"
	}
	return fmt.Sprintf("code(%d)", uint16(c))
}

// RemoteError is a typed error frame surfaced to callers.
type RemoteError struct {
	Code ErrCode
	Msg  string
}

func (e *RemoteError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("netserve: remote error: %s", e.Code)
	}
	return fmt.Sprintf("netserve: remote error: %s: %s", e.Code, e.Msg)
}

// Header is a decoded frame prelude.
type Header struct {
	Type FrameType
	Aux  uint16
	ID   uint64
	N    int // payload bytes
}

// putHeader writes the 20-byte prelude into dst.
func putHeader(dst []byte, t FrameType, aux uint16, id uint64, n int) {
	binary.LittleEndian.PutUint32(dst[0:], frameMagic)
	dst[4] = frameVersion
	dst[5] = byte(t)
	binary.LittleEndian.PutUint16(dst[6:], aux)
	binary.LittleEndian.PutUint64(dst[8:], id)
	binary.LittleEndian.PutUint32(dst[16:], uint32(n))
}

// ParseHeader validates a 20-byte prelude. Every corruption mode is an
// explicit, distinguishable error: the connection handler closes the conn
// rather than resynchronise a stream it can no longer trust.
func ParseHeader(hdr []byte) (Header, error) {
	if len(hdr) < headerLen {
		return Header{}, fmt.Errorf("netserve: short frame header: %d bytes", len(hdr))
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != frameMagic {
		return Header{}, fmt.Errorf("netserve: not a D15R frame (bad magic %#08x)", m)
	}
	if v := hdr[4]; v != frameVersion {
		return Header{}, fmt.Errorf("netserve: unsupported frame version %d", v)
	}
	t := FrameType(hdr[5])
	if t == 0 || t >= frameTypeEnd {
		return Header{}, fmt.Errorf("netserve: unknown frame type %d", t)
	}
	n := binary.LittleEndian.Uint32(hdr[16:])
	if n > MaxPayload {
		return Header{}, fmt.Errorf("netserve: frame payload %d exceeds the %d-byte bound", n, MaxPayload)
	}
	return Header{
		Type: t,
		Aux:  binary.LittleEndian.Uint16(hdr[6:]),
		ID:   binary.LittleEndian.Uint64(hdr[8:]),
		N:    int(n),
	}, nil
}

// ReadFrame reads one complete frame from r. hdr is caller-owned
// headerLen-byte scratch; buf is the caller's reusable payload buffer,
// grown only when a frame outsizes it — the returned slice aliases it (or
// its replacement), valid until the next call. A clean EOF before any
// header byte returns io.EOF; truncation inside a frame is an explicit
// error.
func ReadFrame(r io.Reader, hdr, buf []byte) (Header, []byte, error) {
	if _, err := io.ReadFull(r, hdr[:headerLen]); err != nil {
		if err == io.EOF {
			return Header{}, buf, io.EOF
		}
		return Header{}, buf, fmt.Errorf("netserve: short frame header: %w", err)
	}
	h, err := ParseHeader(hdr[:headerLen])
	if err != nil {
		return Header{}, buf, err
	}
	if h.N > cap(buf) {
		buf = make([]byte, h.N)
	}
	buf = buf[:h.N]
	if _, err := io.ReadFull(r, buf); err != nil {
		return Header{}, buf, fmt.Errorf("netserve: frame %d truncated at %d payload bytes: %w", h.ID, h.N, err)
	}
	return h, buf, nil
}

// ---- encoders (append-style; reuse the destination buffer to stay 0-alloc) ----

// AppendRequest appends one request frame: model name, shape, and the
// float payload encoded little-endian.
func AppendRequest(dst []byte, id uint64, model string, shape []int, data []float32) ([]byte, error) {
	if len(model) == 0 || len(model) > MaxModelName {
		return dst, fmt.Errorf("netserve: model name %q out of bounds (1..%d bytes)", model, MaxModelName)
	}
	if len(shape) == 0 || len(shape) > MaxDims {
		return dst, fmt.Errorf("netserve: tensor rank %d out of bounds (1..%d)", len(shape), MaxDims)
	}
	n := len(model) + 1 + 4*len(shape) + 4*len(data)
	if n > MaxPayload {
		return dst, fmt.Errorf("netserve: request payload %d exceeds the %d-byte bound", n, MaxPayload)
	}
	dst = grow(dst, headerLen+n)
	putHeader(dst[len(dst)-headerLen-n:], FrameRequest, uint16(len(model)), id, n)
	p := dst[len(dst)-n:]
	copy(p, model)
	p = p[len(model):]
	p[0] = byte(len(shape))
	p = p[1:]
	for _, d := range shape {
		binary.LittleEndian.PutUint32(p, uint32(d))
		p = p[4:]
	}
	encodeF32(p, data)
	return dst, nil
}

// AppendRequestRaw appends a request frame whose payload is already
// encoded (model+dims+floats) — the router's splice path: it forwards the
// bytes it received, rewriting only the request id, without ever
// materialising a tensor.
func AppendRequestRaw(dst []byte, id uint64, modelLen int, payload []byte) []byte {
	dst = grow(dst, headerLen+len(payload))
	putHeader(dst[len(dst)-headerLen-len(payload):], FrameRequest, uint16(modelLen), id, len(payload))
	copy(dst[len(dst)-len(payload):], payload)
	return dst
}

// AppendResponse appends one response frame (shape + floats).
func AppendResponse(dst []byte, id uint64, shape []int, data []float32) []byte {
	n := 1 + 4*len(shape) + 4*len(data)
	dst = grow(dst, headerLen+n)
	putHeader(dst[len(dst)-headerLen-n:], FrameResponse, 0, id, n)
	p := dst[len(dst)-n:]
	p[0] = byte(len(shape))
	p = p[1:]
	for _, d := range shape {
		binary.LittleEndian.PutUint32(p, uint32(d))
		p = p[4:]
	}
	encodeF32(p, data)
	return dst
}

// AppendResponseRaw appends a response frame from an already-encoded
// payload (the router's return splice).
func AppendResponseRaw(dst []byte, id uint64, payload []byte) []byte {
	dst = grow(dst, headerLen+len(payload))
	putHeader(dst[len(dst)-headerLen-len(payload):], FrameResponse, 0, id, len(payload))
	copy(dst[len(dst)-len(payload):], payload)
	return dst
}

// AppendError appends an error frame.
func AppendError(dst []byte, id uint64, code ErrCode, msg string) []byte {
	if len(msg) > 1024 {
		msg = msg[:1024]
	}
	dst = grow(dst, headerLen+len(msg))
	putHeader(dst[len(dst)-headerLen-len(msg):], FrameError, uint16(code), id, len(msg))
	copy(dst[len(dst)-len(msg):], msg)
	return dst
}

// AppendControl appends a payload-free frame (goaway, cancel).
func AppendControl(dst []byte, t FrameType, id uint64) []byte {
	dst = grow(dst, headerLen)
	putHeader(dst[len(dst)-headerLen:], t, 0, id, 0)
	return dst
}

// grow extends dst by n bytes, reallocating only when capacity runs out.
func grow(dst []byte, n int) []byte {
	if len(dst)+n <= cap(dst) {
		return dst[:len(dst)+n]
	}
	out := make([]byte, len(dst)+n, 2*(len(dst)+n))
	copy(out, dst)
	return out
}

// ---- decoders ----

// TensorWire is a decoded-but-not-copied tensor region of a frame: dims
// plus a view of the raw float bytes. DecodeInto materialises the floats
// into a caller-owned destination (the batcher-owned input tensor, on the
// server's hot path).
type TensorWire struct {
	Dims  [MaxDims]int
	NDims int
	Elems int
	Raw   []byte // 4·Elems bytes, aliases the frame buffer
}

// Shape returns the dims as a slice view (valid until the TensorWire is
// reused).
func (tw *TensorWire) Shape() []int { return tw.Dims[:tw.NDims] }

// DecodeInto decodes the float payload into dst, which must hold exactly
// Elems values.
func (tw *TensorWire) DecodeInto(dst []float32) error {
	if len(dst) != tw.Elems {
		return fmt.Errorf("netserve: destination holds %d values, frame carries %d", len(dst), tw.Elems)
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(tw.Raw[4*i:]))
	}
	return nil
}

// decodeDims parses the rank byte and dims, overflow-checking the element
// product against what the remaining payload can actually carry — a
// corrupt header cannot promise ~2^64 elements (same posture as
// data.OpenShard's impossible-count check).
func decodeDims(p []byte, tw *TensorWire) ([]byte, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("netserve: frame truncated before tensor rank")
	}
	nd := int(p[0])
	if nd == 0 || nd > MaxDims {
		return nil, fmt.Errorf("netserve: tensor rank %d out of bounds (1..%d)", nd, MaxDims)
	}
	p = p[1:]
	if len(p) < 4*nd {
		return nil, fmt.Errorf("netserve: frame truncated inside %d dims", nd)
	}
	elems := 1
	for i := 0; i < nd; i++ {
		d := int(binary.LittleEndian.Uint32(p[4*i:]))
		if d <= 0 || d > MaxPayload/4 {
			return nil, fmt.Errorf("netserve: impossible dim %d", d)
		}
		if elems > MaxPayload/4/d {
			return nil, fmt.Errorf("netserve: impossible shape (element product overflows the payload bound)")
		}
		elems *= d
		tw.Dims[i] = d
	}
	tw.NDims, tw.Elems = nd, elems
	p = p[4*nd:]
	if len(p) != 4*elems {
		return nil, fmt.Errorf("netserve: payload carries %d bytes, shape promises %d (truncated or corrupt)", len(p), 4*elems)
	}
	tw.Raw = p
	return p, nil
}

// DecodeRequest splits a request frame's payload into the model name and
// the tensor region. The returned model aliases payload.
func DecodeRequest(h Header, payload []byte, tw *TensorWire) (model []byte, err error) {
	ml := int(h.Aux)
	if ml == 0 || ml > MaxModelName {
		return nil, fmt.Errorf("netserve: model-name length %d out of bounds (1..%d)", ml, MaxModelName)
	}
	if len(payload) < ml {
		return nil, fmt.Errorf("netserve: frame truncated inside the %d-byte model name", ml)
	}
	model = payload[:ml]
	if _, err := decodeDims(payload[ml:], tw); err != nil {
		return nil, err
	}
	return model, nil
}

// DecodeResponse parses a response frame's payload into the tensor region.
func DecodeResponse(payload []byte, tw *TensorWire) error {
	_, err := decodeDims(payload, tw)
	return err
}

// RequestModel peeks a request payload's model name without touching the
// tensor region — the router's dispatch path reads only this.
func RequestModel(h Header, payload []byte) ([]byte, error) {
	ml := int(h.Aux)
	if ml == 0 || ml > MaxModelName || len(payload) < ml {
		return nil, fmt.Errorf("netserve: model-name length %d out of bounds for a %d-byte payload", ml, len(payload))
	}
	return payload[:ml], nil
}

// encodeF32 writes data little-endian into p (len(p) == 4·len(data)).
func encodeF32(p []byte, data []float32) {
	for i, v := range data {
		binary.LittleEndian.PutUint32(p[4*i:], math.Float32bits(v))
	}
}
