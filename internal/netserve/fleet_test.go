package netserve

import (
	"os"
	"testing"
	"time"

	"deep15pf/internal/serve"
)

// TestNetserveBackendProcess is not a test in the usual sense: it is the
// body of a backend *process*. The fleet tests re-exec this test binary
// with -test.run pinned to this function and the checkpoint path in the
// environment; without the environment it skips immediately. The process
// loads the checkpoint, serves it on an ephemeral port, prints the listen
// banner for the parent, and exits cleanly on SIGTERM via the drain
// protocol.
func TestNetserveBackendProcess(t *testing.T) {
	ckpt := os.Getenv("NETSERVE_BACKEND_CKPT")
	if ckpt == "" {
		t.Skip("fleet-test helper process; runs only when re-exec'd with NETSERVE_BACKEND_CKPT")
	}
	r := serve.NewRegistry()
	serve.RegisterHEP(r, "tiny", tinyHEPCfg())
	lm, err := r.Load("tiny", ckpt, serve.Float32)
	if err != nil {
		t.Fatalf("backend process: Load: %v", err)
	}
	eng, err := serve.NewServer(lm, serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, Workers: 2})
	if err != nil {
		t.Fatalf("backend process: NewServer: %v", err)
	}
	engines := map[string]*serve.Server{"tiny": eng}
	ns, err := NewServer("127.0.0.1:0", engines, ServerConfig{})
	if err != nil {
		t.Fatalf("backend process: listen: %v", err)
	}
	ns.PrintBanner(os.Stdout)
	ns.DrainOnSignal(engines, 10*time.Second)
}

// spawnBackend re-execs this test binary as a backend process serving the
// checkpoint, returning once it is listening.
func spawnBackend(t *testing.T, ckpt string) *Proc {
	t.Helper()
	p, err := StartProc(
		[]string{os.Args[0], "-test.run=^TestNetserveBackendProcess$"},
		[]string{"NETSERVE_BACKEND_CKPT=" + ckpt},
		30*time.Second,
	)
	if err != nil {
		t.Fatalf("spawnBackend: %v", err)
	}
	return p
}

// TestFleetRollingRestartZeroDrops is the acceptance gate for the drain
// protocol across real process boundaries: a router over two backend
// *processes*, live load, and a make-before-break rolling restart of a
// member — under closed-loop and then open-loop (Poisson) load — with
// zero dropped requests, every time.
func TestFleetRollingRestartZeroDrops(t *testing.T) {
	ckpt, inputs := trainAndSave(t)
	p1 := spawnBackend(t, ckpt)
	p2 := spawnBackend(t, ckpt)
	procs := []*Proc{p1, p2}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Kill()
		}
	})

	r, err := NewRouter("127.0.0.1:0", []string{p1.Addr, p2.Addr}, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Phase 1: closed-loop load while member 1 is rolling-restarted.
	var res serve.LoadResult
	done := make(chan struct{})
	go func() {
		defer close(done)
		res = serve.RunClosedLoop(c.Bind("tiny"), inputs, 8, 600)
	}()
	time.Sleep(20 * time.Millisecond) // load is flowing through the fleet
	np, err := RollingRestart(r, p1, func() (*Proc, error) {
		return StartProc(
			[]string{os.Args[0], "-test.run=^TestNetserveBackendProcess$"},
			[]string{"NETSERVE_BACKEND_CKPT=" + ckpt},
			30*time.Second,
		)
	}, 15*time.Second)
	if err != nil {
		t.Fatalf("rolling restart (closed loop): %v", err)
	}
	procs[0] = np
	<-done
	if res.Err != nil {
		t.Fatalf("closed-loop load failed across the restart: %v", res.Err)
	}
	if res.Dropped != 0 {
		t.Fatalf("closed loop dropped %d requests across the rolling restart, want 0", res.Dropped)
	}
	if got := len(r.Backends()); got != 2 {
		t.Fatalf("fleet has %d members after the restart, want 2", got)
	}

	// Phase 2: open-loop (Poisson) load while member 2 is restarted —
	// arrivals do not pause for the drain, so this is the harder gate.
	var ores serve.LoadResult
	odone := make(chan struct{})
	go func() {
		defer close(odone)
		ores = serve.RunOpenLoop(c.Bind("tiny"), inputs, 2000, 400, 13)
	}()
	time.Sleep(20 * time.Millisecond)
	np2, err := RollingRestart(r, p2, func() (*Proc, error) {
		return StartProc(
			[]string{os.Args[0], "-test.run=^TestNetserveBackendProcess$"},
			[]string{"NETSERVE_BACKEND_CKPT=" + ckpt},
			30*time.Second,
		)
	}, 15*time.Second)
	if err != nil {
		t.Fatalf("rolling restart (open loop): %v", err)
	}
	procs[1] = np2
	<-odone
	if ores.Err != nil {
		t.Fatalf("open-loop load failed across the restart: %v", ores.Err)
	}
	if ores.Dropped != 0 || ores.Requests != 400 {
		t.Fatalf("open loop completed %d/400 with %d dropped across the rolling restart, want 400/0",
			ores.Requests, ores.Dropped)
	}

	// Both replacement members drain cleanly on request.
	for _, p := range procs {
		if err := p.Drain(15 * time.Second); err != nil {
			t.Fatalf("replacement member did not drain cleanly: %v", err)
		}
	}
	procs = nil
}
