package netserve

import (
	"fmt"
	"path/filepath"
	"testing"

	"deep15pf/internal/hep"
	"deep15pf/internal/nn"
	"deep15pf/internal/serve"
	"deep15pf/internal/tensor"
)

// tinyHEPCfg is the micro HEP classifier the network tests serve: small
// enough that training a real checkpoint costs milliseconds, real enough
// that responses are genuine logits.
func tinyHEPCfg() hep.ModelConfig {
	return hep.ModelConfig{Name: "net-test", ImageSize: 8, Filters: 4, ConvUnits: 2, Classes: 2}
}

// trainAndSave trains the tiny model a few SGD steps and checkpoints it,
// returning the checkpoint path (what a backend process loads) and the
// request inputs drawn from the training set.
func trainAndSave(t *testing.T) (string, []*serve.LoadInput) {
	t.Helper()
	rng := tensor.NewRNG(11)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(8), 64, 0.5, rng)
	net := hep.BuildNet(tinyHEPCfg(), rng)
	idx := make([]int, 16)
	for step := 0; step < 4; step++ {
		for i := range idx {
			idx[i] = (step*len(idx) + i) % len(ds.Labels)
		}
		x, labels := ds.Batch(idx)
		net.ZeroGrad()
		logits := net.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		for _, p := range net.Params() {
			for j := range p.W.Data {
				p.W.Data[j] -= 0.01 * p.Grad.Data[j] / float32(len(idx))
			}
		}
	}
	path := filepath.Join(t.TempDir(), "net-test.d15w")
	if err := nn.SaveFile(path, net.Params()); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	shape := ds.Images.Shape
	per := shape[1] * shape[2] * shape[3]
	inputs := make([]*serve.LoadInput, shape[0])
	for i := range inputs {
		inputs[i] = &serve.LoadInput{
			X: tensor.FromSlice(ds.Images.Data[i*per:(i+1)*per], shape[1], shape[2], shape[3]),
			Check: func(y *tensor.Tensor) error {
				if y.Len() != 2 {
					return fmt.Errorf("want 2 logits, got shape %v", y.Shape)
				}
				return nil
			},
		}
	}
	return path, inputs
}

// trainAndLoad trains the tiny model, checkpoints it, and loads it
// through the registry — the same fixture recipe the serve tests use, so
// the wire tier is exercised over real trained weights.
func trainAndLoad(t *testing.T) (*serve.LoadedModel, []*serve.LoadInput) {
	t.Helper()
	path, inputs := trainAndSave(t)
	r := serve.NewRegistry()
	serve.RegisterHEP(r, "tiny", tinyHEPCfg())
	lm, err := r.Load("tiny", path, serve.Float32)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return lm, inputs
}

// startBackend brings up a serve engine plus its network face on a
// loopback port. Cleanup drains the listener, then closes the engine —
// the ordering the production drain protocol requires.
func startBackend(t *testing.T, ncfg ServerConfig, scfg serve.Config) (*Server, *serve.Server, []*serve.LoadInput) {
	t.Helper()
	lm, inputs := trainAndLoad(t)
	eng, err := serve.NewServer(lm, scfg)
	if err != nil {
		t.Fatalf("serve.NewServer: %v", err)
	}
	ns, err := NewServer("127.0.0.1:0", map[string]*serve.Server{"tiny": eng}, ncfg)
	if err != nil {
		eng.Close()
		t.Fatalf("netserve.NewServer: %v", err)
	}
	t.Cleanup(func() {
		ns.Close()
		eng.Close()
	})
	return ns, eng, inputs
}
