package data

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deep15pf/internal/tensor"
)

// writeTestShard produces a valid shard and returns its raw bytes.
func writeTestShard(t *testing.T, path string, count, featLen, labLen int) []byte {
	t.Helper()
	feats := make([]float32, count*featLen)
	for i := range feats {
		feats[i] = float32(i)
	}
	labs := make([]int32, count*labLen)
	for i := range labs {
		labs[i] = int32(i)
	}
	if err := WriteShard(path, count, featLen, labLen, feats, labs); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestOpenShardRejectsCorruptFiles is the table-driven error-path gate for
// the hardened reader: bad magic, impossible counts, and payloads shorter
// (or longer) than the header promises must all fail OpenShard with an
// explicit error — never a panic or a short read later.
func TestOpenShardRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	valid := writeTestShard(t, filepath.Join(dir, "valid.shard"), 4, 3, 1)

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		wantSub string
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }, "short shard header"},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[0:], 0xDEADBEEF)
			return c
		}, "bad magic"},
		{"bad version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[4:], 99)
			return c
		}, "unsupported shard version"},
		{"count larger than payload", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[8:], 1000)
			return c
		}, "header promises"},
		{"impossible count overflows", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[8:], 0xFFFFFFFF)
			binary.LittleEndian.PutUint32(c[12:], 0xFFFFFFFF)
			binary.LittleEndian.PutUint32(c[16:], 0xFFFFFFFF)
			return c
		}, "impossible shard header"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, "truncated or corrupt"},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 1, 2, 3) }, "header promises"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-")+".shard")
			if err := os.WriteFile(path, tc.corrupt(valid), 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := OpenShard(path)
			if err == nil {
				r.Close()
				t.Fatalf("OpenShard accepted a corrupt file (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// The untouched file still opens — the fixture itself is good.
	r, err := OpenShard(filepath.Join(dir, "valid.shard"))
	if err != nil {
		t.Fatalf("valid shard rejected: %v", err)
	}
	r.Close()
}

// TestShardSetGlobalIndexing: a set of unevenly sized shards must behave as
// one dataset — global index i reads the same bytes the single-file layout
// would hold at i.
func TestShardSetGlobalIndexing(t *testing.T) {
	dir := t.TempDir()
	const featLen, labLen = 3, 1
	rng := tensor.NewRNG(11)
	var allFeats []float32
	var allLabs []int32
	var paths []string
	for k, count := range []int{2, 5, 1} {
		feats := make([]float32, count*featLen)
		labs := make([]int32, count*labLen)
		for i := range feats {
			feats[i] = float32(rng.Norm())
		}
		for i := range labs {
			labs[i] = int32(rng.Intn(10))
		}
		path := filepath.Join(dir, []string{"a", "b", "c"}[k]+".shard")
		if err := WriteShard(path, count, featLen, labLen, feats, labs); err != nil {
			t.Fatal(err)
		}
		allFeats = append(allFeats, feats...)
		allLabs = append(allLabs, labs...)
		paths = append(paths, path)
	}
	set, err := OpenShardSet(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Count != 8 || set.FeatLen != featLen || set.LabLen != labLen {
		t.Fatalf("set header %d/%d/%d", set.Count, set.FeatLen, set.LabLen)
	}
	f := make([]float32, featLen)
	l := make([]int32, labLen)
	for i := 0; i < set.Count; i++ {
		if err := set.ReadSample(i, f, l); err != nil {
			t.Fatal(err)
		}
		for j := range f {
			if f[j] != allFeats[i*featLen+j] {
				t.Fatalf("sample %d feature %d: %v != %v", i, j, f[j], allFeats[i*featLen+j])
			}
		}
		if l[0] != allLabs[i] {
			t.Fatalf("sample %d label: %v != %v", i, l[0], allLabs[i])
		}
	}
	// Batched, out of order, across shard boundaries.
	idx := []int{7, 0, 3, 2}
	bf := make([]float32, len(idx)*featLen)
	bl := make([]int32, len(idx)*labLen)
	if err := set.ReadBatchInto(idx, bf, bl, nil); err != nil {
		t.Fatal(err)
	}
	for bi, i := range idx {
		if bf[bi*featLen] != allFeats[i*featLen] || bl[bi] != allLabs[i] {
			t.Fatalf("batched sample %d mismatched", i)
		}
	}
	if err := set.ReadSample(8, f, l); err == nil {
		t.Fatal("out-of-range global index must error")
	}
	if err := set.ReadBatchInto(idx, bf[:1], nil, nil); err == nil {
		t.Fatal("short feature buffer must error")
	}
	if err := set.ReadBatchInto(idx, bf, bl[:1], nil); err == nil {
		t.Fatal("short label buffer must error")
	}
	if err := set.ReadBatchInto(idx, bf, bl, make([]byte, 1)); err == nil {
		t.Fatal("undersized scratch must error")
	}
}

// TestShardSetRejectsMixedLayouts: shards disagreeing on per-sample layout
// cannot form a set.
func TestShardSetRejectsMixedLayouts(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.shard")
	b := filepath.Join(dir, "b.shard")
	if err := WriteShard(a, 1, 3, 0, make([]float32, 3), nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteShard(b, 1, 4, 0, make([]float32, 4), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardSet(a, b); err == nil {
		t.Fatal("mixed layouts must be rejected")
	}
	if _, err := OpenShardSet(); err == nil {
		t.Fatal("empty set must be rejected")
	}
}

// TestWriteShardsRoundTrip: WriteShards must split deterministically, skip
// empty tails when shards outnumber samples, and read back exactly through
// a ShardSet.
func TestWriteShardsRoundTrip(t *testing.T) {
	const count, featLen = 7, 2
	feats := make([]float32, count*featLen)
	for i := range feats {
		feats[i] = float32(i) * 0.5
	}
	paths, err := WriteShards(t.TempDir(), 3, count, featLen, 0, feats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("wrote %d shards, want 3", len(paths))
	}
	set, err := OpenShardSet(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	got := make([]float32, count*featLen)
	idx := make([]int, count)
	for i := range idx {
		idx[i] = i
	}
	if err := set.ReadBatchInto(idx, got, nil, nil); err != nil {
		t.Fatal(err)
	}
	for i := range feats {
		if got[i] != feats[i] {
			t.Fatalf("round trip diverged at %d", i)
		}
	}

	// More shards than samples: empty ranges are skipped, not written.
	paths, err = WriteShards(t.TempDir(), 5, 2, featLen, 0, feats[:2*featLen], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("5-way split of 2 samples wrote %d shards, want 2 non-empty", len(paths))
	}
}

// TestPseudoLabeledShardsRoundTrip exercises the pseudo-label factory's
// write path: confidence-thresholded (features, argmax-label) pairs go out
// through WriteShards and must come back through OpenShard bit-exact — the
// labels feed the next training run, so any rounding or reordering here
// poisons the flywheel. Also pins the empty-after-threshold contract: a
// threshold that keeps zero samples writes no shard files at all, never a
// 0-sample file (OpenShard would reject one anyway).
func TestPseudoLabeledShardsRoundTrip(t *testing.T) {
	const count, featLen = 11, 3
	feats := make([]float32, count*featLen)
	rng := tensor.NewRNG(2)
	for i := range feats {
		feats[i] = float32(rng.Norm())
	}
	labels := make([]int32, count)
	for i := range labels {
		labels[i] = int32(i % 4) // argmax classes, incl. repeated values
	}

	dir := t.TempDir()
	paths, err := WriteShards(dir, 4, count, featLen, 1, feats, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("wrote %d shards, want 4", len(paths))
	}

	// Read each shard file individually through OpenShard (the trainer's
	// entry point) and compare against the factory's buffers bit for bit.
	next := 0
	for _, p := range paths {
		r, err := OpenShard(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.LabLen != 1 || r.FeatLen != featLen {
			t.Fatalf("%s layout %d/%d, want %d/1", p, r.FeatLen, r.LabLen, featLen)
		}
		f := make([]float32, featLen)
		l := make([]int32, 1)
		for i := 0; i < r.Count; i++ {
			if err := r.ReadSampleInto(i, f, l, make([]byte, r.ScratchLen())); err != nil {
				t.Fatal(err)
			}
			if l[0] != labels[next] {
				t.Fatalf("sample %d: label %d, want %d bit-exact", next, l[0], labels[next])
			}
			for j := 0; j < featLen; j++ {
				if f[j] != feats[next*featLen+j] {
					t.Fatalf("sample %d feat %d diverged", next, j)
				}
			}
			next++
		}
		r.Close()
	}
	if next != count {
		t.Fatalf("shards carried %d samples, want %d", next, count)
	}

	// Zero survivors: no files written, no 0-sample shard on disk.
	empty := t.TempDir()
	paths, err = WriteShards(empty, 4, 0, featLen, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Fatalf("empty-after-threshold write produced %d files", len(paths))
	}
	ents, err := os.ReadDir(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("dir holds %d stray files after empty write", len(ents))
	}
}

func TestShardSetShardRange(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	counts := []int{3, 1, 5}
	for i, n := range counts {
		p := filepath.Join(dir, strings.Repeat("s", i+1)+".shard")
		writeTestShard(t, p, n, 2, 0)
		paths = append(paths, p)
	}
	set, err := OpenShardSet(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Shards() != 3 {
		t.Fatalf("Shards() = %d", set.Shards())
	}
	want := [][2]int{{0, 3}, {3, 4}, {4, 9}}
	total := 0
	for k := 0; k < set.Shards(); k++ {
		lo, hi := set.ShardRange(k)
		if lo != want[k][0] || hi != want[k][1] {
			t.Fatalf("ShardRange(%d) = [%d,%d), want %v", k, lo, hi, want[k])
		}
		total += hi - lo
	}
	if total != set.Count {
		t.Fatalf("ranges cover %d, Count %d", total, set.Count)
	}
	for _, bad := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ShardRange(%d) did not panic", bad)
				}
			}()
			set.ShardRange(bad)
		}()
	}
}
