package data

import "math"

func floatBits(v float32) uint32 { return math.Float32bits(v) }
func bitsFloat(b uint32) float32 { return math.Float32frombits(b) }
