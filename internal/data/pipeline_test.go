package data

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"deep15pf/internal/tensor"
)

// pipeSlot is the test slot: a staged copy of the drawn indices.
type pipeSlot struct {
	idx []int
	n   int
}

func testPipeline(depth int, batches [][]int, stage func(*pipeSlot, []int) error) *Pipeline[*pipeSlot] {
	slots := make([]*pipeSlot, depth)
	for i := range slots {
		slots[i] = &pipeSlot{idx: make([]int, 64)}
	}
	if stage == nil {
		stage = func(dst *pipeSlot, idx []int) error {
			dst.n = copy(dst.idx, idx)
			return nil
		}
	}
	return NewPipeline(slots, SliceSource(batches), stage)
}

// TestPipelineDeliversBatchesInOrder: the single prefetch goroutine must
// hand batches to the consumer in exactly source order — the determinism
// contract that makes prefetched training bitwise-identical to blocking.
func TestPipelineDeliversBatchesInOrder(t *testing.T) {
	var batches [][]int
	for i := 0; i < 40; i++ {
		batches = append(batches, []int{i * 3, i*3 + 1, i*3 + 2})
	}
	p := testPipeline(2, batches, nil)
	p.Start()
	defer p.Stop()
	for i := 0; i < len(batches); i++ {
		slot, ok := p.Next()
		if !ok {
			t.Fatalf("pipeline ended early at batch %d: %v", i, p.Err())
		}
		if slot.n != 3 || slot.idx[0] != i*3 {
			t.Fatalf("batch %d staged as %v (n=%d)", i, slot.idx[:slot.n], slot.n)
		}
	}
	if _, ok := p.Next(); ok {
		t.Fatal("pipeline must end after the source is exhausted")
	}
	if err := p.Err(); err != nil {
		t.Fatalf("clean exhaustion reported error %v", err)
	}
	st := p.Stats()
	if st.Batches != 40 || st.Samples != 120 {
		t.Fatalf("stats staged %d batches / %d samples, want 40/120", st.Batches, st.Samples)
	}
}

// TestPipelineSkipsEmptyBatches: SliceSource must drop zero-sample shards
// (the Split parts > n case) instead of staging zero batches.
func TestPipelineSkipsEmptyBatches(t *testing.T) {
	batches := [][]int{{1, 2}, {}, nil, {3}, {}}
	p := testPipeline(2, batches, nil)
	p.Start()
	defer p.Stop()
	var got []int
	for {
		slot, ok := p.Next()
		if !ok {
			break
		}
		if slot.n == 0 {
			t.Fatal("pipeline staged a zero batch")
		}
		got = append(got, slot.idx[:slot.n]...)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("staged samples = %v, want [1 2 3]", got)
	}
}

// TestPipelineBackpressure: with every slot staged and one held by the
// consumer, the prefetcher must block rather than run ahead unbounded.
func TestPipelineBackpressure(t *testing.T) {
	var staged atomic.Int64
	var batches [][]int
	for i := 0; i < 100; i++ {
		batches = append(batches, []int{i})
	}
	p := testPipeline(3, batches, func(dst *pipeSlot, idx []int) error {
		staged.Add(1)
		dst.n = copy(dst.idx, idx)
		return nil
	})
	p.Start()
	defer p.Stop()
	if _, ok := p.Next(); !ok { // hold one slot
		t.Fatal("pipeline ended early")
	}
	// Give the prefetcher every chance to overrun: it may stage the ring
	// (3 slots) plus be blocked holding nothing more.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if staged.Load() > 4 {
			t.Fatalf("prefetcher staged %d batches while consumer held one (ring of 3)", staged.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPipelineStopWhileBlocked: Stop must unblock a prefetcher waiting for
// a free slot and return promptly (no goroutine leak, no deadlock).
func TestPipelineStopWhileBlocked(t *testing.T) {
	var batches [][]int
	for i := 0; i < 100; i++ {
		batches = append(batches, []int{i})
	}
	p := testPipeline(2, batches, nil)
	p.Start()
	if _, ok := p.Next(); !ok {
		t.Fatal("pipeline ended early")
	}
	done := make(chan struct{})
	go func() { p.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop deadlocked against a backpressured prefetcher")
	}
	p.Stop() // idempotent
}

// TestPipelineStageError: a staging failure (e.g. a shard truncated on disk
// mid-run) must surface through Err, not panic or hang.
func TestPipelineStageError(t *testing.T) {
	wantErr := errors.New("disk ate the shard")
	calls := 0
	p := testPipeline(2, [][]int{{1}, {2}, {3}}, func(dst *pipeSlot, idx []int) error {
		calls++
		if calls == 2 {
			return wantErr
		}
		dst.n = copy(dst.idx, idx)
		return nil
	})
	p.Start()
	defer p.Stop()
	if _, ok := p.Next(); !ok {
		t.Fatal("first batch should stage cleanly")
	}
	if _, ok := p.Next(); ok {
		t.Fatal("pipeline must end at the staging error")
	}
	if err := p.Err(); !errors.Is(err, wantErr) {
		t.Fatalf("Err() = %v, want %v", err, wantErr)
	}
}

// TestPipelineNextZeroAllocs: the steady-state consumer side — recycle the
// held slot, wait for the staged one — must not touch the allocator, the
// same AllocsPerRun discipline as nn.Plan. The producer runs concurrently,
// so a pass here also certifies staging itself is allocation-free.
func TestPipelineNextZeroAllocs(t *testing.T) {
	var batches [][]int
	for i := 0; i < 4096; i++ {
		batches = append(batches, []int{i, i + 1})
	}
	p := testPipeline(2, batches, nil)
	p.Start()
	defer p.Stop()
	p.Next() // warm both sides
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := p.Next(); !ok {
			t.Fatal("pipeline ended mid-measurement")
		}
	}); allocs != 0 {
		t.Fatalf("warmed Pipeline.Next allocates %v objects/op, want 0", allocs)
	}
}

// TestPipelineStatsAccountExposure: a slow stage against an eager consumer
// shows up as WaitSeconds (exposed); a slow consumer hides staging time and
// drives Overlap toward 1.
func TestPipelineStatsAccountExposure(t *testing.T) {
	mk := func(stageDelay, consumeDelay time.Duration, n int) IngestStats {
		var batches [][]int
		for i := 0; i < n; i++ {
			batches = append(batches, []int{i})
		}
		p := testPipeline(2, batches, func(dst *pipeSlot, idx []int) error {
			time.Sleep(stageDelay)
			dst.n = copy(dst.idx, idx)
			return nil
		})
		p.Start()
		defer p.Stop()
		for {
			if _, ok := p.Next(); !ok {
				break
			}
			time.Sleep(consumeDelay)
		}
		return p.Stats()
	}
	exposed := mk(2*time.Millisecond, 0, 10)
	if exposed.WaitSeconds <= 0 || exposed.StageSeconds <= 0 {
		t.Fatalf("I/O-bound pipeline recorded stage=%.4fs wait=%.4fs", exposed.StageSeconds, exposed.WaitSeconds)
	}
	hidden := mk(0, 2*time.Millisecond, 10)
	if hidden.Overlap() < exposed.Overlap() {
		t.Fatalf("compute-bound overlap %.2f should exceed I/O-bound overlap %.2f",
			hidden.Overlap(), exposed.Overlap())
	}
}

// TestIngestStatsHelpers covers Add and the Overlap clamps.
func TestIngestStatsHelpers(t *testing.T) {
	a := IngestStats{Batches: 2, Samples: 8, StageSeconds: 1.0, WaitSeconds: 0.25}
	b := IngestStats{Batches: 1, Samples: 4, StageSeconds: 0.5, WaitSeconds: 0.5}
	sum := a.Add(b)
	if sum.Batches != 3 || sum.Samples != 12 || sum.StageSeconds != 1.5 || sum.WaitSeconds != 0.75 {
		t.Fatalf("Add = %+v", sum)
	}
	if got := sum.Overlap(); got != 0.5 {
		t.Fatalf("Overlap = %v, want 0.5", got)
	}
	if (IngestStats{}).Overlap() != 0 {
		t.Fatal("empty stats must report zero overlap")
	}
	if (IngestStats{StageSeconds: 1, WaitSeconds: 3}).Overlap() != 0 {
		t.Fatal("overshooting wait must clamp to 0")
	}
}

// TestPipelineMatchesBlockingOrderUnderBatcher: driving a Pipeline from an
// epoch-shuffled Batcher consumes the RNG in exactly the order the blocking
// path would — the property the golden-fingerprint trainers rely on.
func TestPipelineMatchesBlockingOrderUnderBatcher(t *testing.T) {
	const n, batch, draws = 37, 8, 20
	blocking := NewBatcher(n, batch, tensor.NewRNG(99))
	var want [][]int
	for i := 0; i < draws; i++ {
		want = append(want, append([]int(nil), blocking.Next()...))
	}

	prefetched := NewBatcher(n, batch, tensor.NewRNG(99))
	i := 0
	source := func() []int {
		if i >= draws {
			return nil
		}
		i++
		return prefetched.Next()
	}
	slots := make([]*pipeSlot, 2)
	for s := range slots {
		slots[s] = &pipeSlot{idx: make([]int, batch)}
	}
	p := NewPipeline(slots, source, func(dst *pipeSlot, idx []int) error {
		dst.n = copy(dst.idx, idx)
		return nil
	})
	p.Start()
	defer p.Stop()
	for _, w := range want {
		slot, ok := p.Next()
		if !ok {
			t.Fatal("pipeline ended early")
		}
		if slot.n != len(w) {
			t.Fatalf("batch size %d, want %d", slot.n, len(w))
		}
		for j := range w {
			if slot.idx[j] != w[j] {
				t.Fatalf("prefetched order diverged from blocking order at %v vs %v", slot.idx[:slot.n], w)
			}
		}
	}
}
