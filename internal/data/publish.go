package data

import "deep15pf/internal/obs"

// Publish merges this account into a metrics registry under the
// "ingest." prefix. Counts add (publishing two replica accounts is the
// same as publishing their Add), the overlap gauge overwrites with the
// latest value. A nil registry is a no-op.
func (s IngestStats) Publish(r *obs.Registry) {
	r.Counter("ingest.batches").Add(s.Batches)
	r.Counter("ingest.samples").Add(s.Samples)
	r.Gauge("ingest.stage_seconds").Add(s.StageSeconds)
	r.Gauge("ingest.wait_seconds").Add(s.WaitSeconds)
	r.Gauge("ingest.overlap").Set(s.Overlap())
}
