package data

import (
	"fmt"
	"os"
	"path/filepath"
)

// ShardSet presents a list of shard files as one dataset with global,
// deterministic sample indexing: sample i lives in the file whose cumulative
// count range covers i, in path order. Combined with an epoch-shuffled
// Batcher over Count, this is the repo's stand-in for the paper's HDF5 input
// path — a deterministic shard+index order that a prefetch pipeline and the
// blocking reader traverse identically.
//
// Reads go through os.File.ReadAt and mutate no ShardSet state, so one set
// may be shared by many replicas' prefetch goroutines concurrently.
type ShardSet struct {
	readers []*ShardReader
	starts  []int // starts[k] = global index of shard k's first sample; len(readers)+1 entries

	Count, FeatLen, LabLen int
}

// OpenShardSet opens the given shard files as one set. Every shard must
// agree on FeatLen and LabLen; corrupt or truncated files fail here (see
// OpenShard) rather than mid-training.
func OpenShardSet(paths ...string) (*ShardSet, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("data: shard set needs at least one file")
	}
	s := &ShardSet{starts: make([]int, 0, len(paths)+1)}
	for _, path := range paths {
		r, err := OpenShard(path)
		if err != nil {
			s.Close()
			return nil, err
		}
		if len(s.readers) == 0 {
			s.FeatLen, s.LabLen = r.FeatLen, r.LabLen
		} else if r.FeatLen != s.FeatLen || r.LabLen != s.LabLen {
			r.Close()
			s.Close()
			return nil, fmt.Errorf("data: %s layout %d/%d disagrees with the set's %d/%d",
				path, r.FeatLen, r.LabLen, s.FeatLen, s.LabLen)
		}
		s.starts = append(s.starts, s.Count)
		s.readers = append(s.readers, r)
		s.Count += r.Count
	}
	s.starts = append(s.starts, s.Count)
	return s, nil
}

// Close releases every underlying file, returning the first error.
func (s *ShardSet) Close() error {
	var first error
	for _, r := range s.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.readers = nil
	return first
}

// locate maps a global sample index to (shard, local index) by binary
// search over the cumulative starts. Hand-rolled so the ingest hot path
// stays allocation-free (sort.Search takes an escaping closure).
func (s *ShardSet) locate(i int) (shard, local int) {
	lo, hi := 0, len(s.readers)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.starts[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, i - s.starts[lo]
}

// Shards returns the number of files in the set. Together with ShardRange
// it exposes the file boundaries as scheduling units: the bulk-inference
// fleet steals whole shards, so a shard is the granule that gets requeued
// when a backend dies mid-scan.
func (s *ShardSet) Shards() int { return len(s.readers) }

// ShardRange returns the half-open global sample range [lo, hi) that shard
// k covers. Panics on a shard index outside [0, Shards()).
func (s *ShardSet) ShardRange(k int) (lo, hi int) {
	if k < 0 || k >= len(s.readers) {
		panic(fmt.Sprintf("data: shard %d out of range [0,%d)", k, len(s.readers)))
	}
	return s.starts[k], s.starts[k+1]
}

// ScratchLen returns the byte-scratch size ReadBatchInto needs per caller
// (one sample's raw encoding; see ShardReader.ScratchLen).
func (s *ShardSet) ScratchLen() int {
	n := s.FeatLen
	if s.LabLen > n {
		n = s.LabLen
	}
	return 4 * n
}

// ReadSample reads global sample i's features (and labels when labels is
// non-nil) into the provided slices.
func (s *ShardSet) ReadSample(i int, features []float32, labels []int32) error {
	return s.ReadSampleInto(i, features, labels, make([]byte, s.ScratchLen()))
}

// ReadSampleInto is ReadSample decoding through caller-owned scratch (at
// least ScratchLen bytes). The set itself holds no mutable state, so
// distinct callers with distinct scratch may read concurrently.
func (s *ShardSet) ReadSampleInto(i int, features []float32, labels []int32, scratch []byte) error {
	if i < 0 || i >= s.Count {
		return fmt.Errorf("data: sample %d out of range [0,%d)", i, s.Count)
	}
	k, local := s.locate(i)
	return s.readers[k].ReadSampleInto(local, features, labels, scratch)
}

// ReadBatchInto gathers the indexed samples into a contiguous feature
// buffer of len(idx)·FeatLen floats (and len(idx)·LabLen labels when labels
// is non-nil), decoding through caller-owned scratch of at least ScratchLen
// bytes — the pipeline staging form, allocation-free. A nil scratch is
// allocated per call (convenience for cold paths).
func (s *ShardSet) ReadBatchInto(idx []int, features []float32, labels []int32, scratch []byte) error {
	if len(features) != len(idx)*s.FeatLen {
		return fmt.Errorf("data: feature buffer %d != %d×%d", len(features), len(idx), s.FeatLen)
	}
	if labels != nil && len(labels) != len(idx)*s.LabLen {
		return fmt.Errorf("data: label buffer %d != %d×%d", len(labels), len(idx), s.LabLen)
	}
	if scratch == nil {
		scratch = make([]byte, s.ScratchLen())
	}
	for bi, i := range idx {
		var lab []int32
		if labels != nil {
			lab = labels[bi*s.LabLen : (bi+1)*s.LabLen]
		}
		if err := s.ReadSampleInto(i, features[bi*s.FeatLen:(bi+1)*s.FeatLen], lab, scratch); err != nil {
			return err
		}
	}
	return nil
}

// WriteShards splits count samples across numShards files named
// shard-NNNN.shard under dir (created if needed) and returns their paths in
// index order. Shares come from Split; with more shards requested than
// samples the empty tails are simply not written, so every returned path
// holds at least one sample.
func WriteShards(dir string, numShards, count, featLen, labLen int, features []float32, labels []int32) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for i, span := range Split(count, numShards) {
		lo, hi := span[0], span[1]
		if hi == lo {
			continue // Split(parts > n) yields empty ranges; skip, don't write zero shards
		}
		path := filepath.Join(dir, fmt.Sprintf("shard-%04d.shard", i))
		var labs []int32
		if labels != nil {
			labs = labels[lo*labLen : hi*labLen]
		}
		if err := WriteShard(path, hi-lo, featLen, labLen,
			features[lo*featLen:hi*featLen], labs); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
