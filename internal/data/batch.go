// Package data provides dataset plumbing shared by the HEP and climate
// applications: epoch-shuffled batch iteration and a binary shard file
// format used to measure real input I/O (the paper's Fig 5 breaks out I/O
// time — 13% of the climate iteration, ~2% for HEP — so the harness reads
// samples back from disk rather than pretending generation is free).
package data

import (
	"fmt"

	"deep15pf/internal/tensor"
)

// Batcher yields epoch-shuffled minibatch index sets over a dataset of N
// samples. Each epoch uses a fresh permutation from the supplied RNG; the
// final short batch of an epoch is emitted as-is.
type Batcher struct {
	N, BatchSize int
	rng          *tensor.RNG
	perm         []int
	pos          int
	epoch        int
}

// NewBatcher constructs a batcher over n samples.
func NewBatcher(n, batchSize int, rng *tensor.RNG) *Batcher {
	if n <= 0 || batchSize <= 0 {
		panic(fmt.Sprintf("data: invalid batcher n=%d batch=%d", n, batchSize))
	}
	b := &Batcher{N: n, BatchSize: batchSize, rng: rng}
	b.reshuffle()
	return b
}

func (b *Batcher) reshuffle() {
	b.perm = b.rng.Perm(b.N)
	b.pos = 0
}

// Epoch returns the number of completed passes over the data.
func (b *Batcher) Epoch() int { return b.epoch }

// Next returns the next batch of sample indices, reshuffling at epoch
// boundaries.
func (b *Batcher) Next() []int {
	if b.pos >= b.N {
		b.epoch++
		b.reshuffle()
	}
	end := b.pos + b.BatchSize
	if end > b.N {
		end = b.N
	}
	out := b.perm[b.pos:end]
	b.pos = end
	return out
}

// Split partitions n samples into parts nearly equal shares, returning
// [lo,hi) bounds per part. Used to shard a group batch across workers the
// way data-parallel training splits a minibatch.
//
// parts may exceed n (an epoch's short tail batch split over a large worker
// group): the trailing parts come back as empty [x,x) ranges. Consumers
// must skip those — an empty shard is a worker idling this iteration, never
// a zero-sample batch to stage or compile a plan for (the trainers and
// Pipeline sources uphold this; see SliceSource).
func Split(n, parts int) [][2]int {
	if parts <= 0 {
		panic("data: Split with non-positive parts")
	}
	if n < 0 {
		panic("data: Split with negative n")
	}
	out := make([][2]int, parts)
	base := n / parts
	rem := n % parts
	lo := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = [2]int{lo, lo + size}
		lo += size
	}
	return out
}

// VolumeBytes returns the raw float32 volume of a dataset with the given
// per-sample shape — the quantity in Table I's "Volume" column.
func VolumeBytes(numSamples int, sampleShape ...int) int64 {
	elems := int64(1)
	for _, d := range sampleShape {
		elems *= int64(d)
	}
	return int64(numSamples) * elems * 4
}
