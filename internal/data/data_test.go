package data

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

func TestBatcherCoversEpochExactlyOnce(t *testing.T) {
	b := NewBatcher(10, 3, tensor.NewRNG(1))
	seen := make(map[int]int)
	total := 0
	for total < 10 {
		idx := b.Next()
		for _, i := range idx {
			seen[i]++
		}
		total += len(idx)
	}
	if len(seen) != 10 {
		t.Fatalf("epoch covered %d unique samples, want 10", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d seen %d times in one epoch", i, c)
		}
	}
	if b.Epoch() != 0 {
		t.Fatalf("epoch counter = %d before wrap", b.Epoch())
	}
	b.Next()
	if b.Epoch() != 1 {
		t.Fatalf("epoch counter = %d after wrap", b.Epoch())
	}
}

func TestBatcherShortFinalBatch(t *testing.T) {
	b := NewBatcher(7, 3, tensor.NewRNG(2))
	sizes := []int{len(b.Next()), len(b.Next()), len(b.Next())}
	if sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("batch sizes = %v", sizes)
	}
}

func TestBatcherReshufflesBetweenEpochs(t *testing.T) {
	b := NewBatcher(64, 64, tensor.NewRNG(3))
	e1 := append([]int(nil), b.Next()...)
	e2 := b.Next()
	same := true
	for i := range e1 {
		if e1[i] != e2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epochs should be differently shuffled")
	}
}

// TestBatcherEpochCounterAcrossReshuffles: Epoch must tick exactly once per
// completed pass, including passes that end on a short tail batch, across
// several reshuffles.
func TestBatcherEpochCounterAcrossReshuffles(t *testing.T) {
	b := NewBatcher(7, 3, tensor.NewRNG(21))
	for epoch := 0; epoch < 4; epoch++ {
		total := 0
		for total < 7 {
			total += len(b.Next())
			// The counter ticks lazily, on the draw that wraps into the
			// next permutation — so every batch of a pass reports the same
			// epoch, including the short tail.
			if got := b.Epoch(); got != epoch {
				t.Fatalf("counter = %d mid-epoch, want %d (at %d samples)", got, epoch, total)
			}
		}
		if total != 7 {
			t.Fatalf("epoch %d emitted %d samples, want exactly 7", epoch, total)
		}
	}
}

// TestBatcherShortFinalBatchEveryEpoch: the tail batch stays short in every
// epoch (no silent padding or carry-over between permutations), and each
// epoch is a permutation of [0,n).
func TestBatcherShortFinalBatchEveryEpoch(t *testing.T) {
	const n, batch = 10, 4
	b := NewBatcher(n, batch, tensor.NewRNG(22))
	for epoch := 0; epoch < 3; epoch++ {
		var sizes []int
		seen := make(map[int]bool)
		total := 0
		for total < n {
			idx := b.Next()
			sizes = append(sizes, len(idx))
			for _, i := range idx {
				if i < 0 || i >= n || seen[i] {
					t.Fatalf("epoch %d: index %d out of range or repeated", epoch, i)
				}
				seen[i] = true
			}
			total += len(idx)
		}
		if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
			t.Fatalf("epoch %d batch sizes = %v, want [4 4 2]", epoch, sizes)
		}
	}
}

// TestBatcherDeterministicForFixedSeed: two batchers over the same RNG seed
// must emit identical permutations — the reproducibility every golden-
// fingerprint trainer (and the prefetch pipeline) relies on.
func TestBatcherDeterministicForFixedSeed(t *testing.T) {
	a := NewBatcher(23, 5, tensor.NewRNG(77))
	b := NewBatcher(23, 5, tensor.NewRNG(77))
	for draw := 0; draw < 20; draw++ {
		ia, ib := a.Next(), b.Next()
		if len(ia) != len(ib) {
			t.Fatalf("draw %d sizes diverge: %d vs %d", draw, len(ia), len(ib))
		}
		for j := range ia {
			if ia[j] != ib[j] {
				t.Fatalf("draw %d diverges at %d: %v vs %v", draw, j, ia, ib)
			}
		}
	}
}

// TestSplitMorePartsThanSamples pins the documented empty-range contract:
// Split(n, parts) with parts > n yields n singleton shares followed by
// empty [x,x) ranges that consumers skip (see the core trainer regression
// test for the skip itself).
func TestSplitMorePartsThanSamples(t *testing.T) {
	parts := Split(3, 5)
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 3}, {3, 3}}
	for i, p := range parts {
		if p != want[i] {
			t.Fatalf("Split(3,5)[%d] = %v, want %v", i, p, want[i])
		}
	}
	for _, p := range Split(0, 4) {
		if p != [2]int{0, 0} {
			t.Fatalf("Split(0,4) must be all empty, got %v", p)
		}
	}
}

func TestBatcherValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatcher(0, 4, tensor.NewRNG(1))
}

// Property: Split always partitions [0,n) contiguously with sizes differing
// by at most one.
func TestSplitProperty(t *testing.T) {
	f := func(rawN uint16, rawP uint8) bool {
		n := int(rawN % 2000)
		p := 1 + int(rawP%32)
		parts := Split(n, p)
		if len(parts) != p {
			return false
		}
		lo := 0
		minSz, maxSz := 1<<30, -1
		for _, pr := range parts {
			if pr[0] != lo || pr[1] < pr[0] {
				return false
			}
			sz := pr[1] - pr[0]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			lo = pr[1]
		}
		return lo == n && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVolumeBytesTable1(t *testing.T) {
	// Paper Table I: HEP 228×228×3 × 10M images = 7.4 TB? Raw float32:
	// 228·228·3·4 B = 623,808 B/sample; ×10M ≈ 6.24 TB (the paper's 7.4 TB
	// includes container overhead). Check our arithmetic is exact.
	got := VolumeBytes(10_000_000, 3, 228, 228)
	if got != int64(10_000_000)*623808 {
		t.Fatalf("VolumeBytes = %d", got)
	}
	// Climate: 768·768·16·4 = 37,748,736 B/sample ×0.4M ≈ 15.1 TB ✓.
	clim := VolumeBytes(400_000, 16, 768, 768)
	if clim != int64(400_000)*37748736 {
		t.Fatalf("climate VolumeBytes = %d", clim)
	}
	tb := float64(clim) / 1e12
	if tb < 14 || tb > 16 {
		t.Fatalf("climate volume %.1f TB, paper says 15 TB", tb)
	}
}

func TestShardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.shard")
	count, featLen, labLen := 5, 6, 2
	feats := make([]float32, count*featLen)
	labs := make([]int32, count*labLen)
	rng := tensor.NewRNG(4)
	for i := range feats {
		feats[i] = float32(rng.Norm())
	}
	for i := range labs {
		labs[i] = int32(rng.Intn(100))
	}
	if err := WriteShard(path, count, featLen, labLen, feats, labs); err != nil {
		t.Fatal(err)
	}
	r, err := OpenShard(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count != count || r.FeatLen != featLen || r.LabLen != labLen {
		t.Fatalf("header mismatch: %+v", r)
	}
	f := make([]float32, featLen)
	l := make([]int32, labLen)
	for i := 0; i < count; i++ {
		if err := r.ReadSample(i, f, l); err != nil {
			t.Fatal(err)
		}
		for j := range f {
			if f[j] != feats[i*featLen+j] {
				t.Fatalf("sample %d feature %d mismatch", i, j)
			}
		}
		for j := range l {
			if l[j] != labs[i*labLen+j] {
				t.Fatalf("sample %d label %d mismatch", i, j)
			}
		}
	}
}

func TestShardReadBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "batch.shard")
	feats := []float32{0, 1, 2, 3, 4, 5} // 3 samples × 2 features
	labs := []int32{10, 11, 12}
	if err := WriteShard(path, 3, 2, 1, feats, labs); err != nil {
		t.Fatal(err)
	}
	r, err := OpenShard(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	bf := make([]float32, 4)
	bl := make([]int32, 2)
	if err := r.ReadBatch([]int{2, 0}, bf, bl); err != nil {
		t.Fatal(err)
	}
	if bf[0] != 4 || bf[1] != 5 || bf[2] != 0 || bf[3] != 1 {
		t.Fatalf("batch features = %v", bf)
	}
	if bl[0] != 12 || bl[1] != 10 {
		t.Fatalf("batch labels = %v", bl)
	}
}

func TestShardErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.shard")
	if err := WriteShard(path, 2, 3, 0, make([]float32, 5), nil); err == nil {
		t.Fatal("size mismatch must error")
	}
	if _, err := OpenShard(filepath.Join(dir, "missing.shard")); err == nil {
		t.Fatal("missing file must error")
	}
	// Valid file, bad reads.
	if err := WriteShard(path, 2, 3, 0, make([]float32, 6), nil); err != nil {
		t.Fatal(err)
	}
	r, err := OpenShard(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.ReadSample(5, make([]float32, 3), nil); err == nil {
		t.Fatal("out-of-range read must error")
	}
	if err := r.ReadSample(0, make([]float32, 2), nil); err == nil {
		t.Fatal("short buffer must error")
	}
}

func TestOpenShardRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage")
	if err := WriteShard(path, 1, 1, 0, []float32{1}, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic.
	raw := []byte("NOTASHARDFILE-------------------")
	if err := writeFile(path, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShard(path); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
