package data

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Shard file format (little endian):
//
//	magic   uint32  'D15P'
//	version uint32  1
//	count   uint32  samples in shard
//	featLen uint32  float32 features per sample
//	labLen  uint32  int32 labels per sample
//	payload count·featLen float32, then count·labLen int32
//
// This substitutes for the paper's HDF5 input path; like theirs it is a
// single-threaded reader (the paper calls out non-threaded HDF5 as an I/O
// bottleneck), so measured read times are honest.
const (
	shardMagic   = 0x44313550 // "D15P"
	shardVersion = 1
	headerBytes  = 20
)

// WriteShard writes samples to path. features is count×featLen, labels is
// count×labLen (labLen may be zero).
func WriteShard(path string, count, featLen, labLen int, features []float32, labels []int32) error {
	if len(features) != count*featLen {
		return fmt.Errorf("data: feature payload %d != %d×%d", len(features), count, featLen)
	}
	if len(labels) != count*labLen {
		return fmt.Errorf("data: label payload %d != %d×%d", len(labels), count, labLen)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, headerBytes)
	binary.LittleEndian.PutUint32(hdr[0:], shardMagic)
	binary.LittleEndian.PutUint32(hdr[4:], shardVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(count))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(featLen))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(labLen))
	if _, err := f.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 4*len(features))
	for i, v := range features {
		binary.LittleEndian.PutUint32(buf[4*i:], floatBits(v))
	}
	if _, err := f.Write(buf); err != nil {
		return err
	}
	lbuf := make([]byte, 4*len(labels))
	for i, v := range labels {
		binary.LittleEndian.PutUint32(lbuf[4*i:], uint32(v))
	}
	if _, err := f.Write(lbuf); err != nil {
		return err
	}
	return f.Sync()
}

// ShardReader reads samples back by index.
type ShardReader struct {
	f                      *os.File
	Count, FeatLen, LabLen int
}

// OpenShard opens a shard file and validates its header.
func OpenShard(path string) (*ShardReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerBytes)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("data: short shard header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != shardMagic {
		f.Close()
		return nil, fmt.Errorf("data: %s is not a shard file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != shardVersion {
		f.Close()
		return nil, fmt.Errorf("data: unsupported shard version %d", v)
	}
	return &ShardReader{
		f:       f,
		Count:   int(binary.LittleEndian.Uint32(hdr[8:])),
		FeatLen: int(binary.LittleEndian.Uint32(hdr[12:])),
		LabLen:  int(binary.LittleEndian.Uint32(hdr[16:])),
	}, nil
}

// Close releases the underlying file.
func (r *ShardReader) Close() error { return r.f.Close() }

// ReadSample reads sample i's features (and labels if labels is non-nil)
// into the provided slices.
func (r *ShardReader) ReadSample(i int, features []float32, labels []int32) error {
	if i < 0 || i >= r.Count {
		return fmt.Errorf("data: sample %d out of range [0,%d)", i, r.Count)
	}
	if len(features) != r.FeatLen {
		return fmt.Errorf("data: feature buffer %d != %d", len(features), r.FeatLen)
	}
	buf := make([]byte, 4*r.FeatLen)
	off := int64(headerBytes) + int64(i)*int64(4*r.FeatLen)
	if _, err := r.f.ReadAt(buf, off); err != nil {
		return err
	}
	for j := range features {
		features[j] = bitsFloat(binary.LittleEndian.Uint32(buf[4*j:]))
	}
	if labels != nil && r.LabLen > 0 {
		if len(labels) != r.LabLen {
			return fmt.Errorf("data: label buffer %d != %d", len(labels), r.LabLen)
		}
		lbuf := make([]byte, 4*r.LabLen)
		loff := int64(headerBytes) + int64(r.Count)*int64(4*r.FeatLen) + int64(i)*int64(4*r.LabLen)
		if _, err := r.f.ReadAt(lbuf, loff); err != nil {
			return err
		}
		for j := range labels {
			labels[j] = int32(binary.LittleEndian.Uint32(lbuf[4*j:]))
		}
	}
	return nil
}

// ReadBatch reads the indexed samples into a contiguous feature buffer of
// len(idx)·FeatLen floats and, if labels is non-nil, len(idx)·LabLen labels.
func (r *ShardReader) ReadBatch(idx []int, features []float32, labels []int32) error {
	for bi, i := range idx {
		var lab []int32
		if labels != nil {
			lab = labels[bi*r.LabLen : (bi+1)*r.LabLen]
		}
		if err := r.ReadSample(i, features[bi*r.FeatLen:(bi+1)*r.FeatLen], lab); err != nil {
			return err
		}
	}
	return nil
}
