package data

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Shard file format (little endian):
//
//	magic   uint32  'D15P'
//	version uint32  1
//	count   uint32  samples in shard
//	featLen uint32  float32 features per sample
//	labLen  uint32  int32 labels per sample
//	payload count·featLen float32, then count·labLen int32
//
// This substitutes for the paper's HDF5 input path; like theirs it is a
// single-threaded reader (the paper calls out non-threaded HDF5 as an I/O
// bottleneck), so measured read times are honest.
const (
	shardMagic   = 0x44313550 // "D15P"
	shardVersion = 1
	headerBytes  = 20
)

// WriteShard writes samples to path. features is count×featLen, labels is
// count×labLen (labLen may be zero).
func WriteShard(path string, count, featLen, labLen int, features []float32, labels []int32) error {
	if len(features) != count*featLen {
		return fmt.Errorf("data: feature payload %d != %d×%d", len(features), count, featLen)
	}
	if len(labels) != count*labLen {
		return fmt.Errorf("data: label payload %d != %d×%d", len(labels), count, labLen)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, headerBytes)
	binary.LittleEndian.PutUint32(hdr[0:], shardMagic)
	binary.LittleEndian.PutUint32(hdr[4:], shardVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(count))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(featLen))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(labLen))
	if _, err := f.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 4*len(features))
	for i, v := range features {
		binary.LittleEndian.PutUint32(buf[4*i:], floatBits(v))
	}
	if _, err := f.Write(buf); err != nil {
		return err
	}
	lbuf := make([]byte, 4*len(labels))
	for i, v := range labels {
		binary.LittleEndian.PutUint32(lbuf[4*i:], uint32(v))
	}
	if _, err := f.Write(lbuf); err != nil {
		return err
	}
	return f.Sync()
}

// ShardReader reads samples back by index.
type ShardReader struct {
	f                      *os.File
	Count, FeatLen, LabLen int
}

// OpenShard opens a shard file and validates its header against the actual
// file size, so corruption surfaces as an explicit error at open time — not
// as a panic or short read deep inside a training run's prefetch goroutine.
func OpenShard(path string) (*ShardReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerBytes)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("data: %s: short shard header: %w", path, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != shardMagic {
		f.Close()
		return nil, fmt.Errorf("data: %s is not a shard file (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != shardVersion {
		f.Close()
		return nil, fmt.Errorf("data: %s: unsupported shard version %d", path, v)
	}
	count := int64(binary.LittleEndian.Uint32(hdr[8:]))
	featLen := int64(binary.LittleEndian.Uint32(hdr[12:]))
	labLen := int64(binary.LittleEndian.Uint32(hdr[16:]))
	// Impossible counts: the per-sample element total must not overflow the
	// payload arithmetic (a corrupt header can promise ~2^64 bytes).
	per := featLen + labLen
	if per > 0 && count > (math.MaxInt64/4-headerBytes)/per {
		f.Close()
		return nil, fmt.Errorf("data: %s: impossible shard header (count %d × %d elems/sample overflows)",
			path, count, per)
	}
	want := int64(headerBytes) + 4*count*per
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("data: %s: stat: %w", path, err)
	}
	if st.Size() != want {
		f.Close()
		return nil, fmt.Errorf("data: %s: payload is %d bytes, header promises %d (truncated or corrupt)",
			path, st.Size(), want)
	}
	return &ShardReader{
		f:       f,
		Count:   int(count),
		FeatLen: int(featLen),
		LabLen:  int(labLen),
	}, nil
}

// Close releases the underlying file.
func (r *ShardReader) Close() error { return r.f.Close() }

// ScratchLen returns the byte-scratch size the *Into read paths need (one
// sample's worth of raw encoding, feature or label, whichever is larger).
func (r *ShardReader) ScratchLen() int {
	n := r.FeatLen
	if r.LabLen > n {
		n = r.LabLen
	}
	return 4 * n
}

// ReadSample reads sample i's features (and labels if labels is non-nil)
// into the provided slices.
func (r *ShardReader) ReadSample(i int, features []float32, labels []int32) error {
	return r.ReadSampleInto(i, features, labels, make([]byte, r.ScratchLen()))
}

// ReadSampleInto is ReadSample decoding through caller-owned scratch (at
// least ScratchLen bytes) — the allocation-free form the ingest hot paths
// run per sample, on every iteration, from prefetch goroutines.
func (r *ShardReader) ReadSampleInto(i int, features []float32, labels []int32, scratch []byte) error {
	if i < 0 || i >= r.Count {
		return fmt.Errorf("data: sample %d out of range [0,%d)", i, r.Count)
	}
	if len(features) != r.FeatLen {
		return fmt.Errorf("data: feature buffer %d != %d", len(features), r.FeatLen)
	}
	if len(scratch) < r.ScratchLen() {
		return fmt.Errorf("data: scratch buffer %d < %d", len(scratch), r.ScratchLen())
	}
	buf := scratch[:4*r.FeatLen]
	off := int64(headerBytes) + int64(i)*int64(4*r.FeatLen)
	if _, err := r.f.ReadAt(buf, off); err != nil {
		return err
	}
	for j := range features {
		features[j] = bitsFloat(binary.LittleEndian.Uint32(buf[4*j:]))
	}
	if labels != nil && r.LabLen > 0 {
		if len(labels) != r.LabLen {
			return fmt.Errorf("data: label buffer %d != %d", len(labels), r.LabLen)
		}
		lbuf := scratch[:4*r.LabLen]
		loff := int64(headerBytes) + int64(r.Count)*int64(4*r.FeatLen) + int64(i)*int64(4*r.LabLen)
		if _, err := r.f.ReadAt(lbuf, loff); err != nil {
			return err
		}
		for j := range labels {
			labels[j] = int32(binary.LittleEndian.Uint32(lbuf[4*j:]))
		}
	}
	return nil
}

// ReadBatch reads the indexed samples into a contiguous feature buffer of
// len(idx)·FeatLen floats and, if labels is non-nil, len(idx)·LabLen labels.
func (r *ShardReader) ReadBatch(idx []int, features []float32, labels []int32) error {
	scratch := make([]byte, r.ScratchLen())
	for bi, i := range idx {
		var lab []int32
		if labels != nil {
			lab = labels[bi*r.LabLen : (bi+1)*r.LabLen]
		}
		if err := r.ReadSampleInto(i, features[bi*r.FeatLen:(bi+1)*r.FeatLen], lab, scratch); err != nil {
			return err
		}
	}
	return nil
}
