package data

import (
	"sync"
	"sync/atomic"
	"time"
)

// IngestStats accounts a training run's input staging the way ps.WireStats
// accounts its parameter traffic: StageSeconds is the total time spent
// reading and copying batches (the I/O work performed), WaitSeconds is the
// part the consumer actually sat blocked on — the *exposed* ingest time that
// extended iterations. The paper's Fig 5 breaks input I/O out as 13% of the
// climate iteration (~2% for HEP); a prefetching pipeline's target is
// driving WaitSeconds to zero while StageSeconds stays put, exactly like
// the PR 3 overlap drove ExposedCommSeconds down.
type IngestStats struct {
	Batches      int64   // staged batches
	Samples      int64   // staged samples
	StageSeconds float64 // total staging time (shard reads + copies)
	WaitSeconds  float64 // consumer-blocked time (exposed ingest)
}

// Add merges two accounts (e.g. across a group's worker replicas).
func (s IngestStats) Add(o IngestStats) IngestStats {
	return IngestStats{
		Batches:      s.Batches + o.Batches,
		Samples:      s.Samples + o.Samples,
		StageSeconds: s.StageSeconds + o.StageSeconds,
		WaitSeconds:  s.WaitSeconds + o.WaitSeconds,
	}
}

// Overlap returns the fraction of staging time hidden behind compute,
// in [0,1]. A blocking reader scores 0 (every staging second is exposed);
// a perfectly hidden pipeline scores 1.
func (s IngestStats) Overlap() float64 {
	if s.StageSeconds <= 0 {
		return 0
	}
	f := 1 - s.WaitSeconds/s.StageSeconds
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Pipeline is a double-buffered background prefetcher: one goroutine stages
// upcoming batches into a bounded ring of pre-sized slots while the consumer
// trains on the current one. B is the slot type (a staged batch: tensors,
// labels, boxes — whatever the problem needs); slots are allocated once by
// the caller, so the steady state touches no allocator on either side.
//
// Determinism contract: there is exactly ONE prefetch goroutine, and it
// draws index sets from source strictly in order — the same order (and
// therefore the same RNG consumption) as the blocking pull-at-iteration-
// start path it replaces. Staging is a pure copy of dataset/shard contents,
// so with prefetch on, a training trajectory is bitwise identical to the
// staged path; only the timing changes.
//
// Backpressure is the free ring: once every slot is staged (or held by the
// consumer), the prefetcher blocks until Next recycles one. The consumer
// owns at most one slot at a time — the batch returned by the latest Next —
// and that slot is recycled by the following Next call, so a returned batch
// is valid exactly until the next batch is requested.
type Pipeline[B any] struct {
	slots  []B
	source func() []int         // next batch's sample indices; nil = end of stream
	stage  func(B, []int) error // fill a slot from indices (prefetch goroutine only)

	free  chan int // slot indices available for staging
	ready chan int // slot indices staged, in order
	quit  chan struct{}
	done  chan struct{} // closed when the prefetch goroutine exits
	stop  sync.Once
	cur   int // slot held by the consumer, -1 when none
	err   error

	batches atomic.Int64
	samples atomic.Int64
	stageNs atomic.Int64
	waitNs  atomic.Int64
}

// NewPipeline builds a pipeline over the given pre-allocated slots. source
// yields successive batch index sets (nil ends the stream) and stage fills a
// slot from one index set; both run only on the pipeline's single prefetch
// goroutine. At least two slots are required — one staging while one trains
// is the double buffer; more slots deepen the ring so jittery reads smooth
// out. Call Start to launch the prefetcher.
func NewPipeline[B any](slots []B, source func() []int, stage func(dst B, idx []int) error) *Pipeline[B] {
	if len(slots) < 2 {
		panic("data: Pipeline needs at least 2 slots (one staging, one training)")
	}
	if source == nil || stage == nil {
		panic("data: Pipeline needs a source and a stage function")
	}
	p := &Pipeline[B]{
		slots:  slots,
		source: source,
		stage:  stage,
		free:   make(chan int, len(slots)),
		ready:  make(chan int, len(slots)),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		cur:    -1,
	}
	for i := range slots {
		p.free <- i
	}
	return p
}

// Start launches the prefetch goroutine.
func (p *Pipeline[B]) Start() { go p.run() }

func (p *Pipeline[B]) run() {
	// LIFO: done must close BEFORE ready, so a consumer that observes the
	// ready channel closed is guaranteed to see p.err through Err().
	defer close(p.ready)
	defer close(p.done)
	for {
		idx := p.source()
		if idx == nil {
			return
		}
		var s int
		select {
		case s = <-p.free:
		case <-p.quit:
			return
		}
		t0 := time.Now()
		if err := p.stage(p.slots[s], idx); err != nil {
			p.err = err // published by the deferred close(ready)
			return
		}
		p.stageNs.Add(time.Since(t0).Nanoseconds())
		p.batches.Add(1)
		p.samples.Add(int64(len(idx)))
		// Token conservation (len(free)+len(ready)+consumer-held == len(slots))
		// guarantees this send never blocks.
		p.ready <- s
	}
}

// Next returns the next staged batch, blocking until the prefetcher has one
// (that blocked time is the exposed ingest WaitSeconds). It recycles the
// previously returned slot, so the prior batch must no longer be in use.
// ok == false means the source is exhausted or staging failed — check Err.
func (p *Pipeline[B]) Next() (batch B, ok bool) {
	if p.cur >= 0 {
		p.free <- p.cur
		p.cur = -1
	}
	t0 := time.Now()
	s, open := <-p.ready
	p.waitNs.Add(time.Since(t0).Nanoseconds())
	if !open {
		var zero B
		return zero, false
	}
	p.cur = s
	return p.slots[s], true
}

// Err reports a staging failure. Valid once Next has returned ok == false
// (or after Stop).
func (p *Pipeline[B]) Err() error {
	select {
	case <-p.done:
		return p.err
	default:
		return nil
	}
}

// Stop terminates the prefetch goroutine and waits for it to exit. Stats
// stay readable; Next must not be called afterwards. Safe to call more than
// once, and after the source is already exhausted.
func (p *Pipeline[B]) Stop() {
	p.stop.Do(func() { close(p.quit) })
	<-p.done
}

// Stats snapshots the pipeline's ingest accounting. Safe to call from the
// consumer at any time.
func (p *Pipeline[B]) Stats() IngestStats {
	return IngestStats{
		Batches:      p.batches.Load(),
		Samples:      p.samples.Load(),
		StageSeconds: float64(p.stageNs.Load()) / 1e9,
		WaitSeconds:  float64(p.waitNs.Load()) / 1e9,
	}
}

// SliceSource adapts a pre-drawn batch sequence (e.g. a trainer's per-rank
// shard sequence) into a Pipeline source, skipping empty index sets — a
// shard with zero samples (data.Split with more parts than samples) is
// skipped, never staged as a zero batch.
func SliceSource(batches [][]int) func() []int {
	i := 0
	return func() []int {
		for i < len(batches) {
			b := batches[i]
			i++
			if len(b) > 0 {
				return b
			}
		}
		return nil
	}
}
