package core

// White-box gate for the overlapped hybrid worker's steady state: once the
// plans, wires, handle slots and parameter-server buffers are warm, a full
// iteration — streamed backward, async all-reduce, int8 encode, PS push,
// model broadcast — must not touch the allocator. Codec scratch lives in
// reused Wire buffers, async handles in the worker's preallocated table and
// the comm free list, activations and gradients in the replica's arena.

import (
	"testing"

	"deep15pf/internal/comm"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/opt"
	"deep15pf/internal/ps"
	"deep15pf/internal/tensor"
)

// allocProblem is a minimal in-package Problem (the hep adapter lives above
// core in the import graph, so the white-box test brings its own).
type allocProblem struct {
	data   *tensor.Tensor // [n, 1, 8, 8]
	labels []int
}

func newAllocProblem(n int) *allocProblem {
	rng := tensor.NewRNG(3)
	data := tensor.New(n, 1, 8, 8)
	rng.FillNorm(data, 0, 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 2
	}
	return &allocProblem{data: data, labels: labels}
}

func (p *allocProblem) NewReplica() Replica {
	rng := tensor.NewRNG(7)
	net := nn.NewNetwork("alloc", 1, 8, 8)
	net.Add(
		nn.NewConv2D("conv1", 1, 4, 3, 1, 1, rng),
		nn.NewReLU("relu"),
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("fc", 4, 2, rng),
	)
	arena := tensor.NewArena()
	return &allocReplica{
		p: p, net: net, params: net.Params(),
		plans:  nn.NewPlanCache(net, true, arena),
		xStage: tensor.NewStaging(arena, 1, 8, 8),
		gStage: tensor.NewStaging(arena, 2),
	}
}

func (p *allocProblem) NewBatchSource(seed uint64) BatchSource { return &allocSource{n: len(p.labels)} }

type allocSource struct{ n, at int }

func (s *allocSource) Next(size int) []int {
	idx := make([]int, size)
	for i := range idx {
		idx[i] = (s.at + i) % s.n
	}
	s.at += size
	return idx
}

type allocReplica struct {
	p      *allocProblem
	net    *nn.Network
	params []*nn.Param
	plans  *nn.PlanCache
	xStage *tensor.Staging
	gStage *tensor.Staging
	labels []int
}

func (r *allocReplica) TrainableLayers() []nn.Layer { return r.net.TrainableLayers() }
func (r *allocReplica) ZeroGrad()                   { nn.ZeroGrads(r.params) }
func (r *allocReplica) ComputeGradients(idx []int) float64 {
	return r.ComputeGradientsStream(idx, nil)
}

func (r *allocReplica) ComputeGradientsStream(idx []int, gradDone func(int)) float64 {
	n := len(idx)
	x := r.xStage.Batch(n)
	grad := r.gStage.Batch(n)
	if cap(r.labels) < n {
		r.labels = make([]int, n)
	}
	labels := r.labels[:n]
	per := 64
	for i, s := range idx {
		copy(x.Data[i*per:(i+1)*per], r.p.data.Data[s*per:(s+1)*per])
		labels[i] = r.p.labels[s]
	}
	plan := r.plans.Plan(n)
	logits := plan.Forward(x)
	loss := nn.SoftmaxCrossEntropyInto(logits, labels, grad)
	plan.BackwardStream(grad, gradDone)
	return loss
}

func TestOverlappedWorkerSteadyStateAllocFree(t *testing.T) {
	p := newAllocProblem(32)
	rep := p.NewReplica()
	fleet := ps.NewFleet(rep.TrainableLayers(), opt.NewSGD(0.01, 0.9))
	group := comm.NewGroup(1)
	gw := newGroupWorker(0, group, rep, nil, true)
	gw.ex = newExchanger(fleet, 0, gw.layers, gw.handles, "int8", 1)
	defer gw.ex.close()

	fleet.FetchAll(0)
	idx := []int{0, 1, 2, 3}
	iterate := func() {
		rep.ZeroGrad()
		loss := gw.compute(idx)
		all := group.GatherInto(0, 0, loss, gw.lossBuf)
		if len(all) != 1 {
			t.Fatal("gather lost the loss")
		}
		gw.ex.await()
		gw.broadcastWeights()
	}
	// Warm: plan compile, wire buffer growth, collective free list, solver
	// state on the servers.
	for i := 0; i < 3; i++ {
		iterate()
	}
	if n := testing.AllocsPerRun(30, iterate); n != 0 {
		t.Fatalf("overlapped worker steady state allocates %.1f per iteration; "+
			"codec scratch and async-handle buffers must come from preallocated storage", n)
	}
}

// TestTracedWorkerSteadyStateAllocFree: the overlapped steady state with a
// live trace lane attached — span recording (SetIter, Begin/End around
// compute, comm wait, solver apply) must not reintroduce allocations. This
// is the acceptance gate for the tracer's zero-alloc-on-hot-path contract
// at the trainer level (internal/obs gates the primitives themselves).
func TestTracedWorkerSteadyStateAllocFree(t *testing.T) {
	p := newAllocProblem(32)
	rep := p.NewReplica()
	fleet := ps.NewFleet(rep.TrainableLayers(), opt.NewSGD(0.01, 0.9))
	group := comm.NewGroup(1)
	gw := newGroupWorker(0, group, rep, nil, true)
	gw.setLane(obs.NewTracer(0).Lane("w0"))
	gw.ex = newExchanger(fleet, 0, gw.layers, gw.handles, "int8", 1)
	defer gw.ex.close()

	fleet.FetchAll(0)
	solver := opt.NewSGD(0.01, 0.9)
	idx := []int{0, 1, 2, 3}
	it := 0
	iterate := func() {
		gw.lane.SetIter(it)
		it++
		rep.ZeroGrad()
		gw.compute(idx)
		group.GatherInto(0, 0, 0, gw.lossBuf)
		gw.lane.Begin(obs.PhaseCommWait)
		gw.ex.await()
		gw.lane.End(obs.PhaseCommWait)
		gw.lane.Begin(obs.PhaseOptApply)
		for _, params := range gw.lparams {
			solver.Step(params)
		}
		gw.lane.End(obs.PhaseOptApply)
		gw.broadcastWeights()
	}
	for i := 0; i < 3; i++ {
		iterate()
	}
	if n := testing.AllocsPerRun(30, iterate); n != 0 {
		t.Fatalf("traced worker steady state allocates %.1f per iteration; "+
			"span recording must stay on preallocated lane storage", n)
	}
}

// TestLockstepWorkerSteadyStateAllocFree: the same gate for the lockstep
// schedule, which shares the streamed machinery.
func TestLockstepWorkerSteadyStateAllocFree(t *testing.T) {
	p := newAllocProblem(32)
	rep := p.NewReplica()
	fleet := ps.NewFleet(rep.TrainableLayers(), opt.NewSGD(0.01, 0.9))
	group := comm.NewGroup(1)
	gw := newGroupWorker(0, group, rep, nil, false)
	gw.ex = newExchanger(fleet, 0, gw.layers, gw.handles, "fp32", 1)
	defer gw.ex.close()

	fleet.FetchAll(0)
	idx := []int{0, 1, 2, 3}
	iterate := func() {
		rep.ZeroGrad()
		gw.compute(idx)
		group.GatherInto(0, 0, 0, gw.lossBuf)
		gw.ex.await()
		gw.broadcastWeights()
	}
	for i := 0; i < 3; i++ {
		iterate()
	}
	if n := testing.AllocsPerRun(30, iterate); n != 0 {
		t.Fatalf("lockstep worker steady state allocates %.1f per iteration", n)
	}
}

// TestCheckpointStagingAllocFree gates the compute-thread cost of an async
// snapshot: once staging buffers and solver-state slots are warm, staging
// a checkpoint — clone weights, capture solver state, record cursors — is
// allocation-free. (The background flush itself pays a bounded handful of
// file-I/O allocations per snapshot, off the training goroutine; the
// training loop only ever sees the staging copy measured here.)
func TestCheckpointStagingAllocFree(t *testing.T) {
	p := newAllocProblem(32)
	rep := p.NewReplica()
	layers := rep.TrainableLayers()
	cfg := Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 4, Iterations: 1,
		Solver: opt.NewSGD(0.01, 0.9), Seed: 1,
		Checkpoint: CheckpointConfig{Dir: t.TempDir(), Every: 1, Async: true}}
	cfg.validate()
	ck := newCheckpointer(cfg, layers, nil)
	params := flatParams(layers)
	solver := cfg.Solver.Clone()
	rep.ZeroGrad()
	rep.ComputeGradients([]int{0, 1, 2, 3})
	solver.Step(params) // materialise solver state
	s := ck.writer.Begin()
	stage := func() {
		s.Step = 1
		s.StageWeights(params)
		opt.CaptureState(solver, s.Solver, params)
	}
	stage() // warm: sizes the state slots
	if n := testing.AllocsPerRun(30, stage); n != 0 {
		t.Fatalf("warm sync-mode checkpoint staging allocates %.1f per snapshot", n)
	}
	ck.writer.Commit(s, 0)
	if st := ck.close(); st.Snapshots != 1 {
		t.Fatalf("staged snapshot was not written: %+v", st)
	}
}

// TestFleetCheckpointStagingAllocFree is the same gate for the PS-backed
// trainers: staging fleet masters, per-shard solver state, group cursors
// and per-group replica views all recycle.
func TestFleetCheckpointStagingAllocFree(t *testing.T) {
	p := newAllocProblem(32)
	rep := p.NewReplica()
	layers := rep.TrainableLayers()
	fleet := ps.NewFleet(layers, opt.NewSGD(0.01, 0.9))
	cfg := Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 4, Iterations: 1,
		Solver: opt.NewSGD(0.01, 0.9), Seed: 1,
		Checkpoint: CheckpointConfig{Dir: t.TempDir(), Every: 1, Async: true}}
	cfg.validate()
	ck := newCheckpointer(cfg, layers, fleet)
	// Materialise server-side solver state with one real exchange.
	rep.ZeroGrad()
	rep.ComputeGradients([]int{0, 1, 2, 3})
	grads := make([][][]float32, len(layers))
	for i, l := range layers {
		for _, prm := range l.Params() {
			grads[i] = append(grads[i], prm.Grad.Data)
		}
	}
	fleet.UpdateAll(0, grads)
	iters := []int{3}
	groupParams := [][]*nn.Param{flatParams(layers)}
	s := ck.writer.Begin()
	stage := func() {
		s.Step = 1
		ck.fleet.SnapshotInto(ck.views[s], s.Servers)
		s.GroupIters = append(s.GroupIters[:0], iters...)
		s.StageGroupWeights(groupParams)
	}
	stage() // warm
	if n := testing.AllocsPerRun(30, stage); n != 0 {
		t.Fatalf("warm fleet-mode checkpoint staging allocates %.1f per snapshot", n)
	}
	ck.writer.Commit(s, 0)
	if st := ck.close(); st.Snapshots != 1 {
		t.Fatalf("staged snapshot was not written: %+v", st)
	}
}
