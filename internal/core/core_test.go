package core_test

import (
	"math"
	"testing"

	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// tinyProblem builds a small HEP classification problem for trainer tests.
func tinyProblem(t *testing.T, nSamples int) core.Problem {
	t.Helper()
	rng := tensor.NewRNG(11)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), nSamples, 0.5, rng)
	cfg := hep.ModelConfig{Name: "t", ImageSize: 16, Filters: 6, ConvUnits: 3, Classes: 2}
	return hep.NewTrainingProblem(ds, cfg, 77)
}

func TestSyncTrainingReducesLoss(t *testing.T) {
	p := tinyProblem(t, 48)
	res := core.TrainSync(p, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 30,
		Solver: opt.NewAdam(2e-3), Seed: 1,
	})
	if len(res.Stats) != 30 {
		t.Fatalf("stats = %d", len(res.Stats))
	}
	first := meanLoss(res.Stats[:5])
	last := meanLoss(res.Stats[25:])
	if last >= first {
		t.Fatalf("sync training did not learn: %.4f -> %.4f", first, last)
	}
	if res.MeanStaleness != 0 {
		t.Fatal("sync must have zero staleness")
	}
}

func TestSyncWorkerCountInvariance(t *testing.T) {
	// Data parallelism must not change the math: 1 worker and 4 workers
	// with the same seed produce the same loss trajectory (up to the
	// deterministic reduction's float tolerance).
	p := tinyProblem(t, 32)
	cfg := core.Config{Groups: 1, GroupBatch: 16, Iterations: 6, Seed: 3}
	cfg.Solver = opt.NewSGD(0.01, 0.9)
	cfg.WorkersPerGroup = 1
	r1 := core.TrainSync(p, cfg)
	cfg.Solver = opt.NewSGD(0.01, 0.9)
	cfg.WorkersPerGroup = 4
	r4 := core.TrainSync(p, cfg)
	for i := range r1.Stats {
		if math.Abs(r1.Stats[i].Loss-r4.Stats[i].Loss) > 1e-3 {
			t.Fatalf("iter %d: 1-worker loss %.6f vs 4-worker %.6f",
				i, r1.Stats[i].Loss, r4.Stats[i].Loss)
		}
	}
}

func TestHybridOneGroupMatchesSync(t *testing.T) {
	// With a single group the hybrid system degenerates to synchronous
	// training with the solver on the PS — trajectories must match.
	p := tinyProblem(t, 32)
	cfg := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 8, Seed: 5}
	cfg.Solver = opt.NewSGD(0.02, 0.5)
	sync := core.TrainSync(p, cfg)
	cfg.Solver = opt.NewSGD(0.02, 0.5)
	hybrid := core.TrainHybrid(p, cfg)
	if len(sync.Stats) != len(hybrid.Stats) {
		t.Fatal("iteration counts differ")
	}
	for i := range sync.Stats {
		if math.Abs(sync.Stats[i].Loss-hybrid.Stats[i].Loss) > 1e-4 {
			t.Fatalf("iter %d: sync %.6f vs hybrid-1 %.6f",
				i, sync.Stats[i].Loss, hybrid.Stats[i].Loss)
		}
	}
	if hybrid.MeanStaleness != 0 {
		t.Fatalf("one group cannot be stale, got %v", hybrid.MeanStaleness)
	}
}

func TestHybridMultiGroupLearnsAndIsStale(t *testing.T) {
	p := tinyProblem(t, 64)
	res := core.TrainHybrid(p, core.Config{
		Groups: 4, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 12,
		Solver: opt.NewAdam(2e-3), Seed: 7,
	})
	if len(res.Stats) != 4*12 {
		t.Fatalf("stats = %d", len(res.Stats))
	}
	first := meanLoss(res.Stats[:8])
	last := meanLoss(res.Stats[len(res.Stats)-8:])
	if last >= first {
		t.Fatalf("hybrid training did not learn: %.4f -> %.4f", first, last)
	}
	// With 4 concurrently updating groups, staleness must be visible
	// (expected value near G−1 = 3 in steady state, >0 in any case).
	if res.MeanStaleness <= 0 {
		t.Fatal("asynchronous groups must produce staleness")
	}
	// Seq must be a permutation of 0..n-1 in order.
	for i, s := range res.Stats {
		if s.Seq != i {
			t.Fatalf("stats not in completion order at %d: seq %d", i, s.Seq)
		}
	}
}

func TestScheduledMatchesHybridSemantics(t *testing.T) {
	// A round-robin schedule with G groups must produce the same
	// staleness structure as the concurrent trainer in rotation:
	// steady-state staleness G−1, and the run must learn.
	p := tinyProblem(t, 64)
	groups := 3
	iters := 10
	var schedule []core.ScheduledEvent
	for it := 0; it < iters; it++ {
		for g := 0; g < groups; g++ {
			schedule = append(schedule, core.ScheduledEvent{Group: g, Time: float64(it*groups+g) * 0.1})
		}
	}
	res := core.TrainScheduled(p, core.Config{
		Groups: groups, WorkersPerGroup: 1, GroupBatch: 16, Iterations: iters,
		Solver: opt.NewAdam(2e-3), Seed: 9,
	}, schedule)
	if len(res.Stats) != groups*iters {
		t.Fatalf("stats = %d", len(res.Stats))
	}
	// After warmup, every update sees exactly G−1 intervening updates.
	tail := res.Stats[len(res.Stats)-groups:]
	for _, s := range tail {
		if s.Staleness != float64(groups-1) {
			t.Fatalf("steady-state staleness %v, want %d", s.Staleness, groups-1)
		}
	}
	if meanLoss(res.Stats[len(res.Stats)-6:]) >= meanLoss(res.Stats[:6]) {
		t.Fatal("scheduled run did not learn")
	}
	// Times must be carried through in order.
	for i := 1; i < len(res.Stats); i++ {
		if res.Stats[i].Time < res.Stats[i-1].Time {
			t.Fatal("stats out of time order")
		}
	}
}

func TestBuildSchedule(t *testing.T) {
	durs := [][]float64{{1, 1, 1}, {0.4, 0.4, 0.4}}
	sched := core.BuildSchedule(durs)
	if len(sched) != 6 {
		t.Fatalf("schedule length %d", len(sched))
	}
	// Group 1's iterations (0.4, 0.8, 1.2) interleave with group 0's (1, 2, 3).
	wantGroups := []int{1, 1, 0, 1, 0, 0}
	for i, ev := range sched {
		if ev.Group != wantGroups[i] {
			t.Fatalf("schedule order: %+v", sched)
		}
		if i > 0 && sched[i].Time < sched[i-1].Time {
			t.Fatal("schedule not sorted")
		}
	}
}

func TestTimeToLoss(t *testing.T) {
	res := core.Result{Stats: []core.IterStat{
		{Loss: 1.0, Time: 1},
		{Loss: 0.5, Time: 2},
		{Loss: 0.04, Time: 3},
		{Loss: 0.05, Time: 4},
	}}
	tt, ok := core.TimeToLoss(res, 0.05, 1)
	if !ok || tt != 3 {
		t.Fatalf("time-to-loss = %v ok=%v", tt, ok)
	}
	// Smoothing over 2: mean(0.04, 0.05)=0.045 ≤ 0.05 at t=4.
	tt, ok = core.TimeToLoss(res, 0.05, 2)
	if !ok || tt != 4 {
		t.Fatalf("smoothed time-to-loss = %v", tt)
	}
	if _, ok := core.TimeToLoss(res, 0.001, 1); ok {
		t.Fatal("unreachable target must report !ok")
	}
}

func TestConfigValidation(t *testing.T) {
	p := tinyProblem(t, 16)
	mustPanic := func(cfg core.Config) {
		defer func() { _ = recover() }()
		core.TrainSync(p, cfg)
		t.Fatalf("expected panic: %+v", cfg)
	}
	mustPanic(core.Config{Groups: 1, WorkersPerGroup: 0, GroupBatch: 8, Iterations: 1, Solver: opt.NewSGD(0.1, 0)})
	mustPanic(core.Config{Groups: 1, WorkersPerGroup: 3, GroupBatch: 8, Iterations: 1, Solver: opt.NewSGD(0.1, 0)}) // uneven split
	mustPanic(core.Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 8, Iterations: 1})                             // no solver
	mustPanic(core.Config{Groups: 2, WorkersPerGroup: 1, GroupBatch: 8, Iterations: 1, Solver: opt.NewSGD(0.1, 0)}) // sync with 2 groups
}

func meanLoss(stats []core.IterStat) float64 {
	var s float64
	for _, st := range stats {
		s += st.Loss
	}
	return s / float64(len(stats))
}

func TestInt8CodecTrainsCloseToFp32(t *testing.T) {
	// Same deterministic single-group run through the fp32 and int8 PS
	// wires: the quantised exchange must still learn, stay close to the
	// fp32 trajectory, and move ≥3x fewer gradient bytes.
	p := tinyProblem(t, 64)
	base := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 16,
		Iterations: 30, Seed: 7, Overlap: true}

	base.Solver = opt.NewAdam(2e-3)
	base.Codec = "fp32"
	fp32 := core.TrainHybrid(p, base)
	base.Solver = opt.NewAdam(2e-3)
	base.Codec = "int8"
	int8res := core.TrainHybrid(p, base)

	if f, l := meanLoss(int8res.Stats[:5]), meanLoss(int8res.Stats[25:]); l >= f {
		t.Fatalf("int8 exchange did not learn: %.4f -> %.4f", f, l)
	}
	a, b := fp32.FinalLoss, int8res.FinalLoss
	if diff := math.Abs(a - b); diff > 0.25*math.Abs(a)+0.05 {
		t.Fatalf("int8 final loss %.4f too far from fp32 %.4f", b, a)
	}
	if fp32.Wire.Pushes != int8res.Wire.Pushes || fp32.Wire.Pushes == 0 {
		t.Fatalf("push counts differ: %d vs %d", fp32.Wire.Pushes, int8res.Wire.Pushes)
	}
	if ratio := float64(fp32.Wire.GradBytes) / float64(int8res.Wire.GradBytes); ratio < 3 {
		t.Fatalf("int8 gradient wire reduction %.2fx < 3x", ratio)
	}
	// Weight return stays fp32 in both configurations.
	if fp32.Wire.WeightBytes != int8res.Wire.WeightBytes {
		t.Fatal("weight-return bytes must not depend on the gradient codec")
	}
}

func TestHybridOverlapMultiGroupLearns(t *testing.T) {
	// The overlapped trainer under real cross-group asynchrony (the
	// production configuration): must learn and show staleness, like the
	// lockstep multigroup test above.
	p := tinyProblem(t, 64)
	res := core.TrainHybrid(p, core.Config{
		Groups: 4, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 12,
		Solver: opt.NewAdam(2e-3), Seed: 7, Overlap: true, Codec: "int8",
		PSShardElems: 4096,
	})
	if len(res.Stats) != 4*12 {
		t.Fatalf("stats = %d", len(res.Stats))
	}
	first := meanLoss(res.Stats[:8])
	last := meanLoss(res.Stats[len(res.Stats)-8:])
	if last >= first {
		t.Fatalf("overlapped hybrid did not learn: %.4f -> %.4f", first, last)
	}
	if res.MeanStaleness <= 0 {
		t.Fatal("asynchronous groups must produce staleness")
	}
	if res.Wire.Pushes == 0 || res.Wire.GradBytes == 0 {
		t.Fatalf("wire accounting missing: %+v", res.Wire)
	}
}

func TestUnknownCodecPanics(t *testing.T) {
	p := tinyProblem(t, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown codec")
		}
	}()
	core.TrainHybrid(p, core.Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 8,
		Iterations: 1, Solver: opt.NewSGD(0.1, 0), Codec: "fp64"})
}
