package core_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deep15pf/internal/ckpt"
	"deep15pf/internal/core"
	"deep15pf/internal/opt"
)

// The resume golden gate: training 2N iterations straight must equal
// training N iterations, snapshotting, restoring into a FRESH set of
// objects (a fresh process in the CI smoke step), and training N more —
// bit for bit, for every deterministic trainer configuration, with
// prefetch and overlap enabled. The uninterrupted fingerprints are the
// same constants golden_test.go pins, so this test also proves that
// checkpointing itself (sync or async) never perturbs a trajectory.

// trainHalves runs `first` iterations with a checkpoint at the end, then a
// fresh resumed run to `total`, returning the resumed result.
func trainHalves(t *testing.T, p core.Problem, cfg core.Config, mk func() opt.Solver, first, total int, run func(core.Config) core.Result) core.Result {
	t.Helper()
	dir := t.TempDir()
	half := cfg
	half.Solver = mk()
	half.Iterations = first
	half.Checkpoint = core.CheckpointConfig{Dir: dir, Every: first, Async: true}
	hres := run(half)
	if hres.Ckpt.Snapshots != 1 {
		t.Fatalf("first half wrote %d snapshots, want 1", hres.Ckpt.Snapshots)
	}

	resumed := cfg
	resumed.Solver = mk()
	resumed.Iterations = total
	resumed.Checkpoint = core.CheckpointConfig{Dir: dir, Resume: true}
	return run(resumed)
}

func TestResumeMatchesGoldenSync(t *testing.T) {
	p := goldenProblem()
	base := core.Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Seed: 5}
	res := trainHalves(t, p, base, func() opt.Solver { return opt.NewSGD(0.02, 0.9) }, 5, 10, func(c core.Config) core.Result {
		return core.TrainSync(p, c)
	})
	if got := weightHash(res.FinalWeights); got != goldenSyncW1 {
		t.Errorf("sync-w1 resumed trajectory diverged: %#016x, want %#016x", got, goldenSyncW1)
	}

	// Multi-worker ADAM with prefetch and overlap on both halves.
	multi := core.Config{Groups: 1, WorkersPerGroup: 4, GroupBatch: 16, Seed: 5,
		Prefetch: 2, Overlap: true}
	res = trainHalves(t, p, multi, func() opt.Solver { return opt.NewAdam(2e-3) }, 5, 10, func(c core.Config) core.Result {
		return core.TrainSync(p, c)
	})
	if got := weightHash(res.FinalWeights); got != goldenSyncW4 {
		t.Errorf("sync-w4-prefetch-overlap resumed trajectory diverged: %#016x, want %#016x", got, goldenSyncW4)
	}
}

func TestResumeMatchesGoldenHybrid(t *testing.T) {
	p := goldenProblem()
	base := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Seed: 5,
		Prefetch: 2, Overlap: true}
	res := trainHalves(t, p, base, func() opt.Solver { return opt.NewAdam(2e-3) }, 5, 10, func(c core.Config) core.Result {
		return core.TrainHybrid(p, c)
	})
	if got := weightHash(res.FinalWeights); got != goldenHybridG1W2 {
		t.Errorf("hybrid-g1w2 resumed trajectory diverged: %#016x, want %#016x", got, goldenHybridG1W2)
	}
}

func TestResumeMatchesGoldenHybridSharded(t *testing.T) {
	// PS sharding splits solver state across flat-range shards; the
	// snapshot must carry every shard for the resumed trajectory to hold.
	p := goldenProblem()
	cfg := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Seed: 5, Overlap: true, PSShardElems: 4096}
	cfg.Solver = opt.NewAdam(2e-3)
	straight := core.TrainHybrid(p, cfg)

	base := cfg
	base.Solver = nil
	res := trainHalves(t, p, base, func() opt.Solver { return opt.NewAdam(2e-3) }, 5, 10, func(c core.Config) core.Result {
		return core.TrainHybrid(p, c)
	})
	if weightHash(res.FinalWeights) != weightHash(straight.FinalWeights) {
		t.Error("sharded hybrid resume diverged from the uninterrupted run")
	}
}

func TestResumeMatchesGoldenScheduled(t *testing.T) {
	p := goldenProblem()
	sched := goldenSchedule()
	dir := t.TempDir()

	// First half: the first 8 schedule events (4 per group), snapshotting
	// every 4 updates — the paper's 1-in-10 cadence scaled to the run.
	half := core.Config{Groups: 2, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 8,
		Solver: opt.NewAdam(2e-3), Seed: 5, Prefetch: 2,
		Checkpoint: core.CheckpointConfig{Dir: dir, Every: 4, Async: true}}
	hres := core.TrainScheduled(p, half, sched[:8])
	if hres.Ckpt.Snapshots != 2 {
		t.Fatalf("first half wrote %d snapshots, want 2", hres.Ckpt.Snapshots)
	}

	// Resume with the SAME full schedule: the trainer replays past each
	// group's checkpointed cursor and continues.
	resumed := core.Config{Groups: 2, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 8,
		Solver: opt.NewAdam(2e-3), Seed: 5, Prefetch: 2,
		Checkpoint: core.CheckpointConfig{Dir: dir, Resume: true}}
	res := core.TrainScheduled(p, resumed, sched)
	if got := weightHash(res.FinalWeights); got != goldenSchedG2 {
		t.Errorf("sched-g2 resumed trajectory diverged: %#016x, want %#016x", got, goldenSchedG2)
	}
	// The resumed run performed only the second half's updates.
	if len(res.Stats) != 8 {
		t.Errorf("resumed run recorded %d updates, want 8", len(res.Stats))
	}
}

// TestCheckpointingDoesNotPerturbTraining: a run that snapshots every 2
// iterations (async, with retention) finishes with the same weights as one
// that never checkpoints.
func TestCheckpointingDoesNotPerturbTraining(t *testing.T) {
	p := goldenProblem()
	dir := t.TempDir()
	cfg := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5, Overlap: true, Prefetch: 1,
		Checkpoint: core.CheckpointConfig{Dir: dir, Every: 2, Async: true, Keep: 3, Arch: "golden", SamplesPerEpoch: 48}}
	res := core.TrainSync(p, cfg)

	plain := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5, Overlap: true, Prefetch: 1}
	want := core.TrainSync(p, plain)
	if weightHash(res.FinalWeights) != weightHash(want.FinalWeights) {
		t.Error("checkpointing changed the weight trajectory")
	}
	if res.Ckpt.Snapshots != 5 {
		t.Errorf("recorded %d snapshots, want 5", res.Ckpt.Snapshots)
	}
	if res.Ckpt.StageSeconds <= 0 || res.Ckpt.WriteSeconds <= 0 {
		t.Errorf("checkpoint accounting empty: %+v", res.Ckpt)
	}

	// Retention held: only the newest 3 of 5 versions remain, and the
	// newest manifest carries the run's metadata and the final weights'
	// fingerprint.
	store, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := store.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0].Version != 3 || vs[2].Version != 5 {
		t.Fatalf("retention left %v", vs)
	}
	last := vs[2]
	if last.Step != 10 || last.Arch != "golden" || last.Epoch != 10*16/48 {
		t.Fatalf("final manifest %+v", last)
	}
	if res.Ckpt.LastVersion != 5 {
		t.Errorf("stats last version %d, want 5", res.Ckpt.LastVersion)
	}
}

// TestResumeFreshStoreStartsFresh: Resume against an empty directory is a
// cold start, so one flag serves the first run and every restart.
func TestResumeFreshStoreStartsFresh(t *testing.T) {
	p := goldenProblem()
	cfg := core.Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5,
		Checkpoint: core.CheckpointConfig{Dir: t.TempDir(), Resume: true}}
	res := core.TrainSync(p, cfg)
	if got := weightHash(res.FinalWeights); got != goldenSyncW1 {
		t.Errorf("fresh-store resume diverged from golden: %#016x", got)
	}
}

// TestResumeRejectsWrongArch: a manifest from another model family must
// refuse to resume, before any weight loads.
func TestResumeRejectsWrongArch(t *testing.T) {
	p := goldenProblem()
	dir := t.TempDir()
	first := core.Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 4,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5,
		Checkpoint: core.CheckpointConfig{Dir: dir, Every: 4, Arch: "hep-small"}}
	core.TrainSync(p, first)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("arch mismatch did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "hep-small") {
			t.Fatalf("panic %v does not name the offending arch", r)
		}
	}()
	bad := core.Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 8,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5,
		Checkpoint: core.CheckpointConfig{Dir: dir, Resume: true, Arch: "climate-small"}}
	core.TrainSync(p, bad)
}

// TestResumeSurvivesCorruptNewestVersion is deliberately absent: a corrupt
// newest version fails the load loudly (CRC), which is the right call for
// training — resuming silently from an older state would repeat work the
// operator believes is done. The serving watcher, by contrast, just skips
// unverifiable versions (serve.Deployment tests).

// TestCheckpointEveryWithoutDirPanics pins the config validation.
func TestCheckpointEveryWithoutDirPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every without Dir did not panic")
		}
	}()
	p := goldenProblem()
	core.TrainSync(p, core.Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 16,
		Iterations: 2, Solver: opt.NewSGD(0.02, 0.9), Seed: 5,
		Checkpoint: core.CheckpointConfig{Every: 1}})
}

// TestStoreSurvivesProcessBoundarySimulation writes a snapshot, reopens
// the directory through fresh Store objects (the in-process stand-in for
// the CI kill-and-restart smoke), and checks the manifest fingerprint
// matches a fresh fingerprint of the restored weights.
func TestStoreSurvivesProcessBoundarySimulation(t *testing.T) {
	p := goldenProblem()
	dir := t.TempDir()
	cfg := core.Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 6,
		Solver: opt.NewAdam(2e-3), Seed: 5,
		Checkpoint: core.CheckpointConfig{Dir: dir, Every: 3}}
	core.TrainSync(p, cfg)

	// "New process": nothing shared but the directory.
	store, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatalf("latest: ok=%v err=%v", ok, err)
	}
	if m.Step != 6 {
		t.Fatalf("latest step %d", m.Step)
	}
	if err := store.Verify(m); err != nil {
		t.Fatal(err)
	}
	// The weights file is exactly what serve.Registry.Load consumes.
	if _, err := os.Stat(filepath.Join(store.VersionDir(m.Version), "weights.d15w")); err != nil {
		t.Fatal(err)
	}
}
