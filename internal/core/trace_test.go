package core_test

import (
	"testing"

	"deep15pf/internal/core"
	"deep15pf/internal/obs"
	"deep15pf/internal/opt"
)

// TestTracedTrajectoriesMatchGolden: attaching the phase tracer must not
// perturb the arithmetic — traced sync/hybrid/scheduled runs reproduce
// the pre-refactor golden fingerprints bit for bit. This is the
// observability analogue of the overlap/prefetch neutrality pins: the
// tracer reads clocks and writes preallocated slots, nothing more.
func TestTracedTrajectoriesMatchGolden(t *testing.T) {
	p := goldenProblem()
	check := func(name string, want uint64, res core.Result) {
		t.Helper()
		if got := weightHash(res.FinalWeights); got != want {
			t.Errorf("%s: traced weight trajectory diverged from golden: %#016x, want %#016x",
				name, got, want)
		}
	}
	check("sync-w4-traced", goldenSyncW4, core.TrainSync(p, core.Config{
		Groups: 1, WorkersPerGroup: 4, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewAdam(2e-3), Seed: 5, Trace: obs.NewTracer(0)}))
	check("hybrid-g1w2-traced", goldenHybridG1W2, core.TrainHybrid(p, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewAdam(2e-3), Seed: 5, Overlap: true, Prefetch: 2,
		Trace: obs.NewTracer(0)}))
	check("sched-g2-traced", goldenSchedG2, core.TrainScheduled(p, core.Config{
		Groups: 2, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 8,
		Solver: opt.NewAdam(2e-3), Seed: 5, Trace: obs.NewTracer(0)}, goldenSchedule()))
}

// TestTracedSyncRecordsPhases checks the wiring end to end: a traced
// 4-worker sync run produces one lane per rank with Ingest, Fwd, Bwd,
// CommWait and OptApply spans on every iteration, iteration tags intact,
// and the straggler report covers every iteration across all four lanes.
func TestTracedSyncRecordsPhases(t *testing.T) {
	tr := obs.NewTracer(0)
	const iters = 10
	core.TrainSync(goldenProblem(), core.Config{
		Groups: 1, WorkersPerGroup: 4, GroupBatch: 16, Iterations: iters,
		Solver: opt.NewAdam(2e-3), Seed: 5, Trace: tr})

	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("got %d lanes, want 4 (w0..w3): %+v", len(snap), laneNames(snap))
	}
	for _, ls := range snap {
		var counts [obs.NumPhases]int
		maxIter := int32(-1)
		for _, s := range ls.Spans {
			counts[s.Phase]++
			if s.Iter > maxIter {
				maxIter = s.Iter
			}
			if s.Dur() < 0 {
				t.Errorf("%s: negative span %+v", ls.Name, s)
			}
		}
		for _, ph := range []obs.Phase{obs.PhaseIngest, obs.PhaseFwd, obs.PhaseBwd, obs.PhaseCommWait, obs.PhaseOptApply} {
			if counts[ph] != iters {
				t.Errorf("%s: %d %s spans, want %d", ls.Name, counts[ph], ph, iters)
			}
		}
		if maxIter != iters-1 {
			t.Errorf("%s: max iter tag %d, want %d", ls.Name, maxIter, iters-1)
		}
	}
	rep := obs.Stragglers(snap)
	if len(rep.Iters) != iters {
		t.Fatalf("straggler report covers %d iters, want %d", len(rep.Iters), iters)
	}
	for _, it := range rep.Iters {
		if it.Lanes != 4 {
			t.Errorf("iter %d: %d lanes in skew, want 4", it.Iter, it.Lanes)
		}
		if it.Skew < 0 || it.Max < it.Min {
			t.Errorf("iter %d: inconsistent stats %+v", it.Iter, it)
		}
	}
}

// TestTracedPrefetchShowsIngestLanes: with the pipeline on, each worker
// gains a ".ingest" sibling lane carrying the prefetcher's staging spans,
// while the worker lane's own Ingest spans shrink to the exposed wait.
func TestTracedPrefetchShowsIngestLanes(t *testing.T) {
	tr := obs.NewTracer(0)
	core.TrainSync(goldenProblem(), core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5, Prefetch: 2, Trace: tr})
	snap := tr.Snapshot()
	names := map[string]bool{}
	for _, ls := range snap {
		names[ls.Name] = true
	}
	for _, want := range []string{"w0", "w1", "w0.ingest", "w1.ingest"} {
		if !names[want] {
			t.Errorf("missing lane %q (have %v)", want, laneNames(snap))
		}
	}
	// The staging work happened on the ingest lanes.
	isIngest := func(p obs.Phase) bool { return p == obs.PhaseIngest }
	var stagingLanes []obs.LaneSpans
	for _, ls := range snap {
		if len(ls.Name) > 7 && ls.Name[len(ls.Name)-7:] == ".ingest" {
			stagingLanes = append(stagingLanes, ls)
		}
	}
	if got := obs.CoveredSeconds(stagingLanes, isIngest); got <= 0 {
		t.Errorf("no staging time recorded on ingest lanes")
	}
}

func laneNames(snap []obs.LaneSpans) []string {
	out := make([]string, len(snap))
	for i, ls := range snap {
		out[i] = ls.Name
	}
	return out
}
