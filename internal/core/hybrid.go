package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"deep15pf/internal/comm"
	"deep15pf/internal/data"
	"deep15pf/internal/ps"
)

// TrainHybrid runs the paper's hybrid architecture with real concurrency:
// cfg.Groups compute groups, each of cfg.WorkersPerGroup goroutine workers.
// Within a group gradients are all-reduced synchronously; the group root
// then exchanges each layer with its dedicated parameter server (ps.Fleet)
// and broadcasts the fresh model back to its group (§III-E, Figs 2–4).
// Groups never synchronise with each other — asynchrony and staleness are
// real, produced by goroutine scheduling.
func TrainHybrid(p Problem, cfg Config) Result {
	cfg.validate()

	// The PS fleet owns the master model: one server per trainable layer,
	// initialised from a template replica, solver state server-side.
	template := p.NewReplica()
	fleet := ps.NewFleet(template.TrainableLayers(), cfg.Solver)

	var seq atomic.Int64
	type rec struct {
		stat IterStat
	}
	recCh := make(chan rec, cfg.Groups*cfg.Iterations)

	var wg sync.WaitGroup
	for g := 0; g < cfg.Groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			runGroup(p, cfg, g, fleet, func(stat IterStat) {
				stat.Seq = int(seq.Add(1)) - 1
				recCh <- rec{stat}
			})
		}(g)
	}
	wg.Wait()
	close(recCh)

	stats := make([]IterStat, 0, cfg.Groups*cfg.Iterations)
	for r := range recCh {
		stats = append(stats, r.stat)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Seq < stats[j].Seq })
	res := finalize(stats, cfg.Groups)
	res.FinalWeights = fleetWeights(fleet)
	return res
}

// fleetWeights snapshots the PS masters (the trained model).
func fleetWeights(fleet *ps.Fleet) [][][]float32 {
	out := make([][][]float32, len(fleet.Servers))
	for i, s := range fleet.Servers {
		out[i] = s.Weights()
	}
	return out
}

// runGroup executes one compute group's synchronous inner loop and its
// asynchronous PS exchanges. record is called once per completed iteration
// with the group-batch mean loss and staleness.
func runGroup(p Problem, cfg Config, g int, fleet *ps.Fleet, record func(IterStat)) {
	w := cfg.WorkersPerGroup
	src := p.NewBatchSource(cfg.Seed + uint64(g)*0x9E37)
	batches := make([][]int, cfg.Iterations)
	for i := range batches {
		batches[i] = append([]int(nil), src.Next(cfg.GroupBatch)...)
	}

	replicas := make([]Replica, w)
	for r := range replicas {
		replicas[r] = p.NewReplica()
	}
	group := comm.NewGroup(w)

	var wg sync.WaitGroup
	for rank := 0; rank < w; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rep := replicas[rank]
			layers := rep.TrainableLayers()

			// Initial model fetch: the root reads the master, everyone
			// installs it so the group starts on the PS state.
			if rank == 0 {
				resps := fleet.FetchAll(g)
				weights := make([][][]float32, len(resps))
				for i, r := range resps {
					weights[i] = r.Weights
				}
				installWeights(layers, weights)
			}
			group.Barrier()
			for _, l := range layers {
				for _, prm := range l.Params() {
					group.Broadcast(rank, 0, prm.W.Data)
				}
			}

			for it := 0; it < cfg.Iterations; it++ {
				shard := data.Split(len(batches[it]), w)[rank]
				idx := batches[it][shard[0]:shard[1]]
				rep.ZeroGrad()
				loss := rep.ComputeGradients(idx)
				for _, l := range layers {
					for _, prm := range l.Params() {
						group.AllReduceMean(rank, prm.Grad.Data)
					}
				}
				lossAll := group.Gather(rank, 0, loss)

				// Root ↔ per-layer parameter servers (asynchronous with
				// respect to every other group).
				if rank == 0 {
					resps := fleet.UpdateAll(g, layerGrads(layers))
					weights := make([][][]float32, len(resps))
					var stale float64
					for i, r := range resps {
						weights[i] = r.Weights
						stale += float64(r.Staleness)
					}
					installWeights(layers, weights)
					var lossSum float64
					for _, v := range lossAll {
						lossSum += v
					}
					record(IterStat{
						Group:     g,
						Iter:      it,
						Loss:      lossSum / float64(len(lossAll)),
						Staleness: stale / float64(len(resps)),
					})
				}
				// Broadcast the fresh model to the group.
				for _, l := range layers {
					for _, prm := range l.Params() {
						group.Broadcast(rank, 0, prm.W.Data)
					}
				}
			}
		}(rank)
	}
	wg.Wait()
}
