package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"deep15pf/internal/comm"
	"deep15pf/internal/data"
	"deep15pf/internal/obs"
	"deep15pf/internal/ps"
)

// TrainHybrid runs the paper's hybrid architecture with real concurrency:
// cfg.Groups compute groups, each of cfg.WorkersPerGroup goroutine workers.
// Within a group gradients are all-reduced synchronously; the group root
// exchanges each layer with its dedicated parameter server (ps.Fleet)
// through the wire codec and broadcasts the fresh model back to its group
// (§III-E, Figs 2–4). Groups never synchronise with each other — asynchrony
// and staleness are real, produced by goroutine scheduling.
//
// With cfg.Overlap the per-layer exchange is pipelined with the backward
// pass: layer L+1's reduction and PS push run while layer L's backward is
// still executing, the §III-D/E overlap that keeps communication off the
// critical path. With Overlap off and the fp32 codec the update arithmetic
// is bitwise identical to the fully serialized original.
//
// With cfg.Checkpoint, group 0's root snapshots the PS fleet (master
// weights + per-shard solver state) at its iteration boundaries. On
// asynchronous (multi-group) runs the snapshot is per-layer consistent —
// the same consistency the fleet itself ever has; on the deterministic
// single-group configuration it is a clean point between updates, which
// is what makes resume bit-exact there.
func TrainHybrid(p Problem, cfg Config) Result {
	cfg.validate()

	// The PS fleet owns the master model: one server per trainable layer
	// (sharded by flat-parameter range above cfg.PSShardElems), initialised
	// from a template replica, solver state server-side. On resume the
	// snapshot weights land in the template first (so the fleet masters
	// start from them), then the per-shard solver state restores on top.
	template := p.NewReplica()
	layers := template.TrainableLayers()
	start := 0
	restored := resumeInto(cfg, flatParams(layers))
	fleet := ps.NewShardedFleet(layers, cfg.Solver, cfg.PSShardElems)
	if restored != nil {
		start = restored.Manifest.Step
		checkResumeStep(start, cfg.Iterations)
		if restored.Servers != nil {
			weights := layerWeightViews(layers)
			if err := fleet.RestoreSnapshot(weights, restored.Servers); err != nil {
				panic("core: resume: " + err.Error())
			}
		}
	}
	ck := newCheckpointer(cfg, layers, fleet)

	var seq atomic.Int64
	type rec struct {
		stat IterStat
	}
	recCh := make(chan rec, cfg.Groups*(cfg.Iterations-start))

	var wg sync.WaitGroup
	ingests := make([]data.IngestStats, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ingests[g] = runGroup(p, cfg, g, start, fleet, ck, func(stat IterStat) {
				stat.Seq = int(seq.Add(1)) - 1
				recCh <- rec{stat}
			})
		}(g)
	}
	wg.Wait()
	close(recCh)

	stats := make([]IterStat, 0, cfg.Groups*(cfg.Iterations-start))
	for r := range recCh {
		stats = append(stats, r.stat)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Seq < stats[j].Seq })
	res := finalize(stats, cfg.Groups)
	res.FinalWeights = fleetWeights(fleet)
	res.Wire = fleet.WireStats()
	for _, ing := range ingests {
		res.Ingest = res.Ingest.Add(ing)
	}
	res.Ckpt = ck.close()
	return res
}

// fleetWeights snapshots the PS masters (the trained model).
func fleetWeights(fleet *ps.Fleet) [][][]float32 {
	out := make([][][]float32, len(fleet.Servers))
	for i, s := range fleet.Servers {
		out[i] = s.Weights()
	}
	return out
}

// runGroup executes one compute group's synchronous inner loop and its
// asynchronous PS exchanges, starting at group-local iteration `start`
// (non-zero when resuming). record is called once per completed iteration
// with the group-batch mean loss and staleness; the return value is the
// group's aggregated input-staging account.
func runGroup(p Problem, cfg Config, g, start int, fleet *ps.Fleet, ck *checkpointer, record func(IterStat)) data.IngestStats {
	w := cfg.WorkersPerGroup
	src := p.NewBatchSource(cfg.Seed + uint64(g)*0x9E37)
	batches := make([][]int, cfg.Iterations)
	for i := range batches {
		batches[i] = append([]int(nil), src.Next(cfg.GroupBatch)...)
	}

	replicas := make([]Replica, w)
	for r := range replicas {
		replicas[r] = p.NewReplica()
	}
	group := comm.NewGroup(w)

	var wg sync.WaitGroup
	for rank := 0; rank < w; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rep := replicas[rank]
			gw := newGroupWorker(rank, group, rep, nil, cfg.Overlap)
			gw.setLane(cfg.Trace.Lane(fmt.Sprintf("g%d.w%d", g, rank)))
			gw.pipe = startIngest(rep, batches[start:], rank, w, cfg.Prefetch)
			if gw.pipe != nil {
				defer gw.pipe.StopIngest()
			}
			if rank == 0 {
				// The exchanger waits on the worker's own handle table: the
				// worker fills row t, then the trigger send publishes it.
				gw.ex = newExchanger(fleet, g, gw.layers, gw.handles, cfg.Codec, cfg.Seed)
				defer gw.ex.close()
			}

			// Initial model fetch: the root reads the master, everyone
			// installs it so the group starts on the PS state.
			if rank == 0 {
				resps := fleet.FetchAll(g)
				weights := make([][][]float32, len(resps))
				for i, r := range resps {
					weights[i] = r.Weights
				}
				installWeights(gw.layers, weights)
			}
			group.Barrier()
			gw.broadcastWeights()

			shards := shardCache{rank: rank, workers: w}
			for it := start; it < cfg.Iterations; it++ {
				gw.lane.SetIter(it)
				lo, hi := shards.shard(len(batches[it]))
				idx := batches[it][lo:hi]
				rep.ZeroGrad()
				loss := gw.compute(idx)
				lossAll := group.GatherInto(rank, 0, loss, gw.lossBuf)

				// Root ↔ per-layer parameter servers (asynchronous with
				// respect to every other group): wait out the in-flight
				// pushes, which land the fresh model directly in the root
				// replica's parameters.
				if rank == 0 {
					gw.lane.Begin(obs.PhaseCommWait)
					stale := gw.ex.await()
					gw.lane.End(obs.PhaseCommWait)
					var lossSum float64
					for _, v := range lossAll {
						lossSum += v
					}
					record(IterStat{
						Group:     g,
						Iter:      it,
						Loss:      lossSum / float64(len(lossAll)),
						Staleness: stale,
					})
					// Group 0's root paces the snapshots; with one group
					// (the deterministic config) every push has completed,
					// so the fleet is exactly the post-iteration state.
					if g == 0 && ck.due(it+1) {
						gw.lane.Begin(obs.PhaseCkptStage)
						ck.fleetSnapshot(it+1, nil, nil)
						gw.lane.End(obs.PhaseCkptStage)
					}
				}
				// Broadcast the fresh model to the group (an exposed
				// collective wait on every rank).
				gw.lane.Begin(obs.PhaseCommWait)
				gw.broadcastWeights()
				gw.lane.End(obs.PhaseCommWait)
			}
		}(rank)
	}
	wg.Wait()
	var ing data.IngestStats
	for _, rep := range replicas {
		ing = ing.Add(ingestOf(rep))
	}
	return ing
}
