// Package core implements the paper's primary contribution (§III-E): the
// hybrid distributed training architecture. Workers form compute groups;
// within a group data-parallel workers synchronise gradients with
// all-reduce; across groups updates flow asynchronously through dedicated
// per-layer parameter servers. The group count is the knob that trades
// statistical efficiency (staleness) against hardware efficiency
// (stragglers, small-batch throughput), tuned jointly with momentum per
// Mitliagkas et al. (the paper's [31]).
//
// Three execution modes are provided:
//
//   - TrainSync: fully synchronous data parallelism (1 logical group, no
//     parameter servers) — the paper's baseline configuration;
//   - TrainHybrid: G groups × W workers as real goroutines against real
//     ps.Fleet servers (asynchrony from actual concurrency);
//   - TrainScheduled: the same group-level update sequence executed in an
//     externally supplied completion order — used to couple real SGD
//     dynamics to the cluster simulator's timeline for the Fig 8
//     time-to-train study.
package core

import (
	"fmt"

	"deep15pf/internal/ckpt"
	"deep15pf/internal/comm"
	"deep15pf/internal/data"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/opt"
	"deep15pf/internal/ps"
)

// Replica is one worker's complete training state: a model plus whatever
// data access it needs to compute gradients on sample indices.
//
// Implementations compile per-batch-size execution plans (nn.Plan) on
// first use, so after the first iteration ComputeGradients runs with zero
// steady-state allocation. The trainers uphold the matching contract:
// shard sizes are fixed for a whole run (batches split evenly over
// workers), so a replica compiles exactly one plan and every subsequent
// iteration reuses it.
type Replica interface {
	// TrainableLayers returns the parameterised layers in a fixed order
	// (the per-layer PS pairing).
	TrainableLayers() []nn.Layer
	// ZeroGrad clears gradient accumulators.
	ZeroGrad()
	// ComputeGradients runs forward/backward over the dataset samples
	// idx, accumulating *mean* gradients (normalised by len(idx)) into
	// the layer parameters, and returns the mean loss.
	ComputeGradients(idx []int) float64
}

// StreamReplica is a Replica whose backward pass reports per-layer gradient
// completion: gradDone(t) fires on the computing goroutine the moment
// trainable layer t's accumulated gradients are final (layers finish in
// reverse topological order). The overlapped trainer uses the callback to
// start layer t's all-reduce and parameter-server exchange while the rest
// of the backward pass is still running — the paper's §III-E pipeline.
// Replicas that do not implement it still train; core falls back to
// notifying every layer after the whole backward pass.
type StreamReplica interface {
	Replica
	// ComputeGradientsStream is ComputeGradients plus the per-layer
	// completion callback. gradDone may be nil.
	ComputeGradientsStream(idx []int, gradDone func(layer int)) float64
}

// PipelineReplica is a StreamReplica whose batch staging can run ahead of
// compute through a data.Pipeline: StartIngest launches a background
// prefetch goroutine that stages the given batch index sequence (in order,
// skipping empty shards) into a bounded slot ring, and ComputeStagedStream
// consumes the next staged batch instead of copying at iteration start —
// the §VI-A input-pipeline overlap that takes ingest off the critical path
// the way PR 3's streamed exchange took communication off it.
//
// Determinism contract: prefetched staging is the same copy in the same
// order as the blocking path, so with identical batch sequences the weight
// trajectories are bitwise identical either way.
type PipelineReplica interface {
	StreamReplica
	// StartIngest begins background staging of batches with the given
	// lookahead (staged batches ahead of the one training; ring size is
	// lookahead+1). Index sets are consumed strictly in slice order; empty
	// sets are skipped, and the consumer must skip them symmetrically.
	StartIngest(batches [][]int, lookahead int)
	// ComputeStagedStream is ComputeGradientsStream over the next staged
	// batch. It panics if the pipeline is exhausted or staging failed —
	// the trainers size the sequence to the run, so that is a bug or an
	// I/O fault, never a steady state.
	ComputeStagedStream(gradDone func(layer int)) float64
	// StopIngest terminates the prefetcher (ingest stats stay readable).
	StopIngest()
}

// IngestReporter exposes a replica's input staging account — real for both
// paths: the blocking path books every staging second as exposed wait, the
// pipeline books only the time the consumer actually sat blocked.
type IngestReporter interface {
	IngestStats() data.IngestStats
}

// TracedReplica is a Replica that records its own phase spans (Ingest,
// Fwd, Bwd) on a per-worker trace lane. The trainers hand each replica
// its rank's lane before training starts; replicas without the method
// still train, they just leave those phases blank in the timeline.
type TracedReplica interface {
	SetTraceLane(l *obs.Lane)
}

// BatchSource yields batch index sets (typically epoch-shuffled).
type BatchSource interface {
	Next(size int) []int
}

// Problem binds a model family to a dataset.
type Problem interface {
	// NewReplica builds a model replica. Every call must produce an
	// identically initialised model (replicas start in lockstep).
	NewReplica() Replica
	// NewBatchSource returns an independent index stream; distinct seeds
	// give distinct streams.
	NewBatchSource(seed uint64) BatchSource
}

// Config parameterises a training run.
type Config struct {
	Groups          int // compute groups (1 = synchronous)
	WorkersPerGroup int // data-parallel workers within each group
	GroupBatch      int // samples per group per iteration
	Iterations      int // iterations per group
	Solver          opt.Solver
	Seed            uint64

	// Overlap pipelines the per-layer gradient exchange with the backward
	// pass (§III-D/E): each layer's all-reduce and parameter-server push
	// start the moment its gradients are final, while deeper layers are
	// still computing. Off = the lockstep schedule (whole backward, then
	// exchange), which with the fp32 codec is bitwise identical to the
	// pre-overlap trainer.
	Overlap bool
	// Codec selects the PS wire format: "" or "fp32" for identity, "int8"
	// for stochastic-rounding int8 with per-chunk scales (~4x less gradient
	// traffic). Intra-group all-reduce always stays fp32.
	Codec string
	// PSShardElems splits parameter-server layers larger than this many
	// elements across flat-range solver shards (0 = unsharded).
	PSShardElems int

	// Prefetch enables the streaming input pipeline: each worker replica
	// stages its upcoming shard batches on a background goroutine while the
	// current batch trains, keeping Prefetch batches of lookahead (1 = the
	// classic double buffer). 0 — the default — is the legacy blocking
	// path: stage at iteration start, then compute. Replicas that do not
	// implement PipelineReplica fall back to blocking regardless. The
	// weight trajectory is bitwise identical either way.
	Prefetch int

	// Checkpoint wires the run to a versioned snapshot store: periodic
	// (optionally asynchronous) snapshots of weights + optimizer state +
	// progress cursors, and bit-exact resume from the newest one. The zero
	// value disables both.
	Checkpoint CheckpointConfig

	// Trace attaches the run to a phase tracer: every worker records
	// Ingest/Fwd/Bwd/CommWait/OptApply/CkptStage spans on its own lane
	// (sync ranks "w<r>", hybrid "g<g>.w<r>", scheduled "g<g>"), exportable
	// as a Chrome trace timeline. nil — the default — records nothing and
	// costs one branch per span site; tracing never changes the trajectory.
	Trace *obs.Tracer
}

func (c Config) validate() {
	if c.Groups < 1 || c.WorkersPerGroup < 1 {
		panic(fmt.Sprintf("core: invalid groups=%d workers=%d", c.Groups, c.WorkersPerGroup))
	}
	if c.GroupBatch < 1 || c.GroupBatch%c.WorkersPerGroup != 0 {
		panic(fmt.Sprintf("core: group batch %d must divide evenly over %d workers", c.GroupBatch, c.WorkersPerGroup))
	}
	if c.Iterations < 1 {
		panic("core: iterations must be positive")
	}
	if c.Solver == nil {
		panic("core: solver required")
	}
	if c.Prefetch < 0 {
		panic("core: negative prefetch lookahead")
	}
	if _, err := comm.NewCodec(c.Codec, 0); err != nil {
		panic("core: " + err.Error())
	}
	c.Checkpoint.validate()
}

// IterStat records one completed group iteration.
type IterStat struct {
	Seq       int     // global completion order
	Group     int     // owning group
	Iter      int     // group-local iteration index
	Loss      float64 // mean loss over the group batch
	Staleness float64 // mean PS staleness across layers (0 for sync)
	Time      float64 // simulated completion time (TrainScheduled only)
}

// Result summarises a run.
type Result struct {
	Stats         []IterStat
	MeanStaleness float64
	FinalLoss     float64 // mean loss over the last completed round of groups
	// FinalWeights is the trained model: per trainable layer, per
	// parameter blob (the PS master for hybrid runs, the lockstep replica
	// state for sync runs). Install into a fresh replica with
	// InstallWeights for evaluation.
	FinalWeights [][][]float32
	// Wire accounts the parameter-server traffic a real interconnect would
	// have moved: codec-encoded gradients in, fp32 weights out. Zero for
	// sync runs (no PS involved).
	Wire ps.WireStats
	// Ingest accounts input staging across all replicas: total staging time
	// versus the part the compute loop actually waited on (exposed I/O).
	// With Config.Prefetch the wait collapses toward zero while the staging
	// work stays put — the Fig 5 ingest A/B in one pair of numbers.
	Ingest data.IngestStats
	// Ckpt accounts the run's snapshots: staging time versus background
	// write time versus the stall the training loop actually saw — the
	// output-I/O mirror of Ingest. Zero when checkpointing is off.
	Ckpt ckpt.Stats
}

// PublishMetrics merges the run's accounts into a metrics registry: the
// wire, ingest and checkpoint adapters plus top-line training gauges
// ("train.iters", "train.final_loss", "train.mean_staleness"). One call
// per completed run; counts add across runs, gauges carry the latest.
// A nil registry is a no-op.
func (r Result) PublishMetrics(reg *obs.Registry) {
	r.Wire.Publish(reg)
	r.Ingest.Publish(reg)
	r.Ckpt.Publish(reg)
	reg.Counter("train.iters").Add(int64(len(r.Stats)))
	reg.Gauge("train.final_loss").Set(r.FinalLoss)
	reg.Gauge("train.mean_staleness").Set(r.MeanStaleness)
}

// ExtractWeights copies a layer set's current parameter values into the
// Result.FinalWeights wire format.
func ExtractWeights(layers []nn.Layer) [][][]float32 {
	out := make([][][]float32, len(layers))
	for i, l := range layers {
		for _, p := range l.Params() {
			out[i] = append(out[i], append([]float32(nil), p.W.Data...))
		}
	}
	return out
}

// InstallWeights loads trained weights into a replica (e.g. a fresh one
// built for evaluation).
func InstallWeights(rep Replica, weights [][][]float32) {
	installWeights(rep.TrainableLayers(), weights)
}

func finalize(stats []IterStat, groups int) Result {
	res := Result{Stats: stats}
	var staleSum float64
	for _, s := range stats {
		staleSum += s.Staleness
	}
	if len(stats) > 0 {
		res.MeanStaleness = staleSum / float64(len(stats))
		tail := groups
		if tail > len(stats) {
			tail = len(stats)
		}
		var lossSum float64
		for _, s := range stats[len(stats)-tail:] {
			lossSum += s.Loss
		}
		res.FinalLoss = lossSum / float64(tail)
	}
	return res
}

// installWeights copies parameter-server weight blobs into a replica.
func installWeights(layers []nn.Layer, weights [][][]float32) {
	if len(weights) != len(layers) {
		panic("core: weight set count mismatch")
	}
	for i, l := range layers {
		params := l.Params()
		if len(weights[i]) != len(params) {
			panic("core: weight blob count mismatch")
		}
		for j, p := range params {
			copy(p.W.Data, weights[i][j])
		}
	}
}
