package core

import (
	"sync"

	"deep15pf/internal/comm"
	"deep15pf/internal/data"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/ps"
)

// layerXfer is one trainable layer's exchange state on a group root: the
// reusable wire buffers, the per-layer codec instance (stochastic-rounding
// RNG state is not goroutine-safe, so each pusher owns its own), and the
// weight views the parameter server writes fresh weights straight into —
// they alias the root replica's parameter storage, so a completed push IS
// the install, no copy.
type layerXfer struct {
	params  []*nn.Param
	codec   comm.Codec
	wires   []*comm.Wire
	weights [][]float32
	stale   int
	trigger chan struct{}
}

// newLayerXfer builds one layer's wire state: the per-layer codec (seeded
// per group and layer so int8 rounding streams are independent), reusable
// wire buffers, and weight views aliasing the owning replica's parameter
// storage. Shared by the concurrent exchanger and the scheduled trainer so
// the two cannot drift.
func newLayerXfer(params []*nn.Param, codecName string, runSeed uint64, group, layer int) *layerXfer {
	codec, err := comm.NewCodec(codecName, runSeed+uint64(group)*0xC0DEC+uint64(layer)*0x9E3779B9)
	if err != nil {
		panic("core: " + err.Error())
	}
	x := &layerXfer{
		params:  params,
		codec:   codec,
		wires:   make([]*comm.Wire, len(params)),
		weights: make([][]float32, len(params)),
		trigger: make(chan struct{}, 1),
	}
	for i, prm := range params {
		x.wires[i] = &comm.Wire{}
		x.weights[i] = prm.W.Data
	}
	return x
}

// exchanger drives a group root's parameter-server traffic from one
// dedicated pusher goroutine per trainable layer — the paper's Fig 4
// arrangement made concurrent. The root's backward pass triggers layer t's
// pusher the moment t's gradients are final; the pusher waits for the
// intra-group reduction, encodes through the wire codec, exchanges with
// layer t's dedicated server and lands the fresh weights, all while the
// backward pass is still producing earlier layers. Everything it touches
// per iteration — handles, wires, weight views — is preallocated, so the
// steady state allocates nothing.
type exchanger struct {
	fleet   *ps.Fleet
	groupID int
	xfers   []*layerXfer
	handles [][]comm.Handle // shared with the root worker, synchronised by trigger
	done    chan int
	wg      sync.WaitGroup
}

// newExchanger builds the per-layer pushers for a group root. handles is
// the root worker's per-layer handle table: the worker fills row t before
// triggering pusher t (the channel send publishes the writes).
func newExchanger(fleet *ps.Fleet, groupID int, layers []nn.Layer, handles [][]comm.Handle, codecName string, runSeed uint64) *exchanger {
	e := &exchanger{
		fleet:   fleet,
		groupID: groupID,
		handles: handles,
		done:    make(chan int, len(layers)),
	}
	for t, l := range layers {
		e.xfers = append(e.xfers, newLayerXfer(l.Params(), codecName, runSeed, groupID, t))
	}
	e.start()
	return e
}

func (e *exchanger) start() {
	for t := range e.xfers {
		e.wg.Add(1)
		go func(t int) {
			defer e.wg.Done()
			x := e.xfers[t]
			for range x.trigger {
				// The intra-group reduction must land before the encode
				// reads the gradients.
				for i := range e.handles[t] {
					e.handles[t][i].Wait()
				}
				for i, prm := range x.params {
					x.codec.Encode(x.wires[i], prm.Grad.Data)
				}
				res := e.fleet.PushWires(e.groupID, t, x.codec, x.wires, x.weights)
				x.stale = res.Staleness
				e.done <- t
			}
		}(t)
	}
}

// push hands layer t to its pusher. Called from the root's compute
// goroutine right after it has filled handles[t].
func (e *exchanger) push(t int) { e.xfers[t].trigger <- struct{}{} }

// await blocks until every layer's push of the current iteration has
// completed and returns the mean staleness across layers.
func (e *exchanger) await() float64 {
	var sum float64
	for i := 0; i < len(e.xfers); i++ {
		t := <-e.done
		sum += float64(e.xfers[t].stale)
	}
	return sum / float64(len(e.xfers))
}

// close stops the pushers. The exchanger must not be used afterwards.
func (e *exchanger) close() {
	for _, x := range e.xfers {
		close(x.trigger)
	}
	e.wg.Wait()
}

// groupWorker is one rank's steady-state training machinery: the replica,
// the cached per-layer parameter slices, the async-reduction handle table
// and — on rank 0 — the exchanger. Building it once per run is what makes
// iterations allocation-free.
type groupWorker struct {
	rank    int
	group   *comm.Group
	rep     Replica
	layers  []nn.Layer
	lparams [][]*nn.Param
	handles [][]comm.Handle
	ex      *exchanger      // rank 0 only; nil for sync training
	pipe    PipelineReplica // non-nil when this rank's ingest is prefetched
	overlap bool
	notify  func(layer int) // prebuilt gradDone closure
	lossBuf []float64       // rank 0 only
	lane    *obs.Lane       // this rank's trace lane (nil = untraced)
}

// setLane attaches this rank's trace lane and hands it to the replica so
// it can record its own Ingest/Fwd/Bwd spans. Called once at setup.
func (gw *groupWorker) setLane(l *obs.Lane) {
	gw.lane = l
	if tr, ok := gw.rep.(TracedReplica); ok {
		tr.SetTraceLane(l)
	}
}

func newGroupWorker(rank int, group *comm.Group, rep Replica, ex *exchanger, overlap bool) *groupWorker {
	gw := &groupWorker{
		rank:    rank,
		group:   group,
		rep:     rep,
		layers:  rep.TrainableLayers(),
		ex:      ex,
		overlap: overlap,
	}
	for _, l := range gw.layers {
		params := l.Params()
		gw.lparams = append(gw.lparams, params)
		gw.handles = append(gw.handles, make([]comm.Handle, len(params)))
	}
	if rank == 0 {
		gw.lossBuf = make([]float64, group.Size())
	}
	gw.notify = func(t int) {
		for i, prm := range gw.lparams[t] {
			gw.handles[t][i] = gw.group.AllReduceMeanAsync(gw.rank, prm.Grad.Data)
		}
		if gw.ex != nil {
			gw.ex.push(t)
		}
	}
	return gw
}

// compute runs one forward/backward over idx with the group-mean reduction
// of every layer's gradients in flight: overlapped with the backward pass
// when cfg.Overlap is set, issued en bloc after it otherwise (the lockstep
// schedule, same arithmetic). With a prefetched pipeline attached the batch
// comes pre-staged (idx then only identifies the iteration's shard — the
// pipeline staged the same indices in the same order). On return, the
// root's layers are being exchanged by the pushers; non-root ranks have
// fully reduced gradients.
//
// An empty idx is an epoch-tail shard with zero samples (data.Split with
// more workers than samples): the rank skips staging and compute entirely —
// never compiling a zero-sample plan — but still joins every collective
// with its zeroed gradients so the group stays in lockstep.
func (gw *groupWorker) compute(idx []int) float64 {
	var loss float64
	switch {
	case len(idx) == 0:
		for t := len(gw.layers) - 1; t >= 0; t-- {
			gw.notify(t)
		}
	case gw.pipe != nil && gw.overlap:
		loss = gw.pipe.ComputeStagedStream(gw.notify)
	case gw.pipe != nil:
		loss = gw.pipe.ComputeStagedStream(nil)
		for t := len(gw.layers) - 1; t >= 0; t-- {
			gw.notify(t)
		}
	case gw.overlap:
		loss = computeStream(gw.rep, len(gw.layers), idx, gw.notify)
	default:
		loss = gw.rep.ComputeGradients(idx)
		for t := len(gw.layers) - 1; t >= 0; t-- {
			gw.notify(t)
		}
	}
	// Non-root ranks must not touch their gradient buffers (next ZeroGrad)
	// until the reductions land; the root's pushers wait on its behalf.
	if gw.ex == nil {
		gw.lane.Begin(obs.PhaseCommWait)
		for t := range gw.handles {
			for i := range gw.handles[t] {
				gw.handles[t][i].Wait()
			}
		}
		gw.lane.End(obs.PhaseCommWait)
	}
	return loss
}

// computeStream runs the streamed backward when the replica supports it and
// degrades to whole-backward-then-notify otherwise (same notification
// order, no overlap).
func computeStream(rep Replica, nLayers int, idx []int, gradDone func(layer int)) float64 {
	if sr, ok := rep.(StreamReplica); ok {
		return sr.ComputeGradientsStream(idx, gradDone)
	}
	loss := rep.ComputeGradients(idx)
	for t := nLayers - 1; t >= 0; t-- {
		gradDone(t)
	}
	return loss
}

// shardCache yields this rank's [lo,hi) share of an n-sample batch.
// Batch sizes are fixed for a run except at epoch boundaries, where the
// batcher emits a short tail batch as-is — the cache recomputes the split
// only when n changes, keeping the steady state allocation-free while
// still handling datasets that do not divide evenly into group batches.
type shardCache struct {
	rank, workers int
	n, lo, hi     int
}

func (s *shardCache) shard(n int) (lo, hi int) {
	if n != s.n {
		sp := data.Split(n, s.workers)[s.rank]
		s.n, s.lo, s.hi = n, sp[0], sp[1]
	}
	return s.lo, s.hi
}

// startIngest launches rank's prefetch pipeline over its per-iteration
// shard shares of the pre-drawn group batches: the exact index sets the
// blocking path would stage at each iteration start, in the exact order.
// Returns nil when prefetch is off or the replica has no pipeline support
// (the blocking fallback — older Replica implementations keep working).
func startIngest(rep Replica, batches [][]int, rank, workers, lookahead int) PipelineReplica {
	if lookahead <= 0 {
		return nil
	}
	pr, ok := rep.(PipelineReplica)
	if !ok {
		return nil
	}
	seq := make([][]int, len(batches))
	sc := shardCache{rank: rank, workers: workers}
	for it, b := range batches {
		lo, hi := sc.shard(len(b))
		seq[it] = b[lo:hi]
	}
	pr.StartIngest(seq, lookahead)
	return pr
}

// ingestOf reads a replica's staging account (zero when not reported).
func ingestOf(rep Replica) data.IngestStats {
	if ir, ok := rep.(IngestReporter); ok {
		return ir.IngestStats()
	}
	return data.IngestStats{}
}

// broadcastWeights fans the root's (freshly exchanged) model out to the
// group.
func (gw *groupWorker) broadcastWeights() {
	for _, params := range gw.lparams {
		for _, prm := range params {
			gw.group.Broadcast(gw.rank, 0, prm.W.Data)
		}
	}
}
