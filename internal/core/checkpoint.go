package core

import (
	"fmt"
	"time"

	"deep15pf/internal/ckpt"
	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
	"deep15pf/internal/ps"
)

// CheckpointConfig wires the trainers to a ckpt.Store. The paper books
// checkpointing directly into its sustained rate (one snapshot per 10
// iterations for climate, §V); with Async the snapshot is staged into a
// recycled buffer at the iteration boundary and flushed by a background
// writer while compute continues — the PR 3/4 overlap idiom applied to
// output I/O — so only the staging copy stays on the critical path.
type CheckpointConfig struct {
	// Dir is the checkpoint store directory. Required when Every > 0 or
	// Resume is set.
	Dir string
	// Every snapshots after every Every-th completed iteration (group-0
	// iterations for the concurrent trainers, schedule updates for the
	// scheduled one). 0 disables checkpointing.
	Every int
	// Async flushes snapshots on a background writer (double-buffered
	// staging); off, the whole write sits on the critical path.
	Async bool
	// Keep prunes the store to the newest Keep versions after each write
	// (0 = keep everything).
	Keep int
	// Arch names the architecture in the manifest so the serving side can
	// refuse a checkpoint from the wrong model family. Optional.
	Arch string
	// Problem names the workload (hep/climate/astro) in the manifest so the
	// serving side can refuse a checkpoint from the wrong science problem
	// even when architectures coincide. Optional.
	Problem string
	// SamplesPerEpoch, when set, lets the manifest carry an epoch number
	// (completed dataset passes) alongside the step.
	SamplesPerEpoch int
	// Resume restores the newest snapshot in Dir before training and
	// continues from its step. An empty store starts fresh (so one flag
	// serves both the first run and every restart). Resume is bit-exact
	// for the deterministic configurations the golden tests pin — fp32
	// wire, sync or single-group hybrid or scheduled runs — because the
	// snapshot carries optimizer state and the batch-stream cursor, and
	// batch RNG streams are replayed to the resume point.
	Resume bool
}

func (c CheckpointConfig) enabled() bool { return c.Every > 0 }

func (c CheckpointConfig) validate() {
	if c.Every < 0 {
		panic("core: negative checkpoint interval")
	}
	if c.Every > 0 && c.Dir == "" {
		panic("core: Checkpoint.Every set without Checkpoint.Dir")
	}
	if c.Resume && c.Dir == "" {
		panic("core: Checkpoint.Resume set without Checkpoint.Dir")
	}
}

// checkpointer drives a training run's snapshots: recycled staging buffers
// (two — the classic double buffer) feed a ckpt.Writer. It stages either
// from a worker replica's parameters plus its solver (sync mode) or from
// the PS fleet (hybrid/scheduled mode).
type checkpointer struct {
	cfg    CheckpointConfig
	groups int // concurrent groups (epoch arithmetic)
	batch  int // samples per iteration per group

	store  *ckpt.Store
	writer *ckpt.Writer
	fleet  *ps.Fleet
	// views maps each staging snapshot to its [layer][param] weight
	// windows, the shape ps.Fleet.SnapshotInto stages into (fleet mode).
	views map[*ckpt.Snapshot][][][]float32
}

// flatParams flattens trainable layers into the snapshot's layer-major
// parameter order.
func flatParams(layers []nn.Layer) []*nn.Param {
	var out []*nn.Param
	for _, l := range layers {
		out = append(out, l.Params()...)
	}
	return out
}

// layerWeightViews exposes live parameter storage in the [layer][param]
// shape the fleet restore walks (views alias the params — a restore
// through them IS the install).
func layerWeightViews(layers []nn.Layer) [][][]float32 {
	out := make([][][]float32, len(layers))
	for i, l := range layers {
		for _, p := range l.Params() {
			out[i] = append(out[i], p.W.Data)
		}
	}
	return out
}

// newCheckpointer builds the run's snapshot machinery, or nil when
// checkpointing is off. layers supplies the staging geometry; fleet is nil
// for worker-side (sync) staging.
func newCheckpointer(cfg Config, layers []nn.Layer, fleet *ps.Fleet) *checkpointer {
	cc := cfg.Checkpoint
	if !cc.enabled() {
		return nil
	}
	store, err := ckpt.Open(cc.Dir)
	if err != nil {
		panic("core: " + err.Error())
	}
	ck := &checkpointer{
		cfg:    cc,
		groups: cfg.Groups,
		batch:  cfg.GroupBatch,
		store:  store,
		fleet:  fleet,
		views:  make(map[*ckpt.Snapshot][][][]float32),
	}
	params := flatParams(layers)
	staging := []*ckpt.Snapshot{ckpt.NewStaging(params), ckpt.NewStaging(params)}
	for _, s := range staging {
		s.Arch = cc.Arch
		s.Problem = cc.Problem
		if fleet == nil {
			s.Solver = &opt.State{}
			continue
		}
		// Fleet mode: prebuild the per-layer weight windows into the
		// staging params and the per-shard state buffers, so a warm
		// snapshot recycles everything.
		views := make([][][]float32, len(layers))
		s.Servers = make([][]opt.State, len(layers))
		flat := 0
		for i, l := range layers {
			n := len(l.Params())
			views[i] = make([][]float32, n)
			for j := 0; j < n; j++ {
				views[i][j] = s.Params[flat].W.Data
				flat++
			}
			s.Servers[i] = make([]opt.State, fleet.Servers[i].NumShards())
		}
		ck.views[s] = views
	}
	ck.writer = ckpt.NewWriter(store, cc.Async, cc.Keep, staging...)
	return ck
}

// due reports whether a snapshot fires after `completed` iterations.
func (ck *checkpointer) due(completed int) bool {
	return ck != nil && completed%ck.cfg.Every == 0
}

func (ck *checkpointer) epochOf(step int) int {
	if ck.cfg.SamplesPerEpoch <= 0 {
		return 0
	}
	return step * ck.batch * ck.groups / ck.cfg.SamplesPerEpoch
}

// syncSnapshot checkpoints a lockstep run from rank 0's replica and
// solver. Warm calls allocate nothing on the training goroutine: the
// staging buffers, solver-state slots and writer handoff are all recycled
// (the background flush itself pays a bounded handful of file-I/O
// allocations off-thread).
func (ck *checkpointer) syncSnapshot(step int, params []*nn.Param, solver opt.Solver) {
	s := ck.writer.Begin()
	t0 := time.Now()
	s.Step, s.Epoch = step, ck.epochOf(step)
	s.StageWeights(params)
	if !opt.CaptureState(solver, s.Solver, params) {
		s.Solver = nil // stateless solver: weights-only snapshot
	}
	ck.writer.Commit(s, time.Since(t0).Seconds())
	ck.check()
}

// fleetSnapshot checkpoints a PS-backed run from the fleet masters.
// groupIters and groupParams, when non-nil, record the scheduled trainer's
// per-group cursors and replica views (copied into recycled storage) —
// each group's weights are the master as of its own last push, a
// staleness realization resume must reproduce, not refetch.
func (ck *checkpointer) fleetSnapshot(step int, groupIters []int, groupParams [][]*nn.Param) {
	s := ck.writer.Begin()
	t0 := time.Now()
	s.Step, s.Epoch = step, ck.epochOf(step)
	ck.fleet.SnapshotInto(ck.views[s], s.Servers)
	if groupIters != nil {
		s.GroupIters = append(s.GroupIters[:0], groupIters...)
	} else {
		s.GroupIters = nil
	}
	if groupParams != nil {
		s.StageGroupWeights(groupParams)
	} else {
		s.GroupWeights = nil
	}
	ck.writer.Commit(s, time.Since(t0).Seconds())
	ck.check()
}

// check fails the run loudly on a snapshot write error: a trainer that
// believes it is durable but is not must not find out at restore time.
func (ck *checkpointer) check() {
	if err := ck.writer.Err(); err != nil {
		panic("core: " + err.Error())
	}
}

// close drains the writer and returns the run's checkpoint account.
func (ck *checkpointer) close() ckpt.Stats {
	if ck == nil {
		return ckpt.Stats{}
	}
	if err := ck.writer.Close(); err != nil {
		panic("core: ckpt: " + err.Error())
	}
	return ck.writer.Stats()
}

// restoreSolver installs a snapshot's worker-side solver state into a
// rank's cloned solver (state is positional over that rank's own params).
func restoreSolver(solver opt.Solver, params []*nn.Param, r *ckpt.Restored) error {
	return opt.RestoreState(solver, params, r.Solver)
}

// resumeInto loads the newest snapshot in the configured store into params
// (nil when Resume is off or the store is empty — a fresh start). The
// manifest's arch must match the config's when both are set.
func resumeInto(cfg Config, params []*nn.Param) *ckpt.Restored {
	cc := cfg.Checkpoint
	if !cc.Resume {
		return nil
	}
	store, err := ckpt.Open(cc.Dir)
	if err != nil {
		panic("core: " + err.Error())
	}
	r, ok, err := store.LoadLatest(params)
	if err != nil {
		panic("core: resume: " + err.Error())
	}
	if !ok {
		return nil
	}
	if cc.Arch != "" && r.Manifest.Arch != "" && cc.Arch != r.Manifest.Arch {
		panic(fmt.Sprintf("core: resume: checkpoint is arch %q, run wants %q", r.Manifest.Arch, cc.Arch))
	}
	if cc.Problem != "" && r.Manifest.Problem != "" && cc.Problem != r.Manifest.Problem {
		panic(fmt.Sprintf("core: resume: checkpoint is problem %q, run wants %q", r.Manifest.Problem, cc.Problem))
	}
	return r
}

// checkResumeStep guards the concurrent trainers, whose step is a
// group-local iteration count: a checkpoint at or past the run length has
// nothing left to train.
func checkResumeStep(step, iterations int) {
	if step >= iterations {
		panic(fmt.Sprintf("core: resume: checkpoint step %d is already ≥ %d iterations", step, iterations))
	}
}
