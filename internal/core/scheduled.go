package core

import (
	"fmt"
	"sort"

	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/ps"
)

// ScheduledEvent places one group iteration at a simulated completion time.
// Schedules come from the cluster model (internal/cluster), which knows
// what each group's iteration costs at the target node count — this is how
// the Fig 8 time-to-train study couples real SGD dynamics to Cori-scale
// hardware timing.
type ScheduledEvent struct {
	Group int
	Time  float64 // seconds on the simulated cluster clock
}

// BuildSchedule converts per-group iteration durations (from
// cluster.RunResult.IterDurations) into a merged, time-ordered schedule.
func BuildSchedule(iterDurations [][]float64) []ScheduledEvent {
	var events []ScheduledEvent
	for g, durs := range iterDurations {
		t := 0.0
		for _, d := range durs {
			t += d
			events = append(events, ScheduledEvent{Group: g, Time: t})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events
}

// TrainScheduled executes group updates sequentially in the order given by
// schedule. Each group holds one logical replica computing the group-mean
// gradient on its full batch (statistically identical to W workers plus
// all-reduce); the PS fleet applies updates in schedule order, so the
// staleness process matches what the simulated cluster would produce. The
// result's IterStat.Time carries the simulated clock.
//
// The exchange runs through cfg.Codec exactly like the concurrent trainer:
// with "int8" every push suffers the quantised wire's distortion, so the
// Fig 8 study couples real low-precision SGD dynamics to the simulated
// timeline. cfg.Overlap does not change the math here (ordering is the
// schedule's); its timing effect lives in the cluster model.
//
// With cfg.Checkpoint the run snapshots the fleet (plus each group's
// progress cursor) after every cfg.Checkpoint.Every-th schedule update.
// On resume the SAME schedule must be passed again: the trainer replays
// past it — skipping each group's first GroupIters[g] events without
// computing — and continues, bit-exact for the fp32 wire (the int8
// codec's rounding streams restart at resume, a documented divergence).
func TrainScheduled(p Problem, cfg Config, schedule []ScheduledEvent) Result {
	cfg.validate()
	template := p.NewReplica()
	tlayers := template.TrainableLayers()
	restored := resumeInto(cfg, flatParams(tlayers))
	fleet := ps.NewShardedFleet(tlayers, cfg.Solver, cfg.PSShardElems)
	resumeIters := make([]int, cfg.Groups)
	if restored != nil {
		if restored.Servers != nil {
			if err := fleet.RestoreSnapshot(layerWeightViews(tlayers), restored.Servers); err != nil {
				panic("core: resume: " + err.Error())
			}
		}
		if len(restored.GroupIters) != cfg.Groups {
			panic(fmt.Sprintf("core: resume: checkpoint has %d group cursors, run has %d groups",
				len(restored.GroupIters), cfg.Groups))
		}
		copy(resumeIters, restored.GroupIters)
	}
	ck := newCheckpointer(cfg, tlayers, fleet)

	replicas := make([]Replica, cfg.Groups)
	batches := make([][][]int, cfg.Groups) // per group, per iteration
	pipes := make([]PipelineReplica, cfg.Groups)
	xfers := make([][]*layerXfer, cfg.Groups)      // per group, per layer wire state
	groupParams := make([][]*nn.Param, cfg.Groups) // per group flat replica params (snapshot staging)
	lanes := make([]*obs.Lane, cfg.Groups)
	iters := make([]int, cfg.Groups)
	skip := make([]int, cfg.Groups) // schedule events to replay past (resume)
	for g := range replicas {
		replicas[g] = p.NewReplica()
		lanes[g] = cfg.Trace.Lane(fmt.Sprintf("g%d", g))
		if tr, ok := replicas[g].(TracedReplica); ok {
			tr.SetTraceLane(lanes[g])
		}
		// Pre-draw every iteration's batch from the group's own source —
		// the same per-group RNG sequence the lazy draw consumed, so
		// trajectories are unchanged — which is what lets the prefetcher
		// stage ahead of the schedule (and the resumed run fast-forward).
		src := p.NewBatchSource(cfg.Seed + uint64(g)*0x9E37)
		batches[g] = make([][]int, cfg.Iterations)
		for i := range batches[g] {
			batches[g][i] = append([]int(nil), src.Next(cfg.GroupBatch)...)
		}
		iters[g] = resumeIters[g]
		skip[g] = resumeIters[g]
		pipes[g] = startIngest(replicas[g], batches[g][iters[g]:], 0, 1, cfg.Prefetch)
		if pipes[g] != nil {
			defer pipes[g].StopIngest()
		}
		// Start every group from the master model.
		resps := fleet.FetchAll(g)
		weights := make([][][]float32, len(resps))
		for i, r := range resps {
			weights[i] = r.Weights
		}
		layers := replicas[g].TrainableLayers()
		installWeights(layers, weights)
		groupParams[g] = flatParams(layers)
		// A resumed group's replica holds the master as of its own last
		// push — stale relative to the restored master by every later
		// push from other groups. The snapshot carried that view; install
		// it over the fresh fetch (which only served the staleness books).
		if restored != nil && restored.GroupWeights != nil {
			if len(restored.GroupWeights[g]) != len(groupParams[g]) {
				panic(fmt.Sprintf("core: resume: group %d has %d weight blobs, model has %d",
					g, len(restored.GroupWeights[g]), len(groupParams[g])))
			}
			for i, p := range groupParams[g] {
				if len(restored.GroupWeights[g][i]) != p.W.Len() {
					panic(fmt.Sprintf("core: resume: group %d blob %d (%s) has %d elements, model has %d",
						g, i, p.Name, len(restored.GroupWeights[g][i]), p.W.Len()))
				}
				copy(p.W.Data, restored.GroupWeights[g][i])
			}
		}
		for t, l := range layers {
			xfers[g] = append(xfers[g], newLayerXfer(l.Params(), cfg.Codec, cfg.Seed, g, t))
		}
	}

	updates := sumInts(resumeIters) // completed updates, pacing the snapshots
	stats := make([]IterStat, 0, len(schedule))
	for seqNo, ev := range schedule {
		if ev.Group < 0 || ev.Group >= cfg.Groups {
			panic(fmt.Sprintf("core: schedule references group %d of %d", ev.Group, cfg.Groups))
		}
		g := ev.Group
		if skip[g] > 0 {
			skip[g]-- // already executed before the checkpoint: replay past it
			continue
		}
		if iters[g] >= cfg.Iterations {
			continue // schedule longer than requested training
		}
		rep := replicas[g]
		lanes[g].SetIter(iters[g])
		idx := batches[g][iters[g]]
		rep.ZeroGrad()
		var loss float64
		if pipes[g] != nil && len(idx) > 0 {
			loss = pipes[g].ComputeStagedStream(nil)
		} else if len(idx) > 0 {
			loss = rep.ComputeGradients(idx)
		}
		var stale float64
		lanes[g].Begin(obs.PhaseCommWait)
		for t, x := range xfers[g] {
			for i, prm := range x.params {
				x.codec.Encode(x.wires[i], prm.Grad.Data)
			}
			res := fleet.PushWires(g, t, x.codec, x.wires, x.weights)
			stale += float64(res.Staleness)
		}
		lanes[g].End(obs.PhaseCommWait)
		stats = append(stats, IterStat{
			Seq:       seqNo,
			Group:     g,
			Iter:      iters[g],
			Loss:      loss,
			Staleness: stale / float64(len(xfers[g])),
			Time:      ev.Time,
		})
		iters[g]++
		updates++
		if ck.due(updates) {
			lanes[g].Begin(obs.PhaseCkptStage)
			ck.fleetSnapshot(updates, iters, groupParams)
			lanes[g].End(obs.PhaseCkptStage)
		}
	}
	res := finalize(stats, cfg.Groups)
	res.FinalWeights = fleetWeights(fleet)
	res.Wire = fleet.WireStats()
	// Quiesce the prefetchers before reading their accounts (a short
	// schedule can leave them mid-stage; StopIngest is idempotent, so the
	// deferred stops become no-ops).
	for _, pr := range pipes {
		if pr != nil {
			pr.StopIngest()
		}
	}
	for _, rep := range replicas {
		res.Ingest = res.Ingest.Add(ingestOf(rep))
	}
	res.Ckpt = ck.close()
	return res
}

func sumInts(v []int) int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

// TimeToLoss scans a scheduled result for the first simulated time at
// which the running mean loss (over the trailing `smooth` updates) drops
// to target. Returns +Inf-like ok=false when never reached. This is the
// paper's Fig 8 figure of merit ("wall-clock time speedups with respect to
// a loss of 0.05").
func TimeToLoss(res Result, target float64, smooth int) (float64, bool) {
	if smooth < 1 {
		smooth = 1
	}
	window := make([]float64, 0, smooth)
	var sum float64
	for _, s := range res.Stats {
		window = append(window, s.Loss)
		sum += s.Loss
		if len(window) > smooth {
			sum -= window[0]
			window = window[1:]
		}
		if len(window) == smooth && sum/float64(smooth) <= target {
			return s.Time, true
		}
	}
	return 0, false
}
