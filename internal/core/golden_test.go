package core_test

import (
	"math"
	"testing"

	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// The fingerprints below were captured from the pre-refactor trainer (the
// serialized whole-backward / blocking-collective / ps.Fleet.UpdateAll
// path) at commit dc2e4ee, on the deterministic configurations: sync runs
// of any worker count, hybrid with a single group, and a fixed scheduled
// rotation. The refactored streamed/overlapped machinery must reproduce
// them bit for bit whenever Overlap is off and the codec is fp32 — the
// acceptance contract that the multi-layer refactor changed the execution
// schedule, not the arithmetic.
//
// The hash is FNV-1a over the little-endian float32 bits of every final
// weight, in layer/param/element order. All inputs are repo-deterministic
// (own RNG, fixed-order reductions, bitwise-equal AVX/scalar kernels), so
// these values are platform-stable.
const (
	goldenSyncW1     = uint64(0x46aaedfd588d1e54)
	goldenSyncW4     = uint64(0x45b2eeaf89828e20)
	goldenHybridG1W2 = uint64(0x63f276ece155e412)
	goldenSchedG2    = uint64(0x9a12965b9b6ebfaa)
)

func goldenProblem() core.Problem {
	rng := tensor.NewRNG(11)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), 48, 0.5, rng)
	cfg := hep.ModelConfig{Name: "g", ImageSize: 16, Filters: 6, ConvUnits: 3, Classes: 2}
	return hep.NewTrainingProblem(ds, cfg, 77)
}

func weightHash(weights [][][]float32) uint64 {
	var h uint64 = 1469598103934665603
	for _, layer := range weights {
		for _, blob := range layer {
			for _, v := range blob {
				bits := math.Float32bits(v)
				for s := 0; s < 32; s += 8 {
					h ^= uint64((bits >> s) & 0xff)
					h *= 1099511628211
				}
			}
		}
	}
	return h
}

func goldenSchedule() []core.ScheduledEvent {
	var sched []core.ScheduledEvent
	for it := 0; it < 8; it++ {
		for g := 0; g < 2; g++ {
			sched = append(sched, core.ScheduledEvent{Group: g, Time: float64(it*2+g) * 0.1})
		}
	}
	return sched
}

// TestGoldenTrajectoriesMatchPreRefactor pins the fp32/lockstep weight
// trajectories to the pre-refactor trainer.
func TestGoldenTrajectoriesMatchPreRefactor(t *testing.T) {
	p := goldenProblem()
	check := func(name string, want uint64, res core.Result) {
		t.Helper()
		if got := weightHash(res.FinalWeights); got != want {
			t.Errorf("%s: weight trajectory diverged from pre-refactor golden: %#016x, want %#016x",
				name, got, want)
		}
	}
	check("sync-w1", goldenSyncW1, core.TrainSync(p, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5}))
	check("sync-w4", goldenSyncW4, core.TrainSync(p, core.Config{
		Groups: 1, WorkersPerGroup: 4, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewAdam(2e-3), Seed: 5}))
	check("hybrid-g1w2", goldenHybridG1W2, core.TrainHybrid(p, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewAdam(2e-3), Seed: 5}))
	check("sched-g2", goldenSchedG2, core.TrainScheduled(p, core.Config{
		Groups: 2, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 8,
		Solver: opt.NewAdam(2e-3), Seed: 5}, goldenSchedule()))
	// The explicit fp32 codec spelling must be the zero value's path too.
	check("sync-w1-fp32", goldenSyncW1, core.TrainSync(p, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5, Codec: "fp32"}))
}

// TestOverlapIsBitwiseNeutral: pipelining the exchange with the backward
// pass reorders work, not arithmetic — on deterministic configurations the
// overlapped trajectories must equal the lockstep ones bit for bit.
func TestOverlapIsBitwiseNeutral(t *testing.T) {
	p := goldenProblem()
	base := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10, Seed: 5}

	lock := base
	lock.Solver = opt.NewAdam(2e-3)
	over := base
	over.Solver = opt.NewAdam(2e-3)
	over.Overlap = true

	a := core.TrainHybrid(p, lock)
	b := core.TrainHybrid(p, over)
	if weightHash(a.FinalWeights) != weightHash(b.FinalWeights) {
		t.Error("hybrid: overlap changed the weight trajectory")
	}
	for i := range a.Stats {
		if a.Stats[i].Loss != b.Stats[i].Loss {
			t.Fatalf("hybrid iter %d: lockstep loss %v vs overlapped %v", i, a.Stats[i].Loss, b.Stats[i].Loss)
		}
	}

	lock.Solver = opt.NewSGD(0.02, 0.9)
	over.Solver = opt.NewSGD(0.02, 0.9)
	as := core.TrainSync(p, lock)
	bs := core.TrainSync(p, over)
	if weightHash(as.FinalWeights) != weightHash(bs.FinalWeights) {
		t.Error("sync: overlap changed the weight trajectory")
	}
}

// TestShardedPSIsBitwiseNeutral: flat-range PS sharding must not change
// the trajectory either (elementwise solvers).
func TestShardedPSIsBitwiseNeutral(t *testing.T) {
	p := goldenProblem()
	cfg := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Seed: 5, Overlap: true}
	cfg.Solver = opt.NewAdam(2e-3)
	plain := core.TrainHybrid(p, cfg)
	cfg.Solver = opt.NewAdam(2e-3)
	cfg.PSShardElems = 4096
	sharded := core.TrainHybrid(p, cfg)
	if weightHash(plain.FinalWeights) != weightHash(sharded.FinalWeights) {
		t.Error("PS sharding changed the weight trajectory")
	}
}
