package core_test

import (
	"math"
	"testing"

	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// The fingerprints below were captured from the pre-refactor trainer (the
// serialized whole-backward / blocking-collective / ps.Fleet.UpdateAll
// path) at commit dc2e4ee, on the deterministic configurations: sync runs
// of any worker count, hybrid with a single group, and a fixed scheduled
// rotation. The refactored streamed/overlapped machinery must reproduce
// them bit for bit whenever Overlap is off and the codec is fp32 — the
// acceptance contract that the multi-layer refactor changed the execution
// schedule, not the arithmetic.
//
// The hash is FNV-1a over the little-endian float32 bits of every final
// weight, in layer/param/element order. All inputs are repo-deterministic
// (own RNG, fixed-order reductions, bitwise-equal AVX/scalar kernels), so
// these values are platform-stable.
const (
	goldenSyncW1     = uint64(0x46aaedfd588d1e54)
	goldenSyncW4     = uint64(0x45b2eeaf89828e20)
	goldenHybridG1W2 = uint64(0x63f276ece155e412)
	goldenSchedG2    = uint64(0x9a12965b9b6ebfaa)
)

func goldenProblem() core.Problem {
	rng := tensor.NewRNG(11)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), 48, 0.5, rng)
	cfg := hep.ModelConfig{Name: "g", ImageSize: 16, Filters: 6, ConvUnits: 3, Classes: 2}
	return hep.NewTrainingProblem(ds, cfg, 77)
}

func weightHash(weights [][][]float32) uint64 {
	var h uint64 = 1469598103934665603
	for _, layer := range weights {
		for _, blob := range layer {
			for _, v := range blob {
				bits := math.Float32bits(v)
				for s := 0; s < 32; s += 8 {
					h ^= uint64((bits >> s) & 0xff)
					h *= 1099511628211
				}
			}
		}
	}
	return h
}

func goldenSchedule() []core.ScheduledEvent {
	var sched []core.ScheduledEvent
	for it := 0; it < 8; it++ {
		for g := 0; g < 2; g++ {
			sched = append(sched, core.ScheduledEvent{Group: g, Time: float64(it*2+g) * 0.1})
		}
	}
	return sched
}

// TestGoldenTrajectoriesMatchPreRefactor pins the fp32/lockstep weight
// trajectories to the pre-refactor trainer.
func TestGoldenTrajectoriesMatchPreRefactor(t *testing.T) {
	p := goldenProblem()
	check := func(name string, want uint64, res core.Result) {
		t.Helper()
		if got := weightHash(res.FinalWeights); got != want {
			t.Errorf("%s: weight trajectory diverged from pre-refactor golden: %#016x, want %#016x",
				name, got, want)
		}
	}
	check("sync-w1", goldenSyncW1, core.TrainSync(p, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5}))
	check("sync-w4", goldenSyncW4, core.TrainSync(p, core.Config{
		Groups: 1, WorkersPerGroup: 4, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewAdam(2e-3), Seed: 5}))
	check("hybrid-g1w2", goldenHybridG1W2, core.TrainHybrid(p, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewAdam(2e-3), Seed: 5}))
	check("sched-g2", goldenSchedG2, core.TrainScheduled(p, core.Config{
		Groups: 2, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 8,
		Solver: opt.NewAdam(2e-3), Seed: 5}, goldenSchedule()))
	// The explicit fp32 codec spelling must be the zero value's path too.
	check("sync-w1-fp32", goldenSyncW1, core.TrainSync(p, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5, Codec: "fp32"}))
}

// TestPrefetchTrajectoriesMatchGolden extends the golden pins to the
// streaming input pipeline: with background-prefetched staging (and with
// prefetch composed with the PR 3 overlap) every deterministic
// configuration must still reproduce the pre-refactor fingerprints bit for
// bit — prefetch moved the staging copies off the critical path, not the
// arithmetic.
func TestPrefetchTrajectoriesMatchGolden(t *testing.T) {
	p := goldenProblem()
	check := func(name string, want uint64, res core.Result) {
		t.Helper()
		if got := weightHash(res.FinalWeights); got != want {
			t.Errorf("%s: prefetched weight trajectory diverged from golden: %#016x, want %#016x",
				name, got, want)
		}
		if res.Ingest.Batches == 0 {
			t.Errorf("%s: prefetched run recorded no staged batches", name)
		}
	}
	check("sync-w1-prefetch", goldenSyncW1, core.TrainSync(p, core.Config{
		Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 5, Prefetch: 2}))
	check("sync-w4-prefetch", goldenSyncW4, core.TrainSync(p, core.Config{
		Groups: 1, WorkersPerGroup: 4, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewAdam(2e-3), Seed: 5, Prefetch: 1}))
	check("hybrid-g1w2-prefetch", goldenHybridG1W2, core.TrainHybrid(p, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewAdam(2e-3), Seed: 5, Prefetch: 2}))
	check("hybrid-g1w2-prefetch-overlap", goldenHybridG1W2, core.TrainHybrid(p, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Solver: opt.NewAdam(2e-3), Seed: 5, Prefetch: 2, Overlap: true}))
	check("sched-g2-prefetch", goldenSchedG2, core.TrainScheduled(p, core.Config{
		Groups: 2, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 8,
		Solver: opt.NewAdam(2e-3), Seed: 5, Prefetch: 2}, goldenSchedule()))
}

// TestEmptyShardIsSkippedNotStaged is the Split(parts > n) regression: a
// dataset whose epoch tail batch is smaller than the worker group leaves
// some ranks with zero-sample shards. Those ranks must idle through the
// iteration (still joining every collective) rather than staging a zero
// batch or compiling a zero-sample plan — on both the blocking and the
// prefetched path, with identical trajectories.
func TestEmptyShardIsSkippedNotStaged(t *testing.T) {
	rng := tensor.NewRNG(17)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), 14, 0.5, rng)
	cfg := hep.ModelConfig{Name: "tail", ImageSize: 16, Filters: 6, ConvUnits: 3, Classes: 2}
	p := hep.NewTrainingProblem(ds, cfg, 77)

	// 14 samples, batch 12, 4 workers: iteration 2 draws the 2-sample epoch
	// tail, splitting 1/1/0/0 — two workers idle.
	base := core.Config{Groups: 1, WorkersPerGroup: 4, GroupBatch: 12, Iterations: 4, Seed: 5}
	base.Solver = opt.NewSGD(0.02, 0.9)
	blocking := core.TrainSync(p, base)

	pf := base
	pf.Solver = opt.NewSGD(0.02, 0.9)
	pf.Prefetch = 2
	prefetched := core.TrainSync(p, pf)

	if weightHash(blocking.FinalWeights) != weightHash(prefetched.FinalWeights) {
		t.Error("empty-shard run: prefetched trajectory diverged from blocking")
	}
	for _, res := range []core.Result{blocking, prefetched} {
		for i, s := range res.Stats {
			if math.IsNaN(s.Loss) || math.IsInf(s.Loss, 0) {
				t.Fatalf("iteration %d produced loss %v", i, s.Loss)
			}
		}
	}
	// Only the non-empty shards were staged: the epoch alternates full
	// 12-sample batches (4 shards of 3) with 2-sample tails (2 singleton
	// shards, 2 workers idle) — 4+2+4+2 staged batches over 28 samples.
	if got := prefetched.Ingest.Batches; got != 12 {
		t.Errorf("prefetched run staged %d batches, want 12 (zero shards skipped)", got)
	}
	if got := prefetched.Ingest.Samples; got != 28 {
		t.Errorf("prefetched run staged %d samples, want 28", got)
	}
}

// TestOverlapIsBitwiseNeutral: pipelining the exchange with the backward
// pass reorders work, not arithmetic — on deterministic configurations the
// overlapped trajectories must equal the lockstep ones bit for bit.
func TestOverlapIsBitwiseNeutral(t *testing.T) {
	p := goldenProblem()
	base := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10, Seed: 5}

	lock := base
	lock.Solver = opt.NewAdam(2e-3)
	over := base
	over.Solver = opt.NewAdam(2e-3)
	over.Overlap = true

	a := core.TrainHybrid(p, lock)
	b := core.TrainHybrid(p, over)
	if weightHash(a.FinalWeights) != weightHash(b.FinalWeights) {
		t.Error("hybrid: overlap changed the weight trajectory")
	}
	for i := range a.Stats {
		if a.Stats[i].Loss != b.Stats[i].Loss {
			t.Fatalf("hybrid iter %d: lockstep loss %v vs overlapped %v", i, a.Stats[i].Loss, b.Stats[i].Loss)
		}
	}

	lock.Solver = opt.NewSGD(0.02, 0.9)
	over.Solver = opt.NewSGD(0.02, 0.9)
	as := core.TrainSync(p, lock)
	bs := core.TrainSync(p, over)
	if weightHash(as.FinalWeights) != weightHash(bs.FinalWeights) {
		t.Error("sync: overlap changed the weight trajectory")
	}
}

// TestShardedPSIsBitwiseNeutral: flat-range PS sharding must not change
// the trajectory either (elementwise solvers).
func TestShardedPSIsBitwiseNeutral(t *testing.T) {
	p := goldenProblem()
	cfg := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: 10,
		Seed: 5, Overlap: true}
	cfg.Solver = opt.NewAdam(2e-3)
	plain := core.TrainHybrid(p, cfg)
	cfg.Solver = opt.NewAdam(2e-3)
	cfg.PSShardElems = 4096
	sharded := core.TrainHybrid(p, cfg)
	if weightHash(plain.FinalWeights) != weightHash(sharded.FinalWeights) {
		t.Error("PS sharding changed the weight trajectory")
	}
}
