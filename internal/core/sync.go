package core

import (
	"fmt"
	"sync"

	"deep15pf/internal/comm"
	"deep15pf/internal/obs"
)

// TrainSync runs fully synchronous data-parallel training (the paper's
// baseline, Fig 1 left): cfg.WorkersPerGroup workers split each batch,
// all-reduce mean gradients, and apply identical solver steps to their
// replicas, which therefore stay in lockstep. cfg.Groups must be 1.
//
// With cfg.Overlap each layer's all-reduce starts the moment its backward
// finishes, hiding the reduction behind the remaining backward compute; the
// arithmetic — a fixed rank-order reduction per parameter — is bitwise
// identical either way. There is no parameter server here, so cfg.Codec
// does not apply (the intra-group wire is always fp32).
//
// With cfg.Checkpoint the run snapshots rank 0's replica and solver at
// iteration boundaries (ranks are in lockstep, so rank 0 IS the model),
// and cfg.Checkpoint.Resume continues from the newest snapshot: weights
// and solver state restore from the store, and the batch stream replays to
// the resume point — the same draws in the same order — so the resumed
// trajectory is bitwise identical to the uninterrupted one.
func TrainSync(p Problem, cfg Config) Result {
	cfg.validate()
	if cfg.Groups != 1 {
		panic("core: TrainSync requires Groups == 1")
	}
	w := cfg.WorkersPerGroup

	// Pre-draw every iteration's batch so workers agree without racing
	// on the source. A resumed run re-draws the full sequence from the
	// same seed — the checkpoint's batch cursor is the step count.
	src := p.NewBatchSource(cfg.Seed)
	batches := make([][]int, cfg.Iterations)
	for i := range batches {
		batches[i] = append([]int(nil), src.Next(cfg.GroupBatch)...)
	}

	replicas := make([]Replica, w)
	for r := range replicas {
		replicas[r] = p.NewReplica()
	}

	// Resume: weights land in replica 0, then fan out so every rank
	// starts from the snapshot; each rank's solver state restores inside
	// its worker goroutine (the solvers are clones, state is positional).
	start := 0
	restored := resumeInto(cfg, flatParams(replicas[0].TrainableLayers()))
	if restored != nil {
		start = restored.Manifest.Step
		checkResumeStep(start, cfg.Iterations)
		weights := ExtractWeights(replicas[0].TrainableLayers())
		for r := 1; r < w; r++ {
			installWeights(replicas[r].TrainableLayers(), weights)
		}
	}
	ck := newCheckpointer(cfg, replicas[0].TrainableLayers(), nil)

	group := comm.NewGroup(w)
	losses := make([]float64, cfg.Iterations)

	var wg sync.WaitGroup
	for rank := 0; rank < w; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rep := replicas[rank]
			gw := newGroupWorker(rank, group, rep, nil, cfg.Overlap)
			gw.setLane(cfg.Trace.Lane(fmt.Sprintf("w%d", rank)))
			gw.pipe = startIngest(rep, batches[start:], rank, w, cfg.Prefetch)
			if gw.pipe != nil {
				defer gw.pipe.StopIngest()
			}
			solver := cfg.Solver.Clone()
			params := flatParams(gw.layers)
			if restored != nil && restored.Solver != nil {
				if err := restoreSolver(solver, params, restored); err != nil {
					panic("core: resume: " + err.Error())
				}
			}
			shards := shardCache{rank: rank, workers: w}
			for it := start; it < cfg.Iterations; it++ {
				gw.lane.SetIter(it)
				lo, hi := shards.shard(len(batches[it]))
				idx := batches[it][lo:hi]
				rep.ZeroGrad()
				// Mean over workers of per-shard means = batch mean
				// (shards are equal-sized by construction). With no
				// exchanger attached, compute waits out every reduction
				// before returning.
				loss := gw.compute(idx)
				if all := group.GatherInto(rank, 0, loss, gw.lossBuf); all != nil {
					var sum float64
					for _, v := range all {
						sum += v
					}
					losses[it] = sum / float64(len(all))
				}
				// Identical state + identical gradients → identical
				// steps: replicas remain bitwise synchronised.
				gw.lane.Begin(obs.PhaseOptApply)
				for _, l := range gw.layers {
					solver.Step(l.Params())
				}
				gw.lane.End(obs.PhaseOptApply)
				// Rank 0 checkpoints the lockstep state at the boundary
				// (its own replica and solver — nothing shared, no race).
				if rank == 0 && ck.due(it+1) {
					gw.lane.Begin(obs.PhaseCkptStage)
					ck.syncSnapshot(it+1, params, solver)
					gw.lane.End(obs.PhaseCkptStage)
				}
			}
		}(rank)
	}
	wg.Wait()

	stats := make([]IterStat, 0, cfg.Iterations-start)
	for it := start; it < cfg.Iterations; it++ {
		stats = append(stats, IterStat{Seq: it, Group: 0, Iter: it, Loss: losses[it]})
	}
	res := finalize(stats, 1)
	// Replicas are in lockstep; rank 0's weights are the trained model.
	res.FinalWeights = ExtractWeights(replicas[0].TrainableLayers())
	for _, rep := range replicas {
		res.Ingest = res.Ingest.Add(ingestOf(rep))
	}
	res.Ckpt = ck.close()
	return res
}
