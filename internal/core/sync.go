package core

import (
	"sync"

	"deep15pf/internal/comm"
)

// TrainSync runs fully synchronous data-parallel training (the paper's
// baseline, Fig 1 left): cfg.WorkersPerGroup workers split each batch,
// all-reduce mean gradients, and apply identical solver steps to their
// replicas, which therefore stay in lockstep. cfg.Groups must be 1.
//
// With cfg.Overlap each layer's all-reduce starts the moment its backward
// finishes, hiding the reduction behind the remaining backward compute; the
// arithmetic — a fixed rank-order reduction per parameter — is bitwise
// identical either way. There is no parameter server here, so cfg.Codec
// does not apply (the intra-group wire is always fp32).
func TrainSync(p Problem, cfg Config) Result {
	cfg.validate()
	if cfg.Groups != 1 {
		panic("core: TrainSync requires Groups == 1")
	}
	w := cfg.WorkersPerGroup

	// Pre-draw every iteration's batch so workers agree without racing
	// on the source.
	src := p.NewBatchSource(cfg.Seed)
	batches := make([][]int, cfg.Iterations)
	for i := range batches {
		batches[i] = append([]int(nil), src.Next(cfg.GroupBatch)...)
	}

	replicas := make([]Replica, w)
	for r := range replicas {
		replicas[r] = p.NewReplica()
	}
	group := comm.NewGroup(w)
	losses := make([]float64, cfg.Iterations)

	var wg sync.WaitGroup
	for rank := 0; rank < w; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rep := replicas[rank]
			gw := newGroupWorker(rank, group, rep, nil, cfg.Overlap)
			gw.pipe = startIngest(rep, batches, rank, w, cfg.Prefetch)
			if gw.pipe != nil {
				defer gw.pipe.StopIngest()
			}
			solver := cfg.Solver.Clone()
			shards := shardCache{rank: rank, workers: w}
			for it := 0; it < cfg.Iterations; it++ {
				lo, hi := shards.shard(len(batches[it]))
				idx := batches[it][lo:hi]
				rep.ZeroGrad()
				// Mean over workers of per-shard means = batch mean
				// (shards are equal-sized by construction). With no
				// exchanger attached, compute waits out every reduction
				// before returning.
				loss := gw.compute(idx)
				if all := group.GatherInto(rank, 0, loss, gw.lossBuf); all != nil {
					var sum float64
					for _, v := range all {
						sum += v
					}
					losses[it] = sum / float64(len(all))
				}
				// Identical state + identical gradients → identical
				// steps: replicas remain bitwise synchronised.
				for _, l := range gw.layers {
					solver.Step(l.Params())
				}
			}
		}(rank)
	}
	wg.Wait()

	stats := make([]IterStat, cfg.Iterations)
	for it := range stats {
		stats[it] = IterStat{Seq: it, Group: 0, Iter: it, Loss: losses[it]}
	}
	res := finalize(stats, 1)
	// Replicas are in lockstep; rank 0's weights are the trained model.
	res.FinalWeights = ExtractWeights(replicas[0].TrainableLayers())
	for _, rep := range replicas {
		res.Ingest = res.Ingest.Add(ingestOf(rep))
	}
	return res
}
