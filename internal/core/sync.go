package core

import (
	"sync"

	"deep15pf/internal/comm"
	"deep15pf/internal/data"
)

// TrainSync runs fully synchronous data-parallel training (the paper's
// baseline, Fig 1 left): cfg.WorkersPerGroup workers split each batch,
// all-reduce mean gradients, and apply identical solver steps to their
// replicas, which therefore stay in lockstep. cfg.Groups must be 1.
func TrainSync(p Problem, cfg Config) Result {
	cfg.validate()
	if cfg.Groups != 1 {
		panic("core: TrainSync requires Groups == 1")
	}
	w := cfg.WorkersPerGroup

	// Pre-draw every iteration's batch so workers agree without racing
	// on the source.
	src := p.NewBatchSource(cfg.Seed)
	batches := make([][]int, cfg.Iterations)
	for i := range batches {
		batches[i] = append([]int(nil), src.Next(cfg.GroupBatch)...)
	}

	replicas := make([]Replica, w)
	for r := range replicas {
		replicas[r] = p.NewReplica()
	}
	group := comm.NewGroup(w)
	losses := make([]float64, cfg.Iterations)

	var wg sync.WaitGroup
	for rank := 0; rank < w; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rep := replicas[rank]
			layers := rep.TrainableLayers()
			solver := cfg.Solver.Clone()
			for it := 0; it < cfg.Iterations; it++ {
				shard := data.Split(len(batches[it]), w)[rank]
				idx := batches[it][shard[0]:shard[1]]
				rep.ZeroGrad()
				loss := rep.ComputeGradients(idx)
				// Mean over workers of per-shard means = batch mean
				// (shards are equal-sized by construction).
				for _, l := range layers {
					for _, prm := range l.Params() {
						group.AllReduceMean(rank, prm.Grad.Data)
					}
				}
				if all := group.Gather(rank, 0, loss); all != nil {
					var sum float64
					for _, v := range all {
						sum += v
					}
					losses[it] = sum / float64(len(all))
				}
				// Identical state + identical gradients → identical
				// steps: replicas remain bitwise synchronised.
				for _, l := range layers {
					solver.Step(l.Params())
				}
			}
		}(rank)
	}
	wg.Wait()

	stats := make([]IterStat, cfg.Iterations)
	for it := range stats {
		stats[it] = IterStat{Seq: it, Group: 0, Iter: it, Loss: losses[it]}
	}
	res := finalize(stats, 1)
	// Replicas are in lockstep; rank 0's weights are the trained model.
	res.FinalWeights = ExtractWeights(replicas[0].TrainableLayers())
	return res
}
