package perf

import "deep15pf/internal/obs"

// Publish writes the §V trio into a metrics registry as gauges named
// "<prefix>.peak_flops", "<prefix>.sustained_flops" and
// "<prefix>.mean_flops". Gauges overwrite: the registry carries the
// most recently published summary. A nil registry is a no-op.
func (s Summary) Publish(r *obs.Registry, prefix string) {
	r.Gauge(prefix + ".peak_flops").Set(s.Peak)
	r.Gauge(prefix + ".sustained_flops").Set(s.Sustained)
	r.Gauge(prefix + ".mean_flops").Set(s.Mean)
}
