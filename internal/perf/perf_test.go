package perf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

func TestPeakRateUsesFastestIteration(t *testing.T) {
	// §V: "The peak flop rate is obtained from the fastest iteration."
	d := []float64{2, 1, 4}
	if got := PeakRate(d, 10); got != 10 {
		t.Fatalf("peak = %v, want 10", got)
	}
}

func TestSustainedRateBestWindow(t *testing.T) {
	// Durations 4,1,1,4: best window of 2 is [1,1] → rate = 2·w/2 = w.
	d := []float64{4, 1, 1, 4}
	if got := SustainedRate(d, 3, 2); got != 3 {
		t.Fatalf("sustained = %v, want 3", got)
	}
}

func TestSustainedWindowClamps(t *testing.T) {
	d := []float64{1, 1}
	if got := SustainedRate(d, 2, 100); got != 2 {
		t.Fatalf("clamped window = %v", got)
	}
	if got := SustainedRate(d, 2, 0); got != 2 {
		t.Fatalf("zero window = %v", got)
	}
}

func TestMeanRate(t *testing.T) {
	if got := MeanRate([]float64{1, 3}, 4); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if PeakRate(nil, 1) != 0 || SustainedRate(nil, 1, 5) != 0 || MeanRate(nil, 1) != 0 {
		t.Fatal("empty inputs must be 0")
	}
}

// Property: peak ≥ sustained and peak ≥ mean for any positive durations —
// the §V ordering that makes the paper's 15.07 peak vs 13.27 sustained
// sensible. (Sustained vs mean has no fixed order: the best window may
// legitimately be slower than the full-run average when slow iterations
// cluster at the boundaries.)
func TestRateOrderingProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed) + 7)
		n := 3 + rng.Intn(40)
		d := make([]float64, n)
		for i := range d {
			d[i] = 0.1 + rng.Float64()
		}
		s := Summarize(d, 5, 1+rng.Intn(n))
		return s.Peak >= s.Sustained-1e-12 && s.Peak >= s.Mean-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a window of size 1 makes sustained equal peak.
func TestSustainedWindowOneEqualsPeak(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed) + 13)
		n := 1 + rng.Intn(20)
		d := make([]float64, n)
		for i := range d {
			d[i] = 0.1 + rng.Float64()
		}
		return math.Abs(SustainedRate(d, 3, 1)-PeakRate(d, 3)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSustainedEqualsMeanForUniform(t *testing.T) {
	d := []float64{2, 2, 2, 2}
	s := Summarize(d, 4, 2)
	if math.Abs(s.Sustained-s.Mean) > 1e-12 || math.Abs(s.Peak-s.Mean) > 1e-12 {
		t.Fatalf("uniform durations: %+v", s)
	}
}

func TestFormatFlops(t *testing.T) {
	cases := map[float64]string{
		15.07e15: "15.07 PFLOP/s",
		1.9e12:   "1.90 TFLOP/s",
		3.5e9:    "3.50 GFLOP/s",
		2e6:      "2.00 MFLOP/s",
	}
	for rate, want := range cases {
		if got := FormatFlops(rate); got != want {
			t.Fatalf("FormatFlops(%v) = %q, want %q", rate, got, want)
		}
	}
	if !strings.Contains(FormatFlops(11.41e15), "PFLOP") {
		t.Fatal("paper-scale rates must render as PFLOP/s")
	}
}
