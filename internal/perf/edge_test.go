package perf

import (
	"math"
	"testing"

	"deep15pf/internal/obs"
)

// The §V rate functions divide by measured wall-clock sums; these tests
// pin the window edges (w == n, w == 1, w < 0) and the degenerate
// timings (zero and negative durations from clock skew) to "return 0,
// never Inf/NaN".

func TestSustainedWindowEqualsRunIsMean(t *testing.T) {
	d := []float64{3, 1, 2, 4}
	if got, want := SustainedRate(d, 5, len(d)), MeanRate(d, 5); got != want {
		t.Fatalf("w==n sustained = %v, want mean %v", got, want)
	}
}

func TestSustainedWindowOneExact(t *testing.T) {
	d := []float64{2, 0.5, 4}
	if got := SustainedRate(d, 3, 1); got != 6 {
		t.Fatalf("w==1 sustained = %v, want 6 (fastest iteration)", got)
	}
}

func TestNegativeWindowClampsToRun(t *testing.T) {
	d := []float64{1, 3}
	if got, want := SustainedRate(d, 4, -2), MeanRate(d, 4); got != want {
		t.Fatalf("negative window = %v, want mean %v", got, want)
	}
}

func TestZeroDurationsNeverDivideByZero(t *testing.T) {
	allZero := []float64{0, 0, 0}
	if PeakRate(allZero, 5) != 0 || SustainedRate(allZero, 5, 2) != 0 || MeanRate(allZero, 5) != 0 {
		t.Fatal("all-zero durations must report 0, not Inf")
	}
	// One zero iteration: the peak would divide by it; the guard returns 0
	// rather than claiming infinite throughput.
	withZero := []float64{1, 0, 2}
	if got := PeakRate(withZero, 5); got != 0 {
		t.Fatalf("peak over a zero duration = %v, want 0", got)
	}
	// A zero iteration inside a window whose sum stays positive still
	// yields a finite rate: windows [1,1]=2 and [1,0]=1, best 1 → 2·2/1.
	if got := SustainedRate([]float64{1, 1, 0}, 2, 2); got != 4 {
		t.Fatalf("sustained = %v, want 4", got)
	}
}

func TestNegativeDurationsReportZero(t *testing.T) {
	// A clock step can hand back a negative elapsed time; no rate function
	// may launder it into a negative or infinite rate.
	neg := []float64{1, -2, 3}
	for name, got := range map[string]float64{
		"peak":      PeakRate(neg, 5),
		"sustained": SustainedRate(neg, 5, 2),
	} {
		if got != 0 {
			t.Errorf("%s over negative duration = %v, want 0", name, got)
		}
	}
	if got := MeanRate([]float64{1, -3}, 5); got != 0 {
		t.Errorf("mean with negative total = %v, want 0", got)
	}
	for name, v := range map[string]float64{
		"peak": PeakRate(neg, 5), "sustained": SustainedRate(neg, 5, 2), "mean": MeanRate(neg, 5),
	} {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("%s = %v, must be finite", name, v)
		}
	}
}

func TestSummaryPublish(t *testing.T) {
	reg := obs.NewRegistry()
	Summary{Peak: 3e12, Sustained: 2e12, Mean: 1e12}.Publish(reg, "train")
	snap := reg.Snapshot()
	if snap.Gauges["train.peak_flops"] != 3e12 ||
		snap.Gauges["train.sustained_flops"] != 2e12 ||
		snap.Gauges["train.mean_flops"] != 1e12 {
		t.Fatalf("published gauges wrong: %+v", snap.Gauges)
	}
	Summary{Peak: 1}.Publish(nil, "x") // nil registry must be a no-op
}
