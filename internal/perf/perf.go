// Package perf implements the paper's §V measurement methodology: flop
// rates derived from per-iteration wall-clock times, where the *peak* rate
// comes from the fastest single iteration and the *sustained* rate from the
// best average over a contiguous window of iterations.
package perf

import "fmt"

// PeakRate returns the §V peak rate: work divided by the fastest iteration.
func PeakRate(durations []float64, workPerIter float64) float64 {
	if len(durations) == 0 {
		return 0
	}
	best := durations[0]
	for _, d := range durations[1:] {
		if d < best {
			best = d
		}
	}
	if best <= 0 {
		return 0
	}
	return workPerIter / best
}

// SustainedRate returns the §V sustained rate: work·w divided by the
// minimum sum over any contiguous window of w iterations. If fewer than w
// iterations exist the whole run is the window.
func SustainedRate(durations []float64, workPerIter float64, w int) float64 {
	n := len(durations)
	if n == 0 {
		return 0
	}
	if w <= 0 || w > n {
		w = n
	}
	var sum float64
	for _, d := range durations[:w] {
		sum += d
	}
	best := sum
	for i := w; i < n; i++ {
		sum += durations[i] - durations[i-w]
		if sum < best {
			best = sum
		}
	}
	if best <= 0 {
		return 0
	}
	return workPerIter * float64(w) / best
}

// MeanRate returns total work over total time.
func MeanRate(durations []float64, workPerIter float64) float64 {
	var total float64
	for _, d := range durations {
		total += d
	}
	if total <= 0 {
		return 0
	}
	return workPerIter * float64(len(durations)) / total
}

// FormatFlops renders a flop rate with a binary-free SI suffix (the paper
// reports TFLOP/s and PFLOP/s).
func FormatFlops(rate float64) string {
	switch {
	case rate >= 1e15:
		return fmt.Sprintf("%.2f PFLOP/s", rate/1e15)
	case rate >= 1e12:
		return fmt.Sprintf("%.2f TFLOP/s", rate/1e12)
	case rate >= 1e9:
		return fmt.Sprintf("%.2f GFLOP/s", rate/1e9)
	default:
		return fmt.Sprintf("%.2f MFLOP/s", rate/1e6)
	}
}

// Summary holds the §V trio for one run.
type Summary struct {
	Peak, Sustained, Mean float64
}

// Summarize computes all three rates with the given sustained window.
func Summarize(durations []float64, workPerIter float64, window int) Summary {
	return Summary{
		Peak:      PeakRate(durations, workPerIter),
		Sustained: SustainedRate(durations, workPerIter, window),
		Mean:      MeanRate(durations, workPerIter),
	}
}
