package astro

import (
	"math"

	"deep15pf/internal/data"
	"deep15pf/internal/tensor"
)

// Channels is the image channel count: the g, r and i survey bands.
const Channels = 3

// Renderer rasterises objects to 3-band square cutouts, the survey-image
// analogue of hep.Renderer: smooth light profiles are integrated at pixel
// centers, point sources are convolved with a Gaussian PSF, sky noise is
// added per band, and intensities are log-compressed to tame the dynamic
// range — the standard asinh/log stretch of survey imaging.
type Renderer struct {
	Size  int     // square cutout size in pixels
	PSF   float64 // point-spread sigma in pixels
	Noise float64 // sky noise level per pixel per band (pre-log)
}

// NewRenderer constructs a renderer for Size×Size cutouts. The PSF scales
// with the cutout so morphology is resolution-independent: cluster members
// stay marginally resolved, which is exactly what makes the cluster class
// texture-like rather than blob-like.
func NewRenderer(size int) *Renderer {
	return &Renderer{Size: size, PSF: math.Max(0.9, 0.05*float64(size)), Noise: 0.02}
}

// SampleFloats returns the per-image float count.
func (r *Renderer) SampleFloats() int { return Channels * r.Size * r.Size }

// bandWeights maps a component color (0 = blue .. 1 = red) to g/r/i
// multipliers. Blue light concentrates in g, red in i; r is the anchor.
func bandWeights(color float64) (g, rr, i float64) {
	return 1.25 - 0.85*color, 1.0, 0.5 + 0.85*color
}

// Render rasterises one object into dst (length SampleFloats, CHW layout).
func (r *Renderer) Render(o *Object, rng *tensor.RNG, dst []float32) {
	if len(dst) != r.SampleFloats() {
		panic("astro: Render destination has wrong size")
	}
	for i := range dst {
		dst[i] = 0
	}
	s := r.Size
	g := dst[0 : s*s]
	rb := dst[s*s : 2*s*s]
	ib := dst[2*s*s : 3*s*s]

	// Smooth light, evaluated at every pixel center (cutouts are small).
	sinT, cosT := math.Sin(o.Theta), math.Cos(o.Theta)
	diskG, diskR, diskI := bandWeights(o.Color)
	bulgeG, bulgeR, bulgeI := bandWeights(0.8) // bulges are old and red
	r0 := 0.25 * o.Radius                      // arm phase reference, shared with knot placement
	for py := 0; py < s; py++ {
		y := (float64(py) + 0.5) / float64(s)
		dy := y - o.Cy
		for px := 0; px < s; px++ {
			x := (float64(px) + 0.5) / float64(s)
			dx := x - o.Cx
			// Elliptical radius in the rotated frame for the falloff.
			u := cosT*dx + sinT*dy
			v := (-sinT*dx + cosT*dy) / o.Axis
			rell := math.Sqrt(u*u + v*v)
			var disk, bulge float64
			switch o.Class {
			case ClassElliptical:
				disk = o.Flux * math.Exp(-1.68*rell/o.Radius)
			case ClassSpiral:
				disk = o.Flux * math.Exp(-rell/o.Radius)
				// Logarithmic-spiral arm modulation in sky polar
				// coordinates — the same geometry the knots are strung on.
				rad := math.Sqrt(dx*dx + dy*dy)
				if rad > 0.05*o.Radius {
					phase := float64(o.Arms) * (math.Atan2(dy, dx) - math.Log(rad/r0)/o.Pitch)
					disk *= 1 + 0.75*math.Cos(phase)
				}
				bulge = o.Flux * o.Bulge * math.Exp(-rad/(0.25*o.Radius))
			case ClassCluster:
				disk = o.Flux * math.Exp(-rell/o.Radius)
			}
			if disk+bulge < 1e-5 {
				continue
			}
			idx := py*s + px
			g[idx] += float32(disk*diskG + bulge*bulgeG)
			rb[idx] += float32(disk*diskR + bulge*bulgeR)
			ib[idx] += float32(disk*diskI + bulge*bulgeI)
		}
	}

	// Point sources through the Gaussian PSF.
	reach := int(math.Ceil(3 * r.PSF))
	inv2s2 := 1 / (2 * r.PSF * r.PSF)
	for _, p := range o.Points {
		cx := p.X * float64(s)
		cy := p.Y * float64(s)
		px0, py0 := int(cx), int(cy)
		pg, pr, pi := bandWeights(p.Color)
		for dyi := -reach; dyi <= reach; dyi++ {
			py := py0 + dyi
			if py < 0 || py >= s {
				continue
			}
			for dxi := -reach; dxi <= reach; dxi++ {
				px := px0 + dxi
				if px < 0 || px >= s {
					continue
				}
				ddx := float64(px) + 0.5 - cx
				ddy := float64(py) + 0.5 - cy
				gauss := math.Exp(-(ddx*ddx + ddy*ddy) * inv2s2)
				if gauss < 1e-4 {
					continue
				}
				f := p.Flux * gauss
				idx := py*s + px
				g[idx] += float32(f * pg)
				rb[idx] += float32(f * pr)
				ib[idx] += float32(f * pi)
			}
		}
	}

	// Sky noise, then the log stretch.
	for i := range g {
		if r.Noise > 0 {
			g[i] += float32(math.Abs(rng.Norm()) * r.Noise)
			rb[i] += float32(math.Abs(rng.Norm()) * r.Noise)
			ib[i] += float32(math.Abs(rng.Norm()) * r.Noise)
		}
		g[i] = logCompress(g[i])
		rb[i] = logCompress(rb[i])
		ib[i] = logCompress(ib[i])
	}
}

func logCompress(v float32) float32 {
	return float32(math.Log1p(float64(v)) * 0.5)
}

// Dataset is an in-memory labelled cutout set.
type Dataset struct {
	Images  *tensor.Tensor // [N, 3, S, S]
	Labels  []int
	Objects []Object // kept for morphology-cut baselines on the same sample
}

// GenerateDataset draws n preselected objects, renders them, and returns
// the packaged dataset.
func GenerateDataset(cfg GenConfig, r *Renderer, n int, rng *tensor.RNG) *Dataset {
	objects, labels := cfg.GenerateObjects(n, rng)
	images := tensor.New(n, Channels, r.Size, r.Size)
	per := r.SampleFloats()
	for i := range objects {
		r.Render(&objects[i], rng, images.Data[i*per:(i+1)*per])
	}
	return &Dataset{Images: images, Labels: labels, Objects: objects}
}

// Batch gathers the indexed samples into x ([len(idx),3,S,S]) and labels.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	s := d.Images.Shape
	x := tensor.New(len(idx), s[1], s[2], s[3])
	labels := make([]int, len(idx))
	d.BatchInto(x, labels, idx)
	return x, labels
}

// BatchInto is Batch writing into caller-owned staging — the
// allocation-free form planned training replicas reuse every iteration.
func (d *Dataset) BatchInto(x *tensor.Tensor, labels []int, idx []int) {
	s := d.Images.Shape
	per := s[1] * s[2] * s[3]
	if x.Len() != len(idx)*per || len(labels) != len(idx) {
		panic("astro: BatchInto staging size mismatch")
	}
	for bi, i := range idx {
		copy(x.Data[bi*per:(bi+1)*per], d.Images.Data[i*per:(i+1)*per])
		labels[bi] = d.Labels[i]
	}
}

// SaveShards persists the dataset's images to numShards shard files under
// dir and returns their paths — the on-disk layout a shard-backed
// TrainingProblem (and its prefetch pipeline) reads from. Shards store the
// exact float bits, so file-backed training is bitwise-equal to in-memory.
func (d *Dataset) SaveShards(dir string, numShards int) ([]string, error) {
	s := d.Images.Shape
	per := s[1] * s[2] * s[3]
	return data.WriteShards(dir, numShards, s[0], per, 0, d.Images.Data, nil)
}
