package astro

import (
	"fmt"
	"time"

	"deep15pf/internal/core"
	"deep15pf/internal/data"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/tensor"
)

// TrainingProblem adapts the astronomy classification task to the
// distributed trainer (core.Problem), mirroring the HEP adapter: replicas
// share one in-memory dataset, are initialised from a common seed so every
// worker starts bitwise identical, and optionally read features from shard
// files.
//
// The transfer-learning fields are what make this the third-science
// workload rather than a third copy of hep: InitFrom maps a donor
// checkpoint's blobs into every replica by name and shape before training,
// and FreezeNames freezes the mapped backbone (nn.Network.Freeze), so the
// trainer's solvers, gradient exchange and checkpoints all see only the
// head. Because every replica applies the identical mapping and freeze, the
// fine-tune trajectory stays bitwise-reproducible under the golden
// machinery.
type TrainingProblem struct {
	DS       *Dataset
	Model    ModelConfig
	InitSeed uint64

	// Backing, when non-nil, is the on-disk feature source: sample i's
	// image is read from the shard set at global index i.
	Backing *data.ShardSet

	// SampleWeights, when non-nil, weights each sample's loss contribution
	// (one entry per dataset sample). Nil keeps the unweighted loss path.
	SampleWeights []float32

	// InitFrom, when non-nil, holds donor checkpoint blobs mapped into
	// every replica by name and shape (nn.MapWeights with AllowExtra for
	// the fresh astro head and AllowUnused for the donor's discarded
	// head). Use NewTransferProblem to validate the mapping once up front.
	InitFrom []nn.WeightBlob

	// FreezeNames lists layers frozen after the donor weights land —
	// typically BackboneLayerNames(units). Empty trains everything.
	FreezeNames []string
}

// NewTrainingProblem builds a from-scratch adapter.
func NewTrainingProblem(ds *Dataset, model ModelConfig, initSeed uint64) *TrainingProblem {
	return &TrainingProblem{DS: ds, Model: model, InitSeed: initSeed}
}

// NewTransferProblem builds a fine-tune adapter: donor blobs are mapped
// into the backbone and freeze lists the frozen layers. The mapping is
// validated against a probe network immediately so an incompatible donor
// fails here, with the mapping report, rather than inside worker spawn.
func NewTransferProblem(ds *Dataset, model ModelConfig, initSeed uint64, donor []nn.WeightBlob, freeze []string) (*TrainingProblem, nn.MapResult, error) {
	p := &TrainingProblem{DS: ds, Model: model, InitSeed: initSeed, InitFrom: donor, FreezeNames: freeze}
	probe := BuildNet(model, tensor.NewRNG(initSeed))
	res, err := nn.MapWeights(probe.Params(), donor, nn.MapOptions{AllowExtra: true, AllowUnused: true})
	if err != nil {
		return nil, res, fmt.Errorf("astro: donor checkpoint does not map into %s: %w", model.Name, err)
	}
	if len(res.Mapped) == 0 {
		return nil, res, fmt.Errorf("astro: donor checkpoint shares no layer with %s", model.Name)
	}
	probe.Freeze(freeze...) // panics on unknown/non-prefix names, same as replicas would
	return p, res, nil
}

// NewReplica implements core.Problem. Fine-tune replicas map the donor
// blobs and freeze the backbone before compiling plans, so the plan cache
// compiles the frozen prefix on the eval datapath from the start.
func (p *TrainingProblem) NewReplica() core.Replica {
	net := BuildNet(p.Model, tensor.NewRNG(p.InitSeed))
	if len(p.InitFrom) > 0 {
		if _, err := nn.MapWeights(net.Params(), p.InitFrom, nn.MapOptions{AllowExtra: true, AllowUnused: true}); err != nil {
			panic("astro: donor mapping failed (validate with NewTransferProblem): " + err.Error())
		}
	}
	if len(p.FreezeNames) > 0 {
		net.Freeze(p.FreezeNames...)
	}
	arena := tensor.NewArena()
	r := &replica{
		net:       net,
		ds:        p.DS,
		backing:   p.Backing,
		params:    net.Params(),
		arena:     arena,
		plans:     nn.NewPlanCache(net, true, arena),
		xStage:    tensor.NewStaging(arena, net.InShape...),
		gradStage: tensor.NewStaging(arena, p.Model.Classes),
		sampleW:   p.SampleWeights,
	}
	if r.backing != nil {
		r.ioScratch = make([]byte, r.backing.ScratchLen())
	}
	return r
}

// NewBatchSource implements core.Problem.
func (p *TrainingProblem) NewBatchSource(seed uint64) core.BatchSource {
	return &batchSource{n: p.DS.Images.Shape[0], rng: tensor.NewRNG(seed)}
}

type replica struct {
	net     *nn.Network
	ds      *Dataset
	backing *data.ShardSet
	params  []*nn.Param // cached: per-iteration ZeroGrads must not rebuild the slice
	arena   *tensor.Arena
	plans   *nn.PlanCache

	// Reusable per-iteration staging, grown to the largest batch seen.
	xStage, gradStage *tensor.Staging
	labels            []int

	sampleW []float32
	wbuf    []float32

	// Streaming ingest (core.PipelineReplica).
	pipe   *data.Pipeline[*astroSlot]
	ingest data.IngestStats

	ioScratch []byte

	lane *obs.Lane
}

// SetTraceLane implements core.TracedReplica.
func (r *replica) SetTraceLane(l *obs.Lane) { r.lane = l }

// astroSlot is one staged batch in the prefetch ring.
type astroSlot struct {
	stage   *tensor.Staging
	x       *tensor.Tensor
	labels  []int
	weights []float32
	n       int
}

func (r *replica) TrainableLayers() []nn.Layer { return r.net.TrainableLayers() }
func (r *replica) ZeroGrad()                   { nn.ZeroGrads(r.params) }

// stageInto copies batch idx into caller-owned staging, from the shard
// backing when configured or the in-memory dataset — the single staging
// primitive both ingest paths share, keeping them bitwise equal.
func (r *replica) stageInto(x *tensor.Tensor, labels []int, weights []float32, idx []int) error {
	if weights != nil {
		for bi, i := range idx {
			weights[bi] = r.sampleW[i]
		}
	}
	if r.backing != nil {
		if err := r.backing.ReadBatchInto(idx, x.Data, nil, r.ioScratch); err != nil {
			return err
		}
		for bi, i := range idx {
			labels[bi] = r.ds.Labels[i]
		}
		return nil
	}
	r.ds.BatchInto(x, labels, idx)
	return nil
}

func (r *replica) batchWeights(n int) []float32 {
	if r.sampleW == nil {
		return nil
	}
	if cap(r.wbuf) < n {
		r.wbuf = make([]float32, n)
	}
	return r.wbuf[:n]
}

func (r *replica) ComputeGradients(idx []int) float64 {
	return r.ComputeGradientsStream(idx, nil)
}

// ComputeGradientsStream implements core.StreamReplica: the blocking ingest
// path — stage now, then compute — with per-layer gradient streaming. On a
// frozen replica the stream only ever fires for head layers; the backbone
// is invisible to the exchange tier.
func (r *replica) ComputeGradientsStream(idx []int, gradDone func(layer int)) float64 {
	n := len(idx)
	x := r.xStage.Batch(n)
	if cap(r.labels) < n {
		r.labels = make([]int, n)
	}
	labels := r.labels[:n]
	weights := r.batchWeights(n)
	r.lane.Begin(obs.PhaseIngest)
	t0 := time.Now()
	if err := r.stageInto(x, labels, weights, idx); err != nil {
		panic("astro: batch staging failed: " + err.Error())
	}
	r.lane.End(obs.PhaseIngest)
	dt := time.Since(t0).Seconds()
	r.ingest.Batches++
	r.ingest.Samples += int64(n)
	r.ingest.StageSeconds += dt
	r.ingest.WaitSeconds += dt
	return r.computeOn(x, labels, weights, gradDone)
}

// computeOn is the shared forward/loss/backward over an already-staged
// batch.
func (r *replica) computeOn(x *tensor.Tensor, labels []int, weights []float32, gradDone func(layer int)) float64 {
	n := x.Shape[0]
	grad := r.gradStage.Batch(n)
	plan := r.plans.Plan(n)
	r.lane.Begin(obs.PhaseFwd)
	logits := plan.Forward(x)
	loss := nn.SoftmaxCrossEntropyWeightedInto(logits, labels, weights, grad)
	r.lane.End(obs.PhaseFwd)
	r.lane.Begin(obs.PhaseBwd)
	plan.BackwardStream(grad, gradDone)
	r.lane.End(obs.PhaseBwd)
	return loss
}

// StartIngest implements core.PipelineReplica.
func (r *replica) StartIngest(batches [][]int, lookahead int) {
	if lookahead < 1 {
		lookahead = 1
	}
	maxN := 0
	for _, b := range batches {
		if len(b) > maxN {
			maxN = len(b)
		}
	}
	if maxN == 0 {
		r.pipe = nil
		return
	}
	slots := make([]*astroSlot, lookahead+1)
	for i := range slots {
		st := tensor.NewStaging(r.arena, r.net.InShape...)
		st.Batch(maxN)
		slots[i] = &astroSlot{stage: st, labels: make([]int, maxN)}
		if r.sampleW != nil {
			slots[i].weights = make([]float32, maxN)
		}
	}
	ingLane := r.lane.Tracer().Lane(r.lane.Name() + ".ingest")
	staged := 0
	r.pipe = data.NewPipeline(slots, data.SliceSource(batches),
		func(dst *astroSlot, idx []int) error {
			ingLane.SetIter(staged)
			staged++
			ingLane.Begin(obs.PhaseIngest)
			dst.n = len(idx)
			dst.x = dst.stage.Batch(dst.n)
			var w []float32
			if dst.weights != nil {
				w = dst.weights[:dst.n]
			}
			err := r.stageInto(dst.x, dst.labels[:dst.n], w, idx)
			ingLane.End(obs.PhaseIngest)
			return err
		})
	r.pipe.Start()
}

// ComputeStagedStream implements core.PipelineReplica.
func (r *replica) ComputeStagedStream(gradDone func(layer int)) float64 {
	r.lane.Begin(obs.PhaseIngest)
	slot, ok := r.pipe.Next()
	r.lane.End(obs.PhaseIngest)
	if !ok {
		if err := r.pipe.Err(); err != nil {
			panic("astro: ingest pipeline: " + err.Error())
		}
		panic("astro: ingest pipeline exhausted before training finished")
	}
	var w []float32
	if slot.weights != nil {
		w = slot.weights[:slot.n]
	}
	return r.computeOn(slot.x, slot.labels[:slot.n], w, gradDone)
}

// StopIngest implements core.PipelineReplica.
func (r *replica) StopIngest() {
	if r.pipe != nil {
		r.pipe.Stop()
	}
}

// IngestStats implements core.IngestReporter.
func (r *replica) IngestStats() data.IngestStats {
	if r.pipe != nil {
		return r.ingest.Add(r.pipe.Stats())
	}
	return r.ingest
}

// PredictDataset evaluates a trained replica on a dataset, returning the
// argmax class per sample. rep must come from NewReplica().
func PredictDataset(rep core.Replica, ds *Dataset, batch int) []int {
	ar, ok := rep.(*replica)
	if !ok {
		panic("astro: replica was not created by this problem")
	}
	n := ds.Images.Shape[0]
	out := make([]int, 0, n)
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, _ := ds.Batch(idx)
		out = append(out, Predict(ar.net.Forward(x, false))...)
	}
	return out
}

// EvalAccuracy evaluates a trained replica's accuracy on a dataset.
func EvalAccuracy(rep core.Replica, ds *Dataset, batch int) float64 {
	return Accuracy(PredictDataset(rep, ds, batch), ds.Labels)
}

// ReplicaParams exposes a replica's full parameter blobs (frozen backbone
// included) so a fine-tuned model can be checkpointed whole with
// nn.SaveFile and served through internal/serve. rep must come from
// NewReplica().
func ReplicaParams(rep core.Replica) []*nn.Param {
	ar, ok := rep.(*replica)
	if !ok {
		panic("astro: replica was not created by this problem")
	}
	return ar.net.Params()
}

// ReplicaNet exposes the replica's network (e.g. for fingerprinting the
// full fine-tuned model).
func ReplicaNet(rep core.Replica) *nn.Network {
	ar, ok := rep.(*replica)
	if !ok {
		panic("astro: replica was not created by this problem")
	}
	return ar.net
}

type batchSource struct {
	n   int
	rng *tensor.RNG
	b   *data.Batcher
}

func (s *batchSource) Next(size int) []int {
	if s.b == nil || s.b.BatchSize != size {
		s.b = data.NewBatcher(s.n, size, s.rng)
	}
	return s.b.Next()
}
