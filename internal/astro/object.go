// Package astro implements the third science workload: morphological
// classification of synthetic astronomical sources, the transfer-learning
// counterpart of the PHANGS-HST star-cluster and DES galaxy-morphology
// pipelines in the paper's related work. Three classes — elliptical
// galaxies, spiral galaxies and star clusters — are drawn as parameterised
// sources, rasterised to 3-band (g/r/i) survey cutouts in the hep/climate
// generator style (deterministic, seeded, shard-backed), and classified by
// the same CNN topology as the HEP workload so a trained HEP backbone
// transfers layer-for-layer: `astrotrain -init-from` maps the early conv
// weights by name and shape, freezes them (nn.Network.Freeze) and trains
// only the astro head.
//
// The substitution preserves what makes the astronomy task hard: all three
// classes have overlapping total flux and extent, so scalar photometry
// (brightness, size) cannot separate them — the discriminating structure is
// spatial (smooth profile vs. arm pattern vs. resolved point sources),
// exactly what a convolutional backbone trained on calorimeter blobs
// already detects.
package astro

import (
	"math"

	"deep15pf/internal/tensor"
)

// Class labels.
const (
	ClassElliptical = 0
	ClassSpiral     = 1
	ClassCluster    = 2
	// NumClasses is the classifier output width.
	NumClasses = 3
)

// ClassNames maps labels to their catalog names.
var ClassNames = [NumClasses]string{"elliptical", "spiral", "cluster"}

// PointSource is one unresolved component: a spiral arm star-forming knot
// or a cluster member star. Positions are in unit image coordinates.
type PointSource struct {
	X, Y  float64
	Flux  float64
	Color float64 // 0 = blue, 1 = red; sets the g/r/i band ratios
}

// Object is one source to rasterise: a smooth light profile plus point
// components, in unit image coordinates.
type Object struct {
	Class  int
	Cx, Cy float64 // center
	Radius float64 // smooth-profile scale radius
	Axis   float64 // projected minor/major axis ratio (1 = face-on/round)
	Theta  float64 // position angle of the major axis
	Flux   float64 // smooth-profile peak surface brightness
	Color  float64 // smooth-light color, 0 = blue .. 1 = red

	// Spiral structure (Class == ClassSpiral).
	Bulge float64 // bulge-to-disk peak ratio
	Arms  int     // arm multiplicity m
	Pitch float64 // logarithmic-spiral winding (brightness phase ∝ ln r / Pitch)

	Points []PointSource // arm knots or member stars
}

// TotalFlux is the detectability proxy the preselection cuts on: peak
// surface brightness plus summed point-source flux.
func (o *Object) TotalFlux() float64 {
	f := o.Flux
	for _, p := range o.Points {
		f += p.Flux
	}
	return f
}

// GenConfig parameterises the synthetic source generator.
type GenConfig struct {
	// Elliptical galaxies: smooth, red, flattened exponential spheroids.
	EllRadius  float64 // mean scale radius (unit coords)
	EllAxisMin float64 // most-flattened axis ratio drawn

	// Spiral galaxies: blue exponential disk + round bulge + log-spiral
	// arm modulation seeded with star-forming knots.
	SpiralRadius float64
	SpiralPitch  float64
	SpiralKnots  float64 // Poisson mean knots per arm
	SpiralBulge  float64 // mean bulge-to-disk ratio

	// Star clusters: little smooth light, N resolved member stars.
	ClusterStars  float64 // Poisson mean member count (≥3 enforced)
	ClusterRadius float64 // member-position spread

	FluxScale float64 // exponential peak-brightness scale, all classes

	// Preselection: sources below this total flux are redrawn — the
	// survey's detectability cut, which keeps the retained sample in the
	// brightness range where the classes overlap photometrically.
	PreselMinFlux float64
}

// DefaultGenConfig returns the tuned generator used throughout the
// reproduction: class-balanced flux distributions with heavily overlapping
// photometry, so only morphology separates the classes.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		EllRadius:  0.16,
		EllAxisMin: 0.45,

		SpiralRadius: 0.20,
		SpiralPitch:  0.28,
		SpiralKnots:  5,
		SpiralBulge:  0.6,

		ClusterStars:  14,
		ClusterRadius: 0.14,

		FluxScale:     2.2,
		PreselMinFlux: 1.2,
	}
}

// genCommon draws the fields every class shares: a jittered center and a
// peak brightness from the common falling spectrum.
func (c GenConfig) genCommon(rng *tensor.RNG, o *Object) {
	o.Cx = 0.5 + 0.08*rng.Norm()
	o.Cy = 0.5 + 0.08*rng.Norm()
	o.Flux = 0.8 + rng.Exp(c.FluxScale)
	o.Theta = (2*rng.Float64() - 1) * math.Pi
}

// genElliptical draws a smooth spheroid: red, structureless, with random
// projection flattening.
func (c GenConfig) genElliptical(rng *tensor.RNG) Object {
	o := Object{Class: ClassElliptical}
	c.genCommon(rng, &o)
	o.Radius = c.EllRadius * (0.7 + 0.6*rng.Float64())
	o.Axis = c.EllAxisMin + (1-c.EllAxisMin)*rng.Float64()
	o.Color = clamp(0.75+0.15*rng.Norm(), 0, 1)
	return o
}

// genSpiral draws a disk galaxy: blue exponential disk with an m-armed
// logarithmic spiral brightness pattern, a small red bulge, and
// star-forming knots strung along the arms.
func (c GenConfig) genSpiral(rng *tensor.RNG) Object {
	o := Object{Class: ClassSpiral}
	c.genCommon(rng, &o)
	o.Radius = c.SpiralRadius * (0.7 + 0.6*rng.Float64())
	o.Axis = 0.55 + 0.45*rng.Float64() // disks closer to face-on stay classifiable
	o.Color = clamp(0.25+0.12*rng.Norm(), 0, 1)
	o.Bulge = c.SpiralBulge * (0.5 + rng.Float64())
	o.Arms = 2
	if rng.Float64() < 0.3 {
		o.Arms = 3
	}
	o.Pitch = c.SpiralPitch * (0.8 + 0.4*rng.Float64())
	// Knots trace the arms: place each at a radius drawn from the disk
	// profile, at the azimuth where its arm's spiral phase peaks.
	for arm := 0; arm < o.Arms; arm++ {
		n := 1 + rng.Poisson(c.SpiralKnots)
		for i := 0; i < n; i++ {
			r := o.Radius * (0.4 + 1.4*rng.Float64())
			phase := math.Log(r/(0.25*o.Radius)) / o.Pitch
			phi := phase + float64(arm)*2*math.Pi/float64(o.Arms) + 0.1*rng.Norm()
			o.Points = append(o.Points, PointSource{
				X:     o.Cx + r*math.Cos(phi),
				Y:     o.Cy + r*math.Sin(phi),
				Flux:  0.15 * o.Flux * (0.4 + rng.Exp(1)),
				Color: clamp(0.15+0.1*rng.Norm(), 0, 1), // knots are young and blue
			})
		}
	}
	return o
}

// genCluster draws a star cluster: resolved member stars with a King-like
// concentration and almost no smooth light.
func (c GenConfig) genCluster(rng *tensor.RNG) Object {
	o := Object{Class: ClassCluster}
	c.genCommon(rng, &o)
	o.Radius = c.ClusterRadius * (0.6 + 0.8*rng.Float64())
	o.Axis = 1
	o.Color = clamp(0.5+0.25*rng.Norm(), 0, 1)
	o.Flux *= 0.12 // unresolved halo is faint; members carry the light
	n := 3 + rng.Poisson(c.ClusterStars)
	for i := 0; i < n; i++ {
		// Central concentration: radius ∝ |Norm| gives a dense core with
		// a sparse envelope.
		r := o.Radius * 0.5 * math.Abs(rng.Norm())
		phi := (2*rng.Float64() - 1) * math.Pi
		o.Points = append(o.Points, PointSource{
			X:     o.Cx + r*math.Cos(phi),
			Y:     o.Cy + r*math.Sin(phi),
			Flux:  0.3 * (0.3 + rng.Exp(1.2)),
			Color: clamp(0.5+0.3*rng.Norm(), 0, 1), // mixed stellar population
		})
	}
	return o
}

// Generate draws one preselected object of the requested class, redrawing
// until the detectability cut passes.
func (c GenConfig) Generate(rng *tensor.RNG, class int) Object {
	for {
		var o Object
		switch class {
		case ClassElliptical:
			o = c.genElliptical(rng)
		case ClassSpiral:
			o = c.genSpiral(rng)
		case ClassCluster:
			o = c.genCluster(rng)
		default:
			panic("astro: unknown class")
		}
		if o.TotalFlux() >= c.PreselMinFlux {
			return o
		}
	}
}

// GenerateObjects draws n preselected objects with balanced classes.
func (c GenConfig) GenerateObjects(n int, rng *tensor.RNG) ([]Object, []int) {
	objects := make([]Object, n)
	labels := make([]int, n)
	for i := range objects {
		class := rng.Intn(NumClasses)
		objects[i] = c.Generate(rng, class)
		labels[i] = class
	}
	return objects, labels
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
