package astro

import (
	"bytes"
	"testing"

	"deep15pf/internal/core"
	"deep15pf/internal/data"
	"deep15pf/internal/hep"
	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// testModel is the tiny geometry shared with the donor HEP model below: 16
// px, 8 filters, 3 conv units — small enough for single-core test runs.
var testModel = ModelConfig{Name: "astro-test", ImageSize: 16, Filters: 8, ConvUnits: 3, Classes: NumClasses}

// hepDonorBlobs trains nothing — it just builds the matching HEP net and
// serialises its (initialised) weights, which is all the mapping layer
// cares about.
func hepDonorBlobs(t *testing.T) []nn.WeightBlob {
	t.Helper()
	cfg := hep.ModelConfig{Name: "hep-donor", ImageSize: 16, Filters: 8, ConvUnits: 3, Classes: 2}
	net := hep.BuildNet(cfg, tensor.NewRNG(41))
	var buf bytes.Buffer
	if err := nn.SaveWeights(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	blobs, err := nn.ReadWeightBlobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return blobs
}

func testDataset(seed uint64, n int) *Dataset {
	return GenerateDataset(DefaultGenConfig(), NewRenderer(16), n, tensor.NewRNG(seed))
}

// TestHEPBackboneMapsIntoAstro pins the cross-workload contract: the HEP
// classifier's conv backbone maps into the astro model name-for-name, the
// donor's head is reported unused, and the astro head is reported fresh.
func TestHEPBackboneMapsIntoAstro(t *testing.T) {
	ds := testDataset(5, 12)
	p, res, err := NewTransferProblem(ds, testModel, 9, hepDonorBlobs(t), BackboneLayerNames(testModel.ConvUnits))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mapped) != 6 { // conv1..conv3 × (weight, bias)
		t.Fatalf("mapped %v, want the 3 conv pairs", res.Mapped)
	}
	if len(res.Unused) != 2 || res.Unused[0] != "fc.weight" {
		t.Fatalf("unused %v, want the donor fc pair", res.Unused)
	}
	if len(res.Extra) != 2 || res.Extra[0] != "astro_fc.weight" {
		t.Fatalf("extra %v, want the fresh astro head", res.Extra)
	}

	// The replica actually carries the donor weights, frozen.
	rep := p.NewReplica()
	net := ReplicaNet(rep)
	if got := len(net.TrainableLayers()); got != 1 {
		t.Fatalf("frozen replica has %d trainable layers, want 1 (the head)", got)
	}
	donor := hepDonorBlobs(t)
	for _, prm := range net.Params() {
		for _, b := range donor {
			if b.Name != prm.Name {
				continue
			}
			for j, v := range b.Data {
				if prm.W.Data[j] != v {
					t.Fatalf("%s diverges from donor at %d", prm.Name, j)
				}
			}
		}
	}
}

// TestTransferProblemRejectsBadDonor: shape drift between nominally shared
// layers must fail at problem construction with the mapping error.
func TestTransferProblemRejectsBadDonor(t *testing.T) {
	cfg := hep.ModelConfig{Name: "hep-wide", ImageSize: 16, Filters: 16, ConvUnits: 3, Classes: 2}
	net := hep.BuildNet(cfg, tensor.NewRNG(41))
	var buf bytes.Buffer
	if err := nn.SaveWeights(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	blobs, err := nn.ReadWeightBlobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = NewTransferProblem(testDataset(5, 12), testModel, 9, blobs, BackboneLayerNames(3))
	if err == nil {
		t.Fatal("16-filter donor must not map into an 8-filter target")
	}
}

// TestFrozenRunBitwiseReproducible is the golden-machinery gate for the
// fine-tune path: two identical frozen runs must agree bit for bit on the
// trained head AND on the full model (frozen backbone included), and the
// shard-backed prefetched run must reproduce the in-memory trajectory.
func TestFrozenRunBitwiseReproducible(t *testing.T) {
	ds := testDataset(5, 24)
	donor := hepDonorBlobs(t)
	freeze := BackboneLayerNames(testModel.ConvUnits)
	build := func() *TrainingProblem {
		p, _, err := NewTransferProblem(ds, testModel, 9, donor, freeze)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cfg := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 8, Iterations: 6, Seed: 3}
	run := func(p *TrainingProblem, prefetch int) (core.Result, []float32) {
		c := cfg
		c.Solver = opt.NewSGD(0.05, 0.9)
		c.Prefetch = prefetch
		res := core.TrainSync(p, c)
		// Full-model weights via a fresh replica + InstallWeights.
		rep := p.NewReplica()
		core.InstallWeights(rep, res.FinalWeights)
		var full []float32
		for _, prm := range ReplicaParams(rep) {
			full = append(full, prm.W.Data...)
		}
		return res, full
	}

	_, fullA := run(build(), 0)
	_, fullB := run(build(), 0)
	if len(fullA) == 0 || len(fullA) != len(fullB) {
		t.Fatalf("weight sizes %d vs %d", len(fullA), len(fullB))
	}
	for i, v := range fullA {
		if fullB[i] != v {
			t.Fatalf("repeat frozen run diverges at element %d", i)
		}
	}

	shard := build()
	paths, err := ds.SaveShards(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	set, err := data.OpenShardSet(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	shard.Backing = set
	_, fullC := run(shard, 2)
	for i, v := range fullA {
		if fullC[i] != v {
			t.Fatalf("shard-backed prefetched frozen run diverges at element %d", i)
		}
	}
}

// TestFrozenExchangeZeroGradBytes is the acceptance assertion: with the
// backbone frozen, the parameter-server wire must carry exactly the head's
// gradient bytes — 4 bytes per head element per push — and nothing for the
// frozen layers.
func TestFrozenExchangeZeroGradBytes(t *testing.T) {
	ds := testDataset(5, 24)
	donor := hepDonorBlobs(t)
	cfg := core.Config{Groups: 2, WorkersPerGroup: 1, GroupBatch: 8, Iterations: 4, Seed: 3}
	run := func(freeze []string) core.Result {
		var p *TrainingProblem
		if freeze != nil {
			var err error
			p, _, err = NewTransferProblem(ds, testModel, 9, donor, freeze)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			p = NewTrainingProblem(ds, testModel, 9)
		}
		c := cfg
		c.Solver = opt.NewSGD(0.05, 0.9)
		return core.TrainHybrid(p, c)
	}

	frozen := run(BackboneLayerNames(testModel.ConvUnits))
	full := run(nil)

	headElems := int64(testModel.Filters*testModel.Classes + testModel.Classes)
	if frozen.Wire.Pushes == 0 {
		t.Fatal("frozen run pushed nothing")
	}
	if want := 4 * headElems * frozen.Wire.Pushes; frozen.Wire.GradBytes != want {
		t.Fatalf("frozen run moved %d gradient bytes, want exactly %d (head only)",
			frozen.Wire.GradBytes, want)
	}
	// One PS per trainable layer: the frozen run fields 1, the full run 4.
	if frozen.Wire.Pushes*4 != full.Wire.Pushes {
		t.Fatalf("push counts %d (frozen) vs %d (full): frozen run still pushes backbone layers",
			frozen.Wire.Pushes, full.Wire.Pushes)
	}
	if frozen.Wire.GradBytes >= full.Wire.GradBytes/10 {
		t.Fatalf("frozen wire %d bytes, full wire %d — freezing saved too little",
			frozen.Wire.GradBytes, full.Wire.GradBytes)
	}
}

// TestFrozenTrainingIterationZeroAllocs keeps the PR 2 allocation gate on
// the fine-tune replica's warm path.
func TestFrozenTrainingIterationZeroAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	ds := testDataset(5, 16)
	p, _, err := NewTransferProblem(ds, testModel, 9, hepDonorBlobs(t), BackboneLayerNames(testModel.ConvUnits))
	if err != nil {
		t.Fatal(err)
	}
	rep := p.NewReplica().(*replica)
	idx := []int{1, 5, 9, 13}
	iter := func() {
		rep.ZeroGrad()
		rep.ComputeGradients(idx)
	}
	iter() // warm: plan compile, staging growth
	if allocs := testing.AllocsPerRun(20, iter); allocs != 0 {
		t.Fatalf("warmed frozen training iteration allocates %v objects/op, want 0", allocs)
	}
}

// TestFineTuneLearnsHead: sanity that training only the head still learns
// the astro task (the A/B against from-scratch lives in the bench gate).
func TestFineTuneLearnsHead(t *testing.T) {
	train := testDataset(5, 96)
	p, _, err := NewTransferProblem(train, testModel, 9, hepDonorBlobs(t), BackboneLayerNames(testModel.ConvUnits))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: 16, Iterations: 30, Seed: 3}
	cfg.Solver = opt.NewAdam(5e-3)
	res := core.TrainHybrid(p, cfg)
	first, last := res.Stats[0].Loss, res.Stats[len(res.Stats)-1].Loss
	if !(last < first) {
		t.Fatalf("frozen fine-tune did not learn: loss %.4f -> %.4f", first, last)
	}
	rep := p.NewReplica()
	core.InstallWeights(rep, res.FinalWeights)
	if acc := EvalAccuracy(rep, train, 32); acc <= 1.0/NumClasses+0.05 {
		t.Fatalf("fine-tuned train accuracy %.3f no better than chance", acc)
	}
}
