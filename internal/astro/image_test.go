package astro

import (
	"testing"

	"deep15pf/internal/data"
	"deep15pf/internal/tensor"
)

// TestGeneratorDeterminism pins the seeded-generator contract the golden
// machinery stands on: identical seeds produce bitwise-identical datasets.
func TestGeneratorDeterminism(t *testing.T) {
	gen := func(seed uint64) *Dataset {
		return GenerateDataset(DefaultGenConfig(), NewRenderer(16), 24, tensor.NewRNG(seed))
	}
	a, b := gen(11), gen(11)
	for i, v := range a.Images.Data {
		if b.Images.Data[i] != v {
			t.Fatalf("same seed diverges at element %d", i)
		}
	}
	for i, l := range a.Labels {
		if b.Labels[i] != l {
			t.Fatalf("same seed diverges at label %d", i)
		}
	}
	c := gen(12)
	same := true
	for i, v := range a.Images.Data {
		if c.Images.Data[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

// TestDatasetShapeAndClasses checks the rendered layout and that the
// balanced generator covers every morphology class.
func TestDatasetShapeAndClasses(t *testing.T) {
	ds := GenerateDataset(DefaultGenConfig(), NewRenderer(16), 60, tensor.NewRNG(3))
	s := ds.Images.Shape
	if s[0] != 60 || s[1] != Channels || s[2] != 16 || s[3] != 16 {
		t.Fatalf("image shape %v", s)
	}
	var seen [NumClasses]int
	for i, l := range ds.Labels {
		if l < 0 || l >= NumClasses {
			t.Fatalf("label %d out of range", l)
		}
		if ds.Objects[i].Class != l {
			t.Fatalf("object %d class %d, label %d", i, ds.Objects[i].Class, l)
		}
		seen[l]++
	}
	for c, n := range seen {
		if n == 0 {
			t.Fatalf("class %s never drawn in 60 samples", ClassNames[c])
		}
	}
	// Every cutout must carry light (the preselection guarantees a source).
	per := Channels * 16 * 16
	for i := 0; i < 60; i++ {
		var sum float32
		for _, v := range ds.Images.Data[i*per : (i+1)*per] {
			if v < 0 {
				t.Fatalf("sample %d has negative intensity after log stretch", i)
			}
			sum += v
		}
		if sum == 0 {
			t.Fatalf("sample %d rendered empty", i)
		}
	}
}

// TestShardRoundTrip pins the on-disk path: shards must return the exact
// float bits the renderer produced.
func TestShardRoundTrip(t *testing.T) {
	ds := GenerateDataset(DefaultGenConfig(), NewRenderer(16), 10, tensor.NewRNG(7))
	paths, err := ds.SaveShards(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	set, err := data.OpenShardSet(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Count != 10 {
		t.Fatalf("shard set holds %d samples, want 10", set.Count)
	}
	per := ds.Images.Shape[1] * ds.Images.Shape[2] * ds.Images.Shape[3]
	idx := []int{9, 0, 4}
	out := make([]float32, len(idx)*per)
	if err := set.ReadBatchInto(idx, out, nil, make([]byte, set.ScratchLen())); err != nil {
		t.Fatal(err)
	}
	for bi, i := range idx {
		for j := 0; j < per; j++ {
			if out[bi*per+j] != ds.Images.Data[i*per+j] {
				t.Fatalf("sample %d diverges at %d after shard round-trip", i, j)
			}
		}
	}
}
