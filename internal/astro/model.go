package astro

import (
	"fmt"

	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// ModelConfig selects the network scale. The topology is deliberately the
// HEP classifier's (hep.BuildNet) with the same backbone layer names —
// conv1..convN, pools, global_pool — so a HEP checkpoint's early layers map
// into an astro model by name and shape (nn.MapWeights); only the head is
// new, and named astro_fc so no donor blob can collide with it.
type ModelConfig struct {
	Name      string
	ImageSize int
	Filters   int
	ConvUnits int // conv(+pool) units; the last uses global average pooling
	Classes   int
}

// PaperConfig mirrors the §III-A HEP scale for the astronomy workload —
// what a PHANGS/DES-sized run would fine-tune.
func PaperConfig() ModelConfig {
	return ModelConfig{Name: "astro-paper", ImageSize: 224, Filters: 128, ConvUnits: 5, Classes: NumClasses}
}

// SmallConfig is the laptop-scale variant, geometry-compatible with
// hep.SmallConfig so its checkpoints donate a full backbone.
func SmallConfig() ModelConfig {
	return ModelConfig{Name: "astro-small", ImageSize: 32, Filters: 16, ConvUnits: 4, Classes: NumClasses}
}

// BuildNet constructs the classifier: the HEP conv backbone plus a fresh
// 3-class head.
func BuildNet(cfg ModelConfig, rng *tensor.RNG) *nn.Network {
	if cfg.ConvUnits < 2 {
		panic("astro: need at least 2 conv units")
	}
	minSize := 1 << (cfg.ConvUnits - 1)
	if cfg.ImageSize < minSize {
		panic(fmt.Sprintf("astro: image size %d too small for %d conv units", cfg.ImageSize, cfg.ConvUnits))
	}
	net := nn.NewNetwork(cfg.Name, Channels, cfg.ImageSize, cfg.ImageSize)
	inC := Channels
	for u := 1; u <= cfg.ConvUnits; u++ {
		net.Add(
			nn.NewConv2D(fmt.Sprintf("conv%d", u), inC, cfg.Filters, 3, 1, 1, rng),
			nn.NewReLU(fmt.Sprintf("relu%d", u)),
		)
		if u < cfg.ConvUnits {
			net.Add(nn.NewMaxPool2D(fmt.Sprintf("pool%d", u), 2, 2))
		} else {
			net.Add(nn.NewGlobalAvgPool("global_pool"))
		}
		inC = cfg.Filters
	}
	net.Add(nn.NewDense("astro_fc", cfg.Filters, cfg.Classes, rng))
	return net
}

// BackboneLayerNames returns the conv layer names of the first units conv
// blocks — the freeze list a fine-tune run hands to nn.Network.Freeze.
// Only the parameterised conv layers are named; activations and pools own
// no parameters, so freezing them is implicit in the backward cut.
func BackboneLayerNames(units int) []string {
	names := make([]string, units)
	for u := 1; u <= units; u++ {
		names[u-1] = fmt.Sprintf("conv%d", u)
	}
	return names
}

// ClassProbs returns per-class probabilities from logits as an [N,Classes]
// tensor.
func ClassProbs(logits *tensor.Tensor) *tensor.Tensor {
	return nn.SoftmaxProbs(logits)
}

// Predict returns the argmax class per sample from logits.
func Predict(logits *tensor.Tensor) []int {
	n, c := logits.Shape[0], logits.Shape[1]
	out := make([]int, n)
	for i := 0; i < n; i++ {
		best := 0
		for j := 1; j < c; j++ {
			if logits.At(i, j) > logits.At(i, best) {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// Accuracy returns the fraction of predictions matching labels.
func Accuracy(pred, labels []int) float64 {
	if len(pred) != len(labels) {
		panic("astro: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	hits := 0
	for i := range pred {
		if pred[i] == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}
