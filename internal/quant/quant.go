// Package quant implements low-precision gradient compression, the §VIII-A
// direction the paper flags for future hardware: "training with quantized
// weights and activations … with various forms of stochastic rounding being
// of critical importance in convergence". Gradients quantize to int8 with a
// per-tensor scale before the (simulated or real) wire, cutting parameter-
// server and allreduce payloads 4x.
//
// Two rounding modes are provided because their difference is the point:
// round-to-nearest silently zeroes every gradient smaller than half the
// quantisation step, stalling convergence, while stochastic rounding is
// unbiased (E[dequantize(quantize(x))] = x) and keeps small gradients
// alive in expectation.
package quant

import (
	"math"

	"deep15pf/internal/tensor"
)

// Quantized is an int8-compressed tensor with its dequantisation scale.
type Quantized struct {
	Data  []int8
	Scale float32 // value = Data[i] * Scale
}

// Bytes returns the wire size (payload + scale).
func (q Quantized) Bytes() int { return len(q.Data) + 4 }

// ScaleFor returns the per-block scale mapping the max magnitude of src to
// 127 (1 for an all-zero block). The streamed gradient wire calls it per
// chunk, so one outlier only coarsens its own chunk's quantisation grid.
func ScaleFor(src []float32) float32 {
	var maxAbs float32
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / 127
}

// StochasticInto quantises src into dst (equal length) with the given scale
// using stochastic rounding, allocating nothing. It is the building block
// the comm wire codec assembles into chunked encodes over reused buffers.
func StochasticInto(dst []int8, src []float32, scale float32, rng *tensor.RNG) {
	if len(dst) != len(src) {
		panic("quant: StochasticInto length mismatch")
	}
	inv := 1 / scale
	for i, v := range src {
		x := float64(v * inv)
		lo := math.Floor(x)
		frac := x - lo
		r := lo
		if rng.Float64() < frac {
			r = lo + 1
		}
		dst[i] = clampInt8(r)
	}
}

// NearestInto quantises src into dst with round-to-nearest (the biased
// baseline), allocating nothing.
func NearestInto(dst []int8, src []float32, scale float32) {
	if len(dst) != len(src) {
		panic("quant: NearestInto length mismatch")
	}
	inv := 1 / scale
	for i, v := range src {
		dst[i] = clampInt8(math.Round(float64(v * inv)))
	}
}

// DequantizeInto expands src into dst (equal length) at the given scale,
// allocating nothing.
func DequantizeInto(dst []float32, src []int8, scale float32) {
	if len(dst) != len(src) {
		panic("quant: DequantizeInto length mismatch")
	}
	for i, v := range src {
		dst[i] = float32(v) * scale
	}
}

// Stochastic quantises with stochastic rounding: x/scale rounds up with
// probability equal to its fractional part, making the estimator unbiased.
func Stochastic(src []float32, rng *tensor.RNG) Quantized {
	q := Quantized{Data: make([]int8, len(src)), Scale: ScaleFor(src)}
	StochasticInto(q.Data, src, q.Scale, rng)
	return q
}

// Nearest quantises with round-to-nearest (the biased baseline).
func Nearest(src []float32) Quantized {
	q := Quantized{Data: make([]int8, len(src)), Scale: ScaleFor(src)}
	NearestInto(q.Data, src, q.Scale)
	return q
}

func clampInt8(v float64) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// Dequantize expands q into dst (which must have matching length).
func Dequantize(q Quantized, dst []float32) {
	DequantizeInto(dst, q.Data, q.Scale)
}

// RoundTrip compresses and immediately decompresses in place — the exact
// distortion a gradient suffers crossing a quantised wire.
func RoundTrip(data []float32, rng *tensor.RNG, stochastic bool) {
	var q Quantized
	if stochastic {
		q = Stochastic(data, rng)
	} else {
		q = Nearest(data)
	}
	Dequantize(q, data)
}

// RoundTripTensor round-trips a tensor's storage through int8 in place. The
// serving layer uses it for its low-precision mode: weights round-trip once
// at checkpoint load and activations round-trip at layer boundaries, so the
// float pipeline computes exactly what an int8 weight/activation datapath
// would see (per-tensor scale, stochastic rounding).
func RoundTripTensor(t *tensor.Tensor, rng *tensor.RNG, stochastic bool) {
	RoundTrip(t.Data, rng, stochastic)
}
