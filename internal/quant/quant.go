// Package quant implements low-precision gradient compression, the §VIII-A
// direction the paper flags for future hardware: "training with quantized
// weights and activations … with various forms of stochastic rounding being
// of critical importance in convergence". Gradients quantize to int8 with a
// per-tensor scale before the (simulated or real) wire, cutting parameter-
// server and allreduce payloads 4x.
//
// Two rounding modes are provided because their difference is the point:
// round-to-nearest silently zeroes every gradient smaller than half the
// quantisation step, stalling convergence, while stochastic rounding is
// unbiased (E[dequantize(quantize(x))] = x) and keeps small gradients
// alive in expectation.
package quant

import (
	"math"

	"deep15pf/internal/tensor"
)

// Quantized is an int8-compressed tensor with its dequantisation scale.
type Quantized struct {
	Data  []int8
	Scale float32 // value = Data[i] * Scale
}

// Bytes returns the wire size (payload + scale).
func (q Quantized) Bytes() int { return len(q.Data) + 4 }

// scaleFor returns the per-tensor scale mapping the max magnitude to 127.
func scaleFor(src []float32) float32 {
	var maxAbs float32
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / 127
}

// Stochastic quantises with stochastic rounding: x/scale rounds up with
// probability equal to its fractional part, making the estimator unbiased.
func Stochastic(src []float32, rng *tensor.RNG) Quantized {
	q := Quantized{Data: make([]int8, len(src)), Scale: scaleFor(src)}
	inv := 1 / q.Scale
	for i, v := range src {
		x := float64(v * inv)
		lo := math.Floor(x)
		frac := x - lo
		r := lo
		if rng.Float64() < frac {
			r = lo + 1
		}
		q.Data[i] = clampInt8(r)
	}
	return q
}

// Nearest quantises with round-to-nearest (the biased baseline).
func Nearest(src []float32) Quantized {
	q := Quantized{Data: make([]int8, len(src)), Scale: scaleFor(src)}
	inv := 1 / q.Scale
	for i, v := range src {
		q.Data[i] = clampInt8(math.Round(float64(v * inv)))
	}
	return q
}

func clampInt8(v float64) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// Dequantize expands q into dst (which must have matching length).
func Dequantize(q Quantized, dst []float32) {
	if len(dst) != len(q.Data) {
		panic("quant: Dequantize length mismatch")
	}
	for i, v := range q.Data {
		dst[i] = float32(v) * q.Scale
	}
}

// RoundTrip compresses and immediately decompresses in place — the exact
// distortion a gradient suffers crossing a quantised wire.
func RoundTrip(data []float32, rng *tensor.RNG, stochastic bool) {
	var q Quantized
	if stochastic {
		q = Stochastic(data, rng)
	} else {
		q = Nearest(data)
	}
	Dequantize(q, data)
}

// RoundTripTensor round-trips a tensor's storage through int8 in place. The
// serving layer uses it for its low-precision mode: weights round-trip once
// at checkpoint load and activations round-trip at layer boundaries, so the
// float pipeline computes exactly what an int8 weight/activation datapath
// would see (per-tensor scale, stochastic rounding).
func RoundTripTensor(t *tensor.Tensor, rng *tensor.RNG, stochastic bool) {
	RoundTrip(t.Data, rng, stochastic)
}
