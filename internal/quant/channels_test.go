package quant

import (
	"math"
	"testing"
)

// Table-driven edge cases for per-channel scales: the all-zero channel
// (scale must fall back to 1, not 0 or NaN), the single-outlier channel
// (its scale must not bleed into neighbours), and 1-element channels.
func TestScaleForChannelsEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  []float32
		cols int
		want []float32
	}{
		{
			name: "all-zero channel",
			src:  []float32{0, 0, 0, 2, -4, 1},
			cols: 3,
			want: []float32{1, 4.0 / 127},
		},
		{
			name: "single-outlier channel",
			src:  []float32{0.01, -0.02, 1000, 0.5, -0.25, 0.125},
			cols: 3,
			want: []float32{1000.0 / 127, 0.5 / 127},
		},
		{
			name: "one-element channels",
			src:  []float32{-3, 0, 7},
			cols: 1,
			want: []float32{3.0 / 127, 1, 7.0 / 127},
		},
		{
			name: "single channel equals ScaleFor",
			src:  []float32{1, -2, 3, -6.35},
			cols: 4,
			want: []float32{6.35 / 127},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ScaleForChannels(tc.src, tc.cols)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d scales, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("scales[%d] = %g, want %g", i, got[i], tc.want[i])
				}
			}
			// Into variant must agree and not allocate.
			into := make([]float32, len(tc.want))
			if allocs := testing.AllocsPerRun(10, func() {
				ScaleForChannelsInto(into, tc.src, tc.cols)
			}); allocs > 0 {
				t.Errorf("ScaleForChannelsInto allocates (%v/run)", allocs)
			}
			for i := range into {
				if into[i] != got[i] {
					t.Errorf("Into scales[%d] = %g, want %g", i, into[i], got[i])
				}
			}
		})
	}
}

func TestQuantizeChannelsInto(t *testing.T) {
	// Two channels with magnitudes 100x apart: per-channel scales must
	// keep the small channel's resolution.
	src := []float32{100, -50, 25, 1, -0.5, 0.25}
	scales := ScaleForChannels(src, 3)
	dst := make([]int8, len(src))
	if allocs := testing.AllocsPerRun(10, func() {
		QuantizeChannelsInto(dst, src, scales, 3)
	}); allocs > 0 {
		t.Errorf("QuantizeChannelsInto allocates (%v/run)", allocs)
	}
	for ch := 0; ch < 2; ch++ {
		for i := ch * 3; i < (ch+1)*3; i++ {
			want := clampInt8(math.Round(float64(src[i] / scales[ch])))
			if dst[i] != want {
				t.Errorf("dst[%d] = %d, want %d", i, dst[i], want)
			}
			// Per-channel round-trip error is bounded by half a step.
			back := float32(dst[i]) * scales[ch]
			if math.Abs(float64(back-src[i])) > float64(scales[ch])/2+1e-7 {
				t.Errorf("round-trip dst[%d]: %g -> %g exceeds half-step %g", i, src[i], back, scales[ch]/2)
			}
		}
	}
	// The max-magnitude element of each channel must land exactly on ±127.
	if dst[0] != 127 {
		t.Errorf("channel 0 max maps to %d, want 127", dst[0])
	}
	if dst[3] != 127 {
		t.Errorf("channel 1 max maps to %d, want 127", dst[3])
	}

	// All-zero channel quantises to all zeros under its fallback scale.
	zsrc := []float32{0, 0, 0}
	zdst := []int8{1, 2, 3}
	QuantizeChannelsInto(zdst, zsrc, []float32{1}, 3)
	for i, v := range zdst {
		if v != 0 {
			t.Errorf("all-zero channel dst[%d] = %d, want 0", i, v)
		}
	}
}

func TestQuantizeU8Into(t *testing.T) {
	scale := float32(2.0 / 127)
	cases := []struct {
		v    float32
		want uint8
	}{
		{0, 128},         // zero-point
		{2, 255},         // +max -> 128+127
		{-2, 1},          // -max -> 128-127
		{1000, 255},      // saturate high
		{-1000, 0},       // saturate low
		{scale, 129},     // one step up
		{-scale, 127},    // one step down
		{scale / 2, 129}, // half-step rounds up (round-half-up)
	}
	src := make([]float32, len(cases))
	for i, tc := range cases {
		src[i] = tc.v
	}
	dst := make([]uint8, len(src))
	if allocs := testing.AllocsPerRun(10, func() {
		QuantizeU8Into(dst, src, scale)
	}); allocs > 0 {
		t.Errorf("QuantizeU8Into allocates (%v/run)", allocs)
	}
	for i, tc := range cases {
		if dst[i] != tc.want {
			t.Errorf("QuantizeU8Into(%g) = %d, want %d", tc.v, dst[i], tc.want)
		}
	}

	// Round-trip error bounded by half a step for in-range values.
	back := make([]float32, len(src))
	DequantizeU8Into(back, dst, scale)
	for i, tc := range cases {
		if tc.v > 2 || tc.v < -2 {
			continue // saturated
		}
		if math.Abs(float64(back[i]-tc.v)) > float64(scale)/2+1e-7 {
			t.Errorf("u8 round-trip %g -> %g exceeds half-step", tc.v, back[i])
		}
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %g", got)
	}
	if got := MaxAbs([]float32{0.5, -3, 2}); got != 3 {
		t.Errorf("MaxAbs = %g, want 3", got)
	}
}
