package quant

import (
	"math"
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

func TestRoundTripErrorBounded(t *testing.T) {
	rng := tensor.NewRNG(1)
	src := make([]float32, 1000)
	for i := range src {
		src[i] = float32(rng.Norm())
	}
	for _, stochastic := range []bool{true, false} {
		data := append([]float32(nil), src...)
		RoundTrip(data, rng, stochastic)
		q := ScaleFor(src)
		for i := range data {
			if err := math.Abs(float64(data[i] - src[i])); err > float64(q)*1.01 {
				t.Fatalf("stochastic=%v: error %v exceeds one step %v", stochastic, err, q)
			}
		}
	}
}

func TestStochasticRoundingUnbiased(t *testing.T) {
	// The §VIII property: averaging many stochastic round trips recovers
	// the value, even for sub-step magnitudes that nearest rounding kills.
	rng := tensor.NewRNG(2)
	src := []float32{0.3, -0.7, 100} // scale = 100/127 ≈ 0.79; |0.3| < step/2
	const trials = 20000
	sums := make([]float64, len(src))
	for k := 0; k < trials; k++ {
		data := append([]float32(nil), src...)
		RoundTrip(data, rng, true)
		for i, v := range data {
			sums[i] += float64(v)
		}
	}
	for i, want := range src {
		got := sums[i] / trials
		if math.Abs(got-float64(want)) > 0.02 {
			t.Fatalf("stochastic mean[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestNearestRoundingKillsSmallGradients(t *testing.T) {
	// The failure mode stochastic rounding exists to fix: gradients below
	// half a quantisation step vanish deterministically.
	src := []float32{0.3, 100} // step ≈ 0.79, so 0.3 < step/2
	q := Nearest(src)
	out := make([]float32, 2)
	Dequantize(q, out)
	if out[0] != 0 {
		t.Fatalf("nearest should zero the small gradient, got %v", out[0])
	}
	if math.Abs(float64(out[1]-100)) > 1 {
		t.Fatalf("large value distorted: %v", out[1])
	}
}

func TestQuantizedSGDConvergesOnlyWithStochasticRounding(t *testing.T) {
	// Minimise (w−3)²/2 with int8-quantised gradients. Near the optimum
	// the gradient is small relative to its own scale... but per-tensor
	// scaling adapts; force the §VIII effect with a second, fixed large
	// coordinate keeping the scale coarse.
	run := func(stochastic bool) float64 {
		rng := tensor.NewRNG(3)
		w := []float32{0, 0} // w[1]'s large constant gradient pins the scale
		for i := 0; i < 4000; i++ {
			g := []float32{w[0] - 3, 50}
			RoundTrip(g, rng, stochastic)
			w[0] -= 0.01 * g[0]
		}
		return math.Abs(float64(w[0]) - 3)
	}
	errStoch := run(true)
	errNearest := run(false)
	if errStoch > 0.2 {
		t.Fatalf("stochastic rounding failed to converge: err %v", errStoch)
	}
	if errNearest < errStoch {
		t.Fatalf("nearest (%v) should not beat stochastic (%v) here", errNearest, errStoch)
	}
	// The gradient magnitude (≤3) is far below half the step (50/127·0.5
	// ≈ 0.2 only near w=3 — the stall region); nearest must stall short.
	if errNearest < 0.1 {
		t.Fatalf("nearest rounding should stall, err %v", errNearest)
	}
}

func TestZeroTensor(t *testing.T) {
	rng := tensor.NewRNG(4)
	src := make([]float32, 5)
	q := Stochastic(src, rng)
	if q.Scale != 1 {
		t.Fatalf("zero tensor scale = %v", q.Scale)
	}
	out := make([]float32, 5)
	Dequantize(q, out)
	for _, v := range out {
		if v != 0 {
			t.Fatal("zero tensor must stay zero")
		}
	}
}

func TestBytesSaving(t *testing.T) {
	src := make([]float32, 1024)
	q := Nearest(src)
	if q.Bytes() >= 4*len(src) {
		t.Fatalf("quantisation must compress: %d vs %d", q.Bytes(), 4*len(src))
	}
}

func TestDequantizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dequantize(Quantized{Data: make([]int8, 3), Scale: 1}, make([]float32, 2))
}

// Property: quantisation never increases the max magnitude by more than
// one step, and the sign of large entries is preserved.
func TestQuantizePropertyBounds(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed) + 9)
		n := 1 + rng.Intn(64)
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.Norm() * 10)
		}
		q := Stochastic(src, rng)
		out := make([]float32, n)
		Dequantize(q, out)
		step := float64(q.Scale)
		for i := range src {
			if math.Abs(float64(out[i]-src[i])) > step*1.01 {
				return false
			}
			if math.Abs(float64(src[i])) > 2*step && out[i]*src[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripTensorMatchesSlice(t *testing.T) {
	a := tensor.New(4, 8)
	tensor.NewRNG(21).FillNorm(a, 0, 1)
	b := a.Clone()
	RoundTripTensor(a, tensor.NewRNG(99), true)
	RoundTrip(b.Data, tensor.NewRNG(99), true)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("RoundTripTensor disagrees with RoundTrip on the same RNG stream")
		}
	}
}

func TestIntoVariantsMatchAllocatingForms(t *testing.T) {
	// The non-allocating Into forms are what the comm wire codec runs in
	// its steady state; they must be bit-for-bit the allocating forms.
	rng := tensor.NewRNG(9)
	src := make([]float32, 513)
	for i := range src {
		src[i] = float32(rng.Norm())
	}
	scale := ScaleFor(src)

	qn := Nearest(src)
	dn := make([]int8, len(src))
	NearestInto(dn, src, scale)
	for i := range dn {
		if dn[i] != qn.Data[i] {
			t.Fatalf("NearestInto diverges at %d: %d vs %d", i, dn[i], qn.Data[i])
		}
	}

	// Stochastic rounding consumes the RNG identically in both forms.
	qs := Stochastic(src, tensor.NewRNG(33))
	ds := make([]int8, len(src))
	StochasticInto(ds, src, scale, tensor.NewRNG(33))
	for i := range ds {
		if ds[i] != qs.Data[i] {
			t.Fatalf("StochasticInto diverges at %d: %d vs %d", i, ds[i], qs.Data[i])
		}
	}

	back := make([]float32, len(src))
	DequantizeInto(back, qs.Data, qs.Scale)
	back2 := make([]float32, len(src))
	Dequantize(qs, back2)
	for i := range back {
		if back[i] != back2[i] {
			t.Fatalf("DequantizeInto diverges at %d", i)
		}
	}
}

func TestIntoVariantsDoNotAllocate(t *testing.T) {
	rng := tensor.NewRNG(10)
	src := make([]float32, 4096)
	for i := range src {
		src[i] = float32(rng.Norm())
	}
	dst8 := make([]int8, len(src))
	dstF := make([]float32, len(src))
	scale := ScaleFor(src)
	if n := testing.AllocsPerRun(20, func() {
		StochasticInto(dst8, src, scale, rng)
		DequantizeInto(dstF, dst8, scale)
	}); n != 0 {
		t.Fatalf("quantize/dequantize steady state allocates %.1f per run", n)
	}
}

func TestIntoVariantsValidate(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() { _ = recover() }()
		f()
		t.Fatal("expected panic")
	}
	rng := tensor.NewRNG(1)
	mustPanic(func() { StochasticInto(make([]int8, 2), make([]float32, 3), 1, rng) })
	mustPanic(func() { NearestInto(make([]int8, 2), make([]float32, 3), 1) })
	mustPanic(func() { DequantizeInto(make([]float32, 2), make([]int8, 3), 1) })
}
