package quant

import "math"

// Per-channel (axis-0) weight quantisation for the int8 serving datapath.
// A weight matrix [Out, In] (dense) or [OutC, InC·KH·KW] (conv, im2col
// layout) quantises with one symmetric scale per output channel — per-row
// of the matrix — so one large filter does not coarsen the grid for every
// other filter. Activations stay per-tensor (see QuantizeU8Into): the GEMM
// then needs only a per-output-channel rescale at requantize time.

// ScaleForChannels returns one symmetric scale per output channel for a
// weight matrix whose rows are cols long: scales[ch] maps the max
// magnitude of src[ch*cols:(ch+1)*cols] to 127 (1 for an all-zero
// channel). len(src) must be a multiple of cols.
func ScaleForChannels(src []float32, cols int) []float32 {
	if cols <= 0 || len(src)%cols != 0 {
		panic("quant: ScaleForChannels bad cols")
	}
	scales := make([]float32, len(src)/cols)
	ScaleForChannelsInto(scales, src, cols)
	return scales
}

// ScaleForChannelsInto fills scales (one per channel) without allocating.
func ScaleForChannelsInto(scales []float32, src []float32, cols int) {
	if cols <= 0 || len(src) != len(scales)*cols {
		panic("quant: ScaleForChannelsInto length mismatch")
	}
	for ch := range scales {
		scales[ch] = ScaleFor(src[ch*cols : (ch+1)*cols])
	}
}

// QuantizeChannelsInto quantises src into dst with round-to-nearest using
// one scale per cols-long channel. Round-to-nearest (not stochastic) is
// correct here: weights quantise once at model load, where bias matters
// less than variance, and determinism is required across replicas.
func QuantizeChannelsInto(dst []int8, src []float32, scales []float32, cols int) {
	if len(dst) != len(src) || cols <= 0 || len(src) != len(scales)*cols {
		panic("quant: QuantizeChannelsInto length mismatch")
	}
	for ch, s := range scales {
		NearestInto(dst[ch*cols:(ch+1)*cols], src[ch*cols:(ch+1)*cols], s)
	}
}

// ScaleForU8 returns the activation scale mapping maxAbs(src) to 127 —
// same grid as ScaleFor, leaving headroom for the zero-point-128 unsigned
// encoding (quantized values land in [1, 255]; 0 encodes only saturation).
func ScaleForU8(src []float32) float32 { return ScaleFor(src) }

// QuantizeU8Into quantises activations into unsigned bytes with zero-point
// 128: q = clamp(round(v/scale) + 128, 0, 255). Dequantisation is
// v ≈ (q-128)·scale, so the zero-point byte dequantizes to exactly 0 —
// conv padding uses it directly. Allocates nothing.
func QuantizeU8Into(dst []uint8, src []float32, scale float32) {
	if len(dst) != len(src) {
		panic("quant: QuantizeU8Into length mismatch")
	}
	inv := float64(1) / float64(scale)
	for i, v := range src {
		// t is round-half-up of v/scale + 128: adding 0.5 then truncating
		// is exact because the clamp guarantees t is non-negative.
		t := float64(v)*inv + 128.5
		if t < 0 {
			t = 0
		} else if t > 255 {
			t = 255
		}
		dst[i] = uint8(int32(t))
	}
}

// DequantizeU8Into expands zero-point-128 bytes back to floats.
func DequantizeU8Into(dst []float32, src []uint8, scale float32) {
	if len(dst) != len(src) {
		panic("quant: DequantizeU8Into length mismatch")
	}
	for i, q := range src {
		dst[i] = float32(int32(q)-128) * scale
	}
}

// MaxAbs returns the largest magnitude in src (0 for empty) — the
// calibration statistic per-tensor activation scales derive from.
func MaxAbs(src []float32) float32 {
	var m float32
	for _, v := range src {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}
