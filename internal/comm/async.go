package comm

import (
	"sync"

	"deep15pf/internal/tensor"
)

// ChunkElems is the chunk granularity of the gradient wire: asynchronous
// reductions walk their buffers chunk by chunk and the int8 codec carries
// one dequantisation scale per chunk. Shard boundaries in the parameter
// servers align to it so a shard can decode its range without its
// neighbours' scales.
const ChunkElems = 4096

// Handle tracks one rank's view of an in-flight asynchronous collective.
// It is a small value (store it in a preallocated slice; no heap traffic).
// Wait blocks until the collective completes; it must be called exactly once
// per handle, and the rank's buffer must not be read, written or reused
// until Wait returns. For AllReduceMeanAsync the division by the group size
// happens inside Wait, on the waiting rank's own buffer — bitwise identical
// to the blocking AllReduceMean.
type Handle struct {
	c    *collective
	g    *Group
	rank int
}

// collective is one in-flight async all-reduce. Instances are recycled
// through the group's free list once every rank has waited, so the steady
// state of an overlapped training loop allocates no handles or slots.
type collective struct {
	mu       sync.Mutex
	cond     *sync.Cond
	bufs     [][]float32
	arrived  int
	waited   int
	mean     bool
	complete bool
}

func newCollective(size int) *collective {
	c := &collective{bufs: make([][]float32, size)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// asyncState matches asynchronous collectives across ranks by per-rank FIFO
// sequence number: rank r's k-th async call joins every other rank's k-th
// async call (the MPI nonblocking-collective ordering contract). All ranks
// therefore must issue the same async calls in the same order — which the
// trainer guarantees, because every rank runs the same backward schedule.
type asyncState struct {
	mu       sync.Mutex
	seq      []uint64
	inflight map[uint64]*collective
	free     []*collective
}

// AllReduceSumAsync starts an asynchronous in-place sum over data and
// returns immediately. The reduction itself is executed by the last rank to
// contribute, in fixed rank order chunk by chunk, so the result is bitwise
// identical to the blocking AllReduceSum regardless of arrival order.
func (g *Group) AllReduceSumAsync(rank int, data []float32) Handle {
	return g.allReduceAsync(rank, data, false)
}

// AllReduceMeanAsync is AllReduceSumAsync followed by an in-place division
// by the group size at Wait time.
func (g *Group) AllReduceMeanAsync(rank int, data []float32) Handle {
	return g.allReduceAsync(rank, data, true)
}

func (g *Group) allReduceAsync(rank int, data []float32, mean bool) Handle {
	g.checkRank(rank)
	a := &g.async
	a.mu.Lock()
	s := a.seq[rank]
	a.seq[rank]++
	c := a.inflight[s]
	if c == nil {
		if n := len(a.free); n > 0 {
			c = a.free[n-1]
			a.free = a.free[:n-1]
		} else {
			c = newCollective(g.size)
		}
		c.mean = mean
		a.inflight[s] = c
	}
	a.mu.Unlock()

	c.mu.Lock()
	if c.mean != mean {
		c.mu.Unlock()
		panic("comm: async collective kind mismatch across ranks (sum vs mean)")
	}
	c.bufs[rank] = data
	c.arrived++
	last := c.arrived == g.size
	if last {
		// Deterministic reduction: accumulate ranks in index order into
		// rank 0's buffer, one chunk at a time (the wire granularity), then
		// fan the result out. Elementwise order matches the blocking path,
		// so the sums are bitwise identical.
		reduceChunks(c.bufs)
		c.complete = true
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	if last {
		// Every rank has initiated, so no one will look this sequence
		// number up again; drop it from the match table.
		a.mu.Lock()
		delete(a.inflight, s)
		a.mu.Unlock()
	}
	return Handle{c: c, g: g, rank: rank}
}

// reduceChunks sums bufs[1..] into bufs[0] chunk by chunk in rank order,
// then copies the result to every other buffer.
func reduceChunks(bufs [][]float32) {
	if len(bufs) == 1 {
		return
	}
	acc := bufs[0]
	for lo := 0; lo < len(acc); lo += ChunkElems {
		hi := lo + ChunkElems
		if hi > len(acc) {
			hi = len(acc)
		}
		for r := 1; r < len(bufs); r++ {
			tensor.Axpy(1, bufs[r][lo:hi], acc[lo:hi])
		}
	}
	for r := 1; r < len(bufs); r++ {
		copy(bufs[r], acc)
	}
}

// Wait blocks until the collective completes, applies the mean scaling to
// this rank's buffer if requested, and recycles the collective once every
// rank has waited.
func (h Handle) Wait() {
	c := h.c
	c.mu.Lock()
	for !c.complete {
		c.cond.Wait()
	}
	buf := c.bufs[h.rank]
	size := len(c.bufs)
	scale := c.mean && size > 1
	c.waited++
	recycle := c.waited == size
	if recycle {
		for i := range c.bufs {
			c.bufs[i] = nil
		}
		c.arrived, c.waited, c.complete = 0, 0, false
	}
	c.mu.Unlock()
	if scale {
		tensor.Scale(1/float32(size), buf)
	}
	if recycle {
		a := &h.g.async
		a.mu.Lock()
		a.free = append(a.free, c)
		a.mu.Unlock()
	}
}
