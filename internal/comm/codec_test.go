package comm

import (
	"math"
	"testing"

	"deep15pf/internal/tensor"
)

func randVec(seed uint64, n int) []float32 {
	rng := tensor.NewRNG(seed)
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.Norm())
	}
	return v
}

func TestFp32CodecIsIdentity(t *testing.T) {
	c, err := NewCodec("fp32", 0)
	if err != nil {
		t.Fatal(err)
	}
	src := randVec(1, ChunkElems+100)
	var w Wire
	c.Encode(&w, src)
	if got := w.Bytes(); got != 4*int64(len(src)) {
		t.Fatalf("fp32 wire bytes %d, want %d", got, 4*len(src))
	}
	dst := make([]float32, len(src))
	c.Decode(&w, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("fp32 codec not identity at %d", i)
		}
	}
	// The empty name selects fp32 too (the Config zero value).
	if c2, _ := NewCodec("", 0); c2.Name() != "fp32" {
		t.Fatal("empty codec name must resolve to fp32")
	}
}

func TestInt8CodecRoundTripBounded(t *testing.T) {
	c, err := NewCodec("int8", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Two chunks with very different magnitudes: per-chunk scales must keep
	// the small chunk's quantisation step small.
	src := make([]float32, 2*ChunkElems)
	rng := tensor.NewRNG(2)
	for i := 0; i < ChunkElems; i++ {
		src[i] = float32(rng.Norm()) * 100
	}
	for i := ChunkElems; i < len(src); i++ {
		src[i] = float32(rng.Norm()) * 1e-3
	}
	var w Wire
	c.Encode(&w, src)
	dst := make([]float32, len(src))
	c.Decode(&w, dst)
	for i := range src {
		step := float64(w.Scales[i/ChunkElems])
		if err := math.Abs(float64(dst[i] - src[i])); err > step*1.01 {
			t.Fatalf("elem %d: error %v exceeds one step %v", i, err, step)
		}
	}
	// A shared per-tensor scale would make the small chunk's step ~1e5
	// larger; per-chunk scales must hold it near its own magnitude.
	if w.Scales[1] > w.Scales[0]/1000 {
		t.Fatalf("per-chunk scales not independent: %v vs %v", w.Scales[0], w.Scales[1])
	}
}

func TestInt8CodecWireBytes(t *testing.T) {
	c, _ := NewCodec("int8", 0)
	n := 3*ChunkElems + 5
	src := randVec(3, n)
	var w Wire
	c.Encode(&w, src)
	want := int64(n) + 4*4 // payload + 4 chunk scales
	if got := w.Bytes(); got != want {
		t.Fatalf("int8 wire bytes %d, want %d", got, want)
	}
	if got := c.WireBytes(n); got != want {
		t.Fatalf("WireBytes %d, want %d", got, want)
	}
	// ≥3x under fp32, the compression the overlapped trainer banks on.
	if ratio := float64(4*n) / float64(want); ratio < 3 {
		t.Fatalf("int8 wire reduction %.2fx < 3x", ratio)
	}
}

func TestDecodeRangeMatchesDecode(t *testing.T) {
	for _, name := range []string{"fp32", "int8"} {
		c, _ := NewCodec(name, 11)
		n := 2*ChunkElems + 333
		src := randVec(4, n)
		var w Wire
		c.Encode(&w, src)
		full := make([]float32, n)
		c.Decode(&w, full)
		// Slices chosen to start/end mid-chunk and to cross chunk borders.
		for _, r := range [][2]int{{0, n}, {5, 9}, {ChunkElems - 3, ChunkElems + 3}, {2 * ChunkElems, n}, {n - 1, n}} {
			dst := make([]float32, r[1]-r[0])
			c.DecodeRange(&w, r[0], dst)
			for i := range dst {
				if dst[i] != full[r[0]+i] {
					t.Fatalf("%s DecodeRange[%d:%d] diverges at +%d", name, r[0], r[1], i)
				}
			}
		}
	}
}

func TestCodecSteadyStateDoesNotAllocate(t *testing.T) {
	for _, name := range []string{"fp32", "int8"} {
		c, _ := NewCodec(name, 3)
		src := randVec(5, ChunkElems+77)
		dst := make([]float32, len(src))
		var w Wire
		c.Encode(&w, src) // grow buffers once
		if n := testing.AllocsPerRun(20, func() {
			c.Encode(&w, src)
			c.Decode(&w, dst)
		}); n != 0 {
			t.Fatalf("%s codec steady state allocates %.1f per round", name, n)
		}
	}
}

func TestUnknownCodecRejected(t *testing.T) {
	if _, err := NewCodec("fp64", 0); err == nil {
		t.Fatal("unknown codec must error")
	}
}
