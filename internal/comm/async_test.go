package comm

import (
	"sync"
	"testing"

	"deep15pf/internal/tensor"
)

func randBufs(seed uint64, n, dim int) [][]float32 {
	rng := tensor.NewRNG(seed)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, dim)
		for i := range bufs[r] {
			bufs[r][i] = float32(rng.Norm())
		}
	}
	return bufs
}

func cloneBufs(src [][]float32) [][]float32 {
	out := make([][]float32, len(src))
	for r := range src {
		out[r] = append([]float32(nil), src[r]...)
	}
	return out
}

// TestAsyncMatchesBlockingBitwise: the async all-reduce must produce exactly
// the blocking collective's bits — same rank-order reduction tree — for
// every group size, including sizes that are not powers of two and chunks
// that straddle the ChunkElems boundary.
func TestAsyncMatchesBlockingBitwise(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, dim := range []int{1, 17, ChunkElems, ChunkElems + 37} {
			inputs := randBufs(uint64(n*1000+dim), n, dim)

			blocking := cloneBufs(inputs)
			g1 := NewGroup(n)
			runRanks(n, func(rank int) { g1.AllReduceMean(rank, blocking[rank]) })

			async := cloneBufs(inputs)
			g2 := NewGroup(n)
			runRanks(n, func(rank int) {
				h := g2.AllReduceMeanAsync(rank, async[rank])
				h.Wait()
			})

			for r := 0; r < n; r++ {
				for i := 0; i < dim; i++ {
					if blocking[r][i] != async[r][i] {
						t.Fatalf("n=%d dim=%d rank=%d elem %d: blocking %v vs async %v",
							n, dim, r, i, blocking[r][i], async[r][i])
					}
				}
			}
		}
	}
}

// TestAsyncOverlappedCollectives issues several reductions per rank before
// waiting any of them — the overlapped-backward pattern where layer L+1's
// reduce is in flight while layer L's is still filling.
func TestAsyncOverlappedCollectives(t *testing.T) {
	const n, layers, dim = 4, 6, 33
	want := make([][]float32, layers)
	bufs := make([][][]float32, layers) // [layer][rank]
	for l := range bufs {
		bufs[l] = randBufs(uint64(100+l), n, dim)
		want[l] = make([]float32, dim)
		for r := 0; r < n; r++ {
			for i, v := range bufs[l][r] {
				want[l][i] += v
			}
		}
	}
	g := NewGroup(n)
	runRanks(n, func(rank int) {
		handles := make([]Handle, layers)
		for l := 0; l < layers; l++ {
			handles[l] = g.AllReduceSumAsync(rank, bufs[l][rank])
		}
		// Wait out of issue order to prove completion is order-independent.
		for l := layers - 1; l >= 0; l-- {
			handles[l].Wait()
		}
	})
	for l := 0; l < layers; l++ {
		for r := 0; r < n; r++ {
			for i := range want[l] {
				diff := float64(bufs[l][r][i] - want[l][i])
				if diff > 1e-4 || diff < -1e-4 {
					t.Fatalf("layer %d rank %d elem %d: %v want %v", l, r, i, bufs[l][r][i], want[l][i])
				}
			}
		}
	}
}

// TestAsyncHandleRecycling: after warmup, repeated async rounds must not
// allocate new collectives — the free list backs the steady state.
func TestAsyncHandleRecycling(t *testing.T) {
	g := NewGroup(1)
	buf := []float32{2}
	// Warm the free list and the match table.
	for i := 0; i < 3; i++ {
		g.AllReduceMeanAsync(0, buf).Wait()
	}
	if n := testing.AllocsPerRun(50, func() {
		g.AllReduceSumAsync(0, buf).Wait()
	}); n != 0 {
		t.Fatalf("async steady state allocates %.1f per round", n)
	}
}

// TestAsyncSumSingleRankIdentity mirrors the blocking size-1 contract.
func TestAsyncSumSingleRankIdentity(t *testing.T) {
	g := NewGroup(1)
	buf := []float32{7}
	g.AllReduceSumAsync(0, buf).Wait()
	if buf[0] != 7 {
		t.Fatalf("size-1 async sum must be identity, got %v", buf[0])
	}
	g.AllReduceMeanAsync(0, buf).Wait()
	if buf[0] != 7 {
		t.Fatalf("size-1 async mean must be identity, got %v", buf[0])
	}
}

// TestAsyncKindMismatchPanics: mixing sum and mean on the same matched
// collective is a programming error and must fail loudly.
func TestAsyncKindMismatchPanics(t *testing.T) {
	g := NewGroup(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if recover() == nil {
				t.Error("expected kind-mismatch panic")
			}
		}()
		g.AllReduceSumAsync(0, []float32{1})
		g.AllReduceMeanAsync(1, []float32{2}) // joins rank 0's sum -> panic
	}()
	<-done
}

// TestConcurrentCollectivesOnDisjointGroups drives blocking and async
// collectives on disjoint groups simultaneously — the hybrid trainer's
// G-groups-in-one-process shape — and is meaningful under -race.
func TestConcurrentCollectivesOnDisjointGroups(t *testing.T) {
	const workers, k, rounds = 8, 4, 25
	groups := NewGroups(workers, k)
	per := workers / k
	var wg sync.WaitGroup
	for gi, g := range groups {
		for rank := 0; rank < per; rank++ {
			wg.Add(1)
			go func(gi int, g *Group, rank int) {
				defer wg.Done()
				buf := make([]float32, 64)
				for round := 0; round < rounds; round++ {
					for i := range buf {
						buf[i] = float32(gi + 1)
					}
					h := g.AllReduceSumAsync(rank, buf)
					h.Wait()
					if buf[0] != float32((gi+1)*per) {
						t.Errorf("group %d rank %d round %d: %v", gi, rank, round, buf[0])
						return
					}
					g.AllReduceMean(rank, buf)
					g.Barrier()
				}
			}(gi, g, rank)
		}
	}
	wg.Wait()
}

// TestGatherIntoMatchesGather: the allocation-free form must agree with the
// allocating one, and non-root buffers must come back nil.
func TestGatherIntoMatchesGather(t *testing.T) {
	const n = 3
	g := NewGroup(n)
	out := make([]float64, n)
	runRanks(n, func(rank int) {
		var buf []float64
		if rank == 1 {
			buf = out
		}
		res := g.GatherInto(rank, 1, float64(rank)*2, buf)
		if rank == 1 {
			if &res[0] != &out[0] {
				t.Error("root must receive its own buffer back")
			}
		} else if res != nil {
			t.Errorf("non-root rank %d received %v", rank, res)
		}
	})
	for r := 0; r < n; r++ {
		if out[r] != float64(r)*2 {
			t.Fatalf("gather = %v", out)
		}
	}
}
