package comm

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

// runRanks executes fn concurrently for every rank and waits.
func runRanks(n int, fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

func TestAllReduceSumMatchesSerial(t *testing.T) {
	n := 5
	dim := 17
	rng := tensor.NewRNG(1)
	inputs := make([][]float32, n)
	want := make([]float32, dim)
	for r := range inputs {
		inputs[r] = make([]float32, dim)
		for i := range inputs[r] {
			inputs[r][i] = float32(rng.Norm())
			want[i] += inputs[r][i]
		}
	}
	g := NewGroup(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = append([]float32(nil), inputs[r]...)
	}
	runRanks(n, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
	for r := 0; r < n; r++ {
		for i := 0; i < dim; i++ {
			if math.Abs(float64(bufs[r][i]-want[i])) > 1e-4 {
				t.Fatalf("rank %d elem %d: %v want %v", r, i, bufs[r][i], want[i])
			}
		}
	}
}

func TestAllReduceDeterministicAcrossRuns(t *testing.T) {
	// Floating-point reduction order is fixed, so repeated runs with the
	// same inputs must agree bitwise despite scheduler nondeterminism.
	n := 8
	dim := 64
	rng := tensor.NewRNG(2)
	inputs := make([][]float32, n)
	for r := range inputs {
		inputs[r] = make([]float32, dim)
		for i := range inputs[r] {
			inputs[r][i] = float32(rng.Norm()) * 1e-3
		}
	}
	run := func() []float32 {
		g := NewGroup(n)
		bufs := make([][]float32, n)
		for r := range bufs {
			bufs[r] = append([]float32(nil), inputs[r]...)
		}
		runRanks(n, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
		return bufs[3]
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic reduction at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAllReduceMean(t *testing.T) {
	g := NewGroup(4)
	bufs := [][]float32{{4}, {8}, {0}, {4}}
	runRanks(4, func(rank int) { g.AllReduceMean(rank, bufs[rank]) })
	for r := range bufs {
		if bufs[r][0] != 4 {
			t.Fatalf("mean = %v", bufs[r][0])
		}
	}
}

func TestAllReduceSingleRankNoop(t *testing.T) {
	g := NewGroup(1)
	buf := []float32{3}
	g.AllReduceSum(0, buf)
	if buf[0] != 3 {
		t.Fatal("size-1 allreduce must be identity")
	}
}

func TestBroadcast(t *testing.T) {
	n := 6
	g := NewGroup(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = []float32{float32(r), float32(r)}
	}
	runRanks(n, func(rank int) { g.Broadcast(rank, 2, bufs[rank]) })
	for r := range bufs {
		if bufs[r][0] != 2 || bufs[r][1] != 2 {
			t.Fatalf("rank %d got %v, want root 2's data", r, bufs[r])
		}
	}
}

func TestGather(t *testing.T) {
	n := 4
	g := NewGroup(n)
	var got []float64
	runRanks(n, func(rank int) {
		res := g.Gather(rank, 0, float64(rank*10))
		if rank == 0 {
			got = res
		} else if res != nil {
			t.Errorf("non-root rank %d received %v", rank, res)
		}
	})
	for r, v := range got {
		if v != float64(r*10) {
			t.Fatalf("gather = %v", got)
		}
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// The barrier must be reusable across many rounds.
	n := 3
	g := NewGroup(n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, 1)
	}
	runRanks(n, func(rank int) {
		for round := 0; round < 50; round++ {
			bufs[rank][0] = 1
			g.AllReduceSum(rank, bufs[rank])
			if bufs[rank][0] != float32(n) {
				t.Errorf("round %d rank %d: %v", round, rank, bufs[rank][0])
				return
			}
		}
	})
}

func TestNewGroupsPartition(t *testing.T) {
	gs := NewGroups(12, 3)
	if len(gs) != 3 {
		t.Fatal("group count")
	}
	for _, g := range gs {
		if g.Size() != 4 {
			t.Fatalf("group size = %d", g.Size())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("uneven split must panic")
		}
	}()
	NewGroups(10, 3)
}

func TestRankValidation(t *testing.T) {
	g := NewGroup(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AllReduceSum(5, []float32{1})
}

// Property: allreduce result is invariant to which rank contributes which
// buffer (sum commutes over rank permutations, up to the deterministic
// order's float tolerance).
func TestAllReducePermutationProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed) + 31)
		n := 2 + rng.Intn(4)
		dim := 1 + rng.Intn(8)
		inputs := make([][]float32, n)
		for r := range inputs {
			inputs[r] = make([]float32, dim)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.Norm())
			}
		}
		perm := rng.Perm(n)
		run := func(order []int) []float32 {
			g := NewGroup(n)
			bufs := make([][]float32, n)
			for r := range bufs {
				bufs[r] = append([]float32(nil), inputs[order[r]]...)
			}
			runRanks(n, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
			return bufs[0]
		}
		id := make([]int, n)
		for i := range id {
			id[i] = i
		}
		a := run(id)
		b := run(perm)
		for i := range a {
			if math.Abs(float64(a[i]-b[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeReductionOddAndOneRankGroups pins the blocking collectives on the
// group shapes the even-split tests miss: non-power-of-two sizes (the tree
// tail) and the degenerate 1-rank group every collective must treat as
// identity.
func TestTreeReductionOddAndOneRankGroups(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7} {
		g := NewGroup(n)
		bufs := make([][]float32, n)
		var want float32
		for r := range bufs {
			bufs[r] = []float32{float32(r + 1), -float32(r + 1)}
			want += float32(r + 1)
		}
		runRanks(n, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
		for r := range bufs {
			if bufs[r][0] != want || bufs[r][1] != -want {
				t.Fatalf("n=%d rank %d: %v want ±%v", n, r, bufs[r], want)
			}
		}
		// Broadcast and Gather on the same odd group.
		runRanks(n, func(rank int) { g.Broadcast(rank, n-1, bufs[rank]) })
		for r := range bufs {
			if bufs[r][0] != want {
				t.Fatalf("broadcast n=%d rank %d: %v", n, r, bufs[r])
			}
		}
	}
	// 1-rank group partition via NewGroups.
	gs := NewGroups(3, 3)
	if len(gs) != 3 || gs[0].Size() != 1 {
		t.Fatalf("NewGroups(3,3) = %d groups of %d", len(gs), gs[0].Size())
	}
	buf := []float32{42}
	gs[1].AllReduceMean(0, buf)
	if buf[0] != 42 {
		t.Fatal("1-rank mean must be identity")
	}
}
