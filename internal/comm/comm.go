// Package comm is the in-process counterpart of the paper's MLSL layer
// (§III-D): collective operations — all-reduce, broadcast, barrier — over a
// fixed group of workers, implemented with channels so real multi-worker
// training runs inside one process. Reductions use a deterministic binary
// tree, so results are bit-identical across runs regardless of goroutine
// scheduling (floating-point addition is not associative; a fixed tree
// makes the reduction order part of the contract).
//
// The paper extended MLSL with disjoint communication groups and dedicated
// parameter-server endpoints; here NewGroups carves a worker set into
// disjoint groups, and internal/ps provides the PS endpoints.
package comm

import (
	"fmt"
	"sync"

	"deep15pf/internal/tensor"
)

// Group is a communicator over Size ranks. All ranks must call each
// collective the same number of times in the same order (standard MPI
// semantics); collectives match by call sequence.
type Group struct {
	size    int
	barrier *barrier
	// slots[i] carries rank i's contribution for the current collective.
	slots [][]float32
	// gatherVals is the dedicated Gather staging area (slots holds whatever
	// buffer the last all-reduce pinned, so reusing it would realloc).
	gatherVals []float32
	mu         sync.Mutex
	// async holds the nonblocking-collective match state (see async.go).
	async asyncState
}

// NewGroup creates a communicator for size ranks.
func NewGroup(size int) *Group {
	if size < 1 {
		panic("comm: group size must be positive")
	}
	g := &Group{
		size:       size,
		barrier:    newBarrier(size),
		slots:      make([][]float32, size),
		gatherVals: make([]float32, size),
	}
	g.async.seq = make([]uint64, size)
	g.async.inflight = make(map[uint64]*collective)
	return g
}

// Size returns the number of ranks.
func (g *Group) Size() int { return g.size }

// NewGroups partitions n workers into k disjoint groups of n/k ranks each
// (n must divide evenly), mirroring the paper's MLSL extension for
// "node placement into disjoint communication groups".
func NewGroups(n, k int) []*Group {
	if k < 1 || n%k != 0 {
		panic(fmt.Sprintf("comm: cannot split %d workers into %d equal groups", n, k))
	}
	out := make([]*Group, k)
	for i := range out {
		out[i] = NewGroup(n / k)
	}
	return out
}

// Barrier blocks until every rank has entered.
func (g *Group) Barrier() {
	g.barrier.wait()
}

// AllReduceSum sums data across ranks in place: after the call every
// rank's slice holds the elementwise sum. The reduction is a fixed
// sequential-order tree executed by rank 0 (deterministic), then broadcast.
func (g *Group) AllReduceSum(rank int, data []float32) {
	g.checkRank(rank)
	if g.size == 1 {
		return
	}
	g.mu.Lock()
	g.slots[rank] = data
	g.mu.Unlock()
	g.barrier.wait() // all contributions visible
	if rank == 0 {
		// Deterministic reduction: accumulate ranks in index order into
		// rank 0's buffer.
		acc := g.slots[0]
		for r := 1; r < g.size; r++ {
			tensor.Axpy(1, g.slots[r], acc)
		}
	}
	g.barrier.wait() // reduction complete
	if rank != 0 {
		copy(data, g.slots[0])
	}
	g.barrier.wait() // copies complete before anyone reuses buffers
}

// AllReduceMean averages data across ranks in place.
func (g *Group) AllReduceMean(rank int, data []float32) {
	g.AllReduceSum(rank, data)
	if g.size > 1 {
		tensor.Scale(1/float32(g.size), data)
	}
}

// Broadcast copies root's buffer into every other rank's buffer.
func (g *Group) Broadcast(rank, root int, data []float32) {
	g.checkRank(rank)
	g.checkRank(root)
	if g.size == 1 {
		return
	}
	g.mu.Lock()
	g.slots[rank] = data
	g.mu.Unlock()
	g.barrier.wait()
	if rank != root {
		copy(data, g.slots[root])
	}
	g.barrier.wait()
}

// Gather collects every rank's value at the root; other ranks receive nil.
// Values are positioned by rank.
func (g *Group) Gather(rank, root int, value float64) []float64 {
	var out []float64
	if rank == root {
		out = make([]float64, g.size)
	}
	return g.GatherInto(rank, root, value, out)
}

// GatherInto is Gather with a caller-provided result buffer: the root passes
// a slice of group-size length and gets it back filled; other ranks pass nil
// and receive nil. The allocation-free form the training hot loop uses.
func (g *Group) GatherInto(rank, root int, value float64, out []float64) []float64 {
	g.checkRank(rank)
	g.checkRank(root)
	g.mu.Lock()
	g.gatherVals[rank] = float32(value)
	g.mu.Unlock()
	g.barrier.wait()
	if rank == root {
		if len(out) != g.size {
			panic("comm: GatherInto root buffer must have group-size length")
		}
		for r := 0; r < g.size; r++ {
			out[r] = float64(g.gatherVals[r])
		}
	} else {
		out = nil
	}
	g.barrier.wait()
	return out
}

func (g *Group) checkRank(rank int) {
	if rank < 0 || rank >= g.size {
		panic(fmt.Sprintf("comm: rank %d out of group of %d", rank, g.size))
	}
}

// barrier is a reusable n-party barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	phase   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	phase := b.phase
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
