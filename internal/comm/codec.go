package comm

import (
	"fmt"

	"deep15pf/internal/quant"
	"deep15pf/internal/tensor"
)

// Wire is one parameter blob's on-the-wire form: either an fp32 identity
// payload or an int8 payload with one dequantisation scale per ChunkElems
// chunk. A Wire's buffers are grown once and reused across encodes, so the
// steady state of a training run serialises gradients without allocating.
//
// In this in-process reproduction the Wire is handed to the parameter
// server by pointer; Bytes() is what the equivalent network transfer would
// move, which is the quantity the bytes-on-wire accounting sums.
type Wire struct {
	N      int       // element count of the decoded payload
	F32    []float32 // identity payload (fp32 codec; nil otherwise)
	I8     []int8    // quantised payload (int8 codec; nil otherwise)
	Scales []float32 // per-chunk scales (int8 codec; nil otherwise)
}

// Bytes returns the encoded payload size: what a real interconnect would
// carry for this blob.
func (w *Wire) Bytes() int64 {
	if w.I8 != nil {
		return int64(len(w.I8)) + 4*int64(len(w.Scales))
	}
	return 4 * int64(len(w.F32))
}

// Codec serialises gradient blobs onto the parameter-server wire. A codec
// instance is single-goroutine (the int8 codec owns rounding RNG state);
// every pusher creates its own via NewCodec.
type Codec interface {
	// Name identifies the codec ("fp32" or "int8").
	Name() string
	// WireBytes returns the encoded size of an n-element blob.
	WireBytes(n int) int64
	// Encode fills w from src, reusing w's buffers.
	Encode(w *Wire, src []float32)
	// Decode expands w into dst, which must hold exactly w.N elements.
	Decode(w *Wire, dst []float32)
	// DecodeRange expands elements [lo, lo+len(dst)) of w into dst — the
	// entry point parameter-server shards use to decode only their slice.
	DecodeRange(w *Wire, lo int, dst []float32)
}

// NewCodec builds a codec by name. "" and "fp32" give the identity codec;
// "int8" gives stochastic-rounding int8 with per-chunk scales, seeded for
// deterministic rounding streams.
func NewCodec(name string, seed uint64) (Codec, error) {
	switch name {
	case "", "fp32":
		return fp32Codec{}, nil
	case "int8":
		return &int8Codec{rng: tensor.NewRNG(seed ^ 0x17C0DEC1)}, nil
	default:
		return nil, fmt.Errorf("comm: unknown codec %q", name)
	}
}

// fp32Codec copies bits through unchanged: the wire carries exactly the
// gradients the trainer produced, so the fp32 path of the refactored
// trainer stays bitwise identical to the lockstep original.
type fp32Codec struct{}

func (fp32Codec) Name() string { return "fp32" }

func (fp32Codec) WireBytes(n int) int64 { return 4 * int64(n) }

func (fp32Codec) Encode(w *Wire, src []float32) {
	w.N = len(src)
	w.F32 = growF32(w.F32, len(src))
	copy(w.F32, src)
	w.I8, w.Scales = nil, nil
}

func (fp32Codec) Decode(w *Wire, dst []float32) {
	if len(dst) != w.N {
		panic("comm: fp32 Decode length mismatch")
	}
	copy(dst, w.F32)
}

func (fp32Codec) DecodeRange(w *Wire, lo int, dst []float32) {
	if lo < 0 || lo+len(dst) > w.N {
		panic("comm: fp32 DecodeRange out of bounds")
	}
	copy(dst, w.F32[lo:lo+len(dst)])
}

// int8Codec quantises each ChunkElems chunk to int8 with its own scale and
// stochastic rounding (quant package): 4x payload reduction with an
// unbiased estimator, the §VIII-A configuration.
type int8Codec struct {
	rng *tensor.RNG
}

func (*int8Codec) Name() string { return "int8" }

func (*int8Codec) WireBytes(n int) int64 {
	return int64(n) + 4*int64(numChunks(n))
}

func (c *int8Codec) Encode(w *Wire, src []float32) {
	n := len(src)
	w.N = n
	w.I8 = growI8(w.I8, n)
	w.Scales = growF32(w.Scales, numChunks(n))
	w.F32 = nil
	for ci, lo := 0, 0; lo < n; ci, lo = ci+1, lo+ChunkElems {
		hi := lo + ChunkElems
		if hi > n {
			hi = n
		}
		s := quant.ScaleFor(src[lo:hi])
		w.Scales[ci] = s
		quant.StochasticInto(w.I8[lo:hi], src[lo:hi], s, c.rng)
	}
}

func (c *int8Codec) Decode(w *Wire, dst []float32) {
	if len(dst) != w.N {
		panic("comm: int8 Decode length mismatch")
	}
	c.DecodeRange(w, 0, dst)
}

func (*int8Codec) DecodeRange(w *Wire, lo int, dst []float32) {
	if lo < 0 || lo+len(dst) > w.N {
		panic("comm: int8 DecodeRange out of bounds")
	}
	for off := 0; off < len(dst); {
		e := lo + off
		ci := e / ChunkElems
		hi := (ci + 1) * ChunkElems
		if hi > lo+len(dst) {
			hi = lo + len(dst)
		}
		quant.DequantizeInto(dst[off:off+(hi-e)], w.I8[e:hi], w.Scales[ci])
		off += hi - e
	}
}

func numChunks(n int) int {
	return (n + ChunkElems - 1) / ChunkElems
}

func growF32(s []float32, n int) []float32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float32, n)
}

func growI8(s []int8, n int) []int8 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int8, n)
}
