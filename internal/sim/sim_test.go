package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New()
	ran := 0
	s.Schedule(1, func() { ran++ })
	s.Schedule(5, func() { ran++ })
	s.RunUntil(2)
	if ran != 1 || s.Pending() != 1 {
		t.Fatalf("ran=%d pending=%d", ran, s.Pending())
	}
	if s.Now() != 2 {
		t.Fatalf("clock should advance to horizon, got %v", s.Now())
	}
	s.Run()
	if ran != 2 {
		t.Fatal("remaining event lost")
	}
}

func TestScheduleValidation(t *testing.T) {
	s := New()
	mustPanic := func(f func()) {
		defer func() { _ = recover() }()
		f()
		t.Fatal("expected panic")
	}
	mustPanic(func() { s.Schedule(-1, func() {}) })
	mustPanic(func() { s.Schedule(math.NaN(), func() {}) })
	s.Schedule(5, func() {})
	s.Run()
	mustPanic(func() { s.ScheduleAt(1, func() {}) }) // in the past now
}

func TestResourceFIFOQueueing(t *testing.T) {
	s := New()
	r := NewResource(s, "ps")
	// Two requests at t=0 with service 2: completions at 2 and 4.
	var d1, d2, d3 float64
	s.Schedule(0, func() {
		d1 = r.Request(2)
		d2 = r.Request(2)
	})
	// A request at t=10 (idle server): completes at 12.
	s.Schedule(10, func() { d3 = r.Request(2) })
	s.Run()
	if d1 != 2 || d2 != 4 || d3 != 12 {
		t.Fatalf("completions = %v %v %v", d1, d2, d3)
	}
	if r.Served() != 3 || r.BusyTime() != 6 {
		t.Fatalf("served=%d busy=%v", r.Served(), r.BusyTime())
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New()
	r := NewResource(s, "x")
	s.Schedule(0, func() { r.Request(3) })
	s.Run()
	if u := r.Utilization(6); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("utilization = %v", u)
	}
	if r.Utilization(0) != 0 {
		t.Fatal("degenerate horizon")
	}
	if r.Utilization(1) != 1 {
		t.Fatal("utilization must clamp at 1")
	}
}

// Property: for any set of arrival/service pairs processed in arrival
// order, the resource behaves as a single FIFO server: completion(i) =
// max(arrival(i), completion(i-1)) + service(i).
func TestResourceFIFOProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		s := New()
		r := NewResource(s, "q")
		arrival := 0.0
		type job struct{ at, service float64 }
		jobs := make([]job, len(raw))
		for i, b := range raw {
			arrival += float64(b%7) * 0.5
			jobs[i] = job{at: arrival, service: float64(b%5) * 0.3}
		}
		got := make([]float64, len(jobs))
		for i, j := range jobs {
			i, j := i, j
			s.ScheduleAt(j.at, func() { got[i] = r.Request(j.service) })
		}
		s.Run()
		prev := 0.0
		for i, j := range jobs {
			want := math.Max(j.at, prev) + j.service
			if math.Abs(got[i]-want) > 1e-9 {
				return false
			}
			prev = want
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("empty sim must not step")
	}
}
