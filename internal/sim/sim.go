// Package sim is a minimal deterministic discrete-event simulation engine:
// an event heap with a monotone clock and FIFO resources. The cluster model
// (internal/cluster) uses it to simulate synchronous and hybrid training
// runs at Cori scale — thousands of compute nodes, per-layer parameter
// servers with queueing, jitter and failures — in milliseconds of host time.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Sim is a discrete-event simulator. The zero value is not usable; call New.
type Sim struct {
	now    float64
	events eventHeap
	seq    int64
}

// New returns an empty simulator at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Schedule enqueues fn to run delay seconds from now. Negative delays are
// rejected — time travel means a modelling bug.
func (s *Sim) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt enqueues fn at absolute time t (≥ now).
func (s *Sim) ScheduleAt(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{time: t, seq: s.seq, fn: fn})
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

// Step runs the next event; returns false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	s.now = ev.time
	ev.fn()
	return true
}

// Run processes events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil processes events with time ≤ t, then advances the clock to t.
// Events scheduled later stay queued.
func (s *Sim) RunUntil(t float64) {
	for len(s.events) > 0 && s.events[0].time <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Resource is a single FIFO server (a parameter server, a filesystem, a
// shared link). Requests issued at the current simulation time queue behind
// earlier ones; Request returns the completion time so callers can schedule
// their continuation.
type Resource struct {
	Name   string
	sim    *Sim
	freeAt float64
	busy   float64
	served int
}

// NewResource attaches a fresh FIFO resource to the simulator.
func NewResource(s *Sim, name string) *Resource {
	return &Resource{Name: name, sim: s}
}

// Request enqueues a job of the given service time arriving now and returns
// its completion time. Queueing delay is implicit: the job starts when the
// server frees up.
func (r *Resource) Request(service float64) float64 {
	if service < 0 || math.IsNaN(service) {
		panic(fmt.Sprintf("sim: invalid service time %v", service))
	}
	start := r.freeAt
	if r.sim.now > start {
		start = r.sim.now
	}
	done := start + service
	r.freeAt = done
	r.busy += service
	r.served++
	return done
}

// BusyTime returns cumulative service time (for utilisation accounting).
func (r *Resource) BusyTime() float64 { return r.busy }

// Served returns the number of completed requests.
func (r *Resource) Served() int { return r.served }

// Utilization returns busy time over the given horizon.
func (r *Resource) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	u := r.busy / horizon
	if u > 1 {
		u = 1
	}
	return u
}
