package hep

import (
	"deep15pf/internal/core"
	"deep15pf/internal/data"
	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// TrainingProblem adapts the HEP classification task to the distributed
// trainer (core.Problem): replicas share one in-memory dataset and are
// initialised from a common seed so every worker starts bitwise identical.
type TrainingProblem struct {
	DS       *Dataset
	Model    ModelConfig
	InitSeed uint64
}

// NewTrainingProblem builds the adapter.
func NewTrainingProblem(ds *Dataset, model ModelConfig, initSeed uint64) *TrainingProblem {
	return &TrainingProblem{DS: ds, Model: model, InitSeed: initSeed}
}

// NewReplica implements core.Problem. The replica compiles one training
// plan per distinct batch size on first use (shard sizes are stable across
// a run, so in practice that is a single compile), after which every
// ComputeGradients iteration runs without touching the allocator.
func (p *TrainingProblem) NewReplica() core.Replica {
	net := BuildNet(p.Model, tensor.NewRNG(p.InitSeed))
	arena := tensor.NewArena()
	return &replica{
		net:       net,
		ds:        p.DS,
		params:    net.Params(),
		arena:     arena,
		plans:     nn.NewPlanCache(net, true, arena),
		xStage:    tensor.NewStaging(arena, net.InShape...),
		gradStage: tensor.NewStaging(arena, p.Model.Classes),
	}
}

// NewBatchSource implements core.Problem.
func (p *TrainingProblem) NewBatchSource(seed uint64) core.BatchSource {
	return &batchSource{n: p.DS.Images.Shape[0], rng: tensor.NewRNG(seed)}
}

type replica struct {
	net    *nn.Network
	ds     *Dataset
	params []*nn.Param // cached: per-iteration ZeroGrads must not rebuild the slice
	arena  *tensor.Arena
	plans  *nn.PlanCache

	// Reusable per-iteration staging: the input batch, its labels and the
	// loss gradient. Grown to the largest batch seen, then stable.
	xStage, gradStage *tensor.Staging
	labels            []int
}

func (r *replica) TrainableLayers() []nn.Layer { return r.net.TrainableLayers() }
func (r *replica) ZeroGrad()                   { nn.ZeroGrads(r.params) }

func (r *replica) ComputeGradients(idx []int) float64 {
	return r.ComputeGradientsStream(idx, nil)
}

// ComputeGradientsStream implements core.StreamReplica: the compiled plan's
// backward pass notifies gradDone as each trainable layer's gradients become
// final, letting the overlapped trainer exchange them mid-backward.
func (r *replica) ComputeGradientsStream(idx []int, gradDone func(layer int)) float64 {
	n := len(idx)
	x := r.xStage.Batch(n)
	grad := r.gradStage.Batch(n)
	if cap(r.labels) < n {
		r.labels = make([]int, n)
	}
	labels := r.labels[:n]
	r.ds.BatchInto(x, labels, idx)
	plan := r.plans.Plan(n)
	logits := plan.Forward(x)
	loss := nn.SoftmaxCrossEntropyInto(logits, labels, grad)
	plan.BackwardStream(grad, gradDone)
	return loss
}

// Scores runs inference over the whole dataset and returns P(signal).
func (r *replica) Scores(batch int) []float64 {
	n := r.ds.Images.Shape[0]
	out := make([]float64, 0, n)
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, _ := r.ds.Batch(idx)
		out = append(out, SignalScore(r.net.Forward(x, false))...)
	}
	return out
}

// ScoreDataset evaluates a trained replica (from core training) on a
// dataset, returning P(signal) per sample. rep must come from
// NewReplica().
func ScoreDataset(rep core.Replica, ds *Dataset, batch int) []float64 {
	hr, ok := rep.(*replica)
	if !ok {
		panic("hep: replica was not created by this problem")
	}
	eval := &replica{net: hr.net, ds: ds}
	return eval.Scores(batch)
}

// ReplicaParams exposes a replica's parameter blobs so a trained model can
// be checkpointed with nn.SaveFile (and later served through
// internal/serve). rep must come from NewReplica().
func ReplicaParams(rep core.Replica) []*nn.Param {
	hr, ok := rep.(*replica)
	if !ok {
		panic("hep: replica was not created by this problem")
	}
	return hr.net.Params()
}

type batchSource struct {
	n   int
	rng *tensor.RNG
	b   *data.Batcher
}

func (s *batchSource) Next(size int) []int {
	if s.b == nil || s.b.BatchSize != size {
		s.b = data.NewBatcher(s.n, size, s.rng)
	}
	return s.b.Next()
}
