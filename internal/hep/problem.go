package hep

import (
	"time"

	"deep15pf/internal/core"
	"deep15pf/internal/data"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/tensor"
)

// TrainingProblem adapts the HEP classification task to the distributed
// trainer (core.Problem): replicas share one in-memory dataset and are
// initialised from a common seed so every worker starts bitwise identical.
//
// With Backing set, replicas read their image features from shard files
// instead of the in-memory tensor — the paper's HDF5-style input path, with
// honest per-batch file I/O. Shards round-trip float bits exactly, so a
// shard-backed run's trajectory equals the in-memory run's bit for bit.
type TrainingProblem struct {
	DS       *Dataset
	Model    ModelConfig
	InitSeed uint64

	// Backing, when non-nil, is the on-disk feature source: sample i's
	// image is read from the shard set at global index i (labels stay in
	// memory — they are a handful of ints). Safe to share across replicas;
	// reads are concurrent-safe.
	Backing *data.ShardSet

	// SampleWeights, when non-nil, weights each sample's loss contribution
	// (one entry per dataset sample) — the pseudo-labeling flywheel trains
	// on human labels at weight 1 and machine-generated labels at a
	// discount. Nil keeps the unweighted loss path, bit for bit.
	SampleWeights []float32
}

// NewTrainingProblem builds the adapter.
func NewTrainingProblem(ds *Dataset, model ModelConfig, initSeed uint64) *TrainingProblem {
	return &TrainingProblem{DS: ds, Model: model, InitSeed: initSeed}
}

// NewReplica implements core.Problem. The replica compiles one training
// plan per distinct batch size on first use (shard sizes are stable across
// a run, so in practice that is a single compile), after which every
// ComputeGradients iteration runs without touching the allocator.
func (p *TrainingProblem) NewReplica() core.Replica {
	net := BuildNet(p.Model, tensor.NewRNG(p.InitSeed))
	arena := tensor.NewArena()
	r := &replica{
		net:       net,
		ds:        p.DS,
		backing:   p.Backing,
		params:    net.Params(),
		arena:     arena,
		plans:     nn.NewPlanCache(net, true, arena),
		xStage:    tensor.NewStaging(arena, net.InShape...),
		gradStage: tensor.NewStaging(arena, p.Model.Classes),
		sampleW:   p.SampleWeights,
	}
	if r.backing != nil {
		r.ioScratch = make([]byte, r.backing.ScratchLen())
	}
	return r
}

// NewBatchSource implements core.Problem.
func (p *TrainingProblem) NewBatchSource(seed uint64) core.BatchSource {
	return &batchSource{n: p.DS.Images.Shape[0], rng: tensor.NewRNG(seed)}
}

type replica struct {
	net     *nn.Network
	ds      *Dataset
	backing *data.ShardSet
	params  []*nn.Param // cached: per-iteration ZeroGrads must not rebuild the slice
	arena   *tensor.Arena
	plans   *nn.PlanCache

	// Reusable per-iteration staging: the input batch, its labels and the
	// loss gradient. Grown to the largest batch seen, then stable.
	xStage, gradStage *tensor.Staging
	labels            []int

	// sampleW is the problem's per-sample loss weighting (nil =
	// unweighted); wbuf is its per-batch staging, grown like labels.
	sampleW []float32
	wbuf    []float32

	// Streaming ingest (core.PipelineReplica): slots are staged by the
	// pipeline's background goroutine while the previous batch trains.
	pipe   *data.Pipeline[*hepSlot]
	ingest data.IngestStats // blocking-path account (pipeline keeps its own)

	// ioScratch decodes shard reads without allocating. Exactly one stager
	// runs at a time per replica — the consumer goroutine (blocking path)
	// or the prefetch goroutine (pipeline path), with goroutine start/stop
	// ordering the handoff — so one buffer suffices.
	ioScratch []byte

	// lane is this worker's trace lane (core.TracedReplica); nil when
	// untraced. Blocking-path staging and pipe waits record Ingest on it,
	// the planned forward/backward record Fwd/Bwd. The prefetch goroutine
	// records its staging work on a "<lane>.ingest" sibling lane so the
	// timeline shows staging overlapping compute.
	lane *obs.Lane
}

// SetTraceLane implements core.TracedReplica.
func (r *replica) SetTraceLane(l *obs.Lane) { r.lane = l }

// hepSlot is one staged batch in the prefetch ring: an arena-backed image
// tensor plus its labels, pre-sized to the run's largest shard.
type hepSlot struct {
	stage   *tensor.Staging
	x       *tensor.Tensor // view for the staged batch size, set by the stager
	labels  []int
	weights []float32 // per-batch loss weights; nil when the problem is unweighted
	n       int
}

func (r *replica) TrainableLayers() []nn.Layer { return r.net.TrainableLayers() }
func (r *replica) ZeroGrad()                   { nn.ZeroGrads(r.params) }

// stageInto copies batch idx into caller-owned staging, from the shard
// backing when configured (real file reads) or the in-memory dataset. It is
// the single staging primitive both the blocking path and the pipeline's
// prefetch goroutine run, which is what makes the two paths bitwise equal.
func (r *replica) stageInto(x *tensor.Tensor, labels []int, weights []float32, idx []int) error {
	if weights != nil {
		for bi, i := range idx {
			weights[bi] = r.sampleW[i]
		}
	}
	if r.backing != nil {
		if err := r.backing.ReadBatchInto(idx, x.Data, nil, r.ioScratch); err != nil {
			return err
		}
		for bi, i := range idx {
			labels[bi] = r.ds.Labels[i]
		}
		return nil
	}
	r.ds.BatchInto(x, labels, idx)
	return nil
}

// batchWeights returns the per-batch weight staging sized n, or nil for an
// unweighted problem.
func (r *replica) batchWeights(n int) []float32 {
	if r.sampleW == nil {
		return nil
	}
	if cap(r.wbuf) < n {
		r.wbuf = make([]float32, n)
	}
	return r.wbuf[:n]
}

func (r *replica) ComputeGradients(idx []int) float64 {
	return r.ComputeGradientsStream(idx, nil)
}

// ComputeGradientsStream implements core.StreamReplica: the compiled plan's
// backward pass notifies gradDone as each trainable layer's gradients become
// final, letting the overlapped trainer exchange them mid-backward. This is
// the blocking ingest path — stage now, then compute — and it books every
// staging second as exposed wait time in the replica's ingest account.
func (r *replica) ComputeGradientsStream(idx []int, gradDone func(layer int)) float64 {
	n := len(idx)
	x := r.xStage.Batch(n)
	if cap(r.labels) < n {
		r.labels = make([]int, n)
	}
	labels := r.labels[:n]
	weights := r.batchWeights(n)
	r.lane.Begin(obs.PhaseIngest)
	t0 := time.Now()
	if err := r.stageInto(x, labels, weights, idx); err != nil {
		panic("hep: batch staging failed: " + err.Error())
	}
	r.lane.End(obs.PhaseIngest)
	dt := time.Since(t0).Seconds()
	r.ingest.Batches++
	r.ingest.Samples += int64(n)
	r.ingest.StageSeconds += dt
	r.ingest.WaitSeconds += dt // blocking: staging sits on the critical path
	return r.computeOn(x, labels, weights, gradDone)
}

// computeOn is the shared forward/loss/backward over an already-staged
// batch. A nil weights slice runs the unweighted loss, bit for bit.
func (r *replica) computeOn(x *tensor.Tensor, labels []int, weights []float32, gradDone func(layer int)) float64 {
	n := x.Shape[0]
	grad := r.gradStage.Batch(n)
	plan := r.plans.Plan(n)
	r.lane.Begin(obs.PhaseFwd)
	logits := plan.Forward(x)
	loss := nn.SoftmaxCrossEntropyWeightedInto(logits, labels, weights, grad)
	r.lane.End(obs.PhaseFwd)
	r.lane.Begin(obs.PhaseBwd)
	plan.BackwardStream(grad, gradDone)
	r.lane.End(obs.PhaseBwd)
	return loss
}

// StartIngest implements core.PipelineReplica: it sizes a slot ring for the
// largest shard in the sequence (so staging never touches the arena again)
// and launches the background prefetcher over the same index order the
// blocking path would consume.
func (r *replica) StartIngest(batches [][]int, lookahead int) {
	if lookahead < 1 {
		lookahead = 1
	}
	maxN := 0
	for _, b := range batches {
		if len(b) > maxN {
			maxN = len(b)
		}
	}
	if maxN == 0 {
		r.pipe = nil
		return // nothing will ever be staged (all shards empty)
	}
	slots := make([]*hepSlot, lookahead+1)
	for i := range slots {
		st := tensor.NewStaging(r.arena, r.net.InShape...)
		st.Batch(maxN) // pre-size: all later Batch(n≤maxN) calls are realloc-free
		slots[i] = &hepSlot{stage: st, labels: make([]int, maxN)}
		if r.sampleW != nil {
			slots[i].weights = make([]float32, maxN)
		}
	}
	// The prefetcher gets its own lane: staging spans land beside the
	// worker's compute spans in the timeline, making prefetch hiding
	// directly visible. Iter tags count staged batches (the stager runs
	// ahead of the training iteration by up to the lookahead).
	ingLane := r.lane.Tracer().Lane(r.lane.Name() + ".ingest")
	staged := 0
	r.pipe = data.NewPipeline(slots, data.SliceSource(batches),
		func(dst *hepSlot, idx []int) error {
			ingLane.SetIter(staged)
			staged++
			ingLane.Begin(obs.PhaseIngest)
			dst.n = len(idx)
			dst.x = dst.stage.Batch(dst.n)
			var w []float32
			if dst.weights != nil {
				w = dst.weights[:dst.n]
			}
			err := r.stageInto(dst.x, dst.labels[:dst.n], w, idx)
			ingLane.End(obs.PhaseIngest)
			return err
		})
	r.pipe.Start()
}

// ComputeStagedStream implements core.PipelineReplica: the batch was staged
// in the background; consume it and run the planned forward/backward.
func (r *replica) ComputeStagedStream(gradDone func(layer int)) float64 {
	// The Next wait is the exposed part of ingest — near zero when the
	// prefetcher keeps up, the whole staging cost when it does not.
	r.lane.Begin(obs.PhaseIngest)
	slot, ok := r.pipe.Next()
	r.lane.End(obs.PhaseIngest)
	if !ok {
		if err := r.pipe.Err(); err != nil {
			panic("hep: ingest pipeline: " + err.Error())
		}
		panic("hep: ingest pipeline exhausted before training finished")
	}
	var w []float32
	if slot.weights != nil {
		w = slot.weights[:slot.n]
	}
	return r.computeOn(slot.x, slot.labels[:slot.n], w, gradDone)
}

// StopIngest implements core.PipelineReplica.
func (r *replica) StopIngest() {
	if r.pipe != nil {
		r.pipe.Stop()
	}
}

// IngestStats implements core.IngestReporter over whichever path ran.
func (r *replica) IngestStats() data.IngestStats {
	if r.pipe != nil {
		return r.ingest.Add(r.pipe.Stats())
	}
	return r.ingest
}

// Scores runs inference over the whole dataset and returns P(signal).
func (r *replica) Scores(batch int) []float64 {
	n := r.ds.Images.Shape[0]
	out := make([]float64, 0, n)
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, _ := r.ds.Batch(idx)
		out = append(out, SignalScore(r.net.Forward(x, false))...)
	}
	return out
}

// ScoreDataset evaluates a trained replica (from core training) on a
// dataset, returning P(signal) per sample. rep must come from
// NewReplica().
func ScoreDataset(rep core.Replica, ds *Dataset, batch int) []float64 {
	hr, ok := rep.(*replica)
	if !ok {
		panic("hep: replica was not created by this problem")
	}
	eval := &replica{net: hr.net, ds: ds}
	return eval.Scores(batch)
}

// ReplicaParams exposes a replica's parameter blobs so a trained model can
// be checkpointed with nn.SaveFile (and later served through
// internal/serve). rep must come from NewReplica().
func ReplicaParams(rep core.Replica) []*nn.Param {
	hr, ok := rep.(*replica)
	if !ok {
		panic("hep: replica was not created by this problem")
	}
	return hr.net.Params()
}

type batchSource struct {
	n   int
	rng *tensor.RNG
	b   *data.Batcher
}

func (s *batchSource) Next(size int) []int {
	if s.b == nil || s.b.BatchSize != size {
		s.b = data.NewBatcher(s.n, size, s.rng)
	}
	return s.b.Next()
}
