package hep

import (
	"deep15pf/internal/nn"
	"math"
	"testing"

	"deep15pf/internal/tensor"
)

func TestPaperNetMatchesTableII(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := BuildNet(PaperConfig(), rng)
	// Table II: 2.3 MiB of parameters. Exact count:
	// conv1 128·(3·9)+128 = 3,584; conv2..5 128·(128·9)+128 = 147,584 each;
	// fc 2·128+2 = 258 → 594,178 params = 2.27 MiB.
	if net.NumParams() != 594178 {
		t.Fatalf("paper net params = %d, want 594178", net.NumParams())
	}
	mib := float64(net.ParamBytes()) / (1 << 20)
	if math.Abs(mib-2.27) > 0.05 {
		t.Fatalf("param size %.2f MiB, Table II says 2.3 MiB", mib)
	}
	// 6 trainable layers → the paper's 6 parameter servers.
	if got := len(net.TrainableLayers()); got != 6 {
		t.Fatalf("trainable layers = %d, want 6 (paper used 6 PS nodes)", got)
	}
	// Output: 2 class logits.
	if out := net.OutShape(); len(out) != 1 || out[0] != 2 {
		t.Fatalf("OutShape = %v", out)
	}
}

func TestPaperNetPerLayerModelSize(t *testing.T) {
	// §VI-B2: "nodes need to synchronize and reduce a small model of
	// ∼590 KB" — the mid-network conv layers are 128·128·9·4 B ≈ 576 KiB.
	rng := tensor.NewRNG(2)
	net := BuildNet(PaperConfig(), rng)
	rows := net.FLOPBreakdown()
	var conv3Bytes int64
	for _, r := range rows {
		if r.Name == "conv3" {
			conv3Bytes = r.Bytes
		}
	}
	kb := float64(conv3Bytes) / 1000
	if kb < 560 || kb < 0 || kb > 620 {
		t.Fatalf("conv3 model = %.0f KB, paper says ~590 KB", kb)
	}
}

func TestPaperNetFLOPs(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := BuildNet(PaperConfig(), rng)
	f := net.FLOPsPerSample()
	// Dominated by conv2 (≈3.7 GF fwd); total fwd ≈ 5.3 GF, fwd+bwd ≈ 16 GF.
	gf := float64(f.Total()) / 1e9
	if gf < 14 || gf > 18 {
		t.Fatalf("per-sample flops %.1f GF, expected ~16 GF", gf)
	}
}

func TestSmallNetForwardShapes(t *testing.T) {
	rng := tensor.NewRNG(4)
	cfg := SmallConfig()
	net := BuildNet(cfg, rng)
	x := tensor.New(2, Channels, cfg.ImageSize, cfg.ImageSize)
	rng.FillNorm(x, 0, 1)
	y := net.Forward(x, false)
	if y.Shape[0] != 2 || y.Shape[1] != 2 {
		t.Fatalf("logits shape %v", y.Shape)
	}
}

func TestBuildNetValidation(t *testing.T) {
	rng := tensor.NewRNG(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undersized image")
		}
	}()
	BuildNet(ModelConfig{Name: "bad", ImageSize: 4, Filters: 8, ConvUnits: 5, Classes: 2}, rng)
}

func TestSignalScore(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 0, -10, 10}, 2, 2)
	s := SignalScore(logits)
	if math.Abs(s[0]-0.5) > 1e-6 {
		t.Fatalf("uniform logits score %v", s[0])
	}
	if s[1] < 0.999 {
		t.Fatalf("confident signal score %v", s[1])
	}
}

func TestSmallNetLearnsSyntheticHEP(t *testing.T) {
	// End-to-end sanity: a few SGD steps on a tiny sample must reduce the
	// training loss — the substrate for the Fig 8 and §VII-A experiments.
	if testing.Short() {
		t.Skip("training smoke test")
	}
	rng := tensor.NewRNG(6)
	cfg := DefaultGenConfig()
	r := NewRenderer(16)
	ds := GenerateDataset(cfg, r, 64, 0.5, rng)
	net := BuildNet(ModelConfig{Name: "t", ImageSize: 16, Filters: 8, ConvUnits: 3, Classes: 2}, rng)

	lossAt := func() float64 {
		x, labels := ds.Batch(seqIdx(64))
		logits := net.Forward(x, false)
		l, _ := lossOf(logits, labels)
		return l
	}
	first := lossAt()
	lr := 0.05
	for it := 0; it < 30; it++ {
		x, labels := ds.Batch(seqIdx(64))
		net.ZeroGrad()
		logits := net.Forward(x, true)
		_, grad := lossOf(logits, labels)
		net.Backward(grad)
		for _, p := range net.Params() {
			for i := range p.W.Data {
				p.W.Data[i] -= float32(lr) * p.Grad.Data[i]
			}
		}
	}
	last := lossAt()
	if last >= first {
		t.Fatalf("training did not reduce loss: %.4f -> %.4f", first, last)
	}
}

func seqIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func lossOf(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	return nn.SoftmaxCrossEntropy(logits, labels)
}
