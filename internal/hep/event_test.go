package hep

import (
	"math"
	"testing"

	"deep15pf/internal/tensor"
)

func TestGenerateRespectsPreselection(t *testing.T) {
	cfg := DefaultGenConfig()
	rng := tensor.NewRNG(1)
	for i := 0; i < 50; i++ {
		e := cfg.Generate(rng, i%2 == 0)
		if e.NJets(cfg.PreselJetPt) < cfg.PreselMinJets {
			t.Fatalf("event fails jet preselection: %d jets", e.NJets(cfg.PreselJetPt))
		}
		if e.HT(cfg.PreselJetPt) < cfg.PreselMinHT {
			t.Fatalf("event fails HT preselection: %v", e.HT(cfg.PreselJetPt))
		}
	}
}

func TestJetKinematicsInRange(t *testing.T) {
	cfg := DefaultGenConfig()
	rng := tensor.NewRNG(2)
	events, _ := cfg.GenerateEvents(100, 0.5, rng)
	for _, e := range events {
		for _, j := range e.Jets {
			if j.Pt <= 0 {
				t.Fatalf("non-positive pT %v", j.Pt)
			}
			if math.Abs(j.Eta) > etaMax {
				t.Fatalf("eta %v outside acceptance", j.Eta)
			}
			if j.Phi < -math.Pi || j.Phi > math.Pi {
				t.Fatalf("phi %v not wrapped", j.Phi)
			}
			if j.EMFrac < 0 || j.EMFrac > 1 {
				t.Fatalf("emfrac %v", j.EMFrac)
			}
			if math.Abs(j.Eta) >= trackEta && j.NTracks != 0 {
				t.Fatalf("tracks outside inner detector: eta %v", j.Eta)
			}
		}
	}
}

func TestSignalHasMoreJetsOnAverage(t *testing.T) {
	cfg := DefaultGenConfig()
	rng := tensor.NewRNG(3)
	var sigJets, bgJets float64
	n := 300
	for i := 0; i < n; i++ {
		s := cfg.Generate(rng, true)
		b := cfg.Generate(rng, false)
		sigJets += float64(len(s.Jets))
		bgJets += float64(len(b.Jets))
	}
	if sigJets <= bgJets {
		t.Fatalf("signal mean jets %.1f should exceed background %.1f", sigJets/float64(n), bgJets/float64(n))
	}
}

func TestGenerateEventsLabelFraction(t *testing.T) {
	cfg := DefaultGenConfig()
	rng := tensor.NewRNG(4)
	_, labels := cfg.GenerateEvents(2000, 0.3, rng)
	sig := 0
	for _, l := range labels {
		sig += l
	}
	frac := float64(sig) / 2000
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("signal fraction %.3f, want ~0.3", frac)
	}
}

func TestHTAndNJets(t *testing.T) {
	e := Event{Jets: []Jet{{Pt: 100}, {Pt: 60}, {Pt: 30}}}
	if e.HT(50) != 160 {
		t.Fatalf("HT = %v", e.HT(50))
	}
	if e.NJets(50) != 2 || e.NJets(10) != 3 {
		t.Fatal("NJets wrong")
	}
}

func TestWrapPhi(t *testing.T) {
	if v := wrapPhi(3 * math.Pi); math.Abs(v-math.Pi) > 1e-9 {
		t.Fatalf("wrapPhi(3π) = %v", v)
	}
	if v := wrapPhi(-3 * math.Pi); math.Abs(v+math.Pi) > 1e-9 {
		t.Fatalf("wrapPhi(-3π) = %v", v)
	}
}

func TestBaselineSeparates(t *testing.T) {
	cfg := DefaultGenConfig()
	rng := tensor.NewRNG(5)
	events, labels := cfg.GenerateEvents(3000, 0.5, rng)
	tpr, fpr := DefaultBaseline().Evaluate(events, labels)
	// The working point must be meaningful: real signal efficiency at a
	// strongly suppressed background rate, mirroring the paper's 42% @
	// 0.02% shape (our FPR floor is set by sample statistics).
	if tpr < 0.15 || tpr > 0.85 {
		t.Fatalf("baseline TPR %.3f outside sane band", tpr)
	}
	if fpr >= 0.05 {
		t.Fatalf("baseline FPR %.4f too high to be a rare-signal working point", fpr)
	}
	if tpr <= fpr*5 {
		t.Fatalf("baseline not discriminating: TPR %.3f vs FPR %.4f", tpr, fpr)
	}
}

func TestExtractFeatures(t *testing.T) {
	e := Event{Jets: []Jet{{Pt: 100}, {Pt: 85}, {Pt: 55}, {Pt: 45}}}
	f := ExtractFeatures(&e)
	if f.NJets50 != 3 || f.NJets80 != 2 {
		t.Fatalf("features = %+v", f)
	}
	if f.HT != 285 {
		t.Fatalf("HT = %v", f.HT)
	}
	if f.LeadPt != 100 {
		t.Fatalf("LeadPt = %v", f.LeadPt)
	}
}

func TestBaselineEvaluateEmptyClasses(t *testing.T) {
	events := []Event{{Jets: []Jet{{Pt: 100}}}}
	tpr, fpr := DefaultBaseline().Evaluate(events, []int{0})
	if tpr != 0 || fpr != 0 {
		t.Fatal("degenerate evaluate should be zero, not NaN")
	}
}
