package hep

import (
	"fmt"

	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// ModelConfig selects the network scale. PaperConfig reproduces Table II's
// supervised HEP architecture exactly; SmallConfig is the same topology
// shrunk for single-core training in tests and examples.
type ModelConfig struct {
	Name      string
	ImageSize int
	Filters   int
	ConvUnits int // conv(+pool) units; the last uses global average pooling
	Classes   int
}

// PaperConfig is the §III-A architecture: 5 convolution(3×3, 128 filters,
// stride 1)+pooling units — max pooling 2×2/2 for the first four, global
// average pooling after the fifth — and one fully connected layer projecting
// 128 → 2 class logits. 224×224×3 input, ~2.3 MiB of parameters.
func PaperConfig() ModelConfig {
	return ModelConfig{Name: "hep-paper", ImageSize: 224, Filters: 128, ConvUnits: 5, Classes: 2}
}

// SmallConfig is the laptop-scale variant used for real training runs: the
// identical layer pattern at 32×32 with 16 filters.
func SmallConfig() ModelConfig {
	return ModelConfig{Name: "hep-small", ImageSize: 32, Filters: 16, ConvUnits: 4, Classes: 2}
}

// BuildNet constructs the classifier. Architecture per §III-A: every conv is
// 3×3 stride 1 pad 1 with ReLU; pools are 2×2 stride 2 max pools except the
// final unit, which global-average-pools into the fully connected layer.
func BuildNet(cfg ModelConfig, rng *tensor.RNG) *nn.Network {
	if cfg.ConvUnits < 2 {
		panic("hep: need at least 2 conv units")
	}
	minSize := 1 << (cfg.ConvUnits - 1)
	if cfg.ImageSize < minSize {
		panic(fmt.Sprintf("hep: image size %d too small for %d conv units", cfg.ImageSize, cfg.ConvUnits))
	}
	net := nn.NewNetwork(cfg.Name, Channels, cfg.ImageSize, cfg.ImageSize)
	inC := Channels
	for u := 1; u <= cfg.ConvUnits; u++ {
		net.Add(
			nn.NewConv2D(fmt.Sprintf("conv%d", u), inC, cfg.Filters, 3, 1, 1, rng),
			nn.NewReLU(fmt.Sprintf("relu%d", u)),
		)
		if u < cfg.ConvUnits {
			net.Add(nn.NewMaxPool2D(fmt.Sprintf("pool%d", u), 2, 2))
		} else {
			net.Add(nn.NewGlobalAvgPool("global_pool"))
		}
		inC = cfg.Filters
	}
	net.Add(nn.NewDense("fc", cfg.Filters, cfg.Classes, rng))
	return net
}

// SignalScore returns P(signal) per sample from class logits.
func SignalScore(logits *tensor.Tensor) []float64 {
	probs := nn.SoftmaxProbs(logits)
	n := probs.Shape[0]
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = float64(probs.At(i, 1))
	}
	return out
}
