package hep

// This file is the pseudo-label flywheel's dataset support: the
// train → serve → label → retrain loop moves (features, label) pairs
// through the D15P shard format bit-exactly via SaveLabeledShards and
// LoadShardDataset, and Append merges the human-labeled set with a
// machine-labeled one so TrainingProblem.SampleWeights can discount the
// latter.

import (
	"fmt"
	"math"

	"deep15pf/internal/data"
	"deep15pf/internal/tensor"
)

// SaveLabeledShards persists the dataset's images AND labels to numShards
// shard files (labLen 1) under dir — the layout the pseudo-label factory
// emits and LoadShardDataset reads back. Float bits and labels round-trip
// exactly.
func (d *Dataset) SaveLabeledShards(dir string, numShards int) ([]string, error) {
	s := d.Images.Shape
	per := s[1] * s[2] * s[3]
	labels := make([]int32, s[0])
	for i, l := range d.Labels {
		labels[i] = int32(l)
	}
	return data.WriteShards(dir, numShards, s[0], per, 1, d.Images.Data, labels)
}

// LoadShardDataset opens labeled shard files (labLen 1, as written by
// SaveLabeledShards or the pseudo-label factory) as an in-memory Dataset.
// The image side length is recovered from the feature length, which must
// be Channels·S·S for integer S. Events is nil — generated pseudo-labels
// carry no truth-level event record.
func LoadShardDataset(paths ...string) (*Dataset, error) {
	ss, err := data.OpenShardSet(paths...)
	if err != nil {
		return nil, err
	}
	defer ss.Close()
	if ss.LabLen != 1 {
		return nil, fmt.Errorf("hep: labeled shards carry %d labels per sample, want 1", ss.LabLen)
	}
	side := math.Sqrt(float64(ss.FeatLen) / Channels)
	size := int(side)
	if float64(size) != side || size < 1 {
		return nil, fmt.Errorf("hep: feature length %d is not %d×S×S", ss.FeatLen, Channels)
	}
	images := tensor.New(ss.Count, Channels, size, size)
	labels32 := make([]int32, ss.Count)
	idx := make([]int, ss.Count)
	for i := range idx {
		idx[i] = i
	}
	if err := ss.ReadBatchInto(idx, images.Data, labels32, nil); err != nil {
		return nil, err
	}
	labels := make([]int, ss.Count)
	for i, l := range labels32 {
		labels[i] = int(l)
	}
	return &Dataset{Images: images, Labels: labels}, nil
}

// Append returns a new Dataset holding d's samples followed by o's. Shapes
// must agree. Events are concatenated only when both sides carry them
// (pseudo-labeled sets do not; a mixed append drops the record rather than
// misaligning it).
func (d *Dataset) Append(o *Dataset) *Dataset {
	ds, os := d.Images.Shape, o.Images.Shape
	if ds[1] != os[1] || ds[2] != os[2] || ds[3] != os[3] {
		panic(fmt.Sprintf("hep: Append shape mismatch %v vs %v", ds, os))
	}
	n := ds[0] + os[0]
	images := tensor.New(n, ds[1], ds[2], ds[3])
	copy(images.Data, d.Images.Data)
	copy(images.Data[d.Images.Len():], o.Images.Data)
	labels := make([]int, 0, n)
	labels = append(labels, d.Labels...)
	labels = append(labels, o.Labels...)
	var events []Event
	if d.Events != nil && o.Events != nil {
		events = append(append([]Event(nil), d.Events...), o.Events...)
	}
	return &Dataset{Images: images, Labels: labels, Events: events}
}
