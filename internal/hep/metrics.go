package hep

import (
	"fmt"
	"sort"
)

// ROC utilities for the §VII-A science comparison: the paper evaluates the
// true-positive rate at the baseline's very low false-positive rate
// (42% @ 0.02% for the cuts; 72% for the CNN — a 1.7× improvement).

// ROCPoint is one operating point of a score threshold scan.
type ROCPoint struct {
	Threshold float64
	TPR, FPR  float64
}

// ROC returns the full threshold scan, sorted by descending threshold
// (ascending FPR). scores are P(signal); labels are 1=signal, 0=background.
func ROC(scores []float64, labels []int) []ROCPoint {
	if len(scores) != len(labels) {
		panic("hep: ROC input length mismatch")
	}
	type sl struct {
		s   float64
		lab int
	}
	pts := make([]sl, len(scores))
	var nSig, nBg int
	for i := range scores {
		pts[i] = sl{scores[i], labels[i]}
		if labels[i] == 1 {
			nSig++
		} else {
			nBg++
		}
	}
	if nSig == 0 || nBg == 0 {
		panic("hep: ROC needs both classes")
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].s > pts[j].s })
	out := make([]ROCPoint, 0, len(pts)+1)
	tp, fp := 0, 0
	for i := 0; i < len(pts); {
		th := pts[i].s
		// Consume ties together so the curve is threshold-consistent.
		for i < len(pts) && pts[i].s == th {
			if pts[i].lab == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, ROCPoint{
			Threshold: th,
			TPR:       float64(tp) / float64(nSig),
			FPR:       float64(fp) / float64(nBg),
		})
	}
	return out
}

// TPRAtFPR returns the best true-positive rate achievable at a
// false-positive rate not exceeding maxFPR, with the realising threshold.
// This is the paper's figure of merit: signal efficiency at a fixed, very
// low background acceptance.
func TPRAtFPR(scores []float64, labels []int, maxFPR float64) (tpr, threshold float64) {
	curve := ROC(scores, labels)
	threshold = 1
	for _, p := range curve {
		if p.FPR <= maxFPR && p.TPR > tpr {
			tpr = p.TPR
			threshold = p.Threshold
		}
	}
	return tpr, threshold
}

// AUC returns the area under the ROC curve by trapezoidal integration.
func AUC(scores []float64, labels []int) float64 {
	curve := ROC(scores, labels)
	var area, prevFPR, prevTPR float64
	for _, p := range curve {
		area += (p.FPR - prevFPR) * (p.TPR + prevTPR) / 2
		prevFPR, prevTPR = p.FPR, p.TPR
	}
	area += (1 - prevFPR) * (1 + prevTPR) / 2
	return area
}

// Accuracy returns the fraction of correct argmax predictions.
func Accuracy(scores []float64, labels []int) float64 {
	if len(scores) == 0 {
		return 0
	}
	correct := 0
	for i, s := range scores {
		pred := 0
		if s >= 0.5 {
			pred = 1
		}
		if pred == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(scores))
}

// ScienceResult packages the §VII-A comparison.
type ScienceResult struct {
	BaselineTPR, BaselineFPR float64
	CNNTPRAtBaselineFPR      float64
	Improvement              float64 // CNN TPR / baseline TPR
	AUC                      float64
}

func (r ScienceResult) String() string {
	return fmt.Sprintf("baseline TPR %.1f%% @ FPR %.3f%% | CNN TPR %.1f%% (%.2fx) | AUC %.3f",
		100*r.BaselineTPR, 100*r.BaselineFPR, 100*r.CNNTPRAtBaselineFPR, r.Improvement, r.AUC)
}

// CompareToBaseline evaluates the CNN scores against the cut-based working
// point on the same labelled sample, at the baseline's measured FPR.
func CompareToBaseline(cuts BaselineCuts, events []Event, scores []float64, labels []int) ScienceResult {
	tpr, fpr := cuts.Evaluate(events, labels)
	if fpr <= 0 {
		// No background passes on this sample size; evaluate the CNN at
		// the smallest resolvable FPR instead.
		fpr = 1 / float64(len(labels))
	}
	cnnTPR, _ := TPRAtFPR(scores, labels, fpr)
	res := ScienceResult{
		BaselineTPR:         tpr,
		BaselineFPR:         fpr,
		CNNTPRAtBaselineFPR: cnnTPR,
		AUC:                 AUC(scores, labels),
	}
	if tpr > 0 {
		res.Improvement = cnnTPR / tpr
	}
	return res
}
