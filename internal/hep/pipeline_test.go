package hep

import (
	"testing"

	"deep15pf/internal/core"
	"deep15pf/internal/data"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// TestShardBackedPrefetchMatchesInMemoryBlocking pins the tentpole's
// acceptance contract end to end: training with real per-batch shard-file
// reads staged by the background pipeline must reproduce the in-memory
// blocking trajectory bit for bit (shards round-trip float bits exactly,
// and the pipeline consumes the same batch order as the blocking path).
func TestShardBackedPrefetchMatchesInMemoryBlocking(t *testing.T) {
	rng := tensor.NewRNG(71)
	cfg := ModelConfig{Name: "pipe-test", ImageSize: 16, Filters: 8, ConvUnits: 3, Classes: 2}
	ds := GenerateDataset(DefaultGenConfig(), NewRenderer(16), 24, 0.5, rng)

	mem := NewTrainingProblem(ds, cfg, 5)
	shard := NewTrainingProblem(ds, cfg, 5)
	paths, err := ds.SaveShards(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	set, err := data.OpenShardSet(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	shard.Backing = set

	base := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 8, Iterations: 8, Seed: 3}
	base.Solver = opt.NewSGD(0.02, 0.9)
	resMem := core.TrainSync(mem, base)

	pf := base
	pf.Solver = opt.NewSGD(0.02, 0.9)
	pf.Prefetch = 2
	resShard := core.TrainSync(shard, pf)

	for i := range resMem.FinalWeights {
		for j := range resMem.FinalWeights[i] {
			for k, v := range resMem.FinalWeights[i][j] {
				if resShard.FinalWeights[i][j][k] != v {
					t.Fatalf("shard-backed prefetched weights diverge at layer %d blob %d elem %d: %v vs %v",
						i, j, k, resShard.FinalWeights[i][j][k], v)
				}
			}
		}
	}
	for i := range resMem.Stats {
		if resMem.Stats[i].Loss != resShard.Stats[i].Loss {
			t.Fatalf("iteration %d loss diverges: %v vs %v", i, resMem.Stats[i].Loss, resShard.Stats[i].Loss)
		}
	}

	// The accounts must reflect the paths taken: blocking books all staging
	// as exposed wait; the pipeline's wait is measured, not assumed.
	if resMem.Ingest.Batches == 0 || resShard.Ingest.Batches == 0 {
		t.Fatalf("ingest accounting missing: mem %+v shard %+v", resMem.Ingest, resShard.Ingest)
	}
	if resMem.Ingest.Overlap() != 0 {
		t.Fatalf("blocking path reported %.2f overlap, want 0", resMem.Ingest.Overlap())
	}
	if ov := resShard.Ingest.Overlap(); ov < 0 || ov > 1 {
		t.Fatalf("pipeline overlap %v out of range", ov)
	}
}

// TestPrefetchedTrainingIterationZeroAllocs extends the PR 2 allocation
// gate to the streaming pipeline: a warmed Pipeline.Next plus a full
// planned train iteration — while the background goroutine stages the next
// batch — must not touch the allocator. AllocsPerRun counts process-wide
// mallocs, so a pass certifies the prefetch side too.
func TestPrefetchedTrainingIterationZeroAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	p := planTestProblem(t, 16)
	rep := p.NewReplica().(*replica)

	batches := make([][]int, 200)
	for i := range batches {
		batches[i] = []int{1, 5, 9, 13}
	}
	rep.StartIngest(batches, 1)
	defer rep.StopIngest()

	iter := func() {
		rep.ZeroGrad()
		rep.ComputeStagedStream(nil)
	}
	iter() // warm: plan compile, grad staging, ring steady state
	iter()
	if allocs := testing.AllocsPerRun(20, iter); allocs != 0 {
		t.Fatalf("warmed prefetched training iteration allocates %v objects/op, want 0", allocs)
	}
}

// TestStagedStreamMatchesBlockingStream: batch for batch, the staged
// compute must produce the same losses and gradients as the blocking one
// (same replica construction, same index sequence).
func TestStagedStreamMatchesBlockingStream(t *testing.T) {
	p := planTestProblem(t, 16)
	blocking := p.NewReplica().(*replica)
	staged := p.NewReplica().(*replica)

	batches := [][]int{{0, 3, 7, 11}, {4, 2, 9, 1}, {15, 14, 13, 12}, {5, 6}}
	staged.StartIngest(batches, 1)
	defer staged.StopIngest()

	for it, idx := range batches {
		blocking.ZeroGrad()
		staged.ZeroGrad()
		wantLoss := blocking.ComputeGradients(idx)
		gotLoss := staged.ComputeStagedStream(nil)
		if gotLoss != wantLoss {
			t.Fatalf("batch %d: staged loss %v, blocking %v", it, gotLoss, wantLoss)
		}
		bp, sp := blocking.net.Params(), staged.net.Params()
		for i := range bp {
			for j := range bp[i].Grad.Data {
				if sp[i].Grad.Data[j] != bp[i].Grad.Data[j] {
					t.Fatalf("batch %d: param %s grad diverges at %d", it, bp[i].Name, j)
				}
			}
		}
	}
}
