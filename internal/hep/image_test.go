package hep

import (
	"math"
	"testing"

	"deep15pf/internal/tensor"
)

func TestRenderDepositsEnergy(t *testing.T) {
	r := NewRenderer(32)
	r.Noise = 0
	rng := tensor.NewRNG(1)
	e := Event{Jets: []Jet{{Pt: 100, Eta: 0, Phi: 0, EMFrac: 0.5, NTracks: 10}}}
	img := make([]float32, r.SampleFloats())
	r.Render(&e, rng, img)
	var total float64
	for _, v := range img {
		if v < 0 {
			t.Fatalf("negative pixel %v", v)
		}
		total += float64(v)
	}
	if total <= 0 {
		t.Fatal("render deposited nothing")
	}
	// Peak should be near the jet position: eta=0 → row 16, phi=0 → col 16.
	s := 32
	ecal := img[:s*s]
	var maxIdx int
	var maxV float32
	for i, v := range ecal {
		if v > maxV {
			maxV, maxIdx = v, i
		}
	}
	px, py := maxIdx/s, maxIdx%s
	if px < 14 || px > 17 || py < 14 || py > 17 {
		t.Fatalf("energy peak at (%d,%d), want near (16,16)", px, py)
	}
}

func TestRenderPhiWraparound(t *testing.T) {
	r := NewRenderer(32)
	r.Noise = 0
	rng := tensor.NewRNG(2)
	// Jet at phi = π (the seam): energy must appear on both edges.
	e := Event{Jets: []Jet{{Pt: 200, Eta: 0, Phi: math.Pi - 1e-6, EMFrac: 0.5}}}
	img := make([]float32, r.SampleFloats())
	r.Render(&e, rng, img)
	s := 32
	ecal := img[:s*s]
	row := 16
	lowEdge := ecal[row*s+0]
	highEdge := ecal[row*s+s-1]
	if lowEdge <= 0 || highEdge <= 0 {
		t.Fatalf("seam jet must wrap: edges %v %v", lowEdge, highEdge)
	}
}

func TestRenderTrackChannelRespectsAcceptance(t *testing.T) {
	r := NewRenderer(32)
	r.Noise = 0
	rng := tensor.NewRNG(3)
	// Forward jet outside tracker acceptance: no track deposit anywhere.
	e := Event{Jets: []Jet{{Pt: 100, Eta: 4.0, Phi: 0, EMFrac: 0.5, NTracks: 0}}}
	img := make([]float32, r.SampleFloats())
	r.Render(&e, rng, img)
	s := 32
	trk := img[2*s*s:]
	for i, v := range trk {
		if v != 0 {
			t.Fatalf("track deposit at %d for forward jet", i)
		}
	}
}

func TestGenerateDatasetShapes(t *testing.T) {
	cfg := DefaultGenConfig()
	r := NewRenderer(16)
	rng := tensor.NewRNG(4)
	ds := GenerateDataset(cfg, r, 10, 0.5, rng)
	if ds.Images.Shape[0] != 10 || ds.Images.Shape[1] != 3 || ds.Images.Shape[2] != 16 {
		t.Fatalf("dataset shape %v", ds.Images.Shape)
	}
	if len(ds.Labels) != 10 || len(ds.Events) != 10 {
		t.Fatal("label/event count mismatch")
	}
}

func TestDatasetBatchGather(t *testing.T) {
	cfg := DefaultGenConfig()
	r := NewRenderer(8)
	rng := tensor.NewRNG(5)
	ds := GenerateDataset(cfg, r, 6, 0.5, rng)
	x, labels := ds.Batch([]int{4, 1})
	if x.Shape[0] != 2 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	per := 3 * 8 * 8
	for i := 0; i < per; i++ {
		if x.Data[i] != ds.Images.Data[4*per+i] {
			t.Fatal("batch gather wrong sample order")
		}
	}
	if labels[0] != ds.Labels[4] || labels[1] != ds.Labels[1] {
		t.Fatal("batch labels wrong")
	}
}

func TestImagesAreClassSeparable(t *testing.T) {
	// Mean total deposited energy should differ between classes — the
	// minimal condition for the CNN task to be learnable.
	cfg := DefaultGenConfig()
	r := NewRenderer(16)
	rng := tensor.NewRNG(6)
	ds := GenerateDataset(cfg, r, 200, 0.5, rng)
	per := r.SampleFloats()
	var sig, bg float64
	var nSig, nBg int
	for i := 0; i < 200; i++ {
		var sum float64
		for _, v := range ds.Images.Data[i*per : (i+1)*per] {
			sum += float64(v)
		}
		if ds.Labels[i] == 1 {
			sig += sum
			nSig++
		} else {
			bg += sum
			nBg++
		}
	}
	if nSig == 0 || nBg == 0 {
		t.Skip("degenerate class split")
	}
	if sig/float64(nSig) <= bg/float64(nBg) {
		t.Fatalf("signal images should carry more energy: %v vs %v", sig/float64(nSig), bg/float64(nBg))
	}
}
