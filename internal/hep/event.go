// Package hep implements the paper's supervised high-energy-physics
// application: a synthetic stand-in for the Pythia+Delphes event sample
// (signal = new massive supersymmetric particles decaying to many jets,
// background = prevalent QCD multijet production), rendering of events to
// 3-channel calorimeter images, the cut-based baseline selections the paper
// benchmarks against (its [5]), the convolutional classifier of §III-A, and
// ROC metrics for the §VII-A science result.
//
// The substitution preserves what makes the physics task hard: a steeply
// falling background whose tail overlaps the signal in the scalar features
// (jet count, H_T) that cut-based selections use, while the signal carries
// spatial structure — decay products clustered around two back-to-back
// parent axes — that only an image model can exploit.
package hep

import (
	"math"

	"deep15pf/internal/tensor"
)

// Jet is one reconstructed jet: transverse momentum (GeV), pseudorapidity,
// azimuth, electromagnetic energy fraction and associated track count.
type Jet struct {
	Pt      float64
	Eta     float64
	Phi     float64
	EMFrac  float64
	NTracks int
}

// Event is one collision event.
type Event struct {
	Jets     []Jet
	IsSignal bool
}

// HT returns the scalar sum of jet transverse momenta above ptMin — the
// workhorse variable of multi-jet searches.
func (e *Event) HT(ptMin float64) float64 {
	var ht float64
	for _, j := range e.Jets {
		if j.Pt >= ptMin {
			ht += j.Pt
		}
	}
	return ht
}

// NJets returns the number of jets above ptMin.
func (e *Event) NJets(ptMin float64) int {
	n := 0
	for _, j := range e.Jets {
		if j.Pt >= ptMin {
			n++
		}
	}
	return n
}

// GenConfig parameterises the synthetic event generator.
type GenConfig struct {
	// Background (QCD multijet) shape.
	BgMeanJets   float64 // Poisson mean of extra jets beyond the dijet core
	BgJetPtScale float64 // exponential pT scale (GeV)
	BgEtaSpread  float64 // jet pseudorapidity spread

	// Signal (pair-produced massive particle → many clustered jets).
	SigJetsPerParent float64 // Poisson mean of extra jets per parent beyond 3
	SigJetPtScale    float64
	SigAxisEta       float64 // parent axis pseudorapidity spread
	SigClusterSpread float64 // jet spread around the parent axis (η–φ)

	// Preselection applied to both classes, mimicking the paper's
	// filtering of the sample to "those more challenging to discriminate".
	PreselMinJets int
	PreselJetPt   float64
	PreselMinHT   float64
}

// DefaultGenConfig returns the tuned generator used throughout the
// reproduction. With these settings the cut-based baseline reaches a
// TPR of roughly 0.4 at sub-percent FPR (the paper's benchmark operating
// point scaled to our statistics) while the CNN can exceed it.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		BgMeanJets:   2.5,
		BgJetPtScale: 120,
		BgEtaSpread:  1.8,

		SigJetsPerParent: 1.5,
		SigJetPtScale:    150,
		SigAxisEta:       0.7,
		SigClusterSpread: 0.45,

		PreselMinJets: 4,
		PreselJetPt:   40,
		PreselMinHT:   350,
	}
}

const (
	etaMax   = 4.5 // calorimeter acceptance rendered to images
	trackEta = 2.5 // inner-detector acceptance for the track channel
)

func wrapPhi(phi float64) float64 {
	for phi > math.Pi {
		phi -= 2 * math.Pi
	}
	for phi < -math.Pi {
		phi += 2 * math.Pi
	}
	return phi
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (c GenConfig) newJet(rng *tensor.RNG, pt, eta, phi float64) Jet {
	j := Jet{
		Pt:     pt,
		Eta:    clamp(eta, -etaMax, etaMax),
		Phi:    wrapPhi(phi),
		EMFrac: clamp(0.2+0.5*rng.Float64()+0.1*rng.Norm(), 0.05, 0.95),
	}
	if math.Abs(j.Eta) < trackEta {
		j.NTracks = rng.Poisson(pt / 8)
	}
	return j
}

// genBackground draws one QCD multijet event: a hard dijet core plus a
// falling number of softer jets, spread widely in pseudorapidity.
func (c GenConfig) genBackground(rng *tensor.RNG) Event {
	n := 2 + rng.Poisson(c.BgMeanJets)
	jets := make([]Jet, 0, n)
	// Dijet core: back-to-back in phi.
	phi0 := (2*rng.Float64() - 1) * math.Pi
	lead := 60 + rng.Exp(c.BgJetPtScale)
	jets = append(jets,
		c.newJet(rng, lead, c.BgEtaSpread*rng.Norm(), phi0),
		c.newJet(rng, lead*(0.7+0.25*rng.Float64()), c.BgEtaSpread*rng.Norm(), phi0+math.Pi+0.3*rng.Norm()),
	)
	for i := 2; i < n; i++ {
		pt := 25 + rng.Exp(c.BgJetPtScale*0.45)
		jets = append(jets, c.newJet(rng, pt, c.BgEtaSpread*rng.Norm(), (2*rng.Float64()-1)*math.Pi))
	}
	return Event{Jets: jets}
}

// genSignal draws one signal event: two back-to-back parent particles, each
// decaying to several jets clustered around its flight axis.
func (c GenConfig) genSignal(rng *tensor.RNG) Event {
	phi0 := (2*rng.Float64() - 1) * math.Pi
	axes := [2]struct{ eta, phi float64 }{
		{c.SigAxisEta * rng.Norm(), phi0},
		{c.SigAxisEta * rng.Norm(), phi0 + math.Pi + 0.25*rng.Norm()},
	}
	var jets []Jet
	for _, ax := range axes {
		n := 3 + rng.Poisson(c.SigJetsPerParent)
		for i := 0; i < n; i++ {
			pt := 35 + rng.Exp(c.SigJetPtScale)
			jets = append(jets, c.newJet(rng,
				pt,
				ax.eta+c.SigClusterSpread*rng.Norm(),
				ax.phi+c.SigClusterSpread*rng.Norm()))
		}
	}
	return Event{Jets: jets, IsSignal: true}
}

// passPresel applies the physics preselection.
func (c GenConfig) passPresel(e *Event) bool {
	return e.NJets(c.PreselJetPt) >= c.PreselMinJets && e.HT(c.PreselJetPt) >= c.PreselMinHT
}

// Generate draws one preselected event of the requested class, re-drawing
// until the preselection passes (background acceptance is low by design —
// the retained background is the hard tail that mimics signal in scalar
// variables).
func (c GenConfig) Generate(rng *tensor.RNG, signal bool) Event {
	for {
		var e Event
		if signal {
			e = c.genSignal(rng)
		} else {
			e = c.genBackground(rng)
		}
		if c.passPresel(&e) {
			return e
		}
	}
}

// GenerateEvents draws n preselected events with the given signal fraction.
// Labels are 1 for signal, 0 for background.
func (c GenConfig) GenerateEvents(n int, signalFrac float64, rng *tensor.RNG) ([]Event, []int) {
	events := make([]Event, n)
	labels := make([]int, n)
	for i := range events {
		signal := rng.Float64() < signalFrac
		events[i] = c.Generate(rng, signal)
		if signal {
			labels[i] = 1
		}
	}
	return events, labels
}
