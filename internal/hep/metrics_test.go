package hep

import (
	"math"
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	tpr, th := TPRAtFPR(scores, labels, 0.0)
	if tpr != 1 {
		t.Fatalf("perfect classifier TPR@0 = %v", tpr)
	}
	if th > 0.8 {
		t.Fatalf("threshold %v should admit both signals", th)
	}
	if auc := AUC(scores, labels); math.Abs(auc-1) > 1e-9 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
}

func TestROCRandomClassifierAUC(t *testing.T) {
	rng := tensor.NewRNG(1)
	n := 4000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	auc := AUC(scores, labels)
	if math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCAntiClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	if auc := AUC(scores, labels); auc > 0.1 {
		t.Fatalf("anti-classifier AUC = %v", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	rng := tensor.NewRNG(2)
	scores := make([]float64, 500)
	labels := make([]int, 500)
	for i := range scores {
		labels[i] = rng.Intn(2)
		scores[i] = 0.3*rng.Float64() + 0.5*float64(labels[i])
	}
	curve := ROC(scores, labels)
	for i := 1; i < len(curve); i++ {
		if curve[i].TPR < curve[i-1].TPR || curve[i].FPR < curve[i-1].FPR {
			t.Fatal("ROC must be monotone in both rates")
		}
	}
	last := curve[len(curve)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("curve must end at (1,1), got (%v,%v)", last.FPR, last.TPR)
	}
}

func TestROCHandlesTies(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	curve := ROC(scores, labels)
	if len(curve) != 1 {
		t.Fatalf("tied scores should collapse to one point, got %d", len(curve))
	}
	if curve[0].TPR != 1 || curve[0].FPR != 1 {
		t.Fatalf("tie point = %+v", curve[0])
	}
}

// Property: AUC is invariant under any strictly monotone transform of the
// scores.
func TestAUCMonotoneInvarianceProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed) + 11)
		n := 20 + rng.Intn(60)
		scores := make([]float64, n)
		labels := make([]int, n)
		hasSig, hasBg := false, false
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.Intn(2)
			if labels[i] == 1 {
				hasSig = true
			} else {
				hasBg = true
			}
		}
		if !hasSig || !hasBg {
			return true
		}
		a1 := AUC(scores, labels)
		warped := make([]float64, n)
		for i, s := range scores {
			warped[i] = math.Exp(3*s) - 1 // strictly increasing
		}
		a2 := AUC(warped, labels)
		return math.Abs(a1-a2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTPRAtFPRRespectsBudget(t *testing.T) {
	rng := tensor.NewRNG(3)
	n := 2000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		labels[i] = rng.Intn(2)
		scores[i] = 0.4*rng.Float64() + 0.4*float64(labels[i])
	}
	tpr, th := TPRAtFPR(scores, labels, 0.01)
	// Check the threshold actually achieves FPR ≤ 1%.
	var fp, bg int
	for i := range scores {
		if labels[i] == 0 {
			bg++
			if scores[i] >= th {
				fp++
			}
		}
	}
	if float64(fp)/float64(bg) > 0.011 {
		t.Fatalf("threshold %v gives FPR %v > budget", th, float64(fp)/float64(bg))
	}
	if tpr <= 0 {
		t.Fatal("separable data should have positive TPR at 1% FPR")
	}
}

func TestROCPanicsOnDegenerateInput(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() { _ = recover() }()
		f()
		t.Fatal("expected panic")
	}
	mustPanic(func() { ROC([]float64{0.5}, []int{1, 0}) })
	mustPanic(func() { ROC([]float64{0.5, 0.6}, []int{1, 1}) })
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]float64{0.9, 0.1, 0.6}, []int{1, 0, 0}); math.Abs(a-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v", a)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}

func TestCompareToBaselineImprovementRatio(t *testing.T) {
	cfg := DefaultGenConfig()
	rng := tensor.NewRNG(4)
	events, labels := cfg.GenerateEvents(2000, 0.5, rng)
	// Oracle scores: strictly better than any cut — improvement ≥ 1.
	scores := make([]float64, len(labels))
	for i, l := range labels {
		scores[i] = 0.1*rng.Float64() + 0.8*float64(l)
	}
	res := CompareToBaseline(DefaultBaseline(), events, scores, labels)
	if res.Improvement < 1 {
		t.Fatalf("oracle should beat cuts: %+v", res)
	}
	if res.AUC < 0.95 {
		t.Fatalf("oracle AUC = %v", res.AUC)
	}
	if res.String() == "" {
		t.Fatal("empty string rendering")
	}
}
