package hep

// Cut-based baseline, our implementation of the reference analysis
// selections (the paper's [5], ATLAS-CONF-2016-057: massive SUSY particles
// in multi-jet final states). The published analysis selects on jet
// multiplicity and scalar momentum sums built from reconstructed jets —
// exactly the high-level, physics-motivated features the paper's CNN is
// shown to beat. The paper reports the baseline working point at TPR 42%
// with FPR 0.02%.

// Features are the high-level physics variables the baseline cuts on.
type Features struct {
	NJets50 int     // jets with pT > 50 GeV
	NJets80 int     // jets with pT > 80 GeV
	HT      float64 // scalar pT sum of jets above 40 GeV
	LeadPt  float64 // leading-jet pT
}

// ExtractFeatures computes the high-level features for one event.
func ExtractFeatures(e *Event) Features {
	f := Features{
		NJets50: e.NJets(50),
		NJets80: e.NJets(80),
		HT:      e.HT(40),
	}
	for _, j := range e.Jets {
		if j.Pt > f.LeadPt {
			f.LeadPt = j.Pt
		}
	}
	return f
}

// BaselineCuts is a multi-jet selection working point.
type BaselineCuts struct {
	MinJets50 int
	MinJets80 int
	MinHT     float64
}

// DefaultBaseline returns the tuned working point used as the paper-style
// benchmark: a high jet-multiplicity requirement plus an H_T threshold.
// On the default generator this selects TPR ≈ 37% at FPR ≈ 0.04% — the
// same operating regime as the published baseline's 42% @ 0.02%.
func DefaultBaseline() BaselineCuts {
	return BaselineCuts{MinJets50: 9, MinJets80: 5, MinHT: 1200}
}

// Pass reports whether the event passes the selection.
func (b BaselineCuts) Pass(e *Event) bool {
	f := ExtractFeatures(e)
	return f.NJets50 >= b.MinJets50 && f.NJets80 >= b.MinJets80 && f.HT >= b.MinHT
}

// Evaluate measures the working point: the true-positive rate on signal and
// false-positive rate on background over a labelled event set.
func (b BaselineCuts) Evaluate(events []Event, labels []int) (tpr, fpr float64) {
	var sigPass, sigTotal, bgPass, bgTotal int
	for i := range events {
		pass := b.Pass(&events[i])
		if labels[i] == 1 {
			sigTotal++
			if pass {
				sigPass++
			}
		} else {
			bgTotal++
			if pass {
				bgPass++
			}
		}
	}
	if sigTotal > 0 {
		tpr = float64(sigPass) / float64(sigTotal)
	}
	if bgTotal > 0 {
		fpr = float64(bgPass) / float64(bgTotal)
	}
	return tpr, fpr
}
