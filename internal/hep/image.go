package hep

import (
	"math"

	"deep15pf/internal/data"
	"deep15pf/internal/tensor"
)

// Renderer rasterises events to the paper's 3-channel detector images: the
// data "from the surface of the cylindrical detector ... as a sparse 2D
// image" with the electromagnetic calorimeter, hadronic calorimeter and
// inner-detector track count as channels (§I-A). The image spans the full
// detector: η ∈ [−4.5, 4.5] on one axis and φ ∈ [−π, π) (with wraparound)
// on the other.
type Renderer struct {
	Size  int     // square image size in pixels
	Sigma float64 // jet energy spread in η–φ units
	Noise float64 // calorimeter noise level per pixel (pre-log)
}

// Channels is the image channel count (ECAL, HCAL, tracks).
const Channels = 3

// NewRenderer constructs a renderer for Size×Size images.
func NewRenderer(size int) *Renderer {
	return &Renderer{Size: size, Sigma: 0.35, Noise: 0.4}
}

// SampleFloats returns the per-image float count.
func (r *Renderer) SampleFloats() int { return Channels * r.Size * r.Size }

// Render rasterises one event into dst (length SampleFloats, CHW layout).
// Deposits are Gaussian blobs around each jet axis; the φ axis wraps; the
// track channel is confined to the inner-detector acceptance. Intensities
// are log-compressed to tame the steeply falling energy spectrum.
func (r *Renderer) Render(e *Event, rng *tensor.RNG, dst []float32) {
	if len(dst) != r.SampleFloats() {
		panic("hep: Render destination has wrong size")
	}
	for i := range dst {
		dst[i] = 0
	}
	s := r.Size
	etaBin := 2 * etaMax / float64(s)
	phiBin := 2 * math.Pi / float64(s)
	sigEta := r.Sigma / etaBin
	sigPhi := r.Sigma / phiBin
	reach := int(math.Ceil(3 * math.Max(sigEta, sigPhi)))
	ecal := dst[0 : s*s]
	hcal := dst[s*s : 2*s*s]
	trk := dst[2*s*s : 3*s*s]
	for _, j := range e.Jets {
		cx := (j.Eta + etaMax) / etaBin
		cy := (j.Phi + math.Pi) / phiBin
		em := j.Pt * j.EMFrac
		had := j.Pt * (1 - j.EMFrac)
		x0 := int(cx)
		y0 := int(cy)
		for dx := -reach; dx <= reach; dx++ {
			x := x0 + dx
			if x < 0 || x >= s {
				continue // η has hard edges
			}
			for dy := -reach; dy <= reach; dy++ {
				y := ((y0+dy)%s + s) % s // φ wraps around the cylinder
				dex := (float64(x) + 0.5 - cx) / sigEta
				dey := (float64(y0+dy) + 0.5 - cy) / sigPhi
				g := math.Exp(-0.5 * (dex*dex + dey*dey))
				if g < 1e-4 {
					continue
				}
				idx := x*s + y
				ecal[idx] += float32(em * g)
				hcal[idx] += float32(had * g)
				if math.Abs(j.Eta) < trackEta {
					trk[idx] += float32(float64(j.NTracks) * g)
				}
			}
		}
	}
	// Calorimeter noise then log compression.
	for i := range ecal {
		if r.Noise > 0 {
			ecal[i] += float32(math.Abs(rng.Norm()) * r.Noise)
			hcal[i] += float32(math.Abs(rng.Norm()) * r.Noise)
		}
		ecal[i] = logCompress(ecal[i])
		hcal[i] = logCompress(hcal[i])
		trk[i] = logCompress(trk[i])
	}
}

func logCompress(v float32) float32 {
	return float32(math.Log1p(float64(v)) * 0.5)
}

// Dataset is an in-memory labelled image set.
type Dataset struct {
	Images *tensor.Tensor // [N, 3, S, S]
	Labels []int
	Events []Event // kept for baseline-cut evaluation on the same sample
}

// GenerateDataset draws n preselected events, renders them, and returns the
// packaged dataset.
func GenerateDataset(cfg GenConfig, r *Renderer, n int, signalFrac float64, rng *tensor.RNG) *Dataset {
	events, labels := cfg.GenerateEvents(n, signalFrac, rng)
	images := tensor.New(n, Channels, r.Size, r.Size)
	per := r.SampleFloats()
	for i := range events {
		r.Render(&events[i], rng, images.Data[i*per:(i+1)*per])
	}
	return &Dataset{Images: images, Labels: labels, Events: events}
}

// Batch gathers the indexed samples into x ([len(idx),3,S,S]) and labels.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	s := d.Images.Shape
	x := tensor.New(len(idx), s[1], s[2], s[3])
	labels := make([]int, len(idx))
	d.BatchInto(x, labels, idx)
	return x, labels
}

// SaveShards persists the dataset's images to numShards shard files under
// dir and returns their paths — the on-disk input layout a shard-backed
// TrainingProblem (and its prefetch pipeline) reads from. Shards store the
// exact float bits, so file-backed training is bitwise-equal to in-memory.
func (d *Dataset) SaveShards(dir string, numShards int) ([]string, error) {
	s := d.Images.Shape
	per := s[1] * s[2] * s[3]
	return data.WriteShards(dir, numShards, s[0], per, 0, d.Images.Data, nil)
}

// BatchInto is Batch writing into caller-owned staging — the
// allocation-free form planned training replicas reuse every iteration.
// x must hold len(idx) samples and labels must have length len(idx).
func (d *Dataset) BatchInto(x *tensor.Tensor, labels []int, idx []int) {
	s := d.Images.Shape
	per := s[1] * s[2] * s[3]
	if x.Len() != len(idx)*per || len(labels) != len(idx) {
		panic("hep: BatchInto staging size mismatch")
	}
	for bi, i := range idx {
		copy(x.Data[bi*per:(bi+1)*per], d.Images.Data[i*per:(i+1)*per])
		labels[bi] = d.Labels[i]
	}
}
