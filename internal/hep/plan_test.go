package hep

import (
	"testing"

	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

func planTestProblem(t *testing.T, events int) *TrainingProblem {
	t.Helper()
	rng := tensor.NewRNG(71)
	cfg := ModelConfig{Name: "plan-test", ImageSize: 16, Filters: 8, ConvUnits: 3, Classes: 2}
	ds := GenerateDataset(DefaultGenConfig(), NewRenderer(16), events, 0.5, rng)
	return NewTrainingProblem(ds, cfg, 5)
}

// TestReplicaPlanMatchesLegacyPath pins the acceptance criterion on the HEP
// side: the planned ComputeGradients must produce bitwise-identical loss
// and parameter gradients to the unplanned Forward/Backward sequence.
func TestReplicaPlanMatchesLegacyPath(t *testing.T) {
	p := planTestProblem(t, 12)
	rep := p.NewReplica().(*replica)

	legacyNet := BuildNet(p.Model, tensor.NewRNG(p.InitSeed))
	idx := []int{0, 3, 7, 11, 4, 2}
	x, labels := p.DS.Batch(idx)
	logits := legacyNet.Forward(x, true)
	wantLoss, grad := nn.SoftmaxCrossEntropy(logits, labels)
	legacyNet.Backward(grad)

	rep.ZeroGrad()
	gotLoss := rep.ComputeGradients(idx)
	if gotLoss != wantLoss {
		t.Fatalf("planned loss %v, legacy loss %v", gotLoss, wantLoss)
	}
	lp, rp := legacyNet.Params(), rep.net.Params()
	for i := range lp {
		for j := range lp[i].Grad.Data {
			if rp[i].Grad.Data[j] != lp[i].Grad.Data[j] {
				t.Fatalf("param %s grad diverges at %d: %v vs %v",
					lp[i].Name, j, rp[i].Grad.Data[j], lp[i].Grad.Data[j])
			}
		}
	}
}

// TestReplicaTrainingIterationZeroAllocs is the hybrid-training side of the
// allocation regression gate: after warmup, one training iteration's
// gradient computation (batch staging, planned forward, loss, planned
// backward, gradient zeroing) must not allocate. Kernel parallelism is
// pinned to 1 — ParallelFor goroutine spawns are scheduler state, not
// steady-state memory churn.
func TestReplicaTrainingIterationZeroAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	p := planTestProblem(t, 16)
	rep := p.NewReplica()
	idx := []int{1, 5, 9, 13}
	iter := func() {
		rep.ZeroGrad()
		rep.ComputeGradients(idx)
	}
	iter() // warm: compiles the plan, sizes the staging
	if allocs := testing.AllocsPerRun(20, iter); allocs != 0 {
		t.Fatalf("warmed training iteration allocates %v objects/op, want 0", allocs)
	}
}
