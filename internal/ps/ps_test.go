package ps

import (
	"math"
	"sync"
	"testing"

	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func layerParams(vals ...float32) []*nn.Param {
	w := tensor.FromSlice(append([]float32(nil), vals...), len(vals))
	return []*nn.Param{{Name: "w", W: w, Grad: tensor.New(len(vals))}}
}

func TestServerCopiesInitialParams(t *testing.T) {
	tmpl := layerParams(1, 2)
	s := NewServer(0, tmpl, opt.NewSGD(0.1, 0))
	tmpl[0].W.Data[0] = 99 // mutating the template must not affect the master
	w := s.Weights()
	if w[0][0] != 1 || w[0][1] != 2 {
		t.Fatalf("master weights %v", w)
	}
}

func TestUpdateAppliesSolver(t *testing.T) {
	s := NewServer(0, layerParams(1), opt.NewSGD(0.5, 0))
	resp := s.Update(0, [][]float32{{2}})
	// w = 1 − 0.5·2 = 0.
	if resp.Weights[0][0] != 0 {
		t.Fatalf("weights after update = %v", resp.Weights)
	}
	if resp.Clock != 1 {
		t.Fatalf("clock = %d", resp.Clock)
	}
}

func TestStalenessSingleGroupIsZero(t *testing.T) {
	s := NewServer(0, layerParams(0), opt.NewSGD(0.1, 0))
	s.Fetch(0)
	for i := 0; i < 5; i++ {
		resp := s.Update(0, [][]float32{{1}})
		if resp.Staleness != 0 {
			t.Fatalf("single group must never be stale, got %d", resp.Staleness)
		}
	}
}

func TestStalenessAlternatingGroups(t *testing.T) {
	// Two groups alternating perfectly: after warmup each sees exactly
	// one intervening update → staleness 1 (= G−1).
	s := NewServer(0, layerParams(0), opt.NewSGD(0.1, 0))
	s.Fetch(0)
	s.Fetch(1)
	s.Update(0, [][]float32{{1}}) // group 1 hasn't read since → its next update is stale
	for i := 0; i < 6; i++ {
		g := i % 2
		resp := s.Update(1-g, [][]float32{{1}})
		if resp.Staleness != 1 {
			t.Fatalf("alternating groups: staleness %d, want 1", resp.Staleness)
		}
	}
	hist := s.StalenessHistogram()
	if hist[1] != 6 {
		t.Fatalf("histogram %v", hist)
	}
}

func TestUpdatesSerializeUnderConcurrency(t *testing.T) {
	// Many concurrent updates with SGD lr=1 and grad −1 each add exactly
	// +1: the final weight equals the update count iff updates serialize.
	s := NewServer(0, layerParams(0), opt.NewSGD(1, 0))
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s.Update(g%4, [][]float32{{-1}})
		}(i)
	}
	wg.Wait()
	if w := s.Weights()[0][0]; w != n {
		t.Fatalf("lost updates: w = %v, want %d", w, n)
	}
	if s.Clock() != n {
		t.Fatalf("clock = %d", s.Clock())
	}
}

func TestResponseWeightsAreCopies(t *testing.T) {
	s := NewServer(0, layerParams(5), opt.NewSGD(0.1, 0))
	resp := s.Fetch(0)
	resp.Weights[0][0] = -777
	if s.Weights()[0][0] != 5 {
		t.Fatal("response must not alias master storage")
	}
}

func TestUpdateValidation(t *testing.T) {
	s := NewServer(0, layerParams(1, 2), opt.NewSGD(0.1, 0))
	mustPanic := func(f func()) {
		defer func() { _ = recover() }()
		f()
		t.Fatal("expected panic")
	}
	mustPanic(func() { s.Update(0, [][]float32{{1}, {2}}) }) // wrong blob count
	mustPanic(func() { s.Update(0, [][]float32{{1}}) })      // wrong blob size
}

func buildTinyNet(seed uint64) *nn.Network {
	rng := tensor.NewRNG(seed)
	n := nn.NewNetwork("t", 1, 4, 4)
	n.Add(
		nn.NewConv2D("conv", 1, 2, 3, 1, 1, rng),
		nn.NewReLU("relu"),
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("fc", 2, 2, rng),
	)
	return n
}

func TestFleetOneServerPerTrainableLayer(t *testing.T) {
	net := buildTinyNet(1)
	f := NewFleet(net.TrainableLayers(), opt.NewSGD(0.1, 0))
	if f.Size() != 2 {
		t.Fatalf("fleet size = %d, want 2", f.Size())
	}
}

func TestFleetUpdateAllAndStaleness(t *testing.T) {
	net := buildTinyNet(2)
	f := NewFleet(net.TrainableLayers(), opt.NewSGD(0.1, 0))
	f.FetchAll(0)
	// Build zero gradients shaped like the layers.
	grads := make([][][]float32, f.Size())
	for i, l := range net.TrainableLayers() {
		for _, p := range l.Params() {
			grads[i] = append(grads[i], make([]float32, p.NumEl()))
		}
	}
	resps := f.UpdateAll(0, grads)
	if len(resps) != f.Size() {
		t.Fatal("response count")
	}
	for _, r := range resps {
		if r.Staleness != 0 {
			t.Fatalf("zero-gradient single group staleness %d", r.Staleness)
		}
	}
	if f.MeanStaleness() != 0 {
		t.Fatalf("mean staleness %v", f.MeanStaleness())
	}
}

func TestFleetMeanStalenessTracksGroups(t *testing.T) {
	// G groups in strict rotation converge to staleness G−1 — the
	// asynchrony level the hybrid design trades against hardware
	// efficiency (§II-B2a).
	net := buildTinyNet(3)
	f := NewFleet(net.TrainableLayers(), opt.NewSGD(0.01, 0))
	const groups = 4
	grads := make([][][]float32, f.Size())
	for i, l := range net.TrainableLayers() {
		for _, p := range l.Params() {
			grads[i] = append(grads[i], make([]float32, p.NumEl()))
		}
	}
	for g := 0; g < groups; g++ {
		f.FetchAll(g)
	}
	const rounds = 10
	for r := 0; r < rounds; r++ {
		for g := 0; g < groups; g++ {
			f.UpdateAll(g, grads)
		}
	}
	mean := f.MeanStaleness()
	// Early updates are less stale; the tail is exactly G−1.
	if mean < 2 || mean > float64(groups-1)+1e-9 {
		t.Fatalf("mean staleness %v, want near %d", mean, groups-1)
	}
	// The final rotation must be exactly G−1 stale.
	hist := f.Servers[0].StalenessHistogram()
	if hist[groups-1] == 0 {
		t.Fatalf("no updates at staleness %d: %v", groups-1, hist)
	}
}

func TestFleetRequiresParameterisedLayers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFleet([]nn.Layer{nn.NewReLU("relu")}, opt.NewSGD(0.1, 0))
}

func TestAdamStateLivesOnServer(t *testing.T) {
	// A +1 gradient followed by a −1 gradient: with persistent Adam
	// moment state the second step is heavily damped (the first moment
	// still mostly points the other way); a stateless implementation
	// would take a full-size lr step. This proves solver state is
	// server-side, as the sharded PS design requires.
	s := NewServer(0, layerParams(0), opt.NewAdam(0.1))
	r1 := s.Update(0, [][]float32{{1}})
	w1 := float64(r1.Weights[0][0])
	if math.Abs(math.Abs(w1)-0.1) > 1e-3 {
		t.Fatalf("first Adam step %v, want ~lr", w1)
	}
	r2 := s.Update(0, [][]float32{{-1}})
	step2 := math.Abs(float64(r2.Weights[0][0]) - w1)
	if step2 > 0.05 {
		t.Fatalf("second step %v not damped — state not persisted server-side", step2)
	}
}
