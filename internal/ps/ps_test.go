package ps

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"deep15pf/internal/comm"
	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func layerParams(vals ...float32) []*nn.Param {
	w := tensor.FromSlice(append([]float32(nil), vals...), len(vals))
	return []*nn.Param{{Name: "w", W: w, Grad: tensor.New(len(vals))}}
}

func TestServerCopiesInitialParams(t *testing.T) {
	tmpl := layerParams(1, 2)
	s := NewServer(0, tmpl, opt.NewSGD(0.1, 0))
	tmpl[0].W.Data[0] = 99 // mutating the template must not affect the master
	w := s.Weights()
	if w[0][0] != 1 || w[0][1] != 2 {
		t.Fatalf("master weights %v", w)
	}
}

func TestUpdateAppliesSolver(t *testing.T) {
	s := NewServer(0, layerParams(1), opt.NewSGD(0.5, 0))
	resp := s.Update(0, [][]float32{{2}})
	// w = 1 − 0.5·2 = 0.
	if resp.Weights[0][0] != 0 {
		t.Fatalf("weights after update = %v", resp.Weights)
	}
	if resp.Clock != 1 {
		t.Fatalf("clock = %d", resp.Clock)
	}
}

func TestStalenessSingleGroupIsZero(t *testing.T) {
	s := NewServer(0, layerParams(0), opt.NewSGD(0.1, 0))
	s.Fetch(0)
	for i := 0; i < 5; i++ {
		resp := s.Update(0, [][]float32{{1}})
		if resp.Staleness != 0 {
			t.Fatalf("single group must never be stale, got %d", resp.Staleness)
		}
	}
}

func TestStalenessAlternatingGroups(t *testing.T) {
	// Two groups alternating perfectly: after warmup each sees exactly
	// one intervening update → staleness 1 (= G−1).
	s := NewServer(0, layerParams(0), opt.NewSGD(0.1, 0))
	s.Fetch(0)
	s.Fetch(1)
	s.Update(0, [][]float32{{1}}) // group 1 hasn't read since → its next update is stale
	for i := 0; i < 6; i++ {
		g := i % 2
		resp := s.Update(1-g, [][]float32{{1}})
		if resp.Staleness != 1 {
			t.Fatalf("alternating groups: staleness %d, want 1", resp.Staleness)
		}
	}
	hist := s.StalenessHistogram()
	if hist[1] != 6 {
		t.Fatalf("histogram %v", hist)
	}
}

func TestUpdatesSerializeUnderConcurrency(t *testing.T) {
	// Many concurrent updates with SGD lr=1 and grad −1 each add exactly
	// +1: the final weight equals the update count iff updates serialize.
	s := NewServer(0, layerParams(0), opt.NewSGD(1, 0))
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s.Update(g%4, [][]float32{{-1}})
		}(i)
	}
	wg.Wait()
	if w := s.Weights()[0][0]; w != n {
		t.Fatalf("lost updates: w = %v, want %d", w, n)
	}
	if s.Clock() != n {
		t.Fatalf("clock = %d", s.Clock())
	}
}

func TestResponseWeightsAreCopies(t *testing.T) {
	s := NewServer(0, layerParams(5), opt.NewSGD(0.1, 0))
	resp := s.Fetch(0)
	resp.Weights[0][0] = -777
	if s.Weights()[0][0] != 5 {
		t.Fatal("response must not alias master storage")
	}
}

func TestUpdateValidation(t *testing.T) {
	s := NewServer(0, layerParams(1, 2), opt.NewSGD(0.1, 0))
	mustPanic := func(f func()) {
		defer func() { _ = recover() }()
		f()
		t.Fatal("expected panic")
	}
	mustPanic(func() { s.Update(0, [][]float32{{1}, {2}}) }) // wrong blob count
	mustPanic(func() { s.Update(0, [][]float32{{1}}) })      // wrong blob size
}

func buildTinyNet(seed uint64) *nn.Network {
	rng := tensor.NewRNG(seed)
	n := nn.NewNetwork("t", 1, 4, 4)
	n.Add(
		nn.NewConv2D("conv", 1, 2, 3, 1, 1, rng),
		nn.NewReLU("relu"),
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("fc", 2, 2, rng),
	)
	return n
}

func TestFleetOneServerPerTrainableLayer(t *testing.T) {
	net := buildTinyNet(1)
	f := NewFleet(net.TrainableLayers(), opt.NewSGD(0.1, 0))
	if f.Size() != 2 {
		t.Fatalf("fleet size = %d, want 2", f.Size())
	}
}

func TestFleetUpdateAllAndStaleness(t *testing.T) {
	net := buildTinyNet(2)
	f := NewFleet(net.TrainableLayers(), opt.NewSGD(0.1, 0))
	f.FetchAll(0)
	// Build zero gradients shaped like the layers.
	grads := make([][][]float32, f.Size())
	for i, l := range net.TrainableLayers() {
		for _, p := range l.Params() {
			grads[i] = append(grads[i], make([]float32, p.NumEl()))
		}
	}
	resps := f.UpdateAll(0, grads)
	if len(resps) != f.Size() {
		t.Fatal("response count")
	}
	for _, r := range resps {
		if r.Staleness != 0 {
			t.Fatalf("zero-gradient single group staleness %d", r.Staleness)
		}
	}
	if f.MeanStaleness() != 0 {
		t.Fatalf("mean staleness %v", f.MeanStaleness())
	}
}

func TestFleetMeanStalenessTracksGroups(t *testing.T) {
	// G groups in strict rotation converge to staleness G−1 — the
	// asynchrony level the hybrid design trades against hardware
	// efficiency (§II-B2a).
	net := buildTinyNet(3)
	f := NewFleet(net.TrainableLayers(), opt.NewSGD(0.01, 0))
	const groups = 4
	grads := make([][][]float32, f.Size())
	for i, l := range net.TrainableLayers() {
		for _, p := range l.Params() {
			grads[i] = append(grads[i], make([]float32, p.NumEl()))
		}
	}
	for g := 0; g < groups; g++ {
		f.FetchAll(g)
	}
	const rounds = 10
	for r := 0; r < rounds; r++ {
		for g := 0; g < groups; g++ {
			f.UpdateAll(g, grads)
		}
	}
	mean := f.MeanStaleness()
	// Early updates are less stale; the tail is exactly G−1.
	if mean < 2 || mean > float64(groups-1)+1e-9 {
		t.Fatalf("mean staleness %v, want near %d", mean, groups-1)
	}
	// The final rotation must be exactly G−1 stale.
	hist := f.Servers[0].StalenessHistogram()
	if hist[groups-1] == 0 {
		t.Fatalf("no updates at staleness %d: %v", groups-1, hist)
	}
}

func TestFleetRequiresParameterisedLayers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFleet([]nn.Layer{nn.NewReLU("relu")}, opt.NewSGD(0.1, 0))
}

func TestAdamStateLivesOnServer(t *testing.T) {
	// A +1 gradient followed by a −1 gradient: with persistent Adam
	// moment state the second step is heavily damped (the first moment
	// still mostly points the other way); a stateless implementation
	// would take a full-size lr step. This proves solver state is
	// server-side, as the sharded PS design requires.
	s := NewServer(0, layerParams(0), opt.NewAdam(0.1))
	r1 := s.Update(0, [][]float32{{1}})
	w1 := float64(r1.Weights[0][0])
	if math.Abs(math.Abs(w1)-0.1) > 1e-3 {
		t.Fatalf("first Adam step %v, want ~lr", w1)
	}
	r2 := s.Update(0, [][]float32{{-1}})
	step2 := math.Abs(float64(r2.Weights[0][0]) - w1)
	if step2 > 0.05 {
		t.Fatalf("second step %v not damped — state not persisted server-side", step2)
	}
}

// TestFirstPushNotInStalenessHistogram is the regression test for the
// first-push accounting fix: a push from a group that never read the server
// has no read→write window, so it must land in the FirstPushes tally — not
// in whatever low histogram bucket the zero-value read clock implies.
func TestFirstPushNotInStalenessHistogram(t *testing.T) {
	s := NewServer(0, layerParams(0), opt.NewSGD(0.1, 0))
	// Group 0 reads, then applies three updates.
	s.Fetch(0)
	for i := 0; i < 3; i++ {
		s.Update(0, [][]float32{{1}})
	}
	// Group 1 pushes cold: previously this polluted bucket 3 (clock −
	// zero-value read clock); bucket 0 in the fresh-server case.
	resp := s.Update(1, [][]float32{{1}})
	if resp.Staleness != 3 {
		t.Fatalf("cold push staleness %d, want 3 (informative)", resp.Staleness)
	}
	hist := s.StalenessHistogram()
	var total int64
	for _, c := range hist {
		total += c
	}
	if total != 3 {
		t.Fatalf("histogram holds %d entries, want only group 0's 3 reads: %v", total, hist)
	}
	if s.FirstPushes() != 1 {
		t.Fatalf("first pushes = %d, want 1", s.FirstPushes())
	}
	// Once warm, group 1's next push is histogrammed normally (staleness 0:
	// its write doubled as its read).
	s.Update(1, [][]float32{{1}})
	if got := s.StalenessHistogram()[0]; got != 4 {
		t.Fatalf("warm push not histogrammed: %v", s.StalenessHistogram())
	}
	// A fresh-server cold push must not create a bucket-0 entry either.
	s2 := NewServer(0, layerParams(0), opt.NewSGD(0.1, 0))
	s2.Update(7, [][]float32{{1}})
	if len(s2.StalenessHistogram()) != 0 {
		t.Fatalf("fresh-server cold push entered histogram: %v", s2.StalenessHistogram())
	}
	if s2.FirstPushes() != 1 {
		t.Fatal("fresh-server cold push not tallied")
	}
}

func randParams(seed uint64, sizes ...int) []*nn.Param {
	rng := tensor.NewRNG(seed)
	var out []*nn.Param
	for i, n := range sizes {
		w := tensor.New(n)
		rng.FillNorm(w, 0, 1)
		out = append(out, &nn.Param{Name: fmt.Sprintf("p%d", i), W: w, Grad: tensor.New(n)})
	}
	return out
}

// TestShardedUpdateBitwiseMatchesUnsharded: flat-range sharding only changes
// who applies the elementwise solver math, never the math itself.
func TestShardedUpdateBitwiseMatchesUnsharded(t *testing.T) {
	sizes := []int{3 * comm.ChunkElems, 700, 5} // split + straggler params
	for _, solver := range []opt.Solver{opt.NewSGD(0.05, 0.9), opt.NewAdam(1e-3)} {
		plain := NewServer(0, randParams(42, sizes...), solver)
		sharded := NewServerSharded(0, randParams(42, sizes...), solver, comm.ChunkElems)
		if plain.NumShards() != 1 {
			t.Fatal("default server must be single-shard")
		}
		if sharded.NumShards() < 3 {
			t.Fatalf("expected ≥3 shards, got %d", sharded.NumShards())
		}
		rng := tensor.NewRNG(7)
		grads := make([][]float32, len(sizes))
		for i, n := range sizes {
			grads[i] = make([]float32, n)
		}
		for step := 0; step < 4; step++ {
			for i := range grads {
				for j := range grads[i] {
					grads[i][j] = float32(rng.Norm())
				}
			}
			a := plain.Update(0, grads)
			b := sharded.Update(0, grads)
			for i := range a.Weights {
				for j := range a.Weights[i] {
					if a.Weights[i][j] != b.Weights[i][j] {
						t.Fatalf("%s step %d: sharded weight diverges at param %d elem %d",
							solver.Name(), step, i, j)
					}
				}
			}
		}
	}
}

// TestPushWiresFp32MatchesUpdate: the streamed path through the identity
// codec must be bit-for-bit the legacy Update, with the weights landing in
// the caller's buffers.
func TestPushWiresFp32MatchesUpdate(t *testing.T) {
	sizes := []int{513, 17}
	legacy := NewServer(0, randParams(9, sizes...), opt.NewAdam(1e-2))
	streamed := NewServerSharded(0, randParams(9, sizes...), opt.NewAdam(1e-2), 256)
	codec, _ := comm.NewCodec("fp32", 0)
	wires := []*comm.Wire{{}, {}}
	weightsOut := [][]float32{make([]float32, sizes[0]), make([]float32, sizes[1])}
	rng := tensor.NewRNG(3)
	grads := [][]float32{make([]float32, sizes[0]), make([]float32, sizes[1])}
	legacy.Fetch(0)
	streamed.Fetch(0)
	for step := 0; step < 3; step++ {
		for i := range grads {
			for j := range grads[i] {
				grads[i][j] = float32(rng.Norm())
			}
			codec.Encode(wires[i], grads[i])
		}
		a := legacy.Update(0, grads)
		res := streamed.PushWires(0, codec, wires, weightsOut)
		if res.Clock != a.Clock || res.Staleness != a.Staleness || res.FirstPush {
			t.Fatalf("push metadata %+v vs legacy %+v", res, a)
		}
		for i := range weightsOut {
			for j := range weightsOut[i] {
				if weightsOut[i][j] != a.Weights[i][j] {
					t.Fatalf("step %d: streamed weight diverges at param %d elem %d", step, i, j)
				}
			}
		}
	}
}

// TestPushWiresInt8ShardedMatchesWholeDecode: a sharded server decoding its
// ranges piecewise must reconstruct exactly what a whole-blob decode gives.
func TestPushWiresInt8ShardedMatchesWholeDecode(t *testing.T) {
	sizes := []int{2*comm.ChunkElems + 100}
	whole := NewServer(0, randParams(21, sizes...), opt.NewSGD(0.1, 0))
	sharded := NewServerSharded(0, randParams(21, sizes...), opt.NewSGD(0.1, 0), comm.ChunkElems)
	codec, _ := comm.NewCodec("int8", 5)
	src := make([]float32, sizes[0])
	rng := tensor.NewRNG(6)
	for i := range src {
		src[i] = float32(rng.Norm())
	}
	w := &comm.Wire{}
	codec.Encode(w, src)
	a := whole.PushWires(0, codec, []*comm.Wire{w}, nil)
	b := sharded.PushWires(0, codec, []*comm.Wire{w}, nil)
	if a.Clock != b.Clock {
		t.Fatal("clock mismatch")
	}
	wa, wb := whole.Weights(), sharded.Weights()
	for j := range wa[0] {
		if wa[0][j] != wb[0][j] {
			t.Fatalf("sharded int8 decode diverges at %d", j)
		}
	}
}

// TestWireStatsAccounting: grad bytes follow the codec's encoded size;
// weight bytes only accrue when the model is returned.
func TestWireStatsAccounting(t *testing.T) {
	n := comm.ChunkElems + 10
	f := NewFleet([]nn.Layer{nn.NewDense("fc", n/8, 8, tensor.NewRNG(1))}, opt.NewSGD(0.1, 0))
	elems := 0
	for _, p := range f.Servers[0].params {
		elems += p.W.Len()
	}
	codec, _ := comm.NewCodec("int8", 1)
	wires := make([]*comm.Wire, len(f.Servers[0].params))
	for i, p := range f.Servers[0].params {
		wires[i] = &comm.Wire{}
		codec.Encode(wires[i], p.Grad.Data)
	}
	var encoded int64
	for _, w := range wires {
		encoded += w.Bytes()
	}
	f.PushWires(0, 0, codec, wires, nil)
	st := f.WireStats()
	if st.GradBytes != encoded || st.WeightBytes != 0 || st.Pushes != 1 {
		t.Fatalf("wire stats %+v, want grad=%d weight=0 pushes=1", st, encoded)
	}
	if ratio := float64(4*elems) / float64(encoded); ratio < 3 {
		t.Fatalf("int8 push reduction %.2fx < 3x", ratio)
	}
}

// TestPushWiresSteadyStateDoesNotAllocate: the streamed exchange must be
// allocation-free once wires and weight buffers exist — including on a
// genuinely sharded server, whose per-shard solver goroutines run through
// prebuilt closures.
func TestPushWiresSteadyStateDoesNotAllocate(t *testing.T) {
	for _, shardElems := range []int{0, comm.ChunkElems} {
		n0, n1 := 3*comm.ChunkElems, 40
		s := NewServerSharded(0, randParams(13, n0, n1), opt.NewSGD(0.01, 0.9), shardElems)
		if shardElems > 0 && s.NumShards() < 3 {
			t.Fatalf("gate must exercise sharding: %d shards", s.NumShards())
		}
		codec, _ := comm.NewCodec("int8", 2)
		wires := []*comm.Wire{{}, {}}
		weightsOut := [][]float32{make([]float32, n0), make([]float32, n1)}
		grads := [][]float32{make([]float32, n0), make([]float32, n1)}
		rng := tensor.NewRNG(4)
		for i := range grads {
			for j := range grads[i] {
				grads[i][j] = float32(rng.Norm())
			}
		}
		s.Fetch(0)
		// Warm solver state, wire buffers and the runtime's goroutine pool.
		for k := 0; k < 3; k++ {
			for i := range grads {
				codec.Encode(wires[i], grads[i])
			}
			s.PushWires(0, codec, wires, weightsOut)
		}
		if n := testing.AllocsPerRun(20, func() {
			for i := range grads {
				codec.Encode(wires[i], grads[i])
			}
			s.PushWires(0, codec, wires, weightsOut)
		}); n != 0 {
			t.Fatalf("shardElems=%d: streamed push steady state allocates %.1f per push", shardElems, n)
		}
	}
}

// snapStaging allocates snapshot staging matched to a server's geometry.
func snapStaging(sizes []int, shards int) ([][]float32, []opt.State) {
	weights := make([][]float32, len(sizes))
	for i, n := range sizes {
		weights[i] = make([]float32, n)
	}
	return weights, make([]opt.State, shards)
}

// TestServerSnapshotRestoreIsBitExact is the resume contract at the PS
// level: run K updates, snapshot, restore into a FRESH server (same
// template, same shard split), continue both — identical weights bit for
// bit, sharded or not.
func TestServerSnapshotRestoreIsBitExact(t *testing.T) {
	sizes := []int{3*comm.ChunkElems + 11, 64}
	for _, shardElems := range []int{0, comm.ChunkElems} {
		for _, solver := range []opt.Solver{opt.NewSGD(0.05, 0.9), opt.NewAdam(1e-3)} {
			orig := NewServerSharded(0, randParams(42, sizes...), solver, shardElems)
			grads := make([][]float32, len(sizes))
			for i, n := range sizes {
				grads[i] = make([]float32, n)
			}
			rng := tensor.NewRNG(7)
			draw := func() {
				for i := range grads {
					for j := range grads[i] {
						grads[i][j] = float32(rng.Norm())
					}
				}
			}
			for k := 0; k < 4; k++ {
				draw()
				orig.Update(0, grads)
			}
			weights, states := snapStaging(sizes, orig.NumShards())
			orig.SnapshotInto(weights, states)

			fresh := NewServerSharded(0, randParams(43, sizes...), solver.Clone(), shardElems)
			if fresh.NumShards() != orig.NumShards() {
				t.Fatal("shard split not deterministic")
			}
			if err := fresh.RestoreSnapshot(weights, states); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 4; k++ {
				draw()
				a := orig.Update(0, grads)
				// Replay the same draws on the restored server.
				b := fresh.Update(0, grads)
				for i := range a.Weights {
					for j := range a.Weights[i] {
						if a.Weights[i][j] != b.Weights[i][j] {
							t.Fatalf("%s shardElems=%d step %d: restored server diverged at param %d elem %d",
								solver.Name(), shardElems, k, i, j)
						}
					}
				}
			}
		}
	}
}

// TestServerSnapshotRestoreValidation: wrong geometry must error (restore)
// or panic (snapshot staging bug), never silently misload.
func TestServerSnapshotRestoreValidation(t *testing.T) {
	s := NewServer(0, randParams(1, 8, 4), opt.NewAdam(1e-3))
	weights, states := snapStaging([]int{8, 4}, s.NumShards())
	s.SnapshotInto(weights, states)

	bad := NewServer(0, randParams(1, 8, 5), opt.NewAdam(1e-3))
	if err := bad.RestoreSnapshot(weights, states); err == nil {
		t.Fatal("size mismatch must error")
	}
	if err := s.RestoreSnapshot(weights[:1], states); err == nil {
		t.Fatal("blob count mismatch must error")
	}
	wrongAlgo := NewServer(0, randParams(1, 8, 4), opt.NewSGD(0.1, 0.9))
	if err := wrongAlgo.RestoreSnapshot(weights, states); err == nil {
		t.Fatal("solver algorithm mismatch must error")
	}
}

// TestFleetSnapshotRestore: the fleet-level walk restores every layer.
func TestFleetSnapshotRestore(t *testing.T) {
	net := buildTinyNet(5)
	fleet := NewShardedFleet(net.TrainableLayers(), opt.NewAdam(1e-3), 0)
	grads := [][][]float32{}
	for _, s := range fleet.Servers {
		var g [][]float32
		for _, p := range s.params {
			g = append(g, make([]float32, p.W.Len()))
		}
		grads = append(grads, g)
	}
	rng := tensor.NewRNG(6)
	for k := 0; k < 3; k++ {
		for i := range grads {
			for j := range grads[i] {
				for e := range grads[i][j] {
					grads[i][j][e] = float32(rng.Norm())
				}
			}
		}
		fleet.UpdateAll(0, grads)
	}
	weights := make([][][]float32, fleet.Size())
	states := make([][]opt.State, fleet.Size())
	for i, s := range fleet.Servers {
		var sizes []int
		for _, p := range s.params {
			sizes = append(sizes, p.W.Len())
		}
		weights[i], states[i] = snapStaging(sizes, s.NumShards())
	}
	fleet.SnapshotInto(weights, states)

	net2 := buildTinyNet(9) // different init: restore must overwrite it
	fresh := NewShardedFleet(net2.TrainableLayers(), opt.NewAdam(1e-3), 0)
	if err := fresh.RestoreSnapshot(weights, states); err != nil {
		t.Fatal(err)
	}
	for i, s := range fleet.Servers {
		a, b := s.Weights(), fresh.Servers[i].Weights()
		for j := range a {
			for e := range a[j] {
				if a[j][e] != b[j][e] {
					t.Fatalf("layer %d param %d elem %d not restored", i, j, e)
				}
			}
		}
	}
}
