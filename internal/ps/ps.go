// Package ps implements the paper's parameter servers (§II-B2, §III-E):
// each *trainable layer* gets a dedicated server holding the master copy of
// that layer's parameters and the solver state for them. Compute groups
// send layer gradients asynchronously; the server applies updates strictly
// in arrival order and returns the fresh model, tracking per-update
// staleness (the number of updates other groups applied between this
// group's read and its write — the quantity that degrades statistical
// efficiency as group count grows).
//
// Two refinements beyond the original Fig 4 arrangement:
//
//   - Large layers shard by flat-parameter range: a server splits its
//     concatenated parameter vector into chunk-aligned pieces, each with
//     its own solver-state shard, applied concurrently on push. Elementwise
//     solvers (SGD momentum, ADAM) make the sharded update bitwise
//     identical to the unsharded one.
//   - The streamed push path (PushWires) accepts codec-encoded gradients —
//     the overlapped trainer starts pushing layer L+1 while layer L's
//     backward is still executing — and writes the fresh weights into
//     caller-owned buffers, so a steady-state push allocates nothing.
package ps

import (
	"fmt"
	"sync"

	"deep15pf/internal/comm"
	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// Response carries the post-update model state back to a group root.
type Response struct {
	Weights   [][]float32 // fresh copy, one slice per layer parameter
	Clock     int64       // server update counter after this update
	Staleness int         // updates applied since this group's last read
}

// PushResult is the streamed path's response metadata; the weights travel
// through the caller's buffers instead.
type PushResult struct {
	Clock     int64
	Staleness int
	FirstPush bool // the group had never read this server before pushing
}

// WireStats accounts the bytes a real interconnect would move for the PS
// traffic: encoded gradient payloads inbound, fp32 model payloads outbound.
type WireStats struct {
	GradBytes   int64
	WeightBytes int64
	Pushes      int64
}

// piece is one chunk-aligned slice of one master parameter blob, the unit a
// shard owns. w and g alias the master storage.
type piece struct {
	param int // index into the server's params
	off   int // element offset within that parameter
	w, g  []float32
}

// shard is one flat-parameter range of a layer with its own solver state.
// Shards are disjoint, so their solver steps run concurrently.
type shard struct {
	pieces []piece
	params []*nn.Param // synthetic per-piece params the solver steps over
	solver opt.Solver
	elems  int
}

// Server owns one layer's master parameters.
type Server struct {
	LayerID int

	mu         sync.Mutex
	params     []*nn.Param // master storage (decoupled from any replica)
	totalElems int
	shards     []shard
	stepFns    []func() // prebuilt per-shard step closures (no per-push allocs)
	stepWG     sync.WaitGroup
	clock      int64
	staleness  map[int]int64 // histogram: staleness value → count
	perGroup   map[int]int64 // groupID → clock at last read
	seen       map[int]bool  // groups with at least one read (first-push accounting)
	firstPush  int64
	wire       WireStats
}

// NewServer builds a single-shard server for one layer, copying the initial
// parameter values from template and cloning fresh solver state.
func NewServer(layerID int, template []*nn.Param, solver opt.Solver) *Server {
	return NewServerSharded(layerID, template, solver, 0)
}

// NewServerSharded builds a server whose parameter vector is split into
// shards of roughly maxShardElems elements (0 or ≥ the layer size gives a
// single shard; the target is rounded up to the comm.ChunkElems grid, so
// shards may hold up to that rounded size). Shard cuts fall on
// comm.ChunkElems boundaries within each parameter blob, so a shard decodes
// its slice of an encoded push without touching its neighbours' chunk
// scales.
func NewServerSharded(layerID int, template []*nn.Param, solver opt.Solver, maxShardElems int) *Server {
	master := make([]*nn.Param, len(template))
	total := 0
	for i, p := range template {
		master[i] = &nn.Param{
			Name: p.Name,
			W:    p.W.Clone(),
			Grad: p.Grad.Clone(),
		}
		master[i].Grad.Zero()
		total += p.W.Len()
	}
	s := &Server{
		LayerID:    layerID,
		params:     master,
		totalElems: total,
		staleness:  make(map[int]int64),
		perGroup:   make(map[int]int64),
		seen:       make(map[int]bool),
	}
	if maxShardElems <= 0 || maxShardElems >= total {
		maxShardElems = total
	}
	// Round the target up to the chunk grid so cuts align with the wire.
	if rem := maxShardElems % comm.ChunkElems; rem != 0 && maxShardElems < total {
		maxShardElems += comm.ChunkElems - rem
	}
	cur := shard{solver: solver.Clone()}
	flush := func() {
		if len(cur.pieces) > 0 {
			s.shards = append(s.shards, cur)
			cur = shard{solver: solver.Clone()}
		}
	}
	for pi, p := range master {
		n := p.W.Len()
		for off := 0; off < n; {
			take := n - off
			if room := maxShardElems - cur.elems; take > room {
				take = room
				// Keep cuts on the chunk grid of this parameter.
				if end := off + take; end%comm.ChunkElems != 0 && end < n {
					end -= end % comm.ChunkElems
					take = end - off
				}
			}
			if take <= 0 {
				flush()
				continue
			}
			pc := piece{param: pi, off: off, w: p.W.Data[off : off+take], g: p.Grad.Data[off : off+take]}
			cur.pieces = append(cur.pieces, pc)
			cur.params = append(cur.params, &nn.Param{
				Name: fmt.Sprintf("%s[%d:%d]", p.Name, off, off+take),
				W:    tensor.FromSlice(pc.w, take),
				Grad: tensor.FromSlice(pc.g, take),
			})
			cur.elems += take
			off += take
			if cur.elems >= maxShardElems {
				flush()
			}
		}
	}
	flush()
	// Prebuild the shard step closures so a multi-shard push spawns its
	// goroutines without allocating closures or WaitGroups per push.
	s.stepFns = make([]func(), len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		s.stepFns[i] = func() {
			defer s.stepWG.Done()
			sh.solver.Step(sh.params)
		}
	}
	return s
}

// NumShards returns the number of flat-parameter shards.
func (s *Server) NumShards() int { return len(s.shards) }

// Fetch returns the current model without updating (a group's initial
// read). It records the read clock for staleness accounting.
func (s *Server) Fetch(groupID int) Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.perGroup[groupID] = s.clock
	s.seen[groupID] = true
	// The initial model pull crosses the same wire as a push's return.
	s.wire.WeightBytes += 4 * int64(s.totalElems)
	return Response{Weights: s.copyWeightsLocked(), Clock: s.clock}
}

// accountLocked advances the clock and staleness books for one update from
// groupID and returns the staleness metadata. A group's first-ever push
// with no prior read has no read-to-write window to measure: it is counted
// in the FirstPushes tally, not the staleness histogram, so the histogram
// only ever aggregates genuine read→write intervals (previously such pushes
// landed in whatever low bucket the zero-value read clock implied).
func (s *Server) accountLocked(groupID int) (stale int, first bool) {
	stale = int(s.clock - s.perGroup[groupID])
	first = !s.seen[groupID]
	if first {
		s.firstPush++
		s.seen[groupID] = true
	} else {
		s.staleness[stale]++
	}
	s.clock++
	s.perGroup[groupID] = s.clock
	return stale, first
}

// stepShardsLocked applies the solver to every shard over the freshly
// written master gradients. Multi-shard servers step concurrently — the
// "multiple server goroutines by flat-parameter range" arrangement — which
// is safe because shards are disjoint and bitwise-neutral because the
// solvers are elementwise.
func (s *Server) stepShardsLocked() {
	if len(s.shards) == 1 {
		s.shards[0].solver.Step(s.shards[0].params)
		return
	}
	s.stepWG.Add(len(s.stepFns))
	for _, fn := range s.stepFns {
		go fn()
	}
	s.stepWG.Wait()
}

// Update applies the group's layer gradient to the master model ("the PS
// applies the updates to the model in the order they are received, and
// sends back the updated model", §II-B2). grads must be positioned like
// the template params.
func (s *Server) Update(groupID int, grads [][]float32) Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(grads) != len(s.params) {
		panic(fmt.Sprintf("ps: layer %d got %d grad blobs, want %d", s.LayerID, len(grads), len(s.params)))
	}
	for i, g := range grads {
		if len(g) != s.params[i].Grad.Len() {
			panic(fmt.Sprintf("ps: layer %d param %d size %d, want %d", s.LayerID, i, len(g), s.params[i].Grad.Len()))
		}
		copy(s.params[i].Grad.Data, g)
	}
	stale, _ := s.accountLocked(groupID)
	s.stepShardsLocked()
	s.wire.GradBytes += 4 * int64(s.totalElems)
	s.wire.WeightBytes += 4 * int64(s.totalElems)
	s.wire.Pushes++
	return Response{
		Weights:   s.copyWeightsLocked(),
		Clock:     s.clock,
		Staleness: stale,
	}
}

// PushWires is the streamed, allocation-free update path: wires carries one
// codec-encoded blob per layer parameter; the decoded gradients drive the
// shard solvers, and the fresh weights are written into weightsOut (one
// caller-owned slice per parameter, full length; nil skips the model
// return). The codec is the caller's — the server only decodes through it —
// so fp32 pushes reproduce Update bit for bit.
func (s *Server) PushWires(groupID int, codec comm.Codec, wires []*comm.Wire, weightsOut [][]float32) PushResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(wires) != len(s.params) {
		panic(fmt.Sprintf("ps: layer %d got %d wires, want %d", s.LayerID, len(wires), len(s.params)))
	}
	var pushed int64
	for i, w := range wires {
		if w.N != s.params[i].Grad.Len() {
			panic(fmt.Sprintf("ps: layer %d wire %d carries %d elems, want %d", s.LayerID, i, w.N, s.params[i].Grad.Len()))
		}
		pushed += w.Bytes()
	}
	// Decode shard by shard so a multi-shard server only ever touches its
	// own flat range of the wire.
	if len(s.shards) == 1 {
		for i, w := range wires {
			codec.Decode(w, s.params[i].Grad.Data)
		}
	} else {
		for si := range s.shards {
			for _, pc := range s.shards[si].pieces {
				codec.DecodeRange(wires[pc.param], pc.off, pc.g)
			}
		}
	}
	stale, first := s.accountLocked(groupID)
	s.stepShardsLocked()
	s.wire.GradBytes += pushed
	s.wire.Pushes++
	if weightsOut != nil {
		if len(weightsOut) != len(s.params) {
			panic(fmt.Sprintf("ps: layer %d got %d weight buffers, want %d", s.LayerID, len(weightsOut), len(s.params)))
		}
		for i, p := range s.params {
			if len(weightsOut[i]) != p.W.Len() {
				panic(fmt.Sprintf("ps: layer %d weight buffer %d size %d, want %d", s.LayerID, i, len(weightsOut[i]), p.W.Len()))
			}
			copy(weightsOut[i], p.W.Data)
		}
		s.wire.WeightBytes += 4 * int64(s.totalElems)
	}
	return PushResult{Clock: s.clock, Staleness: stale, FirstPush: first}
}

// Clock returns the number of updates applied.
func (s *Server) Clock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// FirstPushes returns how many updates arrived from groups that had never
// read this server — pushes with no staleness window, tallied here instead
// of polluting the histogram.
func (s *Server) FirstPushes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstPush
}

// Weights returns a copy of the current master parameters.
func (s *Server) Weights() [][]float32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.copyWeightsLocked()
}

func (s *Server) copyWeightsLocked() [][]float32 {
	out := make([][]float32, len(s.params))
	for i, p := range s.params {
		out[i] = append([]float32(nil), p.W.Data...)
	}
	return out
}

// SnapshotInto copies the master parameters into weightsOut (one
// caller-owned, full-length slice per parameter) and captures each shard's
// solver state into states (len NumShards) — the checkpointer's staging
// read. The server lock is held for the duration, so the snapshot is a
// consistent point between updates for this layer; warm staging touches no
// allocator (the caller recycles weightsOut and states across snapshots).
// A shard whose solver keeps no exportable state captures as an empty
// State carrying only the algorithm name.
func (s *Server) SnapshotInto(weightsOut [][]float32, states []opt.State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(weightsOut) != len(s.params) {
		panic(fmt.Sprintf("ps: layer %d snapshot got %d weight buffers, want %d", s.LayerID, len(weightsOut), len(s.params)))
	}
	for i, p := range s.params {
		if len(weightsOut[i]) != p.W.Len() {
			panic(fmt.Sprintf("ps: layer %d snapshot buffer %d size %d, want %d", s.LayerID, i, len(weightsOut[i]), p.W.Len()))
		}
		copy(weightsOut[i], p.W.Data)
	}
	if len(states) != len(s.shards) {
		panic(fmt.Sprintf("ps: layer %d snapshot got %d state buffers, want %d shards", s.LayerID, len(states), len(s.shards)))
	}
	for i := range s.shards {
		sh := &s.shards[i]
		if !opt.CaptureState(sh.solver, &states[i], sh.params) {
			states[i] = opt.State{Algo: sh.solver.Name()}
		}
	}
}

// RestoreSnapshot installs checkpointed master weights and per-shard solver
// state — the inverse of SnapshotInto, for resuming a training run. The
// fleet must have been built with the same template and shard split (the
// split is deterministic in both). A state with no slots restores nothing
// for its shard (the weights-only fallback for stateless solvers).
func (s *Server) RestoreSnapshot(weights [][]float32, states []opt.State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(weights) != len(s.params) {
		return fmt.Errorf("ps: layer %d restore got %d weight blobs, want %d", s.LayerID, len(weights), len(s.params))
	}
	for i, p := range s.params {
		if len(weights[i]) != p.W.Len() {
			return fmt.Errorf("ps: layer %d restore blob %d (%s) has %d elements, want %d",
				s.LayerID, i, p.Name, len(weights[i]), p.W.Len())
		}
	}
	if len(states) != len(s.shards) {
		return fmt.Errorf("ps: layer %d restore got %d solver states, want %d shards", s.LayerID, len(states), len(s.shards))
	}
	for i, p := range s.params {
		copy(p.W.Data, weights[i])
	}
	for i := range s.shards {
		sh := &s.shards[i]
		if len(states[i].Slots) == 0 {
			continue // stateless capture: weights-only resume for this shard
		}
		if err := opt.RestoreState(sh.solver, sh.params, &states[i]); err != nil {
			return fmt.Errorf("ps: layer %d shard %d: %w", s.LayerID, i, err)
		}
	}
	return nil
}

// StalenessHistogram returns a copy of the staleness counts.
func (s *Server) StalenessHistogram() map[int]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]int64, len(s.staleness))
	for k, v := range s.staleness {
		out[k] = v
	}
	return out
}

// Fleet is the full set of per-layer servers for one network — the paper's
// Fig 4 arrangement ("we assign a dedicated parameter server to each
// trainable layer of the network").
type Fleet struct {
	Servers []*Server
}

// NewFleet creates one single-shard server per trainable layer. layers must
// each own at least one parameter; solver is cloned per server so solver
// state is layer-local, exactly as in the sharded design.
func NewFleet(layers []nn.Layer, solver opt.Solver) *Fleet {
	return NewShardedFleet(layers, solver, 0)
}

// NewShardedFleet is NewFleet with large layers split into flat-range
// shards of at most maxShardElems elements each (0 = unsharded).
func NewShardedFleet(layers []nn.Layer, solver opt.Solver, maxShardElems int) *Fleet {
	f := &Fleet{}
	for i, l := range layers {
		params := l.Params()
		if len(params) == 0 {
			panic(fmt.Sprintf("ps: layer %d (%s) has no parameters", i, l.Name()))
		}
		f.Servers = append(f.Servers, NewServerSharded(i, params, solver, maxShardElems))
	}
	return f
}

// Size returns the number of parameter servers (6 for the paper's HEP
// network, 14 for climate).
func (f *Fleet) Size() int { return len(f.Servers) }

// FetchAll reads every layer's model for a group (initial synchronisation).
func (f *Fleet) FetchAll(groupID int) []Response {
	out := make([]Response, len(f.Servers))
	for i, s := range f.Servers {
		out[i] = s.Fetch(groupID)
	}
	return out
}

// UpdateAll pushes one gradient set (grads[layer][param]) and returns the
// per-layer responses. Layers are exchanged concurrently — each with its
// own dedicated server — mirroring the paper's parallel per-layer PS
// traffic.
func (f *Fleet) UpdateAll(groupID int, grads [][][]float32) []Response {
	if len(grads) != len(f.Servers) {
		panic(fmt.Sprintf("ps: %d gradient sets for %d servers", len(grads), len(f.Servers)))
	}
	out := make([]Response, len(f.Servers))
	var wg sync.WaitGroup
	for i := range f.Servers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = f.Servers[i].Update(groupID, grads[i])
		}(i)
	}
	wg.Wait()
	return out
}

// PushWires forwards one layer's encoded push to its server — the streamed
// entry point the overlapped trainer drives from its per-layer pushers.
func (f *Fleet) PushWires(groupID, layer int, codec comm.Codec, wires []*comm.Wire, weightsOut [][]float32) PushResult {
	return f.Servers[layer].PushWires(groupID, codec, wires, weightsOut)
}

// ShardCounts returns the number of flat-range shards per server — the
// geometry a checkpointer sizes its per-layer solver-state staging to.
func (f *Fleet) ShardCounts() []int {
	out := make([]int, len(f.Servers))
	for i, s := range f.Servers {
		out[i] = s.NumShards()
	}
	return out
}

// SnapshotInto stages every server's weights and solver state
// (weights[layer][param], states[layer][shard]). Servers are locked one at
// a time, so concurrent groups keep exchanging other layers while the
// snapshot walks the fleet; on asynchronous runs the snapshot is therefore
// per-layer consistent, not global — exactly the consistency an
// asynchronous trainer has anyway. Deterministic (single-group) runs
// snapshot at iteration boundaries where no push is in flight, which is
// what makes their resume bit-exact.
func (f *Fleet) SnapshotInto(weights [][][]float32, states [][]opt.State) {
	if len(weights) != len(f.Servers) || len(states) != len(f.Servers) {
		panic(fmt.Sprintf("ps: fleet snapshot got %d/%d buffers for %d servers", len(weights), len(states), len(f.Servers)))
	}
	for i, s := range f.Servers {
		s.SnapshotInto(weights[i], states[i])
	}
}

// RestoreSnapshot installs a staged fleet snapshot (the inverse of
// SnapshotInto) before any group starts training.
func (f *Fleet) RestoreSnapshot(weights [][][]float32, states [][]opt.State) error {
	if len(weights) != len(f.Servers) || len(states) != len(f.Servers) {
		return fmt.Errorf("ps: fleet restore got %d/%d buffers for %d servers", len(weights), len(states), len(f.Servers))
	}
	for i, s := range f.Servers {
		if err := s.RestoreSnapshot(weights[i], states[i]); err != nil {
			return err
		}
	}
	return nil
}

// WireStats sums the per-server wire accounting.
func (f *Fleet) WireStats() WireStats {
	var total WireStats
	for _, s := range f.Servers {
		s.mu.Lock()
		total.GradBytes += s.wire.GradBytes
		total.WeightBytes += s.wire.WeightBytes
		total.Pushes += s.wire.Pushes
		s.mu.Unlock()
	}
	return total
}

// MeanStaleness aggregates the staleness histograms across servers.
func (f *Fleet) MeanStaleness() float64 {
	var sum, n float64
	for _, s := range f.Servers {
		for stale, count := range s.StalenessHistogram() {
			sum += float64(stale) * float64(count)
			n += float64(count)
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
