// Package ps implements the paper's parameter servers (§II-B2, §III-E):
// each *trainable layer* gets a dedicated server goroutine holding the
// master copy of that layer's parameters and the solver state for them.
// Compute groups send layer gradients asynchronously; the server applies
// updates strictly in arrival order and returns the fresh model, tracking
// per-update staleness (the number of updates other groups applied between
// this group's read and its write — the quantity that degrades statistical
// efficiency as group count grows).
package ps

import (
	"fmt"
	"sync"

	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
)

// Response carries the post-update model state back to a group root.
type Response struct {
	Weights   [][]float32 // fresh copy, one slice per layer parameter
	Clock     int64       // server update counter after this update
	Staleness int         // updates applied since this group's last read
}

// Server owns one layer's master parameters.
type Server struct {
	LayerID int

	mu        sync.Mutex
	params    []*nn.Param // master storage (decoupled from any replica)
	solver    opt.Solver
	clock     int64
	staleness map[int]int64 // histogram: staleness value → count
	perGroup  map[int]int64 // groupID → clock at last read
}

// NewServer builds a server for one layer, copying the initial parameter
// values from template and cloning fresh solver state.
func NewServer(layerID int, template []*nn.Param, solver opt.Solver) *Server {
	master := make([]*nn.Param, len(template))
	for i, p := range template {
		master[i] = &nn.Param{
			Name: p.Name,
			W:    p.W.Clone(),
			Grad: p.Grad.Clone(),
		}
		master[i].Grad.Zero()
	}
	return &Server{
		LayerID:   layerID,
		params:    master,
		solver:    solver.Clone(),
		staleness: make(map[int]int64),
		perGroup:  make(map[int]int64),
	}
}

// Fetch returns the current model without updating (a group's initial
// read). It records the read clock for staleness accounting.
func (s *Server) Fetch(groupID int) Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.perGroup[groupID] = s.clock
	return Response{Weights: s.copyWeightsLocked(), Clock: s.clock}
}

// Update applies the group's layer gradient to the master model ("the PS
// applies the updates to the model in the order they are received, and
// sends back the updated model", §II-B2). grads must be positioned like
// the template params.
func (s *Server) Update(groupID int, grads [][]float32) Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(grads) != len(s.params) {
		panic(fmt.Sprintf("ps: layer %d got %d grad blobs, want %d", s.LayerID, len(grads), len(s.params)))
	}
	stale := s.clock - s.perGroup[groupID]
	s.staleness[int(stale)]++
	for i, g := range grads {
		if len(g) != s.params[i].Grad.Len() {
			panic(fmt.Sprintf("ps: layer %d param %d size %d, want %d", s.LayerID, i, len(g), s.params[i].Grad.Len()))
		}
		copy(s.params[i].Grad.Data, g)
	}
	s.solver.Step(s.params)
	s.clock++
	s.perGroup[groupID] = s.clock
	return Response{
		Weights:   s.copyWeightsLocked(),
		Clock:     s.clock,
		Staleness: int(stale),
	}
}

// Clock returns the number of updates applied.
func (s *Server) Clock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// Weights returns a copy of the current master parameters.
func (s *Server) Weights() [][]float32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.copyWeightsLocked()
}

func (s *Server) copyWeightsLocked() [][]float32 {
	out := make([][]float32, len(s.params))
	for i, p := range s.params {
		out[i] = append([]float32(nil), p.W.Data...)
	}
	return out
}

// StalenessHistogram returns a copy of the staleness counts.
func (s *Server) StalenessHistogram() map[int]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]int64, len(s.staleness))
	for k, v := range s.staleness {
		out[k] = v
	}
	return out
}

// Fleet is the full set of per-layer servers for one network — the paper's
// Fig 4 arrangement ("we assign a dedicated parameter server to each
// trainable layer of the network").
type Fleet struct {
	Servers []*Server
}

// NewFleet creates one server per trainable layer. layers must each own at
// least one parameter; solver is cloned per server so solver state is
// layer-local, exactly as in the sharded design.
func NewFleet(layers []nn.Layer, solver opt.Solver) *Fleet {
	f := &Fleet{}
	for i, l := range layers {
		params := l.Params()
		if len(params) == 0 {
			panic(fmt.Sprintf("ps: layer %d (%s) has no parameters", i, l.Name()))
		}
		f.Servers = append(f.Servers, NewServer(i, params, solver))
	}
	return f
}

// Size returns the number of parameter servers (6 for the paper's HEP
// network, 14 for climate).
func (f *Fleet) Size() int { return len(f.Servers) }

// FetchAll reads every layer's model for a group (initial synchronisation).
func (f *Fleet) FetchAll(groupID int) []Response {
	out := make([]Response, len(f.Servers))
	for i, s := range f.Servers {
		out[i] = s.Fetch(groupID)
	}
	return out
}

// UpdateAll pushes one gradient set (grads[layer][param]) and returns the
// per-layer responses. Layers are exchanged concurrently — each with its
// own dedicated server — mirroring the paper's parallel per-layer PS
// traffic.
func (f *Fleet) UpdateAll(groupID int, grads [][][]float32) []Response {
	if len(grads) != len(f.Servers) {
		panic(fmt.Sprintf("ps: %d gradient sets for %d servers", len(grads), len(f.Servers)))
	}
	out := make([]Response, len(f.Servers))
	var wg sync.WaitGroup
	for i := range f.Servers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = f.Servers[i].Update(groupID, grads[i])
		}(i)
	}
	wg.Wait()
	return out
}

// MeanStaleness aggregates the staleness histograms across servers.
func (f *Fleet) MeanStaleness() float64 {
	var sum, n float64
	for _, s := range f.Servers {
		for stale, count := range s.StalenessHistogram() {
			sum += float64(stale) * float64(count)
			n += float64(count)
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
