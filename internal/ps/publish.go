package ps

import "deep15pf/internal/obs"

// Publish merges this wire account into a metrics registry under the
// "ps." prefix. Counts add, so publishing per-fleet accounts composes
// the same way WireStats addition does. A nil registry is a no-op.
func (s WireStats) Publish(r *obs.Registry) {
	r.Counter("ps.grad_bytes").Add(s.GradBytes)
	r.Counter("ps.weight_bytes").Add(s.WeightBytes)
	r.Counter("ps.pushes").Add(s.Pushes)
}
