package climate

import (
	"math"
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

func TestIoUKnownValues(t *testing.T) {
	a := Box{X: 0, Y: 0, W: 10, H: 10}
	if IoU(a, a) != 1 {
		t.Fatal("self IoU must be 1")
	}
	b := Box{X: 5, Y: 0, W: 10, H: 10} // half horizontal overlap
	want := 50.0 / 150.0
	if math.Abs(IoU(a, b)-want) > 1e-12 {
		t.Fatalf("IoU = %v, want %v", IoU(a, b), want)
	}
	c := Box{X: 20, Y: 20, W: 5, H: 5}
	if IoU(a, c) != 0 {
		t.Fatal("disjoint IoU must be 0")
	}
	if IoU(a, Box{X: 0, Y: 0, W: 0, H: 5}) != 0 {
		t.Fatal("degenerate IoU must be 0")
	}
}

// Properties: IoU is symmetric and bounded in [0,1].
func TestIoUProperties(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed) + 3)
		rb := func() Box {
			return Box{
				X: rng.Float64() * 50, Y: rng.Float64() * 50,
				W: rng.Float64() * 30, H: rng.Float64() * 30,
			}
		}
		a, b := rb(), rb()
		ab, ba := IoU(a, b), IoU(b, a)
		if math.Abs(ab-ba) > 1e-12 {
			return false
		}
		return ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNMSSuppressesDuplicates(t *testing.T) {
	dets := []Detection{
		{Box: Box{X: 0, Y: 0, W: 10, H: 10, Class: TropicalCyclone}, Confidence: 0.9},
		{Box: Box{X: 1, Y: 1, W: 10, H: 10, Class: TropicalCyclone}, Confidence: 0.8},
		{Box: Box{X: 40, Y: 40, W: 10, H: 10, Class: TropicalCyclone}, Confidence: 0.7},
	}
	kept := NMS(dets, 0.5)
	if len(kept) != 2 {
		t.Fatalf("NMS kept %d, want 2", len(kept))
	}
	if kept[0].Confidence != 0.9 {
		t.Fatal("NMS must keep the highest-confidence box")
	}
}

func TestNMSKeepsDifferentClasses(t *testing.T) {
	dets := []Detection{
		{Box: Box{X: 0, Y: 0, W: 10, H: 10, Class: TropicalCyclone}, Confidence: 0.9},
		{Box: Box{X: 0, Y: 0, W: 10, H: 10, Class: AtmosphericRiver}, Confidence: 0.8},
	}
	if kept := NMS(dets, 0.5); len(kept) != 2 {
		t.Fatalf("overlapping boxes of different classes must survive, got %d", len(kept))
	}
}

func TestMatchScoring(t *testing.T) {
	truth := []Box{
		{X: 0, Y: 0, W: 10, H: 10, Class: TropicalCyclone},
		{X: 50, Y: 50, W: 20, H: 20, Class: AtmosphericRiver},
	}
	dets := []Detection{
		{Box: Box{X: 1, Y: 1, W: 10, H: 10, Class: TropicalCyclone}, Confidence: 0.95}, // TP
		{Box: Box{X: 80, Y: 0, W: 10, H: 10, Class: TropicalCyclone}, Confidence: 0.9}, // FP
	}
	res := Match(dets, truth, 0.5)
	if res.TruePositives != 1 || res.FalsePositives != 1 || res.FalseNegatives != 1 {
		t.Fatalf("match = %+v", res)
	}
	if math.Abs(res.Precision()-0.5) > 1e-12 || math.Abs(res.Recall()-0.5) > 1e-12 {
		t.Fatalf("P=%v R=%v", res.Precision(), res.Recall())
	}
	if res.MeanIoU <= 0.5 {
		t.Fatalf("mean IoU = %v", res.MeanIoU)
	}
}

func TestMatchClassMismatchIsFP(t *testing.T) {
	truth := []Box{{X: 0, Y: 0, W: 10, H: 10, Class: TropicalCyclone}}
	dets := []Detection{{Box: Box{X: 0, Y: 0, W: 10, H: 10, Class: AtmosphericRiver}, Confidence: 0.9}}
	res := Match(dets, truth, 0.5)
	if res.TruePositives != 0 || res.FalsePositives != 1 || res.FalseNegatives != 1 {
		t.Fatalf("class mismatch: %+v", res)
	}
}

func TestMatchOneDetectionPerTruth(t *testing.T) {
	truth := []Box{{X: 0, Y: 0, W: 10, H: 10, Class: TropicalCyclone}}
	dets := []Detection{
		{Box: Box{X: 0, Y: 0, W: 10, H: 10, Class: TropicalCyclone}, Confidence: 0.9},
		{Box: Box{X: 1, Y: 0, W: 10, H: 10, Class: TropicalCyclone}, Confidence: 0.8},
	}
	res := Match(dets, truth, 0.5)
	if res.TruePositives != 1 || res.FalsePositives != 1 {
		t.Fatalf("double match: %+v", res)
	}
}

func TestMatchResultAdd(t *testing.T) {
	a := MatchResult{TruePositives: 1, FalsePositives: 2, FalseNegatives: 3, MeanIoU: 0.6}
	b := MatchResult{TruePositives: 3, FalsePositives: 0, FalseNegatives: 1, MeanIoU: 0.8}
	c := a.Add(b)
	if c.TruePositives != 4 || c.FalsePositives != 2 || c.FalseNegatives != 4 {
		t.Fatalf("Add = %+v", c)
	}
	if math.Abs(c.MeanIoU-0.75) > 1e-12 { // (0.6·1 + 0.8·3)/4
		t.Fatalf("MeanIoU = %v", c.MeanIoU)
	}
}

func TestPrecisionRecallEdgeCases(t *testing.T) {
	var m MatchResult
	if m.Precision() != 0 || m.Recall() != 0 {
		t.Fatal("empty result must not NaN")
	}
}

func TestEventClassString(t *testing.T) {
	if TropicalCyclone.String() != "TC" || AtmosphericRiver.String() != "AR" || ExtratropicalCyclone.String() != "ETC" {
		t.Fatal("class names wrong")
	}
	if EventClass(9).String() == "" {
		t.Fatal("unknown class must render")
	}
}
