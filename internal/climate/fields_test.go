package climate

import (
	"math"
	"testing"

	"deep15pf/internal/tensor"
)

func TestGenerateFieldShape(t *testing.T) {
	cfg := DefaultGenConfig(64)
	rng := tensor.NewRNG(1)
	s := cfg.Generate(rng)
	if s.Field.Shape[0] != NumChannels || s.Field.Shape[1] != 64 || s.Field.Shape[2] != 64 {
		t.Fatalf("field shape %v", s.Field.Shape)
	}
	if NumChannels != 16 {
		t.Fatalf("paper specifies 16 channels, have %d", NumChannels)
	}
}

func TestBoxesInsideImage(t *testing.T) {
	cfg := DefaultGenConfig(96)
	rng := tensor.NewRNG(2)
	for i := 0; i < 30; i++ {
		s := cfg.Generate(rng)
		for _, b := range s.Boxes {
			if b.W <= 0 || b.H <= 0 {
				t.Fatalf("degenerate box %+v", b)
			}
			cx, cy := b.X+b.W/2, b.Y+b.H/2
			if cx < 0 || cx >= 96 || cy < 0 || cy >= 96 {
				t.Fatalf("box center outside image: %+v", b)
			}
		}
	}
}

func TestTCSignature(t *testing.T) {
	// A tropical cyclone must produce a local PSL minimum and TMQ maximum
	// near its center, and rotating winds around it.
	cfg := DefaultGenConfig(128)
	cfg.MeanTC = 0
	cfg.MeanETC = 0
	cfg.ARProb = 0
	cfg.NoiseStd = 0
	rng := tensor.NewRNG(3)
	s := cfg.Generate(rng)
	box := cfg.addCyclone(s.Field, rng, 64, 64, true)
	if box.Class != TropicalCyclone {
		t.Fatal("wrong class")
	}
	size := 128
	get := func(ch, x, y int) float64 { return float64(s.Field.Data[ch*size*size+y*size+x]) }
	if get(ChPSL, 64, 64) >= get(ChPSL, 10, 10) {
		t.Fatalf("PSL at center %v should be below far field %v", get(ChPSL, 64, 64), get(ChPSL, 10, 10))
	}
	if get(ChTMQ, 64, 64) <= get(ChTMQ, 10, 10) {
		t.Fatal("TMQ should peak at the center")
	}
	// Cyclonic rotation: tangential wind on the +x side should be +v.
	if get(ChV850, 72, 64) <= 0 {
		t.Fatalf("V850 east of center = %v, want positive (counter-clockwise)", get(ChV850, 72, 64))
	}
	if get(ChV850, 56, 64) >= 0 {
		t.Fatal("V850 west of center should be negative")
	}
}

func TestARIsElongated(t *testing.T) {
	cfg := DefaultGenConfig(128)
	cfg.NoiseStd = 0
	rng := tensor.NewRNG(4)
	field := tensor.New(NumChannels, 128, 128)
	box := cfg.addRiver(field, rng, 20, 20)
	if box.Class != AtmosphericRiver {
		t.Fatal("wrong class")
	}
	longSide := math.Max(box.W, box.H)
	shortSide := math.Min(box.W, box.H)
	if longSide < 1.2*shortSide {
		t.Fatalf("AR box %vx%v not elongated", box.W, box.H)
	}
}

func TestETCLargerThanTC(t *testing.T) {
	cfg := DefaultGenConfig(256)
	rng := tensor.NewRNG(5)
	var tcArea, etcArea float64
	for i := 0; i < 20; i++ {
		f1 := tensor.New(NumChannels, 256, 256)
		tc := cfg.addCyclone(f1, rng, 128, 128, true)
		etc := cfg.addCyclone(f1, rng, 128, 128, false)
		tcArea += tc.W * tc.H
		etcArea += etc.W * etc.H
	}
	if etcArea <= tcArea {
		t.Fatal("extratropical cyclones should be larger on average")
	}
}

func TestBackgroundLatitudeGradient(t *testing.T) {
	cfg := DefaultGenConfig(64)
	cfg.MeanTC, cfg.MeanETC, cfg.ARProb = 0, 0, 0
	cfg.NoiseStd = 0
	rng := tensor.NewRNG(6)
	s := cfg.Generate(rng)
	size := 64
	ts := s.Field.Data[ChTS*size*size : (ChTS+1)*size*size]
	var equator, pole float64
	for x := 0; x < size; x++ {
		equator += float64(ts[(size/2)*size+x])
		pole += float64(ts[0*size+x])
	}
	if equator <= pole {
		t.Fatal("surface temperature should peak at the equator")
	}
}

func TestGenerateDatasetAndBatch(t *testing.T) {
	cfg := DefaultGenConfig(32)
	rng := tensor.NewRNG(7)
	ds := GenerateDataset(cfg, 5, rng)
	if len(ds.Samples) != 5 {
		t.Fatal("dataset size")
	}
	x, boxes := ds.Batch([]int{3, 0})
	if x.Shape[0] != 2 || x.Shape[1] != NumChannels {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if len(boxes) != 2 {
		t.Fatal("boxes not gathered")
	}
	per := NumChannels * 32 * 32
	for i := 0; i < per; i++ {
		if x.Data[i] != ds.Samples[3].Field.Data[i] {
			t.Fatal("batch gathered wrong sample")
		}
	}
}

func TestEventSeparation(t *testing.T) {
	cfg := DefaultGenConfig(128)
	cfg.MeanTC = 3
	rng := tensor.NewRNG(8)
	minSep := cfg.MinSepFrac * 128
	for trial := 0; trial < 20; trial++ {
		s := cfg.Generate(rng)
		// Cyclone boxes are centred on their placement anchor, so the
		// placement separation constraint is directly observable on them.
		// (AR boxes are centred on the filament midpoint, not the anchor.)
		var cyclones []Box
		for _, b := range s.Boxes {
			if b.Class != AtmosphericRiver {
				cyclones = append(cyclones, b)
			}
		}
		for i := 0; i < len(cyclones); i++ {
			for j := i + 1; j < len(cyclones); j++ {
				a, b := cyclones[i], cyclones[j]
				d := math.Hypot((a.X+a.W/2)-(b.X+b.W/2), (a.Y+a.H/2)-(b.Y+b.H/2))
				if d < minSep*0.99 {
					t.Fatalf("events too close: %v < %v", d, minSep)
				}
			}
		}
	}
}
