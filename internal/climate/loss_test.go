package climate

import (
	"math"
	"testing"

	"deep15pf/internal/tensor"
)

func tinyClimNet(rng *tensor.RNG) *Net {
	return BuildNet(ModelConfig{
		Name: "tiny", Size: 16,
		EncChannels: []int{6, 8},
		EncStrides:  []int{2, 2},
		DecChannels: []int{8, NumChannels},
		WithDecoder: true,
	}, rng)
}

func TestLossPartsAllActive(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := tinyClimNet(rng)
	x := tensor.New(1, NumChannels, 16, 16)
	rng.FillNorm(x, 0, 1)
	boxes := [][]Box{{{X: 2, Y: 2, W: 6, H: 6, Class: TropicalCyclone}}}
	out := net.Forward(x, true)
	parts, grads := net.Loss(out, x, boxes, nil, DefaultLossWeights())
	if parts.Obj <= 0 || parts.NoObj <= 0 || parts.Class <= 0 || parts.Recon <= 0 {
		t.Fatalf("inactive loss terms: %+v", parts)
	}
	for _, g := range []*tensor.Tensor{grads.Conf, grads.Class, grads.BoxP, grads.Recon} {
		if g == nil || g.AbsMax() == 0 {
			t.Fatal("missing gradient")
		}
	}
}

func TestUnlabeledSamplesOnlyReconstruct(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := tinyClimNet(rng)
	x := tensor.New(2, NumChannels, 16, 16)
	rng.FillNorm(x, 0, 1)
	boxes := [][]Box{
		{{X: 2, Y: 2, W: 6, H: 6, Class: TropicalCyclone}},
		nil, // unlabeled
	}
	out := net.Forward(x, true)
	_, grads := net.Loss(out, x, boxes, []bool{false, false}, DefaultLossWeights())
	// No labeled samples: detection grads must be exactly zero.
	if grads.Conf.AbsMax() != 0 || grads.Class.AbsMax() != 0 || grads.BoxP.AbsMax() != 0 {
		t.Fatal("unlabeled batch must not produce detection gradients")
	}
	if grads.Recon == nil || grads.Recon.AbsMax() == 0 {
		t.Fatal("unlabeled batch must still reconstruct")
	}
}

func TestSemiSupervisedMixedBatch(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := tinyClimNet(rng)
	x := tensor.New(2, NumChannels, 16, 16)
	rng.FillNorm(x, 0, 1)
	boxes := [][]Box{
		{{X: 2, Y: 2, W: 6, H: 6, Class: TropicalCyclone}},
		nil,
	}
	out := net.Forward(x, true)
	_, grads := net.Loss(out, x, boxes, []bool{true, false}, DefaultLossWeights())
	g := net.GridSize
	cells := g * g
	// Sample 0 (labeled) must have conf gradients; sample 1 must not.
	var s0, s1 float32
	for i := 0; i < cells; i++ {
		if v := grads.Conf.Data[i]; v < 0 {
			s0 -= v
		} else {
			s0 += v
		}
		if v := grads.Conf.Data[cells+i]; v < 0 {
			s1 -= v
		} else {
			s1 += v
		}
	}
	if s0 == 0 {
		t.Fatal("labeled sample has no detection gradient")
	}
	if s1 != 0 {
		t.Fatal("unlabeled sample leaked detection gradient")
	}
}

func TestLossGradientsNumerically(t *testing.T) {
	// Validate the hand-rolled multi-term loss gradient end to end against
	// central differences through the full network.
	rng := tensor.NewRNG(4)
	net := tinyClimNet(rng)
	x := tensor.New(1, NumChannels, 16, 16)
	rng.FillNorm(x, 0, 0.5)
	boxes := [][]Box{{{X: 3, Y: 5, W: 7, H: 6, Class: ExtratropicalCyclone}}}
	w := DefaultLossWeights()

	lossAt := func() float64 {
		out := net.Forward(x, true)
		parts, _ := net.Loss(out, x, boxes, nil, w)
		return parts.Total()
	}
	net.ZeroGrad()
	out := net.Forward(x, true)
	_, grads := net.Loss(out, x, boxes, nil, w)
	net.Backward(out, grads.Conf, grads.Class, grads.BoxP, grads.Recon)

	const eps = 2e-3
	for _, p := range net.Params() {
		stride := p.W.Len()/12 + 1
		bad := 0
		probes := 0
		for i := 0; i < p.W.Len(); i += stride {
			old := p.W.Data[i]
			p.W.Data[i] = old + eps
			lp := lossAt()
			p.W.Data[i] = old - eps
			lm := lossAt()
			p.W.Data[i] = old
			num := (lp - lm) / (2 * eps)
			got := float64(p.Grad.Data[i])
			probes++
			if math.Abs(got-num) > 5e-2*math.Abs(num)+1e-3 {
				bad++
			}
		}
		// ReLU kinks allow a small disagreement rate.
		if float64(bad) > 0.2*float64(probes) {
			t.Fatalf("%s: %d/%d gradient probes disagree", p.Name, bad, probes)
		}
	}
}

func TestTrainingReducesDetectionLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	rng := tensor.NewRNG(5)
	net := tinyClimNet(rng)
	cfg := DefaultGenConfig(16)
	cfg.MeanTC = 1.5
	cfg.ARProb = 0
	cfg.MeanETC = 0
	ds := GenerateDataset(cfg, 16, rng)
	idx := make([]int, 16)
	for i := range idx {
		idx[i] = i
	}
	x, boxes := ds.Batch(idx)
	w := DefaultLossWeights()
	first := math.Inf(1)
	var last float64
	lr := float32(0.02)
	for it := 0; it < 40; it++ {
		net.ZeroGrad()
		parts := net.TrainStep(x, boxes, nil, w)
		if it == 0 {
			first = parts.Total()
		}
		last = parts.Total()
		for _, p := range net.Params() {
			for i := range p.W.Data {
				p.W.Data[i] -= lr * p.Grad.Data[i]
			}
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", first, last)
	}
}

func TestDetectEndToEnd(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := tinyClimNet(rng)
	x := tensor.New(1, NumChannels, 16, 16)
	dets := net.Detect(x, 0.8, 0.4)
	if len(dets) != 1 {
		t.Fatalf("per-sample detections missing: %d", len(dets))
	}
	// Untrained net with zero-ish logits: sigmoid(~0)≈0.5 < 0.8 mostly.
	for _, d := range dets[0] {
		if d.Confidence < 0.8 {
			t.Fatalf("threshold violated: %v", d.Confidence)
		}
	}
}

func TestRenderASCII(t *testing.T) {
	rng := tensor.NewRNG(7)
	cfg := DefaultGenConfig(64)
	s := cfg.Generate(rng)
	dets := []Detection{{Box: Box{X: 5, Y: 5, W: 20, H: 20, Class: TropicalCyclone}, Confidence: 0.9}}
	out := RenderASCII(s, dets, 48)
	if len(out) == 0 {
		t.Fatal("empty rendering")
	}
	for _, want := range []string{"TMQ", "*", "pred:"} {
		if !containsStr(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexStr(s, sub) >= 0)
}

func indexStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
