package climate

import (
	"fmt"

	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// TrainPlan is the compiled training schedule for the semi-supervised
// network at a fixed batch size: one training plan for the shared encoder,
// one single-layer plan per score head, one for the decoder, plus the
// feature-gradient accumulator, the head/reconstruction gradient tensors
// and the loss workspace — all allocated from one arena at build time.
// Step then performs a full forward/loss/backward iteration with zero
// steady-state allocation and bitwise-identical results to the unplanned
// Net.TrainStep.
//
// The branching topology (encoder fan-out to three heads and the decoder,
// gradients fanned back in) is exactly the structure nn.Plan's sequential
// schedule cannot express, so this type composes plans the way Net.Forward
// composes networks. Like its parts, a TrainPlan is single-goroutine.
type TrainPlan struct {
	net   *Net
	batch int
	arena *tensor.Arena

	enc, conf, class, box *nn.Plan
	dec                   *nn.Plan // nil without decoder

	dfeat *tensor.Tensor
	grads Grads
	sc    lossScratch
}

// NewTrainPlan compiles a training plan for batches of exactly batch
// samples. arena == nil creates a private arena; replicas with several
// batch sizes pass a shared one so plans recycle slabs.
func (n *Net) NewTrainPlan(batch int, arena *tensor.Arena) *TrainPlan {
	if batch < 1 {
		panic("climate: train plan batch must be positive")
	}
	if arena == nil {
		arena = tensor.NewArena()
	}
	tp := &TrainPlan{net: n, batch: batch, arena: arena}
	tp.enc = nn.Compile(n.Encoder, batch, true, arena)
	// Each head is a one-layer network over the shared feature grid; the
	// wrapper owns no parameters — it reuses the head conv itself, whose
	// plan state lives in the compiled plan, not the layer.
	headNet := func(name string, l nn.Layer) *nn.Network {
		return nn.NewNetwork(n.Cfg.Name+"-"+name+"-plan", n.featShape...).Add(l)
	}
	tp.conf = nn.Compile(headNet("conf", n.ConfHead), batch, true, arena)
	tp.class = nn.Compile(headNet("class", n.ClassHead), batch, true, arena)
	tp.box = nn.Compile(headNet("box", n.BoxHead), batch, true, arena)
	if n.Decoder != nil {
		tp.dec = nn.Compile(n.Decoder, batch, true, arena)
	}
	tp.dfeat = arena.GetTensor(append([]int{batch}, n.featShape...)...)
	g := n.GridSize
	tp.grads = Grads{
		Conf:  arena.GetTensor(batch, 1, g, g),
		Class: arena.GetTensor(batch, int(NumClasses), g, g),
		BoxP:  arena.GetTensor(batch, 4, g, g),
	}
	if n.Decoder != nil {
		tp.grads.Recon = arena.GetTensor(batch, NumChannels, n.Cfg.Size, n.Cfg.Size)
	}
	return tp
}

// Batch returns the plan's fixed batch size.
func (tp *TrainPlan) Batch() int { return tp.batch }

// Step runs one full forward/loss/backward iteration, mirroring
// Net.TrainStep operation for operation: encoder and decoder through their
// compiled plans, heads through theirs, the loss through the workspace
// form, and the backward fan-in in the same axpy order. Gradients
// accumulate into the network parameters; the caller applies a solver step
// and zeroes gradients.
func (tp *TrainPlan) Step(x *tensor.Tensor, boxes [][]Box, labeled []bool, w LossWeights) LossParts {
	if x.Shape[0] != tp.batch {
		panic(fmt.Sprintf("climate: train plan compiled for batch %d, got %d", tp.batch, x.Shape[0]))
	}
	feat := tp.enc.Forward(x)
	out := Output{
		Feat:  feat,
		Conf:  tp.conf.Forward(feat),
		Class: tp.class.Forward(feat),
		BoxP:  tp.box.Forward(feat),
	}
	if tp.dec != nil {
		out.Recon = tp.dec.Forward(feat)
	}
	parts := tp.net.lossInto(out, x, boxes, labeled, w, &tp.grads, &tp.sc)

	// Backward fan-in, in Net.Backward's order: heads, decoder, encoder.
	tp.dfeat.Zero()
	tensor.Axpy(1, tp.conf.Backward(tp.grads.Conf).Data, tp.dfeat.Data)
	tensor.Axpy(1, tp.class.Backward(tp.grads.Class).Data, tp.dfeat.Data)
	tensor.Axpy(1, tp.box.Backward(tp.grads.BoxP).Data, tp.dfeat.Data)
	if tp.dec != nil && out.Recon != nil && w.Recon > 0 {
		tensor.Axpy(1, tp.dec.Backward(tp.grads.Recon).Data, tp.dfeat.Data)
	}
	tp.enc.Backward(tp.dfeat)
	return parts
}

// Release returns every plan slab to the arena. The TrainPlan must not be
// used afterwards.
func (tp *TrainPlan) Release() {
	for _, p := range []*nn.Plan{tp.enc, tp.conf, tp.class, tp.box, tp.dec} {
		if p != nil {
			p.Release()
		}
	}
	tp.arena.PutTensor(tp.dfeat)
	tp.arena.PutTensor(tp.grads.Conf)
	tp.arena.PutTensor(tp.grads.Class)
	tp.arena.PutTensor(tp.grads.BoxP)
	if tp.grads.Recon != nil {
		tp.arena.PutTensor(tp.grads.Recon)
	}
}
