package climate

import (
	"fmt"

	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/tensor"
)

// TrainPlan is the compiled training schedule for the semi-supervised
// network at a fixed batch size: one training plan for the shared encoder,
// one single-layer plan per score head, one for the decoder, plus the
// feature-gradient accumulator, the head/reconstruction gradient tensors
// and the loss workspace — all allocated from one arena at build time.
// Step then performs a full forward/loss/backward iteration with zero
// steady-state allocation and bitwise-identical results to the unplanned
// Net.TrainStep.
//
// The branching topology (encoder fan-out to three heads and the decoder,
// gradients fanned back in) is exactly the structure nn.Plan's sequential
// schedule cannot express, so this type composes plans the way Net.Forward
// composes networks. Like its parts, a TrainPlan is single-goroutine.
type TrainPlan struct {
	net   *Net
	batch int
	arena *tensor.Arena

	enc, conf, class, box *nn.Plan
	dec                   *nn.Plan // nil without decoder

	dfeat *tensor.Tensor
	grads Grads
	sc    lossScratch

	// Per-layer completion plumbing for StepStream: the callbacks are built
	// once (they capture tp, not the per-call gradDone) so streaming adds no
	// per-iteration allocation. encN is the encoder's trainable-layer count;
	// global trainable indices are encoder 0..encN-1, heads encN..encN+2,
	// decoder encN+3.. — Net.TrainableLayers order.
	gradDone               func(layer int)
	encN, decN             int
	notifyEnc, notifyDec   func(t int)
	notifyConf             func(t int)
	notifyClass, notifyBox func(t int)

	// lane records Fwd (encoder through loss) and Bwd (gradient fan-in)
	// spans; nil = untraced. The split lives here because the branching
	// step is one opaque call from the replica's point of view.
	lane *obs.Lane
}

// SetTraceLane attaches a trace lane to the plan's step.
func (tp *TrainPlan) SetTraceLane(l *obs.Lane) { tp.lane = l }

// NewTrainPlan compiles a training plan for batches of exactly batch
// samples. arena == nil creates a private arena; replicas with several
// batch sizes pass a shared one so plans recycle slabs.
func (n *Net) NewTrainPlan(batch int, arena *tensor.Arena) *TrainPlan {
	if batch < 1 {
		panic("climate: train plan batch must be positive")
	}
	if arena == nil {
		arena = tensor.NewArena()
	}
	tp := &TrainPlan{net: n, batch: batch, arena: arena}
	tp.enc = nn.Compile(n.Encoder, batch, true, arena)
	// Each head is a one-layer network over the shared feature grid; the
	// wrapper owns no parameters — it reuses the head conv itself, whose
	// plan state lives in the compiled plan, not the layer.
	headNet := func(name string, l nn.Layer) *nn.Network {
		return nn.NewNetwork(n.Cfg.Name+"-"+name+"-plan", n.featShape...).Add(l)
	}
	tp.conf = nn.Compile(headNet("conf", n.ConfHead), batch, true, arena)
	tp.class = nn.Compile(headNet("class", n.ClassHead), batch, true, arena)
	tp.box = nn.Compile(headNet("box", n.BoxHead), batch, true, arena)
	if n.Decoder != nil {
		tp.dec = nn.Compile(n.Decoder, batch, true, arena)
	}
	tp.dfeat = arena.GetTensor(append([]int{batch}, n.featShape...)...)
	g := n.GridSize
	tp.grads = Grads{
		Conf:  arena.GetTensor(batch, 1, g, g),
		Class: arena.GetTensor(batch, int(NumClasses), g, g),
		BoxP:  arena.GetTensor(batch, 4, g, g),
	}
	if n.Decoder != nil {
		tp.grads.Recon = arena.GetTensor(batch, NumChannels, n.Cfg.Size, n.Cfg.Size)
	}
	tp.encN = len(n.Encoder.TrainableLayers())
	if n.Decoder != nil {
		tp.decN = len(n.Decoder.TrainableLayers())
	}
	notify := func(off int) func(int) {
		return func(t int) {
			if tp.gradDone != nil {
				tp.gradDone(off + t)
			}
		}
	}
	tp.notifyEnc = notify(0)
	tp.notifyConf = notify(tp.encN)
	tp.notifyClass = notify(tp.encN + 1)
	tp.notifyBox = notify(tp.encN + 2)
	tp.notifyDec = notify(tp.encN + 3)
	return tp
}

// Batch returns the plan's fixed batch size.
func (tp *TrainPlan) Batch() int { return tp.batch }

// Step runs one full forward/loss/backward iteration, mirroring
// Net.TrainStep operation for operation: encoder and decoder through their
// compiled plans, heads through theirs, the loss through the workspace
// form, and the backward fan-in in the same axpy order. Gradients
// accumulate into the network parameters; the caller applies a solver step
// and zeroes gradients.
func (tp *TrainPlan) Step(x *tensor.Tensor, boxes [][]Box, labeled []bool, w LossWeights) LossParts {
	return tp.StepStream(x, boxes, labeled, w, nil)
}

// StepStream is Step with per-layer gradient-completion notification
// (core.StreamReplica semantics): gradDone(t) fires as trainable layer t —
// Net.TrainableLayers order across the encoder, the three heads and the
// decoder — finishes its backward. The branching topology means the firing
// order is heads first, then decoder (reverse), then encoder (reverse); a
// decoder skipped this iteration (no reconstruction term) is notified
// immediately, its gradients being final by virtue of never accumulating.
func (tp *TrainPlan) StepStream(x *tensor.Tensor, boxes [][]Box, labeled []bool, w LossWeights, gradDone func(layer int)) LossParts {
	if x.Shape[0] != tp.batch {
		panic(fmt.Sprintf("climate: train plan compiled for batch %d, got %d", tp.batch, x.Shape[0]))
	}
	tp.gradDone = gradDone
	tp.lane.Begin(obs.PhaseFwd)
	feat := tp.enc.Forward(x)
	out := Output{
		Feat:  feat,
		Conf:  tp.conf.Forward(feat),
		Class: tp.class.Forward(feat),
		BoxP:  tp.box.Forward(feat),
	}
	if tp.dec != nil {
		out.Recon = tp.dec.Forward(feat)
	}
	parts := tp.net.lossInto(out, x, boxes, labeled, w, &tp.grads, &tp.sc)
	tp.lane.End(obs.PhaseFwd)

	// Backward fan-in, in Net.Backward's order: heads, decoder, encoder.
	tp.lane.Begin(obs.PhaseBwd)
	tp.dfeat.Zero()
	tensor.Axpy(1, tp.conf.BackwardStream(tp.grads.Conf, tp.notifyConf).Data, tp.dfeat.Data)
	tensor.Axpy(1, tp.class.BackwardStream(tp.grads.Class, tp.notifyClass).Data, tp.dfeat.Data)
	tensor.Axpy(1, tp.box.BackwardStream(tp.grads.BoxP, tp.notifyBox).Data, tp.dfeat.Data)
	if tp.dec != nil && out.Recon != nil && w.Recon > 0 {
		tensor.Axpy(1, tp.dec.BackwardStream(tp.grads.Recon, tp.notifyDec).Data, tp.dfeat.Data)
	} else if gradDone != nil {
		// No reconstruction term this iteration: the decoder's gradients
		// are final (zero) — notify in the order a real backward would.
		for t := tp.decN - 1; t >= 0; t-- {
			tp.notifyDec(t)
		}
	}
	tp.enc.BackwardStream(tp.dfeat, tp.notifyEnc)
	tp.lane.End(obs.PhaseBwd)
	tp.gradDone = nil
	return parts
}

// Release returns every plan slab to the arena. The TrainPlan must not be
// used afterwards.
func (tp *TrainPlan) Release() {
	for _, p := range []*nn.Plan{tp.enc, tp.conf, tp.class, tp.box, tp.dec} {
		if p != nil {
			p.Release()
		}
	}
	tp.arena.PutTensor(tp.dfeat)
	tp.arena.PutTensor(tp.grads.Conf)
	tp.arena.PutTensor(tp.grads.Class)
	tp.arena.PutTensor(tp.grads.BoxP)
	if tp.grads.Recon != nil {
		tp.arena.PutTensor(tp.grads.Recon)
	}
}
