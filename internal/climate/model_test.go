package climate

import (
	"math"
	"testing"

	"deep15pf/internal/tensor"
)

func TestPaperConfigMatchesTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size model allocation")
	}
	rng := tensor.NewRNG(1)
	net := BuildNet(PaperConfig(), rng)
	// Table II: 302.1 MiB of parameters; 9 convs + 5 deconvs = 14
	// trainable layers (the paper dedicates 14 parameter servers).
	mib := float64(net.ParamBytes()) / (1 << 20)
	if math.Abs(mib-302.1) > 5 {
		t.Fatalf("param size %.1f MiB, Table II says 302.1 MiB", mib)
	}
	if got := len(net.TrainableLayers()); got != 14 {
		t.Fatalf("trainable layers = %d, want 14", got)
	}
	if net.GridSize != 24 || net.CellSize != 32 {
		t.Fatalf("grid %dx%d cell %d", net.GridSize, net.GridSize, net.CellSize)
	}
}

func TestSmallNetForwardShapes(t *testing.T) {
	rng := tensor.NewRNG(2)
	cfg := SmallConfig()
	net := BuildNet(cfg, rng)
	x := tensor.New(2, NumChannels, cfg.Size, cfg.Size)
	rng.FillNorm(x, 0, 1)
	out := net.Forward(x, false)
	g := net.GridSize
	if out.Conf.Shape[0] != 2 || out.Conf.Shape[1] != 1 || out.Conf.Shape[2] != g {
		t.Fatalf("conf shape %v", out.Conf.Shape)
	}
	if out.Class.Shape[1] != int(NumClasses) {
		t.Fatalf("class shape %v", out.Class.Shape)
	}
	if out.BoxP.Shape[1] != 4 {
		t.Fatalf("box shape %v", out.BoxP.Shape)
	}
	if out.Recon.Shape[1] != NumChannels || out.Recon.Shape[2] != cfg.Size {
		t.Fatalf("recon shape %v", out.Recon.Shape)
	}
}

func TestSupervisedOnlyAblationHasNoDecoder(t *testing.T) {
	rng := tensor.NewRNG(3)
	cfg := SmallConfig()
	cfg.WithDecoder = false
	net := BuildNet(cfg, rng)
	x := tensor.New(1, NumChannels, cfg.Size, cfg.Size)
	out := net.Forward(x, false)
	if out.Recon != nil {
		t.Fatal("decoder-less net must not reconstruct")
	}
	withDec := BuildNet(SmallConfig(), tensor.NewRNG(3))
	if len(net.TrainableLayers()) >= len(withDec.TrainableLayers()) {
		t.Fatal("ablation should drop the deconv layers")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(4)
	net := BuildNet(SmallConfig(), rng)
	truth := Box{X: 10, Y: 20, W: 24, H: 18, Class: ExtratropicalCyclone}
	hasBox, cls, tx, ty, tw, th := net.EncodeTarget([]Box{truth})
	// Find the owning cell and hand-decode through the same transform the
	// network output uses.
	g := net.GridSize
	cell := float64(net.CellSize)
	found := false
	for i := range hasBox {
		if !hasBox[i] {
			continue
		}
		found = true
		gy, gx := i/g, i%g
		x := float64(gx)*cell + float64(tx[i])*cell
		y := float64(gy)*cell + float64(ty[i])*cell
		w := cell * math.Exp(float64(tw[i]))
		h := cell * math.Exp(float64(th[i]))
		if math.Abs(x-truth.X) > 1e-3 || math.Abs(y-truth.Y) > 1e-3 {
			t.Fatalf("decoded corner (%v,%v), want (%v,%v)", x, y, truth.X, truth.Y)
		}
		if math.Abs(w-truth.W) > 1e-3 || math.Abs(h-truth.H) > 1e-3 {
			t.Fatalf("decoded size (%v,%v), want (%v,%v)", w, h, truth.W, truth.H)
		}
		if cls[i] != int(truth.Class) {
			t.Fatal("class target wrong")
		}
	}
	if !found {
		t.Fatal("no cell owns the box")
	}
}

func TestEncodeTargetLargerBoxWins(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := BuildNet(SmallConfig(), rng)
	// Two boxes with centers in the same cell.
	small := Box{X: 2, Y: 2, W: 8, H: 8, Class: TropicalCyclone}
	big := Box{X: 0, Y: 0, W: 14, H: 14, Class: AtmosphericRiver}
	hasBox, cls, _, _, _, _ := net.EncodeTarget([]Box{small, big})
	n := 0
	for i, hb := range hasBox {
		if hb {
			n++
			if cls[i] != int(AtmosphericRiver) {
				t.Fatal("larger box should own the cell")
			}
		}
	}
	if n != 1 {
		t.Fatalf("expected exactly 1 occupied cell, got %d", n)
	}
}

func TestDecodeRespectsConfidenceThreshold(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := BuildNet(SmallConfig(), rng)
	g := net.GridSize
	out := Output{
		Conf:  tensor.New(1, 1, g, g),
		Class: tensor.New(1, int(NumClasses), g, g),
		BoxP:  tensor.New(1, 4, g, g),
	}
	// All logits zero → sigmoid 0.5 < 0.8: nothing detected.
	if dets := net.Decode(out, 0, 0.8); len(dets) != 0 {
		t.Fatalf("decoded %d at conf 0.5", len(dets))
	}
	// Push one cell above threshold.
	out.Conf.Data[g+1] = 5 // cell (1,1): sigmoid(5) ≈ 0.993
	dets := net.Decode(out, 0, 0.8)
	if len(dets) != 1 {
		t.Fatalf("decoded %d, want 1", len(dets))
	}
	if dets[0].Confidence < 0.99 {
		t.Fatalf("confidence %v", dets[0].Confidence)
	}
}

func TestBuildNetValidation(t *testing.T) {
	rng := tensor.NewRNG(7)
	bad := SmallConfig()
	bad.DecChannels = []int{8, 8} // wrong count and wrong final channels
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildNet(bad, rng)
}

func TestNetGradientsFlowToAllComponents(t *testing.T) {
	rng := tensor.NewRNG(8)
	cfg := ModelConfig{
		Name: "t", Size: 16,
		EncChannels: []int{6, 8},
		EncStrides:  []int{2, 2},
		DecChannels: []int{8, NumChannels},
		WithDecoder: true,
	}
	net := BuildNet(cfg, rng)
	x := tensor.New(2, NumChannels, 16, 16)
	rng.FillNorm(x, 0, 1)
	boxes := [][]Box{
		{{X: 2, Y: 2, W: 6, H: 6, Class: TropicalCyclone}},
		{{X: 8, Y: 8, W: 5, H: 5, Class: AtmosphericRiver}},
	}
	net.ZeroGrad()
	parts := net.TrainStep(x, boxes, nil, DefaultLossWeights())
	if parts.Total() <= 0 {
		t.Fatalf("loss parts %+v", parts)
	}
	for _, p := range net.Params() {
		if p.Grad.AbsMax() == 0 {
			t.Fatalf("no gradient reached %s", p.Name)
		}
	}
}
