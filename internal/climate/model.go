package climate

import (
	"fmt"
	"math"

	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// ModelConfig describes the semi-supervised architecture of §III-B: a
// strided-convolution encoder producing coarse features, three small
// convolutional score heads (confidence, class, box geometry) over the
// feature grid, and a deconvolutional decoder reconstructing the input.
type ModelConfig struct {
	Name        string
	Size        int   // input height = width
	EncChannels []int // encoder conv output channels
	EncStrides  []int // per-conv stride (2 = downsample)
	DecChannels []int // decoder deconv output channels; last must be NumChannels
	WithDecoder bool  // false = supervised-only ablation (no autoencoder)
}

// PaperConfig reproduces Table II's semi-supervised climate architecture:
// 768×768×16 input, 9 convolutions (6 encoder + 3 score heads) and 5
// deconvolutions, ≈302 MiB of parameters, 14 trainable layers (hence the
// paper's 14 parameter servers).
func PaperConfig() ModelConfig {
	return ModelConfig{
		Name:        "climate-paper",
		Size:        768,
		EncChannels: []int{64, 256, 512, 1024, 1440, 1664},
		EncStrides:  []int{2, 2, 2, 2, 2, 1},
		DecChannels: []int{1024, 512, 256, 128, NumChannels},
		WithDecoder: true,
	}
}

// SmallConfig is the laptop-scale variant for real training: identical
// topology at 64×64 with narrow channels (grid 4×4, cell 16 px).
func SmallConfig() ModelConfig {
	return ModelConfig{
		Name:        "climate-small",
		Size:        64,
		EncChannels: []int{12, 16, 24, 32, 32},
		EncStrides:  []int{2, 2, 2, 2, 1},
		DecChannels: []int{24, 16, 12, NumChannels},
		WithDecoder: true,
	}
}

// Net is the assembled semi-supervised network. The encoder is shared by
// the detection heads and the decoder — the mechanism that lets unlabelled
// data improve the supervised task.
type Net struct {
	Cfg                          ModelConfig
	Encoder                      *nn.Network
	ConfHead, ClassHead, BoxHead *nn.Conv2D
	Decoder                      *nn.Network
	GridSize, CellSize           int
	featShape                    []int
}

// BuildNet constructs the network.
func BuildNet(cfg ModelConfig, rng *tensor.RNG) *Net {
	if len(cfg.EncChannels) != len(cfg.EncStrides) {
		panic("climate: encoder channel/stride length mismatch")
	}
	if cfg.DecChannels[len(cfg.DecChannels)-1] != NumChannels {
		panic("climate: decoder must reconstruct the input channels")
	}
	enc := nn.NewNetwork(cfg.Name+"-encoder", NumChannels, cfg.Size, cfg.Size)
	inC := NumChannels
	downs := 0
	for i, outC := range cfg.EncChannels {
		enc.Add(
			nn.NewConv2D(fmt.Sprintf("enc_conv%d", i+1), inC, outC, 3, cfg.EncStrides[i], 1, rng),
			nn.NewReLU(fmt.Sprintf("enc_relu%d", i+1)),
		)
		if cfg.EncStrides[i] == 2 {
			downs++
		}
		inC = outC
	}
	featShape := enc.OutShape()
	grid := featShape[1]
	if featShape[2] != grid {
		panic("climate: non-square feature grid")
	}
	if nDec := len(cfg.DecChannels); cfg.WithDecoder && nDec != downs {
		panic(fmt.Sprintf("climate: %d deconvs cannot invert %d downsamples", nDec, downs))
	}

	n := &Net{
		Cfg:       cfg,
		Encoder:   enc,
		GridSize:  grid,
		CellSize:  cfg.Size / grid,
		featShape: featShape,
		// Score heads per §III-B: "a convolution layer for each score".
		ConfHead:  nn.NewConv2D("head_conf", inC, 1, 3, 1, 1, rng),
		ClassHead: nn.NewConv2D("head_class", inC, int(NumClasses), 3, 1, 1, rng),
		BoxHead:   nn.NewConv2D("head_box", inC, 4, 3, 1, 1, rng),
	}
	if cfg.WithDecoder {
		dec := nn.NewNetwork(cfg.Name+"-decoder", featShape...)
		dInC := inC
		for i, outC := range cfg.DecChannels {
			// Kernel 4, stride 2, pad 1 doubles the spatial size exactly.
			dec.Add(nn.NewDeconv2D(fmt.Sprintf("dec_deconv%d", i+1), dInC, outC, 4, 2, 1, rng))
			if i < len(cfg.DecChannels)-1 {
				dec.Add(nn.NewReLU(fmt.Sprintf("dec_relu%d", i+1)))
			}
			dInC = outC
		}
		out := dec.OutShape()
		if out[0] != NumChannels || out[1] != cfg.Size || out[2] != cfg.Size {
			panic(fmt.Sprintf("climate: decoder output %v does not match input [%d %d %d]", out, NumChannels, cfg.Size, cfg.Size))
		}
		n.Decoder = dec
	}
	return n
}

// Output bundles one forward pass.
type Output struct {
	Feat  *tensor.Tensor // [N, C, G, G] shared encoder features
	Conf  *tensor.Tensor // [N, 1, G, G] confidence logits
	Class *tensor.Tensor // [N, K, G, G] class logits
	BoxP  *tensor.Tensor // [N, 4, G, G] box geometry (tx, ty, log w, log h)
	Recon *tensor.Tensor // [N, 16, S, S] reconstruction (nil without decoder)
}

// Forward runs the shared encoder once and all heads on its output.
func (n *Net) Forward(x *tensor.Tensor, train bool) Output {
	feat := n.Encoder.Forward(x, train)
	out := Output{
		Feat:  feat,
		Conf:  n.ConfHead.Forward(feat, train),
		Class: n.ClassHead.Forward(feat, train),
		BoxP:  n.BoxHead.Forward(feat, train),
	}
	if n.Decoder != nil {
		out.Recon = n.Decoder.Forward(feat, train)
	}
	return out
}

// Backward accumulates gradients. Head gradients may be nil (e.g. an
// unlabeled-only batch trains just the autoencoder path); drecon must be
// nil iff the net has no decoder or the reconstruction term is disabled.
func (n *Net) Backward(out Output, dconf, dclass, dbox, drecon *tensor.Tensor) {
	dfeat := tensor.New(out.Feat.Shape...)
	if dconf != nil {
		tensor.Axpy(1, n.ConfHead.Backward(dconf).Data, dfeat.Data)
	}
	if dclass != nil {
		tensor.Axpy(1, n.ClassHead.Backward(dclass).Data, dfeat.Data)
	}
	if dbox != nil {
		tensor.Axpy(1, n.BoxHead.Backward(dbox).Data, dfeat.Data)
	}
	if drecon != nil {
		if n.Decoder == nil {
			panic("climate: reconstruction gradient without decoder")
		}
		tensor.Axpy(1, n.Decoder.Backward(drecon).Data, dfeat.Data)
	}
	n.Encoder.Backward(dfeat)
}

// Params returns all trainable parameters.
func (n *Net) Params() []*nn.Param {
	ps := n.Encoder.Params()
	ps = append(ps, n.ConfHead.Params()...)
	ps = append(ps, n.ClassHead.Params()...)
	ps = append(ps, n.BoxHead.Params()...)
	if n.Decoder != nil {
		ps = append(ps, n.Decoder.Params()...)
	}
	return ps
}

// TrainableLayers returns every parameterised layer; with the paper config
// this is 14 (9 convs + 5 deconvs), matching the paper's PS count.
func (n *Net) TrainableLayers() []nn.Layer {
	ls := n.Encoder.TrainableLayers()
	ls = append(ls, n.ConfHead, n.ClassHead, n.BoxHead)
	if n.Decoder != nil {
		ls = append(ls, n.Decoder.TrainableLayers()...)
	}
	return ls
}

// ZeroGrad clears all gradient accumulators.
func (n *Net) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total parameter count.
func (n *Net) NumParams() int {
	t := 0
	for _, p := range n.Params() {
		t += p.NumEl()
	}
	return t
}

// ParamBytes returns the model size (Table II's 302.1 MiB for PaperConfig).
func (n *Net) ParamBytes() int64 {
	var t int64
	for _, p := range n.Params() {
		t += p.Bytes()
	}
	return t
}

// FLOPsPerSample totals encoder, heads and decoder counts.
func (n *Net) FLOPsPerSample() nn.FlopCount {
	total := n.Encoder.FLOPsPerSample()
	for _, h := range []*nn.Conv2D{n.ConfHead, n.ClassHead, n.BoxHead} {
		total = total.Add(h.FLOPs(n.featShape))
	}
	if n.Decoder != nil {
		total = total.Add(n.Decoder.FLOPsPerSample())
	}
	return total
}

// FLOPBreakdown returns per-layer per-sample counts across all components.
func (n *Net) FLOPBreakdown() []nn.LayerFlop {
	rows := n.Encoder.FLOPBreakdown()
	for _, h := range []*nn.Conv2D{n.ConfHead, n.ClassHead, n.BoxHead} {
		var bytes int64
		for _, p := range h.Params() {
			bytes += p.Bytes()
		}
		rows = append(rows, nn.LayerFlop{Name: h.Name(), Count: h.FLOPs(n.featShape), Bytes: bytes})
	}
	if n.Decoder != nil {
		rows = append(rows, n.Decoder.FLOPBreakdown()...)
	}
	return rows
}

// targetScratch holds the reusable grid-target buffers encodeTargetInto
// fills; a zero value grows on first use.
type targetScratch struct {
	hasBox         []bool
	class          []int
	tx, ty, tw, th []float32
	area           []float64
}

// resize grows the scratch to cells entries and resets it.
func (t *targetScratch) resize(cells int) {
	if cap(t.hasBox) < cells {
		t.hasBox = make([]bool, cells)
		t.class = make([]int, cells)
		t.tx = make([]float32, cells)
		t.ty = make([]float32, cells)
		t.tw = make([]float32, cells)
		t.th = make([]float32, cells)
		t.area = make([]float64, cells)
	}
	t.hasBox = t.hasBox[:cells]
	t.class = t.class[:cells]
	t.tx, t.ty = t.tx[:cells], t.ty[:cells]
	t.tw, t.th = t.tw[:cells], t.th[:cells]
	t.area = t.area[:cells]
	for i := range t.hasBox {
		t.hasBox[i] = false
		t.class[i] = 0
		t.tx[i], t.ty[i], t.tw[i], t.th[i] = 0, 0, 0, 0
		t.area[i] = 0
	}
}

// EncodeTarget maps ground-truth boxes onto the detection grid. Returned
// slices are G×G: hasBox marks cells owning a box (by box center); class,
// tx, ty, tw, th hold that box's targets. When two boxes share a cell the
// larger-area box wins.
func (n *Net) EncodeTarget(boxes []Box) (hasBox []bool, class []int, tx, ty, tw, th []float32) {
	var t targetScratch
	n.encodeTargetInto(boxes, &t)
	return t.hasBox, t.class, t.tx, t.ty, t.tw, t.th
}

// encodeTargetInto is EncodeTarget writing into reusable scratch — the
// allocation-free form the training-plan loss runs per sample.
func (n *Net) encodeTargetInto(boxes []Box, t *targetScratch) {
	g := n.GridSize
	cell := float64(n.CellSize)
	t.resize(g * g)
	hasBox, class := t.hasBox, t.class
	tx, ty, tw, th := t.tx, t.ty, t.tw, t.th
	area := t.area
	for _, b := range boxes {
		if b.W <= 0 || b.H <= 0 {
			continue
		}
		cx := b.X + b.W/2
		cy := b.Y + b.H/2
		gx := clampInt(int(cx/cell), 0, g-1)
		gy := clampInt(int(cy/cell), 0, g-1)
		i := gy*g + gx
		a := b.W * b.H
		if hasBox[i] && area[i] >= a {
			continue
		}
		hasBox[i] = true
		area[i] = a
		class[i] = int(b.Class)
		tx[i] = float32((b.X - float64(gx)*cell) / cell)
		ty[i] = float32((b.Y - float64(gy)*cell) / cell)
		tw[i] = float32(math.Log(b.W / cell))
		th[i] = float32(math.Log(b.H / cell))
	}
}

// Decode converts head outputs for one batch sample into detections above
// the confidence threshold (the paper keeps boxes with confidence > 0.8 at
// inference).
func (n *Net) Decode(out Output, sample int, confThresh float64) []Detection {
	g := n.GridSize
	cell := float64(n.CellSize)
	k := int(NumClasses)
	confBase := sample * g * g
	classBase := sample * k * g * g
	boxBase := sample * 4 * g * g
	var dets []Detection
	for gy := 0; gy < g; gy++ {
		for gx := 0; gx < g; gx++ {
			ci := gy*g + gx
			conf := float64(nn.Sigmoid(out.Conf.Data[confBase+ci]))
			if conf < confThresh {
				continue
			}
			bestClass, bestLogit := 0, float32(math.Inf(-1))
			for c := 0; c < k; c++ {
				if l := out.Class.Data[classBase+c*g*g+ci]; l > bestLogit {
					bestLogit = l
					bestClass = c
				}
			}
			tx := float64(out.BoxP.Data[boxBase+0*g*g+ci])
			ty := float64(out.BoxP.Data[boxBase+1*g*g+ci])
			tw := float64(out.BoxP.Data[boxBase+2*g*g+ci])
			th := float64(out.BoxP.Data[boxBase+3*g*g+ci])
			w := cell * math.Exp(clampF(tw, -4, 4))
			h := cell * math.Exp(clampF(th, -4, 4))
			dets = append(dets, Detection{
				Confidence: conf,
				Box: Box{
					X:     float64(gx)*cell + tx*cell,
					Y:     float64(gy)*cell + ty*cell,
					W:     w,
					H:     h,
					Class: EventClass(bestClass),
				},
			})
		}
	}
	return dets
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
