package climate

import (
	"time"

	"deep15pf/internal/core"
	"deep15pf/internal/data"
	"deep15pf/internal/nn"
	"deep15pf/internal/obs"
	"deep15pf/internal/tensor"
)

// TrainingProblem adapts the semi-supervised climate task to the
// distributed trainer. LabeledFrac controls the semi-supervised split:
// sample i is treated as labeled iff i < LabeledFrac·len(dataset), so
// unlabeled samples contribute only the reconstruction term — the paper's
// mechanism for exploiting data "that might have few/no labeled examples".
type TrainingProblem struct {
	DS          *Dataset
	Model       ModelConfig
	Weights     LossWeights
	LabeledFrac float64
	InitSeed    uint64
}

// NewTrainingProblem builds the adapter with fully labeled data.
func NewTrainingProblem(ds *Dataset, model ModelConfig, initSeed uint64) *TrainingProblem {
	return &TrainingProblem{
		DS: ds, Model: model, Weights: DefaultLossWeights(),
		LabeledFrac: 1.0, InitSeed: initSeed,
	}
}

// NewReplica implements core.Problem. The replica compiles one training
// plan per distinct batch size on first use (shard sizes are stable across
// a run, so in practice that is a single compile); iterations then run the
// planned, allocation-free TrainPlan.Step path.
func (p *TrainingProblem) NewReplica() core.Replica {
	net := BuildNet(p.Model, tensor.NewRNG(p.InitSeed))
	labeledN := int(p.LabeledFrac * float64(len(p.DS.Samples)))
	arena := tensor.NewArena()
	return &climReplica{
		net: net, ds: p.DS, weights: p.Weights, labeledN: labeledN,
		params: net.Params(),
		arena:  arena,
		plans:  make(map[int]*TrainPlan),
		xStage: tensor.NewStaging(arena, NumChannels, p.DS.Size, p.DS.Size),
	}
}

// NewBatchSource implements core.Problem.
func (p *TrainingProblem) NewBatchSource(seed uint64) core.BatchSource {
	return &climBatchSource{n: len(p.DS.Samples), rng: tensor.NewRNG(seed)}
}

type climReplica struct {
	net      *Net
	ds       *Dataset
	weights  LossWeights
	labeledN int
	params   []*nn.Param // cached: per-iteration ZeroGrads must not rebuild the slice
	arena    *tensor.Arena
	plans    map[int]*TrainPlan

	// Reusable per-iteration staging, grown to the largest batch seen.
	xStage  *tensor.Staging
	boxes   [][]Box
	labeled []bool

	// Streaming ingest (core.PipelineReplica): fields, box targets and
	// labeled flags are staged per slot by the background prefetcher.
	pipe   *data.Pipeline[*climSlot]
	ingest data.IngestStats // blocking-path account (pipeline keeps its own)

	// lane is this worker's trace lane (core.TracedReplica); nil when
	// untraced. Fwd/Bwd spans are recorded inside the composed TrainPlan
	// (the only place the step's two halves are separable).
	lane *obs.Lane
}

// SetTraceLane implements core.TracedReplica, propagating to any plans
// already compiled.
func (r *climReplica) SetTraceLane(l *obs.Lane) {
	r.lane = l
	for _, tp := range r.plans {
		tp.SetTraceLane(l)
	}
}

// climSlot is one staged batch in the prefetch ring: the 16-channel field
// tensor plus per-sample box targets and semi-supervised labeled flags —
// everything the composed TrainPlan consumes.
type climSlot struct {
	stage   *tensor.Staging
	x       *tensor.Tensor // view for the staged batch size, set by the stager
	boxes   [][]Box
	labeled []bool
	n       int
}

func (r *climReplica) TrainableLayers() []nn.Layer { return r.net.TrainableLayers() }
func (r *climReplica) ZeroGrad()                   { nn.ZeroGrads(r.params) }

// stageInto copies batch idx — fields, box lists (shared, not copied) and
// labeled flags — into caller-owned staging. Both the blocking path and the
// pipeline's prefetch goroutine run exactly this, so the two are bitwise
// equal.
func (r *climReplica) stageInto(x *tensor.Tensor, boxes [][]Box, labeled []bool, idx []int) {
	r.ds.BatchInto(x, boxes, idx)
	for i, sample := range idx {
		labeled[i] = sample < r.labeledN
	}
}

func (r *climReplica) ComputeGradients(idx []int) float64 {
	return r.ComputeGradientsStream(idx, nil)
}

// ComputeGradientsStream implements core.StreamReplica over the composed
// train plan: per-layer completion fires across the encoder, heads and
// decoder in TrainPlan.StepStream's documented order. This is the blocking
// ingest path; staging time is booked as exposed wait.
func (r *climReplica) ComputeGradientsStream(idx []int, gradDone func(layer int)) float64 {
	n := len(idx)
	x := r.xStage.Batch(n)
	if cap(r.boxes) < n {
		r.boxes = make([][]Box, n)
		r.labeled = make([]bool, n)
	}
	boxes, labeled := r.boxes[:n], r.labeled[:n]
	r.lane.Begin(obs.PhaseIngest)
	t0 := time.Now()
	r.stageInto(x, boxes, labeled, idx)
	r.lane.End(obs.PhaseIngest)
	dt := time.Since(t0).Seconds()
	r.ingest.Batches++
	r.ingest.Samples += int64(n)
	r.ingest.StageSeconds += dt
	r.ingest.WaitSeconds += dt // blocking: staging sits on the critical path
	return r.computeOn(x, boxes, labeled, gradDone)
}

// computeOn is the shared planned step over an already-staged batch.
func (r *climReplica) computeOn(x *tensor.Tensor, boxes [][]Box, labeled []bool, gradDone func(layer int)) float64 {
	n := x.Shape[0]
	tp := r.plans[n]
	if tp == nil {
		tp = r.net.NewTrainPlan(n, r.arena)
		tp.SetTraceLane(r.lane)
		r.plans[n] = tp
	}
	parts := tp.StepStream(x, boxes, labeled, r.weights, gradDone)
	return parts.Total()
}

// StartIngest implements core.PipelineReplica (see the hep replica for the
// contract): pre-sized slots, background staging in blocking order.
func (r *climReplica) StartIngest(batches [][]int, lookahead int) {
	if lookahead < 1 {
		lookahead = 1
	}
	maxN := 0
	for _, b := range batches {
		if len(b) > maxN {
			maxN = len(b)
		}
	}
	if maxN == 0 {
		r.pipe = nil
		return
	}
	slots := make([]*climSlot, lookahead+1)
	for i := range slots {
		st := tensor.NewStaging(r.arena, NumChannels, r.ds.Size, r.ds.Size)
		st.Batch(maxN)
		slots[i] = &climSlot{stage: st, boxes: make([][]Box, maxN), labeled: make([]bool, maxN)}
	}
	// The prefetcher's staging spans land on a sibling lane (see the hep
	// replica): the timeline shows staging running beside compute.
	ingLane := r.lane.Tracer().Lane(r.lane.Name() + ".ingest")
	staged := 0
	r.pipe = data.NewPipeline(slots, data.SliceSource(batches),
		func(dst *climSlot, idx []int) error {
			ingLane.SetIter(staged)
			staged++
			ingLane.Begin(obs.PhaseIngest)
			dst.n = len(idx)
			dst.x = dst.stage.Batch(dst.n)
			r.stageInto(dst.x, dst.boxes[:dst.n], dst.labeled[:dst.n], idx)
			ingLane.End(obs.PhaseIngest)
			return nil
		})
	r.pipe.Start()
}

// ComputeStagedStream implements core.PipelineReplica.
func (r *climReplica) ComputeStagedStream(gradDone func(layer int)) float64 {
	r.lane.Begin(obs.PhaseIngest)
	slot, ok := r.pipe.Next()
	r.lane.End(obs.PhaseIngest)
	if !ok {
		if err := r.pipe.Err(); err != nil {
			panic("climate: ingest pipeline: " + err.Error())
		}
		panic("climate: ingest pipeline exhausted before training finished")
	}
	return r.computeOn(slot.x, slot.boxes[:slot.n], slot.labeled[:slot.n], gradDone)
}

// StopIngest implements core.PipelineReplica.
func (r *climReplica) StopIngest() {
	if r.pipe != nil {
		r.pipe.Stop()
	}
}

// IngestStats implements core.IngestReporter over whichever path ran.
func (r *climReplica) IngestStats() data.IngestStats {
	if r.pipe != nil {
		return r.ingest.Add(r.pipe.Stats())
	}
	return r.ingest
}

// Net exposes the underlying network of a replica created by this problem
// (for evaluation after training).
func (p *TrainingProblem) Net(rep core.Replica) *Net {
	cr, ok := rep.(*climReplica)
	if !ok {
		panic("climate: replica was not created by this problem")
	}
	return cr.net
}

type climBatchSource struct {
	n   int
	rng *tensor.RNG
	b   *data.Batcher
}

func (s *climBatchSource) Next(size int) []int {
	if s.b == nil || s.b.BatchSize != size {
		s.b = data.NewBatcher(s.n, size, s.rng)
	}
	return s.b.Next()
}
