package climate

import (
	"deep15pf/internal/core"
	"deep15pf/internal/data"
	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// TrainingProblem adapts the semi-supervised climate task to the
// distributed trainer. LabeledFrac controls the semi-supervised split:
// sample i is treated as labeled iff i < LabeledFrac·len(dataset), so
// unlabeled samples contribute only the reconstruction term — the paper's
// mechanism for exploiting data "that might have few/no labeled examples".
type TrainingProblem struct {
	DS          *Dataset
	Model       ModelConfig
	Weights     LossWeights
	LabeledFrac float64
	InitSeed    uint64
}

// NewTrainingProblem builds the adapter with fully labeled data.
func NewTrainingProblem(ds *Dataset, model ModelConfig, initSeed uint64) *TrainingProblem {
	return &TrainingProblem{
		DS: ds, Model: model, Weights: DefaultLossWeights(),
		LabeledFrac: 1.0, InitSeed: initSeed,
	}
}

// NewReplica implements core.Problem. The replica compiles one training
// plan per distinct batch size on first use (shard sizes are stable across
// a run, so in practice that is a single compile); iterations then run the
// planned, allocation-free TrainPlan.Step path.
func (p *TrainingProblem) NewReplica() core.Replica {
	net := BuildNet(p.Model, tensor.NewRNG(p.InitSeed))
	labeledN := int(p.LabeledFrac * float64(len(p.DS.Samples)))
	arena := tensor.NewArena()
	return &climReplica{
		net: net, ds: p.DS, weights: p.Weights, labeledN: labeledN,
		params: net.Params(),
		arena:  arena,
		plans:  make(map[int]*TrainPlan),
		xStage: tensor.NewStaging(arena, NumChannels, p.DS.Size, p.DS.Size),
	}
}

// NewBatchSource implements core.Problem.
func (p *TrainingProblem) NewBatchSource(seed uint64) core.BatchSource {
	return &climBatchSource{n: len(p.DS.Samples), rng: tensor.NewRNG(seed)}
}

type climReplica struct {
	net      *Net
	ds       *Dataset
	weights  LossWeights
	labeledN int
	params   []*nn.Param // cached: per-iteration ZeroGrads must not rebuild the slice
	arena    *tensor.Arena
	plans    map[int]*TrainPlan

	// Reusable per-iteration staging, grown to the largest batch seen.
	xStage  *tensor.Staging
	boxes   [][]Box
	labeled []bool
}

func (r *climReplica) TrainableLayers() []nn.Layer { return r.net.TrainableLayers() }
func (r *climReplica) ZeroGrad()                   { nn.ZeroGrads(r.params) }

func (r *climReplica) ComputeGradients(idx []int) float64 {
	return r.ComputeGradientsStream(idx, nil)
}

// ComputeGradientsStream implements core.StreamReplica over the composed
// train plan: per-layer completion fires across the encoder, heads and
// decoder in TrainPlan.StepStream's documented order.
func (r *climReplica) ComputeGradientsStream(idx []int, gradDone func(layer int)) float64 {
	n := len(idx)
	x := r.xStage.Batch(n)
	if cap(r.boxes) < n {
		r.boxes = make([][]Box, n)
		r.labeled = make([]bool, n)
	}
	boxes, labeled := r.boxes[:n], r.labeled[:n]
	r.ds.BatchInto(x, boxes, idx)
	for i, sample := range idx {
		labeled[i] = sample < r.labeledN
	}
	tp := r.plans[n]
	if tp == nil {
		tp = r.net.NewTrainPlan(n, r.arena)
		r.plans[n] = tp
	}
	parts := tp.StepStream(x, boxes, labeled, r.weights, gradDone)
	return parts.Total()
}

// Net exposes the underlying network of a replica created by this problem
// (for evaluation after training).
func (p *TrainingProblem) Net(rep core.Replica) *Net {
	cr, ok := rep.(*climReplica)
	if !ok {
		panic("climate: replica was not created by this problem")
	}
	return cr.net
}

type climBatchSource struct {
	n   int
	rng *tensor.RNG
	b   *data.Batcher
}

func (s *climBatchSource) Next(size int) []int {
	if s.b == nil || s.b.BatchSize != size {
		s.b = data.NewBatcher(s.n, size, s.rng)
	}
	return s.b.Next()
}
