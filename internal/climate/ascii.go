package climate

import (
	"fmt"
	"strings"
)

// RenderASCII draws a Fig 9-style overlay: the TMQ (integrated water vapor)
// channel of a sample as character shades, ground-truth boxes as '#'
// outlines and predicted boxes as '*' outlines. It is the text analogue of
// the paper's Fig 9 ("Black bounding boxes show ground truth; Red boxes are
// predictions by the network").
func RenderASCII(s *Sample, dets []Detection, width int) string {
	size := s.Field.Shape[1]
	if width <= 0 || width > size {
		width = size
	}
	scale := float64(size) / float64(width)
	height := width / 2 // terminal characters are ~2x taller than wide

	// Downsample TMQ by box averaging.
	tmq := s.Field.Data[ChTMQ*size*size : (ChTMQ+1)*size*size]
	img := make([][]float64, height)
	minV, maxV := 1e30, -1e30
	for r := 0; r < height; r++ {
		img[r] = make([]float64, width)
		for c := 0; c < width; c++ {
			y0 := int(float64(r) * float64(size) / float64(height))
			y1 := int(float64(r+1) * float64(size) / float64(height))
			x0 := int(float64(c) * scale)
			x1 := int(float64(c+1) * scale)
			var sum float64
			cnt := 0
			for y := y0; y < y1 && y < size; y++ {
				for x := x0; x < x1 && x < size; x++ {
					sum += float64(tmq[y*size+x])
					cnt++
				}
			}
			if cnt > 0 {
				img[r][c] = sum / float64(cnt)
			}
			if img[r][c] < minV {
				minV = img[r][c]
			}
			if img[r][c] > maxV {
				maxV = img[r][c]
			}
		}
	}
	shades := []byte(" .:-=+oO@")
	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = make([]byte, width)
		for c := range canvas[r] {
			v := (img[r][c] - minV) / (maxV - minV + 1e-12)
			canvas[r][c] = shades[int(v*float64(len(shades)-1)+0.5)]
		}
	}
	drawBox := func(b Box, ch byte) {
		c0 := int(b.X / scale)
		c1 := int((b.X + b.W) / scale)
		r0 := int(b.Y / float64(size) * float64(height))
		r1 := int((b.Y + b.H) / float64(size) * float64(height))
		for c := c0; c <= c1; c++ {
			if c < 0 || c >= width {
				continue
			}
			if r0 >= 0 && r0 < height {
				canvas[r0][c] = ch
			}
			if r1 >= 0 && r1 < height {
				canvas[r1][c] = ch
			}
		}
		for r := r0; r <= r1; r++ {
			if r < 0 || r >= height {
				continue
			}
			if c0 >= 0 && c0 < width {
				canvas[r][c0] = ch
			}
			if c1 >= 0 && c1 < width {
				canvas[r][c1] = ch
			}
		}
	}
	for _, b := range s.Boxes {
		drawBox(b, '#')
	}
	for _, d := range dets {
		drawBox(d.Box, '*')
	}
	var sb strings.Builder
	sb.WriteString("TMQ field  |  '#' ground truth  '*' predictions\n")
	for r := 0; r < height; r++ {
		sb.Write(canvas[r])
		sb.WriteByte('\n')
	}
	for _, b := range s.Boxes {
		fmt.Fprintf(&sb, "  truth: %-3s at (%.0f,%.0f) %vx%v\n", b.Class, b.X, b.Y, int(b.W), int(b.H))
	}
	for _, d := range dets {
		fmt.Fprintf(&sb, "  pred:  %-3s at (%.0f,%.0f) %vx%v conf %.2f\n", d.Class, d.X, d.Y, int(d.W), int(d.H), d.Confidence)
	}
	return sb.String()
}
