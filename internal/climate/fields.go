package climate

import (
	"math"

	"deep15pf/internal/tensor"
)

// Synthetic CAM5 stand-in. A climate snapshot is a 16-channel field on a
// latitude×longitude grid; the generator builds smooth large-scale
// background circulation and injects the three extreme-weather patterns the
// paper detects, each with its published multi-variate signature:
//
//   - tropical cyclones: compact warm-core vortices — deep sea-level
//     pressure minimum, strong tangential winds peaking outside the eye,
//     high integrated water vapor (TMQ), upper-troposphere warm anomaly;
//   - extratropical cyclones: larger, weaker, asymmetric vortices at higher
//     latitude;
//   - atmospheric rivers: long narrow filaments of very high TMQ with
//     along-axis moisture transport (Lavers et al., the paper's [11]).
//
// Channel variance is normalised to O(1) so the network needs no input
// whitening — mirroring how climate data differs statistically from the
// natural-image corpora pre-trained models assume (§I-B).

// Field channel indices. 16 channels per Table I.
const (
	ChTMQ       = iota // integrated water vapor
	ChU850             // zonal wind, 850 hPa
	ChV850             // meridional wind, 850 hPa
	ChUBOT             // zonal wind, surface
	ChVBOT             // meridional wind, surface
	ChPSL              // sea-level pressure anomaly
	ChT200             // temperature, 200 hPa
	ChT500             // temperature, 500 hPa
	ChPRECT            // precipitation rate
	ChTS               // surface temperature
	ChTREF             // reference-height temperature
	ChZ100             // geopotential height, 100 hPa
	ChZ200             // geopotential height, 200 hPa
	ChZBOT             // geopotential height, surface
	ChQREF             // reference-height humidity
	ChPS               // surface pressure anomaly
	NumChannels        // 16
)

// GenConfig parameterises the climate-field generator for a Size×Size grid.
type GenConfig struct {
	Size        int
	MeanTC      float64 // Poisson mean of tropical cyclones per image
	MeanETC     float64 // Poisson mean of extratropical cyclones
	ARProb      float64 // probability of one atmospheric river
	NoiseStd    float64 // white-noise floor on every channel
	BgModes     int     // background low-frequency modes per channel group
	MinSepFrac  float64 // minimum separation between event centers (fraction of Size)
	TCRadiusLo  float64 // TC core radius bounds (fraction of Size)
	TCRadiusHi  float64
	ETCRadiusLo float64
	ETCRadiusHi float64
}

// DefaultGenConfig returns the tuned generator for a given grid size.
func DefaultGenConfig(size int) GenConfig {
	return GenConfig{
		Size:        size,
		MeanTC:      1.2,
		MeanETC:     0.7,
		ARProb:      0.5,
		NoiseStd:    0.15,
		BgModes:     3,
		MinSepFrac:  0.18,
		TCRadiusLo:  0.035,
		TCRadiusHi:  0.06,
		ETCRadiusLo: 0.08,
		ETCRadiusHi: 0.13,
	}
}

// Sample is one labelled climate snapshot.
type Sample struct {
	Field *tensor.Tensor // [16, Size, Size]
	Boxes []Box
}

// Generate draws one snapshot.
func (c GenConfig) Generate(rng *tensor.RNG) *Sample {
	s := c.Size
	field := tensor.New(NumChannels, s, s)
	c.background(field, rng)

	var boxes []Box
	var centers [][2]float64
	place := func(marginFrac float64) (float64, float64, bool) {
		minSep := c.MinSepFrac * float64(s)
		for try := 0; try < 30; try++ {
			x := (marginFrac + (1-2*marginFrac)*rng.Float64()) * float64(s)
			y := (marginFrac + (1-2*marginFrac)*rng.Float64()) * float64(s)
			ok := true
			for _, ct := range centers {
				if math.Hypot(x-ct[0], y-ct[1]) < minSep {
					ok = false
					break
				}
			}
			if ok {
				centers = append(centers, [2]float64{x, y})
				return x, y, true
			}
		}
		return 0, 0, false
	}

	nTC := rng.Poisson(c.MeanTC)
	for i := 0; i < nTC; i++ {
		if x, y, ok := place(0.08); ok {
			boxes = append(boxes, c.addCyclone(field, rng, x, y, true))
		}
	}
	nETC := rng.Poisson(c.MeanETC)
	for i := 0; i < nETC; i++ {
		if x, y, ok := place(0.12); ok {
			boxes = append(boxes, c.addCyclone(field, rng, x, y, false))
		}
	}
	if rng.Float64() < c.ARProb {
		if x, y, ok := place(0.15); ok {
			boxes = append(boxes, c.addRiver(field, rng, x, y))
		}
	}
	return &Sample{Field: field, Boxes: boxes}
}

// background synthesises smooth large-scale structure: a meridional
// temperature gradient, zonal jets, and a few random long-wavelength modes,
// plus white noise.
func (c GenConfig) background(field *tensor.Tensor, rng *tensor.RNG) {
	s := c.Size
	fs := float64(s)
	type mode struct{ kx, ky, phase, amp float64 }
	chModes := make([][]mode, NumChannels)
	for ch := 0; ch < NumChannels; ch++ {
		ms := make([]mode, c.BgModes)
		for m := range ms {
			ms[m] = mode{
				kx:    (1 + rng.Float64()*2) * 2 * math.Pi / fs,
				ky:    (1 + rng.Float64()*2) * 2 * math.Pi / fs,
				phase: rng.Float64() * 2 * math.Pi,
				amp:   0.25 + 0.25*rng.Float64(),
			}
		}
		chModes[ch] = ms
	}
	for ch := 0; ch < NumChannels; ch++ {
		plane := field.Data[ch*s*s : (ch+1)*s*s]
		for y := 0; y < s; y++ {
			lat := float64(y)/fs - 0.5 // −0.5 south … +0.5 north
			for x := 0; x < s; x++ {
				v := 0.0
				for _, m := range chModes[ch] {
					v += m.amp * math.Sin(m.kx*float64(x)+m.ky*float64(y)+m.phase)
				}
				switch ch {
				case ChTS, ChTREF, ChT500, ChT200:
					v -= 1.5 * math.Abs(lat) * 2 // warm equator, cold poles
				case ChU850, ChUBOT:
					v += 0.8 * math.Sin(lat*4*math.Pi) // zonal jets
				case ChTMQ, ChQREF:
					v += 0.8 * (0.5 - math.Abs(lat)) * 2 // moist tropics
				}
				plane[y*s+x] = float32(v + c.NoiseStd*rng.Norm())
			}
		}
	}
}

// addCyclone injects a tropical (tc=true) or extratropical cyclone centred
// at (cx, cy) and returns its ground-truth box.
func (c GenConfig) addCyclone(field *tensor.Tensor, rng *tensor.RNG, cx, cy float64, tc bool) Box {
	s := c.Size
	fs := float64(s)
	var r, depth, wind, moist, warm float64
	var class EventClass
	if tc {
		r = (c.TCRadiusLo + (c.TCRadiusHi-c.TCRadiusLo)*rng.Float64()) * fs
		depth = 2.5 + rng.Float64()
		wind = 2.2 + 0.8*rng.Float64()
		moist = 2.0 + 0.8*rng.Float64()
		warm = 1.2
		class = TropicalCyclone
	} else {
		r = (c.ETCRadiusLo + (c.ETCRadiusHi-c.ETCRadiusLo)*rng.Float64()) * fs
		depth = 1.4 + 0.6*rng.Float64()
		wind = 1.0 + 0.5*rng.Float64()
		moist = 0.8 + 0.5*rng.Float64()
		warm = 0
		class = ExtratropicalCyclone
	}
	// ETCs are asymmetric: elongate along a random axis.
	elong := 1.0
	theta := 0.0
	if !tc {
		elong = 1.4 + 0.8*rng.Float64()
		theta = rng.Float64() * math.Pi
	}
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	reach := int(3.5 * r * elong)
	x0, y0 := int(cx), int(cy)
	get := func(ch int) []float32 { return field.Data[ch*s*s : (ch+1)*s*s] }
	tmq, psl, prect := get(ChTMQ), get(ChPSL), get(ChPRECT)
	u850, v850, ubot, vbot := get(ChU850), get(ChV850), get(ChUBOT), get(ChVBOT)
	t200, ps := get(ChT200), get(ChPS)
	for y := y0 - reach; y <= y0+reach; y++ {
		if y < 0 || y >= s {
			continue
		}
		for x := x0 - reach; x <= x0+reach; x++ {
			if x < 0 || x >= s {
				continue
			}
			dx := float64(x) - cx
			dy := float64(y) - cy
			// Rotate/elongate for asymmetric storms.
			ex := (dx*cosT + dy*sinT) / elong
			ey := -dx*sinT + dy*cosT
			d2 := (ex*ex + ey*ey) / (r * r)
			g := math.Exp(-0.5 * d2)
			d := math.Sqrt(dx*dx+dy*dy) + 1e-9
			// Tangential wind profile peaks at the radius of maximum wind.
			wProf := (d / r) * math.Exp(0.5*(1-d*d/(r*r))) * wind * g
			idx := y*s + x
			tmq[idx] += float32(moist * g)
			psl[idx] -= float32(depth * g)
			ps[idx] -= float32(0.8 * depth * g)
			prect[idx] += float32(0.7 * moist * g)
			t200[idx] += float32(warm * g)
			u850[idx] += float32(-wProf * dy / d)
			v850[idx] += float32(wProf * dx / d)
			ubot[idx] += float32(-0.7 * wProf * dy / d)
			vbot[idx] += float32(0.7 * wProf * dx / d)
		}
	}
	half := 1.8 * r * elong
	return Box{X: cx - half, Y: cy - half, W: 2 * half, H: 2 * half, Class: class}
}

// addRiver injects an atmospheric river: a narrow high-TMQ filament with
// along-axis transport, and returns its bounding box.
func (c GenConfig) addRiver(field *tensor.Tensor, rng *tensor.RNG, sx, sy float64) Box {
	s := c.Size
	fs := float64(s)
	length := (0.35 + 0.3*rng.Float64()) * fs
	width := (0.03 + 0.03*rng.Float64()) * fs
	angle := math.Pi/4 + (rng.Float64()-0.5)*math.Pi/3 // mostly diagonal
	dirX, dirY := math.Cos(angle), math.Sin(angle)
	amp := 1.8 + 0.8*rng.Float64()
	get := func(ch int) []float32 { return field.Data[ch*s*s : (ch+1)*s*s] }
	tmq, qref, prect := get(ChTMQ), get(ChQREF), get(ChPRECT)
	u850, v850 := get(ChU850), get(ChV850)

	minX, minY := sx, sy
	maxX, maxY := sx, sy
	steps := int(length)
	for i := 0; i <= steps; i++ {
		t := float64(i)
		// Gentle meander.
		mx := sx + dirX*t + 6*math.Sin(t*0.05)
		my := sy + dirY*t
		if mx < 0 || mx >= fs || my < 0 || my >= fs {
			break
		}
		minX, maxX = minf(minX, mx), maxf(maxX, mx)
		minY, maxY = minf(minY, my), maxf(maxY, my)
		reach := int(2.5 * width)
		x0, y0 := int(mx), int(my)
		for y := y0 - reach; y <= y0+reach; y++ {
			if y < 0 || y >= s {
				continue
			}
			for x := x0 - reach; x <= x0+reach; x++ {
				if x < 0 || x >= s {
					continue
				}
				dx := float64(x) - mx
				dy := float64(y) - my
				// Distance perpendicular to the axis.
				perp := math.Abs(-dx*dirY + dy*dirX)
				g := math.Exp(-0.5*(perp/width)*(perp/width)) / float64(steps) * length * 0.2
				idx := y*s + x
				tmq[idx] += float32(amp * g)
				qref[idx] += float32(0.8 * amp * g)
				prect[idx] += float32(0.4 * amp * g)
				u850[idx] += float32(amp * g * dirX)
				v850[idx] += float32(amp * g * dirY)
			}
		}
	}
	pad := 1.5 * width
	return Box{
		X: minX - pad, Y: minY - pad,
		W: (maxX - minX) + 2*pad, H: (maxY - minY) + 2*pad,
		Class: AtmosphericRiver,
	}
}

// Dataset is an in-memory labelled snapshot set.
type Dataset struct {
	Samples []*Sample
	Size    int
}

// GenerateDataset draws n snapshots.
func GenerateDataset(cfg GenConfig, n int, rng *tensor.RNG) *Dataset {
	ds := &Dataset{Size: cfg.Size, Samples: make([]*Sample, n)}
	for i := range ds.Samples {
		ds.Samples[i] = cfg.Generate(rng)
	}
	return ds
}

// Batch gathers the indexed samples into one [len(idx),16,S,S] tensor plus
// per-sample box lists.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, [][]Box) {
	x := tensor.New(len(idx), NumChannels, d.Size, d.Size)
	boxes := make([][]Box, len(idx))
	d.BatchInto(x, boxes, idx)
	return x, boxes
}

// BatchInto is Batch writing into caller-owned staging (x sized for
// len(idx) samples, boxes of length len(idx)) — the allocation-free form
// planned training replicas reuse every iteration. Box lists are shared
// with the dataset, not copied.
func (d *Dataset) BatchInto(x *tensor.Tensor, boxes [][]Box, idx []int) {
	s := d.Size
	per := NumChannels * s * s
	if x.Len() != len(idx)*per || len(boxes) != len(idx) {
		panic("climate: BatchInto staging size mismatch")
	}
	for bi, i := range idx {
		copy(x.Data[bi*per:(bi+1)*per], d.Samples[i].Field.Data)
		boxes[bi] = d.Samples[i].Boxes
	}
}
