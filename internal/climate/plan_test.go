package climate

import (
	"testing"

	"deep15pf/internal/tensor"
)

// TestTrainPlanMatchesTrainStep pins the acceptance criterion on the
// climate side: a compiled TrainPlan.Step must reproduce the unplanned
// Net.TrainStep bitwise — loss parts and every parameter gradient — across
// the semi-supervised labeled/unlabeled split.
func TestTrainPlanMatchesTrainStep(t *testing.T) {
	rng := tensor.NewRNG(81)
	cfg := SmallConfig()
	ds := GenerateDataset(DefaultGenConfig(64), 6, rng)
	idx := []int{0, 2, 4, 5}
	x, boxes := ds.Batch(idx)
	labeled := []bool{true, true, false, true} // mixed semi-supervised batch
	w := DefaultLossWeights()

	legacy := BuildNet(cfg, tensor.NewRNG(9))
	planned := BuildNet(cfg, tensor.NewRNG(9))

	wantParts := legacy.TrainStep(x, boxes, labeled, w)
	tp := planned.NewTrainPlan(len(idx), nil)
	gotParts := tp.Step(x, boxes, labeled, w)

	if gotParts != wantParts {
		t.Fatalf("loss parts diverge: %+v vs %+v", gotParts, wantParts)
	}
	lp, pp := legacy.Params(), planned.Params()
	for i := range lp {
		for j := range lp[i].Grad.Data {
			if pp[i].Grad.Data[j] != lp[i].Grad.Data[j] {
				t.Fatalf("param %s grad diverges at %d: %v vs %v",
					lp[i].Name, j, pp[i].Grad.Data[j], lp[i].Grad.Data[j])
			}
		}
	}
}

// TestTrainPlanRepeatedStepsStayIdentical reruns a plan on the same batch
// (with a perturbing different batch in between) to prove recycled buffers
// reset deterministically.
func TestTrainPlanRepeatedStepsStayIdentical(t *testing.T) {
	rng := tensor.NewRNG(83)
	cfg := SmallConfig()
	ds := GenerateDataset(DefaultGenConfig(64), 6, rng)
	w := DefaultLossWeights()
	net := BuildNet(cfg, tensor.NewRNG(10))
	tp := net.NewTrainPlan(2, nil)

	xa, boxesA := ds.Batch([]int{0, 1})
	xb, boxesB := ds.Batch([]int{2, 3})

	net.ZeroGrad()
	first := tp.Step(xa, boxesA, nil, w)
	snap := append([]float32(nil), net.Params()[0].Grad.Data...)

	net.ZeroGrad()
	tp.Step(xb, boxesB, nil, w)

	net.ZeroGrad()
	again := tp.Step(xa, boxesA, nil, w)
	if again != first {
		t.Fatalf("repeat loss parts diverge: %+v vs %+v", again, first)
	}
	for j, v := range net.Params()[0].Grad.Data {
		if v != snap[j] {
			t.Fatalf("repeat gradient diverges at %d: %v vs %v", j, v, snap[j])
		}
	}
}

// TestClimateTrainingIterationZeroAllocs extends the allocation regression
// gate to the semi-supervised replica: a warmed ComputeGradients (staging,
// planned forward, multi-term loss, planned backward) plus ZeroGrad must
// not allocate.
func TestClimateTrainingIterationZeroAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	rng := tensor.NewRNG(85)
	ds := GenerateDataset(DefaultGenConfig(64), 8, rng)
	p := NewTrainingProblem(ds, SmallConfig(), 11)
	p.LabeledFrac = 0.5
	rep := p.NewReplica()
	idx := []int{0, 6, 3, 7}
	iter := func() {
		rep.ZeroGrad()
		rep.ComputeGradients(idx)
	}
	iter() // warm
	if allocs := testing.AllocsPerRun(10, iter); allocs != 0 {
		t.Fatalf("warmed climate training iteration allocates %v objects/op, want 0", allocs)
	}
}
