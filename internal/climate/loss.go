package climate

import (
	"math"

	"deep15pf/internal/nn"
	"deep15pf/internal/tensor"
)

// The objective of §III-B, verbatim from the paper: "simultaneously
// minimize the confidence of areas without a box, maximize those with a
// box, maximize the probability of the correct class for areas with a box,
// minimize the scale and location offset of the predicted box to the real
// box and minimize the reconstruction error of the autoencoder."

// LossWeights are the relative term weights.
type LossWeights struct {
	Obj, NoObj, Class, Coord, Recon float64
}

// DefaultLossWeights returns the tuned weights used in the reproduction
// (YOLO-style coordinate emphasis, down-weighted empty cells).
func DefaultLossWeights() LossWeights {
	return LossWeights{Obj: 1, NoObj: 0.5, Class: 1, Coord: 5, Recon: 1}
}

// LossParts is the decomposed objective value.
type LossParts struct {
	Obj, NoObj, Class, Coord, Recon float64
}

// Total returns the weighted sum (weights already applied per part).
func (l LossParts) Total() float64 {
	return l.Obj + l.NoObj + l.Class + l.Coord + l.Recon
}

// Grads carries gradients for each head output; entries are nil when that
// term was inactive (e.g. Recon for a decoder-less net).
type Grads struct {
	Conf, Class, BoxP, Recon *tensor.Tensor
}

// lossScratch holds the reusable buffers one loss evaluation needs: the
// encoded grid targets and the per-cell class softmax workspace. A zero
// value grows on first use; training plans keep one across iterations so
// the loss contributes no steady-state allocation.
type lossScratch struct {
	tgt           targetScratch
	logits, cgrad []float32
}

// Loss evaluates the multi-term objective and its gradients. x is the input
// batch (reconstruction target); boxes are per-sample ground truth; labeled
// marks which batch entries contribute detection terms (unlabeled samples
// contribute only reconstruction — the semi-supervised mechanism). A nil
// labeled slice treats every sample as labeled.
func (n *Net) Loss(out Output, x *tensor.Tensor, boxes [][]Box, labeled []bool, w LossWeights) (LossParts, Grads) {
	grads := Grads{
		Conf:  tensor.New(out.Conf.Shape...),
		Class: tensor.New(out.Class.Shape...),
		BoxP:  tensor.New(out.BoxP.Shape...),
	}
	if out.Recon != nil && w.Recon > 0 {
		grads.Recon = tensor.New(out.Recon.Shape...)
	}
	var sc lossScratch
	parts := n.lossInto(out, x, boxes, labeled, w, &grads, &sc)
	return parts, grads
}

// lossInto is Loss writing gradients into caller-owned tensors (zeroed
// here) and drawing its workspace from sc — the allocation-free form
// training plans run. grads.Recon may be nil when the reconstruction term
// is inactive; when present and active it is fully overwritten.
func (n *Net) lossInto(out Output, x *tensor.Tensor, boxes [][]Box, labeled []bool, w LossWeights, grads *Grads, sc *lossScratch) LossParts {
	batch := out.Conf.Shape[0]
	if len(boxes) != batch {
		panic("climate: box list count != batch size")
	}
	if labeled != nil && len(labeled) != batch {
		panic("climate: labeled mask count != batch size")
	}
	g := n.GridSize
	k := int(NumClasses)
	cells := g * g

	var parts LossParts
	grads.Conf.Zero()
	grads.Class.Zero()
	grads.BoxP.Zero()
	if cap(sc.logits) < k {
		sc.logits = make([]float32, k)
		sc.cgrad = make([]float32, k)
	}
	nLabeled := 0
	for s := 0; s < batch; s++ {
		if labeled == nil || labeled[s] {
			nLabeled++
		}
	}
	if nLabeled > 0 {
		invL := 1 / float64(nLabeled)
		for s := 0; s < batch; s++ {
			if labeled != nil && !labeled[s] {
				continue
			}
			n.encodeTargetInto(boxes[s], &sc.tgt)
			hasBox, cls := sc.tgt.hasBox, sc.tgt.class
			tx, ty, tw, th := sc.tgt.tx, sc.tgt.ty, sc.tgt.tw, sc.tgt.th
			confBase := s * cells
			classBase := s * k * cells
			boxBase := s * 4 * cells
			nBoxCells := 0
			for _, hb := range hasBox {
				if hb {
					nBoxCells++
				}
			}
			invCells := invL / float64(cells)
			var invBox float64
			if nBoxCells > 0 {
				invBox = invL / float64(nBoxCells)
			}
			for ci := 0; ci < cells; ci++ {
				confLogit := out.Conf.Data[confBase+ci]
				if !hasBox[ci] {
					l, dg := nn.BCEWithLogits(confLogit, 0)
					parts.NoObj += w.NoObj * l * invCells
					grads.Conf.Data[confBase+ci] += float32(w.NoObj*invCells) * dg
					continue
				}
				// Confidence toward 1.
				l, dg := nn.BCEWithLogits(confLogit, 1)
				parts.Obj += w.Obj * l * invBox
				grads.Conf.Data[confBase+ci] += float32(w.Obj*invBox) * dg

				// Class cross-entropy over the K class logits at this cell.
				logits := sc.logits[:k]
				for c := 0; c < k; c++ {
					logits[c] = out.Class.Data[classBase+c*cells+ci]
				}
				cg := sc.cgrad[:k]
				cl := softmaxCEInto(logits, cls[ci], cg)
				parts.Class += w.Class * cl * invBox
				for c := 0; c < k; c++ {
					grads.Class.Data[classBase+c*cells+ci] += float32(w.Class*invBox) * cg[c]
				}

				// Box geometry, smooth-L1 per coordinate.
				targets := [4]float32{tx[ci], ty[ci], tw[ci], th[ci]}
				for d := 0; d < 4; d++ {
					pred := out.BoxP.Data[boxBase+d*cells+ci]
					bl, bg := nn.SmoothL1(pred - targets[d])
					parts.Coord += w.Coord * bl * invBox
					grads.BoxP.Data[boxBase+d*cells+ci] += float32(w.Coord*invBox) * bg
				}
			}
		}
	}

	if out.Recon != nil && w.Recon > 0 && grads.Recon != nil {
		rl := nn.MSELossInto(out.Recon, x, grads.Recon)
		parts.Recon = w.Recon * rl
		tensor.Scale(float32(w.Recon), grads.Recon.Data)
	}
	return parts
}

// softmaxCEInto is a small-k softmax cross-entropy on one cell's logits,
// writing the gradient into grad (len(logits), fully overwritten).
func softmaxCEInto(logits []float32, label int, grad []float32) float64 {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(float64(v - maxv))
	}
	logZ := math.Log(sum) + float64(maxv)
	for j, v := range logits {
		p := float32(math.Exp(float64(v) - logZ))
		grad[j] = p
	}
	grad[label] -= 1
	return logZ - float64(logits[label])
}

// TrainStep runs one full forward/backward pass and returns the loss parts.
// Gradients accumulate into the network parameters; the caller applies a
// solver step and zeroes gradients.
func (n *Net) TrainStep(x *tensor.Tensor, boxes [][]Box, labeled []bool, w LossWeights) LossParts {
	out := n.Forward(x, true)
	parts, grads := n.Loss(out, x, boxes, labeled, w)
	n.Backward(out, grads.Conf, grads.Class, grads.BoxP, grads.Recon)
	return parts
}

// Detect runs inference and returns per-sample detections after NMS, using
// the paper's confidence threshold (0.8) by default.
func (n *Net) Detect(x *tensor.Tensor, confThresh, nmsIoU float64) [][]Detection {
	out := n.Forward(x, false)
	batch := x.Shape[0]
	dets := make([][]Detection, batch)
	for s := 0; s < batch; s++ {
		dets[s] = NMS(n.Decode(out, s, confThresh), nmsIoU)
	}
	return dets
}
