package climate

import (
	"testing"

	"deep15pf/internal/core"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// TestClimatePrefetchMatchesBlocking pins the streaming-ingest identity on
// the climate side, across the full staged tuple — fields, box targets and
// the semi-supervised labeled flags: prefetched training must reproduce the
// blocking trajectory bit for bit.
func TestClimatePrefetchMatchesBlocking(t *testing.T) {
	rng := tensor.NewRNG(91)
	ds := GenerateDataset(DefaultGenConfig(64), 10, rng)
	mk := func() *TrainingProblem {
		p := NewTrainingProblem(ds, SmallConfig(), 11)
		p.LabeledFrac = 0.5 // unlabeled tail exercises the flag staging
		return p
	}

	base := core.Config{Groups: 1, WorkersPerGroup: 2, GroupBatch: 4, Iterations: 5, Seed: 13}
	base.Solver = opt.NewAdam(1.5e-3)
	blocking := core.TrainSync(mk(), base)

	pf := base
	pf.Solver = opt.NewAdam(1.5e-3)
	pf.Prefetch = 1
	prefetched := core.TrainSync(mk(), pf)

	for i := range blocking.FinalWeights {
		for j := range blocking.FinalWeights[i] {
			for k, v := range blocking.FinalWeights[i][j] {
				if prefetched.FinalWeights[i][j][k] != v {
					t.Fatalf("prefetched weights diverge at layer %d blob %d elem %d", i, j, k)
				}
			}
		}
	}
	for i := range blocking.Stats {
		if blocking.Stats[i].Loss != prefetched.Stats[i].Loss {
			t.Fatalf("iteration %d loss diverges: %v vs %v",
				i, blocking.Stats[i].Loss, prefetched.Stats[i].Loss)
		}
	}
	if prefetched.Ingest.Batches == 0 || prefetched.Ingest.StageSeconds <= 0 {
		t.Fatalf("pipeline ingest accounting missing: %+v", prefetched.Ingest)
	}
}

// TestClimatePrefetchedIterationZeroAllocs: the climate analogue of the
// streamed-ingest allocation gate — staged Pipeline.Next plus a composed
// TrainPlan step at zero steady-state allocations.
func TestClimatePrefetchedIterationZeroAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	rng := tensor.NewRNG(95)
	ds := GenerateDataset(DefaultGenConfig(64), 8, rng)
	p := NewTrainingProblem(ds, SmallConfig(), 11)
	p.LabeledFrac = 0.5
	rep := p.NewReplica().(*climReplica)

	batches := make([][]int, 60)
	for i := range batches {
		batches[i] = []int{0, 6, 3, 7}
	}
	rep.StartIngest(batches, 1)
	defer rep.StopIngest()

	iter := func() {
		rep.ZeroGrad()
		rep.ComputeStagedStream(nil)
	}
	iter() // warm
	iter()
	if allocs := testing.AllocsPerRun(10, iter); allocs != 0 {
		t.Fatalf("warmed prefetched climate iteration allocates %v objects/op, want 0", allocs)
	}
}
