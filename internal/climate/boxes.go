// Package climate implements the paper's semi-supervised application: a
// synthetic multi-channel climate-field generator standing in for the CAM5
// dataset, the shared-encoder architecture of §III-B (strided-convolution
// encoder feeding a per-cell confidence/class/box regression head and a
// deconvolutional decoder that reconstructs the input from the coarse
// features), its multi-term objective, and bounding-box evaluation metrics
// for the Fig 9 science result.
package climate

import (
	"fmt"
	"sort"
)

// EventClass labels the extreme-weather pattern types the generator injects
// and the detector classifies — the paper's known classes (§VII-B).
type EventClass int

// Weather pattern classes.
const (
	TropicalCyclone EventClass = iota
	ExtratropicalCyclone
	AtmosphericRiver
	NumClasses
)

// String implements fmt.Stringer.
func (c EventClass) String() string {
	switch c {
	case TropicalCyclone:
		return "TC"
	case ExtratropicalCyclone:
		return "ETC"
	case AtmosphericRiver:
		return "AR"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Box is an axis-aligned bounding box in pixel coordinates; (X, Y) is the
// bottom-left corner (the paper's §III-B parameterisation).
type Box struct {
	X, Y, W, H float64
	Class      EventClass
}

// Detection is a predicted box with its confidence score.
type Detection struct {
	Box
	Confidence float64
}

// IoU returns the intersection-over-union of two boxes (0 for disjoint or
// degenerate boxes).
func IoU(a, b Box) float64 {
	if a.W <= 0 || a.H <= 0 || b.W <= 0 || b.H <= 0 {
		return 0
	}
	x1 := maxf(a.X, b.X)
	y1 := maxf(a.Y, b.Y)
	x2 := minf(a.X+a.W, b.X+b.W)
	y2 := minf(a.Y+a.H, b.Y+b.H)
	if x2 <= x1 || y2 <= y1 {
		return 0
	}
	inter := (x2 - x1) * (y2 - y1)
	union := a.W*a.H + b.W*b.H - inter
	return inter / union
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// NMS performs greedy non-maximum suppression: detections are consumed in
// descending confidence, dropping any box overlapping an already-kept box
// of the same class above iouThresh.
func NMS(dets []Detection, iouThresh float64) []Detection {
	sorted := append([]Detection(nil), dets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Confidence > sorted[j].Confidence })
	var kept []Detection
	for _, d := range sorted {
		drop := false
		for _, k := range kept {
			if k.Class == d.Class && IoU(k.Box, d.Box) > iouThresh {
				drop = true
				break
			}
		}
		if !drop {
			kept = append(kept, d)
		}
	}
	return kept
}

// MatchResult summarises detection quality on one or more images.
type MatchResult struct {
	TruePositives, FalsePositives, FalseNegatives int
	MeanIoU                                       float64 // over matched pairs
}

// Precision returns TP/(TP+FP), zero when no detections.
func (m MatchResult) Precision() float64 {
	d := m.TruePositives + m.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(m.TruePositives) / float64(d)
}

// Recall returns TP/(TP+FN), zero when no ground truth.
func (m MatchResult) Recall() float64 {
	d := m.TruePositives + m.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(m.TruePositives) / float64(d)
}

// Add accumulates another result (weighted by match count for MeanIoU).
func (m MatchResult) Add(o MatchResult) MatchResult {
	tp := m.TruePositives + o.TruePositives
	out := MatchResult{
		TruePositives:  tp,
		FalsePositives: m.FalsePositives + o.FalsePositives,
		FalseNegatives: m.FalseNegatives + o.FalseNegatives,
	}
	if tp > 0 {
		out.MeanIoU = (m.MeanIoU*float64(m.TruePositives) + o.MeanIoU*float64(o.TruePositives)) / float64(tp)
	}
	return out
}

// Match greedily matches detections to ground truth at the given IoU
// threshold, requiring class agreement. Each truth box matches at most one
// detection (highest-confidence first).
func Match(dets []Detection, truth []Box, iouThresh float64) MatchResult {
	sorted := append([]Detection(nil), dets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Confidence > sorted[j].Confidence })
	used := make([]bool, len(truth))
	var res MatchResult
	var iouSum float64
	for _, d := range sorted {
		best := -1
		bestIoU := iouThresh
		for ti, tb := range truth {
			if used[ti] || tb.Class != d.Class {
				continue
			}
			if iou := IoU(d.Box, tb); iou >= bestIoU {
				bestIoU = iou
				best = ti
			}
		}
		if best >= 0 {
			used[best] = true
			res.TruePositives++
			iouSum += bestIoU
		} else {
			res.FalsePositives++
		}
	}
	for _, u := range used {
		if !u {
			res.FalseNegatives++
		}
	}
	if res.TruePositives > 0 {
		res.MeanIoU = iouSum / float64(res.TruePositives)
	}
	return res
}
