package harness

import (
	"fmt"
	"math"
	"strings"

	"deep15pf/internal/cluster"
	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// Fig8 reproduces the time-to-train study (§VI-B4): training loss versus
// wall-clock time for the HEP network on 1024 nodes with a fixed total
// batch, comparing the synchronous configuration against 2, 4 and 8 hybrid
// groups. The SGD dynamics are real (our scaled-down HEP problem trained
// through the real per-layer parameter servers in simulated-schedule
// order); the wall-clock axis comes from the cluster model at 1024 nodes.
// The paper reports the best hybrid reaching the target loss ~1.66x faster
// than the best sync run, with the worst sync run many times slower, using
// ADAM with lr ∈ [1e-4, 1e-3] and hybrid momentum tuned over {0, 0.4, 0.7}.
func Fig8(opts Options) Report {
	totalUpdates := 180
	dsN, imgSize, totalBatch := 384, 16, 64
	if opts.Quick {
		totalUpdates, dsN, totalBatch = 90, 256, 32
	}

	rng := tensor.NewRNG(opts.Seed)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(imgSize), dsN, 0.5, rng)
	model := hep.ModelConfig{Name: "fig8", ImageSize: imgSize, Filters: 6, ConvUnits: 3, Classes: 2}

	m := cluster.CoriPhaseII()
	profile := cluster.HEPProfile()

	type run struct {
		label     string
		groups    int
		mu        float64
		result    core.Result
		exposedIt float64 // exposed (non-hidden) comm seconds per iteration
		gradBytes int64   // PS gradient wire bytes for the whole run
	}
	var runs []run

	execute := func(label string, groups int, beta1 float64, seed uint64, overlap bool, codec string) run {
		iters := totalUpdates / groups
		// Hardware timeline: this configuration at 1024 nodes with the
		// paper's total batch of 1024 split across groups; the overlap and
		// codec knobs reshape it exactly as they reshape the real trainer.
		simRes := cluster.Simulate(m, profile, cluster.RunConfig{
			Nodes: 1024, Groups: groups, BatchPerGroup: 1024 / groups,
			Iterations: iters, Seed: seed, Overlap: overlap, Codec: codec,
		})
		schedule := core.BuildSchedule(simRes.IterDurations)
		problem := hep.NewTrainingProblem(ds, model, 100+seed)
		res := core.TrainScheduled(problem, core.Config{
			Groups: groups, WorkersPerGroup: 1, GroupBatch: totalBatch / groups,
			Iterations: iters,
			Solver:     opt.NewAdamFull(1e-3, beta1, 0.999, 1e-8),
			Seed:       seed,
			Overlap:    overlap, Codec: codec,
		}, schedule)
		var nIter float64
		for _, d := range simRes.IterDurations {
			nIter += float64(len(d))
		}
		exposed := 0.0
		if nIter > 0 {
			exposed = simRes.ExposedCommSeconds / nIter
		}
		return run{label: label, groups: groups, mu: beta1, result: res,
			exposedIt: exposed, gradBytes: res.Wire.GradBytes}
	}

	// Synchronous: momentum fixed at 0.9, best and worst of 3 runs.
	var syncRuns []run
	for s := 0; s < 3; s++ {
		syncRuns = append(syncRuns, execute(fmt.Sprintf("sync seed %d", s), 1, 0.9, opts.Seed+uint64(s), false, "fp32"))
	}
	// Hybrid (lockstep fp32): tune momentum over the paper's grid, keep the
	// best per G.
	for _, g := range []int{2, 4, 8} {
		var best run
		bestLoss := math.Inf(1)
		for _, mu := range opt.MomentumGrid {
			r := execute(fmt.Sprintf("hybrid %dg mu=%.1f", g, mu), g, mu, opts.Seed, false, "fp32")
			if l := smoothedMin(r.result); l < bestLoss {
				bestLoss = l
				best = r
			}
		}
		runs = append(runs, best)
	}
	// The overlap/codec A/B at the middle group count, reusing its tuned
	// momentum: lockstep-fp32 (already in runs) vs overlapped-fp32 vs
	// overlapped-int8 — the refactor's time-to-train payoff.
	abMu := runs[1].mu
	runs = append(runs,
		execute(fmt.Sprintf("hybrid 4g mu=%.1f overlap", abMu), 4, abMu, opts.Seed, true, "fp32"),
		execute(fmt.Sprintf("hybrid 4g mu=%.1f overlap+int8", abMu), 4, abMu, opts.Seed, true, "int8"),
	)

	// Common target: the loosest of the per-run best losses, so every
	// configuration reaches it (the paper's 0.05 played the same role:
	// a loss every run could beat).
	target := 0.0
	all := append(append([]run{}, syncRuns...), runs...)
	for _, r := range all {
		if l := smoothedMin(r.result); l > target {
			target = l
		}
	}
	target *= 1.02

	var b strings.Builder
	fmt.Fprintf(&b, "Total batch 1024 on 1024 simulated nodes; %d total updates; target loss %.4f\n",
		totalUpdates, target)
	t := newTable("config", "updates", "mean staleness", "final loss", "exposed comm/iter", "PS grad MB", "time to target", "vs best sync")

	bestSyncTime := math.Inf(1)
	syncTimes := make([]float64, len(syncRuns))
	for i, r := range syncRuns {
		tt, ok := core.TimeToLoss(r.result, target, smoothWindow(r.result))
		if !ok {
			tt = math.Inf(1)
		}
		syncTimes[i] = tt
		if tt < bestSyncTime {
			bestSyncTime = tt
		}
	}
	for i, r := range syncRuns {
		t.addf("%s|%d|%.2f|%.4f|%.1f ms|%s|%s|%.2fx", r.label, len(r.result.Stats),
			r.result.MeanStaleness, r.result.FinalLoss, r.exposedIt*1e3, fmtMB(r.gradBytes),
			fmtTime(syncTimes[i]), bestSyncTime/syncTimes[i])
	}
	var bestHybridSpeedup float64
	for _, r := range runs {
		tt, ok := core.TimeToLoss(r.result, target, smoothWindow(r.result))
		speedup := 0.0
		if ok && tt > 0 {
			speedup = bestSyncTime / tt
		} else {
			tt = math.Inf(1)
		}
		if speedup > bestHybridSpeedup {
			bestHybridSpeedup = speedup
		}
		t.addf("%s|%d|%.2f|%.4f|%.1f ms|%s|%s|%.2fx", r.label, len(r.result.Stats),
			r.result.MeanStaleness, r.result.FinalLoss, r.exposedIt*1e3, fmtMB(r.gradBytes),
			fmtTime(tt), speedup)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nBest hybrid reaches the target %.2fx faster than the best sync run\n"+
		"(paper: 1.66x, with the worst sync run many times slower).\n", bestHybridSpeedup)
	b.WriteString("The statistical/hardware-efficiency tradeoff of §II-B2 is visible directly:\n" +
		"higher group counts reach moderate losses sooner (more updates per second) while\n" +
		"showing higher staleness and a worse loss at equal update counts.\n" +
		"The overlapped rows pipeline each layer's exchange into the backward pass's\n" +
		"shadow (exposed comm/iter falls) and the int8 wire cuts the PS gradient\n" +
		"traffic ~4x at equal statistical quality — the §III-D/E engineering the\n" +
		"lockstep rows lack.\n")
	return Report{ID: "fig8", Title: "Training loss vs wall-clock time on 1024 nodes (Fig 8)", Body: b.String()}
}

func smoothWindow(res core.Result) int {
	w := len(res.Stats) / 10
	if w < 3 {
		w = 3
	}
	return w
}

// smoothedMin returns the lowest running-mean loss a run achieves.
func smoothedMin(res core.Result) float64 {
	w := smoothWindow(res)
	best := math.Inf(1)
	var sum float64
	for i, s := range res.Stats {
		sum += s.Loss
		if i >= w {
			sum -= res.Stats[i-w].Loss
		}
		if i >= w-1 {
			if v := sum / float64(w); v < best {
				best = v
			}
		}
	}
	return best
}

func fmtMB(b int64) string {
	return fmt.Sprintf("%.1f", float64(b)/(1<<20))
}

func fmtTime(t float64) string {
	if math.IsInf(t, 1) {
		return "never"
	}
	if t < 60 {
		return fmt.Sprintf("%.1f s", t)
	}
	return fmt.Sprintf("%.1f min", t/60)
}
