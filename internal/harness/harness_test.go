package harness

import (
	"strings"
	"testing"
)

// The harness tests run every generator in quick mode and assert the
// invariants each report must carry; the numeric calibration itself is
// asserted in internal/cluster's tests.

func testOpts() Options { return Options{Quick: true, Seed: 42} }

func TestTable1(t *testing.T) {
	r := Table1(testOpts())
	for _, want := range []string{"HEP", "Climate", "7.4 TB", "15 TB", "228x228", "768x768"} {
		if !strings.Contains(r.Body, want) {
			t.Fatalf("table1 missing %q:\n%s", want, r.Body)
		}
	}
}

func TestTable2(t *testing.T) {
	r := Table2(testOpts())
	for _, want := range []string{"2.3 MiB", "2.27 MiB", "302.1 MiB", "302.60 MiB", "HEP 6", "climate 14", "590 KB"} {
		if !strings.Contains(r.Body, want) {
			t.Fatalf("table2 missing %q:\n%s", want, r.Body)
		}
	}
}

func TestFig5(t *testing.T) {
	r := Fig5(testOpts())
	for _, want := range []string{"conv2", "solver", "I/O (shard read)", "TOTAL", "GFLOP/s", "dec_deconv"} {
		if !strings.Contains(r.Body, want) {
			t.Fatalf("fig5 missing %q:\n%s", want, r.Body)
		}
	}
}

func TestFig6AndFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r6 := Fig6(testOpts())
	for _, want := range []string{"synchronous", "hybrid, 2 groups", "hybrid, 4 groups", "1024 nodes"} {
		if !strings.Contains(r6.Body, want) {
			t.Fatalf("fig6 missing %q", want)
		}
	}
	r7 := Fig7(testOpts())
	for _, want := range []string{"hybrid, 8 groups", "2048 nodes", "batch 8 per node"} {
		if !strings.Contains(r7.Body, want) {
			t.Fatalf("fig7 missing %q", want)
		}
	}
}

func TestFullSystemReport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := FullSystem(testOpts())
	for _, want := range []string{"9594+6", "9608+14", "6173x", "7205x", "PF"} {
		if !strings.Contains(r.Body, want) {
			t.Fatalf("fullsystem missing %q:\n%s", want, r.Body)
		}
	}
}

func TestFig8Report(t *testing.T) {
	if testing.Short() {
		t.Skip("real training")
	}
	r := Fig8(testOpts())
	for _, want := range []string{"sync seed 0", "hybrid 2g", "hybrid 4g", "hybrid 8g", "time to target"} {
		if !strings.Contains(r.Body, want) {
			t.Fatalf("fig8 missing %q:\n%s", want, r.Body)
		}
	}
	// The hybrid configurations must show real staleness in the table.
	if !strings.Contains(r.Body, "faster than the best sync run") {
		t.Fatal("fig8 must report the headline speedup")
	}
}

func TestHEPScienceReport(t *testing.T) {
	if testing.Short() {
		t.Skip("real training")
	}
	r := HEPScience(testOpts())
	for _, want := range []string{"baseline cuts (ours)", "CNN (ours)", "42%", "72%", "AUC"} {
		if !strings.Contains(r.Body, want) {
			t.Fatalf("hepscience missing %q:\n%s", want, r.Body)
		}
	}
}

func TestClimateScienceReport(t *testing.T) {
	if testing.Short() {
		t.Skip("real training")
	}
	r := ClimateScience(testOpts())
	for _, want := range []string{"precision", "recall", "TMQ field", "ground truth"} {
		if !strings.Contains(r.Body, want) {
			t.Fatalf("climscience missing %q", want)
		}
	}
}

func TestResilienceReport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	r := Resilience(testOpts())
	for _, want := range []string{"node dies", "synchronous", "hybrid, 4 groups", "Straggler variant"} {
		if !strings.Contains(r.Body, want) {
			t.Fatalf("resilience missing %q:\n%s", want, r.Body)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := newTable("a", "bb")
	tab.add("xxx", "y")
	tab.addf("%d|%s", 7, "z")
	s := tab.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "a") || !strings.Contains(lines[2], "xxx") || !strings.Contains(lines[3], "7") {
		t.Fatalf("bad table:\n%s", s)
	}
}

func TestReportString(t *testing.T) {
	r := Report{ID: "x", Title: "T", Body: "B"}
	s := r.String()
	if !strings.Contains(s, "## x — T") || !strings.Contains(s, "B") {
		t.Fatalf("report rendering: %q", s)
	}
}
