package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"deep15pf/internal/climate"
	"deep15pf/internal/cluster"
	"deep15pf/internal/core"
	"deep15pf/internal/data"
	"deep15pf/internal/hep"
	"deep15pf/internal/nn"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// Fig5 reproduces the single-node breakdown (Figs 5a/5b): per-layer
// runtime and flop rate for both networks, plus the solver-update and
// input-I/O components the paper calls out (HEP solver ≈12.5% of runtime;
// climate I/O ≈13%). All numbers are real measurements of our kernels on
// this host. Quick mode shrinks the spatial size (layer-time *shares* are
// spatially invariant; absolute TF/s obviously reflect this host, not a
// KNL node).
func Fig5(opts Options) Report {
	// Climate sizes must be divisible by 32 (five stride-2 levels).
	hepSize, climSize, batch := 224, 192, 8
	if opts.Quick {
		hepSize, climSize, batch = 64, 64, 2
	}
	body := "HEP network (cf. Fig 5a; paper: 1.90 TFLOP/s overall at batch 8 on one KNL node)\n"
	body += fig5HEP(opts, hepSize, batch)
	body += "\nClimate network (cf. Fig 5b; paper: 2.09 TFLOP/s overall at batch 8)\n"
	body += fig5Climate(opts, climSize, batch)
	body += "\nShape checks carried over from the paper: convolution/deconvolution layers dominate\n" +
		"runtime; layers with few channels or small spatial extents run at lower flop rates than\n" +
		"fat mid-network layers (the DeepBench small-operand effect — milder on this host's\n" +
		"scalar GEMM than on KNL's 16-lane AVX-512 units); the climate I/O share exceeds the\n" +
		"HEP I/O share (16-channel samples vs 3-channel), as in the paper's 13% vs 2%.\n"
	body += "\nInput-pipeline A/B (blocking reader vs double-buffered prefetch)\n"
	body += fig5IngestAB(opts)
	return Report{ID: "fig5", Title: "Single-node runtime and flop-rate breakdown (Fig 5)", Body: body}
}

// fig5IngestAB runs the streaming-ingest A/B the tentpole exists for. The
// measured half trains the same shard-backed HEP problem twice — once with
// the blocking reader (stage at iteration start, §VI-A's non-threaded
// path) and once with the background prefetch pipeline — and reports how
// much staging time stayed exposed on the critical path. The simulated half
// asks the calibrated cluster model the same question at paper scale for
// both networks, where the blocking shares anchor to Fig 5's 2%/13%.
func fig5IngestAB(opts Options) string {
	size, events, iters, batch := 32, 96, 24, 8
	if opts.Quick {
		size, events, iters = 16, 48, 16
	}
	rng := tensor.NewRNG(opts.Seed + 2)
	cfg := hep.ModelConfig{Name: "fig5-ingest", ImageSize: size, Filters: 8, ConvUnits: 3, Classes: 2}
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(size), events, 0.5, rng)

	var b strings.Builder
	dir, err := os.MkdirTemp("", "d15p-ingest")
	if err == nil {
		defer os.RemoveAll(dir)
		var set *data.ShardSet
		if paths, serr := ds.SaveShards(dir, 4); serr == nil {
			set, err = data.OpenShardSet(paths...)
		} else {
			err = serr
		}
		if err == nil {
			defer set.Close()
			problem := hep.NewTrainingProblem(ds, cfg, opts.Seed+3)
			problem.Backing = set
			run := func(prefetch int) (time.Duration, data.IngestStats) {
				tc := core.Config{Groups: 1, WorkersPerGroup: 1, GroupBatch: batch,
					Iterations: iters, Solver: opt.NewSGD(0.02, 0.9), Seed: opts.Seed,
					Prefetch: prefetch}
				t0 := time.Now()
				res := core.TrainSync(problem, tc)
				return time.Since(t0), res.Ingest
			}
			blockWall, blocking := run(0)
			preWall, prefetched := run(1)
			t := newTable("measured (shard-backed HEP)", "wall", "stage ms/iter", "exposed ms/iter", "overlap")
			row := func(name string, wall time.Duration, st data.IngestStats) {
				n := float64(st.Batches)
				if n == 0 {
					n = 1
				}
				t.addf("%s|%.0f ms|%.3f|%.3f|%.0f%%", name, wall.Seconds()*1e3,
					st.StageSeconds/n*1e3, st.WaitSeconds/n*1e3, 100*st.Overlap())
			}
			row("blocking (prefetch=0)", blockWall, blocking)
			row("prefetched (prefetch=1)", preWall, prefetched)
			b.WriteString(t.String())
			b.WriteString(fmt.Sprintf("(identical trajectories by construction; overlap needs a spare core — host has %d)\n",
				runtime.NumCPU()))
		}
	}
	if err != nil {
		b.WriteString("(measured shard A/B unavailable: " + err.Error() + ")\n")
	}

	sim := newTable("modelled at paper scale", "io s/iter", "exposed s/iter", "share of iter")
	m := cluster.CoriPhaseII()
	for _, p := range []cluster.NetProfile{cluster.HEPProfile(), cluster.ClimateProfile()} {
		for _, prefetch := range []bool{false, true} {
			r := cluster.Simulate(m, p, cluster.RunConfig{
				Nodes: 1, Groups: 1, BatchPerGroup: 8, Iterations: 10,
				Seed: opts.Seed, IngestIO: true, PrefetchIngest: prefetch,
			})
			n := float64(len(r.IterDurations[0]))
			name := p.Name + " blocking"
			if prefetch {
				name = p.Name + " prefetched"
			}
			sim.addf("%s|%.3f|%.3f|%.1f%%", name, r.IOSeconds/n, r.ExposedIOSeconds/n,
				100*r.ExposedIOSeconds/r.WallTime)
		}
	}
	b.WriteString("\n")
	b.WriteString(sim.String())
	b.WriteString("(blocking shares calibrated to the paper's ≈2% HEP / ≈13% climate; the double buffer\n" +
		"hides every steady-state batch-8 read behind compute on both networks — only\n" +
		"iteration 0's warmup stage stays exposed)\n")
	return b.String()
}

// layerRow is one measured layer.
type layerRow struct {
	name          string
	dur           time.Duration
	flops         int64
	gflopsPerSec  float64
	shareOfTotals float64
}

func measureNet(fwd func() []nn.LayerTiming, rows []nn.LayerFlop, batch int) ([]layerRow, time.Duration) {
	// One warmup pass (buffer allocation), then a measured pass.
	fwd()
	timings := fwd()
	var total time.Duration
	out := make([]layerRow, 0, len(timings))
	for i, tm := range timings {
		d := tm.Fwd + tm.Bwd
		total += d
		fl := rows[i].Count.Total() * int64(batch)
		r := layerRow{name: tm.Name, dur: d, flops: fl}
		if d > 0 {
			r.gflopsPerSec = float64(fl) / d.Seconds() / 1e9
		}
		out = append(out, r)
	}
	for i := range out {
		out[i].shareOfTotals = float64(out[i].dur) / float64(total)
	}
	return out, total
}

func renderBreakdown(rows []layerRow, total time.Duration, extras []layerRow) string {
	// Top time consumers first, as in the figure.
	sorted := append([]layerRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].dur > sorted[j].dur })
	grand := total
	for _, e := range extras {
		grand += e.dur
	}
	t := newTable("component", "time", "share", "GFLOP/s")
	limit := 8
	if len(sorted) < limit {
		limit = len(sorted)
	}
	for _, r := range sorted[:limit] {
		t.addf("%s|%.1f ms|%.1f%%|%.2f", r.name, r.dur.Seconds()*1e3,
			100*float64(r.dur)/float64(grand), r.gflopsPerSec)
	}
	for _, e := range extras {
		t.addf("%s|%.1f ms|%.1f%%|-", e.name, e.dur.Seconds()*1e3,
			100*float64(e.dur)/float64(grand))
	}
	var flops int64
	for _, r := range rows {
		flops += r.flops
	}
	t.addf("TOTAL|%.1f ms|100%%|%.2f", grand.Seconds()*1e3,
		float64(flops)/grand.Seconds()/1e9)
	return t.String()
}

func fig5HEP(opts Options, size, batch int) string {
	rng := tensor.NewRNG(opts.Seed)
	cfg := hep.PaperConfig()
	cfg.ImageSize = size
	net := hep.BuildNet(cfg, rng)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(size), batch, 0.5, rng)
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = i
	}
	x, labels := ds.Batch(idx)

	pass := func() []nn.LayerTiming {
		net.ZeroGrad()
		logits, timings := net.ForwardTimed(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		net.BackwardTimed(grad, timings)
		return timings
	}
	rows, total := measureNet(pass, net.FLOPBreakdown(), batch)

	// Solver component: the ADAM update on the full 594k-parameter model
	// ("about 12.5% of the runtime is spent in the solver update routine",
	// §VI-A). Parameter count is spatial-size independent, so this is the
	// paper-sized measurement even in quick mode.
	solver := opt.NewAdam(1e-3)
	solver.Step(net.Params()) // warmup/state allocation
	t0 := time.Now()
	solver.Step(net.Params())
	solverDur := time.Since(t0)

	ioDur := measureShardIO(ds.Images.Data[:batch*3*size*size], batch, 3*size*size)
	extras := []layerRow{
		{name: "solver (ADAM)", dur: solverDur},
		{name: "I/O (shard read)", dur: ioDur},
	}
	return fmt.Sprintf("(input %dx%dx3, batch %d)\n", size, size, batch) +
		renderBreakdown(rows, total, extras)
}

func fig5Climate(opts Options, size, batch int) string {
	rng := tensor.NewRNG(opts.Seed + 1)
	var cfg climate.ModelConfig
	if opts.Quick {
		// Paper topology (9 convs + 5 deconvs) at reduced width so the
		// quick pass stays in budget; layer-share shapes are preserved.
		cfg = climate.ModelConfig{
			Name: "climate-fig5", Size: size,
			EncChannels: []int{16, 48, 96, 128, 160, 192},
			EncStrides:  []int{2, 2, 2, 2, 2, 1},
			DecChannels: []int{128, 96, 48, 24, climate.NumChannels},
			WithDecoder: true,
		}
	} else {
		cfg = climate.PaperConfig()
		cfg.Size = size
	}
	net := climate.BuildNet(cfg, rng)
	ds := climate.GenerateDataset(climate.DefaultGenConfig(size), batch, rng)
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = i
	}
	x, boxes := ds.Batch(idx)
	w := climate.DefaultLossWeights()

	// The climate net is not a single Sequential, so time it as one unit
	// per component group via the encoder/decoder networks' own hooks.
	pass := func() []nn.LayerTiming {
		net.ZeroGrad()
		feat, encT := net.Encoder.ForwardTimed(x, true)
		headStart := time.Now()
		out := climate.Output{
			Feat:  feat,
			Conf:  net.ConfHead.Forward(feat, true),
			Class: net.ClassHead.Forward(feat, true),
			BoxP:  net.BoxHead.Forward(feat, true),
		}
		var decT []nn.LayerTiming
		if net.Decoder != nil {
			out.Recon, decT = net.Decoder.ForwardTimed(feat, true)
		}
		headDur := time.Since(headStart)
		parts, grads := net.Loss(out, x, boxes, nil, w)
		_ = parts
		dfeat := tensor.New(feat.Shape...)
		t0 := time.Now()
		tensor.Axpy(1, net.ConfHead.Backward(grads.Conf).Data, dfeat.Data)
		tensor.Axpy(1, net.ClassHead.Backward(grads.Class).Data, dfeat.Data)
		tensor.Axpy(1, net.BoxHead.Backward(grads.BoxP).Data, dfeat.Data)
		headDur += time.Since(t0)
		if grads.Recon != nil {
			dFromDec := net.Decoder.BackwardTimed(grads.Recon, decT)
			tensor.Axpy(1, dFromDec.Data, dfeat.Data)
		}
		net.Encoder.BackwardTimed(dfeat, encT)
		timings := append(append([]nn.LayerTiming{}, encT...),
			nn.LayerTiming{Name: "score_heads", Fwd: headDur})
		timings = append(timings, decT...)
		return timings
	}
	rows, total := measureNet(pass, climateFlopRows(net), batch)

	solver := opt.NewSGD(0.01, 0.9)
	solver.Step(net.Params())
	t0 := time.Now()
	solver.Step(net.Params())
	solverDur := time.Since(t0)

	per := climate.NumChannels * size * size
	ioDur := measureShardIO(x.Data, batch, per)
	extras := []layerRow{
		{name: "solver (SGD+mom)", dur: solverDur},
		{name: "I/O (shard read)", dur: ioDur},
	}
	return fmt.Sprintf("(input %dx%dx16, batch %d, %s)\n", size, size, batch, cfg.Name) +
		renderBreakdown(rows, total, extras)
}

// climateFlopRows aligns flop accounting with the timing rows produced by
// the climate pass: encoder layers, one merged score-head row, decoder.
func climateFlopRows(net *climate.Net) []nn.LayerFlop {
	rows := net.Encoder.FLOPBreakdown()
	all := net.FLOPBreakdown()
	var heads nn.LayerFlop
	heads.Name = "score_heads"
	for _, r := range all {
		if r.Name == "head_conf" || r.Name == "head_class" || r.Name == "head_box" {
			heads.Count = heads.Count.Add(r.Count)
			heads.Bytes += r.Bytes
		}
	}
	rows = append(rows, heads)
	if net.Decoder != nil {
		rows = append(rows, net.Decoder.FLOPBreakdown()...)
	}
	return rows
}

// measureShardIO writes the batch to a shard file and measures reading it
// back — the honest stand-in for the paper's single-threaded HDF5 input
// path (§VI-A's I/O component).
func measureShardIO(features []float32, count, featLen int) time.Duration {
	dir, err := os.MkdirTemp("", "d15p-io")
	if err != nil {
		return 0
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "batch.shard")
	if err := data.WriteShard(path, count, featLen, 0, features, nil); err != nil {
		return 0
	}
	r, err := data.OpenShard(path)
	if err != nil {
		return 0
	}
	defer r.Close()
	buf := make([]float32, count*featLen)
	idx := make([]int, count)
	for i := range idx {
		idx[i] = i
	}
	_ = r.ReadBatch(idx, buf, nil) // warm the page cache
	t0 := time.Now()
	if err := r.ReadBatch(idx, buf, nil); err != nil {
		return 0
	}
	return time.Since(t0)
}
