package harness

import (
	"math"
	"strings"
	"testing"

	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/obs"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

func TestTimelineReport(t *testing.T) {
	r := Timeline(testOpts())
	for _, want := range []string{"straggler skew:", "Fwd", "Bwd", "OptApply", "overlap"} {
		if !strings.Contains(r.Body, want) {
			t.Fatalf("timeline missing %q:\n%s", want, r.Body)
		}
	}
}

// TestSimStragglersPinned: the harness straggler scenario runs on the
// deterministic cluster model, so the report is a pure function of the
// seed — the same call must reproduce it bit for bit, the slowed window
// must own the worst iteration, and every iteration must see both lanes.
func TestSimStragglersPinned(t *testing.T) {
	rep := SimStragglers(testOpts())
	if len(rep.Iters) != 8 {
		t.Fatalf("report covers %d iters, want 8", len(rep.Iters))
	}
	for _, it := range rep.Iters {
		if it.Lanes != 2 {
			t.Fatalf("iter %d saw %d lanes, want 2", it.Iter, it.Lanes)
		}
	}
	if rep.WorstIter != 3 && rep.WorstIter != 4 {
		t.Errorf("worst iter = %d, want the 3x-slowdown window (3 or 4)", rep.WorstIter)
	}
	if rep.MaxSkew <= 0 || rep.MeanSkew <= 0 || rep.MaxSkew < rep.MeanSkew {
		t.Errorf("degenerate skew stats: %+v", rep)
	}
	again := SimStragglers(testOpts())
	if rep.MaxSkew != again.MaxSkew || rep.MeanSkew != again.MeanSkew || rep.WorstIter != again.WorstIter {
		t.Fatalf("straggler report not deterministic:\n%v\nvs\n%v", rep, again)
	}
}

// TestSpanOverlapMatchesPipelineTimers: the span-derived ingest account
// must agree with the pipeline's own timers — the spans wrap exactly the
// staging and waiting regions the timers measure, so staged and exposed
// seconds track each other and both overlap fractions land together.
// This is the assertion that lets spans replace the hand-threaded timers.
func TestSpanOverlapMatchesPipelineTimers(t *testing.T) {
	rng := tensor.NewRNG(7)
	cfg := hep.ModelConfig{Name: "overlap-x", ImageSize: 16, Filters: 8, ConvUnits: 2, Classes: 2}
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), 48, 0.5, rng)
	problem := hep.NewTrainingProblem(ds, cfg, 3)
	tr := obs.NewTracer(0)
	res := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 8, Iterations: 12,
		Solver: opt.NewSGD(0.02, 0.9), Seed: 42, Prefetch: 1, Trace: tr,
	})
	o := IngestOverlapFromSpans(tr.Snapshot())
	st := res.Ingest
	if o.StagedSeconds <= 0 || st.StageSeconds <= 0 {
		t.Fatalf("no staging recorded: spans %+v timers %+v", o, st)
	}
	// Loose relative tolerance: the span and the timer bracket the same
	// code region but not the same instructions, and a scheduler
	// preemption can land between them.
	relClose := func(a, b float64) bool {
		diff := math.Abs(a - b)
		scale := math.Max(math.Max(a, b), 2e-3) // 2ms absolute floor
		return diff <= 0.5*scale
	}
	if !relClose(o.StagedSeconds, st.StageSeconds) {
		t.Errorf("staged seconds diverge: spans %.4f vs timers %.4f", o.StagedSeconds, st.StageSeconds)
	}
	if !relClose(o.ExposedSeconds, st.WaitSeconds) {
		t.Errorf("exposed seconds diverge: spans %.4f vs timers %.4f", o.ExposedSeconds, st.WaitSeconds)
	}
	if math.Abs(o.Overlap()-st.Overlap()) > 0.35 {
		t.Errorf("overlap fractions diverge: spans %.2f vs timers %.2f", o.Overlap(), st.Overlap())
	}
	if o.HiddenSeconds < 0 || o.HiddenSeconds > o.StagedSeconds+1e-9 {
		t.Errorf("hidden %.4f outside [0, staged %.4f]", o.HiddenSeconds, o.StagedSeconds)
	}
}
