package harness

import (
	"fmt"
	"os"
	"strings"

	"deep15pf/internal/cluster"
	"deep15pf/internal/core"
	"deep15pf/internal/data"
	"deep15pf/internal/hep"
	"deep15pf/internal/obs"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// Timeline reproduces the per-worker phase breakdown from recorded spans
// rather than hand-threaded timers: a traced shard-backed HEP run yields
// the per-phase time table and the span-derived ingest-overlap fraction
// (cross-checked against the pipeline's own timer accounting), and the
// calibrated cluster model yields a deterministic per-iteration
// straggler-skew report under an injected slowdown — the §VIII-A
// observation as a table instead of an anecdote.
func Timeline(opts Options) Report {
	body := "Traced run (shard-backed HEP, prefetch=1): per-phase seconds from spans\n"
	tl, err := traceHEPRun(opts)
	if err != nil {
		body += "(traced run unavailable: " + err.Error() + ")\n"
	} else {
		body += tl
	}
	body += "\nModelled straggler skew (16 nodes, 2 groups, 3x slowdown on group 0, iters 3-4)\n"
	body += SimStragglers(opts).String()
	body += "\nSkew is per-iteration max-min compute seconds across group lanes; the slowed\n" +
		"window dominates, and outside it the skew collapses to the jitter floor — the\n" +
		"signature the paper's synchronous configurations are sized to avoid.\n"
	return Report{ID: "timeline", Title: "Phase timeline and straggler report (from spans)", Body: body}
}

// SimStragglers runs the deterministic DES straggler scenario and reports
// the span-derived skew. Split out so tests can pin the exact report.
func SimStragglers(opts Options) obs.StragglerReport {
	tr := obs.NewTracer(0)
	cluster.Simulate(cluster.CoriPhaseII(), cluster.HEPProfile(), cluster.RunConfig{
		Nodes: 16, Groups: 2, BatchPerGroup: 64, Iterations: 8, Seed: opts.Seed,
		Trace:   tr,
		Failure: &cluster.FailureSpec{Group: 0, StartIter: 3, Duration: 2, Slowdown: 3},
	})
	return obs.Stragglers(tr.Snapshot())
}

// TraceOverlap is the span-derived ingest accounting for one traced run:
// staging work on the prefetch lanes, the exposed wait on the worker
// lanes, and the staging seconds that ran concurrently with compute
// (merged-interval overlap). Fractions follow data.IngestStats.Overlap's
// convention: 1 - exposed/staged, clamped to [0,1].
type TraceOverlap struct {
	StagedSeconds  float64
	ExposedSeconds float64
	HiddenSeconds  float64
}

// Overlap returns the span-derived overlap fraction.
func (o TraceOverlap) Overlap() float64 {
	if o.StagedSeconds <= 0 {
		return 0
	}
	f := 1 - o.ExposedSeconds/o.StagedSeconds
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// IngestOverlapFromSpans computes the ingest A/B numbers from a traced
// run's spans. Staging lives on the ".ingest" sub-lanes; the exposed wait
// is the Ingest phase on the worker lanes themselves. HiddenSeconds uses
// obs.OverlapSeconds between staging intervals and compute intervals,
// with worker-lane Ingest spans filtered out so the two predicates
// partition cleanly.
func IngestOverlapFromSpans(lanes []obs.LaneSpans) TraceOverlap {
	var o TraceOverlap
	filtered := make([]obs.LaneSpans, 0, len(lanes))
	for _, ls := range lanes {
		if strings.HasSuffix(ls.Name, ".ingest") {
			o.StagedSeconds += phaseSecondsOf(ls, obs.PhaseIngest)
			filtered = append(filtered, ls)
			continue
		}
		o.ExposedSeconds += phaseSecondsOf(ls, obs.PhaseIngest)
		kept := obs.LaneSpans{Name: ls.Name}
		for _, sp := range ls.Spans {
			if sp.Phase != obs.PhaseIngest {
				kept.Spans = append(kept.Spans, sp)
			}
		}
		filtered = append(filtered, kept)
	}
	o.HiddenSeconds = obs.OverlapSeconds(filtered,
		func(p obs.Phase) bool { return p == obs.PhaseIngest },
		func(p obs.Phase) bool { return p == obs.PhaseFwd || p == obs.PhaseBwd })
	return o
}

func phaseSecondsOf(ls obs.LaneSpans, p obs.Phase) float64 {
	var s float64
	for _, sp := range ls.Spans {
		if sp.Phase == p {
			s += sp.Seconds()
		}
	}
	return s
}

// traceHEPRun trains the fig5 shard-backed HEP problem once with tracing
// and prefetch on, and renders the per-phase table plus the overlap
// cross-check (spans vs the pipeline's timers).
func traceHEPRun(opts Options) (string, error) {
	size, events, iters, batch := 32, 96, 24, 8
	if opts.Quick {
		size, events, iters = 16, 48, 16
	}
	rng := tensor.NewRNG(opts.Seed + 2)
	cfg := hep.ModelConfig{Name: "timeline", ImageSize: size, Filters: 8, ConvUnits: 3, Classes: 2}
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(size), events, 0.5, rng)

	dir, err := os.MkdirTemp("", "d15p-timeline")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)
	paths, err := ds.SaveShards(dir, 4)
	if err != nil {
		return "", err
	}
	set, err := data.OpenShardSet(paths...)
	if err != nil {
		return "", err
	}
	defer set.Close()

	problem := hep.NewTrainingProblem(ds, cfg, opts.Seed+3)
	problem.Backing = set
	tr := obs.NewTracer(0)
	res := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: batch, Iterations: iters,
		Solver: opt.NewSGD(0.02, 0.9), Seed: opts.Seed, Prefetch: 1, Trace: tr,
	})
	snap := tr.Snapshot()

	t := newTable("phase", "seconds", "share")
	phases := obs.PhaseSeconds(snap)
	var total float64
	for _, s := range phases {
		total += s
	}
	for p, s := range phases {
		if s == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * s / total
		}
		t.addf("%s|%.4f|%.1f%%", obs.Phase(p), s, share)
	}
	o := IngestOverlapFromSpans(snap)
	out := t.String()
	out += fmt.Sprintf("ingest from spans: staged %.1f ms, exposed %.1f ms, hidden-behind-compute %.1f ms -> overlap %.0f%%\n",
		o.StagedSeconds*1e3, o.ExposedSeconds*1e3, o.HiddenSeconds*1e3, 100*o.Overlap())
	out += fmt.Sprintf("pipeline timers:   staged %.1f ms, exposed %.1f ms -> overlap %.0f%% (cross-check)\n",
		res.Ingest.StageSeconds*1e3, res.Ingest.WaitSeconds*1e3, 100*res.Ingest.Overlap())
	return out, nil
}
