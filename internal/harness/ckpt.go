package harness

import (
	"fmt"
	"os"
	"strings"

	"deep15pf/internal/ckpt"
	"deep15pf/internal/cluster"
	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// Checkpoint is the §V checkpoint-cost study plus the resume-identity
// demonstration behind PR 5's store:
//
//   - modelled: the climate configuration snapshots once per 10
//     iterations ("in some iterations, a checkpointing is performed...");
//     the table compares the synchronous writer (whole flush on the
//     critical path, as the paper ran) with the async double-buffered
//     writer, at several node counts — the exposed-write reduction is the
//     study's figure of merit;
//   - measured: a real TrainSync run checkpoints at its midpoint into a
//     ckpt store, a fresh run resumes from it, and the final-weight FNV
//     fingerprints of the resumed and uninterrupted runs are compared —
//     bit-exact resume, demonstrated end to end through the real files.
func Checkpoint(opts Options) Report {
	m := cluster.CoriPhaseII()
	p := cluster.ClimateProfile()
	iters := 4 * scalingIters(opts)

	var b strings.Builder
	t := newTable("filesystem", "nodes", "ckpt write/run", "exposed (sync)", "exposed (async)", "hidden")
	// Strong-scaling shape (fixed global batch): per-node compute shrinks
	// with node count, narrowing the window the background write hides in.
	// The "shared FS" rows divide the checkpoint bandwidth by 50 — the
	// contended-parallel-filesystem regime where even the async writer
	// cannot hide everything, so the exposed remainder is honest, not a
	// constant zero.
	for _, fs := range []struct {
		label string
		bw    float64
	}{{"burst buffer", m.CheckpointBandwidth}, {"shared FS", m.CheckpointBandwidth / 50}} {
		mc := m
		mc.CheckpointBandwidth = fs.bw
		for _, nodes := range []int{256, 4096} {
			base := cluster.RunConfig{
				Nodes: nodes, Groups: 1, BatchPerGroup: 8192, Iterations: iters,
				Seed: opts.Seed, CheckpointEvery: 10,
			}
			sync := cluster.Simulate(mc, p, base)
			async := base
			async.AsyncCheckpoint = true
			over := cluster.Simulate(mc, p, async)
			hidden := 0.0
			if sync.ExposedCkptSeconds > 0 {
				hidden = 1 - over.ExposedCkptSeconds/sync.ExposedCkptSeconds
			}
			t.addf("%s|%d|%.2fs|%.2fs|%.2fs|%.0f%%",
				fs.label, nodes, sync.CkptSeconds, sync.ExposedCkptSeconds, over.ExposedCkptSeconds, 100*hidden)
		}
	}
	b.WriteString("Climate snapshot cadence 1-in-10 (§V); async = double-buffered background writer.\n")
	b.WriteString(t.String())

	// Measured resume identity on a real (scaled-down) HEP training run.
	dir, err := os.MkdirTemp("", "d15-ckpt-study")
	if err != nil {
		return Report{ID: "checkpoint", Title: "Checkpoint store (§V)", Body: b.String() + "\n(resume study skipped: " + err.Error() + ")\n"}
	}
	defer os.RemoveAll(dir)
	rng := tensor.NewRNG(opts.Seed)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), 48, 0.5, rng)
	cfg := hep.ModelConfig{Name: "ckpt-study", ImageSize: 16, Filters: 6, ConvUnits: 3, Classes: 2}
	problem := hep.NewTrainingProblem(ds, cfg, opts.Seed+1)
	total, half := 10, 5

	straight := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: total,
		Solver: opt.NewAdam(2e-3), Seed: opts.Seed, Overlap: true, Prefetch: 1})
	core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: half,
		Solver: opt.NewAdam(2e-3), Seed: opts.Seed, Overlap: true, Prefetch: 1,
		Checkpoint: core.CheckpointConfig{Dir: dir, Every: half, Async: true, Arch: cfg.Name}})
	resumed := core.TrainSync(problem, core.Config{
		Groups: 1, WorkersPerGroup: 2, GroupBatch: 16, Iterations: total,
		Solver: opt.NewAdam(2e-3), Seed: opts.Seed, Overlap: true, Prefetch: 1,
		Checkpoint: core.CheckpointConfig{Dir: dir, Resume: true, Arch: cfg.Name}})

	fpStraight := ckpt.FingerprintWeights(straight.FinalWeights)
	fpResumed := ckpt.FingerprintWeights(resumed.FinalWeights)
	verdict := "bit-exact"
	if fpStraight != fpResumed {
		verdict = "DIVERGED"
	}
	fmt.Fprintf(&b, "\nResume identity (real run, ADAM, overlap+prefetch on): train %d straight vs train %d,\n"+
		"snapshot, resume to %d — fingerprints %016x vs %016x: %s.\n",
		total, half, total, fpStraight, fpResumed, verdict)
	return Report{ID: "checkpoint", Title: "Checkpoint store and continuous deployment (§V)", Body: b.String()}
}
