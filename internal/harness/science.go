package harness

import (
	"fmt"
	"strings"

	"deep15pf/internal/climate"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// HEPScience reproduces §VII-A: the CNN's signal efficiency at the
// cut-based baseline's (very low) false-positive rate. Paper numbers:
// baseline TPR 42% @ FPR 0.02%; CNN 72% at the same FPR — a 1.7x
// improvement (1.3x for the reduced-tuning full-system run). Our synthetic
// sample is smaller, so the baseline FPR floor is higher, but the
// comparison at the baseline's own operating point is the same experiment.
func HEPScience(opts Options) Report {
	trainN, testN, iters, batch := 1536, 3072, 220, 64
	if opts.Quick {
		trainN, testN, iters, batch = 512, 1024, 90, 32
	}
	imgSize := 16

	rng := tensor.NewRNG(opts.Seed + 7)
	gen := hep.DefaultGenConfig()
	r := hep.NewRenderer(imgSize)
	train := hep.GenerateDataset(gen, r, trainN, 0.5, rng)
	test := hep.GenerateDataset(gen, r, testN, 0.5, rng)

	model := hep.ModelConfig{Name: "hep-sci", ImageSize: imgSize, Filters: 8, ConvUnits: 3, Classes: 2}
	problem := hep.NewTrainingProblem(train, model, opts.Seed+17)
	rep := problem.NewReplica()
	src := problem.NewBatchSource(opts.Seed + 23)
	solver := opt.NewAdam(2e-3)
	var lastLoss float64
	for it := 0; it < iters; it++ {
		idx := src.Next(batch)
		rep.ZeroGrad()
		lastLoss = rep.ComputeGradients(idx)
		for _, l := range rep.TrainableLayers() {
			solver.Step(l.Params())
		}
	}

	scores := hep.ScoreDataset(rep, test, 64)
	res := hep.CompareToBaseline(hep.DefaultBaseline(), test.Events, scores, test.Labels)

	t := newTable("selection", "TPR", "at FPR", "improvement")
	t.addf("baseline cuts (paper)|42%%|0.02%%|1.0x")
	t.addf("CNN (paper, tuned)|72%%|0.02%%|1.7x")
	t.addf("CNN (paper, at-scale run)|~55%%|0.02%%|1.3x")
	t.addf("baseline cuts (ours)|%.1f%%|%.3f%%|1.0x", 100*res.BaselineTPR, 100*res.BaselineFPR)
	t.addf("CNN (ours)|%.1f%%|%.3f%%|%.2fx", 100*res.CNNTPRAtBaselineFPR, 100*res.BaselineFPR, res.Improvement)

	body := t.String() + fmt.Sprintf(
		"\nTest sample: %d events (50%% signal); CNN AUC %.3f; final training loss %.3f.\n"+
			"The reproduced claim is the *shape*: classification on low-level detector images beats\n"+
			"selections on high-level physics features at the baseline's own operating point.\n",
		testN, res.AUC, lastLoss)
	return Report{ID: "hepscience", Title: "HEP science result (§VII-A)", Body: body}
}

// ClimateScience reproduces §VII-B / Fig 9: the semi-supervised detector's
// bounding boxes at confidence > 0.8 against ground truth, with an ASCII
// analogue of Fig 9 and detection metrics the paper was still developing
// ("we are working on generating additional metrics").
func ClimateScience(opts Options) Report {
	trainN, testN, iters, batch := 192, 48, 260, 8
	if opts.Quick {
		trainN, testN, iters, batch = 96, 24, 120, 8
	}
	size := 48

	rng := tensor.NewRNG(opts.Seed + 31)
	gen := climate.DefaultGenConfig(size)
	train := climate.GenerateDataset(gen, trainN, rng)
	test := climate.GenerateDataset(gen, testN, rng)

	model := climate.ModelConfig{
		Name: "clim-sci", Size: size,
		EncChannels: []int{12, 16, 24, 32, 32},
		EncStrides:  []int{2, 2, 2, 2, 1},
		DecChannels: []int{24, 16, 12, climate.NumChannels},
		WithDecoder: true,
	}
	problem := climate.NewTrainingProblem(train, model, opts.Seed+37)
	rep := problem.NewReplica()
	src := problem.NewBatchSource(opts.Seed + 41)
	solver := opt.NewAdam(1.5e-3)
	var lastLoss float64
	for it := 0; it < iters; it++ {
		idx := src.Next(batch)
		rep.ZeroGrad()
		lastLoss = rep.ComputeGradients(idx)
		for _, l := range rep.TrainableLayers() {
			solver.Step(l.Params())
		}
	}
	net := problem.Net(rep)

	// Evaluate at the paper's inference threshold (>0.8) and a softer one.
	var b strings.Builder
	t := newTable("confidence", "precision", "recall", "mean IoU", "TP", "FP", "FN")
	var sampleDets []climate.Detection
	for _, conf := range []float64{0.8, 0.5} {
		var agg climate.MatchResult
		for i, s := range test.Samples {
			x, _ := test.Batch([]int{i})
			dets := net.Detect(x, conf, 0.4)[0]
			if conf == 0.8 && i == 0 {
				sampleDets = dets
			}
			agg = agg.Add(climate.Match(dets, s.Boxes, 0.35))
		}
		t.addf(">%.1f|%.2f|%.2f|%.2f|%d|%d|%d", conf,
			agg.Precision(), agg.Recall(), agg.MeanIoU,
			agg.TruePositives, agg.FalsePositives, agg.FalseNegatives)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nFinal training loss %.3f over %d snapshots (%d test).\n", lastLoss, trainN, testN)
	b.WriteString("\nFig 9 analogue — first test snapshot, TMQ channel, boxes at confidence > 0.8:\n")
	b.WriteString(climate.RenderASCII(test.Samples[0], sampleDets, 64))
	b.WriteString("\nPaper: \"the architecture does a good job of localizing and identifying tropical\n" +
		"cyclones\" (qualitative; no published benchmark existed for this task).\n")
	return Report{ID: "fig9", Title: "Climate science result (§VII-B, Fig 9)", Body: b.String()}
}

// Ablations exercises the design choices DESIGN.md calls out: per-layer
// parameter servers vs a single PS (§III-E), MLSL endpoints on/off
// (§III-D), momentum tuning under asynchrony (§VI-B4 / [31]), and
// semi-supervised vs supervised-only climate training (§III-B).
func Ablations(opts Options) Report {
	var b strings.Builder
	b.WriteString(ablationPS(opts))
	b.WriteString("\n")
	b.WriteString(ablationEndpoints(opts))
	b.WriteString("\n")
	b.WriteString(ablationMomentum(opts))
	b.WriteString("\n")
	b.WriteString(ablationSemiSup(opts))
	return Report{ID: "ablations", Title: "Design-choice ablations", Body: b.String()}
}
