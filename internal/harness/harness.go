// Package harness regenerates every table and figure of the paper's
// evaluation: Table I–II, Fig 5 (single-node breakdown), Fig 6 (strong
// scaling), Fig 7 (weak scaling), Fig 8 (time to train), the §VI-B3
// full-system runs, the §VII science results, the §VIII-A resilience
// observations, and the design-choice ablations. Each generator returns a
// text report pairing the paper's published value with our measured or
// simulated value; cmd/repro writes the collection to EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"
)

// Options scales the experiments. Quick mode keeps every experiment inside
// a CI-friendly budget (reduced spatial sizes, fewer iterations); Full mode
// (cmd/repro -full) uses paper-sized networks where the host can afford it.
type Options struct {
	Quick bool
	Seed  uint64
}

// DefaultOptions returns the quick configuration used by tests and the
// default cmd/repro run.
func DefaultOptions() Options {
	return Options{Quick: true, Seed: 42}
}

// Report is one experiment's rendered result.
type Report struct {
	ID    string // e.g. "fig6a"
	Title string
	Body  string
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n%s\n", r.ID, r.Title, r.Body)
	return b.String()
}

// table renders rows as an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table {
	return &table{header: header}
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) addf(format string, args ...any) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "|"))
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func mib(bytes int64) float64 { return float64(bytes) / (1 << 20) }
func tb(bytes int64) float64  { return float64(bytes) / 1e12 }
