package harness

import (
	"fmt"

	"deep15pf/internal/climate"
	"deep15pf/internal/data"
	"deep15pf/internal/hep"
	"deep15pf/internal/tensor"
)

// Table1 reproduces Table I: characteristics of the datasets. Sample
// counts and resolutions are the paper's; volumes are recomputed from
// shape × count × 4 bytes, and the generators are exercised to show the
// stated shapes are what we actually produce.
func Table1(opts Options) Report {
	t := newTable("dataset", "pixels", "channels", "#images", "volume (paper)", "volume (raw float32)")

	hepVol := data.VolumeBytes(10_000_000, 3, 228, 228)
	climVol := data.VolumeBytes(400_000, 16, 768, 768)
	t.addf("HEP|228x228|3|10M|7.4 TB|%.1f TB", tb(hepVol))
	t.addf("Climate|768x768|16|0.4M|15 TB|%.1f TB", tb(climVol))

	// Demonstrate the generators produce the claimed shapes (at reduced
	// count; full-volume generation is pointless on one host).
	rng := tensor.NewRNG(opts.Seed)
	hepDS := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(32), 4, 0.5, rng)
	climDS := climate.GenerateDataset(climate.DefaultGenConfig(64), 2, rng)
	body := t.String() + fmt.Sprintf(
		"\nGenerator check: HEP sample shape %v, climate sample shape %v (scaled-down spatial sizes;\n"+
			"channel counts and layouts match Table I — the paper's raw volumes include file-format overhead).\n",
		hepDS.Images.Shape[1:], climDS.Samples[0].Field.Shape)
	return Report{ID: "table1", Title: "Dataset characteristics (Table I)", Body: body}
}

// Table2 reproduces Table II: DNN architecture specifications, with the
// parameter sizes measured from the real model definitions.
func Table2(opts Options) Report {
	rng := tensor.NewRNG(opts.Seed)
	hepNet := hep.BuildNet(hep.PaperConfig(), rng)
	climNet := climate.BuildNet(climate.PaperConfig(), rng)

	t := newTable("architecture", "input", "layers", "output", "params (paper)", "params (ours)")
	t.addf("Supervised HEP|224x224x3|5xconv-pool, 1xFC|class probability|2.3 MiB|%.2f MiB",
		mib(hepNet.ParamBytes()))
	t.addf("Semi-sup climate|768x768x16|9xconv, 5xdeconv|boxes, class, confidence|302.1 MiB|%.2f MiB",
		mib(climNet.ParamBytes()))

	body := t.String() + fmt.Sprintf(
		"\nTrainable layers: HEP %d (paper used 6 parameter servers), climate %d (paper used 14).\n"+
			"HEP parameter count %d; climate %d. Mid-network HEP conv layer model ≈ %.0f KB\n"+
			"(§VI-B2 cites ~590 KB as the per-layer allreduce payload).\n",
		len(hepNet.TrainableLayers()), len(climNet.TrainableLayers()),
		hepNet.NumParams(), climNet.NumParams(),
		float64(hepNet.FLOPBreakdown()[3].Bytes)/1000)
	return Report{ID: "table2", Title: "DNN architectures (Table II)", Body: body}
}
