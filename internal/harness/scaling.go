package harness

import (
	"fmt"
	"strings"

	"deep15pf/internal/cluster"
)

func scalingIters(opts Options) int {
	if opts.Quick {
		return 8
	}
	return 24
}

// Fig6 reproduces the strong-scaling study (Figs 6a/6b): batch 2048 per
// update step (per group for hybrid configurations), 1–1024 nodes, on the
// simulated Cori Phase II machine.
func Fig6(opts Options) Report {
	m := cluster.CoriPhaseII()
	iters := scalingIters(opts)
	nodes := []int{1, 64, 128, 256, 512, 1024}

	var b strings.Builder
	render := func(name string, p cluster.NetProfile, paperNote string) {
		fmt.Fprintf(&b, "%s (batch 2048 per group)\n", name)
		t := newTable(append([]string{"config"}, nodeHeaders(nodes)...)...)
		for _, g := range []int{1, 2, 4} {
			pts := cluster.StrongScaling(m, p, nodes, g, 2048, iters, opts.Seed)
			t.add(append([]string{groupLabel(g)}, speedupCells(pts)...)...)
		}
		b.WriteString(t.String())
		fmt.Fprintf(&b, "Paper: %s\n\n", paperNote)
	}
	render("HEP (Fig 6a)", cluster.HEPProfile(),
		"sync does not scale past 256 (1024 worse than 256); hybrid-2 saturates ~280x beyond 512; hybrid-4 ~580x at 1024")
	render("Climate (Fig 6b)", cluster.ClimateProfile(),
		"sync peaks at 320x @512 and stops scaling; hybrid-2 580x and hybrid-4 780x at 1024")
	return Report{ID: "fig6", Title: "Strong scaling, sync vs hybrid (Fig 6)", Body: b.String()}
}

// Fig7 reproduces the weak-scaling study (Figs 7a/7b): batch 8 per node,
// 1–2048 nodes.
func Fig7(opts Options) Report {
	m := cluster.CoriPhaseII()
	iters := scalingIters(opts)
	nodes := []int{1, 256, 512, 1024, 2048}

	var b strings.Builder
	render := func(name string, p cluster.NetProfile, groups []int, paperNote string) {
		fmt.Fprintf(&b, "%s (batch 8 per node)\n", name)
		t := newTable(append([]string{"config"}, nodeHeaders(nodes)...)...)
		for _, g := range groups {
			pts := cluster.WeakScaling(m, p, nodes, g, 8, iters, opts.Seed)
			t.add(append([]string{groupLabel(g)}, speedupCells(pts)...)...)
		}
		b.WriteString(t.String())
		fmt.Fprintf(&b, "Paper: %s\n\n", paperNote)
	}
	render("HEP (Fig 7a)", cluster.HEPProfile(), []int{1, 2, 4, 8},
		"sublinear: 575-750x @1024; sync ~1500x and hybrid 1150-1250x @2048 (12 ms layers feel the message jitter; PS round-trips cost extra)")
	render("Climate (Fig 7b)", cluster.ClimateProfile(), []int{1, 4, 8},
		"near-linear: sync 1750x, hybrid ~1850x @2048 (300 ms layers hide jitter; hybrid's smaller sync domains reduce stragglers)")
	return Report{ID: "fig7", Title: "Weak scaling, sync vs hybrid (Fig 7)", Body: b.String()}
}

// FullSystem reproduces §VI-B3: the ~9600-node runs.
func FullSystem(opts Options) Report {
	m := cluster.CoriPhaseII()
	iters := scalingIters(opts)

	hep := cluster.FullSystem(m, cluster.HEPProfile(), 9594, 9, 1066, 2*iters, 0, opts.Seed)
	clim := cluster.FullSystem(m, cluster.ClimateProfile(), 9608, 8, 9608, iters, 10, opts.Seed)

	t := newTable("run", "nodes", "groups", "batch/group", "peak", "sustained", "speedup", "iter time")
	t.addf("HEP (paper)|9594+6|9|1066|11.73 PF|11.41 PF|6173x|~106 ms")
	t.addf("HEP (ours)|%d+%d|%d|%d|%.2f PF (exec %.2f)|%.2f PF (exec %.2f)|%.0fx|%.0f ms",
		hep.ComputeNodes, hep.PSNodes, hep.Groups, hep.BatchPerGroup,
		hep.PeakFlops/1e15, hep.ExecPeak/1e15, hep.SustainedFlops/1e15, hep.ExecSustained/1e15,
		hep.Speedup, hep.MeanIterTime*1e3)
	t.addf("Climate (paper)|9608+14|8|9608|15.07 PF|13.27 PF|7205x|12.16 s")
	t.addf("Climate (ours)|%d+%d|%d|%d|%.2f PF (exec %.2f)|%.2f PF (exec %.2f)|%.0fx|%.2f s",
		clim.ComputeNodes, clim.PSNodes, clim.Groups, clim.BatchPerGroup,
		clim.PeakFlops/1e15, clim.ExecPeak/1e15, clim.SustainedFlops/1e15, clim.ExecSustained/1e15,
		clim.Speedup, clim.MeanIterTime)

	body := t.String() + "\nNotes: speedups (the hardware-efficiency claim) reproduce within ~15%. Absolute\n" +
		"flop rates are counted on OUR architectures' algorithmic flops (plus an AVX-512\n" +
		"lane-padding estimate, 'exec'); the paper's SDE-counted per-image flops are ~8x our\n" +
		"algorithmic count for HEP (11.41 PF × 0.106 s ÷ 9594 images ≈ 126 GF/image vs our\n" +
		"15.8 GF), so HEP absolute PF/s are not comparable. The climate run lands at the same\n" +
		"multi-PF scale as the paper's 15.07 PF headline.\n"
	return Report{ID: "fullsystem", Title: "Full-system runs at ~9600 nodes (§VI-B3)", Body: body}
}

// Resilience reproduces §VIII-A: a dead node kills a synchronous run but
// costs a hybrid run only one group, plus the straggler-slowdown variant.
func Resilience(opts Options) Report {
	m := cluster.CoriPhaseII()
	p := cluster.HEPProfile()
	iters := 2 * scalingIters(opts)

	var b strings.Builder
	t := newTable("config", "failure", "images completed", "vs healthy run")
	for _, g := range []int{1, 4, 8} {
		healthy := cluster.Simulate(m, p, cluster.RunConfig{
			Nodes: 1024, Groups: g, BatchPerGroup: 2048, Iterations: iters, Seed: opts.Seed,
		})
		dead := cluster.Simulate(m, p, cluster.RunConfig{
			Nodes: 1024, Groups: g, BatchPerGroup: 2048, Iterations: iters, Seed: opts.Seed,
			Failure: &cluster.FailureSpec{Group: 0, StartIter: iters / 2, Dead: true},
		})
		t.addf("%s|node dies at iter %d|%d/%d|%.0f%%",
			groupLabel(g), iters/2, dead.TotalImages, healthy.TotalImages,
			100*float64(dead.TotalImages)/float64(healthy.TotalImages))
	}
	b.WriteString(t.String())

	slow := cluster.Simulate(m, p, cluster.RunConfig{
		Nodes: 1024, Groups: 1, BatchPerGroup: 2048, Iterations: iters, Seed: opts.Seed,
		Failure: &cluster.FailureSpec{Group: 0, StartIter: iters / 2, Duration: iters / 4, Slowdown: 10},
	})
	healthy := cluster.Simulate(m, p, cluster.RunConfig{
		Nodes: 1024, Groups: 1, BatchPerGroup: 2048, Iterations: iters, Seed: opts.Seed,
	})
	fmt.Fprintf(&b, "\nStraggler variant: one node 10x slower for %d iterations stretches the sync run\n"+
		"%.2fx (%.1fs vs %.1fs) — the max-over-nodes barrier effect of §II-B1b.\n",
		iters/4, slow.WallTime/healthy.WallTime, slow.WallTime, healthy.WallTime)
	fmt.Fprintf(&b, "Paper: \"even a single node failure can cause complete failure of synchronous runs;\n"+
		"hybrid runs are much more resilient since only one of the compute groups gets affected.\"\n")
	return Report{ID: "resilience", Title: "Failure resilience (§VIII-A)", Body: b.String()}
}

func nodeHeaders(nodes []int) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = fmt.Sprintf("%d nodes", n)
	}
	return out
}

func speedupCells(pts []cluster.ScalePoint) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = fmt.Sprintf("%.0fx", p.Speedup)
	}
	return out
}

func groupLabel(g int) string {
	if g == 1 {
		return "synchronous"
	}
	return fmt.Sprintf("hybrid, %d groups", g)
}
