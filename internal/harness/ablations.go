package harness

import (
	"fmt"
	"strings"

	"deep15pf/internal/climate"
	"deep15pf/internal/cluster"
	"deep15pf/internal/core"
	"deep15pf/internal/hep"
	"deep15pf/internal/opt"
	"deep15pf/internal/tensor"
)

// ablationPS compares dedicated per-layer parameter servers (the paper's
// design, Fig 4) against one PS serving every layer.
func ablationPS(opts Options) string {
	m := cluster.CoriPhaseII()
	p := cluster.HEPProfile()
	iters := scalingIters(opts)
	base := cluster.RunConfig{Nodes: 512, Groups: 8, BatchPerGroup: 512, Iterations: iters, Seed: opts.Seed}
	perLayer := cluster.Simulate(m, p, base)
	sharedCfg := base
	sharedCfg.SinglePS = true
	shared := cluster.Simulate(m, p, sharedCfg)

	t := newTable("PS design", "PS nodes", "max PS utilization", "throughput", "iter time")
	t.addf("per-layer (paper)|%d|%.0f%%|%.0f img/s|%.0f ms",
		perLayer.PSNodes, 100*perLayer.PSMaxUtilization, perLayer.Throughput, perLayer.MeanIterTime()*1e3)
	t.addf("single shared|%d|%.0f%%|%.0f img/s|%.0f ms",
		shared.PSNodes, 100*shared.PSMaxUtilization, shared.Throughput, shared.MeanIterTime()*1e3)
	return "Per-layer vs shared parameter server (HEP, 512 nodes, 8 groups; §III-E)\n" +
		t.String() +
		"Paper: per-layer PSs exist \"to reduce the chances of PS saturation\".\n"
}

// ablationEndpoints quantifies MLSL's endpoint proxy threads (§III-D) via
// the weak-scaling throughput with and without the bandwidth boost.
func ablationEndpoints(opts Options) string {
	withEP := cluster.CoriPhaseII()
	withoutEP := cluster.CoriPhaseII()
	withoutEP.EndpointFactor = 1.0
	p := cluster.ClimateProfile() // 302 MiB model: bandwidth-sensitive
	iters := scalingIters(opts)
	cfg := cluster.RunConfig{Nodes: 512, Groups: 1, BatchPerGroup: 8 * 512, Iterations: iters, Seed: opts.Seed}
	a := cluster.Simulate(withEP, p, cfg)
	b := cluster.Simulate(withoutEP, p, cfg)

	// Direct collective-time comparison (endpoints are a bandwidth
	// optimisation, so measure the bandwidth-bound allreduce itself).
	r1 := tensor.NewRNG(opts.Seed)
	r2 := tensor.NewRNG(opts.Seed)
	var arWith, arWithout float64
	const trials = 50
	for i := 0; i < trials; i++ {
		arWith += withEP.AllReduceTime(r1, 512, p.TotalModelBytes)
		arWithout += withoutEP.AllReduceTime(r2, 512, p.TotalModelBytes)
	}
	arWith /= trials
	arWithout /= trials

	t := newTable("MLSL endpoints", "302 MiB allreduce", "iter time", "throughput")
	t.addf("enabled (paper)|%.1f ms|%.2f s|%.0f img/s", arWith*1e3, a.MeanIterTime(), a.Throughput)
	t.addf("disabled|%.1f ms|%.2f s|%.0f img/s", arWithout*1e3, b.MeanIterTime(), b.Throughput)
	return "MLSL endpoint proxy threads (climate sync, 512 nodes; §III-D)\n" + t.String() +
		fmt.Sprintf("Endpoints cut the full-model collective %.2fx (\"better utilization of network\n"+
			"bandwidth\"); the climate iteration is compute-dominated, so end-to-end gain is %.1f%%.\n",
			arWithout/arWith, 100*(a.Throughput/b.Throughput-1))
}

// ablationMomentum shows the asynchrony/momentum interaction: hybrid
// training with sync-style high momentum vs momentum tuned down per the
// implicit-momentum rule ([31]).
func ablationMomentum(opts Options) string {
	iters := 120
	dsN := 256
	if opts.Quick {
		iters, dsN = 80, 160
	}
	rng := tensor.NewRNG(opts.Seed + 51)
	ds := hep.GenerateDataset(hep.DefaultGenConfig(), hep.NewRenderer(16), dsN, 0.5, rng)
	model := hep.ModelConfig{Name: "abl-mu", ImageSize: 16, Filters: 6, ConvUnits: 3, Classes: 2}

	groups := 4
	run := func(mu float64) core.Result {
		problem := hep.NewTrainingProblem(ds, model, opts.Seed+53)
		var schedule []core.ScheduledEvent
		for it := 0; it < iters; it++ {
			for g := 0; g < groups; g++ {
				schedule = append(schedule, core.ScheduledEvent{Group: g, Time: float64(it*groups + g)})
			}
		}
		return core.TrainScheduled(problem, core.Config{
			Groups: groups, WorkersPerGroup: 1, GroupBatch: 16, Iterations: iters,
			Solver: opt.NewAdamFull(3e-3, mu, 0.999, 1e-8), Seed: opts.Seed,
		}, schedule)
	}
	high := run(0.9)
	tuned := run(opt.TuneMomentum(0.9, groups))

	t := newTable("explicit momentum", "effective (with async)", "best smoothed loss", "final loss")
	t.addf("0.9 (sync habit)|%.3f|%.4f|%.4f",
		opt.EffectiveMomentum(0.9, groups), smoothedMin(high), high.FinalLoss)
	t.addf("%.2f (tuned per [31])|%.3f|%.4f|%.4f",
		opt.TuneMomentum(0.9, groups), opt.EffectiveMomentum(opt.TuneMomentum(0.9, groups), groups),
		smoothedMin(tuned), tuned.FinalLoss)
	return fmt.Sprintf("Momentum tuning under asynchrony (HEP, %d groups; §VI-B4)\n", groups) +
		t.String() +
		"Asynchrony contributes implicit momentum ≈ 1−1/G; explicit momentum must come down.\n"
}

// ablationSemiSup compares the semi-supervised architecture against the
// supervised-only variant (decoder removed) at a low labeled fraction —
// the mechanism §III-B introduces the autoencoder for.
func ablationSemiSup(opts Options) string {
	trainN, testN, iters := 128, 32, 200
	if opts.Quick {
		trainN, testN, iters = 80, 24, 150
	}
	size := 48
	rng := tensor.NewRNG(opts.Seed + 61)
	gen := climate.DefaultGenConfig(size)
	train := climate.GenerateDataset(gen, trainN, rng)
	test := climate.GenerateDataset(gen, testN, rng)

	evalRecall := func(withDecoder bool) (climate.MatchResult, float64) {
		model := climate.ModelConfig{
			Name: "abl-semi", Size: size,
			EncChannels: []int{12, 16, 24, 32, 32},
			EncStrides:  []int{2, 2, 2, 2, 1},
			DecChannels: []int{24, 16, 12, climate.NumChannels},
			WithDecoder: withDecoder,
		}
		problem := climate.NewTrainingProblem(train, model, opts.Seed+67)
		problem.LabeledFrac = 0.25 // few labels, many unlabeled snapshots
		problem.Weights.Recon = 0.5
		rep := problem.NewReplica()
		src := problem.NewBatchSource(opts.Seed + 71)
		solver := opt.NewAdam(1.5e-3)
		var lastLoss float64
		for it := 0; it < iters; it++ {
			idx := src.Next(8)
			rep.ZeroGrad()
			lastLoss = rep.ComputeGradients(idx)
			for _, l := range rep.TrainableLayers() {
				solver.Step(l.Params())
			}
		}
		net := problem.Net(rep)
		var agg climate.MatchResult
		for i, s := range test.Samples {
			x, _ := test.Batch([]int{i})
			dets := net.Detect(x, 0.5, 0.4)[0]
			agg = agg.Add(climate.Match(dets, s.Boxes, 0.3))
		}
		return agg, lastLoss
	}
	semi, semiLoss := evalRecall(true)
	sup, supLoss := evalRecall(false)

	t := newTable("variant", "labeled", "recall", "precision", "final loss")
	t.addf("semi-supervised (enc+dec)|25%%|%.2f|%.2f|%.3f", semi.Recall(), semi.Precision(), semiLoss)
	t.addf("supervised only (no dec)|25%%|%.2f|%.2f|%.3f", sup.Recall(), sup.Precision(), supLoss)
	return "Semi-supervised vs supervised-only climate training (25% labels; §III-B)\n" + t.String() +
		"At this scaled-down setting the detection-metric difference is within run-to-run noise;\n" +
		"the architecture's role in the paper is enabling unlabeled data (and novel-pattern\n" +
		"discovery) at all, which the supervised-only variant simply cannot consume.\n"
}

// All runs every experiment and concatenates the reports in paper order.
func All(opts Options) string {
	reports := []Report{
		Table1(opts), Table2(opts), Fig5(opts),
		Fig6(opts), Fig7(opts), FullSystem(opts),
		Fig8(opts), HEPScience(opts), ClimateScience(opts),
		Resilience(opts), Ablations(opts), Checkpoint(opts),
		Timeline(opts),
	}
	var b strings.Builder
	for _, r := range reports {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}
