package tensor

// The GEMM kernels' innermost operation is a row update y += alpha*x (an
// "axpy"). On amd64 with AVX2 it dispatches to an 8-lane vector kernel;
// everywhere else (and for short tails) the 4-way unrolled scalar loop
// runs. The vector kernel deliberately uses separate multiply and add
// instructions — not FMA — so every element sees exactly the scalar
// sequence round(round(alpha*x[i]) + y[i]) and results are bitwise
// identical across dispatch choices; no test or checkpoint can tell which
// machine produced a number.

// axpy is the active kernel: y[i] += alpha * x[i] for i < len(y).
// len(x) must be >= len(y). Installed by SetKernels; see kernels.go.
var axpy = axpyGeneric

func axpyGeneric(alpha float32, x, y []float32) {
	// The explicit float32 conversions force the multiply to round before
	// the add: the Go spec otherwise permits fusing `y + alpha*x` into a
	// single FMA (and gc does, on arm64/ppc64), which would break the
	// cross-machine bitwise guarantee above.
	j := 0
	for ; j+4 <= len(y); j += 4 {
		y[j] += float32(alpha * x[j])
		y[j+1] += float32(alpha * x[j+1])
		y[j+2] += float32(alpha * x[j+2])
		y[j+3] += float32(alpha * x[j+3])
	}
	for ; j < len(y); j++ {
		y[j] += float32(alpha * x[j])
	}
}
