//go:build amd64

package tensor

// AVX2 dispatch. Feature detection follows the standard x86 protocol: the
// OS must have enabled XMM+YMM state saving (OSXSAVE + XCR0 bits 1,2) and
// the CPU must report AVX2 (leaf 7 EBX bit 5). Plain AVX (leaf 1 ECX bit
// 28) is required for the VEX encodings, AVX2 for the register-form
// VBROADCASTSS the kernel uses.

// Implemented in axpy_amd64.s.
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// Implemented in axpy_amd64.s.
func xgetbv0() (eax, edx uint32)

// Implemented in axpy_amd64.s.
func axpyAVX2(alpha float32, x, y []float32)

func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}
