package tensor

// Arena is a size-bucketed recycler of float32 slabs, the memory substrate
// under nn's compiled execution plans. Plans allocate every activation,
// scratch and gradient buffer from an arena exactly once at compile time;
// at steady state Forward/Backward touch no allocator at all, which is the
// property the serving hot path and the training inner loop are built on
// (the role memory planners play in framework executors — cf. the paper's
// §II-A discussion of why repeated fixed-shape passes dominate DL compute).
//
// Slabs are bucketed by capacity rounded up to the next power of two, so a
// released slab can back any later request of equal-or-smaller bucket: the
// plans of different batch sizes in one serving replica's cache share slabs
// instead of multiplying memory. Get always returns zeroed memory
// ("deterministic reset"): an arena-backed tensor is indistinguishable from
// a fresh tensor.New, so recycling can never leak one batch's values into
// the next.
//
// An Arena is deliberately unsynchronised. Every owner in this repository
// (a worker replica, a training replica) is single-goroutine by contract;
// sharing one arena across goroutines is a bug the race detector will
// catch, not a supported mode.
type Arena struct {
	buckets map[int][][]float32
	held    int64 // floats sitting in free lists
	total   int64 // floats ever allocated through this arena
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{buckets: make(map[int][][]float32)}
}

// bucketCap rounds n up to the bucket capacity: the next power of two, with
// a small floor so tiny requests (biases, per-class rows) share one bucket.
func bucketCap(n int) int {
	const floor = 64
	c := floor
	for c < n {
		c <<= 1
	}
	return c
}

// Get returns a zeroed slice of length n backed by a bucket-capacity slab,
// reusing a released slab when one fits. n == 0 returns nil.
func (a *Arena) Get(n int) []float32 {
	if n == 0 {
		return nil
	}
	c := bucketCap(n)
	if free := a.buckets[c]; len(free) > 0 {
		s := free[len(free)-1]
		a.buckets[c] = free[:len(free)-1]
		a.held -= int64(c)
		s = s[:n]
		clear(s)
		return s
	}
	a.total += int64(c)
	return make([]float32, n, c)
}

// GetTensor returns a zeroed tensor of the given shape over an arena slab.
func (a *Arena) GetTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: a.Get(n)}
}

// Put returns a slab obtained from Get to its bucket. The caller must not
// use s afterwards. Slabs whose capacity is not a bucket size (i.e. not
// from Get) are rejected so foreign memory cannot poison the free lists.
func (a *Arena) Put(s []float32) {
	c := cap(s)
	if c == 0 {
		return
	}
	if c != bucketCap(c) {
		panic("tensor: Arena.Put of a slab not allocated by Get")
	}
	a.buckets[c] = append(a.buckets[c], s[:c])
	a.held += int64(c)
}

// Reclaim is Put for slabs of uncertain origin: it returns false instead
// of panicking when s was not allocated by Get (wrong capacity class).
// Plans use it to hand back kernel scratch that layers may have grown
// through the plain allocator.
func (a *Arena) Reclaim(s []float32) bool {
	c := cap(s)
	if c == 0 || c != bucketCap(c) {
		return false
	}
	a.buckets[c] = append(a.buckets[c], s[:c])
	a.held += int64(c)
	return true
}

// PutTensor releases t's backing slab (see Put) and clears t's Data so
// accidental reuse fails fast instead of aliasing recycled memory.
func (a *Arena) PutTensor(t *Tensor) {
	a.Put(t.Data)
	t.Data = nil
}

// Staging is a reusable batch tensor over arena slabs: Batch(n) returns a
// zero-copy [n, perSample...] view, growing the slab (through the arena)
// only when n exceeds every batch seen before. Training replicas stage
// their input batches and loss gradients through it so steady-state
// iterations never touch the allocator. Like the arena under it, a Staging
// is single-goroutine.
type Staging struct {
	arena *Arena
	shape []int // per-sample
	per   int
	slab  []float32
	t     *Tensor
}

// NewStaging builds a staging buffer for per-sample shape perSample over a.
func NewStaging(a *Arena, perSample ...int) *Staging {
	per := 1
	for _, d := range perSample {
		per *= d
	}
	return &Staging{arena: a, shape: append([]int(nil), perSample...), per: per}
}

// Batch returns the staging tensor resized to n samples. The view is owned
// by the Staging and valid until the next Batch call.
func (s *Staging) Batch(n int) *Tensor {
	need := n * s.per
	if cap(s.slab) < need {
		if s.slab != nil {
			s.arena.Put(s.slab)
		}
		got := s.arena.Get(need) // zeroed up to need
		s.slab = got[:cap(got)]
		clear(s.slab[need:]) // keep the whole working extent zeroed
		s.t = FromSlice(s.slab[:need], append([]int{n}, s.shape...)...)
	}
	s.t.Shape[0] = n
	s.t.Data = s.slab[:need]
	return s.t
}

// ArenaStats reports an arena's footprint.
type ArenaStats struct {
	HeldFloats  int64 // floats in free lists (released, reusable)
	TotalFloats int64 // floats ever allocated (live + held)
}

// Bytes returns the total allocated footprint in bytes.
func (s ArenaStats) Bytes() int64 { return s.TotalFloats * 4 }

// Stats snapshots the arena's accounting.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{HeldFloats: a.held, TotalFloats: a.total}
}
