//go:build amd64

#include "textflag.h"

// func scalAVX2(alpha float32, x []float32)
//
// x[i] = alpha * x[i]. Elementwise with separate rounding per element, so
// every ISA body is bitwise-identical to scalGeneric.
TEXT ·scalAVX2(SB), NOSPLIT, $0-32
	MOVQ x_base+8(FP), SI
	MOVQ x_len+16(FP), CX
	VBROADCASTSS alpha+0(FP), Y0

	MOVQ CX, BX
	SHRQ $5, BX   // 32-float blocks
	JZ   blk8

loop32:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMOVUPS 64(SI), Y3
	VMOVUPS 96(SI), Y4
	VMULPS  Y0, Y1, Y1
	VMULPS  Y0, Y2, Y2
	VMULPS  Y0, Y3, Y3
	VMULPS  Y0, Y4, Y4
	VMOVUPS Y1, (SI)
	VMOVUPS Y2, 32(SI)
	VMOVUPS Y3, 64(SI)
	VMOVUPS Y4, 96(SI)
	ADDQ    $128, SI
	DECQ    BX
	JNZ     loop32

blk8:
	ANDQ $31, CX
	MOVQ CX, BX
	SHRQ $3, BX   // 8-float blocks
	JZ   tail

loop8:
	VMOVUPS (SI), Y1
	VMULPS  Y0, Y1, Y1
	VMOVUPS Y1, (SI)
	ADDQ    $32, SI
	DECQ    BX
	JNZ     loop8

tail:
	ANDQ $7, CX
	JZ   done

loop1:
	VMOVSS (SI), X1
	VMULSS X0, X1, X1
	VMOVSS X1, (SI)
	ADDQ   $4, SI
	DECQ   CX
	JNZ    loop1

done:
	VZEROUPPER
	RET

// func axpy4AVX2(a0, a1, a2, a3 float32, x, y0, y1, y2, y3 []float32)
//
// Four C-row updates sharing one streamed x row — the register-blocked
// micro-kernel of the tiled GEMM. Each row performs exactly the axpy
// sequence (separate VMULPS/VADDPS, never FMA), so the result is bitwise
// identical to four axpy calls; the win is that each x block is loaded
// once instead of four times.
TEXT ·axpy4AVX2(SB), NOSPLIT, $0-136
	MOVQ x_base+16(FP), SI
	MOVQ y0_base+40(FP), R8
	MOVQ y1_base+64(FP), R9
	MOVQ y2_base+88(FP), R10
	MOVQ y3_base+112(FP), R11
	MOVQ y0_len+48(FP), CX
	VBROADCASTSS a0+0(FP), Y0
	VBROADCASTSS a1+4(FP), Y1
	VBROADCASTSS a2+8(FP), Y2
	VBROADCASTSS a3+12(FP), Y3

	MOVQ CX, BX
	SHRQ $3, BX   // 8-float blocks
	JZ   tail

loop8:
	VMOVUPS (SI), Y4
	VMULPS  Y0, Y4, Y5
	VADDPS  (R8), Y5, Y5
	VMOVUPS Y5, (R8)
	VMULPS  Y1, Y4, Y5
	VADDPS  (R9), Y5, Y5
	VMOVUPS Y5, (R9)
	VMULPS  Y2, Y4, Y5
	VADDPS  (R10), Y5, Y5
	VMOVUPS Y5, (R10)
	VMULPS  Y3, Y4, Y5
	VADDPS  (R11), Y5, Y5
	VMOVUPS Y5, (R11)
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	ADDQ    $32, R11
	DECQ    BX
	JNZ     loop8

tail:
	ANDQ $7, CX
	JZ   done

loop1:
	VMOVSS (SI), X4
	VMULSS X0, X4, X5
	VADDSS (R8), X5, X5
	VMOVSS X5, (R8)
	VMULSS X1, X4, X5
	VADDSS (R9), X5, X5
	VMOVSS X5, (R9)
	VMULSS X2, X4, X5
	VADDSS (R10), X5, X5
	VMOVSS X5, (R10)
	VMULSS X3, X4, X5
	VADDSS (R11), X5, X5
	VMOVSS X5, (R11)
	ADDQ   $4, SI
	ADDQ   $4, R8
	ADDQ   $4, R9
	ADDQ   $4, R10
	ADDQ   $4, R11
	DECQ   CX
	JNZ    loop1

done:
	VZEROUPPER
	RET

// func axpyAVX512(alpha float32, x, y []float32)
//
// 16-lane ZMM form of axpy. Elementwise, separate multiply and add, so
// bitwise-identical to axpyGeneric and axpyAVX2.
TEXT ·axpyAVX512(SB), NOSPLIT, $0-56
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ y_len+40(FP), CX
	VBROADCASTSS alpha+0(FP), Z0

	MOVQ CX, BX
	SHRQ $4, BX   // 16-float blocks
	JZ   blk8

loop16:
	VMOVUPS (SI), Z1
	VMULPS  Z0, Z1, Z1
	VADDPS  (DI), Z1, Z1
	VMOVUPS Z1, (DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    BX
	JNZ     loop16

blk8:
	ANDQ $15, CX
	MOVQ CX, BX
	SHRQ $3, BX   // one optional 8-float block
	JZ   tail

	VMOVUPS (SI), Y1
	VMULPS  Y0, Y1, Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI

tail:
	ANDQ $7, CX
	JZ   done

loop1:
	VMOVSS (SI), X1
	VMULSS X0, X1, X1
	VADDSS (DI), X1, X1
	VMOVSS X1, (DI)
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   CX
	JNZ    loop1

done:
	VZEROUPPER
	RET

// func sdotAVX512(x, y []float32) float32
//
// One ZMM accumulator whose 16 lanes are exactly the two 8-lane groups of
// the AVX2 kernel (lanes 0-7 = s0..s7, lanes 8-15 = r0..r7): the 64X4
// extract-and-add IS the s+=r merge, the optional 8-block lands on the
// merged s-group, and the reduction tree is the AVX2/sdotGeneric tree.
// A second ZMM accumulator would change the summation structure and break
// the cross-ISA bitwise guarantee — keep it single.
TEXT ·sdotAVX512(SB), NOSPLIT, $0-52
	MOVQ   x_base+0(FP), SI
	MOVQ   y_base+24(FP), DI
	MOVQ   x_len+8(FP), CX
	VXORPS Z0, Z0, Z0

	MOVQ CX, BX
	SHRQ $4, BX   // 16-float blocks
	JZ   merge

loop16:
	VMOVUPS (SI), Z2
	VMULPS  (DI), Z2, Z2
	VADDPS  Z2, Z0, Z0
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    BX
	JNZ     loop16

merge:
	// s += r: fold lanes 8-15 onto lanes 0-7.
	VEXTRACTF64X4 $1, Z0, Y1
	VADDPS        Y1, Y0, Y0
	ANDQ          $15, CX
	MOVQ          CX, BX
	SHRQ          $3, BX   // one optional 8-float block
	JZ            reduce

	VMOVUPS (SI), Y2
	VMULPS  (DI), Y2, Y2
	VADDPS  Y2, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI

reduce:
	// ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)), the sdotGeneric tree.
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VPERMILPS    $0xEE, X0, X1
	VADDPS       X1, X0, X0
	VMOVSHDUP    X0, X1
	VADDSS       X1, X0, X0

	ANDQ $7, CX
	JZ   done

tail:
	VMOVSS (SI), X1
	VMULSS (DI), X1, X1
	VADDSS X1, X0, X0
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   CX
	JNZ    tail

done:
	VZEROUPPER
	MOVSS X0, ret+48(FP)
	RET

// func dotU8S8AVX2(a []int8, b []uint8) int32
//
// Σ a[i]*b[i] in exact int32. Sixteen bytes per iteration: sign/zero
// extend to 16-bit lanes, VPMADDWD pairs them into i32 (products are at
// most 127·255 = 32385, so the 16-bit intermediate cannot saturate), and
// accumulate. Integer arithmetic is exact, so lane structure is free.
TEXT ·dotU8S8AVX2(SB), NOSPLIT, $0-52
	MOVQ  a_base+0(FP), SI
	MOVQ  b_base+24(FP), DI
	MOVQ  a_len+8(FP), CX
	VPXOR Y0, Y0, Y0

	MOVQ CX, BX
	SHRQ $4, BX   // 16-byte blocks
	JZ   reduce

loop16:
	VPMOVSXBW (SI), Y2
	VPMOVZXBW (DI), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y0, Y0
	ADDQ      $16, SI
	ADDQ      $16, DI
	DECQ      BX
	JNZ       loop16

reduce:
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX

	ANDQ $15, CX
	JZ   done

tail:
	MOVBLSX (SI), R8
	MOVBLZX (DI), R9
	IMULL   R9, R8
	ADDL    R8, AX
	INCQ    SI
	INCQ    DI
	DECQ    CX
	JNZ     tail

done:
	VZEROUPPER
	MOVL AX, ret+48(FP)
	RET

// func dotU8S8VNNI(a []int8, b []uint8) int32
//
// AVX512-VNNI body: VPDPBUSD multiplies 64 u8·s8 pairs and accumulates
// into 16 int32 lanes per instruction. Remainders fall to the 16-byte
// AVX2 widening block, then scalar. Exact integer arithmetic throughout.
TEXT ·dotU8S8VNNI(SB), NOSPLIT, $0-52
	MOVQ   a_base+0(FP), SI
	MOVQ   b_base+24(FP), DI
	MOVQ   a_len+8(FP), CX
	VPXORQ Z0, Z0, Z0

	MOVQ CX, BX
	SHRQ $6, BX   // 64-byte blocks
	JZ   reduce64

loop64:
	VMOVDQU32 (DI), Z2
	VPDPBUSD  (SI), Z2, Z0
	ADDQ      $64, SI
	ADDQ      $64, DI
	DECQ      BX
	JNZ       loop64

reduce64:
	VEXTRACTI64X4 $1, Z0, Y1
	VPADDD        Y1, Y0, Y0
	VEXTRACTI128  $1, Y0, X1
	VPADDD        X1, X0, X0
	VPSHUFD       $0xEE, X0, X1
	VPADDD        X1, X0, X0
	VPSHUFD       $0x55, X0, X1
	VPADDD        X1, X0, X0
	VMOVD         X0, AX

	ANDQ  $63, CX
	MOVQ  CX, BX
	SHRQ  $4, BX   // 16-byte AVX2 blocks in the remainder
	JZ    tail
	VPXOR Y0, Y0, Y0

loop16:
	VPMOVSXBW (SI), Y2
	VPMOVZXBW (DI), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y0, Y0
	ADDQ      $16, SI
	ADDQ      $16, DI
	DECQ      BX
	JNZ       loop16

	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, R8
	ADDL         R8, AX

tail:
	ANDQ $15, CX
	JZ   done

loop1:
	MOVBLSX (SI), R8
	MOVBLZX (DI), R9
	IMULL   R9, R8
	ADDL    R8, AX
	INCQ    SI
	INCQ    DI
	DECQ    CX
	JNZ     loop1

done:
	VZEROUPPER
	MOVL AX, ret+48(FP)
	RET
