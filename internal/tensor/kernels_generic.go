//go:build !amd64

package tensor

// Non-amd64 hosts run the portable bodies only; the scalar kernels are the
// reference semantics, so there is nothing to switch.

func kernelISAs() []string { return []string{"scalar"} }

func setKernels(mode string) error {
	switch mode {
	case "scalar", "auto":
		installScalar()
		return nil
	}
	return unknownISA(mode)
}
