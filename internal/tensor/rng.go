package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64 core with
// a cached-Gaussian Box–Muller transform). Every stochastic component in the
// repository — data generators, weight init, the cluster simulator's jitter
// draws — takes an explicit *RNG so runs are reproducible and independent
// streams can be split without global state.
type RNG struct {
	state     uint64
	haveGauss bool
	gauss     float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child stream from the current state. The
// child's sequence does not overlap the parent's for practical purposes
// (distinct SplitMix64 gamma-mixed seeds).
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Intn returns a uniform integer in [0,n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal draw.
func (r *RNG) Norm() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	// Box–Muller; u1 in (0,1] so the log is finite.
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	m := math.Sqrt(-2 * math.Log(u1))
	r.gauss = m * math.Sin(2*math.Pi*u2)
	r.haveGauss = true
	return m * math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(N(mu, sigma^2)); used by the cluster simulator for
// compute and message-latency jitter multipliers.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Exp returns an exponential draw with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := 1.0 - r.Float64()
	return -mean * math.Log(u)
}

// Poisson returns a Poisson draw with the given mean (Knuth's method for
// small means, normal approximation above 64 — adequate for event counts).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(mean + math.Sqrt(mean)*r.Norm() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillNorm fills t with N(mean, std^2) draws.
func (r *RNG) FillNorm(t *Tensor, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(mean + std*r.Norm())
	}
}

// FillUniform fills t with uniform draws in [lo,hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + (hi-lo)*r.Float64())
	}
}
