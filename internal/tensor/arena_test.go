package tensor

import "testing"

func TestArenaGetZeroedAndBucketed(t *testing.T) {
	a := NewArena()
	s := a.Get(100)
	if len(s) != 100 || cap(s) != 128 {
		t.Fatalf("Get(100): len=%d cap=%d, want 100/128", len(s), cap(s))
	}
	for i := range s {
		if s[i] != 0 {
			t.Fatalf("fresh slab not zeroed at %d", i)
		}
		s[i] = float32(i + 1)
	}
	a.Put(s)
	// A smaller request from the same bucket must reuse the slab and see
	// zeroes again (deterministic reset).
	r := a.Get(70)
	if &r[0] != &s[0] {
		t.Fatal("bucket did not recycle the released slab")
	}
	for i := range r {
		if r[i] != 0 {
			t.Fatalf("recycled slab not reset at %d: %v", i, r[i])
		}
	}
	if st := a.Stats(); st.TotalFloats != 128 || st.HeldFloats != 0 {
		t.Fatalf("stats after reuse: %+v", st)
	}
}

func TestArenaDistinctBuckets(t *testing.T) {
	a := NewArena()
	small := a.Get(10)
	a.Put(small)
	big := a.Get(1000) // bucket 1024: must not reuse the 64-float slab
	if cap(big) != 1024 {
		t.Fatalf("Get(1000) cap=%d, want 1024", cap(big))
	}
	if st := a.Stats(); st.TotalFloats != 64+1024 || st.HeldFloats != 64 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestArenaTensorRoundTrip(t *testing.T) {
	a := NewArena()
	x := a.GetTensor(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 {
		t.Fatalf("GetTensor shape: %v", x.Shape)
	}
	x.Fill(7)
	a.PutTensor(x)
	if x.Data != nil {
		t.Fatal("PutTensor must clear Data")
	}
	y := a.GetTensor(4, 6)
	for i, v := range y.Data {
		if v != 0 {
			t.Fatalf("recycled tensor not zeroed at %d", i)
		}
	}
}

func TestArenaRejectsForeignSlab(t *testing.T) {
	a := NewArena()
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a non-bucket slab must panic")
		}
	}()
	a.Put(make([]float32, 100)) // cap 100 is not a bucket size
}

func TestArenaGetZeroLen(t *testing.T) {
	a := NewArena()
	if s := a.Get(0); s != nil {
		t.Fatal("Get(0) must return nil")
	}
}
