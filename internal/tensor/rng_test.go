package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(42)
	child := a.Split()
	if child.Uint64() == a.Uint64() {
		t.Fatal("split stream should diverge from parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(11)
	n := 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestLogNormalMean(t *testing.T) {
	r := NewRNG(13)
	// E[exp(N(0, s^2))] = exp(s^2/2).
	s := 0.3
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.LogNormal(0, s)
	}
	want := math.Exp(s * s / 2)
	if math.Abs(sum/float64(n)-want) > 0.02 {
		t.Fatalf("lognormal mean = %v, want %v", sum/float64(n), want)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(17)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("poisson(%v) mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("non-positive mean must give 0")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(19)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	if math.Abs(sum/float64(n)-2.0) > 0.06 {
		t.Fatalf("exp mean = %v, want 2", sum/float64(n))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestFillNorm(t *testing.T) {
	r := NewRNG(31)
	x := New(10000)
	r.FillNorm(x, 5, 0.1)
	mean := x.Sum() / float64(x.Len())
	if math.Abs(mean-5) > 0.01 {
		t.Fatalf("FillNorm mean = %v, want ~5", mean)
	}
}

func TestFillUniform(t *testing.T) {
	r := NewRNG(37)
	x := New(1000)
	r.FillUniform(x, -1, 1)
	for _, v := range x.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
}
