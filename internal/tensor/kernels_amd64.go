//go:build amd64

package tensor

// amd64 kernel tables. AVX-512 detection extends the AVX2 protocol
// (axpy_amd64.go): the OS must additionally save opmask and ZMM state
// (XCR0 bits 5,6,7) and the CPU must report AVX512F (leaf 7 EBX bit 16).
// The int8 dot kernel upgrades once more when AVX512-VNNI (leaf 7 ECX bit
// 11) provides the fused u8·s8 multiply-accumulate VPDPBUSD.

// Implemented in kernels_amd64.s.
func axpyAVX512(alpha float32, x, y []float32)

// Implemented in kernels_amd64.s.
func sdotAVX512(x, y []float32) float32

// Implemented in kernels_amd64.s.
func scalAVX2(alpha float32, x []float32)

// Implemented in kernels_amd64.s.
func axpy4AVX2(a0, a1, a2, a3 float32, x, y0, y1, y2, y3 []float32)

// Implemented in kernels_amd64.s.
func dotU8S8AVX2(a []int8, b []uint8) int32

// Implemented in kernels_amd64.s.
func dotU8S8VNNI(a []int8, b []uint8) int32

func hasAVX512() bool {
	if !hasAVX2() {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0xE6 != 0xE6 { // XMM, YMM, opmask, ZMM_Hi256, Hi16_ZMM
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<16) != 0 // AVX512F
}

func hasVNNI() bool {
	if !hasAVX512() {
		return false
	}
	_, _, ecx7, _ := cpuidex(7, 0)
	return ecx7&(1<<11) != 0 // AVX512_VNNI
}

func kernelISAs() []string {
	isas := []string{"scalar"}
	if hasAVX2() {
		isas = append(isas, "avx2")
	}
	if hasAVX512() {
		isas = append(isas, "avx512")
	}
	return isas
}

func installAVX2() {
	axpy = axpyAVX2
	sdot = sdotAVX2
	axpy4 = axpy4AVX2
	scal = scalAVX2
	dotU8S8 = dotU8S8AVX2
	kernelISA = "avx2"
}

func installAVX512() {
	installAVX2()
	axpy = axpyAVX512
	sdot = sdotAVX512
	if hasVNNI() {
		dotU8S8 = dotU8S8VNNI
	}
	kernelISA = "avx512"
}

func setKernels(mode string) error {
	switch mode {
	case "scalar":
		installScalar()
	case "avx2":
		if !hasAVX2() {
			return unknownISA(mode)
		}
		installAVX2()
	case "avx512":
		if !hasAVX512() {
			return unknownISA(mode)
		}
		installAVX512()
	case "auto":
		switch {
		case hasAVX512():
			installAVX512()
		case hasAVX2():
			installAVX2()
		default:
			installScalar()
		}
	default:
		return unknownISA(mode)
	}
	return nil
}

func init() {
	setKernels("auto")
}
