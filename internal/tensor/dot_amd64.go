//go:build amd64

package tensor

// AVX2 dispatch for the dot kernel; feature detection shared with the axpy
// kernel (axpy_amd64.go).

// Implemented in dot_amd64.s.
func sdotAVX2(x, y []float32) float32
