package tensor

// Runtime kernel dispatch. Every hot arithmetic body in this package —
// axpy, sdot, the 4-row axpy micro-kernel under the blocked GEMM, the
// in-place scale, and the u8·s8 integer dot under the quantized serving
// path — is a package-level function variable installed by SetKernels.
// One probe (kernels_amd64.go) classifies the host at init and picks the
// widest safe body; SetKernels("scalar"|"avx2"|"avx512"|"auto") re-routes
// the whole table at runtime, which is what cmd/deepserve's -kernels flag
// and the CI bitwise-equality smoke drive.
//
// The contract every body must honour: for float32 kernels, bitwise-
// identical results across ISAs (separate multiply and add, never FMA;
// accumulator structure mirrored exactly between scalar and vector forms —
// see axpy.go and dot.go). Integer kernels are exact, so any body agrees
// automatically. SetKernels is not safe to call concurrently with running
// kernels; switch ISAs between passes, not during one.

import "fmt"

// kernelISA names the installed table: "scalar", "avx2" or "avx512".
var kernelISA = "scalar"

// KernelISA reports which kernel bodies are installed.
func KernelISA() string { return kernelISA }

// SetKernels installs the kernel table for the named ISA. "auto" picks the
// widest the host supports. It returns an error (leaving the table
// unchanged) if the host cannot run the requested ISA.
func SetKernels(mode string) error { return setKernels(mode) }

// KernelISAs lists the ISAs the host can run, narrowest first.
func KernelISAs() []string { return kernelISAs() }

// installScalar routes every kernel to its portable Go body.
func installScalar() {
	axpy = axpyGeneric
	sdot = sdotGeneric
	axpy4 = axpy4Generic
	scal = scalGeneric
	dotU8S8 = dotU8S8Generic
	kernelISA = "scalar"
}

// scal is the active in-place scale kernel: x[i] = alpha*x[i].
var scal = scalGeneric

func scalGeneric(alpha float32, x []float32) {
	j := 0
	for ; j+4 <= len(x); j += 4 {
		x[j] = float32(alpha * x[j])
		x[j+1] = float32(alpha * x[j+1])
		x[j+2] = float32(alpha * x[j+2])
		x[j+3] = float32(alpha * x[j+3])
	}
	for ; j < len(x); j++ {
		x[j] = float32(alpha * x[j])
	}
}

// axpy4 is the active 4-row micro-kernel: y_r[i] += a_r * x[i] for four C
// rows sharing one streamed x row — the register-blocked inner body of the
// tiled GEMM. Each row's arithmetic is element-for-element the axpy
// sequence, so a 4-row call is bitwise-identical to four axpy calls.
// All four alphas must be non-zero (the GEMM wrapper preserves the
// zero-skip semantics of the row-at-a-time path before dispatching here).
var axpy4 = axpy4Generic

func axpy4Generic(a0, a1, a2, a3 float32, x, y0, y1, y2, y3 []float32) {
	for j := 0; j < len(y0); j++ {
		xv := x[j]
		y0[j] += float32(a0 * xv)
		y1[j] += float32(a1 * xv)
		y2[j] += float32(a2 * xv)
		y3[j] += float32(a3 * xv)
	}
}

// dotU8S8 is the active quantized dot kernel: Σ int32(a[i])*int32(b[i])
// over i < len(a). Exact integer arithmetic — every ISA body returns the
// same value for any input. len(b) must be >= len(a).
var dotU8S8 = dotU8S8Generic

func dotU8S8Generic(a []int8, b []uint8) int32 {
	var s int32
	for i, v := range a {
		s += int32(v) * int32(b[i])
	}
	return s
}

func unknownISA(mode string) error {
	return fmt.Errorf("tensor: unknown or unsupported kernel ISA %q (host supports %v)", mode, kernelISAs())
}
