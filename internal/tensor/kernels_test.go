package tensor

import (
	"fmt"
	"math"
	"testing"
)

// gemmBitRef is the naive triple loop with the package's reference summation
// structure: k-ascending single-rounded multiply-adds for the axpy
// variants, sdotGeneric for the transpose-B variants. It is what the
// blocked kernels must reproduce bit for bit.
func gemmBitRef(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	for i := 0; i < m*n; i++ {
		c[i] = float32(beta * c[i])
	}
	if beta == 0 {
		for i := 0; i < m*n; i++ {
			c[i] = 0
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	at := func(i, p int) float32 {
		if transA {
			return a[p*m+i]
		}
		return a[i*k+p]
	}
	if transB {
		row := make([]float32, k)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				row[p] = at(i, p)
			}
			for j := 0; j < n; j++ {
				c[i*n+j] += float32(alpha * sdotGeneric(row, b[j*k:j*k+k]))
			}
		}
		return
	}
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := float32(alpha * at(i, p))
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i*n+j] += float32(av * b[p*n+j])
			}
		}
	}
}

// withISAs runs f under every kernel table the host supports, restoring
// the automatic choice afterwards.
func withISAs(t *testing.T, f func(isa string)) {
	t.Helper()
	for _, isa := range KernelISAs() {
		if err := SetKernels(isa); err != nil {
			t.Fatalf("SetKernels(%q): %v", isa, err)
		}
		f(isa)
	}
	if err := SetKernels("auto"); err != nil {
		t.Fatal(err)
	}
}

func TestSetKernels(t *testing.T) {
	if err := SetKernels("no-such-isa"); err == nil {
		t.Fatal("SetKernels accepted an unknown ISA")
	}
	for _, isa := range KernelISAs() {
		if err := SetKernels(isa); err != nil {
			t.Fatalf("SetKernels(%q): %v", isa, err)
		}
		if got := KernelISA(); got != isa {
			t.Fatalf("KernelISA() = %q after SetKernels(%q)", got, isa)
		}
	}
	if err := SetKernels("auto"); err != nil {
		t.Fatal(err)
	}
	t.Logf("host ISAs %v, auto = %q", KernelISAs(), KernelISA())
}

// TestGemmBlockedMatchesReference fuzzes the blocked GEMM against the
// naive reference over random shapes — including the tall-skinny m>>n and
// degenerate k=1 / n=1 cases the issue calls out, shapes straddling the
// gemmMR/gemmNC/gemmJB tile boundaries, alpha/beta combinations, and
// injected exact zeros (the zero-skip path) — under every host ISA.
// Comparison is bitwise (Float32bits), not approximate.
func TestGemmBlockedMatchesReference(t *testing.T) {
	rng := NewRNG(99)
	type shape struct{ m, n, k int }
	shapes := []shape{
		{1, 1, 1}, {1, 7, 1}, {3, 2, 1}, {5, 5, 5}, {4, 4, 16},
		{8, 513, 7}, {9, 512, 3}, {130, 3, 40}, {257, 2, 9},
		{31, 33, 17}, {16, 16, 144}, {6, 700, 2}, {12, 300, 64},
	}
	for i := 0; i < 12; i++ {
		shapes = append(shapes, shape{1 + rng.Intn(40), 1 + rng.Intn(600), 1 + rng.Intn(80)})
	}
	fill := func(s []float32) {
		for i := range s {
			s[i] = float32(rng.Norm())
			if rng.Intn(13) == 0 {
				s[i] = 0 // exercise the zero-skip path
			}
		}
	}
	prevWorkers := SetWorkers(3) // force the ParallelFor split too
	defer SetWorkers(prevWorkers)
	withISAs(t, func(isa string) {
		for _, sh := range shapes {
			for _, tt := range []struct{ ta, tb bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
				for _, ab := range []struct{ alpha, beta float32 }{{1, 0}, {0.5, 1}, {-1.25, 0.75}} {
					m, n, k := sh.m, sh.n, sh.k
					a := make([]float32, m*k)
					b := make([]float32, n*k)
					fill(a)
					fill(b)
					cInit := make([]float32, m*n)
					fill(cInit)
					got := append([]float32(nil), cInit...)
					want := append([]float32(nil), cInit...)
					Gemm(tt.ta, tt.tb, m, n, k, ab.alpha, a, b, ab.beta, got)
					gemmBitRef(tt.ta, tt.tb, m, n, k, ab.alpha, a, b, ab.beta, want)
					for i := range want {
						if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
							t.Fatalf("isa=%s shape=%dx%dx%d trans=%v/%v alpha=%g beta=%g: c[%d] = %x, want %x",
								isa, m, n, k, tt.ta, tt.tb, ab.alpha, ab.beta,
								i, math.Float32bits(got[i]), math.Float32bits(want[i]))
						}
					}
				}
			}
		}
	})
}

// TestKernelsBitwiseAcrossISAs pins axpy/sdot/scal/axpy4 outputs across
// every installed ISA to the scalar body's bits, over lengths covering
// every vector-width tail.
func TestKernelsBitwiseAcrossISAs(t *testing.T) {
	rng := NewRNG(3)
	lengths := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 200, 1031}
	for _, n := range lengths {
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Norm())
			y[i] = float32(rng.Norm())
		}
		alpha := float32(rng.Norm())

		yRef := append([]float32(nil), y...)
		axpyGeneric(alpha, x, yRef)
		dotRef := sdotGeneric(x, y)
		sRef := append([]float32(nil), x...)
		scalGeneric(alpha, sRef)

		y40, y41, y42, y43 := clone4(y)
		axpy4Generic(alpha, alpha/2, -alpha, 2*alpha, x, y40, y41, y42, y43)

		withISAs(t, func(isa string) {
			yGot := append([]float32(nil), y...)
			axpy(alpha, x, yGot)
			if !bitsEqual(yGot, yRef) {
				t.Fatalf("axpy[%s] diverges at n=%d", isa, n)
			}
			if got := sdot(x, y); math.Float32bits(got) != math.Float32bits(dotRef) {
				t.Fatalf("sdot[%s] = %x, want %x at n=%d", isa, math.Float32bits(got), math.Float32bits(dotRef), n)
			}
			sGot := append([]float32(nil), x...)
			scal(alpha, sGot)
			if !bitsEqual(sGot, sRef) {
				t.Fatalf("scal[%s] diverges at n=%d", isa, n)
			}
			g0, g1, g2, g3 := clone4(y)
			axpy4(alpha, alpha/2, -alpha, 2*alpha, x, g0, g1, g2, g3)
			if !bitsEqual(g0, y40) || !bitsEqual(g1, y41) || !bitsEqual(g2, y42) || !bitsEqual(g3, y43) {
				t.Fatalf("axpy4[%s] diverges at n=%d", isa, n)
			}
		})
	}
}

func clone4(y []float32) (a, b, c, d []float32) {
	return append([]float32(nil), y...), append([]float32(nil), y...),
		append([]float32(nil), y...), append([]float32(nil), y...)
}

func bitsEqual(a, b []float32) bool {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestDotU8S8AcrossISAs checks the integer dot kernel — exact, so every
// ISA must agree with the scalar loop on every length including extremes
// that stress the i16 widening (±127 weights against 0/255 activations).
func TestDotU8S8AcrossISAs(t *testing.T) {
	rng := NewRNG(17)
	lengths := []int{0, 1, 15, 16, 17, 27, 63, 64, 65, 144, 1152, 1300}
	for _, n := range lengths {
		a := make([]int8, n)
		b := make([]uint8, n)
		for i := range a {
			a[i] = int8(rng.Intn(256) - 128)
			b[i] = uint8(rng.Intn(256))
		}
		if n > 2 {
			a[0], b[0] = -128, 255
			a[1], b[1] = 127, 255
		}
		want := dotU8S8Generic(a, b)
		withISAs(t, func(isa string) {
			if got := dotU8S8(a, b); got != want {
				t.Fatalf("dotU8S8[%s] = %d, want %d at n=%d", isa, got, want, n)
			}
		})
	}
}

// TestGemmS8MatchesScalar pins the int8 GEMM against a plain triple loop
// over random shapes, serial and parallel.
func TestGemmS8MatchesScalar(t *testing.T) {
	rng := NewRNG(23)
	for trial := 0; trial < 10; trial++ {
		m, n, k := 1+rng.Intn(20), 1+rng.Intn(50), 1+rng.Intn(200)
		a := make([]int8, m*k)
		b := make([]uint8, n*k)
		for i := range a {
			a[i] = int8(rng.Intn(256) - 128)
		}
		for i := range b {
			b[i] = uint8(rng.Intn(256))
		}
		want := make([]int32, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s int32
				for p := 0; p < k; p++ {
					s += int32(a[i*k+p]) * int32(b[j*k+p])
				}
				want[i*n+j] = s
			}
		}
		for _, workers := range []int{1, 3} {
			prev := SetWorkers(workers)
			got := make([]int32, m*n)
			withISAs(t, func(isa string) {
				for i := range got {
					got[i] = -1
				}
				GemmS8(m, n, k, a, b, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("isa=%s workers=%d %dx%dx%d: c[%d]=%d want %d", isa, workers, m, n, k, i, got[i], want[i])
					}
				}
			})
			SetWorkers(prev)
		}
	}
}

// TestIm2colU8 checks the patch-major u8 lowering against the float
// im2col (which is row-major taps×patches: the transpose), including
// padding taking the zero-point value.
func TestIm2colU8(t *testing.T) {
	rng := NewRNG(31)
	cases := []struct{ c, h, w, kh, kw, stride, pad int }{
		{1, 3, 3, 3, 3, 1, 1},
		{3, 4, 4, 3, 3, 1, 1},
		{2, 5, 7, 3, 3, 1, 0},
		{2, 6, 6, 2, 2, 2, 0},
		{1, 1, 1, 1, 1, 1, 0},
		{3, 8, 5, 3, 3, 2, 1},
	}
	const zp = 128
	for _, tc := range cases {
		img8 := make([]uint8, tc.c*tc.h*tc.w)
		imgF := make([]float32, len(img8))
		for i := range img8 {
			img8[i] = uint8(rng.Intn(256))
			imgF[i] = float32(img8[i]) - zp
		}
		oh := ConvOut(tc.h, tc.kh, tc.stride, tc.pad)
		ow := ConvOut(tc.w, tc.kw, tc.stride, tc.pad)
		kTaps := tc.c * tc.kh * tc.kw
		cols := oh * ow
		got := make([]uint8, cols*kTaps)
		Im2colU8(img8, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad, zp, got)
		want := make([]float32, kTaps*cols)
		Im2col(imgF, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad, want)
		for p := 0; p < kTaps; p++ {
			for j := 0; j < cols; j++ {
				g := float32(got[j*kTaps+p]) - zp
				if g != want[p*cols+j] {
					t.Fatalf("%+v: tap %d patch %d: got %g want %g", tc, p, j, g, want[p*cols+j])
				}
			}
		}
	}
}

// TestGemmWarmNoAlloc keeps the 0-alloc contract on the serial GEMM paths
// a warmed plan depends on, now that blocking and pack recycling are in
// the loop.
func TestGemmWarmNoAlloc(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	rng := NewRNG(5)
	m, n, k := 9, 33, 21
	a := make([]float32, m*k)
	b := make([]float32, n*k)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = float32(rng.Norm())
	}
	for i := range b {
		b[i] = float32(rng.Norm())
	}
	for _, tt := range []struct{ ta, tb bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
		Gemm(tt.ta, tt.tb, m, n, k, 1, a, b, 0, c) // warm the pack free list
		allocs := testing.AllocsPerRun(20, func() {
			Gemm(tt.ta, tt.tb, m, n, k, 1, a, b, 0, c)
		})
		if allocs > 0 {
			t.Errorf("trans=%v/%v: %v allocs per warmed serial Gemm, want 0", tt.ta, tt.tb, allocs)
		}
	}
	s8a := make([]int8, m*k)
	s8b := make([]uint8, n*k)
	s8c := make([]int32, m*n)
	if allocs := testing.AllocsPerRun(20, func() { GemmS8(m, n, k, s8a, s8b, s8c) }); allocs > 0 {
		t.Errorf("GemmS8: %v allocs per warmed serial call, want 0", allocs)
	}
}

func BenchmarkDotU8S8(b *testing.B) {
	for _, k := range []int{144, 1152} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			rng := NewRNG(7)
			x := make([]int8, k)
			y := make([]uint8, k)
			for i := range x {
				x[i] = int8(rng.Intn(256) - 128)
				y[i] = uint8(rng.Intn(256))
			}
			b.SetBytes(int64(2 * k))
			for i := 0; i < b.N; i++ {
				_ = dotU8S8(x, y)
			}
		})
	}
}

// BenchmarkGemmBetaPrescale isolates the satellite fix: beta!=0,1
// pre-scaling now runs the dispatched scal kernel instead of a scalar
// element loop.
func BenchmarkGemmBetaPrescale(b *testing.B) {
	n := 512
	c := make([]float32, n*n)
	for i := range c {
		c[i] = 1
	}
	b.SetBytes(int64(n * n * 4))
	for i := 0; i < b.N; i++ {
		// k=0 returns right after the pre-scale, measuring it alone.
		Gemm(false, false, n, n, 0, 1, nil, nil, 0.999999, c)
	}
}
