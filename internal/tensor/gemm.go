package tensor

import "sync"

// SGEMM kernels. Deep-learning convolutions lower (via im2col) to "tall
// skinny" matrix multiplies whose shapes differ from classic HPC BLAS — the
// paper's §II-A point. The implementation is cache-blocked and register-
// blocked: C is parallelised over row tiles (ParallelFor), each tile runs a
// 4-row micro-kernel (axpy4) over column blocks sized to keep the streamed
// B row and the four C rows L1-resident, and the dot-product variants tile
// B rows to stay L2-hot across the whole C panel. Every blocking choice
// preserves the per-element accumulation order of the row-at-a-time
// reference (k ascending for the axpy variants, one full-k sdot for the
// transpose-B variants), so blocked and unblocked, scalar and vector, all
// produce bitwise-identical C — the golden training fingerprints cannot
// tell the difference.

const (
	// gemmMR is the register-blocked row count: the axpy4 micro-kernel
	// updates four C rows per streamed B block.
	gemmMR = 4
	// gemmNC is the column tile (floats) for the axpy variants: four C row
	// tiles plus the B row tile fit comfortably in a 32 KiB L1.
	gemmNC = 512
	// gemmJB is the B-row tile for the transpose-B (sdot) variants: a
	// block of Bᵀ rows reused across every C row stays L2-resident.
	gemmJB = 256
)

// Gemm computes C = alpha*op(A)*op(B) + beta*C where op is identity or
// transpose, A is m×k (after op), B is k×n (after op) and C is m×n. All
// matrices are dense row-major slices.
func Gemm(transA, transB bool, m, n, k int, alpha float32, a []float32, b []float32, beta float32, c []float32) {
	if m == 0 || n == 0 {
		return
	}
	if len(c) < m*n {
		panic("tensor: Gemm output too small")
	}
	// Pre-scaling goes through the dispatched kernels: clear() compiles to
	// memclr, and scal is the vector scale body. Both write exactly what
	// the scalar element loop wrote (+0, round(beta*c[i])).
	if beta != 1 {
		if beta == 0 {
			clear(c[:m*n])
		} else {
			scal(beta, c[:m*n])
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	switch {
	case !transA && !transB:
		gemmNN(m, n, k, alpha, a, b, c)
	case transA && !transB:
		gemmTN(m, n, k, alpha, a, b, c)
	case !transA && transB:
		gemmNT(m, n, k, alpha, a, b, c)
	default:
		gemmTT(m, n, k, alpha, a, b, c)
	}
}

// Each variant splits into a dispatcher and a row-range body. The
// dispatcher calls the body directly when the loop would run inline
// (SerialFor): building the ParallelFor closure would heap-allocate its
// captures on every GEMM, which the zero-steady-state-allocation contract
// of compiled plans forbids.

// gemmNN: A m×k, B k×n. Row tiles of gemmMR C rows run the axpy4
// micro-kernel over gemmNC-column blocks; within a block the k-loop
// streams B rows while the four C row tiles stay hot. Per C element the
// updates remain k-ascending — the same order, hence the same bits, as
// the row-at-a-time reference that handles the remainder rows.
func gemmNN(m, n, k int, alpha float32, a, b, c []float32) {
	if SerialFor(m) {
		gemmNNRows(0, m, n, k, alpha, a, b, c)
		return
	}
	ParallelFor(m, func(lo, hi int) { gemmNNRows(lo, hi, n, k, alpha, a, b, c) })
}

func gemmNNRows(lo, hi, n, k int, alpha float32, a, b, c []float32) {
	i := lo
	for ; i+gemmMR <= hi; i += gemmMR {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		c0 := c[(i+0)*n : (i+0)*n+n]
		c1 := c[(i+1)*n : (i+1)*n+n]
		c2 := c[(i+2)*n : (i+2)*n+n]
		c3 := c[(i+3)*n : (i+3)*n+n]
		for jc := 0; jc < n; jc += gemmNC {
			jw := n - jc
			if jw > gemmNC {
				jw = gemmNC
			}
			for p := 0; p < k; p++ {
				brow := b[p*n+jc : p*n+jc+jw]
				av0 := alpha * a0[p]
				av1 := alpha * a1[p]
				av2 := alpha * a2[p]
				av3 := alpha * a3[p]
				if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
					axpy4(av0, av1, av2, av3, brow,
						c0[jc:jc+jw], c1[jc:jc+jw], c2[jc:jc+jw], c3[jc:jc+jw])
					continue
				}
				// Zero alphas skip their row exactly as the reference
				// body skips them (adding round(0·b) would be a bitwise
				// no-op for finite inputs, but skipping is also faster).
				if av0 != 0 {
					axpy(av0, brow, c0[jc:jc+jw])
				}
				if av1 != 0 {
					axpy(av1, brow, c1[jc:jc+jw])
				}
				if av2 != 0 {
					axpy(av2, brow, c2[jc:jc+jw])
				}
				if av3 != 0 {
					axpy(av3, brow, c3[jc:jc+jw])
				}
			}
		}
	}
	for ; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := alpha * arow[p]
			if av == 0 {
				continue
			}
			axpy(av, b[p*n:p*n+n], crow)
		}
	}
}

// gemmTN: A is stored k×m (we need Aᵀ·B). The gemmMR row tile makes the
// transposed access unit-stride — a[p*m+i .. p*m+i+3] are adjacent — so no
// A-panel packing is needed; the blocked loop otherwise matches gemmNN.
func gemmTN(m, n, k int, alpha float32, a, b, c []float32) {
	if SerialFor(m) {
		gemmTNRows(0, m, m, n, k, alpha, a, b, c)
		return
	}
	ParallelFor(m, func(lo, hi int) { gemmTNRows(lo, hi, m, n, k, alpha, a, b, c) })
}

func gemmTNRows(lo, hi, m, n, k int, alpha float32, a, b, c []float32) {
	i := lo
	for ; i+gemmMR <= hi; i += gemmMR {
		c0 := c[(i+0)*n : (i+0)*n+n]
		c1 := c[(i+1)*n : (i+1)*n+n]
		c2 := c[(i+2)*n : (i+2)*n+n]
		c3 := c[(i+3)*n : (i+3)*n+n]
		for jc := 0; jc < n; jc += gemmNC {
			jw := n - jc
			if jw > gemmNC {
				jw = gemmNC
			}
			for p := 0; p < k; p++ {
				brow := b[p*n+jc : p*n+jc+jw]
				base := p*m + i
				av0 := alpha * a[base]
				av1 := alpha * a[base+1]
				av2 := alpha * a[base+2]
				av3 := alpha * a[base+3]
				if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
					axpy4(av0, av1, av2, av3, brow,
						c0[jc:jc+jw], c1[jc:jc+jw], c2[jc:jc+jw], c3[jc:jc+jw])
					continue
				}
				if av0 != 0 {
					axpy(av0, brow, c0[jc:jc+jw])
				}
				if av1 != 0 {
					axpy(av1, brow, c1[jc:jc+jw])
				}
				if av2 != 0 {
					axpy(av2, brow, c2[jc:jc+jw])
				}
				if av3 != 0 {
					axpy(av3, brow, c3[jc:jc+jw])
				}
			}
		}
	}
	for ; i < hi; i++ {
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := alpha * a[p*m+i]
			if av == 0 {
				continue
			}
			axpy(av, b[p*n:p*n+n], crow)
		}
	}
}

// gemmNT: B is stored n×k (we need A·Bᵀ). Every C element is one
// contiguous sdot; blocking tiles the Bᵀ rows so a gemmJB×k panel of B is
// reused across the whole row range before the next panel streams in. The
// k dimension is never split — the sdot accumulator structure is part of
// the bitwise contract (see dot.go).
func gemmNT(m, n, k int, alpha float32, a, b, c []float32) {
	if SerialFor(m) {
		gemmNTRows(0, m, n, k, alpha, a, b, c)
		return
	}
	ParallelFor(m, func(lo, hi int) { gemmNTRows(lo, hi, n, k, alpha, a, b, c) })
}

func gemmNTRows(lo, hi, n, k int, alpha float32, a, b, c []float32) {
	for jb := 0; jb < n; jb += gemmJB {
		jhi := jb + gemmJB
		if jhi > n {
			jhi = n
		}
		for i := lo; i < hi; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for j := jb; j < jhi; j++ {
				crow[j] += alpha * sdot(arow, b[j*k:j*k+k])
			}
		}
	}
}

// gemmTT: each strided column of A is packed contiguous once per row tile
// (k-panel packing into a recycled buffer — the pack-and-multiply trade),
// after which every output element is a contiguous sdot over the same
// gemmJB-tiled B panels as gemmNT.
func gemmTT(m, n, k int, alpha float32, a, b, c []float32) {
	if SerialFor(m) {
		gemmTTRows(0, m, m, n, k, alpha, a, b, c)
		return
	}
	ParallelFor(m, func(lo, hi int) { gemmTTRows(lo, hi, m, n, k, alpha, a, b, c) })
}

func gemmTTRows(lo, hi, m, n, k int, alpha float32, a, b, c []float32) {
	pack := getPack(gemmMR * k)
	i := lo
	for ; i+gemmMR <= hi; i += gemmMR {
		for r := 0; r < gemmMR; r++ {
			dst := pack[r*k : (r+1)*k]
			for p := 0; p < k; p++ {
				dst[p] = a[p*m+i+r]
			}
		}
		for jb := 0; jb < n; jb += gemmJB {
			jhi := jb + gemmJB
			if jhi > n {
				jhi = n
			}
			for r := 0; r < gemmMR; r++ {
				acol := pack[r*k : (r+1)*k]
				crow := c[(i+r)*n : (i+r)*n+n]
				for j := jb; j < jhi; j++ {
					crow[j] += alpha * sdot(acol, b[j*k:j*k+k])
				}
			}
		}
	}
	for ; i < hi; i++ {
		acol := pack[:k]
		for p := 0; p < k; p++ {
			acol[p] = a[p*m+i]
		}
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			crow[j] += alpha * sdot(acol, b[j*k:j*k+k])
		}
	}
	putPack(pack)
}

// Packing buffers recycle through an explicit free list rather than a
// sync.Pool: pool contents do not survive GC, and a warmed GEMM path must
// stay allocation-free regardless of collector timing.
var (
	packMu   sync.Mutex
	packFree [][]float32
)

func getPack(n int) []float32 {
	packMu.Lock()
	for idx := len(packFree) - 1; idx >= 0; idx-- {
		if cap(packFree[idx]) >= n {
			buf := packFree[idx]
			packFree[idx] = packFree[len(packFree)-1]
			packFree = packFree[:len(packFree)-1]
			packMu.Unlock()
			return buf[:n]
		}
	}
	packMu.Unlock()
	return make([]float32, n)
}

func putPack(buf []float32) {
	packMu.Lock()
	if len(packFree) < 64 {
		packFree = append(packFree, buf)
	}
	packMu.Unlock()
}

// GemmFLOPs returns the algorithmic flop count of one m×n×k GEMM
// (a multiply and an add per inner-product term).
func GemmFLOPs(m, n, k int) int64 {
	return 2 * int64(m) * int64(n) * int64(k)
}
