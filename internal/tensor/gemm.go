package tensor

// SGEMM kernels. Deep-learning convolutions lower (via im2col) to "tall
// skinny" matrix multiplies whose shapes differ from classic HPC BLAS — the
// paper's §II-A point. The implementation here is a register-blocked,
// k-innermost product parallelised over row panels of C; it is the single
// compute kernel under every convolution, deconvolution and dense layer in
// this repository.

// Gemm computes C = alpha*op(A)*op(B) + beta*C where op is identity or
// transpose, A is m×k (after op), B is k×n (after op) and C is m×n. All
// matrices are dense row-major slices.
func Gemm(transA, transB bool, m, n, k int, alpha float32, a []float32, b []float32, beta float32, c []float32) {
	if m == 0 || n == 0 {
		return
	}
	if len(c) < m*n {
		panic("tensor: Gemm output too small")
	}
	if beta != 1 {
		if beta == 0 {
			for i := 0; i < m*n; i++ {
				c[i] = 0
			}
		} else {
			for i := 0; i < m*n; i++ {
				c[i] *= beta
			}
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	switch {
	case !transA && !transB:
		gemmNN(m, n, k, alpha, a, b, c)
	case transA && !transB:
		gemmTN(m, n, k, alpha, a, b, c)
	case !transA && transB:
		gemmNT(m, n, k, alpha, a, b, c)
	default:
		gemmTT(m, n, k, alpha, a, b, c)
	}
}

// gemmNN: A m×k, B k×n. The k-loop is outermost within a row so B rows are
// streamed; C row stays hot. The row update is the axpy kernel (AVX2 where
// available; bitwise-identical scalar elsewhere).
func gemmNN(m, n, k int, alpha float32, a, b, c []float32) {
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for p := 0; p < k; p++ {
				av := alpha * arow[p]
				if av == 0 {
					continue
				}
				axpy(av, b[p*n:p*n+n], crow)
			}
		}
	})
}

// gemmTN: A is stored k×m (we need Aᵀ·B). Iterate k outermost per row block.
func gemmTN(m, n, k int, alpha float32, a, b, c []float32) {
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c[i*n : i*n+n]
			for p := 0; p < k; p++ {
				av := alpha * a[p*m+i]
				if av == 0 {
					continue
				}
				axpy(av, b[p*n:p*n+n], crow)
			}
		}
	})
}

// gemmNT: B is stored n×k (we need A·Bᵀ). Dot products of contiguous rows.
func gemmNT(m, n, k int, alpha float32, a, b, c []float32) {
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				brow := b[j*k : j*k+k]
				var s0, s1, s2, s3 float32
				p := 0
				for ; p+4 <= k; p += 4 {
					s0 += arow[p] * brow[p]
					s1 += arow[p+1] * brow[p+1]
					s2 += arow[p+2] * brow[p+2]
					s3 += arow[p+3] * brow[p+3]
				}
				s := s0 + s1 + s2 + s3
				for ; p < k; p++ {
					s += arow[p] * brow[p]
				}
				crow[j] += alpha * s
			}
		}
	})
}

// gemmTT: rare in this codebase (kept for completeness); computed without
// blocking since no hot path uses it.
func gemmTT(m, n, k int, alpha float32, a, b, c []float32) {
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				var s float32
				for p := 0; p < k; p++ {
					s += a[p*m+i] * b[j*k+p]
				}
				crow[j] += alpha * s
			}
		}
	})
}

// GemmFLOPs returns the algorithmic flop count of one m×n×k GEMM
// (a multiply and an add per inner-product term).
func GemmFLOPs(m, n, k int) int64 {
	return 2 * int64(m) * int64(n) * int64(k)
}
