package tensor

// SGEMM kernels. Deep-learning convolutions lower (via im2col) to "tall
// skinny" matrix multiplies whose shapes differ from classic HPC BLAS — the
// paper's §II-A point. The implementation here is a register-blocked,
// k-innermost product parallelised over row panels of C; it is the single
// compute kernel under every convolution, deconvolution and dense layer in
// this repository.

// Gemm computes C = alpha*op(A)*op(B) + beta*C where op is identity or
// transpose, A is m×k (after op), B is k×n (after op) and C is m×n. All
// matrices are dense row-major slices.
func Gemm(transA, transB bool, m, n, k int, alpha float32, a []float32, b []float32, beta float32, c []float32) {
	if m == 0 || n == 0 {
		return
	}
	if len(c) < m*n {
		panic("tensor: Gemm output too small")
	}
	if beta != 1 {
		if beta == 0 {
			for i := 0; i < m*n; i++ {
				c[i] = 0
			}
		} else {
			for i := 0; i < m*n; i++ {
				c[i] *= beta
			}
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	switch {
	case !transA && !transB:
		gemmNN(m, n, k, alpha, a, b, c)
	case transA && !transB:
		gemmTN(m, n, k, alpha, a, b, c)
	case !transA && transB:
		gemmNT(m, n, k, alpha, a, b, c)
	default:
		gemmTT(m, n, k, alpha, a, b, c)
	}
}

// Each variant splits into a dispatcher and a row-range body. The
// dispatcher calls the body directly when the loop would run inline
// (SerialFor): building the ParallelFor closure would heap-allocate its
// captures on every GEMM, which the zero-steady-state-allocation contract
// of compiled plans forbids.

// gemmNN: A m×k, B k×n. The k-loop is outermost within a row so B rows are
// streamed; C row stays hot. The row update is the axpy kernel (AVX2 where
// available; bitwise-identical scalar elsewhere).
func gemmNN(m, n, k int, alpha float32, a, b, c []float32) {
	if SerialFor(m) {
		gemmNNRows(0, m, n, k, alpha, a, b, c)
		return
	}
	ParallelFor(m, func(lo, hi int) { gemmNNRows(lo, hi, n, k, alpha, a, b, c) })
}

func gemmNNRows(lo, hi, n, k int, alpha float32, a, b, c []float32) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := alpha * arow[p]
			if av == 0 {
				continue
			}
			axpy(av, b[p*n:p*n+n], crow)
		}
	}
}

// gemmTN: A is stored k×m (we need Aᵀ·B). Iterate k outermost per row block.
func gemmTN(m, n, k int, alpha float32, a, b, c []float32) {
	if SerialFor(m) {
		gemmTNRows(0, m, m, n, k, alpha, a, b, c)
		return
	}
	ParallelFor(m, func(lo, hi int) { gemmTNRows(lo, hi, m, n, k, alpha, a, b, c) })
}

func gemmTNRows(lo, hi, m, n, k int, alpha float32, a, b, c []float32) {
	for i := lo; i < hi; i++ {
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := alpha * a[p*m+i]
			if av == 0 {
				continue
			}
			axpy(av, b[p*n:p*n+n], crow)
		}
	}
}

// gemmNT: B is stored n×k (we need A·Bᵀ). Dot products of contiguous rows
// via the sdot kernel (AVX2 where available; bitwise-identical scalar
// elsewhere).
func gemmNT(m, n, k int, alpha float32, a, b, c []float32) {
	if SerialFor(m) {
		gemmNTRows(0, m, n, k, alpha, a, b, c)
		return
	}
	ParallelFor(m, func(lo, hi int) { gemmNTRows(lo, hi, n, k, alpha, a, b, c) })
}

func gemmNTRows(lo, hi, n, k int, alpha float32, a, b, c []float32) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			crow[j] += alpha * sdot(arow, b[j*k:j*k+k])
		}
	}
}

// gemmTT: rare in this codebase (no hot path uses it, so it keeps the plain
// ParallelFor shape). Each strided column of A is packed contiguous once
// per output row, after which every output element is a contiguous sdot —
// the standard pack-and-multiply trade.
func gemmTT(m, n, k int, alpha float32, a, b, c []float32) {
	ParallelFor(m, func(lo, hi int) {
		acol := make([]float32, k)
		for i := lo; i < hi; i++ {
			for p := 0; p < k; p++ {
				acol[p] = a[p*m+i]
			}
			crow := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				crow[j] += alpha * sdot(acol, b[j*k:j*k+k])
			}
		}
	})
}

// GemmFLOPs returns the algorithmic flop count of one m×n×k GEMM
// (a multiply and an add per inner-product term).
func GemmFLOPs(m, n, k int) int64 {
	return 2 * int64(m) * int64(n) * int64(k)
}
