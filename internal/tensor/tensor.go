// Package tensor provides the dense float32 tensor substrate used by the
// neural-network library: row-major N-dimensional tensors, a blocked and
// goroutine-parallel SGEMM, im2col/col2im lowering for convolutions, and a
// deterministic random number generator.
//
// It plays the role Intel MKL 2017's DNN primitives play in the paper's
// Intel-Caffe stack: everything above it (layers, solvers, distributed
// training) is expressed in terms of these kernels.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 tensor. Shape is the list of
// dimension sizes, outermost first; for image batches the convention is
// NCHW (batch, channels, height, width), matching the paper's Caffe layout.
//
// The zero value is an empty tensor. Data aliases are legal and used
// deliberately (e.g. parameter sharing between worker replicas is *not*
// done by aliasing; copies are explicit).
type Tensor struct {
	Shape []int
	Data  []float32
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
}

// Zero sets all elements to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Reshape returns a view of t with a new shape (same backing data). The new
// shape must preserve the element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index. Intended for tests and
// small-scale inspection; hot loops index Data directly.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Sum returns the sum of all elements in float64 for accuracy.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// AbsMax returns the largest absolute element value.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// String renders a compact description (shape and a data prefix).
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.Shape, t.Data[:n])
}
