package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConvOut(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{224, 3, 1, 1, 224}, // same-padding 3x3
		{224, 2, 2, 0, 112}, // 2x2 pool
		{768, 3, 2, 1, 384}, // strided downsample
		{7, 7, 1, 0, 1},     // global
		{5, 3, 2, 1, 3},
	}
	for _, c := range cases {
		if got := ConvOut(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOut(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestIm2colIdentityKernel(t *testing.T) {
	// 1x1 kernel stride 1 no pad: col equals the image.
	img := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	col := make([]float32, 8)
	Im2col(img, 2, 2, 2, 1, 1, 1, 0, col)
	for i := range img {
		if col[i] != img[i] {
			t.Fatalf("col[%d]=%v, want %v", i, col[i], img[i])
		}
	}
}

func TestIm2colKnownValues(t *testing.T) {
	// 1 channel 3x3 image, 2x2 kernel, stride 1, no pad → 2x2 output.
	img := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	col := make([]float32, 4*4)
	Im2col(img, 1, 3, 3, 2, 2, 1, 0, col)
	want := []float32{
		1, 2, 4, 5, // tap (0,0)
		2, 3, 5, 6, // tap (0,1)
		4, 5, 7, 8, // tap (1,0)
		5, 6, 8, 9, // tap (1,1)
	}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("col[%d]=%v, want %v\n%v", i, col[i], want[i], col)
		}
	}
}

func TestIm2colPaddingZeros(t *testing.T) {
	img := []float32{1, 1, 1, 1} // 1ch 2x2
	oh := ConvOut(2, 3, 1, 1)
	col := make([]float32, 9*oh*oh)
	Im2col(img, 1, 2, 2, 3, 3, 1, 1, col)
	// Tap (0,0) of output position (0,0) reads img[-1,-1] → 0.
	if col[0] != 0 {
		t.Fatalf("padded tap should be 0, got %v", col[0])
	}
	// Center tap (ky=1,kx=1) of output (0,0) reads img[0,0] = 1.
	if col[4*oh*oh] != 1 {
		t.Fatalf("center tap should be 1, got %v", col[4*oh*oh])
	}
}

// Property: col2im is the adjoint of im2col — ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩
// for all x, y. This single identity guarantees the convolution data-gradient
// (and therefore the deconvolution forward pass) is exactly consistent.
func TestCol2imAdjointProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := NewRNG(uint64(seed)*2654435761 + 1)
		c := 1 + r.Intn(3)
		h := 2 + r.Intn(5)
		w := 2 + r.Intn(5)
		k := 1 + r.Intn(3)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		if h+2*pad < k || w+2*pad < k {
			return true
		}
		oh := ConvOut(h, k, stride, pad)
		ow := ConvOut(w, k, stride, pad)
		x := make([]float32, c*h*w)
		for i := range x {
			x[i] = float32(r.Norm())
		}
		y := make([]float32, c*k*k*oh*ow)
		for i := range y {
			y[i] = float32(r.Norm())
		}
		cx := make([]float32, len(y))
		Im2col(x, c, h, w, k, k, stride, pad, cx)
		xy := make([]float32, len(x))
		Col2im(y, c, h, w, k, k, stride, pad, xy)
		lhs := Dot(cx, y)
		rhs := Dot(x, xy)
		return math.Abs(lhs-rhs) <= 1e-3*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2imAccumulates(t *testing.T) {
	// Overlapping 2x2 kernel stride 1 on 3x3: center pixel receives 4 taps.
	col := make([]float32, 4*4)
	for i := range col {
		col[i] = 1
	}
	img := make([]float32, 9)
	Col2im(col, 1, 3, 3, 2, 2, 1, 0, img)
	if img[4] != 4 { // center of 3x3
		t.Fatalf("center should accumulate 4 contributions, got %v", img[4])
	}
	if img[0] != 1 {
		t.Fatalf("corner should receive 1 contribution, got %v", img[0])
	}
}
