package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// gemmRef is a direct triple-loop reference used to validate the blocked
// kernels.
func gemmRef(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	at := func(i, p int) float32 {
		if transA {
			return a[p*m+i]
		}
		return a[i*k+p]
	}
	bt := func(p, j int) float32 {
		if transB {
			return b[j*k+p]
		}
		return b[p*n+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(at(i, p)) * float64(bt(p, j))
			}
			c[i*n+j] = beta*c[i*n+j] + alpha*float32(s)
		}
	}
}

func randMat(r *RNG, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = float32(r.Norm())
	}
	return m
}

func TestGemmAllVariantsAgainstReference(t *testing.T) {
	r := NewRNG(1)
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 1, 7}, {1, 9, 2}, {8, 8, 8}, {13, 7, 5}, {3, 17, 11}}
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			for _, s := range shapes {
				m, n, k := s[0], s[1], s[2]
				a := randMat(r, m*k)
				b := randMat(r, k*n)
				c0 := randMat(r, m*n)
				got := append([]float32(nil), c0...)
				want := append([]float32(nil), c0...)
				Gemm(ta, tb, m, n, k, 0.7, a, b, 0.3, got)
				gemmRef(ta, tb, m, n, k, 0.7, a, b, 0.3, want)
				for i := range got {
					if math.Abs(float64(got[i]-want[i])) > 1e-3 {
						t.Fatalf("trans=(%v,%v) shape=%v: got[%d]=%v want %v", ta, tb, s, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestGemmBetaZeroOverwritesNaN(t *testing.T) {
	// beta=0 must overwrite even NaN garbage in C (BLAS convention).
	a := []float32{1, 2}
	b := []float32{3, 4}
	c := []float32{float32(math.NaN())}
	Gemm(false, false, 1, 1, 2, 1, a, b, 0, c)
	if c[0] != 11 {
		t.Fatalf("c = %v, want 11", c[0])
	}
}

func TestGemmZeroDims(t *testing.T) {
	c := []float32{5}
	Gemm(false, false, 1, 1, 0, 1, nil, nil, 1, c) // k=0: C unchanged
	if c[0] != 5 {
		t.Fatalf("k=0 should leave C, got %v", c[0])
	}
	Gemm(false, false, 1, 1, 0, 1, nil, nil, 0, c) // k=0, beta=0: C zeroed
	if c[0] != 0 {
		t.Fatalf("k=0 beta=0 should zero C, got %v", c[0])
	}
}

// Property: GEMM is linear in A — G(alpha, A1+A2) == G(alpha, A1)+G(alpha, A2).
func TestGemmLinearityProperty(t *testing.T) {
	r := NewRNG(2)
	f := func(seed uint32) bool {
		rr := NewRNG(uint64(seed) + 3)
		m, n, k := 1+rr.Intn(6), 1+rr.Intn(6), 1+rr.Intn(6)
		a1 := randMat(r, m*k)
		a2 := randMat(r, m*k)
		b := randMat(r, k*n)
		sum := make([]float32, m*k)
		Add(sum, a1, a2)
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		cs := make([]float32, m*n)
		Gemm(false, false, m, n, k, 1, a1, b, 0, c1)
		Gemm(false, false, m, n, k, 1, a2, b, 0, c2)
		Gemm(false, false, m, n, k, 1, sum, b, 0, cs)
		for i := range cs {
			if math.Abs(float64(cs[i]-(c1[i]+c2[i]))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ == Bᵀ Aᵀ, exercised through the transpose variants.
func TestGemmTransposeIdentityProperty(t *testing.T) {
	r := NewRNG(4)
	f := func(seed uint32) bool {
		rr := NewRNG(uint64(seed) * 7)
		m, n, k := 1+rr.Intn(5), 1+rr.Intn(5), 1+rr.Intn(5)
		a := randMat(r, m*k) // m×k
		b := randMat(r, k*n) // k×n
		ab := make([]float32, m*n)
		Gemm(false, false, m, n, k, 1, a, b, 0, ab)
		// Compute Bᵀ Aᵀ as an n×m product using trans flags on the
		// original row-major buffers.
		btat := make([]float32, n*m)
		Gemm(true, true, n, m, k, 1, b, a, 0, btat)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(float64(ab[i*n+j]-btat[j*m+i])) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmParallelMatchesSerial(t *testing.T) {
	r := NewRNG(9)
	m, n, k := 37, 23, 19
	a := randMat(r, m*k)
	b := randMat(r, k*n)
	serial := make([]float32, m*n)
	parallel := make([]float32, m*n)
	prev := SetWorkers(1)
	Gemm(false, false, m, n, k, 1, a, b, 0, serial)
	SetWorkers(4)
	Gemm(false, false, m, n, k, 1, a, b, 0, parallel)
	SetWorkers(prev)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel result differs at %d: %v vs %v", i, parallel[i], serial[i])
		}
	}
}

func TestGemmFLOPs(t *testing.T) {
	if GemmFLOPs(2, 3, 4) != 48 {
		t.Fatalf("GemmFLOPs = %d, want 48", GemmFLOPs(2, 3, 4))
	}
}
