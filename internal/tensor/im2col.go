package tensor

// im2col / col2im lowering. A convolution over a C×H×W image with F filters
// of size KH×KW becomes a (F)×(C·KH·KW) by (C·KH·KW)×(OH·OW) GEMM. col2im is
// the adjoint scatter used for the data gradient — and, per the paper's
// §III-C deconvolution trick, for the *forward* pass of deconvolution.

// ConvOut returns the output spatial size for input size in, kernel k,
// stride s and symmetric padding p.
func ConvOut(in, k, s, p int) int {
	return (in+2*p-k)/s + 1
}

// Im2col expands one C×H×W image (img, len C*H*W) into the column matrix
// col with shape (C*KH*KW)×(OH*OW), row-major. Out-of-bounds taps are zero.
func Im2col(img []float32, c, h, w, kh, kw, stride, pad int, col []float32) {
	cols := ConvOut(h, kh, stride, pad) * ConvOut(w, kw, stride, pad)
	if len(col) < c*kh*kw*cols {
		panic("tensor: Im2col output too small")
	}
	Im2colInto(img, c, h, w, kh, kw, stride, pad, col, cols, 0)
}

// Im2colInto is Im2col writing into a slice of a larger matrix: row r of
// the patch matrix lands at col[r*rowStride+colOff : ...+OH*OW]. The
// batched inference path uses it to lower every sample of a batch into one
// wide (C·KH·KW)×(N·OH·OW) matrix — sample s at colOff s·OH·OW — so a
// whole batch multiplies in a single GEMM instead of one small GEMM per
// sample.
//
// Stride-1 lowerings (every HEP conv) take a fast path: for a fixed kernel
// tap the input columns advance with the output columns, so each output row
// is one contiguous copy between zero-padding runs, replacing the
// tap-by-tap bounds arithmetic of the general case.
func Im2colInto(img []float32, c, h, w, kh, kw, stride, pad int, col []float32, rowStride, colOff int) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	row := 0
	for ch := 0; ch < c; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dst := col[row*rowStride+colOff : row*rowStride+colOff+oh*ow]
				row++
				if stride == 1 {
					// Valid output columns for this tap: ix = ox-pad+kx ∈ [0,w).
					lo := pad - kx
					if lo < 0 {
						lo = 0
					}
					hi := w + pad - kx
					if hi > ow {
						hi = ow
					}
					for oy := 0; oy < oh; oy++ {
						iy := oy - pad + ky
						drow := dst[oy*ow : (oy+1)*ow]
						if iy < 0 || iy >= h || lo >= hi {
							clear(drow)
							continue
						}
						clear(drow[:lo])
						src := img[chOff+iy*w+lo-pad+kx:]
						copy(drow[lo:hi], src[:hi-lo])
						clear(drow[hi:])
					}
					continue
				}
				di := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowOff := chOff + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							dst[di] = 0
						} else {
							dst[di] = img[rowOff+ix]
						}
						di++
					}
				}
			}
		}
	}
}

// Col2im scatters the column matrix col (shape (C*KH*KW)×(OH*OW)) back into
// the C×H×W image img, *accumulating* overlapping contributions. img must be
// zeroed by the caller if a fresh result is wanted.
func Col2im(col []float32, c, h, w, kh, kw, stride, pad int, img []float32) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	cols := oh * ow
	row := 0
	for ch := 0; ch < c; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				src := col[row*cols : row*cols+cols]
				row++
				si := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						si += ow
						continue
					}
					rowOff := chOff + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							img[rowOff+ix] += src[si]
						}
						si++
					}
				}
			}
		}
	}
}
