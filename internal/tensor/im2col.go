package tensor

// im2col / col2im lowering. A convolution over a C×H×W image with F filters
// of size KH×KW becomes a (F)×(C·KH·KW) by (C·KH·KW)×(OH·OW) GEMM. col2im is
// the adjoint scatter used for the data gradient — and, per the paper's
// §III-C deconvolution trick, for the *forward* pass of deconvolution.

// ConvOut returns the output spatial size for input size in, kernel k,
// stride s and symmetric padding p.
func ConvOut(in, k, s, p int) int {
	return (in+2*p-k)/s + 1
}

// Im2col expands one C×H×W image (img, len C*H*W) into the column matrix
// col with shape (C*KH*KW)×(OH*OW), row-major. Out-of-bounds taps are zero.
func Im2col(img []float32, c, h, w, kh, kw, stride, pad int, col []float32) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	cols := oh * ow
	if len(col) < c*kh*kw*cols {
		panic("tensor: Im2col output too small")
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dst := col[row*cols : row*cols+cols]
				row++
				di := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowOff := chOff + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							dst[di] = 0
						} else {
							dst[di] = img[rowOff+ix]
						}
						di++
					}
				}
			}
		}
	}
}

// Col2im scatters the column matrix col (shape (C*KH*KW)×(OH*OW)) back into
// the C×H×W image img, *accumulating* overlapping contributions. img must be
// zeroed by the caller if a fresh result is wanted.
func Col2im(col []float32, c, h, w, kh, kw, stride, pad int, img []float32) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	cols := oh * ow
	row := 0
	for ch := 0; ch < c; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				src := col[row*cols : row*cols+cols]
				row++
				si := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						si += ow
						continue
					}
					rowOff := chOff + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							img[rowOff+ix] += src[si]
						}
						si++
					}
				}
			}
		}
	}
}
