package tensor

// Int8 GEMM for the quantized serving forward pass. Weights are signed
// (s8, symmetric per-output-channel scale) and activations unsigned (u8,
// zero-point 128); products accumulate exactly in int32, so — unlike the
// float kernels — every ISA body agrees bitwise by construction and
// requantization is the only place rounding happens.

// GemmS8 computes c[i*n+j] = Σ_p a[i*k+p] * b[j*k+p] in exact int32.
// Both operands are stored with k contiguous ("NT-style"): a holds m
// signed-weight rows, b holds n unsigned patch/activation rows. The caller
// corrects for the activation zero-point afterwards (see the requantize
// identity in internal/nn's quantized plan).
func GemmS8(m, n, k int, a []int8, b []uint8, c []int32) {
	if m == 0 || n == 0 {
		return
	}
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmS8 operand too small")
	}
	if SerialFor(m) {
		gemmS8Rows(0, m, n, k, a, b, c)
		return
	}
	ParallelFor(m, func(lo, hi int) { gemmS8Rows(lo, hi, n, k, a, b, c) })
}

func gemmS8Rows(lo, hi, n, k int, a []int8, b []uint8, c []int32) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			crow[j] = dotU8S8(arow, b[j*k:j*k+k])
		}
	}
}

// Im2colU8 lowers one quantized C×H×W image into the patch-major layout
// GemmS8 consumes: patch j (output position, row-major over OH×OW) occupies
// dst[j*K : (j+1)*K] with taps in (c,ky,kx) order, K = C·KH·KW. Out-of-
// bounds taps take zp — the zero-point dequantizes to exactly 0, and its
// contribution cancels in the requantize row-sum correction, so padding is
// handled without a masked kernel. Patch-major (each patch's K taps
// contiguous) is the transpose of the float im2col layout; it is what lets
// one batched GemmS8 run patches from many samples back to back.
func Im2colU8(img []uint8, c, h, w, kh, kw, stride, pad int, zp uint8, dst []uint8) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	kTaps := c * kh * kw
	if len(dst) < oh*ow*kTaps {
		panic("tensor: Im2colU8 output too small")
	}
	j := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			patch := dst[j*kTaps : (j+1)*kTaps]
			j++
			p := 0
			for ch := 0; ch < c; ch++ {
				chOff := ch * h * w
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for kx := 0; kx < kw; kx++ {
							patch[p] = zp
							p++
						}
						continue
					}
					rowOff := chOff + iy*w
					ix := ox*stride - pad
					// Contiguous run of in-bounds taps: ix+kx ∈ [0,w).
					lo := 0
					if ix < 0 {
						lo = -ix
					}
					hi := w - ix
					if hi > kw {
						hi = kw
					}
					if hi < lo {
						hi = lo
					}
					for kx := 0; kx < lo; kx++ {
						patch[p+kx] = zp
					}
					copy(patch[p+lo:p+hi], img[rowOff+ix+lo:rowOff+ix+hi])
					for kx := hi; kx < kw; kx++ {
						patch[p+kx] = zp
					}
					p += kw
				}
			}
		}
	}
}
