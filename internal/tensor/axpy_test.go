package tensor

import "testing"

// TestAxpyKernelsBitwiseEqual pins the dispatch contract: whatever kernel
// init selected must produce bitwise-identical results to the scalar
// reference at every length (covering the 32-, 8- and 1-element tails).
func TestAxpyKernelsBitwiseEqual(t *testing.T) {
	rng := NewRNG(5)
	for n := 0; n <= 200; n++ {
		x := make([]float32, n)
		yA := make([]float32, n)
		yB := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Norm())
			yA[i] = float32(rng.Norm())
			yB[i] = yA[i]
		}
		alpha := float32(rng.Norm())
		axpy(alpha, x, yA)
		axpyGeneric(alpha, x, yB)
		for i := range yA {
			if yA[i] != yB[i] {
				t.Fatalf("n=%d: active kernel diverges from scalar at %d: %v vs %v", n, i, yA[i], yB[i])
			}
		}
	}
}

func BenchmarkAxpy1024(b *testing.B) {
	x := make([]float32, 1024)
	y := make([]float32, 1024)
	rng := NewRNG(6)
	for i := range x {
		x[i] = float32(rng.Norm())
	}
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		axpy(1.0001, x, y)
	}
}
