package tensor

import "testing"

// TestDotKernelsBitwiseEqual pins the dispatch contract the same way
// axpy_test.go does for axpy: whatever kernel init selected must produce
// bitwise-identical sums to the generic reference at every length
// (covering the 16-, 8- and 1-element tails and the reduction tree).
func TestDotKernelsBitwiseEqual(t *testing.T) {
	rng := NewRNG(11)
	for n := 0; n <= 200; n++ {
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Norm())
			y[i] = float32(rng.Norm())
		}
		got := sdot(x, y)
		want := sdotGeneric(x, y)
		if got != want {
			t.Fatalf("n=%d: active kernel diverges from generic: %v vs %v", n, got, want)
		}
	}
}

// TestDotAgainstFloat64Reference bounds the kernel's accumulation error
// against the float64 Dot, guarding the reduction-tree rewrite.
func TestDotAgainstFloat64Reference(t *testing.T) {
	rng := NewRNG(12)
	for _, n := range []int{1, 7, 16, 33, 100, 1000} {
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Norm())
			y[i] = float32(rng.Norm())
		}
		got := float64(sdot(x, y))
		want := Dot(x, y)
		if diff := got - want; diff > 1e-2 || diff < -1e-2 {
			t.Fatalf("n=%d: sdot=%v float64 ref=%v", n, got, want)
		}
	}
}

func BenchmarkDot1024(b *testing.B) {
	x := make([]float32, 1024)
	y := make([]float32, 1024)
	rng := NewRNG(13)
	for i := range x {
		x[i] = float32(rng.Norm())
		y[i] = float32(rng.Norm())
	}
	b.SetBytes(1024 * 8)
	var sink float32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += sdot(x, y)
	}
	_ = sink
}
