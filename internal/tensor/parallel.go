package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers caps kernel parallelism; defaults to GOMAXPROCS. The paper uses
// 66 of 68 KNL cores per node (2 reserved for the OS); SetWorkers lets the
// harness mimic that policy on the host.
var (
	workersMu sync.RWMutex
	workers   = runtime.GOMAXPROCS(0)
)

// SetWorkers sets the number of goroutines kernel loops may use. n < 1 is
// clamped to 1. Returns the previous value.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	workersMu.Lock()
	prev := workers
	workers = n
	workersMu.Unlock()
	return prev
}

// Workers returns the current kernel parallelism.
func Workers() int {
	workersMu.RLock()
	defer workersMu.RUnlock()
	return workers
}

// SerialFor reports whether a ParallelFor over n items would run inline
// (one worker, or nothing to split). Hot kernels consult it to call their
// range body directly in that case: constructing the ParallelFor closure
// forces its captures onto the heap even when the loop never spawns, and
// the compiled-plan execution path (nn.Plan) promises zero steady-state
// allocation under single-worker kernels.
func SerialFor(n int) bool {
	return n <= 1 || Workers() <= 1
}

// ParallelFor runs fn(lo,hi) over a partition of [0,n) across the configured
// worker count. Chunks are contiguous so memory access stays streaming. With
// one worker (or tiny n) it runs inline, avoiding goroutine overhead.
func ParallelFor(n int, fn func(lo, hi int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
