//go:build amd64

#include "textflag.h"

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpyAVX2(alpha float32, x, y []float32)
//
// y[i] += alpha * x[i] for i in [0, len(y)). Multiply and add are separate
// instructions (VMULPS/VADDPS, never FMA) so each lane computes exactly
// what the scalar loop computes — see axpy.go.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ y_len+40(FP), CX
	VBROADCASTSS alpha+0(FP), Y0

	MOVQ CX, BX
	SHRQ $5, BX   // 32-float blocks
	JZ   blk8

loop32:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMOVUPS 64(SI), Y3
	VMOVUPS 96(SI), Y4
	VMULPS  Y0, Y1, Y1
	VMULPS  Y0, Y2, Y2
	VMULPS  Y0, Y3, Y3
	VMULPS  Y0, Y4, Y4
	VADDPS  (DI), Y1, Y1
	VADDPS  32(DI), Y2, Y2
	VADDPS  64(DI), Y3, Y3
	VADDPS  96(DI), Y4, Y4
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VMOVUPS Y3, 64(DI)
	VMOVUPS Y4, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	DECQ    BX
	JNZ     loop32

blk8:
	ANDQ $31, CX
	MOVQ CX, BX
	SHRQ $3, BX   // 8-float blocks
	JZ   tail

loop8:
	VMOVUPS (SI), Y1
	VMULPS  Y0, Y1, Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    BX
	JNZ     loop8

tail:
	ANDQ $7, CX
	JZ   done

loop1:
	VMOVSS (SI), X1
	VMULSS X0, X1, X1
	VADDSS (DI), X1, X1
	VMOVSS X1, (DI)
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   CX
	JNZ    loop1

done:
	VZEROUPPER
	RET
