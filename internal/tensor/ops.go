package tensor

// Elementwise vector kernels shared by layers, solvers and the communicator.
// They operate on raw slices so gradient buffers, parameter-server payloads
// and tensor data use one implementation.

// Axpy computes y += alpha*x via the dispatched kernel (see axpy.go).
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	axpy(alpha, x, y)
}

// Scale computes x *= alpha via the dispatched kernel (see kernels.go).
func Scale(alpha float32, x []float32) {
	scal(alpha, x)
}

// Add computes dst = a + b elementwise.
func Add(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Dot returns the inner product in float64 for accuracy.
func Dot(x, y []float32) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i := range x {
		s += float64(x[i]) * float64(y[i])
	}
	return s
}

// AccumulateInto adds each of srcs into dst (dst must be pre-sized). Used by
// the communicator's reduction tree and by gradient aggregation.
func AccumulateInto(dst []float32, srcs ...[]float32) {
	for _, s := range srcs {
		Axpy(1, s, dst)
	}
}

// MeanSquaredError returns mean((a-b)^2).
func MeanSquaredError(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: MeanSquaredError length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s / float64(len(a))
}
