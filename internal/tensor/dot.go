package tensor

// Single-precision dot product kernel, the inner operation of the gemmNT
// and gemmTT transpose cases (the axpy kernel covers gemmNN/gemmTN). On
// amd64 with AVX2 it dispatches to a vector kernel; everywhere else the
// generic loop below runs. As with axpy, the vector kernel uses separate
// multiply and add instructions — never FMA — and the generic loop mirrors
// the vector kernel's accumulator structure exactly: two groups of eight
// independent lane accumulators (the kernel's two YMM registers), merged
// and reduced by the same tree the assembly performs, then a sequential
// scalar tail. Every dispatch choice therefore produces bitwise-identical
// sums; no test or checkpoint can tell which machine computed a GEMM.

// sdot is the active kernel: returns Σ x[i]*y[i] over i < len(x).
// len(y) must be >= len(x). Installed by SetKernels; see kernels.go.
var sdot = sdotGeneric

func sdotGeneric(x, y []float32) float32 {
	// s0..s7 and r0..r7 are the lanes of the vector kernel's two YMM
	// accumulators. The float32 conversions force each product to round
	// before the add, preventing the compiler from fusing into FMA on
	// platforms where it otherwise would (see axpyGeneric).
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	var r0, r1, r2, r3, r4, r5, r6, r7 float32
	j := 0
	for ; j+16 <= len(x); j += 16 {
		s0 += float32(x[j] * y[j])
		s1 += float32(x[j+1] * y[j+1])
		s2 += float32(x[j+2] * y[j+2])
		s3 += float32(x[j+3] * y[j+3])
		s4 += float32(x[j+4] * y[j+4])
		s5 += float32(x[j+5] * y[j+5])
		s6 += float32(x[j+6] * y[j+6])
		s7 += float32(x[j+7] * y[j+7])
		r0 += float32(x[j+8] * y[j+8])
		r1 += float32(x[j+9] * y[j+9])
		r2 += float32(x[j+10] * y[j+10])
		r3 += float32(x[j+11] * y[j+11])
		r4 += float32(x[j+12] * y[j+12])
		r5 += float32(x[j+13] * y[j+13])
		r6 += float32(x[j+14] * y[j+14])
		r7 += float32(x[j+15] * y[j+15])
	}
	// Merge the second accumulator group lane-wise (VADDPS Y1, Y0).
	s0 += r0
	s1 += r1
	s2 += r2
	s3 += r3
	s4 += r4
	s5 += r5
	s6 += r6
	s7 += r7
	// At most one remaining 8-float block.
	if j+8 <= len(x) {
		s0 += float32(x[j] * y[j])
		s1 += float32(x[j+1] * y[j+1])
		s2 += float32(x[j+2] * y[j+2])
		s3 += float32(x[j+3] * y[j+3])
		s4 += float32(x[j+4] * y[j+4])
		s5 += float32(x[j+5] * y[j+5])
		s6 += float32(x[j+6] * y[j+6])
		s7 += float32(x[j+7] * y[j+7])
		j += 8
	}
	// Reduction tree in the vector kernel's order: upper half onto lower
	// half (VEXTRACTF128+VADDPS), then lanes 2,3 onto 0,1, then the final
	// pair.
	t0 := float32(s0 + s4)
	t1 := float32(s1 + s5)
	t2 := float32(s2 + s6)
	t3 := float32(s3 + s7)
	s := float32(t0+t2) + float32(t1+t3)
	for ; j < len(x); j++ {
		s += float32(x[j] * y[j])
	}
	return s
}
