package tensor

import (
	"math"
	"testing"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major offset check: (1*3+2)*4+3 = 23.
	if x.Data[23] != 7.5 {
		t.Fatalf("row-major layout broken: %v", x.Data)
	}
}

func TestFromSliceAliases(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must alias, not copy")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := New(3)
	x.Data[1] = 5
	y := x.Clone()
	y.Data[1] = 6
	if x.Data[1] != 5 {
		t.Fatal("Clone must copy data")
	}
	y.Shape[0] = 99
	if x.Shape[0] != 3 {
		t.Fatal("Clone must copy shape")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 1
	if x.Data[0] != 1 {
		t.Fatal("Reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size change")
		}
	}()
	x.Reshape(5)
}

func TestZeroFillSum(t *testing.T) {
	x := New(4)
	x.Fill(2.5)
	if x.Sum() != 10 {
		t.Fatalf("Sum = %v, want 10", x.Sum())
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestAbsMaxAndL2(t *testing.T) {
	x := FromSlice([]float32{3, -4}, 2)
	if x.AbsMax() != 4 {
		t.Fatalf("AbsMax = %v", x.AbsMax())
	}
	if math.Abs(x.L2Norm()-5) > 1e-12 {
		t.Fatalf("L2 = %v, want 5", x.L2Norm())
	}
}

func TestCopyFrom(t *testing.T) {
	x := New(3)
	y := FromSlice([]float32{1, 2, 3}, 3)
	x.CopyFrom(y)
	if x.Data[2] != 3 {
		t.Fatal("CopyFrom failed")
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Fatal("equal shapes not detected")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Fatal("unequal shapes not detected")
	}
	if New(2).SameShape(New(2, 1)) {
		t.Fatal("rank mismatch not detected")
	}
}
