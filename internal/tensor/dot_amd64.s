//go:build amd64

#include "textflag.h"

// func sdotAVX2(x, y []float32) float32
//
// Returns Σ x[i]*y[i] for i in [0, len(x)). Multiply and add are separate
// instructions (VMULPS/VADDPS, never FMA) and the lane reduction tree is
// mirrored exactly by sdotGeneric, so the result is bitwise identical to
// the scalar fallback — see dot.go.
TEXT ·sdotAVX2(SB), NOSPLIT, $0-52
	MOVQ   x_base+0(FP), SI
	MOVQ   y_base+24(FP), DI
	MOVQ   x_len+8(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

	MOVQ CX, BX
	SHRQ $4, BX   // 16-float blocks
	JZ   merge

loop16:
	VMOVUPS (SI), Y2
	VMOVUPS 32(SI), Y3
	VMULPS  (DI), Y2, Y2
	VMULPS  32(DI), Y3, Y3
	VADDPS  Y2, Y0, Y0
	VADDPS  Y3, Y1, Y1
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    BX
	JNZ     loop16

merge:
	VADDPS Y1, Y0, Y0
	ANDQ   $15, CX
	MOVQ   CX, BX
	SHRQ   $3, BX   // one optional 8-float block
	JZ     reduce

	VMOVUPS (SI), Y2
	VMULPS  (DI), Y2, Y2
	VADDPS  Y2, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI

reduce:
	// Lanes [s0..s7] -> ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)), the same
	// tree sdotGeneric computes.
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0       // [t0,t1,t2,t3]
	VPERMILPS    $0xEE, X0, X1    // [t2,t3,t2,t3]
	VADDPS       X1, X0, X0       // [u0,u1,_,_]
	VMOVSHDUP    X0, X1           // [u1,u1,_,_]
	VADDSS       X1, X0, X0       // s = u0+u1

	ANDQ $7, CX
	JZ   done

tail:
	VMOVSS (SI), X1
	VMULSS (DI), X1, X1
	VADDSS X1, X0, X0
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   CX
	JNZ    tail

done:
	VZEROUPPER
	MOVSS X0, ret+48(FP)
	RET
