package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAxpy(t *testing.T) {
	y := []float32{1, 1}
	Axpy(2, []float32{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	Axpy(1, []float32{1, 1}, y) // alpha==1 fast path
	if y[0] != 8 || y[1] != 10 {
		t.Fatalf("Axpy alpha=1 = %v", y)
	}
}

func TestScaleAddSub(t *testing.T) {
	x := []float32{2, 4}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("Scale = %v", x)
	}
	dst := make([]float32, 2)
	Add(dst, []float32{1, 2}, []float32{3, 4})
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, []float32{1, 2}, []float32{3, 4})
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("Sub = %v", dst)
	}
}

func TestDotAndMSE(t *testing.T) {
	if Dot([]float32{1, 2}, []float32{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if MeanSquaredError([]float32{0, 0}, []float32{3, 4}) != 12.5 {
		t.Fatal("MSE wrong")
	}
	if MeanSquaredError(nil, nil) != 0 {
		t.Fatal("empty MSE should be 0")
	}
}

func TestAccumulateInto(t *testing.T) {
	dst := make([]float32, 2)
	AccumulateInto(dst, []float32{1, 2}, []float32{3, 4}, []float32{5, 6})
	if dst[0] != 9 || dst[1] != 12 {
		t.Fatalf("AccumulateInto = %v", dst)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Axpy", func() { Axpy(1, []float32{1}, []float32{1, 2}) })
	mustPanic("Dot", func() { Dot([]float32{1}, []float32{1, 2}) })
	mustPanic("Add", func() { Add(make([]float32, 2), []float32{1}, []float32{1, 2}) })
	mustPanic("MSE", func() { MeanSquaredError([]float32{1}, []float32{1, 2}) })
}

// Property: accumulation order does not change the result beyond float
// tolerance, and AccumulateInto equals elementwise sum.
func TestAccumulatePermutationProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := NewRNG(uint64(seed) + 99)
		n := 1 + r.Intn(32)
		parts := make([][]float32, 3)
		for i := range parts {
			parts[i] = make([]float32, n)
			for j := range parts[i] {
				parts[i][j] = float32(r.Norm())
			}
		}
		a := make([]float32, n)
		AccumulateInto(a, parts[0], parts[1], parts[2])
		b := make([]float32, n)
		AccumulateInto(b, parts[2], parts[0], parts[1])
		for i := range a {
			if math.Abs(float64(a[i]-b[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	n := 1000
	hits := make([]int32, n)
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelForEmptyAndSingle(t *testing.T) {
	called := false
	ParallelFor(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("ParallelFor(0) must not call fn")
	}
	ParallelFor(1, func(lo, hi int) {
		if lo != 0 || hi != 1 {
			t.Fatalf("bad range %d:%d", lo, hi)
		}
	})
}

func TestSetWorkersClamps(t *testing.T) {
	prev := SetWorkers(-3)
	if Workers() != 1 {
		t.Fatalf("Workers = %d, want clamp to 1", Workers())
	}
	SetWorkers(prev)
}
