package nn

import (
	"fmt"
	"math"
	"testing"

	"deep15pf/internal/tensor"
)

// gradCheck validates analytic gradients against central differences.
// loss() must recompute the full forward pass and return a scalar;
// analytic holds dLoss/dx for the entries of x being probed. Every probed
// coordinate must agree.
func gradCheck(t *testing.T, name string, x []float32, analytic []float32, loss func() float64, stride int) {
	t.Helper()
	if bad, total, worst := gradCheckCount(x, analytic, loss, stride); bad > 0 {
		t.Fatalf("%s: %d/%d probes disagree, worst %s", name, bad, total, worst)
	}
}

// gradCheckLoose is for compositions containing ReLU/maxpool kinks, where a
// finite-difference probe can legitimately flip an argmax and disagree with
// the (correct) analytic subgradient. It allows up to 10%% of probes to
// violate the tolerance.
func gradCheckLoose(t *testing.T, name string, x []float32, analytic []float32, loss func() float64, stride int) {
	t.Helper()
	bad, total, worst := gradCheckCount(x, analytic, loss, stride)
	if total == 0 {
		t.Fatalf("%s: no probes", name)
	}
	if float64(bad) > 0.10*float64(total) {
		t.Fatalf("%s: %d/%d probes disagree (>10%%), worst %s", name, bad, total, worst)
	}
}

func gradCheckCount(x []float32, analytic []float32, loss func() float64, stride int) (bad, total int, worst string) {
	// Small enough that maxpool argmax/ReLU masks rarely flip inside the
	// probe interval, large enough to stay above float32 forward noise.
	const eps = 2e-3
	worstErr := 0.0
	for i := 0; i < len(x); i += stride {
		old := x[i]
		x[i] = old + eps
		lp := loss()
		x[i] = old - eps
		lm := loss()
		x[i] = old
		num := (lp - lm) / (2 * eps)
		got := float64(analytic[i])
		tol := 3e-2*math.Abs(num) + 8e-3
		total++
		if err := math.Abs(got - num); err > tol {
			bad++
			if err > worstErr {
				worstErr = err
				worst = fmt.Sprintf("grad[%d] analytic %.6f vs numerical %.6f (tol %.6f)", i, got, num, tol)
			}
		}
	}
	return bad, total, worst
}

// weightedSumLoss builds a deterministic scalar loss L = Σ w·out so that
// dL/dout = w, giving every layer a fixed upstream gradient to check with.
func weightedSumLoss(out *tensor.Tensor, w []float32) float64 {
	var s float64
	for i, v := range out.Data {
		s += float64(v) * float64(w[i])
	}
	return s
}

func randWeights(rng *tensor.RNG, n int) []float32 {
	w := make([]float32, n)
	for i := range w {
		w[i] = float32(rng.Norm())
	}
	return w
}

// checkLayerGradients runs the full dx/dW/db check battery for a layer on a
// given input.
func checkLayerGradients(t *testing.T, l Layer, x *tensor.Tensor, rng *tensor.RNG) {
	t.Helper()
	out := l.Forward(x, true)
	w := randWeights(rng, out.Len())
	loss := func() float64 {
		return weightedSumLoss(l.Forward(x, true), w)
	}
	// Analytic gradients.
	for _, p := range l.Params() {
		p.Grad.Zero()
	}
	l.Forward(x, true)
	dout := tensor.FromSlice(append([]float32(nil), w...), out.Shape...)
	dx := l.Backward(dout)

	// Probe a subset of input entries (stride keeps runtime sane).
	stride := 1
	if x.Len() > 64 {
		stride = x.Len() / 64
	}
	gradCheck(t, l.Name()+"/dx", x.Data, dx.Data, loss, stride)

	for _, p := range l.Params() {
		pstride := 1
		if p.W.Len() > 64 {
			pstride = p.W.Len() / 64
		}
		gradCheck(t, l.Name()+"/"+p.Name, p.W.Data, p.Grad.Data, loss, pstride)
	}
}
