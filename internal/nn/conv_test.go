package nn

import (
	"testing"

	"deep15pf/internal/tensor"
)

func TestConvIdentityKernel(t *testing.T) {
	rng := tensor.NewRNG(1)
	c := NewConv2D("conv", 1, 1, 1, 1, 0, rng)
	c.Weight.W.Data[0] = 1
	c.Bias.W.Data[0] = 0
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := c.Forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatalf("identity conv changed data: %v", out.Data)
		}
	}
}

func TestConvKnownValues(t *testing.T) {
	// 3x3 box filter, all-ones input, padding 1: interior pixels see 9
	// taps, corners 4, edges 6.
	rng := tensor.NewRNG(2)
	c := NewConv2D("conv", 1, 1, 3, 1, 1, rng)
	c.Weight.W.Fill(1)
	c.Bias.W.Data[0] = 0
	x := tensor.New(1, 1, 3, 3)
	x.Fill(1)
	out := c.Forward(x, false)
	want := []float32{4, 6, 4, 6, 9, 6, 4, 6, 4}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("out = %v, want %v", out.Data, want)
		}
	}
}

func TestConvBias(t *testing.T) {
	rng := tensor.NewRNG(3)
	c := NewConv2D("conv", 1, 2, 1, 1, 0, rng)
	c.Weight.W.Data[0] = 0
	c.Weight.W.Data[1] = 0
	c.Bias.W.Data[0] = 1.5
	c.Bias.W.Data[1] = -2
	x := tensor.New(1, 1, 2, 2)
	out := c.Forward(x, false)
	if out.At(0, 0, 1, 1) != 1.5 || out.At(0, 1, 0, 0) != -2 {
		t.Fatalf("bias broadcast wrong: %v", out.Data)
	}
}

func TestConvStrideShape(t *testing.T) {
	rng := tensor.NewRNG(4)
	c := NewConv2D("conv", 16, 32, 3, 2, 1, rng)
	got := c.OutShape([]int{16, 64, 64})
	if got[0] != 32 || got[1] != 32 || got[2] != 32 {
		t.Fatalf("OutShape = %v, want [32 32 32]", got)
	}
}

func TestConvGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	for _, cfg := range []struct{ inC, outC, k, s, p, h int }{
		{2, 3, 3, 1, 1, 5},
		{3, 2, 3, 2, 1, 6},
		{1, 4, 2, 2, 0, 4},
	} {
		c := NewConv2D("conv", cfg.inC, cfg.outC, cfg.k, cfg.s, cfg.p, rng)
		x := tensor.New(2, cfg.inC, cfg.h, cfg.h)
		rng.FillNorm(x, 0, 1)
		checkLayerGradients(t, c, x, rng)
	}
}

func TestConvGradientAccumulation(t *testing.T) {
	// Two backward passes without ZeroGrad must accumulate.
	rng := tensor.NewRNG(6)
	c := NewConv2D("conv", 1, 1, 3, 1, 1, rng)
	x := tensor.New(1, 1, 4, 4)
	rng.FillNorm(x, 0, 1)
	out := c.Forward(x, true)
	dout := tensor.New(out.Shape...)
	dout.Fill(1)
	c.Backward(dout)
	g1 := append([]float32(nil), c.Weight.Grad.Data...)
	c.Forward(x, true)
	c.Backward(dout)
	for i := range g1 {
		if diff := c.Weight.Grad.Data[i] - 2*g1[i]; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("gradient did not accumulate: %v vs 2*%v", c.Weight.Grad.Data[i], g1[i])
		}
	}
}

func TestConvFLOPsHEPFirstLayer(t *testing.T) {
	// Paper HEP conv1: 3→128 filters 3x3 on 224×224, stride 1 pad 1.
	// Algorithmic fwd = 2·128·(3·3·3)·224·224 = 346,816,512.
	rng := tensor.NewRNG(7)
	c := NewConv2D("conv1", 3, 128, 3, 1, 1, rng)
	f := c.FLOPs([]int{3, 224, 224})
	if f.Fwd != 346816512 {
		t.Fatalf("conv1 fwd flops = %d, want 346816512", f.Fwd)
	}
	if f.Bwd != 2*f.Fwd {
		t.Fatalf("bwd must be 2x fwd, got %d", f.Bwd)
	}
	// Executed pads 3 channels to 16: ratio 16/3 on the reduction dim.
	if f.FwdExecuted <= f.Fwd*4 {
		t.Fatalf("executed flops should reflect ~5.3x channel padding: %d vs %d", f.FwdExecuted, f.Fwd)
	}
}

func TestConvParamCount(t *testing.T) {
	rng := tensor.NewRNG(8)
	c := NewConv2D("conv", 128, 128, 3, 1, 1, rng)
	// 128·128·9 weights + 128 bias = 147,584 params ≈ the paper's "∼590 KB
	// model per layer" (§VI-B2).
	total := 0
	for _, p := range c.Params() {
		total += p.NumEl()
	}
	if total != 128*128*9+128 {
		t.Fatalf("param count = %d", total)
	}
}

func TestConvBadInputPanics(t *testing.T) {
	rng := tensor.NewRNG(9)
	c := NewConv2D("conv", 3, 8, 3, 1, 1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on channel mismatch")
		}
	}()
	c.Forward(tensor.New(1, 4, 8, 8), false)
}

func TestConvBackwardBeforeForwardPanics(t *testing.T) {
	rng := tensor.NewRNG(10)
	c := NewConv2D("conv", 1, 1, 3, 1, 1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Backward(tensor.New(1, 1, 4, 4))
}
