// Package nn is the neural-network layer library: convolution (im2col+GEMM),
// deconvolution implemented with the convolution-transpose trick the paper
// describes in §III-C, pooling, dense layers, activations, losses, and a
// sequential network container with exact per-layer FLOP and parameter-byte
// accounting (the role Intel SDE plays in the paper's §V methodology).
//
// Conventions: activations are NCHW float32 tensors; per-sample shapes are
// []int{C,H,W} (or []int{F} after flattening); gradients accumulate into
// Param.Grad until Network.ZeroGrad.
package nn

import (
	"fmt"

	"deep15pf/internal/tensor"
)

// Param is one trainable parameter blob (weights or bias) with its gradient
// accumulator. The distributed layer ships Param.Grad.Data over the wire and
// installs fresh Param.W.Data received from parameter servers.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// NumEl returns the parameter element count.
func (p *Param) NumEl() int { return p.W.Len() }

// Bytes returns the parameter size in bytes (float32 storage).
func (p *Param) Bytes() int64 { return int64(p.W.Len()) * 4 }

// FlopCount carries algorithmic and SIMD-padded ("executed") flop counts for
// one pass over a batch. Algorithmic counts are the textbook 2·M·N·K numbers;
// Executed pads the GEMM dimensions to the AVX-512 single-precision lane
// width (16) the way vectorized kernels on KNL execute masked lanes — this is
// the estimate we report alongside algorithmic flops when reproducing the
// paper's SDE-based flop rates.
type FlopCount struct {
	Fwd, Bwd                 int64
	FwdExecuted, BwdExecuted int64
}

// Total returns forward+backward algorithmic flops.
func (f FlopCount) Total() int64 { return f.Fwd + f.Bwd }

// TotalExecuted returns forward+backward lane-padded flops.
func (f FlopCount) TotalExecuted() int64 { return f.FwdExecuted + f.BwdExecuted }

// Add returns the elementwise sum of two counts.
func (f FlopCount) Add(o FlopCount) FlopCount {
	return FlopCount{
		Fwd: f.Fwd + o.Fwd, Bwd: f.Bwd + o.Bwd,
		FwdExecuted: f.FwdExecuted + o.FwdExecuted, BwdExecuted: f.BwdExecuted + o.BwdExecuted,
	}
}

// Scale returns the count multiplied by n (e.g. batch size).
func (f FlopCount) Scale(n int64) FlopCount {
	return FlopCount{Fwd: f.Fwd * n, Bwd: f.Bwd * n, FwdExecuted: f.FwdExecuted * n, BwdExecuted: f.BwdExecuted * n}
}

// Layer is one differentiable stage. Forward must be called before Backward;
// layers cache whatever they need from the forward pass. Backward returns
// the gradient with respect to the layer input and accumulates parameter
// gradients into Params().Grad.
type Layer interface {
	Name() string
	// OutShape maps a per-sample input shape to the per-sample output shape.
	OutShape(in []int) []int
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters; may be empty.
	Params() []*Param
	// FLOPs returns per-sample flop counts for the given per-sample input
	// shape (multiply by batch for a full iteration).
	FLOPs(in []int) FlopCount
}

// PlanState is one layer's mutable execution state: the input saved for
// backward, pooling/activation bookkeeping, and kernel scratch. The
// destination-passing layer methods (PlannedLayer) read and write only the
// state they are handed, never hidden layer fields, so the same layer — the
// same weights — can execute under several states at once: each compiled
// Plan owns one PlanState per layer, and the legacy Forward/Backward
// wrappers run over a layer-internal state. Plan-based and direct execution
// therefore never clobber each other's backward bookkeeping.
type PlanState struct {
	// X is the input tensor saved by a train-mode forward; backward reads
	// it for weight gradients. Inference passes leave it nil (and Backward
	// panics), which is what lets inference replicas drop every gradient
	// byte — see Network.ReleaseGradients.
	X *tensor.Tensor
	// InShape is the input batch shape recorded by pooling layers.
	InShape []int
	// Col is im2col/lowering scratch; Dcol the data-gradient lowering
	// scratch; Eval the batched-inference GEMM output scratch.
	Col, Dcol, Eval []float32
	// Mask is the ReLU activation mask; Argmax the max-pool winners.
	Mask   []bool
	Argmax []int32
}

// PlannedLayer is the destination-passing execution contract compiled plans
// run on. ForwardInto and BackwardInto perform bitwise-identical arithmetic
// to Forward and Backward — the legacy methods are now thin wrappers that
// allocate the destination and delegate — but write into caller-owned
// output tensors and keep all mutable state in the caller's PlanState.
// Destinations may hold stale values: implementations fully overwrite (or
// explicitly clear, for scatter-accumulate kernels) every element they own.
type PlannedLayer interface {
	Layer
	// Reserve pre-sizes st's scratch for batches of up to n samples with
	// per-sample input shape in, drawing float32 slabs from a (nil = the
	// Go allocator). After Reserve, passes at or below that batch size
	// perform no steady-state allocation.
	Reserve(st *PlanState, a *tensor.Arena, n int, in []int, train bool)
	// ForwardInto computes y = layer(x). y must have the layer's output
	// shape for x's batch size. With train=true, st retains what backward
	// needs; with train=false, st keeps no reference to x.
	ForwardInto(st *PlanState, y, x *tensor.Tensor, train bool)
	// BackwardInto computes dx from dout (shapes fixed by the preceding
	// train-mode ForwardInto) and accumulates parameter gradients.
	BackwardInto(st *PlanState, dx, dout *tensor.Tensor)
}

// scratch grows s to n floats, preferring an arena slab. The contents are
// unspecified; callers treat scratch as write-before-read.
func scratch(a *tensor.Arena, s []float32, n int) []float32 {
	if cap(s) >= n {
		return s[:n]
	}
	if a != nil {
		return a.Get(n)
	}
	return make([]float32, n)
}

// lane is the AVX-512 single-precision vector width used for the executed
// flop estimate.
const lane = 16

func padTo(n, m int) int64 {
	if n%m == 0 {
		return int64(n)
	}
	return int64((n/m + 1) * m)
}

func shapeElems(s []int) int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

func checkBatchShape(name string, x *tensor.Tensor, perSample []int) int {
	if x.Rank() != len(perSample)+1 {
		panic(fmt.Sprintf("nn: %s expects rank %d input (batch + %v), got shape %v", name, len(perSample)+1, perSample, x.Shape))
	}
	for i, d := range perSample {
		if x.Shape[i+1] != d {
			panic(fmt.Sprintf("nn: %s expects per-sample shape %v, got %v", name, perSample, x.Shape[1:]))
		}
	}
	return x.Shape[0]
}
