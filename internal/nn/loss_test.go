package nn

import (
	"math"
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 2 classes → loss = ln 2.
	logits := tensor.New(1, 2)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.Abs(loss-math.Ln2) > 1e-6 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	// grad = p - onehot = [0.5-1, 0.5] = [-0.5, 0.5]
	if math.Abs(float64(grad.Data[0])+0.5) > 1e-6 || math.Abs(float64(grad.Data[1])-0.5) > 1e-6 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestSoftmaxCrossEntropyGradientNumerical(t *testing.T) {
	rng := tensor.NewRNG(1)
	logits := tensor.New(3, 4)
	rng.FillNorm(logits, 0, 2)
	labels := []int{1, 3, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	loss := func() float64 {
		l, _ := SoftmaxCrossEntropy(logits, labels)
		return l
	}
	gradCheck(t, "softmaxCE", logits.Data, grad.Data, loss, 1)
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	// Huge logits must not overflow.
	logits := tensor.FromSlice([]float32{1000, -1000}, 1, 2)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(float64(g)) {
			t.Fatal("NaN gradient")
		}
	}
}

// Property: softmax probabilities are positive and sum to 1 per row.
func TestSoftmaxProbsProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed) ^ 0xabcdef)
		n, k := 1+rng.Intn(4), 2+rng.Intn(5)
		logits := tensor.New(n, k)
		rng.FillNorm(logits, 0, 3)
		p := SoftmaxProbs(logits)
		for s := 0; s < n; s++ {
			var sum float64
			for j := 0; j < k; j++ {
				v := p.At(s, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBCEWithLogits(t *testing.T) {
	// logit 0, target 0.5 → loss = ln 2, grad = 0.
	loss, grad := BCEWithLogits(0, 0.5)
	if math.Abs(loss-math.Ln2) > 1e-6 || math.Abs(float64(grad)) > 1e-6 {
		t.Fatalf("loss=%v grad=%v", loss, grad)
	}
	// Extreme logits stay finite.
	loss, _ = BCEWithLogits(500, 1)
	if math.IsInf(loss, 0) || math.IsNaN(loss) || loss > 1e-6 {
		t.Fatalf("confident correct: loss=%v", loss)
	}
	loss, _ = BCEWithLogits(-500, 1)
	if math.IsInf(loss, 0) || math.IsNaN(loss) {
		t.Fatalf("confident wrong must be finite: %v", loss)
	}
}

func TestBCEGradientNumerical(t *testing.T) {
	for _, x := range []float32{-2, -0.5, 0.3, 1.7} {
		for _, target := range []float32{0, 0.3, 1} {
			_, grad := BCEWithLogits(x, target)
			eps := float32(1e-3)
			lp, _ := BCEWithLogits(x+eps, target)
			lm, _ := BCEWithLogits(x-eps, target)
			num := (lp - lm) / (2 * float64(eps))
			if math.Abs(float64(grad)-num) > 1e-3 {
				t.Fatalf("BCE grad at x=%v t=%v: %v vs %v", x, target, grad, num)
			}
		}
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2}, 2)
	target := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-1.25) > 1e-6 { // (1+4)/(2*2)
		t.Fatalf("mse = %v", loss)
	}
	if grad.Data[0] != 0.5 || grad.Data[1] != 1 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestMSELossGradientNumerical(t *testing.T) {
	rng := tensor.NewRNG(2)
	pred := tensor.New(6)
	target := tensor.New(6)
	rng.FillNorm(pred, 0, 1)
	rng.FillNorm(target, 0, 1)
	_, grad := MSELoss(pred, target)
	loss := func() float64 {
		l, _ := MSELoss(pred, target)
		return l
	}
	gradCheck(t, "mse", pred.Data, grad.Data, loss, 1)
}

func TestSmoothL1(t *testing.T) {
	// Quadratic region.
	l, g := SmoothL1(0.5)
	if math.Abs(l-0.125) > 1e-6 || g != 0.5 {
		t.Fatalf("smoothl1(0.5) = %v, %v", l, g)
	}
	// Linear region.
	l, g = SmoothL1(3)
	if math.Abs(l-2.5) > 1e-6 || g != 1 {
		t.Fatalf("smoothl1(3) = %v, %v", l, g)
	}
	l, g = SmoothL1(-3)
	if math.Abs(l-2.5) > 1e-6 || g != -1 {
		t.Fatalf("smoothl1(-3) = %v, %v", l, g)
	}
}

func TestSigmoidRange(t *testing.T) {
	for _, x := range []float32{-100, -1, 0, 1, 100} {
		s := Sigmoid(x)
		if s < 0 || s > 1 {
			t.Fatalf("sigmoid(%v) = %v", x, s)
		}
	}
	if Sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func TestSoftmaxTop1Table(t *testing.T) {
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	cases := []struct {
		name      string
		rows      [][]float32
		wantLabel []int32
		wantConf  []float64 // approximate; <0 means "don't check"
		wantErr   bool
	}{
		{
			name:      "clear winner",
			rows:      [][]float32{{0, 4, 0, 0}},
			wantLabel: []int32{1},
			wantConf:  []float64{math.Exp(4) / (math.Exp(4) + 3)},
		},
		{
			name:      "two-way tie resolves to lowest index",
			rows:      [][]float32{{2, 2, 0}},
			wantLabel: []int32{0},
			wantConf:  []float64{math.Exp(2) / (2*math.Exp(2) + 1)},
		},
		{
			name:      "all-equal logits pick class 0 at 1/k",
			rows:      [][]float32{{7, 7, 7, 7, 7}},
			wantLabel: []int32{0},
			wantConf:  []float64{0.2},
		},
		{
			name:      "negative logits",
			rows:      [][]float32{{-9, -1, -5}},
			wantLabel: []int32{1},
			wantConf:  []float64{-1},
		},
		{
			name:      "multi-row batch keeps rows independent",
			rows:      [][]float32{{0, 10}, {10, 0}, {3, 3}},
			wantLabel: []int32{1, 0, 0},
			wantConf:  []float64{-1, -1, 0.5},
		},
		{
			name:    "NaN rejected",
			rows:    [][]float32{{0, 1}, {nan, 0}},
			wantErr: true,
		},
		{
			name:    "+Inf rejected",
			rows:    [][]float32{{inf, 0}},
			wantErr: true,
		},
		{
			name:    "-Inf rejected",
			rows:    [][]float32{{0, -inf}},
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, k := len(tc.rows), len(tc.rows[0])
			logits := tensor.New(n, k)
			for i, row := range tc.rows {
				copy(logits.Data[i*k:(i+1)*k], row)
			}
			conf := make([]float32, n)
			label := make([]int32, n)
			err := SoftmaxTop1(logits, conf, label)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want loud rejection, got labels %v", label)
				}
				return
			}
			if err != nil {
				t.Fatalf("SoftmaxTop1: %v", err)
			}
			for i := range tc.wantLabel {
				if label[i] != tc.wantLabel[i] {
					t.Errorf("row %d: label = %d, want %d", i, label[i], tc.wantLabel[i])
				}
				if tc.wantConf[i] >= 0 && math.Abs(float64(conf[i])-tc.wantConf[i]) > 1e-6 {
					t.Errorf("row %d: conf = %v, want %v", i, conf[i], tc.wantConf[i])
				}
				if conf[i] <= 0 || conf[i] > 1 {
					t.Errorf("row %d: conf %v outside (0,1]", i, conf[i])
				}
			}
		})
	}
}

func TestSoftmaxTop1MatchesSoftmaxProbs(t *testing.T) {
	rng := tensor.NewRNG(5)
	logits := tensor.New(16, 7)
	rng.FillNorm(logits, 0, 3)
	conf := make([]float32, 16)
	label := make([]int32, 16)
	if err := SoftmaxTop1(logits, conf, label); err != nil {
		t.Fatal(err)
	}
	probs := SoftmaxProbs(logits)
	for s := 0; s < 16; s++ {
		row := probs.Data[s*7 : (s+1)*7]
		best, maxp := 0, row[0]
		for j, p := range row {
			if p > maxp {
				maxp, best = p, j
			}
		}
		if int(label[s]) != best {
			t.Fatalf("row %d: label %d, SoftmaxProbs argmax %d", s, label[s], best)
		}
		if math.Abs(float64(conf[s]-maxp)) > 1e-6 {
			t.Fatalf("row %d: conf %v vs prob %v", s, conf[s], maxp)
		}
	}
}

func TestSoftmaxTop1ShapeErrors(t *testing.T) {
	if err := SoftmaxTop1(tensor.New(4), make([]float32, 4), make([]int32, 4)); err == nil {
		t.Fatal("rank-1 logits accepted")
	}
	if err := SoftmaxTop1(tensor.New(4, 2), make([]float32, 3), make([]int32, 4)); err == nil {
		t.Fatal("short conf accepted")
	}
}

func TestSoftmaxTop1ZeroAlloc(t *testing.T) {
	logits := tensor.New(32, 5)
	tensor.NewRNG(9).FillNorm(logits, 0, 2)
	conf := make([]float32, 32)
	label := make([]int32, 32)
	allocs := testing.AllocsPerRun(50, func() {
		if err := SoftmaxTop1(logits, conf, label); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SoftmaxTop1 allocates %v/op on the bulk hot path", allocs)
	}
}

func TestWeightedCrossEntropyAllOnesMatchesUnweighted(t *testing.T) {
	rng := tensor.NewRNG(3)
	logits := tensor.New(6, 4)
	rng.FillNorm(logits, 0, 2)
	labels := []int{1, 3, 0, 2, 2, 1}
	want := tensor.New(6, 4)
	wantLoss := SoftmaxCrossEntropyInto(logits, labels, want)

	// nil weights must be bitwise the unweighted path.
	gotNil := tensor.New(6, 4)
	if l := SoftmaxCrossEntropyWeightedInto(logits, labels, nil, gotNil); l != wantLoss {
		t.Fatalf("nil-weight loss %v != unweighted %v", l, wantLoss)
	}
	for i := range want.Data {
		if gotNil.Data[i] != want.Data[i] {
			t.Fatalf("nil-weight grad[%d] = %v, want %v bitwise", i, gotNil.Data[i], want.Data[i])
		}
	}

	// All-1 weights match to float tolerance (the mean is over Σw = n).
	ones := []float32{1, 1, 1, 1, 1, 1}
	got := tensor.New(6, 4)
	l := SoftmaxCrossEntropyWeightedInto(logits, labels, ones, got)
	if math.Abs(l-wantLoss) > 1e-9 {
		t.Fatalf("all-1 weighted loss %v, want %v", l, wantLoss)
	}
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-7 {
			t.Fatalf("all-1 grad[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestWeightedCrossEntropyGradientNumerical(t *testing.T) {
	rng := tensor.NewRNG(7)
	logits := tensor.New(4, 3)
	rng.FillNorm(logits, 0, 2)
	labels := []int{2, 0, 1, 1}
	weights := []float32{1, 0.25, 0, 2}
	grad := tensor.New(4, 3)
	SoftmaxCrossEntropyWeightedInto(logits, labels, weights, grad)
	loss := func() float64 {
		g := tensor.New(4, 3)
		return SoftmaxCrossEntropyWeightedInto(logits, labels, weights, g)
	}
	const h = 1e-3
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp := loss()
		logits.Data[i] = orig - h
		lm := loss()
		logits.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("grad[%d] = %v, numerical %v", i, grad.Data[i], num)
		}
	}
	// The zero-weight sample's rows must carry exactly zero gradient.
	for j := 6; j < 9; j++ {
		if grad.Data[j] != 0 {
			t.Fatalf("zero-weight sample leaked gradient %v at %d", grad.Data[j], j)
		}
	}
}

func TestWeightedCrossEntropyZeroWeightSum(t *testing.T) {
	logits := tensor.New(2, 3)
	logits.Data[1] = 5
	grad := tensor.New(2, 3)
	grad.Data[0] = 42 // must be overwritten
	l := SoftmaxCrossEntropyWeightedInto(logits, []int{0, 1}, []float32{0, 0}, grad)
	if l != 0 {
		t.Fatalf("zero-weight batch loss %v, want 0", l)
	}
	for i, g := range grad.Data {
		if g != 0 {
			t.Fatalf("grad[%d] = %v, want 0", i, g)
		}
	}
}
