package nn

import (
	"math"
	"testing"
	"testing/quick"

	"deep15pf/internal/tensor"
)

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 2 classes → loss = ln 2.
	logits := tensor.New(1, 2)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.Abs(loss-math.Ln2) > 1e-6 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	// grad = p - onehot = [0.5-1, 0.5] = [-0.5, 0.5]
	if math.Abs(float64(grad.Data[0])+0.5) > 1e-6 || math.Abs(float64(grad.Data[1])-0.5) > 1e-6 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestSoftmaxCrossEntropyGradientNumerical(t *testing.T) {
	rng := tensor.NewRNG(1)
	logits := tensor.New(3, 4)
	rng.FillNorm(logits, 0, 2)
	labels := []int{1, 3, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	loss := func() float64 {
		l, _ := SoftmaxCrossEntropy(logits, labels)
		return l
	}
	gradCheck(t, "softmaxCE", logits.Data, grad.Data, loss, 1)
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	// Huge logits must not overflow.
	logits := tensor.FromSlice([]float32{1000, -1000}, 1, 2)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(float64(g)) {
			t.Fatal("NaN gradient")
		}
	}
}

// Property: softmax probabilities are positive and sum to 1 per row.
func TestSoftmaxProbsProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := tensor.NewRNG(uint64(seed) ^ 0xabcdef)
		n, k := 1+rng.Intn(4), 2+rng.Intn(5)
		logits := tensor.New(n, k)
		rng.FillNorm(logits, 0, 3)
		p := SoftmaxProbs(logits)
		for s := 0; s < n; s++ {
			var sum float64
			for j := 0; j < k; j++ {
				v := p.At(s, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBCEWithLogits(t *testing.T) {
	// logit 0, target 0.5 → loss = ln 2, grad = 0.
	loss, grad := BCEWithLogits(0, 0.5)
	if math.Abs(loss-math.Ln2) > 1e-6 || math.Abs(float64(grad)) > 1e-6 {
		t.Fatalf("loss=%v grad=%v", loss, grad)
	}
	// Extreme logits stay finite.
	loss, _ = BCEWithLogits(500, 1)
	if math.IsInf(loss, 0) || math.IsNaN(loss) || loss > 1e-6 {
		t.Fatalf("confident correct: loss=%v", loss)
	}
	loss, _ = BCEWithLogits(-500, 1)
	if math.IsInf(loss, 0) || math.IsNaN(loss) {
		t.Fatalf("confident wrong must be finite: %v", loss)
	}
}

func TestBCEGradientNumerical(t *testing.T) {
	for _, x := range []float32{-2, -0.5, 0.3, 1.7} {
		for _, target := range []float32{0, 0.3, 1} {
			_, grad := BCEWithLogits(x, target)
			eps := float32(1e-3)
			lp, _ := BCEWithLogits(x+eps, target)
			lm, _ := BCEWithLogits(x-eps, target)
			num := (lp - lm) / (2 * float64(eps))
			if math.Abs(float64(grad)-num) > 1e-3 {
				t.Fatalf("BCE grad at x=%v t=%v: %v vs %v", x, target, grad, num)
			}
		}
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2}, 2)
	target := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-1.25) > 1e-6 { // (1+4)/(2*2)
		t.Fatalf("mse = %v", loss)
	}
	if grad.Data[0] != 0.5 || grad.Data[1] != 1 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestMSELossGradientNumerical(t *testing.T) {
	rng := tensor.NewRNG(2)
	pred := tensor.New(6)
	target := tensor.New(6)
	rng.FillNorm(pred, 0, 1)
	rng.FillNorm(target, 0, 1)
	_, grad := MSELoss(pred, target)
	loss := func() float64 {
		l, _ := MSELoss(pred, target)
		return l
	}
	gradCheck(t, "mse", pred.Data, grad.Data, loss, 1)
}

func TestSmoothL1(t *testing.T) {
	// Quadratic region.
	l, g := SmoothL1(0.5)
	if math.Abs(l-0.125) > 1e-6 || g != 0.5 {
		t.Fatalf("smoothl1(0.5) = %v, %v", l, g)
	}
	// Linear region.
	l, g = SmoothL1(3)
	if math.Abs(l-2.5) > 1e-6 || g != 1 {
		t.Fatalf("smoothl1(3) = %v, %v", l, g)
	}
	l, g = SmoothL1(-3)
	if math.Abs(l-2.5) > 1e-6 || g != -1 {
		t.Fatalf("smoothl1(-3) = %v, %v", l, g)
	}
}

func TestSigmoidRange(t *testing.T) {
	for _, x := range []float32{-100, -1, 0, 1, 100} {
		s := Sigmoid(x)
		if s < 0 || s > 1 {
			t.Fatalf("sigmoid(%v) = %v", x, s)
		}
	}
	if Sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}
