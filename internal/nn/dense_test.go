package nn

import (
	"math"
	"testing"

	"deep15pf/internal/tensor"
)

func TestDenseKnownValues(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDense("fc", 2, 2, rng)
	copy(d.Weight.W.Data, []float32{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.Bias.W.Data, []float32{0.5, -0.5})
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	out := d.Forward(x, false)
	if out.Data[0] != 3.5 || out.Data[1] != 6.5 {
		t.Fatalf("dense = %v, want [3.5 6.5]", out.Data)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	d := NewDense("fc", 6, 4, rng)
	x := tensor.New(3, 6)
	rng.FillNorm(x, 0, 1)
	checkLayerGradients(t, d, x, rng)
}

func TestDenseAcceptsSpatialInput(t *testing.T) {
	// Dense flattens whatever per-sample shape it receives.
	rng := tensor.NewRNG(3)
	d := NewDense("fc", 12, 2, rng)
	x := tensor.New(2, 3, 2, 2)
	out := d.Forward(x, false)
	if out.Shape[0] != 2 || out.Shape[1] != 2 {
		t.Fatalf("shape %v", out.Shape)
	}
}

func TestReLUKnownValues(t *testing.T) {
	r := NewReLU("relu")
	x := tensor.FromSlice([]float32{-1, 0, 2}, 1, 3)
	out := r.Forward(x, true)
	if out.Data[0] != 0 || out.Data[1] != 0 || out.Data[2] != 2 {
		t.Fatalf("relu = %v", out.Data)
	}
	dx := r.Backward(tensor.FromSlice([]float32{5, 5, 5}, 1, 3))
	if dx.Data[0] != 0 || dx.Data[1] != 0 || dx.Data[2] != 5 {
		t.Fatalf("relu grad = %v", dx.Data)
	}
}

func TestReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	r := NewReLU("relu")
	x := tensor.New(2, 8)
	// Keep values away from the kink at 0 so central differences are valid.
	for i := range x.Data {
		v := float32(rng.Norm())
		if v > -0.05 && v < 0.05 {
			v += 0.2
		}
		x.Data[i] = v
	}
	checkLayerGradients(t, r, x, rng)
}

func TestHeInitStd(t *testing.T) {
	rng := tensor.NewRNG(5)
	w := tensor.New(200, 128)
	HeInit(w, 128, rng)
	var sum2 float64
	for _, v := range w.Data {
		sum2 += float64(v) * float64(v)
	}
	std := math.Sqrt(sum2 / float64(w.Len()))
	want := math.Sqrt(2.0 / 128)
	if math.Abs(std-want) > 0.01 {
		t.Fatalf("He std = %v, want %v", std, want)
	}
}

func TestHeInitPanicsOnBadFanIn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HeInit(tensor.New(4), 0, tensor.NewRNG(1))
}
