package nn

import (
	"strings"
	"testing"

	"deep15pf/internal/tensor"
)

// planTestNet builds a small net exercising every layer kind the HEP
// classifier uses: conv, relu, pool, global pool, dense.
func planTestNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	net := NewNetwork("plan-test", 3, 8, 8)
	net.Add(
		NewConv2D("c1", 3, 4, 3, 1, 1, rng),
		NewReLU("r1"),
		NewMaxPool2D("p1", 2, 2),
		NewConv2D("c2", 4, 5, 3, 1, 1, rng),
		NewReLU("r2"),
		NewGlobalAvgPool("gap"),
		NewDense("fc", 5, 2, rng),
	)
	return net
}

// planTestDeconvNet exercises the deconvolution path (the climate decoder
// shape: kernel 4, stride 2, pad 1 doubles the spatial size).
func planTestDeconvNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	net := NewNetwork("plan-test-deconv", 2, 6, 6)
	net.Add(
		NewConv2D("c1", 2, 3, 3, 1, 1, rng),
		NewReLU("r1"),
		NewDeconv2D("d1", 3, 2, 4, 2, 1, rng),
	)
	return net
}

func randBatch(rng *tensor.RNG, n int, shape []int) *tensor.Tensor {
	x := tensor.New(append([]int{n}, shape...)...)
	rng.FillNorm(x, 0, 1)
	return x
}

func requireBitwise(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: size %d vs %d", name, got.Len(), want.Len())
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: diverges at %d: %v vs %v", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestPlanInferenceBitwiseIdentity is the acceptance gate: a compiled
// inference plan must produce bitwise-identical outputs to the unplanned
// eval path, at every batch size one bucketed plan serves.
func TestPlanInferenceBitwiseIdentity(t *testing.T) {
	for _, build := range []func(uint64) *Network{planTestNet, planTestDeconvNet} {
		net := build(7)
		cache := NewPlanCache(net, false, nil)
		rng := tensor.NewRNG(99)
		for _, n := range []int{1, 2, 3, 5, 8} {
			x := randBatch(rng, n, net.InShape)
			want := net.Forward(x, false)
			got := cache.Forward(x)
			requireBitwise(t, net.NetName, got, want)
		}
		if cache.Len() != 4 { // buckets 1, 2, 4, 8
			t.Fatalf("%s: %d plans cached, want 4 (buckets 1,2,4,8)", net.NetName, cache.Len())
		}
	}
}

// TestPlanTrainingBitwiseIdentity checks the training side: logits, every
// parameter gradient and the input gradient must match the legacy
// Forward/Backward path bitwise.
func TestPlanTrainingBitwiseIdentity(t *testing.T) {
	for _, build := range []func(uint64) *Network{planTestNet, planTestDeconvNet} {
		legacy := build(3)
		planned := build(3)
		rng := tensor.NewRNG(17)
		x := randBatch(rng, 4, legacy.InShape)
		dout := tensor.New(append([]int{4}, legacy.OutShape()...)...)
		rng.FillNorm(dout, 0, 1)

		wantY := legacy.Forward(x, true)
		wantDx := legacy.Backward(dout)

		plan := Compile(planned, 4, true, nil)
		gotY := plan.Forward(x)
		requireBitwise(t, "logits", gotY, wantY)
		gotDx := plan.Backward(dout)
		requireBitwise(t, "input grad", gotDx, wantDx)

		lp, pp := legacy.Params(), planned.Params()
		for i := range lp {
			requireBitwise(t, "grad "+lp[i].Name, pp[i].Grad, lp[i].Grad)
		}
	}
}

// TestPlanRepeatedPassesStayIdentical reruns a plan to prove recycled
// buffers cannot leak one pass's values into the next (the deterministic
// reset property).
func TestPlanRepeatedPassesStayIdentical(t *testing.T) {
	net := planTestNet(5)
	plan := Compile(net, 4, false, nil)
	rng := tensor.NewRNG(23)
	x := randBatch(rng, 4, net.InShape)
	first := plan.Forward(x).Clone()
	// Perturb with a different batch in between (different values and a
	// smaller size) before repeating the original input.
	y := randBatch(rng, 3, net.InShape)
	plan.Forward(y)
	requireBitwise(t, "repeat", plan.Forward(x), first)
}

// TestPlanZeroSteadyStateAllocs is the allocation regression gate for the
// serving path: a warmed inference plan Forward must not allocate at all.
// Kernel parallelism is pinned to 1 because ParallelFor's goroutine spawns
// are scheduler state, not steady-state memory churn.
func TestPlanZeroSteadyStateAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	net := planTestNet(9)
	net.ReleaseGradients() // the serving configuration
	plan := Compile(net, 8, false, nil)
	rng := tensor.NewRNG(31)
	x := randBatch(rng, 8, net.InShape)
	plan.Forward(x) // warm
	if allocs := testing.AllocsPerRun(50, func() { plan.Forward(x) }); allocs != 0 {
		t.Fatalf("warmed inference plan Forward allocates %v objects/op, want 0", allocs)
	}
}

// TestTrainingPlanZeroSteadyStateAllocs extends the gate to the training
// inner loop: forward + loss-gradient + backward with zero allocation.
func TestTrainingPlanZeroSteadyStateAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	net := planTestNet(13)
	plan := Compile(net, 4, true, nil)
	rng := tensor.NewRNG(37)
	x := randBatch(rng, 4, net.InShape)
	labels := []int{0, 1, 1, 0}
	grad := tensor.New(4, 2)
	iter := func() {
		logits := plan.Forward(x)
		SoftmaxCrossEntropyInto(logits, labels, grad)
		plan.Backward(grad)
	}
	iter() // warm
	if allocs := testing.AllocsPerRun(20, iter); allocs != 0 {
		t.Fatalf("warmed training iteration allocates %v objects/op, want 0", allocs)
	}
}

// TestInferencePlanRunsOnReleasedNetwork pins the ReleaseGradients fix: a
// released network must still compile and run inference plans...
func TestInferencePlanRunsOnReleasedNetwork(t *testing.T) {
	net := planTestNet(19)
	rng := tensor.NewRNG(41)
	x := randBatch(rng, 2, net.InShape)
	want := net.Forward(x, false)
	net.ReleaseGradients()
	plan := Compile(net, 2, false, nil)
	requireBitwise(t, "released-net inference", plan.Forward(x), want)
}

// ...while compiling a training plan over it must fail loudly at compile
// time, naming the released parameter.
func TestTrainingPlanPanicsOnReleasedNetwork(t *testing.T) {
	net := planTestNet(19)
	net.ReleaseGradients()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("training-plan compile over released gradients must panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "released gradients") {
			t.Fatalf("unhelpful panic: %v", r)
		}
	}()
	Compile(net, 2, true, nil)
}

// TestTrainingPlanPanicsOnMidFlightRelease covers the nastier ordering:
// gradients released after the plan compiled. Backward must name the
// parameter instead of nil-dereferencing inside a kernel.
func TestTrainingPlanPanicsOnMidFlightRelease(t *testing.T) {
	net := planTestNet(19)
	plan := Compile(net, 2, true, nil)
	rng := tensor.NewRNG(43)
	x := randBatch(rng, 2, net.InShape)
	dout := tensor.New(append([]int{2}, net.OutShape()...)...)
	plan.Forward(x)
	net.ReleaseGradients()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("plan Backward after ReleaseGradients must panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "released") {
			t.Fatalf("unhelpful panic: %v", r)
		}
	}()
	plan.Backward(dout)
}

// TestPlanStateIsolatedFromDirectCalls interleaves plan-based training with
// direct eval calls on the same network: the eval pass must not clobber the
// plan's backward state (the property PlanState exists to provide).
func TestPlanStateIsolatedFromDirectCalls(t *testing.T) {
	ref := planTestNet(21)
	mixed := planTestNet(21)
	rng := tensor.NewRNG(47)
	x := randBatch(rng, 2, ref.InShape)
	dout := tensor.New(2, 2)
	rng.FillNorm(dout, 0, 1)

	ref.Forward(x, true)
	wantDx := ref.Backward(dout)

	plan := Compile(mixed, 2, true, nil)
	plan.Forward(x)
	mixed.Forward(x, false) // direct eval between plan forward and backward
	requireBitwise(t, "isolated dx", plan.Backward(dout), wantDx)
	lp, mp := ref.Params(), mixed.Params()
	for i := range lp {
		requireBitwise(t, "isolated grad "+lp[i].Name, mp[i].Grad, lp[i].Grad)
	}
}

// TestPlanArenaSharing verifies released plan slabs are recycled by the
// next compile on the same arena rather than re-allocated.
func TestPlanArenaSharing(t *testing.T) {
	net := planTestNet(25)
	arena := tensor.NewArena()
	p1 := Compile(net, 4, false, arena)
	total1 := arena.Stats().TotalFloats
	p1.Release()
	p2 := Compile(net, 4, false, arena)
	if total2 := arena.Stats().TotalFloats; total2 != total1 {
		t.Fatalf("recompile on shared arena grew footprint %d -> %d", total1, total2)
	}
	p2.Release()
}
