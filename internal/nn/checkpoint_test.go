package nn

import (
	"bytes"
	"path/filepath"
	"testing"

	"deep15pf/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	src := tinyNet(rng)
	dst := tinyNet(tensor.NewRNG(2)) // different init

	var buf bytes.Buffer
	if err := SaveWeights(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != dp[i].W.Data[j] {
				t.Fatalf("%s[%d] not restored", sp[i].Name, j)
			}
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := tinyNet(rng)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveFile(path, net.Params()); err != nil {
		t.Fatal(err)
	}
	other := tinyNet(tensor.NewRNG(4))
	if err := LoadFile(path, other.Params()); err != nil {
		t.Fatal(err)
	}
	if net.Params()[0].W.Data[0] != other.Params()[0].W.Data[0] {
		t.Fatal("file round trip failed")
	}
}

func TestCheckpointRejectsWrongArchitecture(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := tinyNet(rng)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	// A different architecture: fewer parameters.
	small := NewNetwork("small", 2, 8, 8)
	small.Add(NewConv2D("conv1", 2, 4, 3, 1, 1, rng))
	if err := LoadWeights(&buf, small.Params()); err == nil {
		t.Fatal("blob-count mismatch must error")
	}
	// Same blob count, different names.
	var buf2 bytes.Buffer
	renamed := NewNetwork("renamed", 2, 8, 8)
	renamed.Add(NewConv2D("convX", 2, 4, 3, 1, 1, rng))
	if err := SaveWeights(&buf2, renamed.Params()); err != nil {
		t.Fatal(err)
	}
	target := NewNetwork("target", 2, 8, 8)
	target.Add(NewConv2D("convY", 2, 4, 3, 1, 1, rng))
	if err := LoadWeights(&buf2, target.Params()); err == nil {
		t.Fatal("name mismatch must error")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := tinyNet(rng)
	if err := LoadWeights(bytes.NewReader([]byte("garbage")), net.Params()); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if err := LoadWeights(bytes.NewReader(nil), net.Params()); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestCheckpointTruncated(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := tinyNet(rng)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := LoadWeights(bytes.NewReader(trunc), net.Params()); err == nil {
		t.Fatal("truncated checkpoint must error")
	}
}
