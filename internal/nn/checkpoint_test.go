package nn

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"deep15pf/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	src := tinyNet(rng)
	dst := tinyNet(tensor.NewRNG(2)) // different init

	var buf bytes.Buffer
	if err := SaveWeights(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != dp[i].W.Data[j] {
				t.Fatalf("%s[%d] not restored", sp[i].Name, j)
			}
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := tinyNet(rng)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveFile(path, net.Params()); err != nil {
		t.Fatal(err)
	}
	other := tinyNet(tensor.NewRNG(4))
	if err := LoadFile(path, other.Params()); err != nil {
		t.Fatal(err)
	}
	if net.Params()[0].W.Data[0] != other.Params()[0].W.Data[0] {
		t.Fatal("file round trip failed")
	}
}

func TestCheckpointRejectsWrongArchitecture(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := tinyNet(rng)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	// A different architecture: fewer parameters.
	small := NewNetwork("small", 2, 8, 8)
	small.Add(NewConv2D("conv1", 2, 4, 3, 1, 1, rng))
	if err := LoadWeights(&buf, small.Params()); err == nil {
		t.Fatal("blob-count mismatch must error")
	}
	// Same blob count, different names.
	var buf2 bytes.Buffer
	renamed := NewNetwork("renamed", 2, 8, 8)
	renamed.Add(NewConv2D("convX", 2, 4, 3, 1, 1, rng))
	if err := SaveWeights(&buf2, renamed.Params()); err != nil {
		t.Fatal(err)
	}
	target := NewNetwork("target", 2, 8, 8)
	target.Add(NewConv2D("convY", 2, 4, 3, 1, 1, rng))
	if err := LoadWeights(&buf2, target.Params()); err == nil {
		t.Fatal("name mismatch must error")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := tinyNet(rng)
	if err := LoadWeights(bytes.NewReader([]byte("garbage")), net.Params()); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if err := LoadWeights(bytes.NewReader(nil), net.Params()); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

// TestLoadWeightsErrorPaths drives every malformed-checkpoint class through
// LoadWeights and requires an explicit error naming the problem — the
// OpenShard hardening contract applied to the weight format: corruption
// surfaces at load time as a diagnosis, never as a silent misload or a
// panic deeper in.
func TestLoadWeightsErrorPaths(t *testing.T) {
	rng := tensor.NewRNG(8)
	net := tinyNet(rng)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// The first blob's layout inside the file: magic+count (8 bytes), then
	// nameLen (4), name, numel (4), data.
	name0 := net.Params()[0].Name
	numelOff := 8 + 4 + len(name0)

	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	cases := []struct {
		name string
		blob []byte
		want string // substring the error must carry
	}{
		{"empty input", nil, "header"},
		{"truncated header", good[:6], "header"},
		{"bad magic", corrupt(func(b []byte) []byte {
			b[0], b[1], b[2], b[3] = 'J', 'U', 'N', 'K'
			return b
		}), "not a checkpoint"},
		{"blob count mismatch", corrupt(func(b []byte) []byte {
			b[4]++ // one more blob than the model has
			return b
		}), "blobs"},
		{"name mismatch", corrupt(func(b []byte) []byte {
			b[8+4] ^= 0xff // flip the first byte of the first blob's name
			return b
		}), "does not match parameter"},
		{"size mismatch", corrupt(func(b []byte) []byte {
			b[numelOff]++ // first blob claims one extra element
			return b
		}), "elements in checkpoint"},
		{"truncated name", good[:8+4+1], ""},
		{"truncated blob", good[:len(good)-5], "short weight blob"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LoadWeights(bytes.NewReader(tc.blob), net.Params())
			if err == nil {
				t.Fatalf("%s: LoadWeights accepted a corrupt checkpoint", tc.name)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s: error %q does not name the problem (want %q)", tc.name, err, tc.want)
			}
		})
	}
	// The table must not have poisoned the reference blob.
	if err := LoadWeights(bytes.NewReader(good), net.Params()); err != nil {
		t.Fatalf("pristine checkpoint no longer loads: %v", err)
	}
}

func TestCheckpointTruncated(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := tinyNet(rng)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := LoadWeights(bytes.NewReader(trunc), net.Params()); err == nil {
		t.Fatal("truncated checkpoint must error")
	}
}
